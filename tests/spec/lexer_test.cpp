#include "spec/lexer.hpp"

#include <gtest/gtest.h>

namespace rtg::spec {
namespace {

std::vector<TokenKind> kinds(const LexResult& r) {
  std::vector<TokenKind> out;
  for (const Token& t : r.tokens) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEnd) {
  const LexResult r = lex("");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.tokens.size(), 1u);
  EXPECT_EQ(r.tokens[0].kind, TokenKind::kEnd);
}

TEST(Lexer, IdentifiersAndInts) {
  const LexResult r = lex("element fx weight 42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(kinds(r), (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kIdent,
                                              TokenKind::kIdent, TokenKind::kInt,
                                              TokenKind::kEnd}));
  EXPECT_EQ(r.tokens[1].text, "fx");
  EXPECT_EQ(r.tokens[3].value, 42);
}

TEST(Lexer, SymbolsAndArrow) {
  const LexResult r = lex("a -> b ; { }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(kinds(r), (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kArrow,
                                              TokenKind::kIdent, TokenKind::kSemi,
                                              TokenKind::kLBrace, TokenKind::kRBrace,
                                              TokenKind::kEnd}));
}

TEST(Lexer, CommentsSkippedToEol) {
  const LexResult r = lex("# full line comment\nfx # trailing\nfy");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_EQ(r.tokens[0].text, "fx");
  EXPECT_EQ(r.tokens[1].text, "fy");
}

TEST(Lexer, HashAfterIdentIsInstanceSuffix) {
  const LexResult r = lex("fs#2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(kinds(r), (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kHash,
                                              TokenKind::kInt, TokenKind::kEnd}));
  EXPECT_EQ(r.tokens[2].value, 2);
}

TEST(Lexer, HashAfterSpaceIsComment) {
  const LexResult r = lex("fs #2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.tokens.size(), 2u);  // fs, end
}

TEST(Lexer, LineAndColumnTracking) {
  const LexResult r = lex("a\n  b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.tokens[0].line, 1u);
  EXPECT_EQ(r.tokens[0].column, 1u);
  EXPECT_EQ(r.tokens[1].line, 2u);
  EXPECT_EQ(r.tokens[1].column, 3u);
}

TEST(Lexer, IdentifiersMayContainSlashAndDot) {
  const LexResult r = lex("fs/0 ver1.2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.tokens[0].text, "fs/0");
  EXPECT_EQ(r.tokens[1].text, "ver1.2");
}

TEST(Lexer, UnexpectedCharacterReported) {
  const LexResult r = lex("a $ b");
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].message.find("unexpected character"), std::string::npos);
  EXPECT_EQ(r.errors[0].column, 3u);
}

TEST(Lexer, OverflowingIntegerReported) {
  const LexResult r = lex("99999999999999999999999999");
  EXPECT_FALSE(r.ok());
}

TEST(Lexer, LoneMinusIsError) {
  const LexResult r = lex("a - b");
  EXPECT_FALSE(r.ok());
}

TEST(Lexer, TokenKindNames) {
  EXPECT_EQ(token_kind_name(TokenKind::kArrow), "'->'");
  EXPECT_EQ(token_kind_name(TokenKind::kIdent), "identifier");
}

}  // namespace
}  // namespace rtg::spec
