// Robustness sweeps: the spec front end must never crash, hang, or
// accept garbage silently — random and adversarial inputs either
// compile cleanly or produce diagnostics.
#include <gtest/gtest.h>

#include <string>

#include "core/schedule_io.hpp"
#include "sim/rng.hpp"
#include "spec/compile.hpp"
#include "spec/parser.hpp"

namespace rtg::spec {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range<std::uint64_t>(0, 30));

TEST_P(FuzzSweep, RandomBytesNeverCrashLexerOrParser) {
  sim::Rng rng(GetParam() * 16127 + 3);
  std::string input;
  const int len = static_cast<int>(rng.uniform(0, 400));
  for (int i = 0; i < len; ++i) {
    input.push_back(static_cast<char>(rng.uniform(1, 126)));  // printable-ish
  }
  const ParseResult r = parse(input);
  // Either it parsed or it reported errors; both are fine, crashing is not.
  if (!r.ok()) {
    EXPECT_FALSE(r.errors.empty());
  }
}

TEST_P(FuzzSweep, RandomTokenSoupNeverCrashesCompiler) {
  sim::Rng rng(GetParam() * 104729 + 11);
  static const char* kTokens[] = {
      "element", "channel",  "constraint", "periodic", "sporadic",
      "period",  "deadline", "separation", "weight",   "nopipeline",
      "->",      "{",        "}",          ";",        "a",
      "b",       "fs",       "7",          "0",        "#x",
      "\n"};
  std::string input;
  const int len = static_cast<int>(rng.uniform(0, 120));
  for (int i = 0; i < len; ++i) {
    input += kTokens[rng.uniform(0, static_cast<std::int64_t>(std::size(kTokens)) - 1)];
    input += " ";
  }
  const CompileResult r = compile_text(input);
  if (!r.ok()) {
    EXPECT_FALSE(r.errors.empty());
  } else {
    // Anything accepted must be a structurally valid model.
    for (std::size_t i = 0; i < r.model->constraint_count(); ++i) {
      EXPECT_TRUE(
          r.model->constraint(i).task_graph.validate(r.model->comm()).empty());
    }
  }
}

TEST_P(FuzzSweep, ScheduleParserNeverCrashes) {
  sim::Rng rng(GetParam() * 31013 + 7);
  core::CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("bb", 2);
  std::string input;
  static const char* kTokens[] = {"a", "bb", ".", ".3", ".0", "zz", "#c", "\n"};
  const int len = static_cast<int>(rng.uniform(0, 60));
  for (int i = 0; i < len; ++i) {
    input += kTokens[rng.uniform(0, static_cast<std::int64_t>(std::size(kTokens)) - 1)];
    input += " ";
  }
  const core::ScheduleParseResult r = core::schedule_from_text(input, comm);
  if (r.ok()) {
    EXPECT_TRUE(r.schedule->validate(comm).empty());
  } else {
    EXPECT_FALSE(r.errors.empty());
  }
}

TEST(FuzzEdges, DeeplyNestedAndDegenerateInputs) {
  // Long chains, pathological whitespace, huge idle counts.
  std::string long_chain = "element a\nelement b\nchannel a -> b\n"
                           "constraint C periodic period 4 deadline 9 { a";
  for (int i = 0; i < 200; ++i) long_chain += " -> b -> a";
  long_chain += " }\n";
  const CompileResult r = compile_text(long_chain);
  // a -> b is a channel but b -> a is not: must be rejected cleanly.
  EXPECT_FALSE(r.ok());

  EXPECT_FALSE(compile_text(std::string(1000, '{')).ok());
  EXPECT_TRUE(parse(std::string(5000, ' ')).ok());
  EXPECT_FALSE(compile_text("element a weight 99999999999999999999\n").ok());
}

}  // namespace
}  // namespace rtg::spec
