// Robustness sweeps: the spec front end must never crash, hang, or
// accept garbage silently — random and adversarial inputs either
// compile cleanly or produce diagnostics.
#include <gtest/gtest.h>

#include <string>

#include "core/schedule_io.hpp"
#include "sim/rng.hpp"
#include "spec/compile.hpp"
#include "spec/parser.hpp"

namespace rtg::spec {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range<std::uint64_t>(0, 30));

TEST_P(FuzzSweep, RandomBytesNeverCrashLexerOrParser) {
  sim::Rng rng(GetParam() * 16127 + 3);
  std::string input;
  const int len = static_cast<int>(rng.uniform(0, 400));
  for (int i = 0; i < len; ++i) {
    input.push_back(static_cast<char>(rng.uniform(1, 126)));  // printable-ish
  }
  const ParseResult r = parse(input);
  // Either it parsed or it reported errors; both are fine, crashing is not.
  if (!r.ok()) {
    EXPECT_FALSE(r.errors.empty());
  }
}

TEST_P(FuzzSweep, RandomTokenSoupNeverCrashesCompiler) {
  sim::Rng rng(GetParam() * 104729 + 11);
  static const char* kTokens[] = {
      "element", "channel",  "constraint", "periodic", "sporadic",
      "period",  "deadline", "separation", "weight",   "nopipeline",
      "->",      "{",        "}",          ";",        "a",
      "b",       "fs",       "7",          "0",        "#x",
      "\n"};
  std::string input;
  const int len = static_cast<int>(rng.uniform(0, 120));
  for (int i = 0; i < len; ++i) {
    input += kTokens[rng.uniform(0, static_cast<std::int64_t>(std::size(kTokens)) - 1)];
    input += " ";
  }
  const CompileResult r = compile_text(input);
  if (!r.ok()) {
    EXPECT_FALSE(r.errors.empty());
  } else {
    // Anything accepted must be a structurally valid model.
    for (std::size_t i = 0; i < r.model->constraint_count(); ++i) {
      EXPECT_TRUE(
          r.model->constraint(i).task_graph.validate(r.model->comm()).empty());
    }
  }
}

TEST_P(FuzzSweep, ScheduleParserNeverCrashes) {
  sim::Rng rng(GetParam() * 31013 + 7);
  core::CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("bb", 2);
  std::string input;
  static const char* kTokens[] = {"a", "bb", ".", ".3", ".0", "zz", "#c", "\n"};
  const int len = static_cast<int>(rng.uniform(0, 60));
  for (int i = 0; i < len; ++i) {
    input += kTokens[rng.uniform(0, static_cast<std::int64_t>(std::size(kTokens)) - 1)];
    input += " ";
  }
  const core::ScheduleParseResult r = core::schedule_from_text(input, comm);
  if (r.ok()) {
    EXPECT_TRUE(r.schedule->validate(comm).empty());
  } else {
    EXPECT_FALSE(r.errors.empty());
  }
}

TEST_P(FuzzSweep, RawBinaryGarbageGetsGracefulDiagnostics) {
  // Full byte range, NUL and high-bit bytes included: the lexer must
  // produce positioned diagnostics, never crash or loop.
  sim::Rng rng(GetParam() * 48611 + 29);
  std::string input;
  const int len = static_cast<int>(rng.uniform(0, 600));
  for (int i = 0; i < len; ++i) {
    input.push_back(static_cast<char>(rng.uniform(0, 255)));
  }
  const CompileResult r = compile_text(input);
  if (!r.ok()) {
    EXPECT_FALSE(r.errors.empty());
    for (const CompileError& e : r.errors) EXPECT_FALSE(e.message.empty());
  }
}

TEST_P(FuzzSweep, MutatedValidSpecsParseOrDiagnose) {
  // Start from a well-formed spec and corrupt it with seeded edits
  // (byte flips, deletions, duplications). Every mutant must either
  // compile to a structurally valid model or report diagnostics.
  static const std::string kSeedSpec =
      "element a weight 1\n"
      "element b weight 2\n"
      "channel a -> b\n"
      "constraint X periodic period 8 deadline 8 { a -> b }\n"
      "constraint Z sporadic separation 6 deadline 6 { a }\n";
  sim::Rng rng(GetParam() * 7919 + 101);
  std::string input = kSeedSpec;
  const int edits = static_cast<int>(rng.uniform(1, 12));
  for (int i = 0; i < edits && !input.empty(); ++i) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(input.size()) - 1));
    switch (rng.uniform(0, 2)) {
      case 0:  // flip a byte
        input[pos] = static_cast<char>(rng.uniform(1, 255));
        break;
      case 1:  // delete a byte
        input.erase(pos, 1);
        break;
      default:  // duplicate a span
        input.insert(pos, input.substr(pos, static_cast<std::size_t>(rng.uniform(1, 8))));
        break;
    }
  }
  const CompileResult r = compile_text(input);
  if (r.ok()) {
    for (std::size_t i = 0; i < r.model->constraint_count(); ++i) {
      EXPECT_TRUE(r.model->constraint(i).task_graph.validate(r.model->comm()).empty());
    }
  } else {
    EXPECT_FALSE(r.errors.empty());
    for (const CompileError& e : r.errors) EXPECT_FALSE(e.message.empty());
  }
}

TEST(FuzzEdges, DeeplyNestedAndDegenerateInputs) {
  // Long chains, pathological whitespace, huge idle counts.
  std::string long_chain = "element a\nelement b\nchannel a -> b\n"
                           "constraint C periodic period 4 deadline 9 { a";
  for (int i = 0; i < 200; ++i) long_chain += " -> b -> a";
  long_chain += " }\n";
  const CompileResult r = compile_text(long_chain);
  // a -> b is a channel but b -> a is not: must be rejected cleanly.
  EXPECT_FALSE(r.ok());

  EXPECT_FALSE(compile_text(std::string(1000, '{')).ok());
  EXPECT_TRUE(parse(std::string(5000, ' ')).ok());
  EXPECT_FALSE(compile_text("element a weight 99999999999999999999\n").ok());
}

}  // namespace
}  // namespace rtg::spec
