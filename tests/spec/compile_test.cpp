#include "spec/compile.hpp"

#include <gtest/gtest.h>

namespace rtg::spec {
namespace {

constexpr const char* kControlSpec = R"(
# Figure 1 / Figure 2 control system
element fx
element fy
element fz
element fs weight 2
element fk

channel fx -> fs -> fk
channel fy -> fs
channel fz -> fs
channel fk -> fs

constraint X periodic period 20 deadline 20 { fx -> fs -> fk }
constraint Y periodic period 40 deadline 40 { fy -> fs -> fk }
constraint Z sporadic separation 50 deadline 25 { fz -> fs }
)";

TEST(Compile, ControlSystemSpec) {
  const CompileResult r = compile_text(kControlSpec);
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0].message);
  const core::GraphModel& model = *r.model;
  EXPECT_EQ(model.comm().size(), 5u);
  EXPECT_EQ(model.constraint_count(), 3u);
  EXPECT_EQ(model.comm().weight(*model.comm().find("fs")), 2);
  const auto z = model.find_constraint("Z");
  ASSERT_TRUE(z.has_value());
  EXPECT_FALSE(model.constraint(*z).periodic());
  EXPECT_EQ(model.constraint(*z).deadline, 25);
}

TEST(Compile, ChannelPathCreatesAllEdges) {
  const CompileResult r = compile_text(
      "element a\nelement b\nelement c\nchannel a -> b -> c\n");
  ASSERT_TRUE(r.ok());
  const auto& comm = r.model->comm();
  EXPECT_TRUE(comm.has_channel(*comm.find("a"), *comm.find("b")));
  EXPECT_TRUE(comm.has_channel(*comm.find("b"), *comm.find("c")));
  EXPECT_FALSE(comm.has_channel(*comm.find("a"), *comm.find("c")));
}

TEST(Compile, InstanceSuffixMakesDistinctOps) {
  const CompileResult r = compile_text(
      "element a\nelement fs\n"
      "channel a -> fs\nchannel fs -> a\n"
      "constraint C sporadic separation 5 deadline 20 {\n"
      "  fs#1 -> a -> fs#2\n"
      "}\n");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0].message);
  const auto& tg = r.model->constraint(0).task_graph;
  EXPECT_EQ(tg.size(), 3u);
  EXPECT_TRUE(tg.has_repeated_labels());
}

TEST(Compile, SameReferenceSameOp) {
  const CompileResult r = compile_text(
      "element a\nelement b\nelement c\n"
      "channel a -> c\nchannel b -> c\n"
      "constraint C periodic period 9 deadline 9 {\n"
      "  a -> c;\n"
      "  b -> c\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  // c referenced twice without suffix: one op with two predecessors.
  const auto& tg = r.model->constraint(0).task_graph;
  EXPECT_EQ(tg.size(), 3u);
}

TEST(Compile, DuplicateElementRejected) {
  const CompileResult r = compile_text("element a\nelement a\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("duplicate element"), std::string::npos);
}

TEST(Compile, UndeclaredChannelEndpoint) {
  const CompileResult r = compile_text("element a\nchannel a -> ghost\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("undeclared element"), std::string::npos);
}

TEST(Compile, SelfChannelRejected) {
  const CompileResult r = compile_text("element a\nchannel a -> a\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("self channel"), std::string::npos);
}

TEST(Compile, ConstraintOverMissingChannel) {
  const CompileResult r = compile_text(
      "element a\nelement b\n"
      "constraint C periodic period 5 deadline 5 { a -> b }\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("no channel"), std::string::npos);
}

TEST(Compile, ConstraintWithUndeclaredElement) {
  const CompileResult r = compile_text(
      "element a\nconstraint C periodic period 5 deadline 5 { ghost }\n");
  ASSERT_FALSE(r.ok());
}

TEST(Compile, DuplicateConstraintName) {
  const CompileResult r = compile_text(
      "element a\n"
      "constraint C periodic period 5 deadline 5 { a }\n"
      "constraint C periodic period 6 deadline 6 { a }\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("duplicate constraint"), std::string::npos);
}

TEST(Compile, CyclicTaskGraphRejected) {
  const CompileResult r = compile_text(
      "element a\nelement b\n"
      "channel a -> b\nchannel b -> a\n"
      "constraint C periodic period 5 deadline 5 { a -> b; b -> a }\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("cyclic"), std::string::npos);
}

TEST(Compile, NonPositiveParametersRejected) {
  EXPECT_FALSE(compile_text("element a weight 0\n").ok());
  EXPECT_FALSE(
      compile_text("element a\nconstraint C periodic period 0 deadline 5 { a }\n").ok());
  EXPECT_FALSE(
      compile_text("element a\nconstraint C periodic period 5 deadline 0 { a }\n").ok());
}

TEST(Compile, NopipelineFlagPropagates) {
  const CompileResult r = compile_text("element act weight 3 nopipeline\n");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.model->comm().pipelinable(*r.model->comm().find("act")));
}

TEST(Compile, ParseErrorsSurfaceAsCompileErrors) {
  const CompileResult r = compile_text("channel\n");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.errors.empty());
}

TEST(Compile, EmptyConstraintBodyRejected) {
  const CompileResult r = compile_text(
      "element a\nconstraint C periodic period 5 deadline 5 { }\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("empty body"), std::string::npos);
}

}  // namespace
}  // namespace rtg::spec
