#include "spec/emit.hpp"

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "spec/compile.hpp"

namespace rtg::spec {
namespace {

using core::ConstraintKind;
using core::GraphModel;
using core::TaskGraph;
using core::TimingConstraint;

// Structural equivalence checks used by the round-trip tests.
void expect_equivalent(const GraphModel& a, const GraphModel& b) {
  ASSERT_EQ(a.comm().size(), b.comm().size());
  for (core::ElementId e = 0; e < a.comm().size(); ++e) {
    const auto other = b.comm().find(a.comm().name(e));
    ASSERT_TRUE(other.has_value()) << a.comm().name(e);
    EXPECT_EQ(a.comm().weight(e), b.comm().weight(*other));
    EXPECT_EQ(a.comm().pipelinable(e), b.comm().pipelinable(*other));
  }
  EXPECT_EQ(a.comm().digraph().edge_count(), b.comm().digraph().edge_count());
  ASSERT_EQ(a.constraint_count(), b.constraint_count());
  for (std::size_t i = 0; i < a.constraint_count(); ++i) {
    const auto j = b.find_constraint(a.constraint(i).name);
    ASSERT_TRUE(j.has_value());
    const TimingConstraint& ca = a.constraint(i);
    const TimingConstraint& cb = b.constraint(*j);
    EXPECT_EQ(ca.period, cb.period);
    EXPECT_EQ(ca.deadline, cb.deadline);
    EXPECT_EQ(ca.kind, cb.kind);
    EXPECT_EQ(ca.task_graph.size(), cb.task_graph.size());
    EXPECT_EQ(ca.task_graph.skeleton().edge_count(),
              cb.task_graph.skeleton().edge_count());
    EXPECT_EQ(ca.task_graph.computation_time(a.comm()),
              cb.task_graph.computation_time(b.comm()));
  }
}

TEST(Emit, ControlSystemRoundTrips) {
  const GraphModel model = core::make_control_system();
  const std::string text = emit(model);
  const CompileResult compiled = compile_text(text);
  ASSERT_TRUE(compiled.ok()) << text << "\n"
                             << (compiled.errors.empty() ? ""
                                                         : compiled.errors[0].message);
  expect_equivalent(model, *compiled.model);
}

TEST(Emit, WeightsAndFlagsSerialized) {
  core::CommGraph comm;
  comm.add_element("light", 1);
  comm.add_element("heavy", 5);
  comm.add_element("frozen", 3, false);
  const std::string text = emit(GraphModel(std::move(comm)));
  EXPECT_NE(text.find("element light\n"), std::string::npos);
  EXPECT_NE(text.find("element heavy weight 5"), std::string::npos);
  EXPECT_NE(text.find("element frozen weight 3 nopipeline"), std::string::npos);
}

TEST(Emit, SporadicKeywordUsed) {
  core::CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"Z", std::move(tg), 50, 25, ConstraintKind::kAsynchronous});
  const std::string text = emit(model);
  EXPECT_NE(text.find("sporadic separation 50 deadline 25"), std::string::npos);
}

TEST(Emit, RepeatedLabelsGetInstanceSuffixes) {
  core::CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("fs", 1);
  comm.add_channel(0, 1);
  comm.add_channel(1, 0);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const auto s1 = tg.add_op(1);
  const auto mid = tg.add_op(0);
  const auto s2 = tg.add_op(1);
  tg.add_dep(s1, mid);
  tg.add_dep(mid, s2);
  model.add_constraint(
      TimingConstraint{"C", std::move(tg), 5, 20, ConstraintKind::kAsynchronous});

  const std::string text = emit(model);
  EXPECT_NE(text.find("fs#1"), std::string::npos);
  EXPECT_NE(text.find("fs#2"), std::string::npos);

  const CompileResult compiled = compile_text(text);
  ASSERT_TRUE(compiled.ok()) << text;
  expect_equivalent(model, *compiled.model);
}

TEST(Emit, IsolatedOpsEmittedAsSingleNodeChains) {
  core::CommGraph comm;
  comm.add_element("solo", 2);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"S", std::move(tg), 5, 10, ConstraintKind::kPeriodic});
  const std::string text = emit(model);
  EXPECT_NE(text.find("  solo;"), std::string::npos);
  const CompileResult compiled = compile_text(text);
  ASSERT_TRUE(compiled.ok());
  expect_equivalent(model, *compiled.model);
}

TEST(Emit, EmptyModelCompiles) {
  const std::string text = emit(GraphModel{});
  EXPECT_TRUE(compile_text(text).ok());
}

TEST(Emit, RandomishDagRoundTrips) {
  core::CommGraph comm;
  for (int i = 0; i < 5; ++i) {
    comm.add_element("e" + std::to_string(i), 1 + i % 3, i % 2 == 0);
  }
  for (core::ElementId u = 0; u < 5; ++u) {
    for (core::ElementId v = u + 1; v < 5; ++v) {
      if ((u + v) % 2 == 0) comm.add_channel(u, v);
    }
  }
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const auto a = tg.add_op(0);
  const auto b = tg.add_op(2);
  const auto c = tg.add_op(4);
  tg.add_dep(a, b);
  tg.add_dep(b, c);
  tg.add_dep(a, c);
  model.add_constraint(
      TimingConstraint{"D", std::move(tg), 9, 30, ConstraintKind::kAsynchronous});

  const CompileResult compiled = compile_text(emit(model));
  ASSERT_TRUE(compiled.ok());
  expect_equivalent(model, *compiled.model);
}

}  // namespace
}  // namespace rtg::spec
