#include "spec/parser.hpp"

#include <gtest/gtest.h>

namespace rtg::spec {
namespace {

TEST(Parser, EmptySpec) {
  const ParseResult r = parse("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.file.elements.empty());
  EXPECT_TRUE(r.file.constraints.empty());
}

TEST(Parser, ElementDeclarationVariants) {
  const ParseResult r = parse(
      "element fx\n"
      "element fs weight 3\n"
      "element act weight 2 nopipeline\n"
      "element raw nopipeline\n");
  ASSERT_TRUE(r.ok()) << r.errors[0].message;
  ASSERT_EQ(r.file.elements.size(), 4u);
  EXPECT_EQ(r.file.elements[0].name, "fx");
  EXPECT_EQ(r.file.elements[0].weight, 1);
  EXPECT_TRUE(r.file.elements[0].pipelinable);
  EXPECT_EQ(r.file.elements[1].weight, 3);
  EXPECT_FALSE(r.file.elements[2].pipelinable);
  EXPECT_EQ(r.file.elements[2].weight, 2);
  EXPECT_FALSE(r.file.elements[3].pipelinable);
}

TEST(Parser, ChannelPaths) {
  const ParseResult r = parse("channel a -> b -> c\nchannel x -> y\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.file.channels.size(), 2u);
  EXPECT_EQ(r.file.channels[0].path, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Parser, ChannelNeedsTwoEndpoints) {
  const ParseResult r = parse("channel a\n");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, PeriodicConstraint) {
  const ParseResult r = parse(
      "constraint X periodic period 20 deadline 15 {\n"
      "  fx -> fs -> fk\n"
      "}\n");
  ASSERT_TRUE(r.ok()) << r.errors[0].message;
  ASSERT_EQ(r.file.constraints.size(), 1u);
  const ConstraintDecl& c = r.file.constraints[0];
  EXPECT_EQ(c.name, "X");
  EXPECT_TRUE(c.periodic);
  EXPECT_EQ(c.period, 20);
  EXPECT_EQ(c.deadline, 15);
  ASSERT_EQ(c.chains.size(), 1u);
  ASSERT_EQ(c.chains[0].nodes.size(), 3u);
  EXPECT_EQ(c.chains[0].nodes[1].element, "fs");
}

TEST(Parser, SporadicConstraintUsesSeparation) {
  const ParseResult r = parse(
      "constraint Z sporadic separation 50 deadline 25 { fz -> fs }\n");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.file.constraints[0].periodic);
  EXPECT_EQ(r.file.constraints[0].period, 50);
}

TEST(Parser, WrongRateKeywordDiagnosed) {
  const ParseResult r = parse(
      "constraint Z sporadic period 50 deadline 25 { fz }\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("'separation'"), std::string::npos);
  // Recovery still parsed the constraint body.
  EXPECT_EQ(r.file.constraints.size(), 1u);
}

TEST(Parser, MultipleChainsAndInstances) {
  const ParseResult r = parse(
      "constraint C periodic period 9 deadline 9 {\n"
      "  a -> fs#1;\n"
      "  b -> fs#2;\n"
      "  fs#1 -> fs#2\n"
      "}\n");
  ASSERT_TRUE(r.ok()) << r.errors[0].message;
  const ConstraintDecl& c = r.file.constraints[0];
  ASSERT_EQ(c.chains.size(), 3u);
  EXPECT_EQ(c.chains[0].nodes[1].instance, 1);
  EXPECT_EQ(c.chains[1].nodes[1].instance, 2);
}

TEST(Parser, SingleNodeChain) {
  const ParseResult r = parse("constraint C sporadic separation 2 deadline 4 { a }\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.file.constraints[0].chains[0].nodes.size(), 1u);
}

TEST(Parser, MissingBraceReported) {
  const ParseResult r = parse("constraint C periodic period 2 deadline 2 a -> b\n");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, UnclosedBodyReported) {
  const ParseResult r = parse("constraint C periodic period 2 deadline 2 { a -> b\n");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, UnknownStatementRecoversToNext) {
  const ParseResult r = parse(
      "bogus stuff here\n"
      "element fx\n");
  ASSERT_FALSE(r.ok());
  // The element after the junk is still parsed.
  ASSERT_EQ(r.file.elements.size(), 1u);
  EXPECT_EQ(r.file.elements[0].name, "fx");
}

TEST(Parser, MultipleErrorsReportedInOnePass) {
  const ParseResult r = parse(
      "channel a\n"
      "channel b\n");
  EXPECT_EQ(r.errors.size(), 2u);
}

TEST(Parser, LexErrorsSurface) {
  const ParseResult r = parse("element $x\n");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, MissingKindKeyword) {
  const ParseResult r = parse("constraint C whenever period 2 deadline 2 { a }\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("'periodic' or 'sporadic'"), std::string::npos);
}

// Malformed-input sweep: every truncation of a valid spec must produce
// diagnostics (or parse cleanly at statement boundaries), never crash,
// and every diagnostic must carry a plausible source position.
TEST(Parser, EveryPrefixOfAValidSpecIsHandledGracefully) {
  const std::string spec =
      "element fx weight 2\n"
      "element fs\n"
      "channel fx -> fs\n"
      "constraint X periodic period 20 deadline 15 {\n"
      "  fx -> fs\n"
      "}\n"
      "constraint Y sporadic separation 9 deadline 7 {\n"
      "  fs#0\n"
      "}\n";
  for (std::size_t len = 0; len <= spec.size(); ++len) {
    const ParseResult r = parse(std::string_view(spec).substr(0, len));
    for (const ParseError& e : r.errors) {
      EXPECT_FALSE(e.message.empty()) << "prefix length " << len;
      EXPECT_GE(e.line, 1u);
      EXPECT_GE(e.column, 1u);
    }
  }
  EXPECT_TRUE(parse(spec).ok());
}

TEST(Parser, GarbageInputNeverCrashesAndAlwaysDiagnoses) {
  const char* cases[] = {
      "\x01\x02\x03\xff\xfe",
      "{}{}{}{}",
      "-> -> ->",
      "element\n",
      "element fx weight\n",
      "element fx weight -3\n",
      "constraint\n",
      "constraint C periodic\n",
      "constraint C periodic period\n",
      "constraint C periodic period 5 deadline\n",
      "constraint C periodic period 5 deadline 4 {\n",
      "constraint C periodic period 5 deadline 4 { fx#\n}\n",
      "constraint C sporadic separation 99999999999999999999 deadline 4 { a }\n",
      "element a element b element c channel",
      "$$$",
      "constraint C periodic period 5 deadline 4 { a } }\n",
  };
  for (const char* text : cases) {
    const ParseResult r = parse(text);
    EXPECT_FALSE(r.ok()) << "accepted garbage: " << text;
    ASSERT_FALSE(r.errors.empty());
    for (const ParseError& e : r.errors) {
      EXPECT_FALSE(e.message.empty());
    }
  }
}

TEST(Parser, DeeplyNestedAndLongInputsStayBounded) {
  // A pathological but syntactically valid spec: many statements.
  std::string big;
  for (int i = 0; i < 2000; ++i) {
    big += "element e" + std::to_string(i) + "\n";
  }
  EXPECT_TRUE(parse(big).ok());

  // A long run of open braces must terminate with errors, not hang.
  const std::string braces(4096, '{');
  EXPECT_FALSE(parse(braces).ok());
}

}  // namespace
}  // namespace rtg::spec
