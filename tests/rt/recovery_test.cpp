#include "rt/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/fault_injection.hpp"
#include "core/latency.hpp"
#include "monitor/streaming_monitor.hpp"
#include "rt/scheduler.hpp"
#include "rt/task.hpp"

namespace rtg::rt {
namespace {

core::TaskGraph single(core::ElementId e) {
  core::TaskGraph tg;
  tg.add_op(e);
  return tg;
}

// One element a (weight 1); periodic P: (a, p 4, d 16) and sporadic
// Z: (a, sep 4, d 16). Deadlines are 4x the period, so recovery_bounds
// classifies both constraints recoverable under schedule "a . . .".
core::GraphModel lenient_model() {
  core::CommGraph comm;
  comm.add_element("a", 1);
  core::GraphModel model(std::move(comm));
  model.add_constraint(core::TimingConstraint{"P", single(0), 4, 16});
  model.add_constraint(
      core::TimingConstraint{"Z", single(0), 4, 16, core::ConstraintKind::kAsynchronous});
  return model;
}

// Same element, but tight deadlines (d == p == 4): every window depends
// on exactly one dispatch, so retry can never make the bound and hot
// failover is the interesting policy.
core::GraphModel tight_model() {
  core::CommGraph comm;
  comm.add_element("a", 1);
  core::GraphModel model(std::move(comm));
  model.add_constraint(core::TimingConstraint{"P", single(0), 4, 4});
  model.add_constraint(
      core::TimingConstraint{"Z", single(0), 4, 4, core::ConstraintKind::kAsynchronous});
  return model;
}

core::StaticSchedule sched_a_first() {  // "a . . ."
  core::StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(3);
  return s;
}

core::StaticSchedule sched_a_last() {  // ". . . a"
  core::StaticSchedule s;
  s.push_idle(3);
  s.push_execution(0, 1);
  return s;
}

core::ConstraintArrivals arrivals_for(Time horizon) {
  core::ConstraintArrivals arrivals(2);
  arrivals[1] = max_rate_arrivals(4, horizon);
  return arrivals;
}

std::size_t satisfied_count(const core::ExecutiveResult& r) {
  std::size_t n = 0;
  for (const core::InvocationRecord& i : r.invocations) n += i.satisfied ? 1 : 0;
  return n;
}

bool same_actions(const std::vector<RecoveryAction>& x,
                  const std::vector<RecoveryAction>& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i].kind != y[i].kind || x[i].onset != y[i].onset ||
        x[i].detected != y[i].detected || x[i].completed != y[i].completed ||
        x[i].elem != y[i].elem || x[i].constraint != y[i].constraint ||
        x[i].attempts != y[i].attempts || x[i].from_schedule != y[i].from_schedule ||
        x[i].to_schedule != y[i].to_schedule) {
      return false;
    }
  }
  return true;
}

// Independent re-derivation of the seam-admissibility verdict: pick a
// concrete switch instant s == g (mod grid), splice a's tail at this
// phase with b restarted at s, and check every window the steady-state
// proofs do not cover, directly via window_contains_execution. `extra`
// shifts the concrete instant by whole grids — the verdict must not
// depend on it (admissibility is a pure function of (phase, s mod G)).
bool brute_admissible(const core::GraphModel& model, const core::StaticSchedule& a,
                      const core::StaticSchedule& b, Time phase, Time g, Time grid,
                      Time d_max, Time extra) {
  const Time len_a = a.length();
  const Time len_b = b.length();
  const Time back = d_max + len_a;
  const Time s = (back / grid + 4 + extra) * grid + g;

  std::vector<core::ScheduledOp> ops;
  const std::vector<core::ScheduledOp> a_ops = a.ops();
  for (Time base = s - phase - (back / len_a + 2) * len_a; base < s; base += len_a) {
    for (const core::ScheduledOp& op : a_ops) {
      const Time st = base + op.start;
      if (st >= s) break;
      if (st + op.duration > s) return false;  // switching would cut an execution
      ops.push_back(core::ScheduledOp{op.elem, st, op.duration});
    }
  }
  Time post = d_max;
  for (const core::TimingConstraint& c : model.constraints()) {
    if (c.periodic()) post = std::max(post, lcm_checked(len_b, c.period) + c.deadline);
  }
  const std::vector<core::ScheduledOp> b_ops = b.ops();
  for (Time base = s; base < s + post + len_b; base += len_b) {
    for (const core::ScheduledOp& op : b_ops) {
      ops.push_back(core::ScheduledOp{op.elem, base + op.start, op.duration});
    }
  }

  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const core::TimingConstraint& c = model.constraint(i);
    if (c.task_graph.empty()) continue;
    if (c.periodic()) {
      const Time span = lcm_checked(len_b, c.period);
      for (Time t = 0; t < s + span; t += c.period) {
        if (t + c.deadline <= s) continue;  // settled by a's own feasibility proof
        if (!core::window_contains_execution(c.task_graph, ops, t, t + c.deadline)) {
          return false;
        }
      }
    } else {
      for (Time t = s - c.deadline + 1; t < s; ++t) {
        if (!core::window_contains_execution(c.task_graph, ops, t, t + c.deadline)) {
          return false;
        }
      }
    }
  }
  return true;
}

std::vector<Time> entry_boundaries(const core::StaticSchedule& s) {
  std::vector<Time> b;
  Time off = 0;
  for (const core::ScheduleEntry& e : s.entries()) {
    b.push_back(off);
    off += e.duration;
  }
  return b;
}

// --- Clean-run equivalence ---------------------------------------------

TEST(Recovery, CleanRunMatchesNominalExecutive) {
  const core::GraphModel model = lenient_model();
  const FailoverTable table = compute_failover_table(model, {sched_a_first()});
  const core::ConstraintArrivals arrivals = arrivals_for(48);

  sim::ExecutionTrace nominal;
  sim::TraceAppender sink(nominal);
  const core::ExecutiveResult plain =
      core::run_executive(sched_a_first(), model, arrivals, 48, &sink);

  const SelfHealingResult healing = run_self_healing(model, table, arrivals, 48);
  EXPECT_EQ(healing.trace, nominal);
  EXPECT_TRUE(healing.actions.empty());
  EXPECT_TRUE(healing.executive.all_met);
  EXPECT_TRUE(plain.all_met);
  EXPECT_TRUE(healing.monitor.ok());
  EXPECT_EQ(healing.counters.faulted_ops(), 0u);
  EXPECT_EQ(healing.final_schedule, 0u);
}

// --- The differential acceptance criterion -----------------------------
//
// A fault plan that kills exactly the nominal dispatch slots: the
// no-recovery baseline provably violates, while the self-healing
// executive re-dispatches into idle slots and satisfies every window of
// every constraint whose recovery bound holds (here: all of them).

TEST(Recovery, DifferentialRecoveryBeatsNoRecoveryBaseline) {
  const core::GraphModel model = lenient_model();
  const core::StaticSchedule sched = sched_a_first();
  const core::ConstraintArrivals arrivals = arrivals_for(120);

  core::FaultPlan plan;
  plan.seed = 11;
  for (Time t : {Time{0}, Time{4}, Time{8}, Time{12}}) {
    plan.faults.push_back(core::FaultSpec{core::FaultKind::kDrop, t, t + 1, 1.0, 0});
  }

  // Every constraint's slack bound admits recovery under this schedule.
  for (const RecoveryBound& b : recovery_bounds(sched, model)) {
    EXPECT_TRUE(b.recoverable) << "constraint " << b.constraint;
  }

  const core::FaultRunResult baseline =
      core::run_executive_with_faults(sched, model, arrivals, 120, plan);
  EXPECT_FALSE(baseline.executive.all_met);  // provably violates

  const FailoverTable table = compute_failover_table(model, {sched});
  SelfHealingConfig config;
  config.faults = plan;
  const SelfHealingResult healing = run_self_healing(model, table, arrivals, 120, config);

  EXPECT_TRUE(healing.executive.all_met);
  EXPECT_TRUE(healing.monitor.ok());
  EXPECT_GT(healing.counters.dropped, 0u);
  EXPECT_GE(healing.retries_succeeded, 4u);
  EXPECT_GT(satisfied_count(healing.executive), satisfied_count(baseline.executive));
  // The online verdict over the realized trace is the offline ground
  // truth of the same trace.
  EXPECT_TRUE(monitor::verdicts_match(healing.monitor,
                                      monitor::reference_check(healing.trace, model)));
}

TEST(Recovery, SeededSweepNeverWorseAndMonitorConsistent) {
  const core::GraphModel model = lenient_model();
  const core::StaticSchedule sched = sched_a_first();
  const core::ConstraintArrivals arrivals = arrivals_for(140);
  const FailoverTable table = compute_failover_table(model, {sched});

  bool any_strict = false;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    core::FaultPlan plan;
    plan.seed = seed;
    plan.faults.push_back(
        core::FaultSpec{core::FaultKind::kDrop, 0, 60, 0.75, core::kAnyElement});
    plan.faults.push_back(core::FaultSpec{core::FaultKind::kCorrupt, 20, 80, 0.25, 0});

    const core::FaultRunResult baseline =
        core::run_executive_with_faults(sched, model, arrivals, 140, plan);
    SelfHealingConfig config;
    config.faults = plan;
    const SelfHealingResult healing =
        run_self_healing(model, table, arrivals, 140, config);

    ASSERT_EQ(healing.executive.invocations.size(), baseline.executive.invocations.size());
    // Retry only adds surviving executions at otherwise-idle slots, so
    // recovery can never lose a window the baseline satisfied.
    EXPECT_GE(satisfied_count(healing.executive), baseline.satisfied_count())
        << "seed " << seed;
    if (satisfied_count(healing.executive) > baseline.satisfied_count()) {
      any_strict = true;
    }
    EXPECT_TRUE(monitor::verdicts_match(healing.monitor,
                                        monitor::reference_check(healing.trace, model)))
        << "seed " << seed;
  }
  EXPECT_TRUE(any_strict);
}

// --- Recovery bounds ---------------------------------------------------

TEST(Recovery, BoundsClassifyConstraints) {
  // Lenient deadlines: both constraints recoverable, with finite parts.
  for (const RecoveryBound& b : recovery_bounds(sched_a_first(), lenient_model())) {
    EXPECT_TRUE(b.recoverable);
    ASSERT_TRUE(b.latency.has_value());
    ASSERT_TRUE(b.redispatch.has_value());
    EXPECT_EQ(b.detection, 1);
    EXPECT_LE(*b.latency + *b.redispatch + b.detection, 16);
  }
  // Tight deadlines (d == p == 4): L + W + delta > 4, not recoverable.
  for (const RecoveryBound& b : recovery_bounds(sched_a_first(), tight_model())) {
    EXPECT_FALSE(b.recoverable);
  }
  EXPECT_THROW(recovery_bounds(core::StaticSchedule{}, lenient_model()),
               std::invalid_argument);
}

TEST(Recovery, HeadBlockedRetryGivesUpImmediately) {
  // c weighs 3 but no idle run is longer than 2: a retry of Q could
  // never be placed, recovery_bounds says so, and the executive gives
  // up instead of head-blocking the queue forever.
  core::CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("c", 3);
  core::GraphModel model(std::move(comm));
  model.add_constraint(core::TimingConstraint{"P", single(0), 8, 8});
  model.add_constraint(core::TimingConstraint{"Q", single(1), 8, 8});
  core::StaticSchedule sched;
  sched.push_execution(0, 1);
  sched.push_idle(1);
  sched.push_execution(1, 3);
  sched.push_idle(2);
  sched.push_execution(0, 1);

  const std::vector<RecoveryBound> bounds = recovery_bounds(sched, model);
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_TRUE(bounds[0].recoverable);
  EXPECT_FALSE(bounds[1].redispatch.has_value());
  EXPECT_FALSE(bounds[1].recoverable);

  core::FaultPlan plan;
  plan.faults.push_back(core::FaultSpec{core::FaultKind::kDrop, 2, 3, 1.0, 1});
  const FailoverTable table = compute_failover_table(model, {sched});
  SelfHealingConfig config;
  config.faults = plan;
  const SelfHealingResult healing =
      run_self_healing(model, table, core::ConstraintArrivals(2), 48, config);
  EXPECT_EQ(healing.retries_abandoned, 1u);
  EXPECT_EQ(healing.retries_dispatched, 0u);
  bool saw = false;
  for (const RecoveryAction& a : healing.actions) {
    if (a.kind == RecoveryActionKind::kRetryGaveUp) {
      saw = true;
      EXPECT_EQ(a.constraint, 1u);
      EXPECT_EQ(a.attempts, 0u);
    }
  }
  EXPECT_TRUE(saw);
  EXPECT_FALSE(healing.executive.all_met);  // honestly reported
}

TEST(Recovery, RetryExhaustionRecordsGiveUp) {
  const core::GraphModel model = lenient_model();
  core::FaultPlan plan;
  plan.faults.push_back(core::FaultSpec{core::FaultKind::kElementFail, 0, core::kOpenEnd,
                                        1.0, 0, core::kAnyConstraint, 500});
  const FailoverTable table = compute_failover_table(model, {sched_a_first()});
  SelfHealingConfig config;
  config.faults = plan;
  const SelfHealingResult healing =
      run_self_healing(model, table, arrivals_for(40), 40, config);
  EXPECT_GT(healing.counters.element_down, 0u);
  EXPECT_GE(healing.retries_abandoned, 1u);
  EXPECT_EQ(healing.retries_succeeded, 0u);
  EXPECT_FALSE(healing.executive.all_met);
  EXPECT_TRUE(monitor::verdicts_match(healing.monitor,
                                      monitor::reference_check(healing.trace, model)));
}

TEST(Recovery, ResyncAbsorbsDriftLag) {
  const core::GraphModel model = lenient_model();
  core::FaultPlan plan;
  plan.faults.push_back(core::FaultSpec{core::FaultKind::kClockDrift, 0, core::kOpenEnd,
                                        1.0, core::kAnyElement, core::kAnyConstraint, 5});
  const FailoverTable table = compute_failover_table(model, {sched_a_first()});
  SelfHealingConfig config;
  config.faults = plan;
  const SelfHealingResult healing =
      run_self_healing(model, table, arrivals_for(80), 80, config);
  EXPECT_GT(healing.counters.drift_slots, 0);
  EXPECT_EQ(healing.trace.size(), 80u);
  std::size_t resyncs = 0;
  for (const RecoveryAction& a : healing.actions) {
    resyncs += a.kind == RecoveryActionKind::kResync ? 1 : 0;
  }
  EXPECT_GE(resyncs, 1u);
  EXPECT_TRUE(monitor::verdicts_match(healing.monitor,
                                      monitor::reference_check(healing.trace, model)));
}

// --- Failover table ----------------------------------------------------

TEST(Recovery, FailoverTableMatchesBruteForceExhaustively) {
  const core::GraphModel model = tight_model();
  const FailoverTable table =
      compute_failover_table(model, {sched_a_first(), sched_a_last()});
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.grid, 4);
  EXPECT_EQ(table.max_deadline, 4);
  for (const core::FeasibilityReport& r : table.reports) EXPECT_TRUE(r.feasible);

  for (std::size_t a = 0; a < 2; ++a) {
    const std::size_t b = 1 - a;
    const std::vector<Time> boundaries = entry_boundaries(table.schedules[a]);
    for (Time phase = 0; phase < table.schedules[a].length(); ++phase) {
      const bool at_boundary =
          std::find(boundaries.begin(), boundaries.end(), phase) != boundaries.end();
      for (Time g = 0; g < table.grid; ++g) {
        // Query far from g itself: admissible() reduces `when` mod grid.
        const bool got = table.admissible(a, b, phase, 100 * table.grid + g);
        if (!at_boundary) {
          // Only entry boundaries are switchable, whatever the seam says.
          EXPECT_FALSE(got) << a << "->" << b << " phase " << phase << " g " << g;
          continue;
        }
        const bool want = brute_admissible(model, table.schedules[a], table.schedules[b],
                                           phase, g, table.grid, table.max_deadline, 0);
        EXPECT_EQ(got, want) << a << "->" << b << " phase " << phase << " g " << g;
        // Pure-function claim: any concrete instant in the congruence
        // class gives the same verdict.
        EXPECT_EQ(want,
                  brute_admissible(model, table.schedules[a], table.schedules[b], phase,
                                   g, table.grid, table.max_deadline, 3));
      }
    }
  }
  // Both directions must offer at least one admissible cell, and the
  // phase right after the dispatch of a must be admissible (the window
  // it serves is already satisfied; b picks up from there).
  EXPECT_GE(table.admissible_count(0, 1), 1u);
  EXPECT_GE(table.admissible_count(1, 0), 1u);
  EXPECT_TRUE(table.admissible(0, 1, 1, 1));
  // Self-switches and out-of-range queries are never admissible.
  EXPECT_EQ(table.admissible_count(0, 0), 0u);
  EXPECT_FALSE(table.admissible(0, 0, 0, 0));
  EXPECT_FALSE(table.admissible(0, 5, 0, 0));
}

TEST(Recovery, FailoverTableRejectsBadInputs) {
  const core::GraphModel model = lenient_model();
  EXPECT_THROW(compute_failover_table(model, {}), std::invalid_argument);
  // An all-idle schedule is infeasible and cannot be a failover target.
  core::StaticSchedule idle;
  idle.push_idle(4);
  EXPECT_THROW(compute_failover_table(model, {sched_a_first(), idle}),
               std::invalid_argument);
  // An empty schedule is rejected before verification.
  EXPECT_THROW(compute_failover_table(model, {core::StaticSchedule{}}),
               std::invalid_argument);
  // The admissibility matrix cap is enforced.
  FailoverOptions tiny;
  tiny.max_offsets = 1;
  EXPECT_THROW(compute_failover_table(model, {sched_a_first(), sched_a_last()}, tiny),
               std::invalid_argument);
}

// --- Hot failover at run time ------------------------------------------

TEST(Recovery, FailoverSwitchesOnlyAtAdmissibleSlots) {
  const core::GraphModel model = tight_model();
  const FailoverTable table =
      compute_failover_table(model, {sched_a_first(), sched_a_last()});
  core::FaultPlan plan;
  plan.faults.push_back(core::FaultSpec{core::FaultKind::kDrop, 0, 9, 1.0, 0});

  SelfHealingConfig config;
  config.faults = plan;
  config.recovery.retry = false;        // tight deadlines: retry cannot help
  config.recovery.confirm_online = false;
  const SelfHealingResult healing =
      run_self_healing(model, table, arrivals_for(60), 60, config);

  EXPECT_GE(healing.failovers(), 1u);
  // Replay the switch sequence: with no drift and no retries the table
  // advances one offset per wall slot, so the phase at each switch is
  // reconstructible — and every taken switch must be admissible both by
  // the table and by the independent brute-force seam check.
  std::size_t cur = 0;
  Time anchor = 0;  // instant the current schedule (re)started at offset 0
  for (const RecoveryAction& a : healing.actions) {
    if (a.kind != RecoveryActionKind::kFailover) continue;
    EXPECT_EQ(a.from_schedule, cur);
    const Time len = table.schedules[cur].length();
    const Time phase = (a.completed - anchor) % len;
    EXPECT_TRUE(table.admissible(a.from_schedule, a.to_schedule, phase, a.completed))
        << "switch at t=" << a.completed;
    EXPECT_TRUE(brute_admissible(model, table.schedules[a.from_schedule],
                                 table.schedules[a.to_schedule], phase,
                                 a.completed % table.grid, table.grid,
                                 table.max_deadline, 0))
        << "switch at t=" << a.completed;
    EXPECT_GE(a.completed, a.detected);
    cur = a.to_schedule;
    anchor = a.completed;
  }
  EXPECT_EQ(cur, healing.final_schedule);
  EXPECT_TRUE(monitor::verdicts_match(healing.monitor,
                                      monitor::reference_check(healing.trace, model)));
}

TEST(Recovery, ConfirmOnlineStillFailsOverAndIsDeterministic) {
  const core::GraphModel model = tight_model();
  const FailoverTable table =
      compute_failover_table(model, {sched_a_first(), sched_a_last()});
  core::FaultPlan plan;
  plan.faults.push_back(core::FaultSpec{core::FaultKind::kDrop, 0, 9, 1.0, 0});
  SelfHealingConfig config;
  config.faults = plan;
  config.recovery.retry = false;
  config.recovery.confirm_online = true;
  const SelfHealingResult r1 = run_self_healing(model, table, arrivals_for(60), 60, config);
  const SelfHealingResult r2 = run_self_healing(model, table, arrivals_for(60), 60, config);
  EXPECT_GE(r1.failovers() + r1.blocked_switches, 1u);
  EXPECT_EQ(r1.trace, r2.trace);
  EXPECT_TRUE(same_actions(r1.actions, r2.actions));
  EXPECT_EQ(r1.blocked_switches, r2.blocked_switches);
  EXPECT_EQ(r1.final_schedule, r2.final_schedule);
}

TEST(Recovery, FailoverDisabledStaysOnInitialSchedule) {
  const core::GraphModel model = tight_model();
  const FailoverTable table =
      compute_failover_table(model, {sched_a_first(), sched_a_last()});
  core::FaultPlan plan;
  plan.faults.push_back(core::FaultSpec{core::FaultKind::kDrop, 0, 9, 1.0, 0});
  SelfHealingConfig config;
  config.faults = plan;
  config.recovery.retry = false;
  config.recovery.failover = false;
  const SelfHealingResult healing =
      run_self_healing(model, table, arrivals_for(60), 60, config);
  EXPECT_EQ(healing.failovers(), 0u);
  EXPECT_EQ(healing.final_schedule, 0u);
}

// --- Determinism pin across verifier thread counts ---------------------

TEST(Recovery, DeterministicAcrossThreadCounts) {
  const core::GraphModel model = tight_model();
  core::FaultPlan plan;
  plan.seed = 23;
  plan.faults.push_back(core::FaultSpec{core::FaultKind::kDrop, 0, 30, 0.5, 0});
  plan.faults.push_back(core::FaultSpec{core::FaultKind::kClockDrift, 0, core::kOpenEnd,
                                        1.0, core::kAnyElement, core::kAnyConstraint, 7});

  std::vector<FailoverTable> tables;
  std::vector<SelfHealingResult> runs;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    FailoverOptions fo;
    fo.n_threads = threads;
    tables.push_back(
        compute_failover_table(model, {sched_a_first(), sched_a_last()}, fo));
    SelfHealingConfig config;
    config.faults = plan;
    config.recovery.n_threads = threads;
    runs.push_back(run_self_healing(model, tables.back(), arrivals_for(100), 100, config));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(tables[i].ok, tables[0].ok);
    EXPECT_EQ(tables[i].reports, tables[0].reports);
    EXPECT_EQ(runs[i].trace, runs[0].trace);
    EXPECT_TRUE(same_actions(runs[i].actions, runs[0].actions));
    EXPECT_EQ(runs[i].counters, runs[0].counters);
    EXPECT_EQ(runs[i].fault_events, runs[0].fault_events);
    EXPECT_EQ(runs[i].final_schedule, runs[0].final_schedule);
    EXPECT_EQ(runs[i].blocked_switches, runs[0].blocked_switches);
    EXPECT_EQ(runs[i].monitor.violations, runs[0].monitor.violations);
  }
}

// --- Metrics and input validation --------------------------------------

TEST(Recovery, LatencyMetricsMatchActions) {
  const core::GraphModel model = lenient_model();
  core::FaultPlan plan;
  plan.seed = 11;
  for (Time t : {Time{0}, Time{4}, Time{8}, Time{12}}) {
    plan.faults.push_back(core::FaultSpec{core::FaultKind::kDrop, t, t + 1, 1.0, 0});
  }
  const FailoverTable table = compute_failover_table(model, {sched_a_first()});
  SelfHealingConfig config;
  config.faults = plan;
  const SelfHealingResult healing =
      run_self_healing(model, table, arrivals_for(120), 120, config);

  Time sum = 0;
  Time max = 0;
  std::size_t n = 0;
  for (const RecoveryAction& a : healing.actions) {
    if (a.kind == RecoveryActionKind::kRetryGaveUp) continue;
    sum += a.detection_to_recovery();
    max = std::max(max, a.detection_to_recovery());
    ++n;
  }
  ASSERT_GT(n, 0u);
  EXPECT_DOUBLE_EQ(healing.mean_detection_to_recovery,
                   static_cast<double>(sum) / static_cast<double>(n));
  EXPECT_EQ(healing.max_detection_to_recovery, max);
}

TEST(Recovery, RunSelfHealingValidatesInputs) {
  const core::GraphModel model = lenient_model();
  const FailoverTable table = compute_failover_table(model, {sched_a_first()});
  EXPECT_THROW(run_self_healing(model, FailoverTable{}, arrivals_for(10), 10),
               std::invalid_argument);
  EXPECT_THROW(run_self_healing(model, table, arrivals_for(10), -1),
               std::invalid_argument);
  SelfHealingConfig bad_initial;
  bad_initial.initial = 5;
  EXPECT_THROW(run_self_healing(model, table, arrivals_for(10), 10, bad_initial),
               std::invalid_argument);
  SelfHealingConfig bad_plan;
  bad_plan.faults.faults.push_back(core::FaultSpec{core::FaultKind::kDrop, 0, 10, 2.0, 0});
  EXPECT_THROW(run_self_healing(model, table, arrivals_for(10), 10, bad_plan),
               std::invalid_argument);
  EXPECT_THROW(run_self_healing(model, table, core::ConstraintArrivals{}, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtg::rt
