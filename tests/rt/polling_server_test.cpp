#include "rt/polling_server.hpp"

#include <gtest/gtest.h>

namespace rtg::rt {
namespace {

Task make(Time c, Time p) {
  Task t;
  t.c = c;
  t.p = p;
  t.d = p;
  return t;
}

TEST(PollingServer, ValidatesArguments) {
  TaskSet ts;
  EXPECT_THROW((void)simulate_polling_server(ts, 0, 4, {}, 10), std::invalid_argument);
  EXPECT_THROW((void)simulate_polling_server(ts, 5, 4, {}, 10), std::invalid_argument);
  EXPECT_THROW((void)simulate_polling_server(ts, 1, 4, {{5, 1}, {2, 1}}, 10),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_polling_server(ts, 1, 4, {{0, 0}}, 10),
               std::invalid_argument);
  Task sporadic = make(1, 4);
  sporadic.arrival = Arrival::kSporadic;
  TaskSet bad;
  bad.add(sporadic);
  EXPECT_THROW((void)simulate_polling_server(bad, 1, 4, {}, 10),
               std::invalid_argument);
}

TEST(PollingServer, ServesJobPresentAtReplenishment) {
  TaskSet ts;  // no periodic load
  const auto r = simulate_polling_server(ts, 1, 4, {{0, 1}}, 12);
  ASSERT_EQ(r.aperiodic_jobs.size(), 1u);
  EXPECT_EQ(r.aperiodic_jobs[0].completion, 1);  // served immediately
}

TEST(PollingServer, ArrivalJustAfterPollWaitsFullPeriod) {
  TaskSet ts;
  // Replenishments at 0, 4, 8. Arrival at 1 finds the budget already
  // forfeited (queue was empty at t=0): service at t=4.
  const auto r = simulate_polling_server(ts, 1, 4, {{1, 1}}, 12);
  EXPECT_EQ(r.aperiodic_jobs[0].completion, 5);
  EXPECT_EQ(r.aperiodic_jobs[0].response_time(), 4);
}

TEST(PollingServer, BudgetLimitsServicePerPeriod) {
  TaskSet ts;
  // Capacity 2 per 6: a 5-slot job needs three periods.
  const auto r = simulate_polling_server(ts, 2, 6, {{0, 5}}, 30);
  EXPECT_EQ(r.aperiodic_jobs[0].completion, 13);  // 2@[0,2), 2@[6,8), 1@[12,13)
}

TEST(PollingServer, FifoOrderAmongJobs) {
  TaskSet ts;
  const auto r = simulate_polling_server(ts, 2, 4, {{0, 2}, {0, 2}}, 20);
  ASSERT_EQ(r.aperiodic_jobs.size(), 2u);
  EXPECT_EQ(r.aperiodic_jobs[0].completion, 2);
  EXPECT_EQ(r.aperiodic_jobs[1].completion, 6);  // next period's budget
}

TEST(PollingServer, PeriodicTasksKeepDeadlines) {
  TaskSet ts({make(2, 4)});  // U = 0.5
  // Server 1/4: total 0.75 <= 1 under EDF.
  const auto r = simulate_polling_server(ts, 1, 4, {{0, 3}, {8, 2}}, 40);
  EXPECT_EQ(r.periodic_misses(), 0u);
  for (const ServedJob& j : r.aperiodic_jobs) {
    EXPECT_TRUE(j.completed());
  }
}

TEST(PollingServer, ServerDefersToUrgentPeriodic) {
  // Periodic task with tight deadline-period 2 competes each slot; the
  // server (deadline 8) loses the EDF tie-breaks until the task is done.
  TaskSet ts({make(1, 2)});
  const auto r = simulate_polling_server(ts, 4, 8, {{0, 2}}, 16);
  EXPECT_EQ(r.periodic_misses(), 0u);
  // Slot 0 goes to the periodic task (deadline 2 < 8).
  EXPECT_EQ(r.trace[0], 0u);
  EXPECT_EQ(r.trace[1], 1u);  // server slot id = ts.size() = 1
}

TEST(PollingServer, TraceUsesServerSlotId) {
  TaskSet ts({make(1, 4)});
  const auto r = simulate_polling_server(ts, 1, 4, {{0, 1}}, 4);
  EXPECT_EQ(r.trace.count(1), 1u);  // server slot
  EXPECT_EQ(r.trace.count(0), 1u);  // periodic task
}

TEST(PollingServer, WorstResponseAccounting) {
  TaskSet ts;
  const auto r = simulate_polling_server(ts, 1, 5, {{1, 1}, {11, 1}}, 30);
  EXPECT_EQ(r.worst_aperiodic_response(), 5);  // both wait till the next poll
}

TEST(PollingServer, UnfinishedJobAtHorizon) {
  TaskSet ts;
  const auto r = simulate_polling_server(ts, 1, 8, {{0, 5}}, 16);
  EXPECT_FALSE(r.aperiodic_jobs[0].completed());
  EXPECT_EQ(r.worst_aperiodic_response(), -1);
}

TEST(PollingServer, ComparedWithGraphModelGuarantee) {
  // The polling server's worst response for a 1-slot job is ~2 periods
  // (arrive just after the poll); the graph model's Theorem-3 server at
  // the same rate guarantees d = 2 * period by construction. Both views
  // agree on the bound — the difference is that the static schedule
  // *certifies* it per window.
  TaskSet ts;
  const Time period = 6;
  Time worst = -1;
  for (Time offset = 0; offset < period; ++offset) {
    const auto r =
        simulate_polling_server(ts, 1, period, {{offset, 1}}, 5 * period);
    worst = std::max(worst, r.aperiodic_jobs[0].response_time());
  }
  EXPECT_LE(worst, 2 * period);
  EXPECT_GE(worst, period);
}

TEST(DeferrableServer, ServesMidPeriodArrivalImmediately) {
  TaskSet ts;
  // Budget retained: the t=1 arrival is served at t=1 (polling made it
  // wait until t=4).
  const auto r = simulate_deferrable_server(ts, 1, 4, {{1, 1}}, 12);
  EXPECT_EQ(r.aperiodic_jobs[0].completion, 2);
  EXPECT_EQ(r.aperiodic_jobs[0].response_time(), 1);
}

TEST(DeferrableServer, BudgetStillCapsPerPeriod) {
  TaskSet ts;
  const auto r = simulate_deferrable_server(ts, 2, 6, {{0, 5}}, 30);
  EXPECT_EQ(r.aperiodic_jobs[0].completion, 13);  // same cap as polling
}

TEST(DeferrableServer, BackToBackAnomalyVisible) {
  TaskSet ts;
  // A job arriving late in one period plus one early in the next can
  // receive 2 * capacity within less than one period.
  const auto r = simulate_deferrable_server(ts, 2, 8, {{6, 2}, {8, 2}}, 24);
  EXPECT_EQ(r.aperiodic_jobs[0].completion, 8);   // slots 6, 7
  EXPECT_EQ(r.aperiodic_jobs[1].completion, 10);  // slots 8, 9 — back to back
}

TEST(DeferrableServer, NeverSlowerThanPolling) {
  TaskSet ts;
  for (Time offset = 0; offset < 6; ++offset) {
    const std::vector<AperiodicJob> jobs{{offset, 2}};
    const auto poll = simulate_polling_server(ts, 2, 6, jobs, 40);
    const auto defer = simulate_deferrable_server(ts, 2, 6, jobs, 40);
    ASSERT_TRUE(poll.aperiodic_jobs[0].completed());
    ASSERT_TRUE(defer.aperiodic_jobs[0].completed());
    EXPECT_LE(defer.aperiodic_jobs[0].completion, poll.aperiodic_jobs[0].completion)
        << "offset " << offset;
  }
}

TEST(DeferrableServer, PeriodicTasksStillMeetDeadlines) {
  TaskSet ts({make(2, 4)});
  const auto r = simulate_deferrable_server(ts, 1, 4, {{1, 1}, {9, 1}}, 40);
  EXPECT_EQ(r.periodic_misses(), 0u);
}

TEST(PollingServerOverrun, ZeroProbabilityMatchesPlainSimulation) {
  TaskSet ts({make(2, 8)});
  const std::vector<AperiodicJob> jobs{{1, 2}, {13, 1}};
  const auto plain = simulate_polling_server(ts, 2, 6, jobs, 60);
  ServerOverruns ov;
  ov.probability = 0.0;
  const auto faulty = simulate_polling_server_overrun(ts, 2, 6, jobs, 60, ov);
  EXPECT_EQ(plain.periodic_misses(), faulty.periodic_misses());
  ASSERT_EQ(plain.aperiodic_jobs.size(), faulty.aperiodic_jobs.size());
  for (std::size_t i = 0; i < plain.aperiodic_jobs.size(); ++i) {
    EXPECT_EQ(plain.aperiodic_jobs[i].completion, faulty.aperiodic_jobs[i].completion);
  }
}

TEST(PollingServerOverrun, CertainOverrunsDegradeService) {
  // Near-saturated EDF with no enforcement: doubling every execution
  // demand must cause periodic misses the clean run does not have.
  TaskSet ts({make(3, 8), make(2, 6)});
  const std::vector<AperiodicJob> jobs{{0, 1}, {6, 1}, {12, 1}};
  const auto plain = simulate_polling_server(ts, 1, 8, jobs, 120);
  EXPECT_EQ(plain.periodic_misses(), 0u);

  ServerOverruns ov;
  ov.probability = 1.0;
  ov.magnitude = 2.0;
  const auto faulty = simulate_polling_server_overrun(ts, 1, 8, jobs, 120, ov);
  EXPECT_GT(faulty.periodic_misses(), 0u);
}

TEST(PollingServerOverrun, DeterministicUnderSeed) {
  TaskSet ts({make(2, 6)});
  const std::vector<AperiodicJob> jobs{{0, 2}, {7, 2}, {15, 1}};
  ServerOverruns ov;
  ov.probability = 0.5;
  ov.magnitude = 2.0;
  ov.seed = 42;
  const auto a = simulate_polling_server_overrun(ts, 2, 6, jobs, 80, ov);
  const auto b = simulate_polling_server_overrun(ts, 2, 6, jobs, 80, ov);
  EXPECT_EQ(a.periodic_misses(), b.periodic_misses());
  ASSERT_EQ(a.aperiodic_jobs.size(), b.aperiodic_jobs.size());
  for (std::size_t i = 0; i < a.aperiodic_jobs.size(); ++i) {
    EXPECT_EQ(a.aperiodic_jobs[i].completion, b.aperiodic_jobs[i].completion);
  }
}

}  // namespace
}  // namespace rtg::rt
