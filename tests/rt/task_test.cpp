#include "rt/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rtg::rt {
namespace {

Task make(Time c, Time p, Time d) {
  Task t;
  t.c = c;
  t.p = p;
  t.d = d;
  return t;
}

TEST(Task, UtilizationAndDensity) {
  const Task t = make(2, 10, 5);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.2);
  EXPECT_DOUBLE_EQ(t.density(), 0.4);
}

TEST(TaskSet, AddValidates) {
  TaskSet ts;
  EXPECT_THROW(ts.add(make(0, 5, 5)), std::invalid_argument);
  EXPECT_THROW(ts.add(make(1, 0, 5)), std::invalid_argument);
  EXPECT_THROW(ts.add(make(1, 5, 0)), std::invalid_argument);
  EXPECT_EQ(ts.add(make(1, 5, 5)), 0u);
  EXPECT_EQ(ts.size(), 1u);
}

TEST(TaskSet, CriticalSectionBounds) {
  Task t = make(3, 10, 10);
  t.critical_section = 4;  // > c
  TaskSet ts;
  EXPECT_THROW(ts.add(t), std::invalid_argument);
  t.critical_section = 3;
  EXPECT_NO_THROW(ts.add(t));
}

TEST(TaskSet, UtilizationSums) {
  TaskSet ts({make(1, 4, 4), make(1, 2, 2)});
  EXPECT_DOUBLE_EQ(ts.utilization(), 0.75);
}

TEST(TaskSet, DensityUsesMinOfPandD) {
  TaskSet ts({make(2, 10, 4)});
  EXPECT_DOUBLE_EQ(ts.density(), 0.5);
}

TEST(TaskSet, HyperperiodIsLcm) {
  TaskSet ts({make(1, 4, 4), make(1, 6, 6), make(1, 10, 10)});
  EXPECT_EQ(ts.hyperperiod(), 60);
}

TEST(TaskSet, HyperperiodOfEmptySetIsOne) {
  TaskSet ts;
  EXPECT_EQ(ts.hyperperiod(), 1);
}

TEST(TaskSet, MaxDeadline) {
  TaskSet ts({make(1, 4, 3), make(1, 6, 9)});
  EXPECT_EQ(ts.max_deadline(), 9);
}

TEST(TaskSet, ConstrainedDeadlinesDetection) {
  TaskSet constrained({make(1, 4, 4), make(1, 6, 3)});
  EXPECT_TRUE(constrained.constrained_deadlines());
  TaskSet unconstrained({make(1, 4, 8)});
  EXPECT_FALSE(unconstrained.constrained_deadlines());
}

TEST(LcmChecked, BasicAndOverflow) {
  EXPECT_EQ(lcm_checked(4, 6), 12);
  EXPECT_EQ(lcm_checked(1, 7), 7);
  EXPECT_THROW((void)lcm_checked(INT64_MAX - 1, INT64_MAX - 2), std::overflow_error);
}

TEST(TaskSet, IndexingIsBoundsChecked) {
  TaskSet ts({make(1, 2, 2)});
  EXPECT_EQ(ts[0].c, 1);
  EXPECT_THROW((void)ts[5], std::out_of_range);
}

}  // namespace
}  // namespace rtg::rt
