#include "rt/scheduler.hpp"

#include <gtest/gtest.h>

#include "rt/analysis.hpp"

namespace rtg::rt {
namespace {

Task make(Time c, Time p, Time d, Arrival arrival = Arrival::kPeriodic, Time cs = 0) {
  Task t;
  t.c = c;
  t.p = p;
  t.d = d;
  t.arrival = arrival;
  t.critical_section = cs;
  return t;
}

TEST(Simulate, EmptySetIdles) {
  const SimResult r = simulate(TaskSet{}, Policy::kEdf, 5);
  EXPECT_EQ(r.trace.size(), 5u);
  EXPECT_EQ(r.trace.idle_count(), 5u);
  EXPECT_TRUE(r.jobs.empty());
}

TEST(Simulate, SingleTaskRunsEveryPeriod) {
  TaskSet ts({make(2, 5, 5)});
  const SimResult r = simulate(ts, Policy::kEdf, 10);
  EXPECT_EQ(r.jobs.size(), 2u);
  EXPECT_EQ(r.miss_count(), 0u);
  EXPECT_EQ(r.trace.count(0), 4u);
  EXPECT_EQ(r.jobs[0].completion, 2);
  EXPECT_EQ(r.jobs[1].completion, 7);
}

TEST(Simulate, EdfMeetsFullUtilization) {
  TaskSet ts({make(1, 2, 2), make(2, 4, 4)});
  const SimResult r = simulate(ts, Policy::kEdf, ts.hyperperiod() * 4);
  EXPECT_EQ(r.miss_count(), 0u);
  EXPECT_EQ(r.trace.idle_count(), 0u);  // U = 1
}

TEST(Simulate, RmMissesWhereEdfSucceeds) {
  // U = 1 non-harmonic: classic RM overload.
  TaskSet ts({make(2, 4, 4), make(3, 6, 6)});
  const SimResult edf = simulate(ts, Policy::kEdf, ts.hyperperiod() * 2);
  const SimResult rm = simulate(ts, Policy::kRm, ts.hyperperiod() * 2);
  EXPECT_EQ(edf.miss_count(), 0u);
  EXPECT_GT(rm.miss_count(), 0u);
}

TEST(Simulate, LlfMeetsFullUtilization) {
  TaskSet ts({make(2, 4, 4), make(3, 6, 6)});
  const SimResult r = simulate(ts, Policy::kLlf, ts.hyperperiod() * 2);
  EXPECT_EQ(r.miss_count(), 0u);
}

TEST(Simulate, DmPrioritizesShorterDeadline) {
  TaskSet ts({make(1, 10, 9), make(1, 10, 2)});
  const SimResult r = simulate(ts, Policy::kDm, 10);
  // Task 1 (d=2) must run first.
  EXPECT_EQ(r.trace[0], 1u);
  EXPECT_EQ(r.trace[1], 0u);
}

TEST(Simulate, ResponseTimeMatchesAnalysis) {
  TaskSet ts({make(1, 4, 4), make(2, 6, 6)});
  const SimResult r = simulate(ts, Policy::kRm, ts.hyperperiod());
  const auto rta = response_times(ts, PriorityOrder::kRateMonotonic);
  EXPECT_EQ(r.worst_response(0), *rta[0]);
  EXPECT_EQ(r.worst_response(1), *rta[1]);
}

TEST(Simulate, CriticalSectionBlocksHigherPriority) {
  // Task 1 (periodic) starts its 3-slot critical section at t=0; the
  // urgent sporadic task 0 arrives at t=1 with deadline 3 and is
  // blocked until t=3 — priority inversion makes it miss.
  TaskSet ts;
  ts.add(make(1, 8, 2, Arrival::kSporadic));
  ts.add(make(3, 12, 12, Arrival::kPeriodic, 3));
  ArrivalStreams arrivals{{1}, {}};
  const SimResult r = simulate(ts, Policy::kEdf, 12, &arrivals);
  EXPECT_EQ(r.trace[0], 1u);
  EXPECT_EQ(r.trace[1], 1u);  // would be task 0 without the CS
  EXPECT_EQ(r.trace[2], 1u);
  EXPECT_EQ(r.trace[3], 0u);
  EXPECT_EQ(r.miss_count(), 1u);  // the blocked sporadic job

  // Pipelined control: unit critical section removes the inversion.
  TaskSet ts2;
  ts2.add(make(1, 8, 2, Arrival::kSporadic));
  ts2.add(make(3, 12, 12, Arrival::kPeriodic, 1));
  const SimResult r2 = simulate(ts2, Policy::kEdf, 12, &arrivals);
  EXPECT_EQ(r2.miss_count(), 0u);
  EXPECT_EQ(r2.trace[1], 0u);  // preempts after the unit section
}

TEST(Simulate, PreemptionWithoutCriticalSection) {
  // Task 1 (long, late deadline) is preempted when task 0 re-releases.
  TaskSet ts({make(1, 3, 3), make(5, 9, 9)});
  const SimResult r = simulate(ts, Policy::kEdf, 9);
  EXPECT_EQ(r.miss_count(), 0u);
  // t=0: task0 (d=3); t=1,2: task1; t=3: task0 (d=6) preempts task1.
  EXPECT_EQ(r.trace[0], 0u);
  EXPECT_EQ(r.trace[3], 0u);
}

TEST(Simulate, SporadicUsesArrivalStream) {
  TaskSet ts;
  ts.add(make(2, 5, 5, Arrival::kSporadic));
  ArrivalStreams arrivals{{1, 7}};
  const SimResult r = simulate(ts, Policy::kEdf, 12, &arrivals);
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_EQ(r.jobs[0].release, 1);
  EXPECT_EQ(r.jobs[1].release, 7);
  EXPECT_EQ(r.miss_count(), 0u);
  EXPECT_EQ(r.trace[0], sim::kIdle);
}

TEST(Simulate, SporadicWithoutStreamThrows) {
  TaskSet ts;
  ts.add(make(1, 5, 5, Arrival::kSporadic));
  EXPECT_THROW((void)simulate(ts, Policy::kEdf, 10), std::invalid_argument);
}

TEST(Simulate, MinSeparationViolationThrows) {
  TaskSet ts;
  ts.add(make(1, 5, 5, Arrival::kSporadic));
  ArrivalStreams arrivals{{0, 3}};
  EXPECT_THROW((void)simulate(ts, Policy::kEdf, 10, &arrivals), std::invalid_argument);
}

TEST(Simulate, OverloadProducesMisses) {
  TaskSet ts({make(3, 4, 4), make(3, 4, 4)});  // U = 1.5
  const SimResult r = simulate(ts, Policy::kEdf, 16);
  EXPECT_GT(r.miss_count(), 0u);
}

TEST(Simulate, UnfinishedJobAtHorizonCountsAsMiss) {
  TaskSet ts({make(10, 20, 20)});
  const SimResult r = simulate(ts, Policy::kEdf, 5);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_FALSE(r.jobs[0].completed());
  EXPECT_TRUE(r.jobs[0].missed());
}

TEST(MaxRateArrivals, SpacedByMinSep) {
  const auto a = max_rate_arrivals(4, 10);
  EXPECT_EQ(a, (std::vector<Time>{0, 4, 8}));
  EXPECT_THROW((void)max_rate_arrivals(0, 10), std::invalid_argument);
}

TEST(RandomArrivals, RespectsMinSeparation) {
  sim::Rng rng(3);
  const auto a = random_arrivals(5, 200, 2.0, rng);
  ASSERT_GE(a.size(), 2u);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i] - a[i - 1], 5);
  }
}

TEST(RandomArrivals, ZeroExtraIsMaxRate) {
  sim::Rng rng(3);
  EXPECT_EQ(random_arrivals(4, 10, 0.0, rng), max_rate_arrivals(4, 10));
}

}  // namespace
}  // namespace rtg::rt
