#include <gtest/gtest.h>

#include "rt/analysis.hpp"

namespace rtg::rt {
namespace {

Task make(Time c, Time p, Time d, Time cs = 0) {
  Task t;
  t.c = c;
  t.p = p;
  t.d = d;
  t.critical_section = cs;
  return t;
}

TEST(ResponseTimeUnder, MatchesRmAnalysisUnderRmOrder) {
  TaskSet ts({make(1, 4, 4), make(2, 6, 6)});
  const auto rm = response_times(ts, PriorityOrder::kRateMonotonic);
  const std::vector<std::size_t> order{0, 1};  // RM order here
  EXPECT_EQ(response_time_under(ts, order, 0), rm[0]);
  EXPECT_EQ(response_time_under(ts, order, 1), rm[1]);
}

TEST(ResponseTimeUnder, OrderMatters) {
  TaskSet ts({make(1, 4, 4), make(2, 6, 6)});
  // Inverted order: the short task waits behind the long one.
  const std::vector<std::size_t> inverted{1, 0};
  const auto rt0 = response_time_under(ts, inverted, 0);
  ASSERT_TRUE(rt0.has_value());
  EXPECT_EQ(*rt0, 3);  // 1 + interference 2
}

TEST(ResponseTimeUnder, MissingTaskThrows) {
  TaskSet ts({make(1, 4, 4)});
  EXPECT_THROW((void)response_time_under(ts, {0}, 3), std::invalid_argument);
  EXPECT_THROW((void)response_time_under(ts, {}, 0), std::invalid_argument);
}

TEST(Audsley, FindsAssignmentWhereDmFails) {
  // Classic OPA showcase uses offsets/jitter; with plain constrained
  // deadlines DM is optimal, so here Audsley must simply agree with DM
  // on feasibility.
  TaskSet ts({make(2, 10, 5), make(2, 10, 7), make(2, 10, 9)});
  const auto order = audsley_assignment(ts);
  ASSERT_TRUE(order.has_value());
  // All three meet their deadlines under the returned order.
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto rt = response_time_under(ts, *order, i);
    ASSERT_TRUE(rt.has_value()) << i;
    EXPECT_LE(*rt, ts[i].d);
  }
}

TEST(Audsley, AgreesWithDmOnRandomSets) {
  // DM is optimal for synchronous constrained-deadline sets without
  // blocking, so audsley-feasible == dm-feasible.
  const Time params[][3] = {
      {1, 5, 3}, {2, 7, 6}, {1, 4, 2}, {3, 11, 9}, {2, 9, 4},
  };
  for (int mask = 1; mask < 32; ++mask) {
    TaskSet ts;
    for (int bit = 0; bit < 5; ++bit) {
      if (mask & (1 << bit)) {
        ts.add(make(params[bit][0], params[bit][1], params[bit][2]));
      }
    }
    const bool dm = fixed_priority_schedulable(ts, PriorityOrder::kDeadlineMonotonic);
    const bool opa = audsley_assignment(ts).has_value();
    EXPECT_EQ(dm, opa) << "mask " << mask;
  }
}

TEST(Audsley, InfeasibleSetRejected) {
  TaskSet ts({make(3, 4, 4), make(3, 4, 4)});
  EXPECT_EQ(audsley_assignment(ts), std::nullopt);
}

TEST(Audsley, SingleTask) {
  TaskSet ts({make(2, 5, 3)});
  const auto order = audsley_assignment(ts);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<std::size_t>{0}));
}

TEST(Audsley, EmptySet) {
  TaskSet ts;
  const auto order = audsley_assignment(ts);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

TEST(Audsley, RequiresConstrainedDeadlines) {
  TaskSet ts({make(1, 4, 9)});
  EXPECT_THROW((void)audsley_assignment(ts), std::invalid_argument);
}

TEST(Audsley, BlockingAwareAssignment) {
  // The low-priority task's critical section blocks whoever sits above
  // it; Audsley must still find the workable order.
  TaskSet ts({make(1, 6, 3), make(3, 12, 12, 2)});
  const auto order = audsley_assignment(ts);
  ASSERT_TRUE(order.has_value());
  // The urgent task cannot sit at the bottom (interference 3 > d - c),
  // so Audsley must put it on top, where blocking 2 + c 1 just fits.
  EXPECT_EQ((*order)[0], 0u);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto rt = response_time_under(ts, *order, i);
    ASSERT_TRUE(rt.has_value());
    EXPECT_LE(*rt, ts[i].d);
  }
}

}  // namespace
}  // namespace rtg::rt
