#include "rt/cyclic_executive.hpp"

#include <gtest/gtest.h>

namespace rtg::rt {
namespace {

Task make(Time c, Time p, Time d) {
  Task t;
  t.c = c;
  t.p = p;
  t.d = d;
  return t;
}

TEST(CandidateFrameSizes, ClassicExample) {
  // Liu's example: tasks (1,4,4), (2,5,5), (5,20,20): H = 20.
  TaskSet ts({make(1, 4, 4), make(2, 5, 5), make(5, 20, 20)});
  // f must divide 20, f >= 5 (max c), and 2f - gcd(f,p) <= d for all.
  // f=5: gcds 1,5,5 -> 9>4 fails. f=10: 2*10-2=18>4 fails. f=20 fails.
  EXPECT_TRUE(candidate_frame_sizes(ts).empty());
}

TEST(CandidateFrameSizes, HarmonicSetHasFrames) {
  TaskSet ts({make(1, 4, 4), make(2, 8, 8)});
  const auto sizes = candidate_frame_sizes(ts);
  ASSERT_FALSE(sizes.empty());
  EXPECT_EQ(sizes.front(), 2);  // f=2: 2*2-2=2<=4, fits both
  for (Time f : sizes) {
    EXPECT_EQ(ts.hyperperiod() % f, 0);
    EXPECT_GE(f, 2);
  }
}

TEST(CandidateFrameSizes, RejectsSporadicTasks) {
  Task t = make(1, 4, 4);
  t.arrival = Arrival::kSporadic;
  TaskSet ts;
  ts.add(t);
  EXPECT_THROW((void)candidate_frame_sizes(ts), std::invalid_argument);
}

TEST(BuildCyclicExecutive, PacksHarmonicSet) {
  TaskSet ts({make(1, 4, 4), make(2, 8, 8)});
  const auto exec = build_cyclic_executive(ts);
  ASSERT_TRUE(exec.has_value());
  EXPECT_EQ(exec->hyperperiod, 8);
  EXPECT_EQ(exec->hyperperiod % exec->frame_size, 0);

  // Every job's full computation appears within [release, deadline].
  const auto trace = exec->to_trace();
  ASSERT_EQ(trace.size(), 8u);
  EXPECT_EQ(trace.count(0), 2u);  // task 0 twice per hyperperiod
  EXPECT_EQ(trace.count(1), 2u);  // task 1's 2 slots once
}

TEST(BuildCyclicExecutive, JobsMeetDeadlinesInTrace) {
  TaskSet ts({make(1, 4, 4), make(2, 8, 8), make(1, 8, 8)});
  const auto exec = build_cyclic_executive(ts);
  ASSERT_TRUE(exec.has_value());
  const auto trace = exec->to_trace();
  // Task 0 must run once in [0,4) and once in [4,8).
  std::size_t first = 0, second = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (trace[i] == 0u) ++first;
  }
  for (std::size_t i = 4; i < 8; ++i) {
    if (trace[i] == 0u) ++second;
  }
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(second, 1u);
}

TEST(BuildCyclicExecutive, ExplicitFrameSizeValidated) {
  TaskSet ts({make(1, 4, 4), make(2, 8, 8)});
  EXPECT_THROW((void)build_cyclic_executive(ts, 3), std::invalid_argument);
  EXPECT_TRUE(build_cyclic_executive(ts, 2).has_value());
}

TEST(BuildCyclicExecutive, OverloadedSetFailsToPack) {
  TaskSet ts({make(3, 4, 4), make(3, 4, 4)});  // U = 1.5
  const auto sizes = candidate_frame_sizes(ts);
  for (Time f : sizes) {
    EXPECT_EQ(build_cyclic_executive(ts, f), std::nullopt);
  }
}

TEST(BuildCyclicExecutive, SlicingAcrossFramesWorks) {
  // c=3 with frame 2 requires splitting the job across frames; the
  // candidate filter enforces f >= c, so pick a set where splitting
  // happens within f: c=2, f=2, two tasks needing interleave.
  TaskSet ts({make(2, 4, 4), make(2, 4, 4)});
  const auto exec = build_cyclic_executive(ts, 2);
  ASSERT_TRUE(exec.has_value());
  const auto trace = exec->to_trace();
  EXPECT_EQ(trace.idle_count(), 0u);  // fully packed
  EXPECT_EQ(trace.count(0), 2u);
  EXPECT_EQ(trace.count(1), 2u);
}

TEST(BuildCyclicExecutive, FrameTableShapeConsistent) {
  TaskSet ts({make(1, 4, 4), make(2, 8, 8)});
  const auto exec = build_cyclic_executive(ts);
  ASSERT_TRUE(exec.has_value());
  EXPECT_EQ(exec->frames.size(),
            static_cast<std::size_t>(exec->hyperperiod / exec->frame_size));
  for (const auto& frame : exec->frames) {
    Time used = 0;
    for (const FrameEntry& entry : frame) used += entry.slots;
    EXPECT_LE(used, exec->frame_size);
  }
}

TEST(BuildCyclicExecutive, EmptySetHasNoFrames) {
  TaskSet ts;
  EXPECT_TRUE(candidate_frame_sizes(ts).empty());
  EXPECT_EQ(build_cyclic_executive(ts), std::nullopt);
}

}  // namespace
}  // namespace rtg::rt
