#include "rt/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rtg::rt {
namespace {

Task make(Time c, Time p, Time d, Time cs = 0) {
  Task t;
  t.c = c;
  t.p = p;
  t.d = d;
  t.critical_section = cs;
  return t;
}

TEST(LiuLayland, KnownValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 2.0 * (std::sqrt(2.0) - 1.0), 1e-12);
  EXPECT_NEAR(liu_layland_bound(1000), std::log(2.0), 1e-3);
}

TEST(RmUtilizationTest, AcceptsUnderBoundRejectsAbove) {
  // U = 0.5 <= 0.828 for n=2.
  EXPECT_TRUE(rm_utilization_test(TaskSet({make(1, 4, 4), make(1, 4, 4)})));
  // U = 1.0 > bound for n=2.
  EXPECT_FALSE(rm_utilization_test(TaskSet({make(2, 4, 4), make(2, 4, 4)})));
}

TEST(PriorityOrder, RateAndDeadlineMonotonic) {
  TaskSet ts({make(1, 10, 4), make(1, 5, 9)});
  EXPECT_EQ(priority_order(ts, PriorityOrder::kRateMonotonic),
            (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(priority_order(ts, PriorityOrder::kDeadlineMonotonic),
            (std::vector<std::size_t>{0, 1}));
}

TEST(ResponseTimes, ClassicTwoTaskExample) {
  // hp: c=1, p=4; lp: c=2, p=6 -> R_lp = 2 + ceil(R/4)*1 -> 3.
  TaskSet ts({make(1, 4, 4), make(2, 6, 6)});
  const auto rts = response_times(ts, PriorityOrder::kRateMonotonic);
  ASSERT_TRUE(rts[0].has_value());
  ASSERT_TRUE(rts[1].has_value());
  EXPECT_EQ(*rts[0], 1);
  EXPECT_EQ(*rts[1], 3);
}

TEST(ResponseTimes, UnschedulableTaskReportsNullopt) {
  TaskSet ts({make(3, 4, 4), make(3, 6, 6)});  // U > 1
  const auto rts = response_times(ts, PriorityOrder::kRateMonotonic);
  EXPECT_TRUE(rts[0].has_value());
  EXPECT_FALSE(rts[1].has_value());
}

TEST(ResponseTimes, BlockingFromLowerPriorityCriticalSection) {
  // High-priority task blocked by the low-priority 2-slot monitor call.
  TaskSet ts({make(1, 10, 10), make(4, 20, 20, 2)});
  const auto rts = response_times(ts, PriorityOrder::kRateMonotonic);
  ASSERT_TRUE(rts[0].has_value());
  EXPECT_EQ(*rts[0], 3);  // 1 + blocking 2
}

TEST(ResponseTimes, RequiresConstrainedDeadlines) {
  TaskSet ts({make(1, 4, 10)});
  EXPECT_THROW((void)response_times(ts, PriorityOrder::kRateMonotonic),
               std::invalid_argument);
}

TEST(FixedPrioritySchedulable, BoundaryCase) {
  // RM-schedulable beyond the LL bound (harmonic periods, U = 1).
  TaskSet ts({make(1, 2, 2), make(2, 4, 4)});
  EXPECT_TRUE(fixed_priority_schedulable(ts, PriorityOrder::kRateMonotonic));
  EXPECT_FALSE(rm_utilization_test(ts));  // utilization test is only sufficient
}

TEST(DemandBound, StepsAtDeadlines) {
  TaskSet ts({make(2, 5, 4)});
  EXPECT_EQ(demand_bound(ts, 3), 0);
  EXPECT_EQ(demand_bound(ts, 4), 2);
  EXPECT_EQ(demand_bound(ts, 8), 2);
  EXPECT_EQ(demand_bound(ts, 9), 4);
}

TEST(EdfSchedulable, ImplicitDeadlineFullUtilization) {
  TaskSet ts({make(1, 2, 2), make(2, 4, 4)});  // U = 1
  EXPECT_TRUE(edf_schedulable(ts));
}

TEST(EdfSchedulable, OverUtilizationRejected) {
  TaskSet ts({make(3, 4, 4), make(2, 4, 4)});
  EXPECT_FALSE(edf_schedulable(ts));
}

TEST(EdfSchedulable, ConstrainedDeadlineDemandViolation) {
  // Two tasks each needing 2 slots by t=2: h(2) = 4 > 2.
  TaskSet ts({make(2, 10, 2), make(2, 10, 2)});
  EXPECT_FALSE(edf_schedulable(ts));
}

TEST(EdfSchedulable, ConstrainedDeadlineFeasible) {
  TaskSet ts({make(1, 4, 2), make(1, 4, 3)});
  EXPECT_TRUE(edf_schedulable(ts));
}

TEST(EdfSchedulable, EmptySetTriviallySchedulable) {
  EXPECT_TRUE(edf_schedulable(TaskSet{}));
}

TEST(EdfSchedulable, RejectsUnconstrainedDeadlines) {
  TaskSet ts({make(1, 2, 5)});
  EXPECT_THROW((void)edf_schedulable(ts), std::invalid_argument);
}

TEST(EdfUtilizationTest, SimpleThreshold) {
  EXPECT_TRUE(edf_utilization_test(TaskSet({make(1, 2, 2), make(1, 2, 2)})));
  EXPECT_FALSE(edf_utilization_test(TaskSet({make(3, 4, 4), make(2, 4, 4)})));
}

TEST(EdfVsRm, EdfStrictlyMoreCapable) {
  // U = 1 non-harmonic: EDF yes, RM no.
  TaskSet ts({make(2, 4, 4), make(3, 6, 6)});
  EXPECT_TRUE(edf_schedulable(ts));
  EXPECT_FALSE(fixed_priority_schedulable(ts, PriorityOrder::kRateMonotonic));
}

}  // namespace
}  // namespace rtg::rt
