// End-to-end behavior of the batch verification service: job kinds,
// admission, deadlines, caching, degradation, and warm starts.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "core/latency.hpp"
#include "core/pipeline.hpp"
#include "core/schedule_io.hpp"
#include "monitor/trace_io.hpp"
#include "spec/compile.hpp"
#include "svc/chaos.hpp"

namespace rtg::svc {
namespace {

// The paper's control-system spec (Figure 1 / Figure 2).
const char* kSpec =
    "element fx\n"
    "element fy\n"
    "element fz\n"
    "element fs weight 2\n"
    "element fk\n"
    "channel fx -> fs -> fk\n"
    "channel fy -> fs\n"
    "channel fz -> fs\n"
    "channel fk -> fs\n"
    "constraint X periodic period 20 deadline 20 { fx -> fs -> fk }\n"
    "constraint Y periodic period 40 deadline 40 { fy -> fs -> fk }\n"
    "constraint Z sporadic separation 50 deadline 25 { fz -> fs }\n";

JobRequest synth_request(std::uint64_t id, const std::string& tenant = "t") {
  JobRequest req;
  req.id = id;
  req.tenant = tenant;
  req.kind = JobKind::kSynthesize;
  req.spec = kSpec;
  return req;
}

TEST(VerifyService, SynthesizeThenVerifyRoundTrip) {
  ServiceOptions options;
  options.workers = 2;
  VerifyService service(options);

  auto synth = service.submit(synth_request(1));
  const JobResponse s = synth.get();
  ASSERT_EQ(s.status, JobStatus::kOk);
  ASSERT_TRUE(s.verdict);
  ASSERT_FALSE(s.detail.empty());

  // Feed the synthesized schedule back as a verify job.
  JobRequest verify;
  verify.id = 2;
  verify.kind = JobKind::kVerify;
  verify.spec = kSpec;
  verify.schedule = s.detail;
  const JobResponse v = service.submit(std::move(verify)).get();
  EXPECT_EQ(v.status, JobStatus::kOk);
  EXPECT_TRUE(v.verdict);
  EXPECT_EQ(v.detail, "feasible");
  service.shutdown();
}

TEST(VerifyService, VerifyVerdictMatchesDirectEngine) {
  // A deliberately broken schedule: all idle, so every constraint
  // misses. The service's verdict must equal verify_schedule's.
  const std::string schedule = ".40\n";
  JobRequest req;
  req.id = 1;
  req.kind = JobKind::kVerify;
  req.spec = kSpec;
  req.schedule = schedule;

  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);
  const JobResponse rsp = service.submit(std::move(req)).get();
  service.shutdown();
  ASSERT_EQ(rsp.status, JobStatus::kOk);

  const spec::CompileResult compiled = spec::compile_text(kSpec);
  ASSERT_TRUE(compiled.ok());
  const core::GraphModel pipelined = core::pipeline_model(*compiled.model).model;
  const auto parsed = core::schedule_from_text(schedule, pipelined.comm());
  ASSERT_TRUE(parsed.ok());
  const core::FeasibilityReport direct =
      core::verify_schedule(*parsed.schedule, pipelined);
  EXPECT_EQ(rsp.verdict, direct.feasible);
  EXPECT_FALSE(rsp.verdict);
}

TEST(VerifyService, InvalidSpecAndScheduleAreReportedNotCrashed) {
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);

  JobRequest bad_spec;
  bad_spec.id = 1;
  bad_spec.kind = JobKind::kSynthesize;
  bad_spec.spec = "element\n";  // parse error
  const JobResponse r1 = service.submit(std::move(bad_spec)).get();
  EXPECT_EQ(r1.status, JobStatus::kInvalid);
  EXPECT_NE(r1.detail.find("spec"), std::string::npos);

  JobRequest bad_sched;
  bad_sched.id = 2;
  bad_sched.kind = JobKind::kVerify;
  bad_sched.spec = kSpec;
  bad_sched.schedule = "nonexistent_element\n";
  const JobResponse r2 = service.submit(std::move(bad_sched)).get();
  EXPECT_EQ(r2.status, JobStatus::kInvalid);

  JobRequest bad_trace;
  bad_trace.id = 3;
  bad_trace.kind = JobKind::kMonitor;
  bad_trace.spec = kSpec;
  bad_trace.trace = "this is not an rtt file";
  const JobResponse r3 = service.submit(std::move(bad_trace)).get();
  EXPECT_EQ(r3.status, JobStatus::kInvalid);

  service.shutdown();
  const ServiceHealth h = service.health();
  EXPECT_EQ(h.invalid, 3u);
  EXPECT_EQ(h.pending, 0u);
}

TEST(VerifyService, SecondIdenticalJobHitsTheCache) {
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);

  const JobResponse first = service.submit(synth_request(1)).get();
  const JobResponse second = service.submit(synth_request(2)).get();
  service.shutdown();

  ASSERT_EQ(first.status, JobStatus::kOk);
  ASSERT_EQ(second.status, JobStatus::kOk);
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(first.detail, second.detail);
  EXPECT_EQ(first.verdict, second.verdict);
  EXPECT_GE(service.health().cache_hits, 1u);
}

TEST(VerifyService, ZeroDeadlineExpiresInsteadOfRunning) {
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);

  JobRequest req = synth_request(1);
  req.deadline_ms = 1;  // effectively already due
  const JobResponse rsp = service.submit(std::move(req)).get();
  service.shutdown();
  // Either the queue sweep or the pre-run check must expire it (on a
  // fast machine the job may still beat the 1ms deadline).
  if (rsp.status != JobStatus::kOk) {
    EXPECT_EQ(rsp.status, JobStatus::kExpired);
  }
}

TEST(VerifyService, OverloadShedsExplicitlyWithRetryAfter) {
  ServiceOptions options;
  options.workers = 1;
  options.admission.max_pending = 2;
  options.admission.policy = core::AdmissionPolicy::kReject;
  // Tight quota: past the burst, rejections must carry a retry hint.
  options.admission.tenant_rate = 1.0;
  options.admission.tenant_burst = 1.0;
  VerifyService service(options);

  std::vector<std::future<JobResponse>> futures;
  for (std::uint64_t id = 1; id <= 20; ++id) {
    futures.push_back(service.submit(synth_request(id)));
  }
  std::size_t ok = 0;
  std::size_t rejected = 0;
  for (auto& f : futures) {
    const JobResponse rsp = f.get();
    if (rsp.status == JobStatus::kRejected) {
      ++rejected;
      EXPECT_GT(rsp.retry_after_ms, 0u);
    } else {
      ASSERT_EQ(rsp.status, JobStatus::kOk);
      ++ok;
    }
  }
  service.shutdown();
  EXPECT_GE(ok, 1u);         // some work got through
  EXPECT_GE(rejected, 10u);  // overload shed most of the burst
  const ServiceHealth h = service.health();
  EXPECT_EQ(h.rejected, rejected);
  EXPECT_EQ(h.submitted, 20u);
}

TEST(VerifyService, SubmitAfterShutdownIsRejected) {
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);
  service.shutdown();
  const JobResponse rsp = service.submit(synth_request(1)).get();
  EXPECT_EQ(rsp.status, JobStatus::kRejected);
}

TEST(VerifyService, SnapshotWarmStartServesFromCache) {
  namespace fs = std::filesystem;
  const std::string snap =
      (fs::temp_directory_path() / "rtg_service_warm.rtvc").string();
  fs::remove(snap);

  ServiceOptions options;
  options.workers = 1;
  options.snapshot_path = snap;
  std::string first_detail;
  {
    VerifyService service(options);
    const JobResponse rsp = service.submit(synth_request(1)).get();
    ASSERT_EQ(rsp.status, JobStatus::kOk);
    first_detail = rsp.detail;
    service.shutdown();  // saves the snapshot
  }
  ASSERT_TRUE(fs::exists(snap));

  {
    VerifyService warm(options);
    const JobResponse rsp = warm.submit(synth_request(9)).get();
    warm.shutdown();
    ASSERT_EQ(rsp.status, JobStatus::kOk);
    EXPECT_TRUE(rsp.cached);  // served from the restored snapshot
    EXPECT_EQ(rsp.detail, first_detail);
    EXPECT_FALSE(warm.health().snapshot_load_failed);
  }

  // A corrupted snapshot must start the server cold, not kill it.
  {
    std::string bytes;
    {
      std::ifstream in(snap, std::ios::binary);
      bytes.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
    }
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream out(snap, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  {
    VerifyService cold(options);
    const JobResponse rsp = cold.submit(synth_request(10)).get();
    cold.shutdown();
    ASSERT_EQ(rsp.status, JobStatus::kOk);
    EXPECT_FALSE(rsp.cached);
    EXPECT_TRUE(cold.health().snapshot_load_failed);
  }
  fs::remove(snap);
}

TEST(VerifyService, PerTenantMonitorAccumulatesAcrossJobs) {
  // Build a real trace by synthesizing and simulating via the service's
  // own pipeline: emit a trace with spec_compiler conventions is heavy
  // here, so instead check that a monitor job with a mismatched
  // fingerprint is rejected per-tenant while valid jobs are isolated.
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);

  JobRequest req;
  req.id = 1;
  req.tenant = "a";
  req.kind = JobKind::kMonitor;
  req.spec = kSpec;
  req.trace = std::string("RTTB") + std::string(60, '\0');
  const JobResponse rsp = service.submit(std::move(req)).get();
  service.shutdown();
  EXPECT_EQ(rsp.status, JobStatus::kInvalid);
}

TEST(VerifyService, MonitorIngestionIsIdempotentUnderRetry) {
  // A monitor job whose first run completes but is then chaos-failed is
  // re-run; the retried run must not fold the trace into the tenant's
  // stream a second time (slots would double and later verdicts would
  // be computed against a corrupted stream).
  const spec::CompileResult compiled = spec::compile_text(kSpec);
  ASSERT_TRUE(compiled.ok());
  const core::GraphModel pipelined = core::pipeline_model(*compiled.model).model;

  std::string schedule_text;
  {
    ServiceOptions plain;
    plain.workers = 1;
    VerifyService synth_svc(plain);
    const JobResponse s = synth_svc.submit(synth_request(1)).get();
    synth_svc.shutdown();
    ASSERT_EQ(s.status, JobStatus::kOk);
    ASSERT_TRUE(s.verdict);
    schedule_text = s.detail;
  }
  const core::ScheduleParseResult parsed =
      core::schedule_from_text(schedule_text, pipelined.comm());
  ASSERT_TRUE(parsed.ok());
  const sim::ExecutionTrace trace = parsed.schedule->to_trace(3);
  std::ostringstream rtt;
  monitor::write_trace(rtt, trace, monitor::model_fingerprint(pipelined));

  // A seed that injects exactly one transient failure into the monitor
  // job's first run, so the second run is the one that answers.
  ChaosPlan plan;
  plan.fail_rate = 0.5;
  std::uint64_t seed = 1;
  for (; seed < 100000; ++seed) {
    plan.seed = seed;
    if (chaos_should_fail(plan, 7, 0) && !chaos_should_fail(plan, 7, 1)) break;
  }
  ASSERT_LT(seed, 100000u);

  ServiceOptions options;
  options.workers = 1;
  options.chaos = plan;
  VerifyService service(options);
  JobRequest req;
  req.id = 7;
  req.tenant = "mono";
  req.kind = JobKind::kMonitor;
  req.spec = kSpec;
  req.trace = rtt.str();
  const JobResponse rsp = service.submit(std::move(req)).get();
  service.shutdown();
  ASSERT_EQ(rsp.status, JobStatus::kOk) << rsp.detail;
  // Exactly one ingestion: a duplicate would report slots at twice the
  // trace size.
  EXPECT_TRUE(rsp.detail.ends_with("slots=" + std::to_string(trace.size())))
      << rsp.detail;
  EXPECT_GE(service.health().retries, 1u);  // the retry really happened
}

TEST(VerifyService, SlowButAliveJobsAreNotSpuriouslyFailed) {
  // The watchdog reads the engines' progress beacons: a run that is
  // slower than stall_grace_ms but still polling its cancel hook is
  // alive and must never be force-failed with "re-delivery budget
  // exhausted". Distinct spec bytes per job keep the cache out of the
  // way so every job really runs an engine.
  ServiceOptions options;
  options.workers = 2;
  options.stall_grace_ms = 20;  // far below a slow exact search
  options.supervisor_period_ms = 5;
  VerifyService service(options);
  std::vector<std::future<JobResponse>> futures;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    JobRequest req = synth_request(id);
    req.exact = true;
    req.spec = std::string(kSpec) + std::string(id, '\n');
    futures.push_back(service.submit(std::move(req)));
  }
  for (auto& f : futures) {
    const JobResponse rsp = f.get();
    ASSERT_EQ(rsp.status, JobStatus::kOk) << rsp.detail;
    EXPECT_TRUE(rsp.verdict);
  }
  service.shutdown();
  EXPECT_EQ(service.health().failed, 0u);
}

TEST(VerifyService, HealthCountersAreCoherent) {
  ServiceOptions options;
  options.workers = 2;
  VerifyService service(options);
  std::vector<std::future<JobResponse>> futures;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    futures.push_back(service.submit(synth_request(id)));
  }
  for (auto& f : futures) (void)f.get();
  service.shutdown();
  const ServiceHealth h = service.health();
  EXPECT_EQ(h.submitted, 6u);
  EXPECT_EQ(h.pending, 0u);
  EXPECT_EQ(h.completed + h.expired + h.invalid + h.failed + h.rejected, 6u);
}

JobRequest map_request(std::uint64_t id, std::uint64_t processors,
                       const std::string& mapper = "") {
  JobRequest req;
  req.id = id;
  req.tenant = "t";
  req.kind = JobKind::kMap;
  req.processors = processors;
  req.mapper = mapper;
  req.spec = kSpec;
  return req;
}

TEST(VerifyService, MapJobDeploysOnRequestedProcessors) {
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);
  std::uint64_t id = 0;
  for (const char* mapper : {"", "greedy", "sa", "spd"}) {
    JobRequest req = map_request(++id, 2, mapper);
    const JobResponse rsp = service.submit(std::move(req)).get();
    ASSERT_EQ(rsp.status, JobStatus::kOk) << rsp.detail;
    EXPECT_TRUE(rsp.verdict);
    EXPECT_NE(rsp.detail.find("deployed on 2 processors"), std::string::npos)
        << rsp.detail;
  }
  service.shutdown();
}

TEST(VerifyService, MapJobSpecDeclaredPlatformWins) {
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);
  JobRequest req = map_request(1, 8);
  req.spec = std::string("processor p0\nprocessor p1\nprocessor p2\nbus b0\n\n") +
             kSpec;
  const JobResponse rsp = service.submit(std::move(req)).get();
  ASSERT_EQ(rsp.status, JobStatus::kOk) << rsp.detail;
  EXPECT_NE(rsp.detail.find("deployed on 3 processors"), std::string::npos)
      << rsp.detail;
  service.shutdown();
}

TEST(VerifyService, MapJobWithoutPlatformIsInvalid) {
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);
  const JobResponse rsp = service.submit(map_request(1, 0)).get();
  EXPECT_EQ(rsp.status, JobStatus::kInvalid);
  service.shutdown();
}

TEST(VerifyService, MapJobUnknownMapperIsInvalid) {
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);
  const JobResponse rsp = service.submit(map_request(1, 2, "nope")).get();
  EXPECT_EQ(rsp.status, JobStatus::kInvalid);
  service.shutdown();
}

TEST(VerifyService, MapJobsAreCachedPerMapperAndProcessorCount) {
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);
  const JobResponse first = service.submit(map_request(1, 2, "greedy")).get();
  ASSERT_EQ(first.status, JobStatus::kOk) << first.detail;
  EXPECT_FALSE(first.cached);
  const JobResponse again = service.submit(map_request(2, 2, "greedy")).get();
  EXPECT_TRUE(again.cached);
  // A different processor count or mapper is a different cache entry.
  const JobResponse other = service.submit(map_request(3, 4, "greedy")).get();
  EXPECT_FALSE(other.cached);
  const JobResponse sa = service.submit(map_request(4, 2, "sa")).get();
  EXPECT_FALSE(sa.cached);
  service.shutdown();
}

TEST(VerifyService, MapJobTolerateReportsScenarioCoverage) {
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);
  JobRequest req = map_request(1, 3, "greedy");
  req.tolerate = 1;
  const JobResponse rsp = service.submit(std::move(req)).get();
  service.shutdown();
  ASSERT_EQ(rsp.status, JobStatus::kOk) << rsp.detail;
  EXPECT_NE(rsp.detail.find("k=1"), std::string::npos) << rsp.detail;
  EXPECT_NE(rsp.detail.find("failure scenarios covered"), std::string::npos)
      << rsp.detail;
  // The verdict is the tolerance claim itself: true iff every failure
  // scenario carries a proof-checked migration entry.
  EXPECT_EQ(rsp.verdict, rsp.detail.find("uncovered") == std::string::npos)
      << rsp.detail;
}

TEST(VerifyService, MapJobToleratePartitionsTheCache) {
  ServiceOptions options;
  options.workers = 1;
  VerifyService service(options);
  JobRequest plain = map_request(1, 2, "greedy");
  const JobResponse first = service.submit(std::move(plain)).get();
  ASSERT_EQ(first.status, JobStatus::kOk) << first.detail;
  // Same spec and mapper but a tolerance target is a different proof
  // obligation, so it must miss the plain entry.
  JobRequest tolerant = map_request(2, 2, "greedy");
  tolerant.tolerate = 1;
  const JobResponse second = service.submit(std::move(tolerant)).get();
  ASSERT_EQ(second.status, JobStatus::kOk) << second.detail;
  EXPECT_FALSE(second.cached);
  JobRequest repeat = map_request(3, 2, "greedy");
  repeat.tolerate = 1;
  const JobResponse third = service.submit(std::move(repeat)).get();
  EXPECT_TRUE(third.cached);
  service.shutdown();
}

TEST(VerifyService, MapJobPastDeadlineCancelsWithoutStrandingItsFuture) {
  // A deadline-expired map job must flip the cooperative cancel flag
  // (queue sweep or watchdog, whichever catches it first) and resolve
  // its future as kExpired — never hang the caller. A k=2 tolerant
  // deployment over six processors enumerates 21 failure scenarios,
  // comfortably outliving a 1ms deadline on any machine.
  ServiceOptions options;
  options.workers = 1;
  options.supervisor_period_ms = 5;
  VerifyService service(options);
  JobRequest req = map_request(1, 0, "sa");
  req.spec = std::string("processor p0\nprocessor p1\nprocessor p2\n"
                         "processor p3\nprocessor p4\nprocessor p5\n"
                         "bus b0\n\n") +
             kSpec;
  req.tolerate = 2;
  req.deadline_ms = 1;
  std::future<JobResponse> future = service.submit(std::move(req));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "map job stranded its future";
  const JobResponse rsp = future.get();
  service.shutdown();
  // On an absurdly fast machine the job may still finish in time; when
  // it does not, the only acceptable outcome is an explicit expiry.
  if (rsp.status != JobStatus::kOk) {
    EXPECT_EQ(rsp.status, JobStatus::kExpired) << rsp.detail;
  }
}

}  // namespace
}  // namespace rtg::svc
