// Round-trip and malformed-input behavior of the line-delimited
// request/response protocol.
#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace rtg::svc {
namespace {

JobRequest sample_request() {
  JobRequest req;
  req.id = 42;
  req.tenant = "acme";
  req.kind = JobKind::kVerify;
  req.deadline_ms = 1500;
  req.exact = true;
  req.spec = "element a\nelement b\n";
  req.schedule = "a b .2\n";
  return req;
}

TEST(Protocol, RequestRoundTrip) {
  std::ostringstream out;
  write_request(out, sample_request());
  std::istringstream in(out.str());
  const auto got = read_request(in);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 42u);
  EXPECT_EQ(got->tenant, "acme");
  EXPECT_EQ(got->kind, JobKind::kVerify);
  EXPECT_EQ(got->deadline_ms, 1500u);
  EXPECT_TRUE(got->exact);
  EXPECT_EQ(got->spec, "element a\nelement b\n");
  EXPECT_EQ(got->schedule, "a b .2\n");
  EXPECT_FALSE(read_request(in).has_value());  // clean EOF
}

TEST(Protocol, BinaryTraceSurvivesHexTransport) {
  JobRequest req;
  req.id = 7;
  req.kind = JobKind::kMonitor;
  // Every byte value, including NUL and newline, must survive.
  std::string trace;
  for (int i = 0; i < 256; ++i) trace.push_back(static_cast<char>(i));
  req.trace = trace;

  std::ostringstream out;
  write_request(out, req);
  std::istringstream in(out.str());
  const auto got = read_request(in);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->trace, trace);
}

TEST(Protocol, ResponseRoundTrip) {
  JobResponse rsp;
  rsp.id = 9;
  rsp.status = JobStatus::kRejected;
  rsp.retry_after_ms = 120;
  rsp.queue_ms = 3;
  rsp.run_ms = 0;
  rsp.detail = "over quota\nsecond line";

  std::ostringstream out;
  write_response(out, rsp);
  std::istringstream in(out.str());
  const auto got = read_response(in);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 9u);
  EXPECT_EQ(got->status, JobStatus::kRejected);
  EXPECT_EQ(got->retry_after_ms, 120u);
  EXPECT_EQ(got->queue_ms, 3u);
  // The reader normalizes the body to newline-terminated lines.
  EXPECT_EQ(got->detail, "over quota\nsecond line\n");
}

TEST(Protocol, MultipleFramesStream) {
  std::ostringstream out;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    JobRequest req = sample_request();
    req.id = id;
    write_request(out, req);
  }
  std::istringstream in(out.str());
  std::vector<std::uint64_t> ids;
  while (const auto req = read_request(in)) ids.push_back(req->id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(Protocol, MalformedRequestsThrowProtocolError) {
  const char* kBad[] = {
      "REQ\n",                                   // missing fields
      "REQ x acme verify 0 0\nEND\n",            // non-numeric id
      "REQ 1 acme frobnicate 0 0\nEND\n",        // unknown kind
      "REQ 1 acme verify 0 2\nEND\n",            // exact flag not 0/1
      "REQ 1 acme verify 0 0\nSPEC 2\nonly-one-line\n",  // truncated section
      "REQ 1 acme verify 0 0\nSPEC x\nEND\n",    // bad section count
      "REQ 1 acme verify 0 0\n",                 // EOF before END
      "REQ 1 acme verify 0 0\nTRACE 4\nzzzz\nEND\n",  // bad hex digits
      "REQ 1 acme verify 0 0\nTRACE 3\nabc\nEND\n",   // odd hex length
      "REQ 99999999999999999999 acme verify 0 0\nEND\n",  // u64 overflow
      "BOGUS 1\n",                               // unknown frame head
  };
  for (const char* text : kBad) {
    std::istringstream in(text);
    EXPECT_THROW((void)read_request(in), ProtocolError) << text;
  }
}

TEST(Protocol, MalformedResponsesThrowProtocolError) {
  const char* kBad[] = {
      "RSP\n",
      "RSP 1 bogus verdict=0 cached=0 degraded=0 retry_after_ms=0 queue_ms=0 run_ms=0\n",
      "RSP 1 ok\n",  // missing key=value fields
      "RSP 1 ok verdict=1 cached=0 degraded=0 retry_after_ms=0 queue_ms=0 run_ms=0\nBODY 1\n",
  };
  for (const char* text : kBad) {
    std::istringstream in(text);
    EXPECT_THROW((void)read_response(in), ProtocolError) << text;
  }
}

TEST(Protocol, HexCodecRoundTripsAndRejectsGarbage) {
  EXPECT_EQ(hex_encode(""), "");
  EXPECT_EQ(hex_decode(""), "");
  const std::string bytes = "\x00\x01\xfe\xff ok";
  EXPECT_EQ(hex_decode(hex_encode(bytes)), bytes);
  EXPECT_THROW((void)hex_decode("abc"), ProtocolError);   // odd length
  EXPECT_THROW((void)hex_decode("zz"), ProtocolError);    // bad digit
  EXPECT_EQ(hex_decode("aB"), hex_decode("ab"));          // case-insensitive
}

TEST(Protocol, CrlfLineEndingsAccepted) {
  std::ostringstream out;
  write_request(out, sample_request());
  std::string text = out.str();
  std::string crlf;
  for (const char c : text) {
    if (c == '\n') crlf += "\r\n"; else crlf += c;
  }
  std::istringstream in(crlf);
  const auto got = read_request(in);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 42u);
}

TEST(Protocol, MapRequestRoundTrip) {
  JobRequest req;
  req.id = 9;
  req.tenant = "acme";
  req.kind = JobKind::kMap;
  req.processors = 4;
  req.mapper = "sa";
  req.spec = "element a\n";

  std::ostringstream out;
  write_request(out, req);
  std::istringstream in(out.str());
  const auto got = read_request(in);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->kind, JobKind::kMap);
  EXPECT_EQ(got->processors, 4u);
  EXPECT_EQ(got->mapper, "sa");
  EXPECT_EQ(got->spec, "element a\n");

  // An unset mapper travels as the portfolio default.
  JobRequest defaulted = req;
  defaulted.mapper.clear();
  std::ostringstream out2;
  write_request(out2, defaulted);
  EXPECT_NE(out2.str().find("MAP 4 greedy\n"), std::string::npos) << out2.str();
}

TEST(Protocol, MapTolerateRoundTripsAndStaysByteCompatible) {
  JobRequest req;
  req.id = 10;
  req.tenant = "acme";
  req.kind = JobKind::kMap;
  req.processors = 3;
  req.mapper = "greedy";
  req.tolerate = 2;
  req.spec = "element a\n";

  std::ostringstream out;
  write_request(out, req);
  EXPECT_NE(out.str().find("MAP 3 greedy 2\n"), std::string::npos) << out.str();
  std::istringstream in(out.str());
  const auto got = read_request(in);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tolerate, 2u);

  // tolerate=0 is the pre-fault-tolerance wire shape: the fourth token
  // is omitted so old peers keep parsing the line.
  JobRequest plain = req;
  plain.tolerate = 0;
  std::ostringstream out2;
  write_request(out2, plain);
  EXPECT_NE(out2.str().find("MAP 3 greedy\n"), std::string::npos) << out2.str();
  std::istringstream in2(out2.str());
  const auto legacy = read_request(in2);
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->tolerate, 0u);
}

}  // namespace
}  // namespace rtg::svc
