// Crash-safety of the result cache snapshot: bit-identical images,
// atomic round-trips, and a corruption corpus the strict reader must
// reject in full.
#include "svc/result_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace rtg::svc {
namespace {

class ResultCacheSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "rtg_cache_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST(ResultCache, GetPutAndCounters) {
  ResultCache cache(8);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.put(1, "one");
  const auto v = cache.get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, BoundedWithEvictions) {
  ResultCache cache(4, /*stripes=*/1);
  for (std::uint64_t k = 0; k < 100; ++k) {
    cache.put(k, "v" + std::to_string(k));
  }
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(ResultCache, SnapshotIsPureFunctionOfContents) {
  // Same entries reached through different insertion orders and
  // intervening churn must produce byte-identical snapshots.
  ResultCache a(64);
  ResultCache b(64);
  for (std::uint64_t k = 0; k < 20; ++k) a.put(k, "value-" + std::to_string(k));
  for (std::uint64_t k = 20; k-- > 0;) b.put(k, "value-" + std::to_string(k));
  b.put(5, "stale");
  b.put(5, "value-5");  // overwrite back
  EXPECT_EQ(a.snapshot_bytes(), b.snapshot_bytes());
}

TEST_F(ResultCacheSnapshotTest, SaveLoadRoundTripsWarmStart) {
  ResultCache cache(64);
  cache.put(0xdead, "feasible");
  cache.put(0xbeef, std::string(1000, 'x'));
  cache.put(0, "");  // empty value must survive
  cache.save_snapshot(path("snap.rtvc"));

  ResultCache warm(64);
  warm.load_snapshot(path("snap.rtvc"));
  EXPECT_EQ(warm.size(), 3u);
  EXPECT_EQ(*warm.get(0xdead), "feasible");
  EXPECT_EQ(*warm.get(0xbeef), std::string(1000, 'x'));
  EXPECT_EQ(*warm.get(0), "");
  // Warm-started cache snapshots bit-identically.
  EXPECT_EQ(warm.snapshot_bytes(), cache.snapshot_bytes());
}

TEST_F(ResultCacheSnapshotTest, SaveLeavesNoTempFileBehind) {
  ResultCache cache(8);
  cache.put(1, "v");
  cache.save_snapshot(path("snap.rtvc"));
  EXPECT_TRUE(std::filesystem::exists(path("snap.rtvc")));
  EXPECT_FALSE(std::filesystem::exists(path("snap.rtvc") + ".tmp"));
}

TEST(ResultCache, MissingFileIsIoError) {
  ResultCache cache(8);
  try {
    cache.load_snapshot("/nonexistent/dir/snap.rtvc");
    FAIL() << "expected CacheError";
  } catch (const CacheError& e) {
    EXPECT_EQ(e.kind(), CacheErrorKind::kIo);
  }
}

TEST(ResultCache, EveryTruncationIsRejectedAndMutatesNothing) {
  ResultCache cache(64);
  cache.put(1, "alpha");
  cache.put(2, "beta");
  const std::string image = cache.snapshot_bytes();

  // Every proper prefix is a possible crash-mid-write artifact; all of
  // them must throw and leave the target cache untouched.
  for (std::size_t len = 0; len < image.size(); ++len) {
    ResultCache target(64);
    target.put(99, "preexisting");
    EXPECT_THROW(target.load_snapshot_bytes(image.substr(0, len)), CacheError)
        << "prefix length " << len;
    EXPECT_EQ(target.size(), 1u) << "prefix length " << len;
    EXPECT_TRUE(target.get(99).has_value());
  }
}

TEST(ResultCache, EveryBitFlipIsRejected) {
  ResultCache cache(64);
  cache.put(7, "payload");
  const std::string image = cache.snapshot_bytes();

  // Flipping any single bit must be caught — by the magic check, the
  // version check, a length that runs off the end, or the checksum.
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    std::string corrupt = image;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x01);
    ResultCache target(64);
    EXPECT_THROW(target.load_snapshot_bytes(corrupt), CacheError)
        << "flipped byte " << byte;
    EXPECT_EQ(target.size(), 0u);
  }
}

TEST(ResultCache, TrailingBytesRejected) {
  ResultCache cache(8);
  cache.put(1, "v");
  std::string image = cache.snapshot_bytes();
  image += "junk";
  ResultCache target(8);
  try {
    target.load_snapshot_bytes(image);
    FAIL() << "expected CacheError";
  } catch (const CacheError& e) {
    EXPECT_EQ(e.kind(), CacheErrorKind::kTrailingBytes);
  }
}

TEST(ResultCache, DeclaredSizesCheckedAgainstLimitsBeforeAllocation) {
  ResultCache cache(8);
  cache.put(1, std::string(64, 'v'));
  const std::string image = cache.snapshot_bytes();

  CacheReadLimits tight;
  tight.max_value_bytes = 8;
  ResultCache target(8);
  try {
    target.load_snapshot_bytes(image, tight);
    FAIL() << "expected CacheError";
  } catch (const CacheError& e) {
    EXPECT_EQ(e.kind(), CacheErrorKind::kTooLarge);
  }

  CacheReadLimits no_entries;
  no_entries.max_entries = 0;
  try {
    target.load_snapshot_bytes(image, no_entries);
    FAIL() << "expected CacheError";
  } catch (const CacheError& e) {
    EXPECT_EQ(e.kind(), CacheErrorKind::kTooLarge);
  }
}

TEST(ResultCache, WrongMagicAndVersionKinds) {
  ResultCache cache(8);
  cache.put(1, "v");
  std::string image = cache.snapshot_bytes();

  std::string bad_magic = image;
  bad_magic[0] = 'X';
  try {
    cache.load_snapshot_bytes(bad_magic);
    FAIL() << "expected CacheError";
  } catch (const CacheError& e) {
    EXPECT_EQ(e.kind(), CacheErrorKind::kBadMagic);
  }

  std::string bad_version = image;
  bad_version[4] = 9;
  try {
    cache.load_snapshot_bytes(bad_version);
    FAIL() << "expected CacheError";
  } catch (const CacheError& e) {
    EXPECT_EQ(e.kind(), CacheErrorKind::kBadVersion);
  }
}

TEST(ResultCache, EmptyCacheSnapshotRoundTrips) {
  ResultCache cache(8);
  const std::string image = cache.snapshot_bytes();
  ResultCache target(8);
  target.load_snapshot_bytes(image);
  EXPECT_EQ(target.size(), 0u);
}

}  // namespace
}  // namespace rtg::svc
