// Chaos suite: the service under deterministic fault injection.
//
// The invariants checked here are exact, not statistical, because every
// chaos decision is a pure hash of (seed, job, attempt):
//   - every submitted job gets exactly one response (no deadlock, no
//     duplicate, no silent drop),
//   - load is shed only through explicit kRejected responses,
//   - every kOk verify verdict equals the direct engine's verdict
//     (differential check), under stalls, transient failures, and
//     redeliveries,
//   - the crash-safe cache warm-starts bit-identically.
//
// RTG_CHAOS_SEEDS scales the sweep (CI soak raises it).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "core/latency.hpp"
#include "core/pipeline.hpp"
#include "core/schedule_io.hpp"
#include "spec/compile.hpp"
#include "svc/chaos.hpp"
#include "svc/service.hpp"

namespace rtg::svc {
namespace {

const char* kSpec =
    "element fx\n"
    "element fy\n"
    "element fz\n"
    "element fs weight 2\n"
    "element fk\n"
    "channel fx -> fs -> fk\n"
    "channel fy -> fs\n"
    "channel fz -> fs\n"
    "channel fk -> fs\n"
    "constraint X periodic period 20 deadline 20 { fx -> fs -> fk }\n"
    "constraint Y periodic period 40 deadline 40 { fy -> fs -> fk }\n"
    "constraint Z sporadic separation 50 deadline 25 { fz -> fs }\n";

std::size_t seed_count() {
  if (const char* env = std::getenv("RTG_CHAOS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 3;
}

TEST(Chaos, DecisionsAreDeterministicAndSeedSensitive) {
  ChaosPlan plan;
  plan.seed = 42;
  plan.stall_rate = 0.5;
  plan.fail_rate = 0.5;
  for (std::uint64_t job = 0; job < 50; ++job) {
    for (std::uint64_t attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(chaos_should_stall(plan, job, attempt),
                chaos_should_stall(plan, job, attempt));
      EXPECT_EQ(chaos_should_fail(plan, job, attempt),
                chaos_should_fail(plan, job, attempt));
      const double u = chaos_unit(42, job, attempt, 1);
      EXPECT_GE(u, 0.0);
      EXPECT_LT(u, 1.0);
    }
  }
  // Different seeds must not all agree (the hash actually mixes).
  int diffs = 0;
  ChaosPlan other = plan;
  other.seed = 43;
  for (std::uint64_t job = 0; job < 50; ++job) {
    if (chaos_should_stall(plan, job, 0) != chaos_should_stall(other, job, 0)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(Chaos, DisabledPlanInjectsNothing) {
  ChaosPlan plan;  // seed 0
  plan.stall_rate = 1.0;
  plan.fail_rate = 1.0;
  for (std::uint64_t job = 0; job < 10; ++job) {
    EXPECT_FALSE(chaos_should_stall(plan, job, 0));
    EXPECT_FALSE(chaos_should_fail(plan, job, 0));
  }
}

// One chaos scenario: N mixed jobs against a service with stalls and
// transient failures injected, checked against the exact invariants.
void run_scenario(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));

  const spec::CompileResult compiled = spec::compile_text(kSpec);
  ASSERT_TRUE(compiled.ok());
  const core::GraphModel pipelined = core::pipeline_model(*compiled.model).model;

  // A feasible schedule (synthesized once, outside the service) and an
  // infeasible all-idle one give the differential check both verdicts.
  ServiceOptions setup;
  setup.workers = 1;
  std::string feasible_schedule;
  {
    VerifyService plain(setup);
    JobRequest synth;
    synth.id = 1;
    synth.kind = JobKind::kSynthesize;
    synth.spec = kSpec;
    const JobResponse rsp = plain.submit(std::move(synth)).get();
    plain.shutdown();
    ASSERT_EQ(rsp.status, JobStatus::kOk);
    ASSERT_TRUE(rsp.verdict);
    feasible_schedule = rsp.detail;
  }
  const std::string infeasible_schedule = ".40\n";

  ServiceOptions options;
  options.workers = 2;
  options.ring_capacity = 4;
  options.admission.max_pending = 64;
  options.chaos.seed = seed;
  options.chaos.stall_rate = 0.2;
  options.chaos.stall_ms = 30;
  options.chaos.fail_rate = 0.25;
  // A grace shorter than the stall forces real stuck-worker events and
  // redeliveries; the supervisor must keep its 10ms cadence.
  options.stall_grace_ms = 15;
  options.supervisor_period_ms = 5;
  options.cache_capacity = 8;  // small: force evictions under load

  VerifyService service(options);
  struct Expected {
    bool is_verify = false;
    bool feasible = false;
  };
  std::vector<std::future<JobResponse>> futures;
  std::vector<Expected> expected;
  constexpr std::uint64_t kJobs = 24;
  for (std::uint64_t id = 1; id <= kJobs; ++id) {
    JobRequest req;
    req.id = id;
    req.tenant = (id % 3 == 0) ? "beta" : "alpha";
    req.spec = kSpec;
    Expected e;
    if (id % 2 == 0) {
      req.kind = JobKind::kVerify;
      const bool use_feasible = (id % 4 == 0);
      req.schedule = use_feasible ? feasible_schedule : infeasible_schedule;
      e.is_verify = true;
      e.feasible = use_feasible;
    } else {
      req.kind = JobKind::kSynthesize;
    }
    expected.push_back(e);
    futures.push_back(service.submit(std::move(req)));
  }

  // Exactly one response per job; bounded wait so a deadlock fails the
  // test instead of hanging it.
  std::size_t responded = 0;
  std::size_t shed = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "job " << (i + 1) << " never resolved";
    const JobResponse rsp = futures[i].get();
    ++responded;
    switch (rsp.status) {
      case JobStatus::kRejected:
        ++shed;  // shedding is allowed, but only explicitly
        break;
      case JobStatus::kOk:
        if (expected[i].is_verify) {
          // Differential check: the service's verdict must match the
          // direct engine run on the same inputs.
          EXPECT_EQ(rsp.verdict, expected[i].feasible)
              << "job " << (i + 1) << " verdict diverged";
        }
        break;
      case JobStatus::kFailed:
        // Only the retry-exhaustion path may fail under chaos.
        EXPECT_NE(rsp.detail.find("retries exhausted"), std::string::npos)
            << rsp.detail;
        break;
      case JobStatus::kExpired:
      case JobStatus::kInvalid:
        ADD_FAILURE() << "job " << (i + 1) << " unexpectedly "
                      << job_status_name(rsp.status) << ": " << rsp.detail;
        break;
    }
  }
  EXPECT_EQ(responded, kJobs);

  service.shutdown();
  const ServiceHealth h = service.health();
  EXPECT_EQ(h.pending, 0u);
  EXPECT_EQ(h.submitted, kJobs);
  EXPECT_EQ(h.rejected, shed);
  EXPECT_EQ(h.completed + h.expired + h.invalid + h.failed + h.rejected, kJobs);
}

TEST(Chaos, ServiceSurvivesSeededFaultSweep) {
  const std::size_t seeds = seed_count();
  for (std::size_t s = 1; s <= seeds; ++s) {
    run_scenario(1000 + 77 * s);
    if (HasFatalFailure()) return;
  }
}

TEST(Chaos, QueuedJobsBehindAStalledWorkerArePromptlyReclaimed) {
  // When a worker wedges, the supervisor drains its ring back into
  // staging: jobs queued behind the sleeper must be answered long
  // before the stall ends, not held hostage by the ring's only
  // consumer being asleep.
  constexpr std::uint64_t kJobCount = 16;
  ChaosPlan plan;
  plan.stall_rate = 0.25;
  plan.stall_ms = 1500;
  // Exactly one stalled first run, on job 1 (submitted first, so other
  // jobs queue behind it), and its re-delivered run must run clean.
  std::uint64_t seed = 1;
  for (; seed < 1000000; ++seed) {
    plan.seed = seed;
    std::size_t stalls = 0;
    for (std::uint64_t id = 1; id <= kJobCount; ++id) {
      if (chaos_should_stall(plan, id, 0)) ++stalls;
    }
    if (stalls == 1 && chaos_should_stall(plan, 1, 0) &&
        !chaos_should_stall(plan, 1, 1)) {
      break;
    }
  }
  ASSERT_LT(seed, 1000000u);

  ServiceOptions options;
  options.workers = 2;
  options.ring_capacity = 8;
  options.admission.max_pending = 64;
  options.stall_grace_ms = 15;
  options.supervisor_period_ms = 5;
  options.chaos = plan;

  VerifyService service(options);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<JobResponse>> futures;
  for (std::uint64_t id = 1; id <= kJobCount; ++id) {
    JobRequest req;
    req.id = id;
    req.kind = JobKind::kVerify;
    req.spec = kSpec;
    req.schedule = ".40\n";
    futures.push_back(service.submit(std::move(req)));
  }
  // Every response must arrive well before the 1500ms stall elapses:
  // without reclaim, jobs ring-queued behind the sleeper wait it out.
  const auto budget = t0 + std::chrono::milliseconds(1000);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_until(budget), std::future_status::ready)
        << "job " << (i + 1) << " held hostage by the stalled worker";
    const JobResponse rsp = futures[i].get();
    EXPECT_EQ(rsp.status, JobStatus::kOk) << rsp.detail;
    EXPECT_FALSE(rsp.verdict);
  }
  service.shutdown();
}

TEST(Chaos, WarmStartSnapshotIsBitIdentical) {
  namespace fs = std::filesystem;
  const std::string snap =
      (fs::temp_directory_path() / "rtg_chaos_warm.rtvc").string();
  fs::remove(snap);

  ServiceOptions options;
  options.workers = 2;
  options.snapshot_path = snap;
  options.chaos.seed = 7;
  options.chaos.fail_rate = 0.3;

  std::string first_image;
  {
    VerifyService service(options);
    std::vector<std::future<JobResponse>> futures;
    for (std::uint64_t id = 1; id <= 8; ++id) {
      JobRequest req;
      req.id = id;
      req.kind = JobKind::kSynthesize;
      req.spec = kSpec;
      futures.push_back(service.submit(std::move(req)));
    }
    for (auto& f : futures) (void)f.get();
    service.shutdown();
    first_image = service.cache().snapshot_bytes();
  }

  {
    VerifyService warm(options);
    // Without any new jobs the warm cache must reproduce the snapshot
    // image bit-for-bit.
    EXPECT_EQ(warm.cache().snapshot_bytes(), first_image);
    warm.shutdown();
  }
  fs::remove(snap);
}

}  // namespace
}  // namespace rtg::svc
