// Satellite: generated scenarios through the VerifyService chaos
// harness. PR 6's chaos suite proves the service invariants on one
// hand-written control-system family; this suite feeds ~50 scenario-
// factory instances (every topology, period family, and domain pack)
// through the same chaotic service as mixed-tenant jobs and re-asserts
// the exact invariants beyond that family:
//   - exactly one response per submitted job,
//   - shedding only via explicit kRejected,
//   - every kOk verdict equals the direct engine's verdict on the same
//     scenario (synthesis verdicts against a local latency_schedule
//     run; verify verdicts against the submitted schedule's report).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "core/heuristic.hpp"
#include "core/schedule_io.hpp"
#include "gen/generator.hpp"
#include "svc/service.hpp"

namespace rtg::svc {
namespace {

TEST(CorpusService, GeneratedScenariosSurviveChaosMixedTenants) {
  constexpr std::uint64_t kScenarios = 50;

  // Local ground truth, computed before the service exists. The
  // service's synthesize path runs latency_schedule with default
  // engine options (thread count does not change the report), so the
  // verdicts must agree exactly.
  struct Expected {
    std::string spec;
    bool is_verify = false;
    bool feasible = false;  // expected verdict
    std::string schedule;   // verify jobs only
    std::string repro;
  };
  std::vector<Expected> expected;
  expected.reserve(kScenarios);
  for (std::uint64_t index = 0; index < kScenarios; ++index) {
    const gen::ScenarioOptions options = gen::corpus_options(index);
    const gen::Scenario scenario = gen::generate(options);
    const core::HeuristicResult h = core::latency_schedule(scenario.model);
    Expected e;
    e.spec = scenario.spec;
    e.repro = "spec_compiler --gen " + gen::scenario_spec_string(options);
    if (index % 2 == 0 && h.success) {
      // Verify the synthesized schedule (expected feasible) or, every
      // fourth scenario, an all-idle schedule (expected infeasible).
      e.is_verify = true;
      if (index % 4 == 0) {
        e.feasible = false;
        e.schedule = ".40\n";
      } else {
        e.feasible = true;
        e.schedule = core::schedule_to_text(*h.schedule, h.scheduled_model.comm());
      }
    } else {
      e.is_verify = false;
      e.feasible = h.success;
    }
    expected.push_back(std::move(e));
  }

  ServiceOptions options;
  options.workers = 2;
  options.ring_capacity = 4;
  options.admission.max_pending = 128;
  options.chaos.seed = 20260808;
  options.chaos.stall_rate = 0.2;
  options.chaos.stall_ms = 30;
  options.chaos.fail_rate = 0.25;
  options.stall_grace_ms = 15;
  options.supervisor_period_ms = 5;
  options.cache_capacity = 16;  // small: force evictions across tenants

  VerifyService service(options);
  std::vector<std::future<JobResponse>> futures;
  futures.reserve(kScenarios);
  const char* kTenants[] = {"alpha", "beta", "gamma"};
  for (std::uint64_t index = 0; index < kScenarios; ++index) {
    JobRequest req;
    req.id = index + 1;
    req.tenant = kTenants[index % 3];
    req.spec = expected[index].spec;
    if (expected[index].is_verify) {
      req.kind = JobKind::kVerify;
      req.schedule = expected[index].schedule;
    } else {
      req.kind = JobKind::kSynthesize;
    }
    futures.push_back(service.submit(std::move(req)));
  }

  std::size_t responded = 0;
  std::size_t shed = 0;
  std::size_t ok = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(120)),
              std::future_status::ready)
        << "job " << (i + 1) << " never resolved (" << expected[i].repro << ")";
    const JobResponse rsp = futures[i].get();
    ++responded;
    switch (rsp.status) {
      case JobStatus::kRejected:
        ++shed;
        break;
      case JobStatus::kOk:
        ++ok;
        EXPECT_EQ(rsp.verdict, expected[i].feasible)
            << "job " << (i + 1) << " verdict diverged from the direct engine ("
            << expected[i].repro << ")";
        break;
      case JobStatus::kFailed:
        EXPECT_NE(rsp.detail.find("retries exhausted"), std::string::npos)
            << rsp.detail << " (" << expected[i].repro << ")";
        break;
      case JobStatus::kExpired:
      case JobStatus::kInvalid:
        ADD_FAILURE() << "job " << (i + 1) << " unexpectedly "
                      << job_status_name(rsp.status) << ": " << rsp.detail << " ("
                      << expected[i].repro << ")";
        break;
    }
  }
  EXPECT_EQ(responded, kScenarios);
  // The sweep is only meaningful if most jobs actually completed.
  EXPECT_GT(ok, kScenarios / 2);

  service.shutdown();
  const ServiceHealth h = service.health();
  EXPECT_EQ(h.pending, 0u);
  EXPECT_EQ(h.submitted, kScenarios);
  EXPECT_EQ(h.rejected, shed);
  EXPECT_EQ(h.completed + h.expired + h.invalid + h.failed + h.rejected, kScenarios);
}

}  // namespace
}  // namespace rtg::svc
