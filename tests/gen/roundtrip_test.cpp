// Satellite: the spec round trip. Every generated scenario serializes
// to .rts, re-parses, re-compiles, and re-emits to the bit-identical
// byte string (and hence the identical FNV fingerprint). This catches
// parser/printer drift that the hand-written example specs cannot — the
// generator reaches shapes (dense layered DAGs, singleton constraints,
// weight/nopipeline attribute mixes) no example exercises.
#include <gtest/gtest.h>

#include <string>

#include "gen/generator.hpp"
#include "spec/compile.hpp"
#include "spec/emit.hpp"

namespace rtg::gen {
namespace {

void expect_fixpoint(const Scenario& scenario) {
  SCOPED_TRACE(scenario.name + " — reproduce with: spec_compiler --gen " +
               scenario_spec_string(scenario.options));
  const spec::CompileResult compiled = spec::compile_text(scenario.spec);
  ASSERT_TRUE(compiled.ok())
      << (compiled.errors.empty() ? "?" : compiled.errors.front().message)
      << "\nspec:\n" << scenario.spec;
  const std::string reemitted = spec::emit(*compiled.model);
  EXPECT_EQ(reemitted, scenario.spec);
  EXPECT_EQ(fnv1a(reemitted), scenario.fingerprint);

  // And the recompiled model is itself a fixpoint (idempotence, not
  // just one lucky round).
  const spec::CompileResult again = spec::compile_text(reemitted);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(spec::emit(*again.model), reemitted);
}

TEST(RoundTrip, CorpusPrefixIsAByteFixpoint) {
  for (std::uint64_t index = 0; index < 96; ++index) {
    expect_fixpoint(generate(corpus_options(index)));
  }
}

TEST(RoundTrip, EveryTopologyAtEveryPeriodFamily) {
  for (const Topology t : {Topology::kChain, Topology::kForkJoin,
                           Topology::kLayered, Topology::kDiamond,
                           Topology::kRandomDag}) {
    for (const PeriodFamily f : {PeriodFamily::kHarmonic,
                                 PeriodFamily::kNearHarmonic,
                                 PeriodFamily::kCoprime}) {
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        ScenarioOptions options;
        options.seed = seed;
        options.platform.topology = t;
        options.constraints.periods = f;
        options.platform.pipelinable = (seed % 2 == 0) ? 1.0 : 0.6;
        options.platform.max_weight = 3;
        expect_fixpoint(generate(options));
      }
    }
  }
}

TEST(RoundTrip, DomainPacks) {
  for (const DomainPack d : {DomainPack::kSensorFusion, DomainPack::kAvionics,
                             DomainPack::kMarketData}) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      ScenarioOptions options;
      options.seed = seed;
      options.domain = d;
      expect_fixpoint(generate(options));
    }
  }
}

TEST(RoundTrip, RepeatedLabelSpecsConvergeUnderCanonicalEmit) {
  // Hand-written specs may reference one element twice in a constraint
  // (the #k instance syntax). The canonical printer orders edges by ref
  // name while the compiler renumbers instances by first appearance, so
  // one emit→compile pass may relabel instances — but a second pass
  // must be a fixpoint (the order is then name-canonical already).
  const char* kSpec =
      "element a\n"
      "element b\n"
      "element c\n"
      "channel a -> b -> a\n"
      "channel b -> c\n"
      "constraint R sporadic separation 24 deadline 12 {\n"
      "  b#2 -> c;\n"
      "  a#1 -> b#1;\n"
      "  b#1 -> a#2;\n"
      "  a#2 -> b#2;\n"
      "}\n";
  const spec::CompileResult first = spec::compile_text(kSpec);
  ASSERT_TRUE(first.ok());
  const std::string once = spec::emit(*first.model);
  const spec::CompileResult second = spec::compile_text(once);
  ASSERT_TRUE(second.ok());
  const std::string twice = spec::emit(*second.model);
  const spec::CompileResult third = spec::compile_text(twice);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(spec::emit(*third.model), twice);
}

}  // namespace
}  // namespace rtg::gen
