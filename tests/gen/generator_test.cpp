// Unit tests of the scenario factory: determinism, topology shapes,
// utilization targeting, domain packs, and the --gen spec-string
// round trip.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "gen/generator.hpp"
#include "graph/digraph.hpp"

namespace rtg::gen {
namespace {

TEST(Generator, IsDeterministic) {
  for (std::uint64_t index = 0; index < 24; ++index) {
    const ScenarioOptions options = corpus_options(index);
    const Scenario a = generate(options);
    const Scenario b = generate(options);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.spec, b.spec) << a.name;
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.fingerprint, fnv1a(a.spec));
  }
}

TEST(Generator, SeedsActuallyVaryTheScenario) {
  ScenarioOptions options;
  options.platform.topology = Topology::kLayered;
  std::set<std::uint64_t> fingerprints;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    options.seed = seed;
    fingerprints.insert(generate(options).fingerprint);
  }
  // Weights, wiring, and constraint carving must respond to the seed.
  EXPECT_GT(fingerprints.size(), 8u);
}

TEST(Generator, ShapeKnobsAreIndependentStreams) {
  // Same seed, different topology: unrelated randomness, not the same
  // draws reinterpreted.
  ScenarioOptions a;
  a.seed = 5;
  a.platform.topology = Topology::kChain;
  ScenarioOptions b = a;
  b.platform.topology = Topology::kRandomDag;
  EXPECT_NE(generate(a).fingerprint, generate(b).fingerprint);
}

TEST(Generator, ChainTopologyIsAPath) {
  ScenarioOptions options;
  options.platform.topology = Topology::kChain;
  options.platform.elements = 6;
  const Scenario s = generate(options);
  const graph::Digraph& g = s.model.comm().digraph();
  ASSERT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.edge_count(), 5u);
  for (graph::NodeId v = 0; v + 1 < g.node_count(); ++v) {
    EXPECT_EQ(g.successors(v).size(), 1u);
    EXPECT_EQ(g.successors(v).front(), v + 1);
  }
}

TEST(Generator, ForkJoinHasSingleSourceAndSink) {
  ScenarioOptions options;
  options.platform.topology = Topology::kForkJoin;
  options.platform.elements = 7;
  const Scenario s = generate(options);
  const graph::Digraph& g = s.model.comm().digraph();
  ASSERT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.out_degree(0), 5u);
  EXPECT_EQ(g.in_degree(g.node_count() - 1), 5u);
  for (graph::NodeId mid = 1; mid + 1 < g.node_count(); ++mid) {
    EXPECT_EQ(g.in_degree(mid), 1u);
    EXPECT_EQ(g.out_degree(mid), 1u);
  }
}

TEST(Generator, AllTopologiesEmitConnectedAcyclicPlatforms) {
  for (const Topology t : {Topology::kChain, Topology::kForkJoin,
                           Topology::kLayered, Topology::kDiamond,
                           Topology::kRandomDag}) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      ScenarioOptions options;
      options.seed = seed;
      options.platform.topology = t;
      const Scenario s = generate(options);
      SCOPED_TRACE(s.name);
      const graph::Digraph& g = s.model.comm().digraph();
      // Edges only point from lower to higher element id (the
      // invariant that makes every induced task graph acyclic).
      for (const graph::Edge& e : g.edges()) EXPECT_LT(e.from, e.to);
      // No stranded non-source nodes.
      for (graph::NodeId v = 1; v < g.node_count(); ++v) {
        EXPECT_TRUE(g.in_degree(v) > 0 || g.out_degree(v) > 0) << "element " << v;
      }
      EXPECT_FALSE(s.model.constraints().empty());
    }
  }
}

TEST(Generator, ConstraintsRespectKnobs) {
  ScenarioOptions options;
  options.platform.topology = Topology::kLayered;
  options.platform.elements = 8;
  options.constraints.constraints = 4;
  options.constraints.max_ops = 3;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    options.seed = seed;
    const Scenario s = generate(options);
    ASSERT_EQ(s.model.constraints().size(), 4u);
    for (const core::TimingConstraint& c : s.model.constraints()) {
      EXPECT_LE(c.task_graph.size(), 3u);
      EXPECT_GE(c.task_graph.size(), 1u);
      EXPECT_GT(c.period, 0);
      EXPECT_GE(c.deadline, c.task_graph.computation_time(s.model.comm()));
      EXPECT_FALSE(c.task_graph.has_repeated_labels());
    }
  }
}

TEST(Generator, SporadicFractionExtremes) {
  ScenarioOptions options;
  options.constraints.constraints = 4;
  options.constraints.sporadic_fraction = 1.0;
  for (const core::TimingConstraint& c : generate(options).model.constraints()) {
    EXPECT_FALSE(c.periodic());
  }
  options.constraints.sporadic_fraction = 0.0;
  for (const core::TimingConstraint& c : generate(options).model.constraints()) {
    EXPECT_TRUE(c.periodic());
  }
}

TEST(Generator, LatencyDensityTightensDeadlines) {
  ScenarioOptions options;
  options.constraints.constraints = 4;
  options.constraints.latency_density = 1.0;
  std::size_t tight = 0;
  std::size_t total = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    options.seed = seed;
    for (const core::TimingConstraint& c : generate(options).model.constraints()) {
      ++total;
      if (c.deadline < c.period) ++tight;
    }
  }
  // With density 1.0 every constraint is a strict latency constraint.
  EXPECT_EQ(tight, total);
}

TEST(Generator, UtilizationTargetingLandsInBand) {
  // The knob steers Σ w/d; clamping means individual scenarios scatter,
  // but the corpus average must track the target within a loose band.
  for (const double target : {0.2, 0.5}) {
    ScenarioOptions options;
    options.platform.topology = Topology::kLayered;
    options.platform.elements = 8;
    options.constraints.constraints = 3;
    options.constraints.utilization = target;
    double sum = 0;
    constexpr std::uint64_t kSeeds = 24;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      options.seed = seed;
      sum += generate(options).model.deadline_utilization();
    }
    const double mean = sum / kSeeds;
    EXPECT_GT(mean, 0.4 * target) << "target " << target;
    EXPECT_LT(mean, 2.5 * target) << "target " << target;
  }
}

TEST(Generator, DomainPacksHaveTheirSignatureShapes) {
  ScenarioOptions options;
  options.seed = 3;

  options.domain = DomainPack::kSensorFusion;
  const Scenario fusion = generate(options);
  EXPECT_NE(fusion.spec.find("element imu"), std::string::npos);
  EXPECT_NE(fusion.spec.find("channel fuse -> kf"), std::string::npos);
  EXPECT_EQ(fusion.model.constraints().size(), 4u);

  options.domain = DomainPack::kAvionics;
  const Scenario avionics = generate(options);
  EXPECT_NE(avionics.spec.find("element modesel"), std::string::npos);
  EXPECT_NE(avionics.spec.find("channel mixer -> servo"), std::string::npos);

  options.domain = DomainPack::kMarketData;
  const Scenario market = generate(options);
  EXPECT_NE(market.spec.find("element md_feed"), std::string::npos);
  EXPECT_NE(market.spec.find("channel signal -> order"), std::string::npos);
}

TEST(Generator, CorpusEnumerationCoversTheLattice) {
  std::set<Topology> topologies;
  std::set<PeriodFamily> families;
  std::set<DomainPack> domains;
  for (std::uint64_t index = 0; index < 120; ++index) {
    const ScenarioOptions o = corpus_options(index);
    domains.insert(o.domain);
    if (o.domain == DomainPack::kNone) {
      topologies.insert(o.platform.topology);
      families.insert(o.constraints.periods);
    }
  }
  EXPECT_EQ(topologies.size(), 5u);
  EXPECT_EQ(families.size(), 3u);
  EXPECT_EQ(domains.size(), 4u);
}

TEST(GenSpecString, RoundTripsThroughTheParser) {
  for (std::uint64_t index = 0; index < 32; ++index) {
    const ScenarioOptions options = corpus_options(index);
    const std::string text = scenario_spec_string(options);
    std::string error;
    const std::optional<ScenarioOptions> parsed = parse_scenario_spec(text, &error);
    ASSERT_TRUE(parsed.has_value()) << text << ": " << error;
    EXPECT_EQ(scenario_spec_string(*parsed), text);
    EXPECT_EQ(generate(*parsed).fingerprint, generate(options).fingerprint) << text;
  }
}

TEST(Generator, PlatformShapesChangeHardwareNotTheModel) {
  ScenarioOptions options;
  options.seed = 11;
  options.processors = 4;

  ScenarioOptions ring = options;
  ring.platform_shape = PlatformShape::kRing;
  ScenarioOptions mesh = options;
  mesh.platform_shape = PlatformShape::kPartialMesh;

  const Scenario bus_s = generate(options);
  const Scenario ring_s = generate(ring);
  const Scenario mesh_s = generate(mesh);

  // The shape is a pure function of the knobs: the software model is
  // untouched (no RNG perturbation), only the hardware preamble moves.
  EXPECT_EQ(bus_s.model.comm().size(), ring_s.model.comm().size());
  EXPECT_EQ(bus_s.model.constraint_count(), mesh_s.model.constraint_count());

  ASSERT_TRUE(bus_s.hardware.has_value());
  ASSERT_TRUE(ring_s.hardware.has_value());
  ASSERT_TRUE(mesh_s.hardware.has_value());
  EXPECT_EQ(bus_s.hardware->links.size(), 1u);
  EXPECT_EQ(ring_s.hardware->links.size(), 4u);   // one wire per adjacency
  EXPECT_EQ(mesh_s.hardware->links.size(), 5u);   // wires + fallback bus
  EXPECT_EQ(mesh_s.hardware->links.back().name, "bb");

  // The emitted spec's link lines cover the shape, so fingerprints
  // distinguish all three automatically; names carry the suffix.
  EXPECT_NE(bus_s.fingerprint, ring_s.fingerprint);
  EXPECT_NE(bus_s.fingerprint, mesh_s.fingerprint);
  EXPECT_NE(ring_s.fingerprint, mesh_s.fingerprint);
  EXPECT_NE(ring_s.name.find("r"), std::string::npos);
  EXPECT_NE(mesh_s.name, bus_s.name);
}

TEST(Generator, MappedCorpusExercisesNonBusShapes) {
  bool saw_ring = false, saw_mesh = false, saw_bus = false;
  for (std::uint64_t index = 0; index < 24; ++index) {
    const ScenarioOptions options = mapped_corpus_options(index);
    ASSERT_GT(options.processors, 0u);
    if (index % 8 == 3) {
      EXPECT_EQ(options.platform_shape, PlatformShape::kRing) << index;
      saw_ring = true;
    } else if (index % 8 == 6) {
      EXPECT_EQ(options.platform_shape, PlatformShape::kPartialMesh) << index;
      saw_mesh = true;
    } else {
      EXPECT_EQ(options.platform_shape, PlatformShape::kBus) << index;
      saw_bus = true;
    }
  }
  EXPECT_TRUE(saw_ring);
  EXPECT_TRUE(saw_mesh);
  EXPECT_TRUE(saw_bus);
}

TEST(GenSpecString, PlatformShapeRoundTripsAndRejectsBadValues) {
  ScenarioOptions options;
  options.seed = 3;
  options.processors = 4;
  options.platform_shape = PlatformShape::kPartialMesh;
  const std::string text = scenario_spec_string(options);
  EXPECT_NE(text.find("platform_shape=partial_mesh"), std::string::npos);
  std::string error;
  const std::optional<ScenarioOptions> parsed = parse_scenario_spec(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->platform_shape, PlatformShape::kPartialMesh);
  EXPECT_EQ(generate(*parsed).fingerprint, generate(options).fingerprint);

  // Bus is the default and stays *out* of the spec string, so every
  // pre-ISSUE-10 repro line parses to the same scenario.
  options.platform_shape = PlatformShape::kBus;
  EXPECT_EQ(scenario_spec_string(options).find("platform_shape"), std::string::npos);

  EXPECT_FALSE(parse_scenario_spec("platform_shape=torus", &error));
  EXPECT_NE(error.find("platform_shape"), std::string::npos);
}

TEST(GenSpecString, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_scenario_spec("topology=moebius", &error));
  EXPECT_NE(error.find("topology"), std::string::npos);
  EXPECT_FALSE(parse_scenario_spec("bogus_key=1", &error));
  EXPECT_FALSE(parse_scenario_spec("seed", &error));
  EXPECT_FALSE(parse_scenario_spec("seed=-3", &error));
  EXPECT_FALSE(parse_scenario_spec("density=1.5", &error));
  EXPECT_FALSE(parse_scenario_spec("min_weight=2,max_weight=1", &error));
  EXPECT_FALSE(parse_scenario_spec("constraints=0", &error));
  // Empty string = all defaults; trailing commas are tolerated.
  EXPECT_TRUE(parse_scenario_spec("", &error));
  EXPECT_TRUE(parse_scenario_spec("seed=9,", &error));
}

}  // namespace
}  // namespace rtg::gen
