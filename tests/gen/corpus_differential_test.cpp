// Satellite: the property-based corpus differential suite. Runs the
// full differential synthesis tournament (exact game, Theorem-3
// heuristic, verifier stack at 1/2/4 threads + flat reference,
// IncrementalVerifier + drop probe, process-model baseline) over a
// seeded corpus and requires zero coherence violations.
//
// RTG_CORPUS_SEEDS scales the sweep; the default covers the full
// 500-scenario corpus (CI's per-PR sanitizer job sets 64, the nightly
// gate restores 500). On any violation the scenario is shrunk — fewer
// constraints, smaller platform, smaller task graphs — while the
// violation persists, and the minimized one-line reproduction recipe
// (`spec_compiler --gen <spec>`) is printed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "gen/generator.hpp"
#include "gen/tournament.hpp"

namespace rtg::gen {
namespace {

std::uint64_t corpus_size() {
  if (const char* env = std::getenv("RTG_CORPUS_SEEDS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::uint64_t>(n);
  }
  return 500;
}

bool violates(const ScenarioOptions& options, const TournamentOptions& to) {
  return !run_tournament_row(generate(options), to).violations.empty();
}

// Greedy shrink: try each reduction repeatedly, keep those that
// preserve a violation. Every probe is itself deterministic, so the
// minimized recipe reproduces exactly.
ScenarioOptions minimize(ScenarioOptions options, const TournamentOptions& to) {
  bool progress = true;
  while (progress) {
    progress = false;
    ScenarioOptions candidate = options;
    if (options.constraints.constraints > 1) {
      candidate = options;
      --candidate.constraints.constraints;
      if (violates(candidate, to)) { options = candidate; progress = true; continue; }
    }
    if (options.platform.elements > 2) {
      candidate = options;
      --candidate.platform.elements;
      if (violates(candidate, to)) { options = candidate; progress = true; continue; }
    }
    if (options.constraints.max_ops > 1) {
      candidate = options;
      --candidate.constraints.max_ops;
      if (violates(candidate, to)) { options = candidate; progress = true; continue; }
    }
    if (options.platform.max_weight > options.platform.min_weight) {
      candidate = options;
      --candidate.platform.max_weight;
      if (violates(candidate, to)) { options = candidate; progress = true; continue; }
    }
    if (options.domain != DomainPack::kNone) {
      candidate = options;
      candidate.domain = DomainPack::kNone;
      if (violates(candidate, to)) { options = candidate; progress = true; continue; }
    }
  }
  return options;
}

TEST(CorpusDifferential, TournamentRunsGreenAcrossTheCorpus) {
  TournamentOptions to;
  to.exact_budget = 12'000;  // corpus-sized: answers or kUnknown, fast
  to.exact_threads = 1;

  const std::uint64_t n = corpus_size();
  std::size_t feasible = 0;
  std::size_t exact_answers = 0;
  for (std::uint64_t index = 0; index < n; ++index) {
    const ScenarioOptions options = corpus_options(index);
    const TournamentRow row = run_tournament_row(generate(options), to);
    if (row.heuristic_success) ++feasible;
    if (row.exact_status != core::FeasibilityStatus::kUnknown) ++exact_answers;
    if (!row.violations.empty()) {
      const ScenarioOptions small = minimize(options, to);
      const TournamentRow shrunk = run_tournament_row(generate(small), to);
      std::string detail;
      for (const std::string& v :
           (shrunk.violations.empty() ? row : shrunk).violations) {
        detail += "\n  - " + v;
      }
      ADD_FAILURE() << "corpus index " << index << " (" << row.name
                    << ") violated tournament coherence:" << detail
                    << "\nminimized repro: spec_compiler "
                    << (shrunk.violations.empty() ? row : shrunk).repro;
      return;  // one minimized failure is the actionable signal
    }
  }
  // The corpus must actually exercise both sides of the frontier and
  // get real exact verdicts — an all-kUnknown sweep would be vacuous.
  EXPECT_GT(feasible, n / 4) << "corpus skews infeasible";
  EXPECT_LT(feasible, n) << "corpus skews trivial";
  EXPECT_GT(exact_answers, n / 4) << "exact budget too small to decide anything";
}

TEST(CorpusDifferential, ViolationMachineryActuallyFires) {
  // Guard the guard: hand the tournament a corrupted scenario (spec
  // text that no longer matches the model) and check the round-trip
  // rule reports it — so a future refactor cannot silently turn the
  // suite into a no-op.
  Scenario s = generate(corpus_options(0));
  s.spec += "element smuggled\n";
  const TournamentRow row = run_tournament_row(s, {});
  EXPECT_FALSE(row.violations.empty());
}

}  // namespace
}  // namespace rtg::gen
