// Satellite: seed-stability pins. The corpus is a shared coordinate
// system — benches, CI windows, and bug reports all refer to scenarios
// by corpus index or (domain, seed) pair — so a generator refactor
// that silently reshuffles the mapping would invalidate every recorded
// number and repro line. This suite pins the FNV-1a fingerprints of a
// golden set (same idiom as the fault-injection purity pins): any
// intentional generator change must consciously update these values
// and note the corpus break in CHANGES.md.
#include <gtest/gtest.h>

#include <cstdint>

#include "gen/generator.hpp"

namespace rtg::gen {
namespace {

struct CorpusPin {
  std::uint64_t index;
  std::uint64_t fingerprint;
};

// The corpus prefix every CI window starts with.
constexpr CorpusPin kCorpusPins[] = {
    {0u, 0xb5b97f21c8d6e568ULL},   // chain-s0
    {1u, 0xd0411a9ce0584a55ULL},   // fork_join-s1
    {2u, 0x4867416176bae91cULL},   // layered-s2
    {3u, 0x2fcadc91087fcfefULL},   // diamond-s3
    {4u, 0x80f3d5548ca9e1ceULL},   // random-s4
    {5u, 0x442e3b784aeda723ULL},   // chain-s5
    {6u, 0x5aec03ae32170ef8ULL},   // fork_join-s6
    {7u, 0x55cdea6ad0dc7ae4ULL},   // sensor_fusion-s7
    {8u, 0x3971204bc41bc0f7ULL},   // diamond-s8
    {9u, 0xf2803644312cade9ULL},   // random-s9
    {10u, 0xc32822420f68295cULL},  // chain-s10
    {11u, 0xc5134ac6f0be41e2ULL},  // fork_join-s11
    {12u, 0xf9dd2b4e55b5be28ULL},  // layered-s12
    {13u, 0xb42657970ba2e1d5ULL},  // diamond-s13
    {14u, 0xfddd0162167ece1aULL},  // random-s14
    {15u, 0xc61a9b8e13887a8cULL},  // avionics-s15
};

struct DomainPin {
  DomainPack domain;
  std::uint64_t seed;
  std::uint64_t fingerprint;
};

constexpr DomainPin kDomainPins[] = {
    {DomainPack::kSensorFusion, 1u, 0x599f4975cf92406dULL},
    {DomainPack::kSensorFusion, 2u, 0x725ac641a0b86ae5ULL},
    {DomainPack::kSensorFusion, 3u, 0x5b900b362ce75d4fULL},
    {DomainPack::kAvionics, 1u, 0x4264addcf5b9475fULL},
    {DomainPack::kAvionics, 2u, 0xf14fe129829306beULL},
    {DomainPack::kAvionics, 3u, 0x33a7d6ea96695c09ULL},
    {DomainPack::kMarketData, 1u, 0xe851c0193eb84356ULL},
    {DomainPack::kMarketData, 2u, 0x0eff6f5dc3306669ULL},
    {DomainPack::kMarketData, 3u, 0x880f8382241c1bbaULL},
};

TEST(SeedStability, CorpusPrefixFingerprintsArePinned) {
  for (const CorpusPin& pin : kCorpusPins) {
    const Scenario s = generate(corpus_options(pin.index));
    EXPECT_EQ(s.fingerprint, pin.fingerprint)
        << "corpus index " << pin.index << " (" << s.name
        << ") drifted — the generator reshuffled; repro: spec_compiler --gen "
        << scenario_spec_string(s.options);
  }
}

TEST(SeedStability, DomainPackFingerprintsArePinned) {
  for (const DomainPin& pin : kDomainPins) {
    ScenarioOptions options;
    options.seed = pin.seed;
    options.domain = pin.domain;
    const Scenario s = generate(options);
    EXPECT_EQ(s.fingerprint, pin.fingerprint)
        << s.name << " drifted — the generator reshuffled";
  }
}

TEST(SeedStability, FingerprintPrimitiveIsFnv1a) {
  // The pins above are only as strong as the hash under them: pin the
  // FNV-1a constants with known-answer vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace rtg::gen
