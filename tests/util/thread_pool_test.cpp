// Shutdown ordering and drain semantics of the work-stealing pool.
// These run under TSan in CI: the destructor's join-before-drain
// ordering and wait_idle's help-path accounting are exactly the kind of
// races that only a sanitized regression test keeps fixed.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

namespace rtg::util {
namespace {

TEST(ThreadPool, DestructorRunsEverySubmittedTask) {
  // Destroy the pool while tasks are still queued/running; the
  // drain-then-stop shutdown order must run all of them, not strand
  // any in a deque.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle(): the destructor must do the draining itself.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, WaitIdleCoversNestedSubmissions) {
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &ran] {
      ran.fetch_add(1);
      pool.submit([&pool, &ran] {
        ran.fetch_add(1);
        pool.submit([&ran] { ran.fetch_add(1); });
      });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 24);
}

TEST(ThreadPool, RepeatedWaitIdleIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.wait_idle();  // idle pool: returns immediately
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ManyShortLivedPoolsShutDownCleanly) {
  // The service constructs a pool per server; engines construct one per
  // query. Rapid construct/submit/destroy cycles must not race the
  // worker startup path.
  std::atomic<int> ran{0};
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 500);
}

TEST(ResolveThreads, ClampsToHardwareConcurrency) {
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  EXPECT_EQ(resolve_threads(0), hw);  // auto
  EXPECT_EQ(resolve_threads(1), 1u);
  // Requests past the core count resolve to the core count: running
  // more compute workers than cores only adds preemption (E16).
  EXPECT_EQ(resolve_threads(hw), hw);
  EXPECT_EQ(resolve_threads(hw + 7), hw);
  EXPECT_EQ(resolve_threads(1000), hw);
}

TEST(ThreadPool, ConstructorHonorsExplicitOversubscribedCount) {
  // The service layer parks one resident (blocking) task per worker, so
  // an explicit count must produce exactly that many threads even past
  // the core count — clamping here deadlocks resident-task users.
  ThreadPool pool(8);
  EXPECT_EQ(pool.size(), 8u);
  std::atomic<int> parked{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&parked, &release] {
      parked.fetch_add(1);
      while (!release.load()) std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
  }
  // All eight residents must be running *simultaneously*.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (parked.load() < 8 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(parked.load(), 8);
  release.store(true);
  pool.wait_idle();
}

TEST(ThreadPool, OversubscribedPoolDrainsPromptly) {
  // Regression for the E16 collapse: a pool with more workers than
  // cores must drain a burst of small tasks in bounded time instead of
  // livelocking on spin loops. The generous bound only guards against
  // the pathological pre-fix behavior (seconds of scheduler thrash).
  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<int> ran{0};
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(8);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(ran.load(), 20 * 64);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(seconds, 20.0);
}

TEST(ThreadPool, ParallelForVisitsEachIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, visits.size(),
               [&visits](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace rtg::util
