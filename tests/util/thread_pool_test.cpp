// Shutdown ordering and drain semantics of the work-stealing pool.
// These run under TSan in CI: the destructor's join-before-drain
// ordering and wait_idle's help-path accounting are exactly the kind of
// races that only a sanitized regression test keeps fixed.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

namespace rtg::util {
namespace {

TEST(ThreadPool, DestructorRunsEverySubmittedTask) {
  // Destroy the pool while tasks are still queued/running; the
  // drain-then-stop shutdown order must run all of them, not strand
  // any in a deque.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle(): the destructor must do the draining itself.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, WaitIdleCoversNestedSubmissions) {
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &ran] {
      ran.fetch_add(1);
      pool.submit([&pool, &ran] {
        ran.fetch_add(1);
        pool.submit([&ran] { ran.fetch_add(1); });
      });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 24);
}

TEST(ThreadPool, RepeatedWaitIdleIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.wait_idle();  // idle pool: returns immediately
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ManyShortLivedPoolsShutDownCleanly) {
  // The service constructs a pool per server; engines construct one per
  // query. Rapid construct/submit/destroy cycles must not race the
  // worker startup path.
  std::atomic<int> ran{0};
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPool, ParallelForVisitsEachIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, visits.size(),
               [&visits](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace rtg::util
