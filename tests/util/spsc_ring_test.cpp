// Wrap-around, full-ring, and tiny-capacity behavior of the SPSC ring.
#include "util/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

namespace rtg::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
}

TEST(SpscRing, FullRingRejectsWithoutDroppingAndRecovers) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  // Full: pushes fail and must not clobber queued elements.
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_FALSE(ring.try_push(100));

  std::array<int, 2> out{};
  ASSERT_EQ(ring.pop_batch(out), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);

  // Freed slots accept exactly that many new pushes.
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_TRUE(ring.try_push(5));
  EXPECT_FALSE(ring.try_push(6));

  // pop_batch may return fewer than available (the consumer's view of
  // the tail refreshes lazily), so drain in a loop and check order.
  std::array<int, 8> rest{};
  std::vector<int> drained;
  std::size_t n;
  while ((n = ring.pop_batch(rest)) > 0) {
    drained.insert(drained.end(), rest.begin(), rest.begin() + n);
  }
  EXPECT_EQ(drained, (std::vector<int>{2, 3, 4, 5}));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, SingleSlotRingAlternates) {
  SpscRing<int> ring(1);
  ASSERT_EQ(ring.capacity(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ring.try_push(i));
    EXPECT_FALSE(ring.try_push(i + 1000));  // full at depth one
    std::array<int, 1> out{};
    ASSERT_EQ(ring.pop_batch(out), 1u);
    EXPECT_EQ(out[0], i);
    EXPECT_TRUE(ring.empty());
  }
}

TEST(SpscRing, WrapAroundPreservesFifoOrder) {
  SpscRing<std::uint32_t> ring(8);
  std::uint32_t next_push = 0;
  std::uint32_t next_pop = 0;
  // Push/pop in a skewed rhythm so the indices lap the buffer many
  // times: wrap-around must never reorder or duplicate.
  for (int round = 0; round < 1000; ++round) {
    const int pushes = 1 + (round % 7);
    for (int i = 0; i < pushes; ++i) {
      if (ring.try_push(next_push)) ++next_push;
    }
    std::array<std::uint32_t, 3> out{};
    const std::size_t n = ring.pop_batch(out);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], next_pop);
      ++next_pop;
    }
  }
  // Drain the tail.
  std::array<std::uint32_t, 8> out{};
  std::size_t n;
  while ((n = ring.pop_batch(out)) > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, ConcurrentProducerConsumerDeliversEverythingInOrder) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(64);
  std::uint64_t sum = 0;
  std::uint64_t expected_next = 0;
  bool ordered = true;

  std::thread consumer([&] {
    std::array<std::uint64_t, 16> out{};
    std::uint64_t received = 0;
    while (received < kCount) {
      const std::size_t n = ring.pop_batch(out);
      for (std::size_t i = 0; i < n; ++i) {
        ordered = ordered && out[i] == expected_next;
        ++expected_next;
        sum += out[i];
      }
      received += n;
      if (n == 0) std::this_thread::yield();
    }
  });

  for (std::uint64_t v = 0; v < kCount;) {
    if (ring.try_push(v)) {
      ++v;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();

  EXPECT_TRUE(ordered);
  EXPECT_EQ(expected_next, kCount);
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

}  // namespace
}  // namespace rtg::util
