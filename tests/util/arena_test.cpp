// Unit tests for the bump-pointer scratch arena (ISSUE 8): pointer
// stability across growth, reset/reuse semantics, alignment, and the
// bytes_peak accounting surfaced as VerifyStats::arena_bytes_peak.
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace rtg::util {
namespace {

TEST(Arena, AllocationsAreWritableAndDisjoint) {
  Arena arena(64);
  int* a = arena.allocate<int>(10);
  int* b = arena.allocate<int>(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (int i = 0; i < 10; ++i) {
    a[i] = i;
    b[i] = 100 + i;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], 100 + i);  // b did not alias a
  }
}

TEST(Arena, PointersStayValidAcrossGrowth) {
  // Force many block chains: earlier allocations must stay intact
  // because exhausted blocks are kept alive until reset().
  Arena arena(64);
  std::vector<std::uint64_t*> ptrs;
  for (std::uint64_t i = 0; i < 200; ++i) {
    std::uint64_t* p = arena.allocate<std::uint64_t>(17);
    p[0] = i;
    p[16] = ~i;
    ptrs.push_back(p);
  }
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(ptrs[i][0], i);
    EXPECT_EQ(ptrs[i][16], ~i);
  }
}

TEST(Arena, AllocateZeroedIsZero) {
  Arena arena(64);
  // Dirty the block first so the zeroing is observable after reset.
  std::uint64_t* dirty = arena.allocate<std::uint64_t>(32);
  for (int i = 0; i < 32; ++i) dirty[i] = ~0ull;
  arena.reset();
  const std::uint64_t* z = arena.allocate_zeroed<std::uint64_t>(32);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(z[i], 0u);
}

TEST(Arena, AlignmentIsRespected) {
  Arena arena(64);
  (void)arena.allocate<char>(3);  // misalign the cursor
  const double* d = arena.allocate<double>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  (void)arena.allocate<char>(1);
  const std::uint64_t* w = arena.allocate<std::uint64_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % alignof(std::uint64_t), 0u);
}

TEST(Arena, ResetRecyclesTheLargestBlock) {
  Arena arena(64);
  (void)arena.allocate<char>(4000);  // grows well past the first block
  const std::size_t reserved_before = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.reuses(), 1u);
  // Only the largest block survives the reset...
  EXPECT_LE(arena.bytes_reserved(), reserved_before);
  EXPECT_GE(arena.bytes_reserved(), 4000u);
  // ...and a same-shaped allocation round now fits without reserving
  // any new memory.
  const std::size_t reserved_after = arena.bytes_reserved();
  (void)arena.allocate<char>(4000);
  EXPECT_EQ(arena.bytes_reserved(), reserved_after);
}

TEST(Arena, BytesPeakTracksTheHighWaterMark) {
  Arena arena(64);
  EXPECT_EQ(arena.bytes_peak(), 0u);
  (void)arena.allocate<char>(100);
  const std::size_t peak1 = arena.bytes_peak();
  EXPECT_GE(peak1, 100u);
  arena.reset();
  EXPECT_EQ(arena.bytes_peak(), peak1);  // peak survives reset
  (void)arena.allocate<char>(10);
  EXPECT_EQ(arena.bytes_peak(), peak1);  // smaller round: unchanged
  (void)arena.allocate<char>(300);
  EXPECT_GE(arena.bytes_peak(), 310u);  // larger round: advances
}

TEST(Arena, ManyResetRoundsAllocateNothingNew) {
  Arena arena;
  (void)arena.allocate<std::uint64_t>(512);  // warm up
  arena.reset();
  const std::size_t reserved = arena.bytes_reserved();
  for (int round = 0; round < 50; ++round) {
    (void)arena.allocate<std::uint64_t>(256);
    (void)arena.allocate<std::uint32_t>(128);
    (void)arena.allocate<char>(64);
    arena.reset();
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.reuses(), 51u);
}

}  // namespace
}  // namespace rtg::util
