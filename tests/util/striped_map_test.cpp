// StripedLruMap: capacity accounting, recency order, and concurrent
// insert/evict (the latter matters under TSan).
#include "util/striped_map.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace rtg::util {
namespace {

TEST(StripedLruMap, GetReturnsWhatPutStored) {
  StripedLruMap<int, std::string> map(16, 4);
  EXPECT_FALSE(map.get(1).has_value());
  map.put(1, "one");
  map.put(2, "two");
  auto v = map.get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  EXPECT_EQ(map.size(), 2u);
}

TEST(StripedLruMap, PutReplacesInPlaceWithoutEviction) {
  StripedLruMap<int, std::string> map(4, 1);
  map.put(7, "a");
  EXPECT_FALSE(map.put(7, "b"));  // replacement, not an insert
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.evictions(), 0u);
  EXPECT_EQ(*map.get(7), "b");
}

TEST(StripedLruMap, EvictsLeastRecentlyUsedAtCapacity) {
  // One stripe so the LRU order is global and fully observable.
  StripedLruMap<int, int> map(3, 1);
  map.put(1, 10);
  map.put(2, 20);
  map.put(3, 30);
  // Touch 1 so 2 becomes the LRU entry.
  EXPECT_TRUE(map.get(1).has_value());
  EXPECT_TRUE(map.put(4, 40));  // evicts
  EXPECT_EQ(map.evictions(), 1u);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_FALSE(map.get(2).has_value());  // the cold entry went
  EXPECT_TRUE(map.get(1).has_value());
  EXPECT_TRUE(map.get(3).has_value());
  EXPECT_TRUE(map.get(4).has_value());
}

TEST(StripedLruMap, EraseRemovesAndForEachVisitsAll) {
  StripedLruMap<int, int> map(64, 8);
  for (int i = 0; i < 20; ++i) map.put(i, i * i);
  EXPECT_TRUE(map.erase(5));
  EXPECT_FALSE(map.erase(5));
  EXPECT_EQ(map.size(), 19u);

  std::size_t seen = 0;
  long sum = 0;
  map.for_each([&](const int& k, const int& v) {
    ++seen;
    sum += v;
    EXPECT_EQ(v, k * k);
  });
  EXPECT_EQ(seen, 19u);
  EXPECT_EQ(sum, 2470 - 25);  // sum i^2, i<20, minus the erased 5^2
}

TEST(StripedLruMap, ConcurrentInsertAndEvictKeepsInvariants) {
  // Hammer a small-capacity map from several threads: size must never
  // exceed capacity (per-shard bounds), lookups must only ever see
  // values that were stored for that key, and the run must be clean
  // under TSan.
  constexpr std::size_t kCapacity = 64;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20'000;
  StripedLruMap<std::uint64_t, std::uint64_t> map(kCapacity, 8);
  std::atomic<bool> wrong_value{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, &wrong_value, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key =
            static_cast<std::uint64_t>((t * 31 + i * 7) % 256);
        map.put(key, key * 1000 + 1);
        const auto got = map.get((key + 13) % 256);
        if (got.has_value() && *got != ((key + 13) % 256) * 1000 + 1) {
          wrong_value.store(true);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(wrong_value.load());
  EXPECT_LE(map.size(), kCapacity);
  EXPECT_GT(map.evictions(), 0u);
  map.for_each([](const std::uint64_t& k, const std::uint64_t& v) {
    EXPECT_EQ(v, k * 1000 + 1);
  });
}

}  // namespace
}  // namespace rtg::util
