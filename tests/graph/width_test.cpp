#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/rng.hpp"

namespace rtg::graph {
namespace {

TEST(DagWidth, ChainIsOne) {
  EXPECT_EQ(dag_width(make_chain(6)), 1u);
  EXPECT_EQ(minimum_path_cover(make_chain(6)), 1u);
}

TEST(DagWidth, AntichainIsN) {
  Digraph g;
  for (int i = 0; i < 5; ++i) g.add_node();
  EXPECT_EQ(dag_width(g), 5u);
}

TEST(DagWidth, ForkJoinEqualsMiddleWidth) {
  EXPECT_EQ(dag_width(make_fork_join(4)), 4u);
}

TEST(DagWidth, DiamondIsTwo) {
  Digraph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(dag_width(g), 2u);
}

TEST(DagWidth, PathCoverMayJump) {
  // 0 -> 1, 0 -> 2, 1 -> 3: chains in the *order* may skip, so
  // {0,1,3} and {2} cover with 2 chains even though 2's only neighbour
  // is 0.
  Digraph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  EXPECT_EQ(minimum_path_cover(g), 2u);
}

TEST(DagWidth, EmptyGraphIsZero) {
  Digraph g;
  EXPECT_EQ(dag_width(g), 0u);
  EXPECT_TRUE(maximum_antichain(g).empty());
}

TEST(DagWidth, ThrowsOnCycle) {
  Digraph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW((void)dag_width(g), std::invalid_argument);
}

TEST(MaximumAntichain, IsValidAndMaximum) {
  sim::Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const Digraph g = make_random_dag(
        static_cast<std::size_t>(rng.uniform(1, 10)), 0.3, rng);
    const std::size_t width = dag_width(g);
    const auto antichain = maximum_antichain(g);
    EXPECT_EQ(antichain.size(), width) << "trial " << trial;
    // Pairwise unreachable.
    for (std::size_t i = 0; i < antichain.size(); ++i) {
      for (std::size_t j = 0; j < antichain.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(reaches(g, antichain[i], antichain[j]))
            << "trial " << trial;
      }
    }
  }
}

TEST(MaximumAntichain, MatchesBruteForceOnSmallDags) {
  sim::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform(1, 8));
    const Digraph g = make_random_dag(n, 0.4, rng);
    // Brute force: largest subset with no reachability between members.
    std::size_t best = 0;
    for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
      bool ok = true;
      for (NodeId a = 0; a < n && ok; ++a) {
        if (!(mask & (1u << a))) continue;
        for (NodeId b = 0; b < n && ok; ++b) {
          if (a == b || !(mask & (1u << b))) continue;
          if (reaches(g, a, b)) ok = false;
        }
      }
      if (ok) best = std::max<std::size_t>(best, std::popcount(mask));
    }
    EXPECT_EQ(dag_width(g), best) << "trial " << trial;
  }
}

TEST(DagWidth, ReductionTree) {
  // 8 leaves: the leaves form the largest antichain.
  EXPECT_EQ(dag_width(make_reduction_tree(8)), 8u);
}

}  // namespace
}  // namespace rtg::graph
