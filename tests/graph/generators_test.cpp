#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace rtg::graph {
namespace {

TEST(MakeChain, StructureAndWeights) {
  const Digraph g = make_chain(4, 3);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(g.weight(v), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(is_acyclic(g));
}

TEST(MakeChain, SingleAndEmpty) {
  EXPECT_EQ(make_chain(1).node_count(), 1u);
  EXPECT_EQ(make_chain(0).node_count(), 0u);
}

TEST(MakeForkJoin, SingleSourceSingleSink) {
  const Digraph g = make_fork_join(5);
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(sources(g).size(), 1u);
  EXPECT_EQ(sinks(g).size(), 1u);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(g.out_degree(0), 5u);
}

TEST(MakeForkJoin, ZeroWidthDegeneratesToEdge) {
  const Digraph g = make_fork_join(0);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(MakeLayeredDag, EveryNonSourceHasPredecessor) {
  sim::Rng rng(7);
  const Digraph g = make_layered_dag(4, 3, 0.3, rng);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_TRUE(is_acyclic(g));
  // Nodes beyond the first layer must have at least one predecessor.
  for (NodeId v = 3; v < 12; ++v) {
    EXPECT_GE(g.in_degree(v), 1u) << v;
  }
}

TEST(MakeLayeredDag, WeightsWithinRange) {
  sim::Rng rng(9);
  const Digraph g = make_layered_dag(3, 3, 0.5, rng, 2, 5);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(g.weight(v), 2);
    EXPECT_LE(g.weight(v), 5);
  }
}

TEST(MakeLayeredDag, EmptyOnZeroDims) {
  sim::Rng rng(1);
  EXPECT_TRUE(make_layered_dag(0, 3, 0.5, rng).empty());
  EXPECT_TRUE(make_layered_dag(3, 0, 0.5, rng).empty());
}

TEST(MakeRandomDag, AlwaysAcyclic) {
  sim::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Digraph g = make_random_dag(15, 0.4, rng);
    EXPECT_TRUE(is_acyclic(g));
  }
}

TEST(MakeRandomDag, DensityOneIsCompleteDag) {
  sim::Rng rng(3);
  const Digraph g = make_random_dag(6, 1.0, rng);
  EXPECT_EQ(g.edge_count(), 15u);  // C(6, 2)
}

TEST(MakeRandomDag, DensityZeroHasNoEdges) {
  sim::Rng rng(3);
  EXPECT_EQ(make_random_dag(6, 0.0, rng).edge_count(), 0u);
}

TEST(MakeRandomDag, Deterministic) {
  sim::Rng a(42), b(42);
  const Digraph ga = make_random_dag(10, 0.5, a, 1, 9);
  const Digraph gb = make_random_dag(10, 0.5, b, 1, 9);
  EXPECT_EQ(ga.edges(), gb.edges());
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(ga.weight(v), gb.weight(v));
}

TEST(MakeSeriesParallel, TwoTerminalDag) {
  sim::Rng rng(5);
  const Digraph g = make_series_parallel(12, 0.5, rng);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(sources(g).size(), 1u);
  EXPECT_EQ(sinks(g).size(), 1u);
  EXPECT_GE(g.node_count(), 12u);
}

TEST(MakeSeriesParallel, PureSeriesIsChain) {
  sim::Rng rng(5);
  const Digraph g = make_series_parallel(6, 0.0, rng);
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.edge_count(), 5u);
}

TEST(MakeReductionTree, BinaryJoinStructure) {
  const Digraph g = make_reduction_tree(4);
  // 4 leaves + 2 joins + 1 root = 7 nodes.
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(sinks(g).size(), 1u);
  EXPECT_EQ(sources(g).size(), 4u);
  EXPECT_TRUE(is_acyclic(g));
}

TEST(MakeReductionTree, OddLeafCarriesThrough) {
  const Digraph g = make_reduction_tree(5);
  EXPECT_EQ(sinks(g).size(), 1u);
  EXPECT_EQ(sources(g).size(), 5u);
}

TEST(MakeReductionTree, SingleLeaf) {
  const Digraph g = make_reduction_tree(1);
  EXPECT_EQ(g.node_count(), 1u);
}

TEST(Generators, BadWeightRangeThrows) {
  sim::Rng rng(1);
  EXPECT_THROW(make_random_dag(3, 0.5, rng, 5, 2), std::invalid_argument);
}

}  // namespace
}  // namespace rtg::graph
