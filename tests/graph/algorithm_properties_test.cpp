// Property sweeps over the graph algorithms on random DAGs: the
// structural identities the scheduling core depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/rng.hpp"

namespace rtg::graph {
namespace {

class GraphPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertySweep,
                         ::testing::Range<std::uint64_t>(0, 20));

Digraph random_dag(std::uint64_t seed, std::size_t max_n = 12) {
  sim::Rng rng(seed * 2654435761u + 1);
  return make_random_dag(static_cast<std::size_t>(
                             rng.uniform(1, static_cast<std::int64_t>(max_n))),
                         rng.uniform01(), rng, 1, 4);
}

TEST_P(GraphPropertySweep, TopologicalSortRespectsEveryEdge) {
  const Digraph g = random_dag(GetParam());
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(g.node_count());
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (const Edge& e : g.edges()) {
    EXPECT_LT(pos[e.from], pos[e.to]);
  }
}

TEST_P(GraphPropertySweep, TransitiveReductionPreservesReachability) {
  const Digraph g = random_dag(GetParam());
  Digraph reduced;
  for (NodeId v = 0; v < g.node_count(); ++v) reduced.add_node(g.weight(v));
  for (const Edge& e : transitive_reduction(g)) reduced.add_edge(e.from, e.to);

  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(reaches(g, u, v), reaches(reduced, u, v)) << u << "->" << v;
    }
  }
  EXPECT_LE(reduced.edge_count(), g.edge_count());
}

TEST_P(GraphPropertySweep, ReductionIsMinimal) {
  // Removing any edge of the reduction changes reachability.
  const Digraph g = random_dag(GetParam(), 8);
  const auto kept = transitive_reduction(g);
  for (std::size_t skip = 0; skip < kept.size(); ++skip) {
    Digraph partial;
    for (NodeId v = 0; v < g.node_count(); ++v) partial.add_node();
    for (std::size_t i = 0; i < kept.size(); ++i) {
      if (i != skip) partial.add_edge(kept[i].from, kept[i].to);
    }
    EXPECT_FALSE(reaches(partial, kept[skip].from, kept[skip].to));
  }
}

TEST_P(GraphPropertySweep, CriticalPathIsAPathAndHeaviest) {
  const Digraph g = random_dag(GetParam());
  const auto path = critical_path(g);
  ASSERT_FALSE(path.empty());
  std::int64_t weight = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    weight += g.weight(path[i]);
    if (i > 0) {
      EXPECT_TRUE(g.has_edge(path[i - 1], path[i]));
    }
  }
  EXPECT_EQ(weight, critical_path_weight(g));
}

TEST_P(GraphPropertySweep, DepthsAreLongestUnitPaths) {
  const Digraph g = random_dag(GetParam());
  const auto depths = node_depths(g);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(depths[e.to], depths[e.from] + 1);
  }
  for (NodeId v : sources(g)) EXPECT_EQ(depths[v], 0u);
}

TEST_P(GraphPropertySweep, WidthTimesLongestChainBoundsN) {
  // Mirsky/Dilworth sanity: width * (longest chain length) >= n.
  const Digraph g = random_dag(GetParam());
  const std::size_t n = g.node_count();
  const std::size_t width = dag_width(g);
  // Longest chain in the order = longest path in nodes (unit weights).
  Digraph unit;
  for (NodeId v = 0; v < n; ++v) unit.add_node(1);
  for (const Edge& e : g.edges()) unit.add_edge(e.from, e.to);
  const std::size_t chain =
      static_cast<std::size_t>(critical_path_weight(unit));
  EXPECT_GE(width * chain, n);
  EXPECT_GE(width, 1u);
  EXPECT_LE(width, n);
}

TEST_P(GraphPropertySweep, SccOfDagIsAllSingletons) {
  const Digraph g = random_dag(GetParam());
  const auto comps = strongly_connected_components(g);
  EXPECT_EQ(comps.size(), g.node_count());
}

TEST_P(GraphPropertySweep, AllTopologicalSortsAreValidAndDistinct) {
  const Digraph g = random_dag(GetParam(), 6);
  const auto sorts = all_topological_sorts(g, 200);
  std::set<std::vector<NodeId>> distinct(sorts.begin(), sorts.end());
  EXPECT_EQ(distinct.size(), sorts.size());
  for (const auto& order : sorts) {
    std::vector<std::size_t> pos(g.node_count());
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (const Edge& e : g.edges()) {
      EXPECT_LT(pos[e.from], pos[e.to]);
    }
  }
}

}  // namespace
}  // namespace rtg::graph
