#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/generators.hpp"
#include "sim/rng.hpp"

namespace rtg::graph {
namespace {

Digraph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  Digraph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

Digraph two_cycle() {
  Digraph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  return g;
}

TEST(TopologicalSort, EmptyGraph) {
  Digraph g;
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

TEST(TopologicalSort, DiamondRespectsPrecedence) {
  const Digraph g = diamond();
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4u);
  auto pos = [&](NodeId v) {
    return std::find(order->begin(), order->end(), v) - order->begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(TopologicalSort, DeterministicTieBreakBySmallestId) {
  Digraph g;
  for (int i = 0; i < 3; ++i) g.add_node();  // no edges
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<NodeId>{0, 1, 2}));
}

TEST(TopologicalSort, CycleReturnsNullopt) {
  EXPECT_EQ(topological_sort(two_cycle()), std::nullopt);
}

TEST(IsAcyclic, Classifies) {
  EXPECT_TRUE(is_acyclic(diamond()));
  EXPECT_FALSE(is_acyclic(two_cycle()));
}

TEST(AllTopologicalSorts, DiamondHasTwo) {
  const auto sorts = all_topological_sorts(diamond());
  ASSERT_EQ(sorts.size(), 2u);
  EXPECT_EQ(sorts[0], (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(sorts[1], (std::vector<NodeId>{0, 2, 1, 3}));
}

TEST(AllTopologicalSorts, LimitTruncates) {
  Digraph g;
  for (int i = 0; i < 5; ++i) g.add_node();  // antichain: 120 sorts
  EXPECT_EQ(all_topological_sorts(g, 7).size(), 7u);
}

TEST(AllTopologicalSorts, ThrowsOnCycle) {
  EXPECT_THROW(all_topological_sorts(two_cycle()), std::invalid_argument);
}

TEST(Reachability, ReachableFromSource) {
  const Digraph g = diamond();
  EXPECT_EQ(reachable_from(g, 0), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(reachable_from(g, 1), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(reachable_from(g, 3), (std::vector<NodeId>{3}));
}

TEST(Reachability, ReachesIsReflexive) {
  const Digraph g = diamond();
  EXPECT_TRUE(reaches(g, 2, 2));
  EXPECT_TRUE(reaches(g, 0, 3));
  EXPECT_FALSE(reaches(g, 3, 0));
  EXPECT_FALSE(reaches(g, 1, 2));
}

TEST(TransitiveClosure, MatchesReachability) {
  const Digraph g = diamond();
  const auto closure = transitive_closure(g);
  const std::size_t n = g.node_count();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(closure[u * n + v], reaches(g, u, v)) << u << "->" << v;
    }
  }
}

TEST(TransitiveReduction, RemovesShortcutEdge) {
  Digraph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);  // redundant
  const auto reduced = transitive_reduction(g);
  ASSERT_EQ(reduced.size(), 2u);
  EXPECT_EQ(reduced[0], (Edge{0, 1}));
  EXPECT_EQ(reduced[1], (Edge{1, 2}));
}

TEST(TransitiveReduction, KeepsDiamondIntact) {
  EXPECT_EQ(transitive_reduction(diamond()).size(), 4u);
}

TEST(CriticalPath, WeightsSumAlongHeaviestPath) {
  Digraph g;
  g.add_node(1);   // 0
  g.add_node(10);  // 1
  g.add_node(2);   // 2
  g.add_node(1);   // 3
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(critical_path_weight(g), 12);  // 0 -> 1 -> 3
  EXPECT_EQ(critical_path(g), (std::vector<NodeId>{0, 1, 3}));
}

TEST(CriticalPath, SingleNode) {
  Digraph g;
  g.add_node(5);
  EXPECT_EQ(critical_path_weight(g), 5);
  EXPECT_EQ(critical_path(g), (std::vector<NodeId>{0}));
}

TEST(CriticalPath, EmptyGraphIsZero) {
  Digraph g;
  EXPECT_EQ(critical_path_weight(g), 0);
  EXPECT_TRUE(critical_path(g).empty());
}

TEST(Scc, DagHasSingletonComponents) {
  const auto comps = strongly_connected_components(diamond());
  EXPECT_EQ(comps.size(), 4u);
  for (const auto& comp : comps) EXPECT_EQ(comp.size(), 1u);
}

TEST(Scc, DetectsCycleComponent) {
  Digraph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 1);  // cycle {1, 2}
  g.add_edge(2, 3);
  const auto comps = strongly_connected_components(g);
  ASSERT_EQ(comps.size(), 3u);
  const bool has_pair = std::any_of(comps.begin(), comps.end(), [](const auto& c) {
    return c == std::vector<NodeId>{1, 2};
  });
  EXPECT_TRUE(has_pair);
}

TEST(Scc, LongChainDoesNotOverflowStack) {
  sim::Rng rng(1);
  const Digraph g = make_chain(200000);
  const auto comps = strongly_connected_components(g);
  EXPECT_EQ(comps.size(), 200000u);
}

TEST(SourcesSinks, Diamond) {
  const Digraph g = diamond();
  EXPECT_EQ(sources(g), (std::vector<NodeId>{0}));
  EXPECT_EQ(sinks(g), (std::vector<NodeId>{3}));
}

TEST(NodeDepths, LayeredDepths) {
  const Digraph g = diamond();
  const auto depths = node_depths(g);
  EXPECT_EQ(depths, (std::vector<std::size_t>{0, 1, 1, 2}));
}

TEST(NodeDepths, ThrowsOnCycle) {
  EXPECT_THROW(node_depths(two_cycle()), std::invalid_argument);
}

}  // namespace
}  // namespace rtg::graph
