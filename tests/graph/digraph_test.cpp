#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rtg::graph {
namespace {

TEST(Digraph, StartsEmpty) {
  Digraph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.total_weight(), 0);
}

TEST(Digraph, AddNodeAssignsDenseIds) {
  Digraph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.add_node(), 2u);
  EXPECT_EQ(g.node_count(), 3u);
}

TEST(Digraph, NodeWeightDefaultsToOne) {
  Digraph g;
  const NodeId v = g.add_node();
  EXPECT_EQ(g.weight(v), 1);
}

TEST(Digraph, NodeWeightStoredAndMutable) {
  Digraph g;
  const NodeId v = g.add_node(7);
  EXPECT_EQ(g.weight(v), 7);
  g.set_weight(v, 3);
  EXPECT_EQ(g.weight(v), 3);
}

TEST(Digraph, NegativeWeightRejected) {
  Digraph g;
  EXPECT_THROW(g.add_node(-1), std::invalid_argument);
  const NodeId v = g.add_node(1);
  EXPECT_THROW(g.set_weight(v, -2), std::invalid_argument);
}

TEST(Digraph, NamesAreUniqueAndSearchable) {
  Digraph g;
  const NodeId a = g.add_node(1, "alpha");
  const NodeId b = g.add_node(1, "beta");
  EXPECT_EQ(g.name(a), "alpha");
  EXPECT_EQ(g.find("alpha"), a);
  EXPECT_EQ(g.find("beta"), b);
  EXPECT_EQ(g.find("gamma"), std::nullopt);
  EXPECT_THROW(g.add_node(1, "alpha"), std::invalid_argument);
}

TEST(Digraph, UnnamedNodesAllowedInBulk) {
  Digraph g;
  g.add_node();
  g.add_node();
  EXPECT_EQ(g.name(0), "");
  EXPECT_EQ(g.name(1), "");
}

TEST(Digraph, AddEdgeCreatesAdjacency) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_TRUE(g.add_edge(a, b));
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));
  ASSERT_EQ(g.successors(a).size(), 1u);
  EXPECT_EQ(g.successors(a)[0], b);
  ASSERT_EQ(g.predecessors(b).size(), 1u);
  EXPECT_EQ(g.predecessors(b)[0], a);
}

TEST(Digraph, ParallelEdgeRejectedIdempotently) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_TRUE(g.add_edge(a, b));
  EXPECT_FALSE(g.add_edge(a, b));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, SelfLoopThrows) {
  Digraph g;
  const NodeId a = g.add_node();
  EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);
}

TEST(Digraph, UnknownNodeThrows) {
  Digraph g;
  const NodeId a = g.add_node();
  EXPECT_THROW(g.add_edge(a, 42), std::out_of_range);
  EXPECT_THROW((void)g.weight(42), std::out_of_range);
  EXPECT_THROW((void)g.successors(42), std::out_of_range);
}

TEST(Digraph, DegreesCount) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, c);
  EXPECT_EQ(g.out_degree(a), 2u);
  EXPECT_EQ(g.in_degree(a), 0u);
  EXPECT_EQ(g.in_degree(c), 2u);
  EXPECT_EQ(g.out_degree(c), 0u);
}

TEST(Digraph, EdgesEnumeratesAll) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b);
  g.add_edge(b, c);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{a, b}));
  EXPECT_EQ(edges[1], (Edge{b, c}));
}

TEST(Digraph, TotalWeightSums) {
  Digraph g;
  g.add_node(2);
  g.add_node(3);
  g.add_node(0);
  EXPECT_EQ(g.total_weight(), 5);
}

TEST(Digraph, HasEdgeOnUnknownNodesIsFalse) {
  Digraph g;
  g.add_node();
  EXPECT_FALSE(g.has_edge(0, 9));
  EXPECT_FALSE(g.has_edge(9, 0));
}

}  // namespace
}  // namespace rtg::graph
