#include "graph/dot.hpp"

#include <gtest/gtest.h>

namespace rtg::graph {
namespace {

TEST(Dot, EmptyGraph) {
  Digraph g;
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph G {"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(Dot, NamedNodesAndEdges) {
  Digraph g;
  const NodeId a = g.add_node(2, "fx");
  const NodeId b = g.add_node(1, "fs");
  g.add_edge(a, b);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("fx (w=2)"), std::string::npos);
  EXPECT_NE(dot.find("fs (w=1)"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
}

TEST(Dot, WeightsSuppressed) {
  Digraph g;
  g.add_node(2, "fx");
  DotOptions opts;
  opts.show_weights = false;
  const std::string dot = to_dot(g, opts);
  EXPECT_EQ(dot.find("w=2"), std::string::npos);
  EXPECT_NE(dot.find("fx"), std::string::npos);
}

TEST(Dot, UnnamedNodesGetIdLabels) {
  Digraph g;
  g.add_node();
  DotOptions opts;
  opts.show_weights = false;
  const std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("label=\"n0\""), std::string::npos);
}

TEST(Dot, CustomGraphNameAndRankdir) {
  Digraph g;
  DotOptions opts;
  opts.graph_name = "CommGraph";
  opts.left_to_right = false;
  const std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("digraph CommGraph {"), std::string::npos);
  EXPECT_EQ(dot.find("rankdir=LR"), std::string::npos);
}

TEST(Dot, EscapesQuotesInNames) {
  Digraph g;
  g.add_node(1, "a\"b");
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("a\\\"b"), std::string::npos);
}

}  // namespace
}  // namespace rtg::graph
