#include "graph/homomorphism.hpp"

#include <gtest/gtest.h>

namespace rtg::graph {
namespace {

Digraph path(std::size_t n) {
  Digraph g;
  for (std::size_t i = 0; i < n; ++i) g.add_node();
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(IsHomomorphism, IdentityOnSameGraph) {
  const Digraph g = path(3);
  EXPECT_TRUE(is_homomorphism(g, g, {0, 1, 2}));
}

TEST(IsHomomorphism, WrongSizeLabelVector) {
  const Digraph g = path(3);
  EXPECT_FALSE(is_homomorphism(g, g, {0, 1}));
}

TEST(IsHomomorphism, EdgeMustMap) {
  const Digraph c = path(2);
  Digraph g;
  g.add_node();
  g.add_node();
  // No edge in g.
  EXPECT_FALSE(is_homomorphism(c, g, {0, 1}));
}

TEST(IsHomomorphism, UnknownImageRejected) {
  const Digraph c = path(2);
  const Digraph g = path(2);
  EXPECT_FALSE(is_homomorphism(c, g, {0, 9}));
}

TEST(IsHomomorphism, NonInjectiveAllowedWhenEdgesMap) {
  // c: 0 -> 1, 1 -> 2 mapping onto g's 2-cycle 0 <-> 1 as 0,1,0.
  const Digraph c = path(3);
  Digraph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_TRUE(is_homomorphism(c, g, {0, 1, 0}));
}

TEST(FindHomomorphism, FindsEmbeddingOfPathInLongerPath) {
  const Digraph c = path(2);
  const Digraph g = path(4);
  const auto labels = find_homomorphism(c, g);
  ASSERT_TRUE(labels.has_value());
  EXPECT_TRUE(is_homomorphism(c, g, *labels));
}

TEST(FindHomomorphism, NoneWhenTargetHasNoEdges) {
  const Digraph c = path(2);
  Digraph g;
  g.add_node();
  g.add_node();
  EXPECT_EQ(find_homomorphism(c, g), std::nullopt);
}

TEST(FindHomomorphism, EmptyPatternMapsTrivially) {
  Digraph c;
  const Digraph g = path(2);
  const auto labels = find_homomorphism(c, g);
  ASSERT_TRUE(labels.has_value());
  EXPECT_TRUE(labels->empty());
}

TEST(FindHomomorphism, NoTargetNodes) {
  const Digraph c = path(1);
  Digraph g;
  EXPECT_EQ(find_homomorphism(c, g), std::nullopt);
}

TEST(CountHomomorphisms, SingleNodePatternCountsTargetNodes) {
  Digraph c;
  c.add_node();
  const Digraph g = path(5);
  EXPECT_EQ(count_homomorphisms(c, g), 5u);
}

TEST(CountHomomorphisms, EdgePatternCountsTargetEdges) {
  const Digraph c = path(2);
  Digraph g = path(3);
  g.add_edge(0, 2);
  EXPECT_EQ(count_homomorphisms(c, g), g.edge_count());
}

TEST(CountHomomorphisms, LimitStopsEnumeration) {
  Digraph c;
  c.add_node();
  const Digraph g = path(100);
  EXPECT_EQ(count_homomorphisms(c, g, 10), 10u);
}

TEST(CountHomomorphisms, EmptyPatternIsOne) {
  Digraph c;
  const Digraph g = path(3);
  EXPECT_EQ(count_homomorphisms(c, g), 1u);
}

}  // namespace
}  // namespace rtg::graph
