// The mapping portfolio: factory resolution, legacy-policy parity with
// the core shim, seeded determinism of the annealer, and the
// decomposition mapper's articulation cuts.
#include "map/mapper.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "core/multiproc.hpp"
#include "gen/generator.hpp"

namespace rtg::map {
namespace {

using core::ConstraintKind;
using core::GraphModel;
using core::OpId;
using core::TaskGraph;
using core::TimingConstraint;

GraphModel chain_model(std::size_t n) {
  core::CommGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    g.add_element(name, 1 + static_cast<core::Time>(i % 3));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_channel(i, i + 1);
  GraphModel model(g);
  TaskGraph tg;
  OpId prev = tg.add_op(0);
  for (std::size_t i = 1; i < n; ++i) {
    const OpId next = tg.add_op(i);
    tg.add_dep(prev, next);
    prev = next;
  }
  model.add_constraint(TimingConstraint{"flow", std::move(tg), 60, 60,
                                        ConstraintKind::kAsynchronous});
  return model;
}

TEST(MakeMapper, ResolvesPortfolioAndAliases) {
  EXPECT_EQ(make_mapper("greedy")->name(), "greedy");
  EXPECT_EQ(make_mapper("sa")->name(), "sa");
  EXPECT_EQ(make_mapper("spd")->name(), "spd");
  EXPECT_NE(make_mapper("roundrobin"), nullptr);
  EXPECT_NE(make_mapper("lpt"), nullptr);
  EXPECT_NE(make_mapper("comm"), nullptr);
  EXPECT_EQ(make_mapper("simulated-annealing"), nullptr);
  EXPECT_EQ(make_mapper(""), nullptr);
}

TEST(GreedyMapper, LegacyPoliciesMatchTheCoreShim) {
  // The core::partition_elements shim delegates to legacy_partition, so
  // the two surfaces must agree bit-for-bit — the seed pins depend on
  // it.
  const GraphModel model = chain_model(7);
  const auto& comm = model.comm();
  const std::pair<GreedyMapper::Policy, core::PartitionStrategy> pairs[] = {
      {GreedyMapper::Policy::kRoundRobin, core::PartitionStrategy::kRoundRobin},
      {GreedyMapper::Policy::kLpt, core::PartitionStrategy::kLpt},
      {GreedyMapper::Policy::kCommunication,
       core::PartitionStrategy::kCommunication},
  };
  for (std::size_t m : {1u, 2u, 3u}) {
    for (const auto& [policy, strategy] : pairs) {
      EXPECT_EQ(GreedyMapper::legacy_partition(comm, m, policy),
                core::partition_elements(comm, m, strategy));
      const Mapping via_mapper =
          GreedyMapper(policy).assign(model, Platform::bus(m));
      EXPECT_EQ(via_mapper.assignment,
                core::partition_elements(comm, m, strategy));
    }
  }
}

TEST(Mappers, AssignmentsAreAlwaysValid) {
  for (std::uint64_t index : {0u, 5u, 11u, 23u}) {
    const gen::Scenario scenario = gen::generate(gen::corpus_options(index));
    for (const char* name : {"greedy", "sa", "spd", "roundrobin", "lpt", "comm"}) {
      for (const Platform& platform :
           {Platform::bus(3), Platform::full(4), Platform::ring(2)}) {
        const Mapping mapping =
            make_mapper(name)->assign(scenario.model, platform);
        ASSERT_EQ(mapping.assignment.size(), scenario.model.comm().size())
            << name << " on seed " << index;
        for (const ProcId p : mapping.assignment) {
          EXPECT_LT(p, platform.processors()) << name;
        }
      }
    }
  }
}

TEST(Mappers, SingleProcessorCollapsesToZero) {
  const GraphModel model = chain_model(5);
  for (const char* name : {"greedy", "sa", "spd"}) {
    const Mapping mapping = make_mapper(name)->assign(model, Platform::bus(1));
    EXPECT_EQ(mapping.assignment, std::vector<ProcId>(5, 0)) << name;
  }
}

TEST(SimulatedAnnealing, SeededAndDeterministic) {
  const gen::Scenario scenario = gen::generate(gen::corpus_options(17));
  const Platform platform = Platform::bus(4);
  const Mapping a = make_mapper("sa", 42)->assign(scenario.model, platform);
  const Mapping b = make_mapper("sa", 42)->assign(scenario.model, platform);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(SimulatedAnnealing, NeverWorseThanItsGreedyStart) {
  // The annealer starts from greedy and keeps the best state seen, so
  // its energy is bounded by greedy's on every instance.
  for (std::uint64_t index : {0u, 7u, 17u, 29u}) {
    const gen::Scenario scenario = gen::generate(gen::corpus_options(index));
    for (const Platform& platform : {Platform::bus(4), Platform::ring(4)}) {
      const Mapping greedy =
          make_mapper("greedy")->assign(scenario.model, platform);
      const Mapping sa = make_mapper("sa")->assign(scenario.model, platform);
      EXPECT_LE(SimulatedAnnealingMapper::energy(scenario.model, platform,
                                                 sa.assignment),
                SimulatedAnnealingMapper::energy(scenario.model, platform,
                                                 greedy.assignment))
          << "seed " << index;
    }
  }
}

TEST(SeriesParallelDecomposition, FindsArticulationPoints) {
  // a - b - c chain: b is the only cut vertex.
  core::CommGraph chain;
  chain.add_element("a", 1);
  chain.add_element("b", 1);
  chain.add_element("c", 1);
  chain.add_channel(0, 1);
  chain.add_channel(1, 2);
  EXPECT_EQ(SeriesParallelDecompositionMapper::articulation_points(chain),
            (std::vector<core::ElementId>{1}));

  // A diamond (a -> b, a -> c, b -> d, c -> d) is biconnected: no cuts.
  core::CommGraph diamond;
  for (const char* name : {"a", "b", "c", "d"}) diamond.add_element(name, 1);
  diamond.add_channel(0, 1);
  diamond.add_channel(0, 2);
  diamond.add_channel(1, 3);
  diamond.add_channel(2, 3);
  EXPECT_TRUE(
      SeriesParallelDecompositionMapper::articulation_points(diamond).empty());

  // Two diamonds joined at d: the join is the cut.
  core::CommGraph two;
  for (const char* name : {"a", "b", "c", "d", "e", "f", "g"}) {
    two.add_element(name, 1);
  }
  two.add_channel(0, 1);
  two.add_channel(0, 2);
  two.add_channel(1, 3);
  two.add_channel(2, 3);
  two.add_channel(3, 4);
  two.add_channel(3, 5);
  two.add_channel(4, 6);
  two.add_channel(5, 6);
  EXPECT_EQ(SeriesParallelDecompositionMapper::articulation_points(two),
            (std::vector<core::ElementId>{3}));
}

TEST(SeriesParallelDecomposition, KeepsFragmentsIntactWhenTheyFit) {
  // Two disconnected chains on two processors: each chain is one
  // fragment and must not be split.
  core::CommGraph g;
  for (int i = 0; i < 6; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    g.add_element(name, 1);
  }
  g.add_channel(0, 1);
  g.add_channel(2, 3);
  GraphModel model(g);
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"c", std::move(tg), 10, 10, ConstraintKind::kPeriodic});
  const Mapping mapping =
      SeriesParallelDecompositionMapper().assign(model, Platform::bus(2));
  EXPECT_EQ(mapping.assignment[0], mapping.assignment[1]);
  EXPECT_EQ(mapping.assignment[2], mapping.assignment[3]);
}

}  // namespace
}  // namespace rtg::map
