// Link slot tables and the message-set derivation: zero-channel models,
// self-message elimination, unroutable channels, arrival arithmetic,
// saturated-bus rejection, and the structural checker's diagnostics.
#include "map/comm_schedule.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "map/deploy.hpp"
#include "map/mapping.hpp"
#include "map/platform.hpp"

namespace rtg::map {
namespace {

using core::ConstraintKind;
using core::GraphModel;
using core::OpId;
using core::TaskGraph;
using core::TimingConstraint;

core::CommGraph pipeline_comm() {
  core::CommGraph g;
  g.add_element("stage0", 1);
  g.add_element("stage1", 1);
  g.add_element("stage2", 1);
  g.add_channel(0, 1);
  g.add_channel(1, 2);
  return g;
}

GraphModel pipeline_model(core::Time deadline) {
  GraphModel model(pipeline_comm());
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  const OpId c = tg.add_op(2);
  tg.add_dep(a, b);
  tg.add_dep(b, c);
  model.add_constraint(TimingConstraint{"flow", std::move(tg), 30, deadline,
                                        ConstraintKind::kAsynchronous});
  return model;
}

// Two independent elements, no channels: nothing can cross.
GraphModel zero_channel_model() {
  core::CommGraph g;
  g.add_element("a", 1);
  g.add_element("b", 1);
  GraphModel model(g);
  for (core::ElementId e : {0, 1}) {
    TaskGraph tg;
    tg.add_op(e);
    model.add_constraint(TimingConstraint{e == 0 ? "A" : "B", std::move(tg), 10,
                                          10, ConstraintKind::kPeriodic});
  }
  return model;
}

TEST(CollectMessages, ZeroChannelModelInducesNoMessages) {
  const GraphModel model = zero_channel_model();
  const auto messages =
      collect_messages(model, Platform::bus(2), {0, 1});
  ASSERT_TRUE(messages.has_value());
  EXPECT_TRUE(messages->empty());
}

TEST(CollectMessages, SelfMessagesAreEliminated) {
  // Everything co-located: both pipeline channels become local hand-offs.
  const GraphModel model = pipeline_model(30);
  const auto all_local =
      collect_messages(model, Platform::bus(2), {0, 0, 0});
  ASSERT_TRUE(all_local.has_value());
  EXPECT_TRUE(all_local->empty());
  // Split after stage1: exactly the 1 -> 2 channel crosses.
  const auto one_cross =
      collect_messages(model, Platform::bus(2), {0, 0, 1});
  ASSERT_TRUE(one_cross.has_value());
  ASSERT_EQ(one_cross->size(), 1u);
  EXPECT_EQ((*one_cross)[0].from, 1u);
  EXPECT_EQ((*one_cross)[0].to, 2u);
  EXPECT_EQ((*one_cross)[0].src, 0u);
  EXPECT_EQ((*one_cross)[0].dst, 1u);
}

TEST(CollectMessages, UnroutableChannelIsRejectedWithDiagnostic) {
  // ring(4) only links neighbours: the 0 -> 2 crossing has no route.
  const GraphModel model = pipeline_model(30);
  std::string why;
  const auto messages =
      collect_messages(model, Platform::ring(4), {0, 2, 0}, &why);
  EXPECT_FALSE(messages.has_value());
  EXPECT_NE(why.find("no link"), std::string::npos) << why;
}

TEST(CommSchedule, ZeroChannelDeploymentSucceedsWithEmptyTables) {
  const Deployment d = deploy(zero_channel_model(), Platform::bus(2));
  ASSERT_TRUE(d.success) << d.failure_reason;
  EXPECT_TRUE(d.messages.empty());
  EXPECT_EQ(d.comm.total_slots(), 0);
  ASSERT_EQ(d.comm.links.size(), 1u);
  EXPECT_EQ(d.comm.links[0].cycle, 1);  // idle links tick in unit cycles
  EXPECT_TRUE(check_comm_schedule(d.platform, d.comm).ok);
}

TEST(CommSchedule, ArrivalMatchesLegacyTdmaArithmetic) {
  // Two unit messages on one bus: slot 0 carries msg 0, slot 1 msg 1,
  // cycle 2 — the legacy TDMA layout. arrival = next slot start + 1.
  Platform bus = Platform::bus(2);
  bus.fixed_message_size = 1;
  std::vector<Message> messages;
  messages.push_back(Message{0, 1, 0, 1, 0, 1, 1});
  messages.push_back(Message{1, 2, 1, 0, 0, 1, 1});
  const CommSchedule schedule = build_comm_schedule(bus, messages);
  ASSERT_TRUE(check_comm_schedule(bus, schedule).ok);
  EXPECT_EQ(schedule.links[0].cycle, 2);
  EXPECT_EQ(schedule.total_slots(), 2);
  // Message 0 owns slot starts 0, 2, 4, ...; message 1 owns 1, 3, 5, ...
  EXPECT_EQ(schedule.arrival(0, 0), 1);
  EXPECT_EQ(schedule.arrival(0, 1), 3);
  EXPECT_EQ(schedule.arrival(0, 2), 3);
  EXPECT_EQ(schedule.arrival(1, 0), 2);
  EXPECT_EQ(schedule.arrival(1, 1), 2);
  EXPECT_EQ(schedule.arrival(1, 2), 4);
  EXPECT_EQ(schedule.worst_delay(0), 2);
  EXPECT_EQ(schedule.find_message(1, 2), 1u);
  EXPECT_EQ(schedule.find_message(2, 1), CommSchedule::npos);
}

TEST(CommSchedule, MultiSlotTransfersOccupyConsecutiveRuns) {
  // Size-3 payload over a bandwidth-2 link: ceil(3/2) = 2 slots.
  const Platform bus = Platform::bus(2, 2);
  std::vector<Message> messages;
  messages.push_back(Message{0, 1, 0, 1, 0, 3, bus.transfer_slots(0, 3)});
  messages.push_back(Message{1, 2, 1, 0, 0, 1, bus.transfer_slots(0, 1)});
  const CommSchedule schedule = build_comm_schedule(bus, messages);
  ASSERT_TRUE(check_comm_schedule(bus, schedule).ok);
  EXPECT_EQ(schedule.links[0].cycle, 3);
  EXPECT_EQ(schedule.links[0].slots[0].duration, 2);
  EXPECT_EQ(schedule.arrival(0, 0), 2);   // run [0,2)
  EXPECT_EQ(schedule.arrival(1, 0), 3);   // run [2,3)
  EXPECT_EQ(schedule.arrival(0, 1), 5);   // next cycle's run [3,5)
}

TEST(CommSchedule, SaturatedBusIsRejectedNotMisverified) {
  // Deadline 3 cannot cover two crossings' worst-case link cycles plus
  // the three unit executions; deploy must fail, never report success.
  DeployOptions options;
  options.mapper = "roundrobin";
  const Deployment d = deploy(pipeline_model(3), Platform::bus(3), options);
  EXPECT_FALSE(d.success);
  EXPECT_FALSE(d.failure_reason.empty());
  // A workable deadline on the same mapping succeeds.
  const Deployment ok = deploy(pipeline_model(30), Platform::bus(3), options);
  EXPECT_TRUE(ok.success) << ok.failure_reason;
}

TEST(CheckCommSchedule, FlagsStructuralViolations) {
  Platform bus = Platform::bus(2);
  std::vector<Message> messages;
  messages.push_back(Message{0, 1, 0, 1, 0, 1, 1});
  messages.push_back(Message{1, 2, 1, 0, 0, 1, 1});
  const CommSchedule good = build_comm_schedule(bus, messages);

  // Self-message.
  CommSchedule bad = good;
  bad.messages[0].dst = bad.messages[0].src;
  EXPECT_FALSE(check_comm_schedule(bus, bad).ok);

  // Duplicated channel (breaks FIFO pipeline ordering).
  bad = good;
  bad.messages[1].from = bad.messages[0].from;
  bad.messages[1].to = bad.messages[0].to;
  EXPECT_FALSE(check_comm_schedule(bus, bad).ok);

  // Overlapping slots.
  bad = good;
  bad.links[0].slots[1].offset = 0;
  EXPECT_FALSE(check_comm_schedule(bus, bad).ok);

  // Slot running past the cycle.
  bad = good;
  bad.links[0].cycle = 1;
  EXPECT_FALSE(check_comm_schedule(bus, bad).ok);

  // Unserved route: a message between non-adjacent ring processors
  // parked on a neighbour link is flagged.
  bad = good;
  bad.messages[0].src = 0;
  bad.messages[0].dst = 2;
  const Platform ring = Platform::ring(4);
  EXPECT_FALSE(ring.route(0, 2).has_value());
  EXPECT_FALSE(check_comm_schedule(ring, bad).ok);

  // Message slotted twice.
  bad = good;
  bad.links[0].slots[1].message = 0;
  EXPECT_FALSE(check_comm_schedule(bus, bad).ok);

  EXPECT_TRUE(check_comm_schedule(bus, good).ok);
}

}  // namespace
}  // namespace rtg::map
