// The mapped differential suite: a 64-seed sweep of the mapped corpus
// where every deployment must be bit-identical across seam thread
// counts and against the flat (linear-scan) monolithic reference, every
// per-shard verdict must agree with the seam check, and every witness
// must re-validate independently. Plus the unit-slot bus pin against
// the legacy core::multiproc engine and the cancellation contract.
#include "map/deploy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <utility>

#include "core/multiproc.hpp"
#include "gen/generator.hpp"
#include "map/verify.hpp"

namespace rtg::map {
namespace {

constexpr std::uint64_t kSeeds = 64;

void expect_same_deployment(const Deployment& a, const Deployment& b,
                            std::uint64_t seed, const char* what) {
  ASSERT_EQ(a.success, b.success) << what << " seed " << seed << ": "
                                  << a.failure_reason << " vs "
                                  << b.failure_reason;
  EXPECT_EQ(a.failure_reason, b.failure_reason) << what << " seed " << seed;
  EXPECT_EQ(a.mapping.assignment, b.mapping.assignment) << what << " seed " << seed;
  EXPECT_EQ(a.comm, b.comm) << what << " seed " << seed;
  ASSERT_EQ(a.end_to_end.size(), b.end_to_end.size()) << what << " seed " << seed;
  for (std::size_t i = 0; i < a.end_to_end.size(); ++i) {
    EXPECT_EQ(a.end_to_end[i], b.end_to_end[i])
        << what << " seed " << seed << " constraint " << i;
  }
  ASSERT_EQ(a.witnesses.size(), b.witnesses.size()) << what << " seed " << seed;
  for (std::size_t i = 0; i < a.witnesses.size(); ++i) {
    EXPECT_EQ(a.witnesses[i], b.witnesses[i])
        << what << " seed " << seed << " witness " << i;
  }
  EXPECT_EQ(a.witness_constraint, b.witness_constraint) << what << " seed " << seed;
}

// The flat (linear-scan) reference is deliberately naive and goes
// superlinear in the seam's candidate-window count; a handful of
// mapped-corpus seeds have 10^5..10^6 windows where it would take
// minutes per seed. The flat leg therefore only runs when the serial
// deployment examined at most this many windows — a deterministic,
// seed-independent gate (the thread-identity legs always run on every
// seed), and the test asserts below that the gate still admits most of
// the sweep.
constexpr std::size_t kFlatWindowBudget = 25'000;

TEST(MappedCorpusDifferential, BitIdenticalAcrossThreadsAndFlatReference) {
  std::size_t deployed = 0;
  std::size_t flat_compared = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const gen::Scenario scenario =
        gen::generate(gen::mapped_corpus_options(seed));
    ASSERT_TRUE(scenario.hardware.has_value()) << "seed " << seed;

    DeployOptions base;
    const Deployment serial = deploy(scenario.model, *scenario.hardware, base);

    for (const std::size_t threads : {2u, 4u}) {
      DeployOptions opt = base;
      opt.seam_threads = threads;
      const Deployment d = deploy(scenario.model, *scenario.hardware, opt);
      expect_same_deployment(serial, d, seed,
                             threads == 2 ? "threads=2" : "threads=4");
    }
    if (serial.seam_stats.windows <= kFlatWindowBudget) {
      DeployOptions opt = base;
      opt.flat_reference = true;  // the monolithic linear-scan reference
      const Deployment d = deploy(scenario.model, *scenario.hardware, opt);
      expect_same_deployment(serial, d, seed, "flat");
      ++flat_compared;
    }

    if (!serial.success) continue;
    ++deployed;

    // Shard verdicts, seam results, and the deadline must agree.
    for (const ShardVerification& shard : serial.shard_reports) {
      EXPECT_TRUE(shard.report.feasible)
          << "seed " << seed << " proc " << shard.proc;
    }
    const auto& constraints = serial.scheduled_model.constraints();
    ASSERT_EQ(serial.end_to_end.size(), constraints.size());
    for (std::size_t i = 0; i < constraints.size(); ++i) {
      ASSERT_TRUE(serial.end_to_end[i].has_value()) << "seed " << seed;
      EXPECT_LE(*serial.end_to_end[i], constraints[i].deadline)
          << "seed " << seed << " constraint " << i;
      // Re-verify the reassembled global deployment from scratch.
      const auto again = distributed_latency(
          constraints[i].task_graph, serial.processor_schedules,
          serial.mapping.assignment, serial.comm);
      EXPECT_EQ(again, serial.end_to_end[i]) << "seed " << seed;
    }
    // Every worst-window witness re-validates with no shared code.
    ASSERT_EQ(serial.witnesses.size(), serial.witness_constraint.size());
    for (std::size_t w = 0; w < serial.witnesses.size(); ++w) {
      const auto diag = check_witness(
          constraints[serial.witness_constraint[w]].task_graph,
          serial.processor_schedules, serial.mapping.assignment, serial.comm,
          serial.witnesses[w]);
      EXPECT_EQ(diag, std::nullopt) << "seed " << seed << ": " << *diag;
    }
  }
  // The sweep must actually exercise successful deployments, not just
  // reject everything — and the flat gate must admit most of it.
  EXPECT_GE(deployed, kSeeds / 4) << "mapped corpus success rate collapsed";
  EXPECT_GE(flat_compared, kSeeds - 8) << "flat window budget excludes too much";
}

TEST(MappedCorpusDifferential, RepeatRunsAreBitIdentical) {
  const gen::Scenario scenario = gen::generate(gen::mapped_corpus_options(5));
  DeployOptions sa;
  sa.mapper = "sa";
  const Deployment a = deploy(scenario.model, *scenario.hardware, sa);
  const Deployment b = deploy(scenario.model, *scenario.hardware, sa);
  expect_same_deployment(a, b, 5, "repeat");
}

TEST(MappedVerify, UnitSlotBusMatchesLegacyEngine) {
  // On a unit-slot shared bus the generalized seam check degenerates to
  // the legacy TDMA arithmetic; core::multiproc_latency (the compat
  // surface) must agree per constraint on hand-built bus channels.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const gen::Scenario scenario = gen::generate(gen::corpus_options(seed));
    Platform bus = Platform::bus(2 + 2 * (seed % 3));
    bus.fixed_message_size = 1;
    const Deployment d = deploy(scenario.model, bus);
    if (!d.success) continue;
    std::vector<core::BusChannel> channels;
    channels.reserve(d.comm.messages.size());
    for (const Message& m : d.comm.messages) channels.emplace_back(m.from, m.to);
    const auto& constraints = d.scheduled_model.constraints();
    for (std::size_t i = 0; i < constraints.size(); ++i) {
      EXPECT_EQ(core::multiproc_latency(constraints[i].task_graph,
                                        d.processor_schedules,
                                        d.mapping.assignment, channels),
                d.end_to_end[i])
          << "seed " << seed << " constraint " << i;
    }
  }
}

TEST(MappedVerify, CancellationIsUnknownNotInfeasible) {
  const gen::Scenario scenario = gen::generate(gen::mapped_corpus_options(0));
  std::atomic<bool> cancel{true};
  DeployOptions opt;
  opt.local.cancel = &cancel;
  const Deployment d = deploy(scenario.model, *scenario.hardware, opt);
  EXPECT_FALSE(d.success);
  EXPECT_TRUE(d.cancelled);
}

TEST(MappedVerify, SeamStatsCountWork) {
  const gen::Scenario scenario = gen::generate(gen::mapped_corpus_options(1));
  const Deployment d = deploy(scenario.model, *scenario.hardware);
  if (!d.success) GTEST_SKIP() << d.failure_reason;
  EXPECT_GT(d.seam_stats.windows, 0u);
  DeployOptions threaded;
  threaded.seam_threads = 4;
  const Deployment t = deploy(scenario.model, *scenario.hardware, threaded);
  EXPECT_EQ(t.seam_stats.windows, d.seam_stats.windows);
}

}  // namespace
}  // namespace rtg::map
