// Platform fault tolerance (ISSUE 10): the MigrationTable's exhaustive
// admissibility contract (every entry re-proves through check_witness
// and the seam check; inadmissible cells are absent, not silently
// covered), degraded-mode rerouting over surviving routes, and the
// self-healing run loop's determinism and healed-vs-blind dominance.
#include "map/fault_tolerance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "map/verify.hpp"

namespace rtg::map {
namespace {

using core::ConstraintKind;
using core::GraphModel;
using core::OpId;
using core::TaskGraph;
using core::TimingConstraint;

// A slack chain: 6 unit-weight elements, one asynchronous end-to-end
// constraint with enough deadline headroom that every migration down to
// a single surviving processor stays feasible.
GraphModel slack_chain() {
  core::CommGraph g;
  for (std::size_t i = 0; i < 6; ++i) {
    g.add_element("e" + std::to_string(i), 1);
  }
  for (std::size_t i = 0; i + 1 < 6; ++i) g.add_channel(i, i + 1);
  GraphModel model(g);
  TaskGraph tg;
  OpId prev = tg.add_op(0);
  for (std::size_t i = 1; i < 6; ++i) {
    const OpId next = tg.add_op(i);
    tg.add_dep(prev, next);
    prev = next;
  }
  model.add_constraint(
      TimingConstraint{"flow", std::move(tg), 60, 60, ConstraintKind::kAsynchronous});
  return model;
}

// Three independent weight-3 period-15 elements: any one processor can
// serve two of them, but all three overrun the per-processor EDF
// demand bound — so on a 3-processor bus every single failure migrates
// while every double failure is provably inadmissible.
GraphModel saturating_trio() {
  core::CommGraph g;
  g.add_element("a", 3);
  g.add_element("b", 3);
  g.add_element("c", 3);
  GraphModel model(g);
  for (core::ElementId e = 0; e < 3; ++e) {
    TaskGraph tg;
    tg.add_op(e);
    model.add_constraint(TimingConstraint{std::string(1, char('A' + e)), std::move(tg),
                                          15, 15});
  }
  return model;
}

// Chain of 4 on two processors with an alternating assignment — three
// cross-processor channels, so the reroute path has real messages to
// move.
Deployment alternating_on(const Platform& platform) {
  core::CommGraph g;
  for (std::size_t i = 0; i < 4; ++i) {
    g.add_element("e" + std::to_string(i), 1);
  }
  for (std::size_t i = 0; i + 1 < 4; ++i) g.add_channel(i, i + 1);
  GraphModel model(g);
  TaskGraph tg;
  OpId prev = tg.add_op(0);
  for (std::size_t i = 1; i < 4; ++i) {
    const OpId next = tg.add_op(i);
    tg.add_dep(prev, next);
    prev = next;
  }
  model.add_constraint(
      TimingConstraint{"flow", std::move(tg), 48, 48, ConstraintKind::kAsynchronous});
  return deploy_assignment(model, platform, {0, 1, 0, 1});
}

std::vector<std::vector<ProcId>> all_failure_sets(std::size_t procs, std::size_t k) {
  std::vector<std::vector<ProcId>> out;
  for (std::uint32_t mask = 1; mask < (1u << procs); ++mask) {
    std::vector<ProcId> failed;
    for (std::size_t p = 0; p < procs; ++p) {
      if (mask & (1u << p)) failed.push_back(p);
    }
    if (failed.size() <= k) out.push_back(failed);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- Platform state ----------------------------------------------------

TEST(PlatformState, ApplyStateDegradesWithStableIndices) {
  const Platform pm = Platform::partial_mesh(3, 2);
  ASSERT_EQ(pm.links.size(), 4u);  // m0 m1 m2 + fallback bus bb
  PlatformState state = PlatformState::nominal_for(pm);
  EXPECT_TRUE(state.nominal());

  state.link_down[0] = 1;    // kill wire m0
  state.link_factor[3] = 2;  // halve the fallback bus
  EXPECT_FALSE(state.nominal());
  EXPECT_TRUE(state.links_disturbed());
  EXPECT_TRUE(state.failed_procs().empty());

  const Platform degraded = apply_state(pm, state);
  ASSERT_EQ(degraded.links.size(), pm.links.size());
  EXPECT_EQ(degraded.links[0].name, pm.links[0].name);
  EXPECT_TRUE(degraded.links[0].routes.empty());       // dead, slot kept
  EXPECT_FALSE(degraded.links[1].routes.empty());      // untouched wire
  EXPECT_EQ(degraded.links[3].bandwidth, pm.links[3].bandwidth / 2);

  state.proc_down[1] = 1;
  const Platform one_down = apply_state(pm, state);
  EXPECT_EQ(one_down.processors(), pm.processors());
  for (const Link& link : one_down.links) {
    for (const auto& [from, to] : link.routes) {
      EXPECT_NE(from, 1u);
      EXPECT_NE(to, 1u);
    }
  }
}

TEST(PlatformState, MigrateAssignmentPatchesDeterministically) {
  const std::vector<ProcId> primary = {0, 1, 2, 1};
  const std::vector<ProcId> standby = {1, 2, 0, 0};
  // p1 dies: e1 -> its standby p2, e3 -> its standby p0.
  EXPECT_EQ(migrate_assignment(primary, standby, {1}, 3),
            (std::vector<ProcId>{0, 2, 2, 0}));
  // p1 and p2 die: e1's standby is dead too — scan up from it to p0.
  EXPECT_EQ(migrate_assignment(primary, standby, {1, 2}, 3),
            (std::vector<ProcId>{0, 0, 0, 0}));
  // Pure function: same inputs, same output.
  EXPECT_EQ(migrate_assignment(primary, standby, {1}, 3),
            migrate_assignment(primary, standby, {1}, 3));
}

// --- MigrationTable admissibility (exhaustive) -------------------------

TEST(TolerantDeploy, EveryMigrationEntryReprovesExhaustively) {
  const GraphModel model = slack_chain();
  const Platform platform = Platform::bus(3);
  TolerantOptions options;
  options.k = 2;
  const TolerantDeployment td = deploy_tolerant(model, platform, options);
  ASSERT_TRUE(td.success) << td.failure_reason;
  EXPECT_TRUE(td.tolerant) << td.failure_reason;
  EXPECT_EQ(td.k, 2u);

  // Standby replicas live on disjoint processors from their primaries.
  ASSERT_EQ(td.standby.size(), td.base.mapping.assignment.size());
  for (std::size_t e = 0; e < td.standby.size(); ++e) {
    EXPECT_NE(td.standby[e], td.base.mapping.assignment[e]) << "element " << e;
  }

  // Brute force over every failure set |F| <= k: the table holds
  // exactly the admissible ones, and each entry independently re-proves
  // through the seam check and the witness validator.
  const std::vector<std::vector<ProcId>> sets = all_failure_sets(3, 2);
  EXPECT_EQ(td.scenarios, sets.size());
  for (const std::vector<ProcId>& failed : sets) {
    const MigrationEntry* entry = td.table.find(failed);
    ASSERT_NE(entry, nullptr) << "failure set of size " << failed.size();
    const Deployment& d = entry->deployment;
    ASSERT_TRUE(d.success);
    EXPECT_EQ(entry->failed, failed);

    // The patched assignment avoids every dead processor and matches
    // the deterministic migration patch.
    EXPECT_EQ(d.mapping.assignment,
              migrate_assignment(td.base.mapping.assignment, td.standby, failed, 3));
    for (const ProcId p : d.mapping.assignment) {
      EXPECT_FALSE(std::binary_search(failed.begin(), failed.end(), p));
    }

    // Independent recomputation: the exact seam latency of every
    // constraint on the entry's schedules meets its deadline.
    for (std::size_t i = 0; i < d.scheduled_model.constraint_count(); ++i) {
      const TimingConstraint& c = d.scheduled_model.constraint(i);
      const std::optional<Time> latency = distributed_latency(
          c.task_graph, d.processor_schedules, d.mapping.assignment, d.comm);
      ASSERT_TRUE(latency.has_value()) << c.name;
      EXPECT_LE(*latency, c.deadline) << c.name;
      ASSERT_LT(i, d.end_to_end.size());
      EXPECT_EQ(*latency, *d.end_to_end[i]) << c.name;
    }
    // Every shipped witness re-validates from the raw tables.
    ASSERT_FALSE(d.witnesses.empty());
    for (std::size_t w = 0; w < d.witnesses.size(); ++w) {
      const TimingConstraint& c = d.scheduled_model.constraint(d.witness_constraint[w]);
      const std::optional<std::string> flaw = check_witness(
          c.task_graph, d.processor_schedules, d.mapping.assignment, d.comm, d.witnesses[w]);
      EXPECT_FALSE(flaw.has_value()) << c.name << ": " << *flaw;
    }
  }
}

TEST(TolerantDeploy, InadmissibleCellsAreAbsentAndDiagnosed) {
  const GraphModel model = saturating_trio();
  const Platform platform = Platform::bus(3);
  TolerantOptions options;
  options.k = 2;
  const TolerantDeployment td = deploy_tolerant(model, platform, options);
  ASSERT_TRUE(td.success) << td.failure_reason;
  EXPECT_FALSE(td.tolerant);

  // Single failures migrate (two elements share a processor); every
  // double failure piles all three onto one processor, overruns the
  // demand bound, and must be *absent* from the table, with a
  // diagnostic.
  const std::vector<std::vector<ProcId>> sets = all_failure_sets(3, 2);
  for (const std::vector<ProcId>& failed : sets) {
    const MigrationEntry* entry = td.table.find(failed);
    if (failed.size() == 1) {
      EXPECT_NE(entry, nullptr);
    } else {
      EXPECT_EQ(entry, nullptr);
      const auto uncovered = std::find_if(
          td.uncovered.begin(), td.uncovered.end(),
          [&](const UncoveredScenario& u) { return u.failed == failed; });
      ASSERT_NE(uncovered, td.uncovered.end());
      EXPECT_NE(uncovered->reason.find("inadmissible"), std::string::npos);
    }
  }
  EXPECT_EQ(td.table.size() + td.uncovered.size(), td.scenarios);
  EXPECT_FALSE(td.failure_reason.empty());
}

TEST(TolerantDeploy, ScenarioBudgetFailsLoudly) {
  const GraphModel model = slack_chain();
  TolerantOptions options;
  options.k = 2;
  options.max_scenarios = 2;  // C(3,1) + C(3,2) = 6 > 2
  const TolerantDeployment td = deploy_tolerant(model, Platform::bus(3), options);
  EXPECT_TRUE(td.success);
  EXPECT_FALSE(td.tolerant);
  EXPECT_NE(td.failure_reason.find("scenario budget"), std::string::npos);
}

// --- Degraded-mode rerouting -------------------------------------------

TEST(Reroute, MovesMessagesToSurvivingRoutesAndReproves) {
  const Platform pm = Platform::partial_mesh(2);
  const Deployment d = alternating_on(pm);
  ASSERT_TRUE(d.success) << d.failure_reason;
  ASSERT_FALSE(d.messages.empty());

  // Kill the wire; the fallback bus must absorb every channel.
  PlatformState state = PlatformState::nominal_for(pm);
  state.link_down[0] = 1;
  const Platform degraded = apply_state(pm, state);
  const RerouteResult r = reroute_messages(d, degraded);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.messages.size(), d.messages.size());
  EXPECT_GT(r.rerouted, 0u);
  for (const Message& m : r.messages) {
    EXPECT_FALSE(degraded.links[m.link].routes.empty());
  }
  // The re-proof stands on its own: witnesses validate against the
  // unchanged processor schedules and the regenerated tables.
  ASSERT_FALSE(r.witnesses.empty());
  for (std::size_t w = 0; w < r.witnesses.size(); ++w) {
    const TimingConstraint& c = d.scheduled_model.constraint(r.witness_constraint[w]);
    const std::optional<std::string> flaw =
        check_witness(c.task_graph, d.processor_schedules, d.mapping.assignment, r.comm,
                      r.witnesses[w]);
    EXPECT_FALSE(flaw.has_value()) << c.name << ": " << *flaw;
  }
  for (std::size_t i = 0; i < d.scheduled_model.constraint_count(); ++i) {
    ASSERT_TRUE(r.end_to_end[i].has_value());
    EXPECT_LE(*r.end_to_end[i], d.scheduled_model.constraint(i).deadline);
  }
}

TEST(Reroute, RejectsWithExplicitDiagnosticWhenNoRouteSurvives) {
  const Platform bus = Platform::bus(2);
  const Deployment d = alternating_on(bus);
  ASSERT_TRUE(d.success) << d.failure_reason;

  PlatformState state = PlatformState::nominal_for(bus);
  state.link_down[0] = 1;  // the only link
  const RerouteResult r = reroute_messages(d, apply_state(bus, state));
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("no feasible reroute"), std::string::npos);
}

// --- The self-healing run loop -----------------------------------------

core::FaultPlan demo_plan(const Platform& platform, const GraphModel& model) {
  const core::FaultPlanParse parse = core::parse_fault_plan(
      "seed 7\n"
      "procfail p1 at 40 repair 30\n"
      "linkdegrade bus factor 2 from 90 to 120\n",
      model, platform_names(platform));
  EXPECT_TRUE(parse.ok()) << (parse.errors.empty() ? "" : parse.errors[0]);
  return *parse.plan;
}

TEST(FaultRun, HealedRunMigratesRevertsAndDominatesBlind) {
  const GraphModel model = slack_chain();
  const Platform platform = Platform::bus(3);
  const TolerantDeployment td = deploy_tolerant(model, platform, {});
  ASSERT_TRUE(td.success) << td.failure_reason;
  ASSERT_TRUE(td.tolerant) << td.failure_reason;

  const core::FaultPlan plan = demo_plan(platform, model);
  FaultRunOptions options;
  const PlatformFaultRun healed = run_deployment_with_faults(td, plan, 240, options);
  options.heal = false;
  const PlatformFaultRun blind = run_deployment_with_faults(td, plan, 240, options);

  EXPECT_GE(healed.migrations, 1u);
  EXPECT_GE(healed.reverts, 1u);
  EXPECT_GT(healed.proof_checks, 0u);
  EXPECT_EQ(healed.proof_failures, 0u);
  EXPECT_EQ(healed.outages, 0u);
  EXPECT_FALSE(healed.actions.empty());
  // Blind executes nothing and proves nothing.
  EXPECT_EQ(blind.migrations + blind.reroutes + blind.reverts, 0u);
  EXPECT_TRUE(blind.actions.empty());

  // Same horizon partitioning, healed never below blind.
  EXPECT_EQ(healed.windows_total, blind.windows_total);
  EXPECT_GE(healed.windows_ok, blind.windows_ok);
  EXPECT_GE(healed.success_rate(), blind.success_rate());

  // Epochs tile [0, horizon) exactly.
  ASSERT_FALSE(healed.epochs.empty());
  EXPECT_EQ(healed.epochs.front().begin, 0);
  EXPECT_EQ(healed.epochs.back().end, 240);
  for (std::size_t i = 0; i + 1 < healed.epochs.size(); ++i) {
    EXPECT_EQ(healed.epochs[i].end, healed.epochs[i + 1].begin);
  }

  // The action log uses the platform-level recovery kinds.
  bool saw_migrate = false, saw_revert = false;
  for (const rt::RecoveryAction& a : healed.actions) {
    saw_migrate |= a.kind == rt::RecoveryActionKind::kMigrate;
    saw_revert |= a.kind == rt::RecoveryActionKind::kRevert;
  }
  EXPECT_TRUE(saw_migrate);
  EXPECT_TRUE(saw_revert);
}

TEST(FaultRun, BitIdenticalAcrossSeamThreadCounts) {
  const GraphModel model = slack_chain();
  const Platform platform = Platform::bus(3);
  const TolerantDeployment td = deploy_tolerant(model, platform, {});
  ASSERT_TRUE(td.success) << td.failure_reason;
  const core::FaultPlan plan = demo_plan(platform, model);

  FaultRunOptions options;
  options.seam_threads = 1;
  const PlatformFaultRun one = run_deployment_with_faults(td, plan, 240, options);
  options.seam_threads = 2;
  const PlatformFaultRun two = run_deployment_with_faults(td, plan, 240, options);
  options.seam_threads = 4;
  const PlatformFaultRun four = run_deployment_with_faults(td, plan, 240, options);

  EXPECT_EQ(one.fingerprint(), two.fingerprint());
  EXPECT_EQ(one.fingerprint(), four.fingerprint());
  EXPECT_EQ(one.windows_ok, four.windows_ok);
  EXPECT_EQ(one.epochs.size(), four.epochs.size());
  for (std::size_t i = 0; i < one.epochs.size(); ++i) {
    EXPECT_EQ(one.epochs[i].mode, four.epochs[i].mode) << i;
    EXPECT_EQ(one.epochs[i].constraint_ok, four.epochs[i].constraint_ok) << i;
  }
  // And re-running the same configuration is a fixed point.
  options.seam_threads = 1;
  const PlatformFaultRun again = run_deployment_with_faults(td, plan, 240, options);
  EXPECT_EQ(one.fingerprint(), again.fingerprint());
}

TEST(FaultRun, AdoptsTheRerouteWhenTheMessagesLinkDies) {
  // Kill exactly the wire the deployment's messages ride: the kept
  // tables break, the fallback bus absorbs the channels, and the healed
  // loop must adopt the proved reroute while blind keeps losing every
  // crossing window.
  const Platform pm = Platform::partial_mesh(2);
  TolerantDeployment td;
  td.base = alternating_on(pm);
  ASSERT_TRUE(td.base.success) << td.base.failure_reason;
  ASSERT_FALSE(td.base.messages.empty());
  td.success = true;
  td.tolerant = true;

  const std::size_t wire = td.base.messages.front().link;
  const core::FaultPlanParse parse = core::parse_fault_plan(
      "linkfail " + pm.links[wire].name + " at 48 repair 96\n",
      td.base.scheduled_model, platform_names(pm));
  ASSERT_TRUE(parse.ok()) << (parse.errors.empty() ? "" : parse.errors[0]);

  FaultRunOptions options;
  const PlatformFaultRun healed = run_deployment_with_faults(td, *parse.plan, 240, options);
  options.heal = false;
  const PlatformFaultRun blind = run_deployment_with_faults(td, *parse.plan, 240, options);

  EXPECT_GE(healed.reroutes, 1u);
  EXPECT_EQ(healed.proof_failures, 0u);
  EXPECT_GT(healed.proof_checks, 0u);
  bool saw_rerouted_epoch = false;
  for (const EpochRecord& e : healed.epochs) {
    saw_rerouted_epoch |= e.mode == EpochRecord::Mode::kRerouted;
  }
  EXPECT_TRUE(saw_rerouted_epoch);
  // Strict dominance: the outage window is long enough that blind
  // loses crossing windows healed keeps.
  EXPECT_GT(healed.windows_ok, blind.windows_ok);
}

TEST(FaultRun, UncoveredFailureSetDegradesToOutageNeverBelowBlind) {
  const GraphModel model = saturating_trio();
  const Platform platform = Platform::bus(3);
  TolerantOptions topts;
  topts.k = 1;
  const TolerantDeployment td = deploy_tolerant(model, platform, topts);
  ASSERT_TRUE(td.success) << td.failure_reason;

  // Two simultaneous processor failures exceed k=1: the healed loop
  // must record an outage epoch, not fabricate an unproved config.
  const core::FaultPlanParse parse = core::parse_fault_plan(
      "procfail p0 at 40 repair 40\n"
      "procfail p1 at 50 repair 40\n",
      model, platform_names(platform));
  ASSERT_TRUE(parse.ok());

  FaultRunOptions options;
  const PlatformFaultRun healed = run_deployment_with_faults(td, *parse.plan, 200, options);
  options.heal = false;
  const PlatformFaultRun blind = run_deployment_with_faults(td, *parse.plan, 200, options);
  EXPECT_GT(healed.outages, 0u);
  EXPECT_EQ(healed.proof_failures, 0u);
  EXPECT_GE(healed.windows_ok, blind.windows_ok);
}

TEST(FaultRun, SeededPlatformPlansAreDeterministic) {
  const Platform platform = Platform::partial_mesh(4);
  const core::FaultPlan a = make_platform_fault_plan(17, platform, 2000, 0.001, 0.001,
                                                     50, 0.001);
  const core::FaultPlan b = make_platform_fault_plan(17, platform, 2000, 0.001, 0.001,
                                                     50, 0.001);
  EXPECT_EQ(a, b);
  for (const core::FaultSpec& f : a.faults) {
    EXPECT_TRUE(core::is_platform_fault(f.kind));
    const std::size_t bound = f.kind == core::FaultKind::kProcessorFail
                                  ? platform.processors()
                                  : platform.links.size();
    EXPECT_LT(f.resource, bound);
    EXPECT_GE(f.magnitude, 1);
  }
  const core::FaultPlan c = make_platform_fault_plan(18, platform, 2000, 0.001, 0.001,
                                                     50, 0.001);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace rtg::map
