// The platform-fault chaos sweep (ISSUE 10): seeded processor/link
// failure schedules over the 64-seed mapped corpus. For every seed that
// deploys, the healed run loop must (a) never score below the blind
// baseline, (b) proof-check every configuration it activates with zero
// failures, and (c) stay bit-identical across seam thread counts on a
// deterministic slice of the sweep. This is the CI asan-faults /
// tsan-job entry point for the fault-tolerance layer.
#include "map/fault_tolerance.hpp"

#include <gtest/gtest.h>

#include "gen/generator.hpp"

namespace rtg::map {
namespace {

constexpr std::uint64_t kSeeds = 64;
constexpr core::Time kHorizon = 600;

TEST(PlatformChaos, HealedDominatesBlindAcrossTheMappedCorpus) {
  std::size_t deployed = 0;
  std::size_t disturbed = 0;
  std::size_t proof_checks = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const gen::Scenario scenario = gen::generate(gen::mapped_corpus_options(seed));
    ASSERT_TRUE(scenario.hardware.has_value()) << "seed " << seed;

    TolerantOptions topts;
    topts.k = 1;
    const TolerantDeployment td =
        deploy_tolerant(scenario.model, *scenario.hardware, topts);
    if (!td.success) continue;  // nominally infeasible corpus entries
    ++deployed;

    const core::FaultPlan plan = make_platform_fault_plan(
        seed * 2654435761u + 1, *scenario.hardware, kHorizon,
        /*proc_rate=*/0.004, /*link_rate=*/0.002, /*repair=*/60,
        /*degrade_rate=*/0.002);

    FaultRunOptions options;
    const PlatformFaultRun healed =
        run_deployment_with_faults(td, plan, kHorizon, options);
    options.heal = false;
    const PlatformFaultRun blind =
        run_deployment_with_faults(td, plan, kHorizon, options);

    EXPECT_EQ(healed.windows_total, blind.windows_total) << "seed " << seed;
    EXPECT_GE(healed.windows_ok, blind.windows_ok) << "seed " << seed;
    EXPECT_EQ(healed.proof_failures, 0u) << "seed " << seed;
    proof_checks += healed.proof_checks;
    if (healed.migrations + healed.reroutes > 0) ++disturbed;

    // Epochs partition the horizon on both policies.
    ASSERT_FALSE(healed.epochs.empty()) << "seed " << seed;
    EXPECT_EQ(healed.epochs.front().begin, 0) << "seed " << seed;
    EXPECT_EQ(healed.epochs.back().end, kHorizon) << "seed " << seed;
  }
  // The sweep must exercise the machinery, not vacuously skip it: most
  // corpus entries deploy, the fault rates actually disturb a good
  // fraction of them, and activations carried proofs.
  EXPECT_GE(deployed, kSeeds / 4);
  EXPECT_GE(disturbed, deployed / 4);
  EXPECT_GT(proof_checks, 0u);
}

TEST(PlatformChaos, DeterministicAcrossSeamThreadsOnASlice) {
  // Thread-identity on every 8th seed keeps the sweep affordable under
  // TSan while still crossing bus, ring, and partial-mesh shapes
  // (mapped_corpus_options swaps shape at index % 8 == 3 and 6).
  for (std::uint64_t seed = 0; seed < kSeeds; seed += 8) {
    for (const std::uint64_t shape_seed : {seed + 3, seed + 6, seed}) {
      const gen::Scenario scenario =
          gen::generate(gen::mapped_corpus_options(shape_seed));
      ASSERT_TRUE(scenario.hardware.has_value());
      TolerantOptions topts;
      topts.k = 1;
      const TolerantDeployment td =
          deploy_tolerant(scenario.model, *scenario.hardware, topts);
      if (!td.success) continue;
      const core::FaultPlan plan = make_platform_fault_plan(
          shape_seed + 99, *scenario.hardware, kHorizon, 0.004, 0.002, 60, 0.002);

      FaultRunOptions options;
      options.seam_threads = 1;
      const PlatformFaultRun one = run_deployment_with_faults(td, plan, kHorizon, options);
      options.seam_threads = 2;
      const PlatformFaultRun two = run_deployment_with_faults(td, plan, kHorizon, options);
      options.seam_threads = 4;
      const PlatformFaultRun four =
          run_deployment_with_faults(td, plan, kHorizon, options);
      EXPECT_EQ(one.fingerprint(), two.fingerprint()) << "seed " << shape_seed;
      EXPECT_EQ(one.fingerprint(), four.fingerprint()) << "seed " << shape_seed;
    }
  }
}

}  // namespace
}  // namespace rtg::map
