// Platform declarations in the spec DSL: grammar, semantic checks, and
// the canonical-form byte fixpoint (emit . compile . emit == emit).
#include <gtest/gtest.h>

#include <string>

#include "map/platform.hpp"
#include "spec/compile.hpp"
#include "spec/emit.hpp"

namespace rtg::spec {
namespace {

const char* kBody =
    "element a\n"
    "element b weight 2\n"
    "channel a -> b\n"
    "constraint C periodic period 20 deadline 20 { a -> b }\n";

std::string with_platform(const std::string& preamble) {
  return preamble + "\n" + kBody;
}

TEST(PlatformSpec, BusDeclarationCompiles) {
  const CompileResult r =
      compile_text(with_platform("processor p0\nprocessor p1\nbus b0"));
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0].message);
  ASSERT_TRUE(r.platform.has_value());
  EXPECT_EQ(r.platform->processors(), 2u);
  ASSERT_EQ(r.platform->links.size(), 1u);
  EXPECT_TRUE(r.platform->links[0].is_bus(2));
  EXPECT_EQ(r.platform->links[0].bandwidth, 1);
}

TEST(PlatformSpec, LinkDeclarationAndBandwidth) {
  const CompileResult r = compile_text(with_platform(
      "processor p0\nprocessor p1\nlink l0 p0 -> p1 bandwidth 3"));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.platform.has_value());
  ASSERT_EQ(r.platform->links.size(), 1u);
  const map::Link& l = r.platform->links[0];
  EXPECT_EQ(l.bandwidth, 3);
  EXPECT_TRUE(l.serves(0, 1));
  EXPECT_FALSE(l.serves(1, 0));
  EXPECT_FALSE(l.is_bus(2));
}

TEST(PlatformSpec, RepeatedLinkNameMergesRoutes) {
  const CompileResult r = compile_text(with_platform(
      "processor p0\nprocessor p1\n"
      "link l0 p0 -> p1\nlink l0 p1 -> p0"));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.platform->links.size(), 1u);
  EXPECT_TRUE(r.platform->links[0].is_bus(2));
}

TEST(PlatformSpec, NoPlatformCompilesAsBefore) {
  const CompileResult r = compile_text(kBody);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.platform.has_value());
  // And the two-argument emit with an empty platform is byte-identical
  // to the plain emit.
  EXPECT_EQ(emit(*r.model, map::Platform{}), emit(*r.model));
}

TEST(PlatformSpec, EmitIsAByteFixpoint) {
  for (const char* preamble :
       {"processor p0\nprocessor p1\nbus b0",
        "processor p0\nprocessor p1\nprocessor p2\nbus b0 bandwidth 2",
        "processor p0\nprocessor p1\nlink l0 p0 -> p1 bandwidth 3",
        "processor p0\nprocessor p1\nprocessor p2\n"
        "link r0 p0 -> p1\nlink r1 p1 -> p2\nlink r2 p2 -> p0"}) {
    const CompileResult r = compile_text(with_platform(preamble));
    ASSERT_TRUE(r.ok()) << preamble;
    ASSERT_TRUE(r.platform.has_value()) << preamble;
    const std::string once = emit(*r.model, *r.platform);
    const CompileResult r2 = compile_text(once);
    ASSERT_TRUE(r2.ok()) << once;
    ASSERT_TRUE(r2.platform.has_value());
    EXPECT_EQ(*r2.platform, *r.platform) << preamble;
    EXPECT_EQ(emit(*r2.model, *r2.platform), once) << preamble;
  }
}

TEST(PlatformSpec, FactoryPlatformsRoundTripThroughTheDsl) {
  const CompileResult base = compile_text(kBody);
  ASSERT_TRUE(base.ok());
  for (const map::Platform& p :
       {map::Platform::bus(4), map::Platform::full(3), map::Platform::ring(3),
        map::Platform::bus(2, 2)}) {
    const std::string text = emit(*base.model, p);
    const CompileResult r = compile_text(text);
    ASSERT_TRUE(r.ok()) << text;
    ASSERT_TRUE(r.platform.has_value());
    EXPECT_EQ(r.platform->processor_names, p.processor_names);
    EXPECT_EQ(r.platform->links, p.links);
  }
}

void expect_error(const std::string& text, const std::string& needle) {
  const CompileResult r = compile_text(text);
  ASSERT_FALSE(r.errors.empty()) << text;
  bool found = false;
  for (const CompileError& e : r.errors) {
    if (e.message.find(needle) != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << text << "\nwanted: " << needle << "\ngot: "
                     << r.errors[0].message;
}

TEST(PlatformSpec, DuplicateProcessorRejected) {
  expect_error(with_platform("processor p0\nprocessor p0\nbus b0"),
               "duplicate processor");
}

TEST(PlatformSpec, LinkToUndeclaredProcessorRejected) {
  expect_error(with_platform("processor p0\nlink l0 p0 -> p9"), "p9");
}

TEST(PlatformSpec, SelfLinkRejected) {
  expect_error(with_platform("processor p0\nprocessor p1\nlink l0 p0 -> p0"),
               "itself");
}

TEST(PlatformSpec, ZeroBandwidthRejected) {
  expect_error(
      with_platform("processor p0\nprocessor p1\nlink l0 p0 -> p1 bandwidth 0"),
      "bandwidth");
}

TEST(PlatformSpec, BandwidthDisagreementRejected) {
  expect_error(with_platform("processor p0\nprocessor p1\n"
                             "link l0 p0 -> p1 bandwidth 2\n"
                             "link l0 p1 -> p0 bandwidth 3"),
               "redeclared with bandwidth");
}

TEST(PlatformSpec, BusNeedsTwoProcessors) {
  expect_error(with_platform("processor p0\nbus b0"), "at least two");
}

TEST(PlatformSpec, LinkWithoutProcessorsRejected) {
  expect_error(std::string("bus b0\n") + kBody, "without processors");
}

TEST(PlatformHelpers, RouteAndTransferSlots) {
  const map::Platform ring = map::Platform::ring(4, 2);
  ASSERT_EQ(ring.links.size(), 4u);
  ASSERT_TRUE(ring.route(0, 1).has_value());
  ASSERT_TRUE(ring.route(1, 0).has_value());   // neighbour links go both ways
  EXPECT_FALSE(ring.route(0, 2).has_value());  // no route across the ring
  EXPECT_EQ(ring.transfer_slots(*ring.route(0, 1), 1), 1);
  EXPECT_EQ(ring.transfer_slots(*ring.route(0, 1), 3), 2);  // ceil(3/2)
  const map::Platform bus = map::Platform::bus(4);
  ASSERT_TRUE(bus.route(3, 1).has_value());
  EXPECT_TRUE(bus.links[0].is_bus(4));
  EXPECT_FALSE(bus.links[0].is_bus(5));
}

}  // namespace
}  // namespace rtg::spec
