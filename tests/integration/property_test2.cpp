// Property sweeps over the second-wave modules:
//   P6  bounds soundness: a refuted model is never exactly feasible and
//       never accepted by the heuristic;
//   P7  optimization safety: compaction/trimming preserve feasibility
//       and optimize_schedule is idempotent;
//   P8  fault-tolerant latency is monotone in the replica count, and
//       hardened schedules meet the k+1-disjoint-executions property;
//   P9  spec round-trip: emit -> compile is the identity up to
//       renumbering, and emit is a fixpoint after one round;
//   P10 schedule_io round-trips arbitrary schedules;
//   P11 exact-solver status is invariant under the branch order;
//   P12 network on a full mesh succeeds whenever the bus multiproc
//       does (same placement, richer network).
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/fault.hpp"
#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/multiproc.hpp"
#include "core/network.hpp"
#include "core/optimize.hpp"
#include "core/schedule_io.hpp"
#include "sim/rng.hpp"
#include "spec/compile.hpp"
#include "spec/emit.hpp"

namespace rtg {
namespace {

using core::ConstraintKind;
using core::ElementId;
using core::GraphModel;
using core::TaskGraph;
using core::TimingConstraint;
using Time = sim::Time;

GraphModel random_unit_model(sim::Rng& rng, int max_elems, Time min_d, Time max_d,
                             bool pipelinable = false) {
  core::CommGraph comm;
  const int n = static_cast<int>(rng.uniform(1, max_elems));
  for (int i = 0; i < n; ++i) {
    comm.add_element("e" + std::to_string(i), 1, pipelinable);
  }
  GraphModel model(std::move(comm));
  const int k = static_cast<int>(rng.uniform(1, 3));
  for (int c = 0; c < k; ++c) {
    TaskGraph tg;
    tg.add_op(static_cast<ElementId>(rng.uniform(0, n - 1)));
    model.add_constraint(TimingConstraint{
        "c" + std::to_string(c), std::move(tg), rng.uniform(1, 4),
        rng.uniform(min_d, max_d),
        rng.chance(0.3) ? ConstraintKind::kPeriodic : ConstraintKind::kAsynchronous});
  }
  return model;
}

class PropertySweep2 : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep2,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST_P(PropertySweep2, BoundsSoundness) {
  sim::Rng rng(GetParam() * 131 + 17);
  const GraphModel model = random_unit_model(rng, 3, 1, 4);
  if (core::refute_feasibility(model).empty()) GTEST_SKIP() << "not refuted";

  core::ExactOptions options;
  options.state_budget = 100000;
  const core::ExactResult exact = core::exact_feasible(model, options);
  EXPECT_NE(exact.status, core::FeasibilityStatus::kFeasible);
  EXPECT_FALSE(core::latency_schedule(model).success);
}

TEST_P(PropertySweep2, OptimizationPreservesFeasibility) {
  sim::Rng rng(GetParam() * 733 + 3);
  const GraphModel model = random_unit_model(rng, 4, 6, 20, true);
  const core::HeuristicResult h = core::latency_schedule(model);
  if (!h.success) GTEST_SKIP() << h.failure_reason;

  core::OptimizeStats stats;
  const core::StaticSchedule once =
      core::optimize_schedule(*h.schedule, h.scheduled_model, &stats);
  EXPECT_TRUE(core::verify_schedule(once, h.scheduled_model).feasible);
  EXPECT_LE(once.busy(), h.schedule->busy());
  EXPECT_LE(once.length(), h.schedule->length());

  // Idempotence: a second run removes nothing further.
  core::OptimizeStats again;
  const core::StaticSchedule twice =
      core::optimize_schedule(once, h.scheduled_model, &again);
  EXPECT_EQ(again.executions_removed, 0u);
  EXPECT_EQ(again.idle_removed, 0);
  EXPECT_EQ(twice, once);
}

TEST_P(PropertySweep2, FaultTolerantLatencyMonotone) {
  sim::Rng rng(GetParam() * 947 + 29);
  const GraphModel model = random_unit_model(rng, 3, 12, 30, true);
  const core::HeuristicResult h = core::latency_schedule(model);
  if (!h.success) GTEST_SKIP();

  for (std::size_t i = 0; i < h.scheduled_model.constraint_count(); ++i) {
    const TaskGraph& tg = h.scheduled_model.constraint(i).task_graph;
    bool had_prev = false;
    std::optional<Time> prev;
    for (std::size_t replicas = 1; replicas <= 3; ++replicas) {
      const auto ft = core::fault_tolerant_latency(*h.schedule, tg, replicas);
      if (had_prev) {
        if (!prev.has_value()) {
          EXPECT_FALSE(ft.has_value());  // infinite stays infinite
        } else if (ft.has_value()) {
          EXPECT_GE(*ft, *prev);
        }
      }
      prev = ft;
      had_prev = true;
    }
  }
}

TEST_P(PropertySweep2, HardenedSchedulesMeetDisjointProperty) {
  sim::Rng rng(GetParam() * 389 + 41);
  // Generous deadlines so hardening has room.
  const GraphModel model = random_unit_model(rng, 2, 24, 48, true);
  const std::size_t k = 1 + GetParam() % 2;
  const core::HardenedResult r = core::harden_and_schedule(model, k);
  if (!r.success) GTEST_SKIP() << r.failure_reason;
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    ASSERT_TRUE(r.ft_latency[i].has_value());
    EXPECT_LE(*r.ft_latency[i], model.constraint(i).deadline);
  }
}

TEST_P(PropertySweep2, SpecEmitRoundTripFixpoint) {
  sim::Rng rng(GetParam() * 577 + 7);
  // Random model with channels and chain constraints.
  core::CommGraph comm;
  const int n = static_cast<int>(rng.uniform(2, 5));
  for (int i = 0; i < n; ++i) {
    comm.add_element("e" + std::to_string(i), rng.uniform(1, 3), rng.chance(0.5));
  }
  for (ElementId u = 0; u < static_cast<ElementId>(n); ++u) {
    for (ElementId v = u + 1; v < static_cast<ElementId>(n); ++v) {
      if (rng.chance(0.5)) comm.add_channel(u, v);
    }
  }
  GraphModel model(std::move(comm));
  // One chain constraint along an existing channel if any.
  for (ElementId u = 0; u < model.comm().size(); ++u) {
    const auto& succ = model.comm().digraph().successors(u);
    if (succ.empty()) continue;
    TaskGraph tg;
    const auto a = tg.add_op(u);
    const auto b = tg.add_op(succ[0]);
    tg.add_dep(a, b);
    model.add_constraint(TimingConstraint{"c", std::move(tg), rng.uniform(2, 9),
                                          rng.uniform(4, 30),
                                          ConstraintKind::kAsynchronous});
    break;
  }

  const std::string text1 = spec::emit(model);
  const spec::CompileResult compiled = spec::compile_text(text1);
  ASSERT_TRUE(compiled.ok()) << text1;
  const std::string text2 = spec::emit(*compiled.model);
  EXPECT_EQ(text1, text2);  // fixpoint after one round
}

TEST_P(PropertySweep2, ScheduleIoRoundTrip) {
  sim::Rng rng(GetParam() * 211 + 9);
  core::CommGraph comm;
  const int n = static_cast<int>(rng.uniform(1, 4));
  for (int i = 0; i < n; ++i) {
    comm.add_element("e" + std::to_string(i), rng.uniform(1, 3));
  }
  core::StaticSchedule sched;
  const int entries = static_cast<int>(rng.uniform(1, 12));
  for (int i = 0; i < entries; ++i) {
    if (rng.chance(0.3)) {
      sched.push_idle(rng.uniform(1, 4));
    } else {
      const auto e = static_cast<ElementId>(rng.uniform(0, n - 1));
      sched.push_execution(e, comm.weight(e));
    }
  }
  const auto parsed = core::schedule_from_text(core::schedule_to_text(sched, comm), comm);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed.schedule, sched);
}

TEST_P(PropertySweep2, ExactStatusInvariantUnderBranchOrder) {
  sim::Rng rng(GetParam() * 449 + 5);
  const GraphModel model = random_unit_model(rng, 3, 1, 4);
  core::ExactOptions lru;
  lru.state_budget = 100000;
  core::ExactOptions stat = lru;
  stat.order = core::BranchOrder::kStaticId;
  const auto a = core::exact_feasible(model, lru);
  const auto b = core::exact_feasible(model, stat);
  if (a.status == core::FeasibilityStatus::kUnknown ||
      b.status == core::FeasibilityStatus::kUnknown) {
    GTEST_SKIP() << "budget hit";
  }
  EXPECT_EQ(a.status, b.status);
}

TEST_P(PropertySweep2, MeshNetworkMatchesBusFeasibility) {
  sim::Rng rng(GetParam() * 101 + 23);
  // Chain models over 2 processors.
  core::CommGraph comm;
  const int n = static_cast<int>(rng.uniform(2, 4));
  for (int i = 0; i < n; ++i) {
    comm.add_element("s" + std::to_string(i), 1, true);
  }
  for (int i = 0; i + 1 < n; ++i) {
    comm.add_channel(static_cast<ElementId>(i), static_cast<ElementId>(i + 1));
  }
  GraphModel model(std::move(comm));
  TaskGraph tg;
  core::OpId prev = graph::kInvalidNode;
  for (int i = 0; i < n; ++i) {
    const core::OpId op = tg.add_op(static_cast<ElementId>(i));
    if (prev != graph::kInvalidNode) tg.add_dep(prev, op);
    prev = op;
  }
  model.add_constraint(TimingConstraint{"chain", std::move(tg), 10,
                                        rng.uniform(30, 60),
                                        ConstraintKind::kAsynchronous});

  core::MultiprocOptions bus_opts;
  bus_opts.processors = 2;
  bus_opts.strategy = core::PartitionStrategy::kRoundRobin;
  const core::MultiprocResult bus = core::multiproc_schedule(model, bus_opts);

  core::NetworkOptions net_opts;
  net_opts.strategy = core::PartitionStrategy::kRoundRobin;
  const core::NetworkScheduleResult mesh =
      core::network_schedule(model, core::NetworkTopology::full_mesh(2), net_opts);

  if (bus.success) {
    EXPECT_TRUE(mesh.success) << mesh.failure_reason;
  }
}

}  // namespace
}  // namespace rtg
