// paper_claims_test — the paper's assertions, one test each, in the
// order they appear in the text. This file doubles as an executable
// summary of what the reproduction establishes; each test cites the
// sentence it checks.
#include <gtest/gtest.h>

#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "core/multiproc.hpp"
#include "core/npc.hpp"
#include "core/pipeline.hpp"
#include "core/runtime.hpp"
#include "core/synthesis.hpp"
#include "rt/analysis.hpp"
#include "rt/scheduler.hpp"

namespace rtg {
namespace {

using core::ConstraintKind;
using core::GraphModel;
using core::TaskGraph;
using core::TimingConstraint;
using Time = sim::Time;

// "a task graph C is an acyclic digraph which is compatible with the
// communication graph G" — compatibility is a checked invariant.
TEST(PaperClaims, TaskGraphsMustBeCompatibleWithG) {
  core::CommGraph comm;
  comm.add_element("u", 1);
  comm.add_element("v", 1);
  // No channel u -> v.
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const auto a = tg.add_op(0);
  const auto b = tg.add_op(1);
  tg.add_dep(a, b);
  EXPECT_THROW(model.add_constraint(
                   TimingConstraint{"bad", tg, 4, 4, ConstraintKind::kPeriodic}),
               std::invalid_argument);
}

// "If a timing constraint (C,p,d) is invoked at time t, then the task
// graph C must be executed in the interval [t, t+d]." — the executive
// verifies exactly this window per invocation.
TEST(PaperClaims, InvocationWindowSemantics) {
  core::CommGraph comm;
  comm.add_element("f", 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"A", std::move(tg), 5, 3, ConstraintKind::kAsynchronous});
  core::StaticSchedule sched;  // f at slots 0, 4, 8, ...
  sched.push_execution(0, 1);
  sched.push_idle(3);
  // Invocation at t=1: window [1,4] holds f@[4,5)? No — f starts at 4,
  // finishes 5 > 4: MISS. Invocation at t=3: f@[4,5) inside [3,6]: OK.
  const auto r1 = core::run_executive(sched, model, {{1}}, 20);
  EXPECT_FALSE(r1.all_met);
  const auto r2 = core::run_executive(sched, model, {{3}}, 20);
  EXPECT_TRUE(r2.all_met);
}

// "A straightforward way ... is to map each periodic/asynchronous
// timing constraint into a ... process where the body consists of a
// straight-line program which is any topological sort of the
// operations" — process synthesis produces exactly that.
TEST(PaperClaims, ProcessBodiesAreTopologicalSorts) {
  const GraphModel model = core::make_control_system();
  const core::ProcessSynthesis procs = core::synthesize_processes(model);
  for (std::size_t i = 0; i < procs.processes.size(); ++i) {
    const auto& body = procs.processes[i].body;
    const TaskGraph& tg = model.constraint(i).task_graph;
    // Every skeleton edge must point forward in the body order.
    for (const graph::Edge& e : tg.skeleton().edges()) {
      const auto pos = [&](core::ElementId elem) {
        return std::find(body.begin(), body.end(), elem) - body.begin();
      };
      EXPECT_LT(pos(tg.label(e.from)), pos(tg.label(e.to)));
    }
  }
}

// "we create a monitor for each functional element that occurs in two
// or more timing constraints."
TEST(PaperClaims, MonitorsForSharedElementsOnly) {
  const GraphModel model = core::make_control_system();
  const core::ProcessSynthesis procs = core::synthesize_processes(model);
  // fs shared by X, Y, Z; fk by X, Y; fx, fy, fz private.
  EXPECT_EQ(procs.monitors.size(), 2u);
}

// "if p_x is equal to p_y ... there is no reason why f_S should be
// executed twice per period. In the process model there are two
// distinct calls to f_S and so the redundant work cannot be avoided."
TEST(PaperClaims, SharedWorkAvoidedByLatencyScheduling) {
  core::ControlSystemParams params;
  params.py = params.dy = 20;  // p_x == p_y
  const GraphModel model = core::make_control_system(params);

  const core::ProcessSynthesis procs = core::synthesize_processes(model);
  // Process model: fs (w=2) runs once in X's body and once in Y's per 20.
  Time fs_work_process = 0;
  for (const auto& p : procs.processes) {
    if (p.kind != ConstraintKind::kPeriodic) continue;
    fs_work_process += (procs.hyperperiod / p.period) *
                       static_cast<Time>(std::count(p.body.begin(), p.body.end(),
                                                    *model.comm().find("fs"))) *
                       2;
  }
  EXPECT_EQ(fs_work_process, 2 * 2 * (procs.hyperperiod / 20));

  // Coalesced X+Y executes fs once per 20 slots instead of twice; Z's
  // sporadic server adds its own fs polls either way, so compare the
  // fs rate with and without coalescing.
  auto fs_rate = [](const core::HeuristicResult& r) {
    const auto fs0 = r.scheduled_model.comm().find("fs/0");
    EXPECT_TRUE(fs0.has_value());
    return static_cast<double>(r.schedule->ops_of(*fs0).size()) /
           static_cast<double>(r.schedule->length());
  };
  const core::HeuristicResult plain = core::latency_schedule(model);
  core::HeuristicOptions opts;
  opts.coalesce = true;
  const core::HeuristicResult merged = core::latency_schedule(model, opts);
  ASSERT_TRUE(plain.success && merged.success);
  // Exactly one fs execution per 20 slots is saved: 1/20 of the rate.
  EXPECT_NEAR(fs_rate(plain) - fs_rate(merged), 1.0 / 20.0, 1e-9);
}

// Theorem 1: "feasible static schedules can always be computed in
// finite time."
TEST(PaperClaims, Theorem1Decidability) {
  core::CommGraph comm;
  comm.add_element("a", 1, false);
  comm.add_element("b", 1, false);
  GraphModel feasible(comm);
  for (core::ElementId e = 0; e < 2; ++e) {
    TaskGraph tg;
    tg.add_op(e);
    feasible.add_constraint(TimingConstraint{
        "c" + std::to_string(e), std::move(tg), 1, 3, ConstraintKind::kAsynchronous});
  }
  EXPECT_EQ(core::exact_feasible(feasible).status, core::FeasibilityStatus::kFeasible);

  GraphModel infeasible(comm);
  for (core::ElementId e = 0; e < 2; ++e) {
    TaskGraph tg;
    tg.add_op(e);
    infeasible.add_constraint(TimingConstraint{
        "c" + std::to_string(e), std::move(tg), 1, 1, ConstraintKind::kAsynchronous});
  }
  EXPECT_EQ(core::exact_feasible(infeasible).status,
            core::FeasibilityStatus::kInfeasible);
}

// Theorem 2's flavour: solvable 3-PARTITION encodings are feasible,
// overloaded ones are not (the combinatorial core of the reduction).
TEST(PaperClaims, Theorem2GadgetBehaviour) {
  core::ThreePartitionInstance inst;
  inst.bins = 1;
  inst.capacity = 4;
  inst.items = {2, 1, 1};
  EXPECT_EQ(core::exact_feasible(core::three_partition_model(inst)).status,
            core::FeasibilityStatus::kFeasible);
  EXPECT_EQ(core::exact_feasible(core::three_partition_model(core::make_overloaded(inst)))
                .status,
            core::FeasibilityStatus::kInfeasible);
}

// Theorem 3: "a feasible static schedule always exists" under the
// hypotheses — and our constructive scheduler finds it.
TEST(PaperClaims, Theorem3Constructive) {
  const GraphModel model = core::make_control_system();
  ASSERT_TRUE(model.satisfies_theorem3());
  const core::HeuristicResult h = core::latency_schedule(model);
  EXPECT_TRUE(h.success);
  EXPECT_TRUE(h.report.feasible);
}

// "all the data dependencies are made explicit and hence software
// pipelining can be easily automated."
TEST(PaperClaims, SoftwarePipeliningAutomated) {
  const GraphModel model = core::make_control_system();
  const core::PipelinedModel p = core::pipeline_model(model);
  // fs (w=2) decomposed; dependencies rewired automatically; all
  // task graphs still valid.
  EXPECT_TRUE(p.model.comm().find("fs/0").has_value());
  for (const TimingConstraint& c : p.model.constraints()) {
    EXPECT_TRUE(c.task_graph.validate(p.model.comm()).empty());
  }
}

// "the run-time scheduler is very efficient once a feasible static
// schedule has been found off-line" — dispatch count is independent of
// pending invocations.
TEST(PaperClaims, RuntimeDispatchIndependentOfLoad) {
  const GraphModel model = core::make_control_system();
  const core::HeuristicResult h = core::latency_schedule(model);
  ASSERT_TRUE(h.success);
  core::ConstraintArrivals none(3);
  core::ConstraintArrivals many(3);
  many[2] = rt::max_rate_arrivals(50, 2000);
  const auto quiet = core::run_executive(*h.schedule, h.scheduled_model, none, 2100);
  const auto busy = core::run_executive(*h.schedule, h.scheduled_model, many, 2100);
  EXPECT_EQ(quiet.dispatches, busy.dispatches);
  EXPECT_TRUE(busy.all_met);
}

// "the synthesis problem can be decomposed into a set of single
// processor synthesis problems and a similar-looking problem for
// scheduling the communication network."
TEST(PaperClaims, MultiprocessorDecomposition) {
  core::ControlSystemParams params;
  params.px = params.dx = 40;
  params.py = params.dy = 80;
  params.pz = 120;
  params.dz = 60;
  core::MultiprocOptions options;
  options.processors = 2;
  options.strategy = core::PartitionStrategy::kCommunication;
  const core::MultiprocResult r =
      core::multiproc_schedule(core::make_control_system(params), options);
  EXPECT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.processor_schedules.size(), 2u);
}

}  // namespace
}  // namespace rtg
