// Property-based sweeps over randomized models, exercising the
// library's central invariants:
//   P1 latency soundness: a schedule reported feasible serves every
//      legal arrival pattern in executive simulation;
//   P2 Theorem 3: under its hypotheses the heuristic never fails;
//   P3 pipelining preserves computation time and validity;
//   P4 exact-solver soundness: returned schedules always verify;
//   P5 EDF optimality on the process substrate: whenever any policy
//      meets all deadlines in simulation, EDF does too;
//   P6 fault-tolerance degenerates correctly: with a single replica
//      the k-fault-tolerant latency equals the plain cyclic latency.
#include <gtest/gtest.h>

#include <tuple>

#include "core/fault.hpp"
#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/pipeline.hpp"
#include "core/runtime.hpp"
#include "rt/scheduler.hpp"
#include "sim/rng.hpp"

namespace rtg {
namespace {

using core::ConstraintKind;
using core::ElementId;
using core::GraphModel;
using core::TaskGraph;
using core::TimingConstraint;
using Time = sim::Time;

// Random model generator: a small communication DAG plus chain
// constraints drawn along its channels.
GraphModel random_model(sim::Rng& rng, int max_elems, Time min_d, Time max_d,
                        bool pipelinable) {
  core::CommGraph comm;
  const int n = static_cast<int>(rng.uniform(2, max_elems));
  for (int i = 0; i < n; ++i) {
    comm.add_element("e" + std::to_string(i), rng.uniform(1, 2), pipelinable);
  }
  for (ElementId u = 0; u < static_cast<ElementId>(n); ++u) {
    for (ElementId v = u + 1; v < static_cast<ElementId>(n); ++v) {
      if (rng.chance(0.5)) comm.add_channel(u, v);
    }
  }
  GraphModel model(std::move(comm));

  const int k = static_cast<int>(rng.uniform(1, 3));
  for (int c = 0; c < k; ++c) {
    // Random chain along channels starting anywhere.
    TaskGraph tg;
    ElementId cur = static_cast<ElementId>(rng.uniform(0, n - 1));
    core::OpId prev = tg.add_op(cur);
    for (int step = 0; step < 2; ++step) {
      const auto& succ = model.comm().digraph().successors(cur);
      if (succ.empty() || rng.chance(0.4)) break;
      cur = succ[static_cast<std::size_t>(
          rng.uniform(0, static_cast<Time>(succ.size()) - 1))];
      const core::OpId op = tg.add_op(cur);
      tg.add_dep(prev, op);
      prev = op;
    }
    TimingConstraint constraint;
    constraint.name = "c" + std::to_string(c);
    constraint.task_graph = std::move(tg);
    constraint.deadline = rng.uniform(min_d, max_d);
    constraint.period = rng.uniform(2, 8);
    constraint.kind =
        rng.chance(0.5) ? ConstraintKind::kPeriodic : ConstraintKind::kAsynchronous;
    model.add_constraint(std::move(constraint));
  }
  return model;
}

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST_P(PropertySweep, FeasibleScheduleServesAllArrivals) {
  sim::Rng rng(GetParam() * 7919 + 13);
  const GraphModel model = random_model(rng, 5, 8, 24, true);
  const core::HeuristicResult h = core::latency_schedule(model);
  if (!h.success) GTEST_SKIP() << "heuristic declined: " << h.failure_reason;

  core::ConstraintArrivals arrivals(model.constraint_count());
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    if (!c.periodic()) {
      arrivals[i] = rng.chance(0.5)
                        ? rt::max_rate_arrivals(c.period, 400)
                        : rt::random_arrivals(c.period, 400, 3.0, rng);
    }
  }
  const core::ExecutiveResult run =
      core::run_executive(*h.schedule, h.scheduled_model, arrivals, 450);
  EXPECT_TRUE(run.all_met);
}

TEST_P(PropertySweep, Theorem3NeverFails) {
  sim::Rng rng(GetParam() * 104729 + 1);
  // Constraints engineered inside the hypotheses: unit/2-weight
  // elements, deadlines large enough that sum w/d <= 1/2.
  core::CommGraph comm;
  const int n = static_cast<int>(rng.uniform(2, 4));
  for (int i = 0; i < n; ++i) {
    comm.add_element("e" + std::to_string(i), rng.uniform(1, 2), true);
  }
  GraphModel model(std::move(comm));
  double budget = 0.5;
  for (int c = 0; c < 3; ++c) {
    const ElementId e = static_cast<ElementId>(rng.uniform(0, n - 1));
    const Time w = model.comm().weight(e);
    const Time d = std::max<Time>(2 * w, static_cast<Time>(rng.uniform(8, 40)));
    const double util = static_cast<double>(w) / static_cast<double>(d);
    if (util > budget) continue;
    budget -= util;
    TaskGraph tg;
    tg.add_op(e);
    model.add_constraint(TimingConstraint{"c" + std::to_string(c), std::move(tg),
                                          rng.uniform(2, 10), d,
                                          ConstraintKind::kAsynchronous});
  }
  if (model.constraint_count() == 0 || !model.satisfies_theorem3()) {
    GTEST_SKIP() << "instance fell outside hypotheses";
  }
  const core::HeuristicResult h = core::latency_schedule(model);
  EXPECT_TRUE(h.success) << h.failure_reason;
  EXPECT_TRUE(h.report.feasible);
}

TEST_P(PropertySweep, PipeliningPreservesComputationTime) {
  sim::Rng rng(GetParam() * 31 + 5);
  core::CommGraph comm;
  const int n = static_cast<int>(rng.uniform(2, 5));
  for (int i = 0; i < n; ++i) {
    comm.add_element("e" + std::to_string(i), rng.uniform(1, 4), rng.chance(0.7));
  }
  for (ElementId u = 0; u < static_cast<ElementId>(n); ++u) {
    for (ElementId v = u + 1; v < static_cast<ElementId>(n); ++v) {
      if (rng.chance(0.6)) comm.add_channel(u, v);
    }
  }
  GraphModel model(std::move(comm));
  TaskGraph tg;
  core::OpId prev = graph::kInvalidNode;
  for (ElementId e = 0; e < static_cast<ElementId>(n); ++e) {
    const core::OpId op = tg.add_op(e);
    if (prev != graph::kInvalidNode && model.comm().has_channel(e - 1, e)) {
      tg.add_dep(prev, op);
    }
    prev = op;
  }
  model.add_constraint(
      TimingConstraint{"all", tg, 50, 50, ConstraintKind::kAsynchronous});

  const core::PipelinedModel p = core::pipeline_model(model);
  EXPECT_EQ(p.model.constraint(0).task_graph.computation_time(p.model.comm()),
            model.constraint(0).task_graph.computation_time(model.comm()));
  EXPECT_TRUE(p.model.constraint(0).task_graph.validate(p.model.comm()).empty());
  // Origin map is total and consistent.
  for (ElementId e = 0; e < p.model.comm().size(); ++e) {
    ASSERT_LT(p.origin[e], model.comm().size());
    EXPECT_LE(p.stage[e], model.comm().weight(p.origin[e]) - 1);
  }
}

TEST_P(PropertySweep, ExactSolverSchedulesAlwaysVerify) {
  sim::Rng rng(GetParam() * 613 + 7);
  core::CommGraph comm;
  const int n = static_cast<int>(rng.uniform(1, 3));
  for (int i = 0; i < n; ++i) {
    comm.add_element("e" + std::to_string(i), 1, false);
  }
  GraphModel model(std::move(comm));
  const int k = static_cast<int>(rng.uniform(1, 2));
  for (int c = 0; c < k; ++c) {
    TaskGraph tg;
    tg.add_op(static_cast<ElementId>(rng.uniform(0, n - 1)));
    model.add_constraint(TimingConstraint{
        "c" + std::to_string(c), std::move(tg), rng.uniform(1, 4), rng.uniform(1, 5),
        rng.chance(0.3) ? ConstraintKind::kPeriodic : ConstraintKind::kAsynchronous});
  }
  core::ExactOptions options;
  options.state_budget = 200000;
  const core::ExactResult r = core::exact_feasible(model, options);
  if (r.status == core::FeasibilityStatus::kFeasible) {
    EXPECT_TRUE(core::verify_schedule(*r.schedule, model).feasible);
  }
}

// P6: one replica asks for exactly one execution, so the k=1
// fault-tolerant latency coincides with the plain cyclic latency on
// every schedule/constraint pair the heuristic produces.
TEST_P(PropertySweep, SingleReplicaFaultTolerantLatencyMatchesPlain) {
  sim::Rng rng(GetParam() * 523 + 11);
  const GraphModel model = random_model(rng, 5, 8, 24, true);
  const core::HeuristicResult h = core::latency_schedule(model);
  if (!h.success) GTEST_SKIP() << "heuristic declined: " << h.failure_reason;

  for (std::size_t i = 0; i < h.scheduled_model.constraint_count(); ++i) {
    const TaskGraph& tg = h.scheduled_model.constraint(i).task_graph;
    EXPECT_EQ(core::fault_tolerant_latency(*h.schedule, tg, 1),
              core::schedule_latency(*h.schedule, tg))
        << "constraint " << h.scheduled_model.constraint(i).name;
  }
}

TEST_P(PropertySweep, EdfOptimalAmongSimulatedPolicies) {
  sim::Rng rng(GetParam() * 271 + 3);
  rt::TaskSet ts;
  const int n = static_cast<int>(rng.uniform(2, 4));
  for (int i = 0; i < n; ++i) {
    rt::Task t;
    t.p = rng.uniform(3, 12);
    t.c = rng.uniform(1, std::max<Time>(1, t.p / 2));
    t.d = t.p;
    ts.add(t);
  }
  const Time horizon = std::min<Time>(ts.hyperperiod() * 2, 4000);
  const bool edf_ok = rt::simulate(ts, rt::Policy::kEdf, horizon).miss_count() == 0;
  for (auto policy : {rt::Policy::kRm, rt::Policy::kDm, rt::Policy::kLlf}) {
    const bool other_ok = rt::simulate(ts, policy, horizon).miss_count() == 0;
    if (other_ok) {
      EXPECT_TRUE(edf_ok) << "policy beat EDF";
    }
  }
  // Consistency with the analytical test for implicit deadlines.
  if (ts.utilization() <= 1.0) {
    EXPECT_TRUE(edf_ok);
  }
}

}  // namespace
}  // namespace rtg
