// End-to-end flows spanning the whole stack: spec text -> model ->
// synthesis (both process-based and latency scheduling) -> run-time
// executive -> verification, exercising the complete pipeline the paper
// describes as its software-automation strategy.
#include <gtest/gtest.h>

#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/multiproc.hpp"
#include "core/runtime.hpp"
#include "core/synthesis.hpp"
#include "rt/analysis.hpp"
#include "rt/scheduler.hpp"
#include "sim/rng.hpp"
#include "spec/compile.hpp"

namespace rtg {
namespace {

using Time = sim::Time;

constexpr const char* kControlSpec = R"(
element fx
element fy
element fz
element fs weight 2
element fk
channel fx -> fs -> fk
channel fy -> fs
channel fz -> fs
channel fk -> fs
constraint X periodic period 20 deadline 20 { fx -> fs -> fk }
constraint Y periodic period 40 deadline 40 { fy -> fs -> fk }
constraint Z sporadic separation 50 deadline 25 { fz -> fs }
)";

TEST(EndToEnd, SpecMatchesProgrammaticControlSystem) {
  const spec::CompileResult compiled = spec::compile_text(kControlSpec);
  ASSERT_TRUE(compiled.ok());
  const core::GraphModel programmatic = core::make_control_system();
  EXPECT_EQ(compiled.model->comm().size(), programmatic.comm().size());
  EXPECT_EQ(compiled.model->constraint_count(), programmatic.constraint_count());
  for (std::size_t i = 0; i < programmatic.constraint_count(); ++i) {
    EXPECT_EQ(compiled.model->constraint(i).period, programmatic.constraint(i).period);
    EXPECT_EQ(compiled.model->constraint(i).deadline,
              programmatic.constraint(i).deadline);
    EXPECT_EQ(compiled.model->constraint(i).task_graph.size(),
              programmatic.constraint(i).task_graph.size());
  }
}

TEST(EndToEnd, SpecToScheduleToExecutive) {
  const spec::CompileResult compiled = spec::compile_text(kControlSpec);
  ASSERT_TRUE(compiled.ok());

  const core::HeuristicResult h = core::latency_schedule(*compiled.model);
  ASSERT_TRUE(h.success) << h.failure_reason;

  sim::Rng rng(12);
  core::ConstraintArrivals arrivals(3);
  arrivals[2] = rt::random_arrivals(50, 3000, 30.0, rng);
  const core::ExecutiveResult run =
      core::run_executive(*h.schedule, h.scheduled_model, arrivals, 3200);
  EXPECT_TRUE(run.all_met);
  EXPECT_GT(run.invocations.size(), 100u);
}

TEST(EndToEnd, ProcessSynthesisPathAlsoWorks) {
  const core::GraphModel model = core::make_control_system();
  const core::ProcessSynthesis procs = core::synthesize_processes(model, true);
  ASSERT_TRUE(rt::edf_schedulable(procs.task_set));

  // Simulate the process set under EDF with worst-case sporadic Z.
  rt::ArrivalStreams arrivals(procs.task_set.size());
  arrivals[2] = rt::max_rate_arrivals(50, 400);
  const rt::SimResult sim =
      rt::simulate(procs.task_set, rt::Policy::kEdf, 400, &arrivals);
  EXPECT_EQ(sim.miss_count(), 0u);
}

TEST(EndToEnd, LatencySchedulingSharesWorkProcessModelDuplicates) {
  // The paper's p_x = p_y observation: process synthesis executes f_s
  // (and f_k) twice per period, the coalesced latency schedule once.
  core::CommGraph comm;
  const auto fx = comm.add_element("fx", 1);
  const auto fy = comm.add_element("fy", 1);
  const auto fs = comm.add_element("fs", 2);
  const auto fk = comm.add_element("fk", 1);
  comm.add_channel(fx, fs);
  comm.add_channel(fy, fs);
  comm.add_channel(fs, fk);
  core::GraphModel model(std::move(comm));
  for (auto [name, in] : {std::pair{"X", fx}, std::pair{"Y", fy}}) {
    core::TaskGraph tg;
    const auto a = tg.add_op(in);
    const auto b = tg.add_op(fs);
    const auto c = tg.add_op(fk);
    tg.add_dep(a, b);
    tg.add_dep(b, c);
    model.add_constraint(
        core::TimingConstraint{name, std::move(tg), 24, 24,
                               core::ConstraintKind::kPeriodic});
  }

  const core::ProcessSynthesis procs = core::synthesize_processes(model);
  const double process_busy =
      static_cast<double>(procs.work_per_hyperperiod) /
      static_cast<double>(procs.hyperperiod);  // (4 + 4) / 24

  core::HeuristicOptions opts;
  opts.coalesce = true;
  const core::HeuristicResult h = core::latency_schedule(model, opts);
  ASSERT_TRUE(h.success) << h.failure_reason;
  // Coalesced: fx + fy + fs + fk once per 24 slots = 5/24 < 8/24.
  EXPECT_LT(h.schedule->utilization(), process_busy);
  // fs executes once per period, not twice.
  const auto fs0 = h.scheduled_model.comm().find("fs/0");
  ASSERT_TRUE(fs0.has_value());
  EXPECT_EQ(static_cast<Time>(h.schedule->ops_of(*fs0).size()) * 24,
            h.schedule->length());
}

TEST(EndToEnd, ExactSolverConfirmsHeuristicOnTinyModel) {
  // A tiny async model where both engines apply: heuristic succeeds =>
  // exact must agree feasible.
  core::CommGraph comm;
  comm.add_element("a", 1, false);
  comm.add_element("b", 1, false);
  core::GraphModel model(std::move(comm));
  core::TaskGraph ta;
  ta.add_op(0);
  core::TaskGraph tb;
  tb.add_op(1);
  model.add_constraint(
      core::TimingConstraint{"A", ta, 1, 4, core::ConstraintKind::kAsynchronous});
  model.add_constraint(
      core::TimingConstraint{"B", tb, 1, 4, core::ConstraintKind::kAsynchronous});

  const core::HeuristicResult h = core::latency_schedule(model);
  const core::ExactResult exact = core::exact_feasible(model);
  EXPECT_TRUE(h.success);
  EXPECT_EQ(exact.status, core::FeasibilityStatus::kFeasible);
}

TEST(EndToEnd, MultiprocessorControlSystem) {
  core::ControlSystemParams params;
  params.px = params.dx = 40;
  params.py = params.dy = 80;
  params.pz = 120;
  params.dz = 60;
  const core::GraphModel model = core::make_control_system(params);
  for (std::size_t m : {1u, 2u}) {
    core::MultiprocOptions options;
    options.processors = m;
    const core::MultiprocResult r = core::multiproc_schedule(model, options);
    EXPECT_TRUE(r.success) << "m=" << m << ": " << r.failure_reason;
  }
}

TEST(EndToEnd, InfeasibleSpecDiagnosedBeforeRuntime) {
  const spec::CompileResult compiled = spec::compile_text(
      "element a weight 4 nopipeline\n"
      "constraint C sporadic separation 2 deadline 4 { a }\n");
  ASSERT_TRUE(compiled.ok());
  const core::HeuristicResult h = core::latency_schedule(*compiled.model);
  EXPECT_FALSE(h.success);
  EXPECT_FALSE(h.failure_reason.empty());
}

}  // namespace
}  // namespace rtg
