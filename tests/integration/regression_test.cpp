// Golden regression tests: pinned end-to-end numbers for the paper's
// control system and the hardness gadgets. All algorithms involved are
// deterministic (fixed seeds, deterministic tie-breaks), so any change
// to these values is a behavioural change that should be deliberate.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/npc.hpp"
#include "core/optimize.hpp"
#include "core/synthesis.hpp"

namespace rtg {
namespace {

using Time = sim::Time;

TEST(Golden, ControlSystemSynthesis) {
  const core::GraphModel model = core::make_control_system();
  EXPECT_NEAR(model.deadline_utilization(), 0.42, 1e-9);
  // fx 1/20 + fy 1/40 + fz 1/25 + fs 2*max-rate 1/20 + fk 1/20.
  EXPECT_NEAR(core::demand_density(model), 0.265, 1e-9);

  const core::HeuristicResult h = core::latency_schedule(model);
  ASSERT_TRUE(h.success);
  EXPECT_EQ(h.schedule->length(), 520);  // lcm(20, 40, ceil(25/2)=13)
  EXPECT_EQ(h.schedule->busy(), 276);
  ASSERT_TRUE(h.report.verdicts[2].latency.has_value());
  EXPECT_EQ(*h.report.verdicts[2].latency, 15);  // Z
}

TEST(Golden, ControlSystemHarmonizationCostsTooMuch) {
  // Harmonization converts periodic constraints to deadline-rate
  // servers: X jumps from 4/20 to 4/8, and the set overflows
  // (4/8 + 4/16 + 3/8 = 1.125 > 1). The option trades utilization for
  // short hyperperiods and is the wrong tool here — the failure is the
  // pinned behaviour.
  const core::GraphModel model = core::make_control_system();
  core::HeuristicOptions options;
  options.harmonize_periods = true;
  const core::HeuristicResult h = core::latency_schedule(model, options);
  EXPECT_FALSE(h.success);
  EXPECT_NE(h.failure_reason.find("demand-bound"), std::string::npos);
}

TEST(Golden, ControlSystemProcessSynthesis) {
  const core::GraphModel model = core::make_control_system();
  const core::ProcessSynthesis procs = core::synthesize_processes(model);
  EXPECT_EQ(procs.hyperperiod, 200);  // lcm(20, 40, 50)
  EXPECT_EQ(procs.work_per_hyperperiod, 10 * 4 + 5 * 4 + 4 * 3);
  EXPECT_EQ(procs.monitors.size(), 2u);  // fs, fk
}

TEST(Golden, ExactGameBoundaryInstance) {
  // Three unit constraints at deadline 3: the LRU-guided game closes a
  // cycle after exactly 6 states.
  core::CommGraph comm;
  for (int i = 0; i < 3; ++i) {
    comm.add_element("e" + std::to_string(i), 1, false);
  }
  core::GraphModel model(std::move(comm));
  for (core::ElementId e = 0; e < 3; ++e) {
    core::TaskGraph tg;
    tg.add_op(e);
    model.add_constraint(core::TimingConstraint{
        "c" + std::to_string(e), std::move(tg), 1, 3,
        core::ConstraintKind::kAsynchronous});
  }
  const core::ExactResult r = core::exact_feasible(model);
  ASSERT_EQ(r.status, core::FeasibilityStatus::kFeasible);
  EXPECT_EQ(r.states_explored, 6u);
  EXPECT_EQ(r.schedule->length(), 3);
  EXPECT_EQ(r.schedule->busy(), 3);
}

TEST(Golden, ThreePartitionGadgetShape) {
  core::ThreePartitionInstance inst;
  inst.bins = 2;
  inst.capacity = 8;
  inst.items = {3, 3, 2, 4, 2, 2};
  ASSERT_TRUE(inst.balanced());
  ASSERT_TRUE(core::solve_three_partition(inst));

  const core::GraphModel model = core::three_partition_model(inst);
  EXPECT_EQ(model.constraint_count(), 7u);
  EXPECT_EQ(model.constraint(0).deadline, 9);
  EXPECT_EQ(model.constraint(1).deadline, 18 + 3 - 1);

  const core::ExactResult r = core::exact_feasible(model);
  ASSERT_EQ(r.status, core::FeasibilityStatus::kFeasible);
  EXPECT_TRUE(core::verify_schedule(*r.schedule, model).feasible);
  // The packing schedule occupies 2 gates + 16 item slots per cycle 18.
  EXPECT_EQ(r.schedule->length() % 18, 0);
}

TEST(Golden, OptimizerOnControlSystem) {
  const core::GraphModel model = core::make_control_system();
  const core::HeuristicResult h = core::latency_schedule(model);
  ASSERT_TRUE(h.success);
  core::OptimizeStats stats;
  const core::StaticSchedule lean =
      core::optimize_schedule(*h.schedule, h.scheduled_model, &stats);
  EXPECT_TRUE(core::verify_schedule(lean, h.scheduled_model).feasible);
  // The Z server over-polls (period 13 for deadline 25): compaction
  // must find something to remove.
  EXPECT_GT(stats.executions_removed, 0u);
  EXPECT_LT(lean.busy(), h.schedule->busy());
}

}  // namespace
}  // namespace rtg
