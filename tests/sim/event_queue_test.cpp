#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rtg::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.push(5, 50);
  q.push(1, 10);
  q.push(3, 30);
  EXPECT_EQ(q.next_time(), 1);
  EXPECT_EQ(q.pop(), (std::pair<Time, int>{1, 10}));
  EXPECT_EQ(q.pop(), (std::pair<Time, int>{3, 30}));
  EXPECT_EQ(q.pop(), (std::pair<Time, int>{5, 50}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAtEqualTimes) {
  EventQueue<std::string> q;
  q.push(2, "first");
  q.push(2, "second");
  q.push(2, "third");
  EXPECT_EQ(q.pop().second, "first");
  EXPECT_EQ(q.pop().second, "second");
  EXPECT_EQ(q.pop().second, "third");
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue<int> q;
  q.push(10, 1);
  q.push(20, 2);
  EXPECT_EQ(q.pop().second, 1);
  q.push(15, 3);
  EXPECT_EQ(q.pop().second, 3);
  EXPECT_EQ(q.pop().second, 2);
}

TEST(EventQueue, NegativeTimesAllowed) {
  EventQueue<int> q;
  q.push(-5, 1);
  q.push(0, 2);
  EXPECT_EQ(q.pop().first, -5);
}

TEST(EventQueue, ClearResets) {
  EventQueue<int> q;
  q.push(1, 1);
  q.push(2, 2);
  q.clear();
  EXPECT_TRUE(q.empty());
  // FIFO sequence restarts after clear.
  q.push(7, 10);
  q.push(7, 11);
  EXPECT_EQ(q.pop().second, 10);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i, i);
  EXPECT_EQ(q.size(), 10u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 9u);
}

}  // namespace
}  // namespace rtg::sim
