#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtg::sim {
namespace {

TEST(Engine, ClockStartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_TRUE(engine.idle());
}

TEST(Engine, RunsEventsInOrder) {
  Engine engine;
  std::vector<Time> fired;
  engine.schedule_at(5, [&](Engine& e) { fired.push_back(e.now()); });
  engine.schedule_at(2, [&](Engine& e) { fired.push_back(e.now()); });
  engine.schedule_at(9, [&](Engine& e) { fired.push_back(e.now()); });
  EXPECT_EQ(engine.run_all(), 3u);
  EXPECT_EQ(fired, (std::vector<Time>{2, 5, 9}));
  EXPECT_EQ(engine.now(), 9);
}

TEST(Engine, CallbacksCanScheduleMore) {
  Engine engine;
  int count = 0;
  std::function<void(Engine&)> tick = [&](Engine& e) {
    ++count;
    if (count < 5) e.schedule_after(3, tick);
  };
  engine.schedule_at(0, tick);
  engine.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(engine.now(), 12);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine engine;
  std::vector<Time> fired;
  for (Time t : {1, 4, 7, 10}) {
    engine.schedule_at(t, [&](Engine& e) { fired.push_back(e.now()); });
  }
  EXPECT_EQ(engine.run_until(7), 3u);
  EXPECT_EQ(fired, (std::vector<Time>{1, 4, 7}));
  EXPECT_EQ(engine.now(), 7);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  EXPECT_EQ(engine.run_until(100), 0u);
  EXPECT_EQ(engine.now(), 100);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule_at(10, [](Engine&) {});
  engine.run_all();
  EXPECT_THROW(engine.schedule_at(5, [](Engine&) {}), std::invalid_argument);
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3, [&](Engine&) { order.push_back(1); });
  engine.schedule_at(3, [&](Engine&) { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  Time observed = -1;
  engine.schedule_at(4, [&](Engine& e) {
    e.schedule_after(6, [&](Engine& inner) { observed = inner.now(); });
  });
  engine.run_all();
  EXPECT_EQ(observed, 10);
}

}  // namespace
}  // namespace rtg::sim
