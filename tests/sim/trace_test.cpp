#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rtg::sim {
namespace {

TEST(ExecutionTrace, StartsEmpty) {
  ExecutionTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.utilization(), 0.0);
}

TEST(ExecutionTrace, AppendAndIndex) {
  ExecutionTrace trace;
  trace.append(3);
  trace.append_idle();
  trace.append(1);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], 3u);
  EXPECT_EQ(trace[1], kIdle);
  EXPECT_EQ(trace[2], 1u);
}

TEST(ExecutionTrace, AppendRunExpandsToSlots) {
  ExecutionTrace trace;
  trace.append_run(7, 3);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.count(7), 3u);
}

TEST(ExecutionTrace, AppendIdleCount) {
  ExecutionTrace trace;
  trace.append_idle(4);
  EXPECT_EQ(trace.idle_count(), 4u);
}

TEST(ExecutionTrace, UtilizationFraction) {
  ExecutionTrace trace;
  trace.append_run(0, 3);
  trace.append_idle(1);
  EXPECT_DOUBLE_EQ(trace.utilization(), 0.75);
}

TEST(ExecutionTrace, CountPerElement) {
  ExecutionTrace trace({0, 1, 0, kIdle, 0});
  EXPECT_EQ(trace.count(0), 3u);
  EXPECT_EQ(trace.count(1), 1u);
  EXPECT_EQ(trace.count(9), 0u);
  EXPECT_EQ(trace.idle_count(), 1u);
}

TEST(ExecutionTrace, WindowView) {
  ExecutionTrace trace({0, 1, 2, 3, 4});
  const auto w = trace.window(1, 4);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], 1u);
  EXPECT_EQ(w[2], 3u);
}

TEST(ExecutionTrace, WindowBadRangeThrows) {
  ExecutionTrace trace({0, 1});
  EXPECT_THROW((void)trace.window(1, 5), std::out_of_range);
  EXPECT_THROW((void)trace.window(2, 1), std::out_of_range);
}

TEST(ExecutionTrace, AtBoundsChecked) {
  ExecutionTrace trace({0});
  EXPECT_EQ(trace.at(0), 0u);
  EXPECT_THROW((void)trace.at(1), std::out_of_range);
}

TEST(ExecutionTrace, ToStringWithNames) {
  ExecutionTrace trace({0, kIdle, 1});
  const std::vector<std::string> names{"fx", "fs"};
  EXPECT_EQ(trace.to_string(names), "fx . fs");
}

TEST(ExecutionTrace, ToStringFallsBackToIds) {
  ExecutionTrace trace({5, kIdle});
  EXPECT_EQ(trace.to_string(), "5 .");
}

TEST(ExecutionTrace, EqualityIsSlotwise) {
  ExecutionTrace a({0, 1});
  ExecutionTrace b({0, 1});
  ExecutionTrace c({1, 0});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace rtg::sim
