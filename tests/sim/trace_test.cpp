#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rtg::sim {
namespace {

TEST(ExecutionTrace, StartsEmpty) {
  ExecutionTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.utilization(), 0.0);
}

TEST(ExecutionTrace, AppendAndIndex) {
  ExecutionTrace trace;
  trace.append(3);
  trace.append_idle();
  trace.append(1);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], 3u);
  EXPECT_EQ(trace[1], kIdle);
  EXPECT_EQ(trace[2], 1u);
}

TEST(ExecutionTrace, AppendRunExpandsToSlots) {
  ExecutionTrace trace;
  trace.append_run(7, 3);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.count(7), 3u);
}

TEST(ExecutionTrace, AppendIdleCount) {
  ExecutionTrace trace;
  trace.append_idle(4);
  EXPECT_EQ(trace.idle_count(), 4u);
}

TEST(ExecutionTrace, UtilizationFraction) {
  ExecutionTrace trace;
  trace.append_run(0, 3);
  trace.append_idle(1);
  EXPECT_DOUBLE_EQ(trace.utilization(), 0.75);
}

TEST(ExecutionTrace, CountPerElement) {
  ExecutionTrace trace({0, 1, 0, kIdle, 0});
  EXPECT_EQ(trace.count(0), 3u);
  EXPECT_EQ(trace.count(1), 1u);
  EXPECT_EQ(trace.count(9), 0u);
  EXPECT_EQ(trace.idle_count(), 1u);
}

TEST(ExecutionTrace, WindowView) {
  ExecutionTrace trace({0, 1, 2, 3, 4});
  const auto w = trace.window(1, 3);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], 1u);
  EXPECT_EQ(w[2], 3u);
}

TEST(ExecutionTrace, WindowBadRangeThrows) {
  ExecutionTrace trace({0, 1});
  EXPECT_THROW((void)trace.window(1, 2), std::out_of_range);
  EXPECT_THROW((void)trace.window(3, 0), std::out_of_range);
  EXPECT_THROW((void)trace.window(0, 3), std::out_of_range);
}

TEST(ExecutionTrace, WindowEdgeCases) {
  const ExecutionTrace empty;
  EXPECT_EQ(empty.window(0, 0).size(), 0u);
  EXPECT_THROW((void)empty.window(0, 1), std::out_of_range);
  EXPECT_THROW((void)empty.window(1, 0), std::out_of_range);

  ExecutionTrace trace({0, 1, 2});
  // An empty window may sit at any position up to and including size().
  EXPECT_EQ(trace.window(3, 0).size(), 0u);
  const auto whole = trace.window(0, 3);
  ASSERT_EQ(whole.size(), 3u);
  EXPECT_EQ(whole[2], 2u);
}

TEST(ExecutionTrace, RunsOfEmptyTrace) {
  const ExecutionTrace trace;
  EXPECT_EQ(trace.runs().begin(), trace.runs().end());
}

TEST(ExecutionTrace, RunsTileTheTrace) {
  ExecutionTrace trace({2, 2, kIdle, kIdle, kIdle, 1, 2, 2});
  std::vector<TraceRun> runs;
  for (const TraceRun& run : trace.runs()) runs.push_back(run);
  const std::vector<TraceRun> expected{
      {2, 0, 2}, {kIdle, 2, 3}, {1, 5, 1}, {2, 6, 2}};
  EXPECT_EQ(runs, expected);

  std::size_t covered = 0;
  for (const TraceRun& run : runs) {
    EXPECT_EQ(run.begin, covered);
    covered += run.length;
  }
  EXPECT_EQ(covered, trace.size());
}

TEST(ExecutionTrace, RunsSingleRun) {
  ExecutionTrace trace;
  trace.append_run(4, 5);
  auto it = trace.runs().begin();
  ASSERT_NE(it, trace.runs().end());
  EXPECT_EQ(*it, (TraceRun{4, 0, 5}));
  EXPECT_EQ(++it, trace.runs().end());
}

TEST(TraceSinkAdapters, AppenderAndFanOut) {
  ExecutionTrace a;
  ExecutionTrace b;
  TraceAppender to_a(a);
  TraceAppender to_b(b);
  FanOutSink fan({&to_a, &to_b});
  const std::vector<Slot> slots{0, kIdle, 1};
  fan.on_slots(slots);
  EXPECT_EQ(a, ExecutionTrace({0, kIdle, 1}));
  EXPECT_EQ(a, b);
}

TEST(ExecutionTrace, AtBoundsChecked) {
  ExecutionTrace trace({0});
  EXPECT_EQ(trace.at(0), 0u);
  EXPECT_THROW((void)trace.at(1), std::out_of_range);
}

TEST(ExecutionTrace, ToStringWithNames) {
  ExecutionTrace trace({0, kIdle, 1});
  const std::vector<std::string> names{"fx", "fs"};
  EXPECT_EQ(trace.to_string(names), "fx . fs");
}

TEST(ExecutionTrace, ToStringFallsBackToIds) {
  ExecutionTrace trace({5, kIdle});
  EXPECT_EQ(trace.to_string(), "5 .");
}

TEST(ExecutionTrace, EqualityIsSlotwise) {
  ExecutionTrace a({0, 1});
  ExecutionTrace b({0, 1});
  ExecutionTrace c({1, 0});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace rtg::sim
