#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rtg::sim {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator acc;
  acc.add(4.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 4.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator acc;
  acc.add(-3.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), -3.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.5), 2.5);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 1.0), 9.0);
}

TEST(Percentile, OutOfRangeThrows) {
  EXPECT_THROW((void)percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 1.1), std::invalid_argument);
}

TEST(Histogram, BinsCounts) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.9);   // bin 4
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 5.0);
  EXPECT_THROW((void)h.bin_lo(4), std::out_of_range);
}

TEST(Histogram, BadConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace rtg::sim
