#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rtg::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform(-5, 9);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 9);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform(42, 42), 42);
  }
}

TEST(Rng, UniformCoversAllValuesEventually) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000 && seen.size() < 6; ++i) {
    seen.insert(rng.uniform(0, 5));
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformApproximatelyUnbiased) {
  Rng rng(13);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform(0, 3))];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ChanceZeroAndOne) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Splitmix, SequenceIsDeterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace rtg::sim
