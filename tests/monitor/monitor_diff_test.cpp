// Differential suite for the streaming monitor (the tentpole's
// correctness contract): on any finite trace the online verdicts must
// be bit-identical to naive offline per-window verification
// (reference_check), and monitoring a schedule's own round-robin trace
// must agree with verify_schedule's flat reference verdict per
// constraint. Traces cover seeded random models, injected overruns,
// randomly dropped slots, and the multi-threaded capture path.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/runtime.hpp"
#include "core/static_schedule.hpp"
#include "graph/generators.hpp"
#include "monitor/streaming_monitor.hpp"
#include "monitor/trace_capture.hpp"
#include "rt/task.hpp"
#include "sim/rng.hpp"

namespace rtg::monitor {
namespace {

using core::ConstraintKind;
using core::ElementId;
using core::GraphModel;
using core::ScheduledOp;
using core::StaticSchedule;
using core::TaskGraph;
using core::TimingConstraint;

graph::Digraph random_digraph(sim::Rng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0:
      return graph::make_chain(rng.uniform(1, 4));
    case 1:
      return graph::make_fork_join(rng.uniform(1, 3));
    case 2:
      return graph::make_random_dag(rng.uniform(1, 5), 0.4, rng);
    default:
      return graph::make_series_parallel(rng.uniform(1, 4), 0.5, rng);
  }
}

// Same recipe as the parallel differential suite: comm graph from the
// structured generators, task graphs as label-respecting walks.
GraphModel random_model(sim::Rng& rng, Time min_d, Time max_d) {
  const graph::Digraph dag = random_digraph(rng);
  core::CommGraph comm;
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    comm.add_element("e" + std::to_string(v), rng.uniform(1, 2));
  }
  for (const auto& e : dag.edges()) {
    comm.add_channel(static_cast<ElementId>(e.from), static_cast<ElementId>(e.to));
  }
  const std::size_t n = dag.node_count();
  GraphModel model(std::move(comm));

  const int k = static_cast<int>(rng.uniform(1, 3));
  for (int c = 0; c < k; ++c) {
    TaskGraph tg;
    graph::NodeId v = static_cast<graph::NodeId>(rng.uniform(0, n - 1));
    core::OpId prev = tg.add_op(static_cast<ElementId>(v));
    const int steps = static_cast<int>(rng.uniform(0, 2));
    for (int s = 0; s < steps; ++s) {
      const auto& succ = dag.successors(v);
      if (succ.empty()) break;
      v = succ[rng.uniform(0, succ.size() - 1)];
      const core::OpId op = tg.add_op(static_cast<ElementId>(v));
      tg.add_dep(prev, op);
      prev = op;
    }
    model.add_constraint(TimingConstraint{
        "c" + std::to_string(c), std::move(tg), rng.uniform(1, 6),
        rng.uniform(min_d, max_d),
        rng.chance(0.4) ? ConstraintKind::kPeriodic : ConstraintKind::kAsynchronous});
  }
  return model;
}

StaticSchedule random_schedule(sim::Rng& rng, const GraphModel& model) {
  StaticSchedule sched;
  const std::size_t n = model.comm().size();
  const int entries = static_cast<int>(rng.uniform(1, 12));
  for (int i = 0; i < entries; ++i) {
    if (rng.chance(0.25)) {
      sched.push_idle(rng.uniform(1, 3));
    } else {
      const auto e = static_cast<ElementId>(rng.uniform(0, n - 1));
      sched.push_execution(e, model.comm().weight(e));
    }
  }
  return sched;
}

// Random raw trace: arbitrary runs of valid element ids and idle,
// including partial runs that must be dropped by the decoder.
sim::ExecutionTrace random_trace(sim::Rng& rng, const GraphModel& model, Time slots) {
  sim::ExecutionTrace trace;
  const std::size_t n = model.comm().size();
  while (static_cast<Time>(trace.size()) < slots) {
    if (rng.chance(0.4)) {
      trace.append_idle(static_cast<std::size_t>(rng.uniform(1, 3)));
    } else {
      const auto e = static_cast<sim::Slot>(rng.uniform(0, n - 1));
      trace.append_run(e, static_cast<std::size_t>(rng.uniform(1, 3)));
    }
  }
  return trace;
}

void expect_monitor_matches_reference(const sim::ExecutionTrace& trace,
                                      const GraphModel& model,
                                      const std::string& context) {
  StreamingMonitor monitor(model);
  monitor.on_slots(trace.slots());
  const MonitorReport report = monitor.report();
  const ReferenceVerdict reference = reference_check(trace, model);
  ASSERT_EQ(report.horizon, reference.horizon) << context;
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    EXPECT_EQ(report.health[i].windows_checked, reference.checked[i])
        << context << " constraint " << i;
    EXPECT_EQ(report.violated_starts(i), reference.violated[i])
        << context << " constraint " << i;
  }
  EXPECT_TRUE(verdicts_match(report, reference)) << context;
}

class MonitorDiff : public ::testing::TestWithParam<std::uint64_t> {};

// >= 200 seeded instances, three trace shapes each.
INSTANTIATE_TEST_SUITE_P(Seeds, MonitorDiff, ::testing::Range<std::uint64_t>(0, 200));

TEST_P(MonitorDiff, RandomTraceMatchesOfflineReference) {
  sim::Rng rng(GetParam() * 6364136223846793005ULL + 99991ULL);
  const GraphModel model = random_model(rng, 1, 12);
  const sim::ExecutionTrace trace = random_trace(rng, model, rng.uniform(20, 120));
  expect_monitor_matches_reference(trace, model, "random trace");
}

TEST_P(MonitorDiff, OverrunTimelineMatchesOfflineReference) {
  sim::Rng rng(GetParam() * 2862933555777941757ULL + 7ULL);
  const GraphModel model = random_model(rng, 2, 10);
  const StaticSchedule sched = random_schedule(rng, model);
  if (sched.length() == 0) GTEST_SKIP() << "degenerate schedule";

  const Time horizon = rng.uniform(30, 90);
  core::OverrunModel overruns;
  overruns.probability = 0.3;
  overruns.magnitude = 2.0;
  overruns.seed = GetParam() + 1;

  // The slid timeline both as a recorded trace and slot-by-slot.
  const std::vector<ScheduledOp> nominal =
      core::unroll_ops(sched, static_cast<std::size_t>(horizon / sched.length() + 2));
  const std::vector<ScheduledOp> slid = core::inject_overruns(nominal, overruns);
  sim::ExecutionTrace trace;
  sim::TraceAppender appender(trace);
  core::emit_timeline(slid, horizon, appender);
  ASSERT_EQ(static_cast<Time>(trace.size()), horizon);
  expect_monitor_matches_reference(trace, model, "overrun timeline");
}

TEST_P(MonitorDiff, DroppedSlotsMatchOfflineReference) {
  sim::Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 3ULL);
  const GraphModel model = random_model(rng, 1, 12);
  const sim::ExecutionTrace full = random_trace(rng, model, rng.uniform(20, 120));
  // Capture losses surface downstream as idle substitutes; the monitor
  // must judge the degraded trace exactly as the offline checker does.
  std::vector<sim::Slot> degraded = full.slots();
  for (sim::Slot& s : degraded) {
    if (rng.chance(0.15)) s = sim::kIdle;
  }
  expect_monitor_matches_reference(sim::ExecutionTrace(degraded), model,
                                   "dropped slots");
}

// Monitoring the round-robin trace of a static schedule long enough to
// cover every window residue must agree per constraint with the offline
// schedule verifier's flat reference: satisfied <=> zero violated
// windows in the prefix.
TEST_P(MonitorDiff, AgreesWithVerifyScheduleOnCyclicTraces) {
  sim::Rng rng(GetParam() * 0xD1342543DE82EF95ULL + 11ULL);
  const GraphModel model = random_model(rng, 1, 12);
  const StaticSchedule sched = random_schedule(rng, model);
  if (sched.length() == 0) GTEST_SKIP() << "degenerate schedule";

  // Horizon covering every residue: async needs L + d; periodic needs
  // lcm(L, p) + d so invocation instants sweep all phases.
  Time needed = 0;
  for (const TimingConstraint& c : model.constraints()) {
    const Time span = c.periodic()
                          ? rt::lcm_checked(sched.length(), c.period) + c.deadline
                          : sched.length() + c.deadline;
    needed = std::max(needed, span);
  }
  if (needed > 4000) GTEST_SKIP() << "lcm blow-up";
  const auto reps = static_cast<std::size_t>((needed + sched.length() - 1) /
                                             sched.length());
  const sim::ExecutionTrace trace = sched.to_trace(reps);

  StreamingMonitor monitor(model);
  monitor.on_slots(trace.slots());
  const MonitorReport report = monitor.report();
  expect_monitor_matches_reference(trace, model, "cyclic trace");

  const core::FeasibilityReport offline =
      core::verify_schedule(sched, model, core::VerifyOptions{.flat_reference = true});
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    EXPECT_EQ(offline.verdicts[i].satisfied, report.violated_starts(i).empty())
        << "constraint " << i << " of seed " << GetParam();
  }
}

// The executive emits its own trace into the monitor: a feasible
// schedule must monitor clean over any horizon.
TEST(MonitorExecutive, ExecutiveTraceMonitorsClean) {
  sim::Rng rng(424242);
  for (int attempt = 0; attempt < 50; ++attempt) {
    const GraphModel model = random_model(rng, 4, 16);
    const StaticSchedule sched = random_schedule(rng, model);
    if (sched.length() == 0) continue;
    if (!core::verify_schedule(sched, model).feasible) continue;

    StreamingMonitor monitor(model);
    core::ConstraintArrivals arrivals(model.constraint_count());
    for (std::size_t i = 0; i < model.constraint_count(); ++i) {
      const TimingConstraint& c = model.constraint(i);
      if (!c.periodic()) {
        for (Time t = 0; t < 200; t += c.period) arrivals[i].push_back(t);
      }
    }
    const core::ExecutiveResult result =
        core::run_executive(sched, model, arrivals, 200, &monitor);
    EXPECT_TRUE(result.all_met);
    EXPECT_EQ(monitor.now(), 200);
    EXPECT_TRUE(monitor.report().ok())
        << "feasible schedule produced monitor violations";
  }
}

// Threaded capture path: a producer thread pushes the trace through a
// small ring (drops expected); the monitor's verdict over what was
// delivered must equal the offline verdict over the recorded delivery,
// and the drop accounting must balance.
TEST(MonitorCapture, ThreadedCaptureMatchesRecordedDelivery) {
  sim::Rng rng(20260806);
  for (int round = 0; round < 20; ++round) {
    const GraphModel model = random_model(rng, 1, 12);
    const sim::ExecutionTrace input = random_trace(rng, model, 4000);

    StreamingMonitor monitor(model);
    sim::ExecutionTrace recorded;
    sim::TraceAppender recorder(recorded);
    sim::FanOutSink fan({&recorder, &monitor});
    CaptureStats stats;
    {
      TraceCapture capture(fan, 64);
      std::thread producer([&] {
        for (const sim::Slot s : input.slots()) capture.on_slot(s);
        capture.close();
      });
      producer.join();
      stats = capture.stats();
    }

    EXPECT_EQ(stats.produced, input.size());
    EXPECT_EQ(stats.consumed + stats.dropped, stats.produced);
    ASSERT_EQ(recorded.size(), input.size());  // drops delivered as idle
    EXPECT_EQ(monitor.now(), static_cast<Time>(recorded.size()));
    EXPECT_TRUE(verdicts_match(monitor.report(), reference_check(recorded, model)));
  }
}

// With a ring larger than the input there is nothing to drop, and the
// delivery is the input bit for bit.
TEST(MonitorCapture, LosslessWhenRingFits) {
  sim::Rng rng(7);
  const GraphModel model = random_model(rng, 1, 12);
  const sim::ExecutionTrace input = random_trace(rng, model, 1000);

  sim::ExecutionTrace recorded;
  sim::TraceAppender recorder(recorded);
  TraceCapture capture(recorder, 2048);
  for (const sim::Slot s : input.slots()) capture.on_slot(s);
  capture.close();

  const CaptureStats stats = capture.stats();
  EXPECT_EQ(stats.produced, input.size());
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.consumed, input.size());
  EXPECT_EQ(recorded, input);
}

// Ring overflow surfaces into the monitor's health metrics: every slot
// the capture layer dropped is announced to note_dropped (on the drain
// thread, before the substituted idles), so the monitor's drop counter
// always equals the capture stats — whether or not the tiny ring
// actually overflowed in this run.
TEST(MonitorCapture, DropListenerFeedsMonitorHealth) {
  sim::Rng rng(31);
  const GraphModel model = random_model(rng, 1, 12);
  const sim::ExecutionTrace input = random_trace(rng, model, 50000);

  StreamingMonitor monitor(model);
  CaptureStats stats;
  {
    TraceCapture capture(monitor, 4);  // tiny ring: overflow expected
    capture.set_drop_listener([&monitor](std::uint64_t n) { monitor.note_dropped(n); });
    for (const sim::Slot s : input.slots()) capture.on_slot(s);
    capture.close();
    stats = capture.stats();
  }
  EXPECT_EQ(stats.consumed + stats.dropped, stats.produced);
  EXPECT_EQ(monitor.dropped_slots(), stats.dropped);
  EXPECT_EQ(monitor.now(), static_cast<Time>(input.size()));
  const MonitorReport report = monitor.report();
  EXPECT_EQ(report.dropped_slots, stats.dropped);
  // Sustained overflow (the expected case with a 4-slot ring) must have
  // raised at least one degraded-health event.
  if (stats.dropped >= 64 &&
      static_cast<double>(stats.dropped) >=
          0.01 * static_cast<double>(monitor.now() + static_cast<Time>(stats.dropped))) {
    EXPECT_TRUE(report.capture_degraded);
    EXPECT_GE(report.capture_events.size(), 1u);
  }
}

}  // namespace
}  // namespace rtg::monitor
