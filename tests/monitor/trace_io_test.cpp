// Tests for the .rtt binary trace format: round-trips, the streaming
// writer, model fingerprinting, and strict reader errors.
#include "monitor/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "sim/trace.hpp"

namespace rtg::monitor {
namespace {

using core::ConstraintKind;
using core::GraphModel;
using core::TaskGraph;
using core::TimingConstraint;

GraphModel small_model(core::Time deadline) {
  core::CommGraph comm;
  const auto a = comm.add_element("a", 1);
  const auto b = comm.add_element("b", 2);
  comm.add_channel(a, b);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const auto oa = tg.add_op(a);
  const auto ob = tg.add_op(b);
  tg.add_dep(oa, ob);
  model.add_constraint(
      TimingConstraint{"c", std::move(tg), 4, deadline, ConstraintKind::kAsynchronous});
  return model;
}

TEST(TraceIo, RoundTripPreservesTraceAndFingerprint) {
  sim::ExecutionTrace trace;
  trace.append_run(0, 3);
  trace.append_idle(5);
  trace.append(1);
  trace.append_idle(1);
  trace.append_run(0, 2);

  std::stringstream buffer;
  write_trace(buffer, trace, 0xDEADBEEFCAFEF00DULL);
  const RttFile file = read_trace(buffer);
  EXPECT_EQ(file.fingerprint, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(file.trace, trace);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  write_trace(buffer, sim::ExecutionTrace{}, 42);
  const RttFile file = read_trace(buffer);
  EXPECT_EQ(file.fingerprint, 42u);
  EXPECT_TRUE(file.trace.empty());
}

TEST(TraceIo, StreamingWriterMatchesBatchWriter) {
  sim::ExecutionTrace trace;
  trace.append_run(2, 4);
  trace.append_idle(2);
  trace.append(0);

  RttWriter writer(99);
  writer.on_slots(trace.slots());
  EXPECT_EQ(writer.slot_count(), trace.size());
  std::stringstream streamed;
  writer.finish(streamed);

  std::stringstream batch;
  write_trace(batch, trace, 99);
  EXPECT_EQ(streamed.str(), batch.str());
}

TEST(TraceIo, FingerprintSeparatesModels) {
  const GraphModel m1 = small_model(6);
  const GraphModel m2 = small_model(7);  // one deadline differs
  EXPECT_EQ(model_fingerprint(m1), model_fingerprint(small_model(6)));
  EXPECT_NE(model_fingerprint(m1), model_fingerprint(m2));
}

TEST(TraceIo, BadMagicThrows) {
  std::stringstream buffer("NOPE++++++++++++++++++++");
  EXPECT_THROW((void)read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, UnsupportedVersionThrows) {
  sim::ExecutionTrace trace({0, sim::kIdle});
  std::stringstream buffer;
  write_trace(buffer, trace, 1);
  std::string bytes = buffer.str();
  bytes[4] = 2;  // bump the version field
  std::stringstream bumped(bytes);
  EXPECT_THROW((void)read_trace(bumped), std::runtime_error);
}

TEST(TraceIo, TruncatedPayloadThrows) {
  sim::ExecutionTrace trace;
  trace.append_run(0, 10);
  trace.append_run(1, 10);
  std::stringstream buffer;
  write_trace(buffer, trace, 1);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() - 1));
  EXPECT_THROW((void)read_trace(truncated), std::runtime_error);
}

TEST(TraceIo, TrailingBytesThrow) {
  sim::ExecutionTrace trace({0, 0, sim::kIdle});
  std::stringstream buffer;
  write_trace(buffer, trace, 1);
  std::stringstream padded(buffer.str() + "x");
  EXPECT_THROW((void)read_trace(padded), std::runtime_error);
}

TEST(TraceIo, OverlongRunsThrow) {
  // Declare 2 slots but encode a run of 3.
  sim::ExecutionTrace trace({0, 0, 0});
  std::stringstream buffer;
  write_trace(buffer, trace, 1);
  std::string bytes = buffer.str();
  bytes[16] = 2;  // patch the slot count (little-endian u64 at offset 16)
  std::stringstream patched(bytes);
  EXPECT_THROW((void)read_trace(patched), std::runtime_error);
}

TEST(TraceIo, FileHelpersRoundTrip) {
  sim::ExecutionTrace trace;
  trace.append_run(1, 2);
  trace.append_idle(3);
  const std::string path = ::testing::TempDir() + "trace_io_test.rtt";
  write_trace_file(path, trace, 123);
  const RttFile file = read_trace_file(path);
  EXPECT_EQ(file.fingerprint, 123u);
  EXPECT_EQ(file.trace, trace);
  std::remove(path.c_str());
  EXPECT_THROW((void)read_trace_file(path), std::runtime_error);
}

}  // namespace
}  // namespace rtg::monitor
