// Tests for the .rtt binary trace format: round-trips, the streaming
// writer, model fingerprinting, and strict reader errors.
#include "monitor/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "sim/trace.hpp"

namespace rtg::monitor {
namespace {

using core::ConstraintKind;
using core::GraphModel;
using core::TaskGraph;
using core::TimingConstraint;

GraphModel small_model(core::Time deadline) {
  core::CommGraph comm;
  const auto a = comm.add_element("a", 1);
  const auto b = comm.add_element("b", 2);
  comm.add_channel(a, b);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const auto oa = tg.add_op(a);
  const auto ob = tg.add_op(b);
  tg.add_dep(oa, ob);
  model.add_constraint(
      TimingConstraint{"c", std::move(tg), 4, deadline, ConstraintKind::kAsynchronous});
  return model;
}

TEST(TraceIo, RoundTripPreservesTraceAndFingerprint) {
  sim::ExecutionTrace trace;
  trace.append_run(0, 3);
  trace.append_idle(5);
  trace.append(1);
  trace.append_idle(1);
  trace.append_run(0, 2);

  std::stringstream buffer;
  write_trace(buffer, trace, 0xDEADBEEFCAFEF00DULL);
  const RttFile file = read_trace(buffer);
  EXPECT_EQ(file.fingerprint, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(file.trace, trace);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  write_trace(buffer, sim::ExecutionTrace{}, 42);
  const RttFile file = read_trace(buffer);
  EXPECT_EQ(file.fingerprint, 42u);
  EXPECT_TRUE(file.trace.empty());
}

TEST(TraceIo, StreamingWriterMatchesBatchWriter) {
  sim::ExecutionTrace trace;
  trace.append_run(2, 4);
  trace.append_idle(2);
  trace.append(0);

  RttWriter writer(99);
  writer.on_slots(trace.slots());
  EXPECT_EQ(writer.slot_count(), trace.size());
  std::stringstream streamed;
  writer.finish(streamed);

  std::stringstream batch;
  write_trace(batch, trace, 99);
  EXPECT_EQ(streamed.str(), batch.str());
}

TEST(TraceIo, FingerprintSeparatesModels) {
  const GraphModel m1 = small_model(6);
  const GraphModel m2 = small_model(7);  // one deadline differs
  EXPECT_EQ(model_fingerprint(m1), model_fingerprint(small_model(6)));
  EXPECT_NE(model_fingerprint(m1), model_fingerprint(m2));
}

TEST(TraceIo, BadMagicThrows) {
  std::stringstream buffer("NOPE++++++++++++++++++++");
  EXPECT_THROW((void)read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, UnsupportedVersionThrows) {
  sim::ExecutionTrace trace({0, sim::kIdle});
  std::stringstream buffer;
  write_trace(buffer, trace, 1);
  std::string bytes = buffer.str();
  bytes[4] = 2;  // bump the version field
  std::stringstream bumped(bytes);
  EXPECT_THROW((void)read_trace(bumped), std::runtime_error);
}

TEST(TraceIo, TruncatedPayloadThrows) {
  sim::ExecutionTrace trace;
  trace.append_run(0, 10);
  trace.append_run(1, 10);
  std::stringstream buffer;
  write_trace(buffer, trace, 1);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() - 1));
  EXPECT_THROW((void)read_trace(truncated), std::runtime_error);
}

TEST(TraceIo, TrailingBytesThrow) {
  sim::ExecutionTrace trace({0, 0, sim::kIdle});
  std::stringstream buffer;
  write_trace(buffer, trace, 1);
  std::stringstream padded(buffer.str() + "x");
  EXPECT_THROW((void)read_trace(padded), std::runtime_error);
}

TEST(TraceIo, OverlongRunsThrow) {
  // Declare 2 slots but encode a run of 3.
  sim::ExecutionTrace trace({0, 0, 0});
  std::stringstream buffer;
  write_trace(buffer, trace, 1);
  std::string bytes = buffer.str();
  bytes[16] = 2;  // patch the slot count (little-endian u64 at offset 16)
  std::stringstream patched(bytes);
  EXPECT_THROW((void)read_trace(patched), std::runtime_error);
}

// --- Malformed-input corpus: the strict reader must always answer with
// --- a structured RttError — never crash, hang, or over-allocate. ------

std::string valid_bytes() {
  sim::ExecutionTrace trace;
  trace.append_run(0, 3);
  trace.append_idle(5);
  trace.append_run(1, 200);  // forces a two-byte length varint
  trace.append_idle(1);
  std::stringstream buffer;
  write_trace(buffer, trace, 0x1234567890ABCDEFULL);
  return buffer.str();
}

TEST(TraceIo, ErrorsCarryMachineReadableKinds) {
  const std::string good = valid_bytes();
  const auto kind_of = [](const std::string& bytes) {
    std::stringstream in(bytes);
    try {
      (void)read_trace(in);
    } catch (const RttError& e) {
      return e.kind();
    }
    return RttErrorKind::kIo;  // sentinel: "did not throw"
  };
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_EQ(kind_of(bad), RttErrorKind::kBadMagic);
  bad = good;
  bad[4] = 9;
  EXPECT_EQ(kind_of(bad), RttErrorKind::kBadVersion);
  EXPECT_EQ(kind_of(good + "x"), RttErrorKind::kTrailingBytes);
  EXPECT_EQ(kind_of(good.substr(0, good.size() - 1)), RttErrorKind::kTruncated);
  EXPECT_NE(rtt_error_kind_name(RttErrorKind::kMalformedVarint), "?");
}

TEST(TraceIo, TruncationAtEveryPrefixThrowsStructured) {
  const std::string good = valid_bytes();
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::stringstream in(good.substr(0, len));
    EXPECT_THROW((void)read_trace(in), RttError) << "prefix length " << len;
  }
}

TEST(TraceIo, OversizedLeb128Rejected) {
  // Header declaring one slot, then a symbol-code varint of ten 0xFF
  // bytes: the tenth byte would overflow a u64.
  std::string bytes = valid_bytes().substr(0, 16);
  bytes += std::string("\x01\x00\x00\x00\x00\x00\x00\x00", 8);  // count = 1
  bytes += std::string(10, static_cast<char>(0xFF));
  std::stringstream overflowing(bytes);
  try {
    (void)read_trace(overflowing);
    FAIL() << "overflowing varint accepted";
  } catch (const RttError& e) {
    EXPECT_EQ(e.kind(), RttErrorKind::kMalformedVarint);
  }
  // Eleven continuation bytes: structurally too long even with zero
  // payload bits.
  bytes = bytes.substr(0, 24) + std::string(10, static_cast<char>(0x80)) + '\x01';
  std::stringstream overlong(bytes);
  try {
    (void)read_trace(overlong);
    FAIL() << "overlong varint accepted";
  } catch (const RttError& e) {
    EXPECT_EQ(e.kind(), RttErrorKind::kMalformedVarint);
  }
}

TEST(TraceIo, HugeDeclaredCountRejectedBeforeAllocation) {
  // A 25-byte file claiming 2^60 slots must be refused up front.
  std::string bytes = valid_bytes().substr(0, 16);
  bytes += std::string("\x00\x00\x00\x00\x00\x00\x00\x10", 8);  // count = 2^60
  bytes += '\x00';
  std::stringstream in(bytes);
  try {
    (void)read_trace(in);
    FAIL() << "hostile slot count accepted";
  } catch (const RttError& e) {
    EXPECT_EQ(e.kind(), RttErrorKind::kTooLarge);
  }
  // Caller-supplied limits bind too.
  std::stringstream good(valid_bytes());
  RttReadLimits tight;
  tight.max_slots = 8;  // the valid trace has 209 slots
  EXPECT_THROW((void)read_trace(good, tight), RttError);
  std::stringstream good2(valid_bytes());
  RttReadLimits enough;
  enough.max_slots = 4096;
  EXPECT_EQ(read_trace(good2, enough).trace.size(), 209u);
}

TEST(TraceIo, BitFlipCorpusNeverCrashesOrOverAllocates) {
  const std::string good = valid_bytes();
  RttReadLimits limits;
  limits.max_slots = 4096;  // bound any accepted parse
  for (std::size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bytes = good;
      bytes[i] = static_cast<char>(bytes[i] ^ (1 << bit));
      std::stringstream in(bytes);
      try {
        const RttFile file = read_trace(in, limits);
        // A flip that still parses must respect the allocation bound.
        EXPECT_LE(file.trace.size(), limits.max_slots)
            << "byte " << i << " bit " << bit;
      } catch (const RttError&) {
        // Structured rejection is the expected outcome; anything else
        // (std::bad_alloc, segfault, hang) fails the test run itself.
      }
    }
  }
}

TEST(TraceIo, FileHelpersRoundTrip) {
  sim::ExecutionTrace trace;
  trace.append_run(1, 2);
  trace.append_idle(3);
  const std::string path = ::testing::TempDir() + "trace_io_test.rtt";
  write_trace_file(path, trace, 123);
  const RttFile file = read_trace_file(path);
  EXPECT_EQ(file.fingerprint, 123u);
  EXPECT_EQ(file.trace, trace);
  std::remove(path.c_str());
  EXPECT_THROW((void)read_trace_file(path), std::runtime_error);
}

}  // namespace
}  // namespace rtg::monitor
