// Unit tests for the online streaming monitor: verdicts, event
// coalescing, run decoding, and health metrics on hand-built models
// where the expected windows can be checked by eye.
#include "monitor/streaming_monitor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/model.hpp"
#include "sim/trace.hpp"

namespace rtg::monitor {
namespace {

using core::ConstraintKind;
using core::ElementId;
using core::GraphModel;
using core::TaskGraph;
using core::TimingConstraint;

// comm: a -> b, unit weights; one async chain constraint a -> b.
GraphModel chain_model(Time period, Time deadline, ConstraintKind kind) {
  core::CommGraph comm;
  const ElementId a = comm.add_element("a", 1);
  const ElementId b = comm.add_element("b", 1);
  comm.add_channel(a, b);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const auto oa = tg.add_op(a);
  const auto ob = tg.add_op(b);
  tg.add_dep(oa, ob);
  model.add_constraint(TimingConstraint{"chain", std::move(tg), period, deadline, kind});
  return model;
}

// The cyclic trace "a b . ." has latency 5 for the chain a -> b: the
// worst window starts at t = 1 and the next full chain finishes at 6.
TEST(StreamingMonitor, SatisfiedCyclicTrace) {
  const GraphModel model = chain_model(1, 5, ConstraintKind::kAsynchronous);
  StreamingMonitor monitor(model);
  sim::ExecutionTrace trace;
  sim::TraceAppender appender(trace);
  sim::FanOutSink fan({&appender, &monitor});
  for (int r = 0; r < 10; ++r) {
    fan.on_slots(std::vector<sim::Slot>{0, 1, sim::kIdle, sim::kIdle});
  }
  const MonitorReport report = monitor.report();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.horizon, 40);
  EXPECT_EQ(report.health[0].windows_checked, 36u);  // 40 - 5 + 1
  EXPECT_EQ(report.health[0].windows_violated, 0u);
  ASSERT_TRUE(report.health[0].min_slack.has_value());
  EXPECT_EQ(*report.health[0].min_slack, 0);  // the t = 1 window is tight
  EXPECT_TRUE(verdicts_match(report, reference_check(trace, model)));
}

// Tightening the deadline to 4 makes exactly the t = 1 (mod 4) windows
// fail; the monitor must report them as periodic single-window events
// coalescing into stride-1 runs only when adjacent.
TEST(StreamingMonitor, ViolationsMatchReferenceAndCoalesce) {
  const GraphModel model = chain_model(1, 4, ConstraintKind::kAsynchronous);
  StreamingMonitor monitor(model);
  sim::ExecutionTrace trace;
  sim::TraceAppender appender(trace);
  sim::FanOutSink fan({&appender, &monitor});
  for (int r = 0; r < 10; ++r) {
    fan.on_slots(std::vector<sim::Slot>{0, 1, sim::kIdle, sim::kIdle});
  }
  const MonitorReport report = monitor.report();
  EXPECT_FALSE(report.ok());
  const std::vector<Time> expected{1, 5, 9, 13, 17, 21, 25, 29, 33};
  EXPECT_EQ(report.violated_starts(0), expected);
  EXPECT_TRUE(verdicts_match(report, reference_check(trace, model)));
  // Isolated windows: one event each, no false coalescing.
  EXPECT_EQ(report.violations.size(), expected.size());
  for (const ViolationEvent& e : report.violations) {
    EXPECT_EQ(e.windows(), 1u);
    EXPECT_EQ(e.deadline, 4);
  }
}

// An outage (the trace goes permanently idle) produces one coalesced
// event whose range keeps extending, with a partial-embedding diagnosis.
TEST(StreamingMonitor, OutageCoalescesIntoOneEvent) {
  const GraphModel model = chain_model(1, 5, ConstraintKind::kAsynchronous);
  StreamingMonitor monitor(model);
  monitor.on_slots(std::vector<sim::Slot>{0, 1});  // one full chain
  for (int i = 0; i < 30; ++i) monitor.on_slot(sim::kIdle);
  const MonitorReport report = monitor.report();
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.violations.size(), 1u);
  const ViolationEvent& e = report.violations[0];
  EXPECT_EQ(e.first_begin, 1);  // t = 0 was served; t = 1 never is
  EXPECT_EQ(e.last_begin, 32 - 5);
  EXPECT_EQ(e.stride, 1);
  EXPECT_EQ(e.total_ops, 2u);
  EXPECT_EQ(e.matched_ops, 0u);  // at t = 1 nothing can still be placed
  // Bit-identity with the offline check on the same finite trace.
  std::vector<sim::Slot> slots{0, 1};
  slots.insert(slots.end(), 30, sim::kIdle);
  EXPECT_TRUE(verdicts_match(report, reference_check(sim::ExecutionTrace(slots), model)));
}

// Periodic constraints step by p: only invocation instants are windows,
// and events carry stride = p.
TEST(StreamingMonitor, PeriodicWindowsUseStride) {
  const GraphModel model = chain_model(4, 4, ConstraintKind::kPeriodic);
  StreamingMonitor monitor(model);
  sim::ExecutionTrace trace;
  sim::TraceAppender appender(trace);
  sim::FanOutSink fan({&appender, &monitor});
  // Period 0 serves the chain; later periods are idle -> every later
  // invocation misses.
  fan.on_slots(std::vector<sim::Slot>{0, 1, sim::kIdle, sim::kIdle});
  for (int i = 0; i < 20; ++i) fan.on_slot(sim::kIdle);
  const MonitorReport report = monitor.report();
  EXPECT_EQ(report.health[0].windows_checked, 6u);  // t = 0,4,...,20
  EXPECT_EQ(report.violated_starts(0), (std::vector<Time>{4, 8, 12, 16, 20}));
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].stride, 4);
  EXPECT_EQ(report.violations[0].windows(), 5u);
  EXPECT_TRUE(verdicts_match(report, reference_check(trace, model)));
}

// Weight-2 elements need two consecutive slots per execution; a partial
// trailing run is not an execution (same contract as ops_from_trace).
TEST(StreamingMonitor, WeightedRunDecoding) {
  core::CommGraph comm;
  const ElementId a = comm.add_element("a", 2);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(a);
  model.add_constraint(
      TimingConstraint{"solo", std::move(tg), 1, 3, ConstraintKind::kAsynchronous});

  StreamingMonitor complete(model);
  complete.on_slots(std::vector<sim::Slot>{a, a, sim::kIdle});
  EXPECT_TRUE(complete.report().ok());

  StreamingMonitor partial(model);
  partial.on_slots(std::vector<sim::Slot>{a, sim::kIdle, sim::kIdle});
  const MonitorReport report = partial.report();
  EXPECT_EQ(report.health[0].windows_checked, 1u);
  EXPECT_EQ(report.violated_starts(0), (std::vector<Time>{0}));

  // A triple run is one execution plus a dropped tail: floor(3/2).
  StreamingMonitor merged(model);
  merged.on_slots(std::vector<sim::Slot>{a, a, a});
  EXPECT_TRUE(merged.report().ok());  // window [0,3) holds the execution
}

TEST(StreamingMonitor, UnknownSymbolThrows) {
  const GraphModel model = chain_model(1, 4, ConstraintKind::kAsynchronous);
  StreamingMonitor monitor(model);
  EXPECT_THROW(monitor.on_slot(99), std::invalid_argument);
}

TEST(StreamingMonitor, HealthTracksUtilizationAndMemory) {
  const GraphModel model = chain_model(1, 5, ConstraintKind::kAsynchronous);
  StreamingMonitor monitor(model);
  for (int r = 0; r < 100; ++r) {
    monitor.on_slots(std::vector<sim::Slot>{0, 1, sim::kIdle, sim::kIdle});
  }
  const MonitorReport report = monitor.report();
  EXPECT_EQ(report.idle_slots, 200u);
  EXPECT_DOUBLE_EQ(report.idle_ratio(), 0.5);
  ASSERT_EQ(report.element_busy.size(), 2u);
  EXPECT_EQ(report.element_busy[0], 100u);
  EXPECT_EQ(report.element_busy[1], 100u);
  // Memory bound: the live buffer never holds more executions than fit
  // in one deadline-length span (d = 5 slots, unit weights -> <= d+1).
  EXPECT_LE(report.health[0].peak_buffered_ops, 6u);
  // Amortized cost: queries scale with executions, not windows.
  EXPECT_LE(report.health[0].embedding_queries, 2u * 200u + 2u);
  // Slack histogram covers at least every evaluable satisfied window.
  std::size_t histogram_total = 0;
  for (const std::size_t bucket : report.health[0].slack_histogram) {
    histogram_total += bucket;
  }
  EXPECT_GE(histogram_total, report.health[0].windows_checked);
}

TEST(StreamingMonitor, RejectsZeroSlackBuckets) {
  const GraphModel model = chain_model(1, 4, ConstraintKind::kAsynchronous);
  EXPECT_THROW(StreamingMonitor(model, MonitorOptions{.slack_buckets = 0}),
               std::invalid_argument);
}

// Feeding slot by slot and feeding via on_slots produce identical
// reports (on_slots is just a loop, but pin it).
TEST(StreamingMonitor, BatchAndSingleSlotAgree) {
  const GraphModel model = chain_model(3, 7, ConstraintKind::kPeriodic);
  const std::vector<sim::Slot> slots{0,         1, sim::kIdle, 0, sim::kIdle,
                                     sim::kIdle, 1, 0,         1, sim::kIdle};
  StreamingMonitor batched(model);
  batched.on_slots(slots);
  StreamingMonitor single(model);
  for (const sim::Slot s : slots) single.on_slot(s);
  EXPECT_EQ(batched.report().violations, single.report().violations);
  EXPECT_EQ(batched.report().health, single.report().health);
}

// --- Violation listener (the recovery hook) ----------------------------

TEST(StreamingMonitor, ViolationListenerFiresForEveryViolatedWindow) {
  const GraphModel model = chain_model(1, 4, ConstraintKind::kAsynchronous);
  StreamingMonitor monitor(model);
  struct Hit {
    std::size_t constraint;
    Time begin;
    Time deadline;
  };
  std::vector<Hit> hits;
  monitor.set_violation_listener([&hits](std::size_t c, Time b, Time d) {
    hits.push_back(Hit{c, b, d});
  });
  // 10 cycles of "a b . ." then an outage long enough to coalesce many
  // violated windows into one event.
  for (int r = 0; r < 10; ++r) {
    monitor.on_slots(std::vector<sim::Slot>{0, 1, sim::kIdle, sim::kIdle});
  }
  for (int i = 0; i < 12; ++i) monitor.on_slot(sim::kIdle);

  const MonitorReport report = monitor.report();
  const std::vector<Time> expected = report.violated_starts(0);
  ASSERT_FALSE(expected.empty());
  // One callback per violated window — including windows folded into a
  // coalesced event — with the constraint's deadline attached.
  ASSERT_EQ(hits.size(), expected.size());
  EXPECT_GT(hits.size(), report.violations.size());  // coalescing happened
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].constraint, 0u);
    EXPECT_EQ(hits[i].begin, expected[i]);
    EXPECT_EQ(hits[i].deadline, 4);
  }
}

// --- Capture-drop health (satellite: ring overflow surfaces) -----------

TEST(StreamingMonitor, NoteDroppedDegradesEdgeTriggered) {
  const GraphModel model = chain_model(1, 5, ConstraintKind::kAsynchronous);
  MonitorOptions options;
  options.drop_degrade_min = 4;
  options.drop_degrade_ratio = 0.1;
  StreamingMonitor monitor(model, options);
  const auto feed = [&monitor](int cycles) {
    for (int r = 0; r < cycles; ++r) {
      monitor.on_slots(std::vector<sim::Slot>{0, 1, sim::kIdle, sim::kIdle});
    }
  };

  feed(3);  // now = 12
  monitor.note_dropped(2);  // below min: healthy
  EXPECT_FALSE(monitor.capture_degraded());
  EXPECT_EQ(monitor.report().capture_events.size(), 0u);

  monitor.note_dropped(2);  // 4 drops vs 12 slots: degraded
  EXPECT_TRUE(monitor.capture_degraded());
  ASSERT_EQ(monitor.report().capture_events.size(), 1u);
  EXPECT_EQ(monitor.report().capture_events[0].at, 12);
  EXPECT_EQ(monitor.report().capture_events[0].dropped, 4u);

  monitor.note_dropped(1);  // still degraded: edge already reported
  EXPECT_EQ(monitor.report().capture_events.size(), 1u);

  feed(25);  // now = 112: ratio recovers below 0.1
  EXPECT_FALSE(monitor.capture_degraded());

  monitor.note_dropped(20);  // second sustained overflow: new edge
  EXPECT_TRUE(monitor.capture_degraded());
  const MonitorReport report = monitor.report();
  EXPECT_EQ(report.dropped_slots, 25u);
  EXPECT_TRUE(report.capture_degraded);
  ASSERT_EQ(report.capture_events.size(), 2u);
  EXPECT_EQ(report.capture_events[1].at, 112);
  EXPECT_EQ(report.capture_events[1].dropped, 25u);
}

}  // namespace
}  // namespace rtg::monitor
