#include "core/static_schedule.hpp"

#include <gtest/gtest.h>

namespace rtg::core {
namespace {

CommGraph comm_ab() {
  CommGraph g;
  g.add_element("a", 1);
  g.add_element("b", 2);
  return g;
}

TEST(StaticSchedule, EmptyBasics) {
  StaticSchedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.length(), 0);
  EXPECT_EQ(s.busy(), 0);
  EXPECT_EQ(s.utilization(), 0.0);
  EXPECT_TRUE(s.ops().empty());
}

TEST(StaticSchedule, LengthAndBusyAccounting) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(2);
  s.push_execution(1, 2);
  EXPECT_EQ(s.length(), 5);
  EXPECT_EQ(s.busy(), 3);
  EXPECT_DOUBLE_EQ(s.utilization(), 0.6);
}

TEST(StaticSchedule, OpsCarryStartTimes) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(2);
  s.push_execution(1, 2);
  const auto ops = s.ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0], (ScheduledOp{0, 0, 1}));
  EXPECT_EQ(ops[1], (ScheduledOp{1, 3, 2}));
  EXPECT_EQ(ops[1].finish(), 5);
}

TEST(StaticSchedule, OpsOfFiltersByElement) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_execution(1, 2);
  s.push_execution(0, 1);
  EXPECT_EQ(s.ops_of(0).size(), 2u);
  EXPECT_EQ(s.ops_of(1).size(), 1u);
  EXPECT_TRUE(s.ops_of(9).empty());
}

TEST(StaticSchedule, IdleRunsMerge) {
  StaticSchedule s;
  s.push_idle(1);
  s.push_idle(2);
  EXPECT_EQ(s.entries().size(), 1u);
  EXPECT_EQ(s.entries()[0].duration, 3);
}

TEST(StaticSchedule, RejectsBadPushes) {
  StaticSchedule s;
  EXPECT_THROW(s.push_execution(kIdleEntry, 1), std::invalid_argument);
  EXPECT_THROW(s.push_execution(0, 0), std::invalid_argument);
  EXPECT_THROW(s.push_idle(0), std::invalid_argument);
}

TEST(StaticSchedule, ToTraceRoundRobin) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(1);
  const auto trace = s.to_trace(2);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0], 0u);
  EXPECT_EQ(trace[1], sim::kIdle);
  EXPECT_EQ(trace[2], 0u);
  EXPECT_EQ(trace[3], sim::kIdle);
}

TEST(StaticSchedule, ToTraceExpandsWeights) {
  StaticSchedule s;
  s.push_execution(1, 2);
  const auto trace = s.to_trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0], 1u);
  EXPECT_EQ(trace[1], 1u);
}

TEST(StaticSchedule, ValidateAgainstComm) {
  const CommGraph g = comm_ab();
  StaticSchedule good;
  good.push_execution(0, 1);
  good.push_execution(1, 2);
  EXPECT_TRUE(good.validate(g).empty());

  StaticSchedule wrong_duration;
  wrong_duration.push_execution(1, 1);  // b has weight 2
  EXPECT_EQ(wrong_duration.validate(g).size(), 1u);

  StaticSchedule unknown;
  unknown.push_execution(9, 1);
  EXPECT_EQ(unknown.validate(g).size(), 1u);
}

TEST(StaticSchedule, ToStringRendersNamesAndIdle) {
  const CommGraph g = comm_ab();
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(2);
  s.push_execution(1, 2);
  EXPECT_EQ(s.to_string(g), "a . . b[2]");
}

TEST(StaticSchedule, Equality) {
  StaticSchedule a, b;
  a.push_execution(0, 1);
  b.push_execution(0, 1);
  EXPECT_EQ(a, b);
  b.push_idle(1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rtg::core
