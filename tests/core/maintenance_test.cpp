#include "core/maintenance.hpp"

#include <gtest/gtest.h>

#include "core/heuristic.hpp"

namespace rtg::core {
namespace {

TaskGraph single(ElementId e) {
  TaskGraph tg;
  tg.add_op(e);
  return tg;
}

GraphModel base_model(Time d_a = 8) {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"A", single(0), 4, d_a, ConstraintKind::kAsynchronous});
  return model;
}

struct Deployed {
  StaticSchedule schedule;
  GraphModel model;
};

Deployed deploy(const GraphModel& model) {
  const HeuristicResult h = latency_schedule(model);
  EXPECT_TRUE(h.success) << h.failure_reason;
  return Deployed{*h.schedule, h.scheduled_model};
}

TEST(Maintenance, UnchangedModelKeepsSchedule) {
  const GraphModel model = base_model();
  const Deployed d = deploy(model);
  const MaintenanceResult r = maintain_schedule(d.schedule, d.model, model);
  EXPECT_EQ(r.outcome, MaintenanceOutcome::kScheduleUnchanged);
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_EQ(*r.schedule, d.schedule);
  EXPECT_TRUE(r.violated.empty());
}

TEST(Maintenance, RelaxedDeadlineKeepsSchedule) {
  const Deployed d = deploy(base_model(8));
  const GraphModel relaxed = base_model(16);
  const MaintenanceResult r = maintain_schedule(d.schedule, d.model, relaxed);
  EXPECT_EQ(r.outcome, MaintenanceOutcome::kScheduleUnchanged);
}

TEST(Maintenance, TightenedDeadlineReschedules) {
  const Deployed d = deploy(base_model(16));  // sparse schedule
  const GraphModel tightened = base_model(4);
  const MaintenanceResult r = maintain_schedule(d.schedule, d.model, tightened);
  EXPECT_EQ(r.outcome, MaintenanceOutcome::kRescheduled);
  ASSERT_EQ(r.violated.size(), 1u);
  EXPECT_EQ(r.violated[0], 0u);
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_TRUE(verify_schedule(*r.schedule, r.scheduled_model).feasible);
}

TEST(Maintenance, AddedConstraintOnIdleElementReschedules) {
  const GraphModel model = base_model();
  const Deployed d = deploy(model);
  GraphModel extended = base_model();
  extended.add_constraint(
      TimingConstraint{"B", single(1), 6, 10, ConstraintKind::kAsynchronous});
  const MaintenanceResult r = maintain_schedule(d.schedule, d.model, extended);
  // The old schedule never runs b, so the new constraint fails -> reschedule.
  EXPECT_EQ(r.outcome, MaintenanceOutcome::kRescheduled);
  EXPECT_TRUE(verify_schedule(*r.schedule, r.scheduled_model).feasible);
}

TEST(Maintenance, RemovedConstraintKeepsSchedule) {
  GraphModel two = base_model();
  two.add_constraint(
      TimingConstraint{"B", single(1), 6, 10, ConstraintKind::kAsynchronous});
  const Deployed d = deploy(two);
  const GraphModel one = base_model();  // B dropped
  const MaintenanceResult r = maintain_schedule(d.schedule, d.model, one);
  EXPECT_EQ(r.outcome, MaintenanceOutcome::kScheduleUnchanged);
}

TEST(Maintenance, RenamedElementForcesReschedule) {
  const Deployed d = deploy(base_model());
  CommGraph comm;
  comm.add_element("alpha", 1);  // "a" renamed
  comm.add_element("b", 1);
  GraphModel renamed(std::move(comm));
  renamed.add_constraint(
      TimingConstraint{"A", single(0), 4, 8, ConstraintKind::kAsynchronous});
  const MaintenanceResult r = maintain_schedule(d.schedule, d.model, renamed);
  EXPECT_EQ(r.outcome, MaintenanceOutcome::kRescheduled);
  EXPECT_NE(r.detail.find("renamed"), std::string::npos);
}

TEST(Maintenance, ReweightedElementForcesReschedule) {
  const Deployed d = deploy(base_model());
  CommGraph comm;
  comm.add_element("a", 2);  // heavier now
  comm.add_element("b", 1);
  GraphModel heavier(std::move(comm));
  heavier.add_constraint(
      TimingConstraint{"A", single(0), 4, 8, ConstraintKind::kAsynchronous});
  const MaintenanceResult r = maintain_schedule(d.schedule, d.model, heavier);
  EXPECT_EQ(r.outcome, MaintenanceOutcome::kRescheduled);
}

TEST(Maintenance, ImpossibleRevisionFails) {
  const Deployed d = deploy(base_model());
  // Both elements demanded every slot: density 2 > 1, unschedulable.
  GraphModel impossible = base_model(1);
  impossible.add_constraint(
      TimingConstraint{"B", single(1), 4, 1, ConstraintKind::kAsynchronous});
  const MaintenanceResult r = maintain_schedule(d.schedule, d.model, impossible);
  EXPECT_EQ(r.outcome, MaintenanceOutcome::kFailed);
  ASSERT_FALSE(r.schedule.has_value());
  EXPECT_NE(r.detail.find("re-synthesis failed"), std::string::npos);
}

TEST(Maintenance, HarmonizedOptionsPropagate) {
  const GraphModel model = base_model(10);
  HeuristicOptions options;
  options.harmonize_periods = true;
  const HeuristicResult h = latency_schedule(model, options);
  ASSERT_TRUE(h.success) << h.failure_reason;
  // Harmonized server period = pow2_floor(ceil(10/2)) = 4.
  EXPECT_EQ(h.schedule->length(), 4);

  const MaintenanceResult r =
      maintain_schedule(*h.schedule, h.scheduled_model, model, options);
  EXPECT_EQ(r.outcome, MaintenanceOutcome::kScheduleUnchanged);
}

}  // namespace
}  // namespace rtg::core
