#include "core/latency.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>

#include "sim/rng.hpp"

namespace rtg::core {
namespace {

TaskGraph single(ElementId e) {
  TaskGraph tg;
  tg.add_op(e);
  return tg;
}

TaskGraph chain(std::initializer_list<ElementId> elems) {
  TaskGraph tg;
  OpId prev = graph::kInvalidNode;
  for (ElementId e : elems) {
    const OpId op = tg.add_op(e);
    if (prev != graph::kInvalidNode) tg.add_dep(prev, op);
    prev = op;
  }
  return tg;
}

// Independent brute-force reference: minimum makespan over all
// embeddings of tg into ops with starts >= t (exponential; tiny inputs
// only).
Time brute_completion(const TaskGraph& tg, const std::vector<ScheduledOp>& ops,
                      Time t) {
  constexpr Time kInf = std::numeric_limits<Time>::max();
  std::vector<int> assign(tg.size(), -1);
  Time best = kInf;
  auto consistent = [&](OpId v, std::size_t candidate) {
    if (ops[candidate].elem != tg.label(v)) return false;
    if (ops[candidate].start < t) return false;
    for (OpId u = 0; u < tg.size(); ++u) {
      if (assign[u] < 0) continue;
      if (static_cast<std::size_t>(assign[u]) == candidate) return false;  // injective
      if (tg.skeleton().has_edge(u, v) &&
          ops[static_cast<std::size_t>(assign[u])].finish() > ops[candidate].start) {
        return false;
      }
      if (tg.skeleton().has_edge(v, u) &&
          ops[candidate].finish() > ops[static_cast<std::size_t>(assign[u])].start) {
        return false;
      }
    }
    return true;
  };
  std::function<void(OpId, Time)> rec = [&](OpId v, Time makespan) {
    if (v == tg.size()) {
      best = std::min(best, makespan);
      return;
    }
    for (std::size_t k = 0; k < ops.size(); ++k) {
      if (!consistent(v, k)) continue;
      assign[v] = static_cast<int>(k);
      rec(v + 1, std::max(makespan, ops[k].finish()));
      assign[v] = -1;
    }
  };
  rec(0, t);
  return best;
}

TEST(EarliestEmbedding, SingleOp) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(1);
  const auto ops = unroll_ops(s, 3);
  EXPECT_EQ(earliest_embedding_finish(single(0), ops, 0), 1);
  EXPECT_EQ(earliest_embedding_finish(single(0), ops, 1), 3);
  EXPECT_EQ(earliest_embedding_finish(single(0), ops, 2), 3);
}

TEST(EarliestEmbedding, MissingElementIsNullopt) {
  StaticSchedule s;
  s.push_execution(0, 1);
  const auto ops = unroll_ops(s, 3);
  EXPECT_EQ(earliest_embedding_finish(single(1), ops, 0), std::nullopt);
}

TEST(EarliestEmbedding, EmptyTaskGraphFinishesImmediately) {
  StaticSchedule s;
  s.push_execution(0, 1);
  const auto ops = unroll_ops(s, 1);
  EXPECT_EQ(earliest_embedding_finish(TaskGraph{}, ops, 5), 5);
}

TEST(EarliestEmbedding, ChainRespectsPrecedence) {
  // Schedule "b a b": chain a -> b must use the *second* b.
  StaticSchedule s;
  s.push_execution(1, 1);
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  const auto ops = unroll_ops(s, 2);
  EXPECT_EQ(earliest_embedding_finish(chain({0, 1}), ops, 0), 3);
}

TEST(EarliestEmbedding, RepeatedLabelUsesDistinctOps) {
  // Chain a -> b -> a needs two distinct executions of a.
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  const auto ops = unroll_ops(s, 3);  // a@0 b@1 a@2 b@3 a@4 b@5
  EXPECT_EQ(earliest_embedding_finish(chain({0, 1, 0}), ops, 0), 3);
}

TEST(EarliestEmbedding, ForkJoinDag) {
  // tg: 0 -> {1, 2} -> 3 over schedule "0 1 2 3".
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  const OpId c = tg.add_op(2);
  const OpId d = tg.add_op(3);
  tg.add_dep(a, b);
  tg.add_dep(a, c);
  tg.add_dep(b, d);
  tg.add_dep(c, d);
  StaticSchedule s;
  for (ElementId e : {0, 1, 2, 3}) s.push_execution(e, 1);
  const auto ops = unroll_ops(s, 2);
  EXPECT_EQ(earliest_embedding_finish(tg, ops, 0), 4);
  // Starting at 1 wraps to the next period entirely.
  EXPECT_EQ(earliest_embedding_finish(tg, ops, 1), 8);
}

TEST(EarliestEmbedding, WindowContainsExecution) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  const auto ops = unroll_ops(s, 2);
  EXPECT_TRUE(window_contains_execution(chain({0, 1}), ops, 0, 2));
  EXPECT_FALSE(window_contains_execution(chain({0, 1}), ops, 0, 1));
  EXPECT_TRUE(window_contains_execution(chain({0, 1}), ops, 1, 4));
}

TEST(UnrollOps, ShiftsByPeriod) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(2);
  const auto ops = unroll_ops(s, 3);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].start, 0);
  EXPECT_EQ(ops[1].start, 3);
  EXPECT_EQ(ops[2].start, 6);
}

TEST(UnrollOps, AllIdleScheduleHasNoOps) {
  // A schedule of pure idle slots (phi-only string) has positive length
  // but unrolls to zero executions, at any period count.
  StaticSchedule s;
  s.push_idle(3);
  EXPECT_EQ(s.length(), 3);
  EXPECT_TRUE(unroll_ops(s, 1).empty());
  EXPECT_TRUE(unroll_ops(s, 4).empty());
}

TEST(EarliestEmbedding, EmptyTaskGraphOnEmptyOps) {
  // The empty task graph embeds vacuously even when there is nothing to
  // embed into: the finish time is the window begin itself.
  const std::vector<ScheduledOp> no_ops;
  EXPECT_EQ(earliest_embedding_finish(TaskGraph{}, no_ops, 0), 0);
  EXPECT_EQ(earliest_embedding_finish(TaskGraph{}, no_ops, 7), 7);
}

TEST(EarliestEmbedding, NonEmptyTaskGraphOnEmptyOps) {
  const std::vector<ScheduledOp> no_ops;
  EXPECT_EQ(earliest_embedding_finish(single(0), no_ops, 0), std::nullopt);
}

TEST(ScheduleLatency, AllIdleScheduleIsInfinite) {
  // phi-only schedules never execute anything: latency is unbounded for
  // any non-empty task graph, zero for the empty one.
  StaticSchedule s;
  s.push_idle(2);
  EXPECT_EQ(schedule_latency(s, single(0)), std::nullopt);
  EXPECT_EQ(schedule_latency(s, TaskGraph{}), 0);
  EXPECT_FALSE(periodic_satisfied(s, single(0), 2, 2));
}

TEST(ScheduleLatency, SingleElementWithIdle) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(1);
  EXPECT_EQ(schedule_latency(s, single(0)), 2);
}

TEST(ScheduleLatency, LongerIdleGrowsLatency) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(3);
  EXPECT_EQ(schedule_latency(s, single(0)), 4);
}

TEST(ScheduleLatency, BackToBackUnitIsOne) {
  // "a" repeated every slot: every 1-slot window holds an execution.
  StaticSchedule s;
  s.push_execution(0, 1);
  EXPECT_EQ(schedule_latency(s, single(0)), 1);
}

TEST(ScheduleLatency, WeightedExecution) {
  StaticSchedule s;
  s.push_execution(0, 2);
  s.push_idle(1);
  // c@[0,2). completion(1) = next c finishing at 5 -> latency 4.
  EXPECT_EQ(schedule_latency(s, single(0)), 4);
}

TEST(ScheduleLatency, ChainForwardAndBackward) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  EXPECT_EQ(schedule_latency(s, chain({0, 1})), 3);
  EXPECT_EQ(schedule_latency(s, chain({1, 0})), 3);
}

TEST(ScheduleLatency, InfiniteWhenElementMissing) {
  StaticSchedule s;
  s.push_execution(0, 1);
  EXPECT_EQ(schedule_latency(s, single(1)), std::nullopt);
}

TEST(ScheduleLatency, EmptyScheduleIsInfinite) {
  StaticSchedule s;
  EXPECT_EQ(schedule_latency(s, single(0)), std::nullopt);
}

TEST(ScheduleLatency, EmptyTaskGraphIsZero) {
  StaticSchedule s;
  s.push_execution(0, 1);
  EXPECT_EQ(schedule_latency(s, TaskGraph{}), 0);
}

TEST(ScheduleLatency, MatchesBruteForceOnRandomSchedules) {
  sim::Rng rng(2026);
  for (int trial = 0; trial < 60; ++trial) {
    // Random schedule over 3 unit elements with idles, length <= 8.
    StaticSchedule s;
    const int len = static_cast<int>(rng.uniform(2, 8));
    for (int i = 0; i < len; ++i) {
      const auto pick = rng.uniform(0, 3);
      if (pick == 3) {
        s.push_idle(1);
      } else {
        s.push_execution(static_cast<ElementId>(pick), 1);
      }
    }
    // Random chain of length 1..3 over those elements (may repeat).
    std::vector<ElementId> elems;
    const int tg_len = static_cast<int>(rng.uniform(1, 3));
    for (int i = 0; i < tg_len; ++i) {
      elems.push_back(static_cast<ElementId>(rng.uniform(0, 2)));
    }
    TaskGraph tg;
    OpId prev = graph::kInvalidNode;
    for (ElementId e : elems) {
      const OpId op = tg.add_op(e);
      if (prev != graph::kInvalidNode) tg.add_dep(prev, op);
      prev = op;
    }

    const auto fast = schedule_latency(s, tg);
    // Reference: brute-force completion at every offset of one period.
    const auto ops = unroll_ops(s, 2 * tg.size() + 2);
    Time ref = 0;
    bool infinite = false;
    for (Time t = 0; t < s.length(); ++t) {
      const Time completion = brute_completion(tg, ops, t);
      if (completion == std::numeric_limits<Time>::max()) {
        infinite = true;
        break;
      }
      ref = std::max(ref, completion - t);
    }
    if (infinite) {
      EXPECT_EQ(fast, std::nullopt) << "trial " << trial;
    } else {
      ASSERT_TRUE(fast.has_value()) << "trial " << trial;
      EXPECT_EQ(*fast, ref) << "trial " << trial << " schedule len " << s.length();
    }
  }
}

TEST(PeriodicSatisfied, ExactInvocationWindows) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(1);
  EXPECT_TRUE(periodic_satisfied(s, single(0), 2, 1));
  EXPECT_TRUE(periodic_satisfied(s, single(0), 2, 2));

  StaticSchedule late;
  late.push_idle(1);
  late.push_execution(0, 1);
  EXPECT_FALSE(periodic_satisfied(late, single(0), 2, 1));
  EXPECT_TRUE(periodic_satisfied(late, single(0), 2, 2));
}

TEST(PeriodicSatisfied, NonDividingPeriodUsesLcm) {
  StaticSchedule s;  // "a ." len 2; invocations every 3.
  s.push_execution(0, 1);
  s.push_idle(1);
  // Invocation at t=3: next a completes at 5 -> needs d >= 2.
  EXPECT_FALSE(periodic_satisfied(s, single(0), 3, 1));
  EXPECT_TRUE(periodic_satisfied(s, single(0), 3, 2));
}

TEST(PeriodicSatisfied, MissingElementFails) {
  StaticSchedule s;
  s.push_execution(0, 1);
  EXPECT_FALSE(periodic_satisfied(s, single(1), 2, 2));
}

TEST(PeriodicSatisfied, ValidatesArguments) {
  StaticSchedule s;
  s.push_execution(0, 1);
  EXPECT_THROW((void)periodic_satisfied(s, single(0), 0, 1), std::invalid_argument);
  EXPECT_THROW((void)periodic_satisfied(s, single(0), 1, 0), std::invalid_argument);
}

TEST(VerifySchedule, MixedModel) {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  comm.add_channel(0, 1);
  GraphModel model(std::move(comm));
  model.add_constraint(TimingConstraint{"P", single(0), 4, 4, ConstraintKind::kPeriodic});
  model.add_constraint(
      TimingConstraint{"A", chain({0, 1}), 10, 6, ConstraintKind::kAsynchronous});

  StaticSchedule s;  // "a b . ." len 4
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  s.push_idle(2);
  const FeasibilityReport report = verify_schedule(s, model);
  ASSERT_EQ(report.verdicts.size(), 2u);
  EXPECT_TRUE(report.verdicts[0].satisfied);
  ASSERT_TRUE(report.verdicts[1].latency.has_value());
  // Worst window starts just after a@0: a@4, b@5 complete at 6 -> 5.
  EXPECT_EQ(*report.verdicts[1].latency, 5);
  EXPECT_TRUE(report.verdicts[1].satisfied);
  EXPECT_TRUE(report.feasible);
}

TEST(VerifySchedule, ReportsViolation) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"A", single(0), 10, 2, ConstraintKind::kAsynchronous});
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(3);  // latency 4 > 2
  const FeasibilityReport report = verify_schedule(s, model);
  EXPECT_FALSE(report.feasible);
  EXPECT_FALSE(report.verdicts[0].satisfied);
  EXPECT_EQ(report.verdicts[0].latency, 4);
}

}  // namespace
}  // namespace rtg::core
