#include "core/npc.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/feasibility.hpp"

namespace rtg::core {
namespace {

ThreePartitionInstance tiny_solvable() {
  // Two bins of capacity 12: {5, 4, 3} twice... items must be in
  // (3, 6): use {5, 4, 3}? 3 is not > 3; use capacity 12 items 4,4,4.
  ThreePartitionInstance inst;
  inst.bins = 2;
  inst.capacity = 12;
  inst.items = {4, 4, 4, 5, 4, 3};  // {4,4,4} and {5,4,3}
  return inst;
}

TEST(ThreePartitionInstance, BalancedCheck) {
  EXPECT_TRUE(tiny_solvable().balanced());
  ThreePartitionInstance bad = tiny_solvable();
  bad.items[0] += 1;
  EXPECT_FALSE(bad.balanced());
}

TEST(SolveThreePartition, SolvesAndRefutes) {
  EXPECT_TRUE(solve_three_partition(tiny_solvable()));
  EXPECT_FALSE(solve_three_partition(make_overloaded(tiny_solvable())));
}

TEST(SolveThreePartition, UnsplittableInstance) {
  // Balanced but not partitionable into triples of 12: {6,6,6,6,3,9}?
  // 6+6 needs a 0. Actually {6,6,6} = 18 != 12. Construct: capacity 12,
  // items {10, 1, 1, 6, 5, 1}: {10,1,1} = 12 works, {6,5,1} = 12 works
  // -> solvable. Use {9, 9, 2, 2, 1, 1}: triples summing 12 from these:
  // 9+2+1 = 12 twice -> solvable. Use {11, 11, 1, 1, 0...} not allowed.
  // {8, 8, 4, 4, 0...}: zero invalid. Use capacity 12 items
  // {7, 7, 7, 1, 1, 1}: any triple with two 7s > 12; 7+1+1 = 9 < 12 ->
  // unsolvable though balanced? Sum = 24 = 2*12. Yes: unsolvable.
  ThreePartitionInstance inst;
  inst.bins = 2;
  inst.capacity = 12;
  inst.items = {7, 7, 7, 1, 1, 1};
  EXPECT_TRUE(inst.balanced());
  EXPECT_FALSE(solve_three_partition(inst));
}

TEST(SolveThreePartition, ValidatesShape) {
  ThreePartitionInstance inst;
  inst.bins = 2;
  inst.capacity = 12;
  inst.items = {4, 4};  // wrong count
  EXPECT_THROW((void)solve_three_partition(inst), std::invalid_argument);
}

TEST(ThreePartitionModel, StructureMatchesEncoding) {
  const ThreePartitionInstance inst = tiny_solvable();
  const GraphModel model = three_partition_model(inst);
  EXPECT_EQ(model.comm().size(), 7u);  // gate + 6 items
  EXPECT_EQ(model.constraint_count(), 7u);
  // Gate deadline B+1 = 13; items m(B+1) + a_j - 1.
  EXPECT_EQ(model.constraint(0).deadline, 13);
  for (std::size_t i = 1; i < model.constraint_count(); ++i) {
    EXPECT_EQ(model.constraint(i).deadline, 26 + inst.items[i - 1] - 1);
    EXPECT_EQ(model.constraint(i).task_graph.size(), 1u);  // single op
  }
  // No pipelining allowed (restriction (ii)).
  for (ElementId e = 0; e < model.comm().size(); ++e) {
    EXPECT_FALSE(model.comm().pipelinable(e));
  }
}

TEST(ThreePartitionChainModel, UnitWeightsAndChains) {
  const ThreePartitionInstance inst = tiny_solvable();
  const GraphModel model = three_partition_chain_model(inst);
  // gate + sum(items) unit elements.
  EXPECT_EQ(model.comm().size(), 25u);
  for (ElementId e = 0; e < model.comm().size(); ++e) {
    EXPECT_EQ(model.comm().weight(e), 1);
  }
  // Item 0 is a chain of 4 ops.
  EXPECT_EQ(model.constraint(1).task_graph.size(),
            static_cast<std::size_t>(inst.items[0]));
  EXPECT_TRUE(model.constraint(1).task_graph.as_chain().has_value());
}

TEST(ThreePartitionModel, SolvableInstanceIsFeasible) {
  // Tiny instance so the simulation game stays tractable: 1 bin of 4.
  ThreePartitionInstance inst;
  inst.bins = 1;
  inst.capacity = 4;
  inst.items = {2, 1, 1};
  ASSERT_TRUE(solve_three_partition(inst));
  const GraphModel model = three_partition_model(inst);
  ExactOptions options;
  options.state_budget = 500000;
  const ExactResult r = exact_feasible(model, options);
  ASSERT_EQ(r.status, FeasibilityStatus::kFeasible);
  EXPECT_TRUE(verify_schedule(*r.schedule, model).feasible);
}

TEST(ThreePartitionModel, OverloadedInstanceIsInfeasible) {
  ThreePartitionInstance inst;
  inst.bins = 1;
  inst.capacity = 4;
  inst.items = {2, 2, 1};  // sum 5 > 4: utilization overload
  const GraphModel model = three_partition_model(inst);
  ExactOptions options;
  options.state_budget = 500000;
  const ExactResult r = exact_feasible(model, options);
  EXPECT_EQ(r.status, FeasibilityStatus::kInfeasible);
}

TEST(RandomSolvable, ShapeAndMargins) {
  sim::Rng rng(31);
  const auto inst = random_solvable_three_partition(4, 16, rng);
  EXPECT_EQ(inst.items.size(), 12u);
  EXPECT_TRUE(inst.balanced());
  for (Time a : inst.items) {
    EXPECT_GE(a, 4);  // >= B/4
    EXPECT_LE(a, 8);  // <= B/2
  }
  EXPECT_TRUE(solve_three_partition(inst));
}

TEST(RandomSolvable, ValidatesParameters) {
  sim::Rng rng(1);
  EXPECT_THROW((void)random_solvable_three_partition(0, 16, rng), std::invalid_argument);
  EXPECT_THROW((void)random_solvable_three_partition(2, 6, rng), std::invalid_argument);
  EXPECT_THROW((void)random_solvable_three_partition(2, 18, rng), std::invalid_argument);
}

TEST(MakeOverloaded, BreaksBalance) {
  const auto inst = make_overloaded(tiny_solvable());
  EXPECT_FALSE(inst.balanced());
  ThreePartitionInstance empty;
  empty.bins = 1;
  EXPECT_THROW((void)make_overloaded(empty), std::invalid_argument);
}

}  // namespace
}  // namespace rtg::core
