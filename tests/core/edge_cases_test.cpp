// Edge cases for corners the module suites leave thin: multi-channel
// TDMA timing, op-level (non-preemptive) EDF interleaving, coalescing
// across constraint kinds, executive horizon arithmetic, and schedule
// containers under stress.
#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "core/multiproc.hpp"
#include "core/network.hpp"
#include "core/runtime.hpp"

namespace rtg::core {
namespace {

TEST(MultiprocEdge, BusCycleWithTwoChannelsDelaysSecondSlot) {
  // Elements a@P0 -> b@P1 and c@P0 -> d@P1: two channels share the bus,
  // cycle = 2. Channel order is sorted: (a,b) slot 0, (c,d) slot 1.
  TaskGraph tg;
  const OpId oc = tg.add_op(2);
  const OpId od = tg.add_op(3);
  tg.add_dep(oc, od);

  StaticSchedule p0;
  p0.push_execution(0, 1);
  p0.push_execution(2, 1);
  StaticSchedule p1;
  p1.push_execution(1, 1);
  p1.push_execution(3, 1);
  const std::vector<BusChannel> bus{{0, 1}, {2, 3}};
  const auto lat = multiproc_latency(tg, {p0, p1}, {0, 1, 0, 1}, bus);
  ASSERT_TRUE(lat.has_value());
  // c finishes at 2 (p0 slot 1); its bus slot is offset 1 of cycle 2:
  // next at 3, arrival 4; d runs at 5 (p1 slot 1 of cycle 3 -> start 5).
  // completion(0) = 6; worst-case window start shifts add more.
  EXPECT_GE(*lat, 6);
}

TEST(NetworkEdge, TwoChannelsOneLinkShareTheCycle) {
  // Both channels route over the same link: cycle 2, slots ordered.
  TaskGraph tg_ab;
  {
    const OpId a = tg_ab.add_op(0);
    const OpId b = tg_ab.add_op(1);
    tg_ab.add_dep(a, b);
  }
  StaticSchedule p0;
  p0.push_execution(0, 1);
  p0.push_execution(2, 1);
  StaticSchedule p1;
  p1.push_execution(1, 1);
  p1.push_execution(3, 1);
  NetworkTopology t(2);
  t.add_link(0, 1);
  std::vector<LinkSchedule> tables{LinkSchedule{
      NetworkLink{0, 1}, {LinkSlot{0, 1, 0}, LinkSlot{2, 3, 0}}}};
  const auto lat = network_latency(tg_ab, {p0, p1}, {0, 1, 0, 1}, t, tables);
  ASSERT_TRUE(lat.has_value());
  // a@[0,1), slot for (0,1) at even offsets: next start >= 1 is 2,
  // arrival 3; b on p1 at start >= 3: b@4 (cycle 2 of p1), finish 5.
  EXPECT_GE(*lat, 5);
}

TEST(HeuristicEdge, NonPreemptiveOpsInterleaveAcrossConstraints) {
  // Without pipelining, ops are atomic but constraints still interleave
  // at op boundaries: two weight-2 elements, loose deadlines.
  CommGraph comm;
  comm.add_element("x", 2, false);
  comm.add_element("y", 2, false);
  GraphModel model(std::move(comm));
  for (ElementId e = 0; e < 2; ++e) {
    TaskGraph tg;
    tg.add_op(e);
    model.add_constraint(TimingConstraint{"c" + std::to_string(e), std::move(tg), 4,
                                          8, ConstraintKind::kAsynchronous});
  }
  HeuristicOptions options;
  options.pipeline = false;
  const HeuristicResult r = latency_schedule(model, options);
  ASSERT_TRUE(r.success) << r.failure_reason;
  // Each execution occupies 2 contiguous slots in the schedule.
  for (const ScheduledOp& op : r.schedule->ops()) {
    EXPECT_EQ(op.duration, 2);
  }
  EXPECT_TRUE(r.report.feasible);
}

TEST(HeuristicEdge, CoalescePeriodicWithAsyncBecomesAsync) {
  // X periodic (p=24, d=24) and Z async (d=20) share fs: the merged
  // constraint must be asynchronous with deadline min(24, 20).
  CommGraph comm;
  const auto fx = comm.add_element("fx", 1);
  const auto fz = comm.add_element("fz", 1);
  const auto fs = comm.add_element("fs", 2);
  comm.add_channel(fx, fs);
  comm.add_channel(fz, fs);
  GraphModel model(std::move(comm));
  {
    TaskGraph tg;
    const auto a = tg.add_op(fx);
    const auto b = tg.add_op(fs);
    tg.add_dep(a, b);
    model.add_constraint(
        TimingConstraint{"X", std::move(tg), 24, 24, ConstraintKind::kPeriodic});
  }
  {
    TaskGraph tg;
    const auto a = tg.add_op(fz);
    const auto b = tg.add_op(fs);
    tg.add_dep(a, b);
    model.add_constraint(
        TimingConstraint{"Z", std::move(tg), 30, 20, ConstraintKind::kAsynchronous});
  }
  const GraphModel merged = coalesce_model(model);
  if (merged.constraint_count() == 1) {
    EXPECT_EQ(merged.constraint(0).kind, ConstraintKind::kAsynchronous);
    EXPECT_EQ(merged.constraint(0).deadline, 20);
    // A schedule for the merged model must satisfy the original.
    HeuristicOptions opts;
    opts.coalesce = true;
    const HeuristicResult r = latency_schedule(model, opts);
    ASSERT_TRUE(r.success) << r.failure_reason;
    const GraphModel original_pipelined = pipeline_model(model).model;
    EXPECT_TRUE(verify_schedule(*r.schedule, original_pipelined).feasible);
  } else {
    // Merging wasn't profitable: both engines must still schedule it.
    EXPECT_TRUE(latency_schedule(model).success);
  }
}

TEST(RuntimeEdge, HorizonNotMultipleOfScheduleLength) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"P", std::move(tg), 3, 3, ConstraintKind::kPeriodic});
  StaticSchedule sched;
  sched.push_execution(0, 1);
  sched.push_idle(2);
  // Horizon 10 = 3 full periods + 1 slot: invocations at 0, 3, 6 have
  // windows inside; t=9's deadline (12) exceeds the horizon.
  const ExecutiveResult r = run_executive(sched, model, {{}}, 10);
  EXPECT_EQ(r.invocations.size(), 3u);
  EXPECT_TRUE(r.all_met);
  // ceil(10/3) = 4 repetitions of a 1-op schedule.
  EXPECT_EQ(r.dispatches, 4u);
}

TEST(RuntimeEdge, ZeroHorizonRecordsNothing) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"P", std::move(tg), 3, 3, ConstraintKind::kPeriodic});
  StaticSchedule sched;
  sched.push_execution(0, 1);
  const ExecutiveResult r = run_executive(sched, model, {{}}, 0);
  EXPECT_TRUE(r.invocations.empty());
  EXPECT_TRUE(r.all_met);
}

TEST(PartitionEdge, CommunicationAwareFallsBackWhenCapExceeded) {
  // One giant element forces the soft cap to be exceeded; the fallback
  // least-loaded placement must still assign everything.
  CommGraph comm;
  comm.add_element("giant", 100);
  for (int i = 0; i < 6; ++i) {
    comm.add_element("tiny" + std::to_string(i), 1);
    comm.add_channel(0, static_cast<ElementId>(i + 1));
  }
  const auto assignment =
      partition_elements(comm, 3, PartitionStrategy::kCommunication);
  EXPECT_EQ(assignment.size(), 7u);
  for (std::size_t p : assignment) EXPECT_LT(p, 3u);
  // The tiny elements shouldn't pile onto the giant's processor (its
  // load already exceeds the cap).
  std::size_t with_giant = 0;
  for (std::size_t i = 1; i < assignment.size(); ++i) {
    if (assignment[i] == assignment[0]) ++with_giant;
  }
  EXPECT_LT(with_giant, 6u);
}

TEST(ScheduleEdge, ManyEntriesStressAccounting) {
  StaticSchedule s;
  Time expect_len = 0, expect_busy = 0;
  for (int i = 0; i < 2000; ++i) {
    if (i % 3 == 0) {
      s.push_idle(1 + i % 2);
      expect_len += 1 + i % 2;
    } else {
      s.push_execution(static_cast<ElementId>(i % 5), 1 + i % 3);
      expect_len += 1 + i % 3;
      expect_busy += 1 + i % 3;
    }
  }
  EXPECT_EQ(s.length(), expect_len);
  EXPECT_EQ(s.busy(), expect_busy);
  EXPECT_EQ(s.ops().size(), s.ops_of(0).size() + s.ops_of(1).size() +
                                s.ops_of(2).size() + s.ops_of(3).size() +
                                s.ops_of(4).size());
}

}  // namespace
}  // namespace rtg::core
