#include "core/synthesis.hpp"

#include <gtest/gtest.h>

#include "rt/analysis.hpp"

namespace rtg::core {
namespace {

TEST(SynthesizeProcesses, ControlSystemProcesses) {
  const GraphModel model = make_control_system();
  const ProcessSynthesis s = synthesize_processes(model);
  ASSERT_EQ(s.processes.size(), 3u);

  const SynthesizedProcess& x = s.processes[0];
  EXPECT_EQ(x.name, "X");
  EXPECT_EQ(x.body.size(), 3u);  // fx, fs, fk
  EXPECT_EQ(x.computation, 4);   // 1 + 2 + 1
  EXPECT_EQ(x.kind, ConstraintKind::kPeriodic);

  const SynthesizedProcess& z = s.processes[2];
  EXPECT_EQ(z.name, "Z");
  EXPECT_EQ(z.computation, 3);  // 1 + 2
  EXPECT_EQ(z.kind, ConstraintKind::kAsynchronous);
}

TEST(SynthesizeProcesses, BodyIsTopologicalOrder) {
  const GraphModel model = make_control_system();
  const ProcessSynthesis s = synthesize_processes(model);
  const auto fx = *model.comm().find("fx");
  const auto fs = *model.comm().find("fs");
  const auto fk = *model.comm().find("fk");
  EXPECT_EQ(s.processes[0].body, (std::vector<ElementId>{fx, fs, fk}));
}

TEST(SynthesizeProcesses, MonitorsForSharedElements) {
  const GraphModel model = make_control_system();
  const ProcessSynthesis s = synthesize_processes(model);
  // fs is shared by X, Y, Z; fk by X and Y.
  const auto fs = *model.comm().find("fs");
  const auto fk = *model.comm().find("fk");
  EXPECT_EQ(s.monitors, (std::vector<ElementId>{fs, fk}));
  // Critical section of each task = weight of fs (the heaviest monitor).
  for (std::size_t i = 0; i < s.task_set.size(); ++i) {
    EXPECT_EQ(s.task_set[i].critical_section, 2) << i;
  }
}

TEST(SynthesizeProcesses, PipeliningShrinksCriticalSections) {
  const GraphModel model = make_control_system();
  const ProcessSynthesis s = synthesize_processes(model, /*software_pipelining=*/true);
  for (std::size_t i = 0; i < s.task_set.size(); ++i) {
    EXPECT_EQ(s.task_set[i].critical_section, 1) << i;
  }
  // Computation unchanged by pipelining.
  EXPECT_EQ(s.processes[0].computation, 4);
}

TEST(SynthesizeProcesses, TaskSetParametersClampDeadline) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"late", std::move(tg), 5, 9, ConstraintKind::kPeriodic});
  const ProcessSynthesis s = synthesize_processes(model);
  EXPECT_EQ(s.task_set[0].d, 5);  // min(9, 5)
  EXPECT_EQ(s.task_set[0].p, 5);
}

TEST(SynthesizeProcesses, WorkPerHyperperiodCountsDuplicates) {
  // Two constraints both containing the weight-2 shared element at the
  // same rate: the process model runs it twice per period.
  CommGraph comm;
  comm.add_element("s", 2);
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  comm.add_channel(1, 0);
  comm.add_channel(2, 0);
  GraphModel model(std::move(comm));
  for (const char* name : {"A", "B"}) {
    TaskGraph tg;
    const OpId in = tg.add_op(name[0] == 'A' ? 1 : 2);
    const OpId shared = tg.add_op(0);
    tg.add_dep(in, shared);
    model.add_constraint(
        TimingConstraint{name, std::move(tg), 10, 10, ConstraintKind::kPeriodic});
  }
  const ProcessSynthesis s = synthesize_processes(model);
  EXPECT_EQ(s.hyperperiod, 10);
  EXPECT_EQ(s.work_per_hyperperiod, 6);  // (1+2) * 2 constraints
}

TEST(SynthesizeProcesses, SporadicMapsToSporadicTask) {
  const GraphModel model = make_control_system();
  const ProcessSynthesis s = synthesize_processes(model);
  EXPECT_EQ(s.task_set[2].arrival, rt::Arrival::kSporadic);
  EXPECT_EQ(s.task_set[0].arrival, rt::Arrival::kPeriodic);
}

TEST(SynthesizeProcesses, ResultFeedsRtAnalysis) {
  const GraphModel model = make_control_system();
  const ProcessSynthesis s = synthesize_processes(model);
  // The control system's process set is light; EDF must accept it.
  EXPECT_TRUE(rt::edf_schedulable(s.task_set));
}

TEST(SynthesizeProcesses, NoMonitorsWhenNothingShared) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"only", std::move(tg), 4, 4, ConstraintKind::kPeriodic});
  const ProcessSynthesis s = synthesize_processes(model);
  EXPECT_TRUE(s.monitors.empty());
  EXPECT_EQ(s.task_set[0].critical_section, 0);
}

}  // namespace
}  // namespace rtg::core
