#include "core/multiproc.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rtg::core {
namespace {

CommGraph pipeline_comm() {
  CommGraph g;
  g.add_element("stage0", 1);
  g.add_element("stage1", 1);
  g.add_element("stage2", 1);
  g.add_channel(0, 1);
  g.add_channel(1, 2);
  return g;
}

GraphModel pipeline_model_3(Time d) {
  GraphModel model(pipeline_comm());
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  const OpId c = tg.add_op(2);
  tg.add_dep(a, b);
  tg.add_dep(b, c);
  model.add_constraint(
      TimingConstraint{"flow", std::move(tg), 30, d, ConstraintKind::kAsynchronous});
  return model;
}

TEST(PartitionElements, RoundRobinCycles) {
  const CommGraph g = pipeline_comm();
  const auto a = partition_elements(g, 2, PartitionStrategy::kRoundRobin);
  EXPECT_EQ(a, (std::vector<std::size_t>{0, 1, 0}));
}

TEST(PartitionElements, SingleProcessorAllZero) {
  const CommGraph g = pipeline_comm();
  for (auto strategy : {PartitionStrategy::kRoundRobin, PartitionStrategy::kLpt,
                        PartitionStrategy::kCommunication}) {
    const auto a = partition_elements(g, 1, strategy);
    EXPECT_EQ(a, (std::vector<std::size_t>{0, 0, 0}));
  }
}

TEST(PartitionElements, LptBalancesLoad) {
  CommGraph g;
  g.add_element("big", 6);
  g.add_element("m1", 3);
  g.add_element("m2", 3);
  const auto a = partition_elements(g, 2, PartitionStrategy::kLpt);
  // big alone (load 6), the two mediums together (load 6).
  EXPECT_NE(a[1], a[0]);
  EXPECT_EQ(a[1], a[2]);
}

TEST(PartitionElements, CommunicationPrefersColocation) {
  // A chain should stay on one processor when capacity allows.
  CommGraph g;
  g.add_element("a", 1);
  g.add_element("b", 1);
  g.add_channel(0, 1);
  g.add_element("c", 1);
  g.add_element("d", 1);
  g.add_channel(2, 3);
  const auto a = partition_elements(g, 2, PartitionStrategy::kCommunication);
  EXPECT_EQ(a[0], a[1]);
  EXPECT_EQ(a[2], a[3]);
}

TEST(PartitionElements, ZeroProcessorsThrows) {
  const CommGraph g = pipeline_comm();
  EXPECT_THROW((void)partition_elements(g, 0, PartitionStrategy::kLpt),
               std::invalid_argument);
}

TEST(MultiprocLatency, SingleProcessorMatchesUniprocessorSemantics) {
  // One processor, no bus: latency equals the uniprocessor value.
  TaskGraph tg;
  tg.add_op(0);
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(1);
  const auto lat = multiproc_latency(tg, {s}, {0}, {});
  EXPECT_EQ(lat, 2);
}

TEST(MultiprocLatency, CrossEdgeWaitsForBusSlot) {
  // stage0 on P0 ("s0" every slot), stage1 on P1 (every slot), one bus
  // channel. Execution: s0@[0,1), message in the next bus slot, s1
  // after arrival.
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  tg.add_dep(a, b);
  StaticSchedule p0;
  p0.push_execution(0, 1);
  StaticSchedule p1;
  p1.push_execution(1, 1);
  const std::vector<BusChannel> bus{{0, 1}};
  const auto lat = multiproc_latency(tg, {p0, p1}, {0, 1}, bus);
  ASSERT_TRUE(lat.has_value());
  // s0 finishes at 1, message rides slot [1,2), s1 runs [2,3): 3 slots
  // from a window start of 0; later starts shift uniformly.
  EXPECT_EQ(*lat, 3);
}

TEST(MultiprocLatency, MissingChannelIsInfinite) {
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  tg.add_dep(a, b);
  StaticSchedule p0;
  p0.push_execution(0, 1);
  StaticSchedule p1;
  p1.push_execution(1, 1);
  EXPECT_EQ(multiproc_latency(tg, {p0, p1}, {0, 1}, {}), std::nullopt);
}

TEST(MultiprocLatency, MissingElementIsInfinite) {
  TaskGraph tg;
  tg.add_op(1);
  StaticSchedule p0;
  p0.push_execution(0, 1);
  StaticSchedule p1_idle;
  p1_idle.push_idle(1);
  EXPECT_EQ(multiproc_latency(tg, {p0, p1_idle}, {0, 1}, {}), std::nullopt);
}

TEST(MultiprocSchedule, SingleProcessorDegeneratesToUniprocessor) {
  MultiprocOptions options;
  options.processors = 1;
  const MultiprocResult r = multiproc_schedule(pipeline_model_3(24), options);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(r.bus_channels.empty());
  ASSERT_EQ(r.end_to_end_latency.size(), 1u);
  EXPECT_LE(*r.end_to_end_latency[0], 24);
}

TEST(MultiprocSchedule, TwoProcessorPipelineVerifies) {
  MultiprocOptions options;
  options.processors = 2;
  options.strategy = PartitionStrategy::kRoundRobin;
  const MultiprocResult r = multiproc_schedule(pipeline_model_3(30), options);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.processor_schedules.size(), 2u);
  EXPECT_FALSE(r.bus_channels.empty());
  EXPECT_LE(*r.end_to_end_latency[0], 30);
  EXPECT_TRUE(pipeline_ordered_bus(r.bus_channels));
}

TEST(MultiprocSchedule, FailsWhenDeadlineTooTightForMessages) {
  MultiprocOptions options;
  options.processors = 3;
  options.strategy = PartitionStrategy::kRoundRobin;
  const MultiprocResult r = multiproc_schedule(pipeline_model_3(3), options);
  EXPECT_FALSE(r.success);
}

TEST(MultiprocSchedule, ZeroProcessorsFails) {
  MultiprocOptions options;
  options.processors = 0;
  EXPECT_FALSE(multiproc_schedule(pipeline_model_3(24), options).success);
}

TEST(MultiprocSchedule, ControlSystemOnTwoProcessors) {
  ControlSystemParams params;
  params.px = params.dx = 40;
  params.py = params.dy = 80;
  params.pz = 100;
  params.dz = 50;
  MultiprocOptions options;
  options.processors = 2;
  options.strategy = PartitionStrategy::kCommunication;
  const MultiprocResult r = multiproc_schedule(make_control_system(params), options);
  ASSERT_TRUE(r.success) << r.failure_reason;
  for (std::size_t i = 0; i < r.end_to_end_latency.size(); ++i) {
    ASSERT_TRUE(r.end_to_end_latency[i].has_value()) << i;
  }
}

TEST(PipelineOrderedBus, DetectsDuplicates) {
  EXPECT_TRUE(pipeline_ordered_bus({{0, 1}, {1, 2}}));
  EXPECT_FALSE(pipeline_ordered_bus({{0, 1}, {0, 1}}));
  EXPECT_TRUE(pipeline_ordered_bus({}));
}

}  // namespace
}  // namespace rtg::core
