#include "core/degradation.hpp"

#include <gtest/gtest.h>

#include "core/fault.hpp"
#include "core/heuristic.hpp"
#include "rt/scheduler.hpp"

namespace rtg::core {
namespace {

TaskGraph single(ElementId e) {
  TaskGraph tg;
  tg.add_op(e);
  return tg;
}

// Three asynchronous tiers over distinct unit elements:
//   CRIT (criticality 2): sep 6, d 14 — must survive everything;
//   MID  (criticality 1): sep 3, d 6;
//   BULK (criticality 0): sep 2, d 4 — shed first.
// Server utilization 1/7 + 1/3 + 1/2 ~ 0.98: the primary schedule is
// nearly saturated, so execution overruns cascade into misses.
GraphModel tiered_model() {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("c", 1);
  comm.add_element("b", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"CRIT", single(0), 6, 14, ConstraintKind::kAsynchronous, 2});
  model.add_constraint(
      TimingConstraint{"MID", single(1), 3, 6, ConstraintKind::kAsynchronous, 1});
  model.add_constraint(
      TimingConstraint{"BULK", single(2), 2, 4, ConstraintKind::kAsynchronous, 0});
  return model;
}

ConstraintArrivals tiered_arrivals(Time horizon) {
  ConstraintArrivals arrivals(3);
  arrivals[0] = rt::max_rate_arrivals(6, horizon);
  arrivals[1] = rt::max_rate_arrivals(3, horizon);
  arrivals[2] = rt::max_rate_arrivals(2, horizon);
  return arrivals;
}

TEST(ModeLadder, ShedsAsynchronousConstraintsByCriticality) {
  const ModeLadder ladder = build_mode_ladder(tiered_model());
  ASSERT_TRUE(ladder.success) << ladder.failure_reason;
  ASSERT_EQ(ladder.modes.size(), 3u);  // primary + shed BULK + shed MID

  EXPECT_EQ(ladder.modes[0].name, "primary");
  EXPECT_TRUE(ladder.modes[0].served[0] && ladder.modes[0].served[1] &&
              ladder.modes[0].served[2]);

  // degraded-1 sheds only the criticality-0 tier.
  EXPECT_TRUE(ladder.modes[1].served[0]);
  EXPECT_TRUE(ladder.modes[1].served[1]);
  EXPECT_FALSE(ladder.modes[1].served[2]);

  // degraded-2 keeps only the top tier; it is never shed.
  EXPECT_TRUE(ladder.modes[2].served[0]);
  EXPECT_FALSE(ladder.modes[2].served[1]);
  EXPECT_FALSE(ladder.modes[2].served[2]);

  // Shedding buys headroom: busy fraction strictly decreases.
  EXPECT_GT(ladder.modes[0].utilization, ladder.modes[1].utilization);
  EXPECT_GT(ladder.modes[1].utilization, ladder.modes[2].utilization);
}

TEST(ModeLadder, PeriodicConstraintsAreNeverShed) {
  CommGraph comm;
  comm.add_element("p", 1);
  comm.add_element("q", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"P", single(0), 8, 8, ConstraintKind::kPeriodic, 0});
  model.add_constraint(
      TimingConstraint{"B0", single(1), 4, 8, ConstraintKind::kAsynchronous, 0});
  model.add_constraint(
      TimingConstraint{"B1", single(1), 4, 8, ConstraintKind::kAsynchronous, 1});
  const ModeLadder ladder = build_mode_ladder(model);
  ASSERT_TRUE(ladder.success) << ladder.failure_reason;
  ASSERT_GE(ladder.modes.size(), 2u);
  for (const ExecutiveMode& m : ladder.modes) {
    EXPECT_TRUE(m.served[0]) << m.name;  // the periodic constraint, criticality 0
  }
  EXPECT_FALSE(ladder.modes.back().served[1]);  // async criticality 0 shed
  EXPECT_TRUE(ladder.modes.back().served[2]);   // top async tier survives
}

TEST(ModeLadder, SingleTierModelHasOnlyPrimary) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"A", single(0), 4, 8, ConstraintKind::kAsynchronous, 1});
  const ModeLadder ladder = build_mode_ladder(model);
  ASSERT_TRUE(ladder.success);
  EXPECT_EQ(ladder.modes.size(), 1u);  // the only tier is the top tier
}

TEST(Watchdog, SlidingWindowMissRateAndThresholds) {
  WatchdogOptions opts;
  opts.window = 4;
  opts.min_observations = 4;
  opts.degrade_threshold = 0.5;
  Watchdog wd(opts, 2);

  wd.record(0, false);
  wd.record(0, true);
  wd.record(1, true);
  EXPECT_FALSE(wd.should_degrade());  // only 3 observations
  wd.record(1, false);
  EXPECT_DOUBLE_EQ(wd.miss_rate(), 0.5);
  EXPECT_TRUE(wd.should_degrade());

  // The window slides: two clean outcomes push the misses out.
  wd.record(0, false);
  wd.record(0, false);
  EXPECT_DOUBLE_EQ(wd.miss_rate(), 0.25);
  EXPECT_FALSE(wd.should_degrade());

  // Cumulative per-constraint counters are unaffected by the window.
  EXPECT_EQ(wd.miss_count(0), 1u);
  EXPECT_EQ(wd.served_count(0), 4u);
  EXPECT_EQ(wd.miss_count(1), 1u);
  EXPECT_EQ(wd.served_count(1), 2u);

  wd.reset_window();
  EXPECT_DOUBLE_EQ(wd.miss_rate(), 0.0);
  EXPECT_EQ(wd.miss_count(0), 1u);
}

TEST(Watchdog, ConsecutiveCycleOverrunsTriggerDegradation) {
  WatchdogOptions opts;
  opts.overrun_cycles_to_degrade = 3;
  Watchdog wd(opts, 1);
  wd.record_cycle(2);
  wd.record_cycle(1);
  EXPECT_FALSE(wd.should_degrade());
  wd.record_cycle(0);  // streak broken
  wd.record_cycle(3);
  wd.record_cycle(1);
  wd.record_cycle(4);
  EXPECT_TRUE(wd.should_degrade());
  EXPECT_EQ(wd.cycle_overruns(), 5u);
  EXPECT_EQ(wd.overrun_slots(), 11);
}

TEST(AdaptiveExecutive, MatchesPlainExecutiveWithoutFaults) {
  const GraphModel model = tiered_model();
  const ModeLadder ladder = build_mode_ladder(model);
  ASSERT_TRUE(ladder.success) << ladder.failure_reason;
  const ConstraintArrivals arrivals = tiered_arrivals(2000);

  const AdaptiveResult adaptive = run_adaptive_executive(ladder, arrivals, 2100);
  EXPECT_TRUE(adaptive.all_served_met());
  EXPECT_TRUE(adaptive.mode_changes.empty());
  EXPECT_EQ(adaptive.final_mode, 0u);
  EXPECT_EQ(adaptive.overrun_ops, 0u);

  const ExecutiveResult plain =
      run_executive(ladder.modes[0].schedule, ladder.base, arrivals, 2100);
  EXPECT_TRUE(plain.all_met);
  EXPECT_EQ(adaptive.invocations.size(), plain.invocations.size());
}

TEST(AdaptiveExecutive, AdmissionDefersBurstsAndRecordsDecisions) {
  const GraphModel model = tiered_model();
  const ModeLadder ladder = build_mode_ladder(model);
  ASSERT_TRUE(ladder.success);

  // CRIT (sep 6) arrives as a burst: 0, 1, 2 — plus a negative instant.
  ConstraintArrivals arrivals(3);
  arrivals[0] = {-3, 0, 1, 2, 40};
  const AdaptiveResult r = run_adaptive_executive(ladder, arrivals, 300);

  ASSERT_EQ(r.admissions.size(), 5u);
  EXPECT_EQ(r.admissions[0].decision, AdmissionDecision::kRejected);  // t=-3
  EXPECT_EQ(r.admissions[1].decision, AdmissionDecision::kAdmitted);  // t=0
  EXPECT_EQ(r.admissions[2].decision, AdmissionDecision::kDeferred);  // t=1 -> 6
  EXPECT_EQ(r.admissions[2].admitted, 6);
  EXPECT_EQ(r.admissions[3].decision, AdmissionDecision::kDeferred);  // t=2 -> 12
  EXPECT_EQ(r.admissions[3].admitted, 12);
  EXPECT_EQ(r.admissions[4].decision, AdmissionDecision::kAdmitted);  // t=40
  EXPECT_TRUE(r.all_served_met());  // deferred arrivals are legal, so served
}

TEST(AdaptiveExecutive, AdmissionRejectPolicyAndBackoffCap) {
  const GraphModel model = tiered_model();
  const ModeLadder ladder = build_mode_ladder(model);
  ASSERT_TRUE(ladder.success);

  ConstraintArrivals arrivals(3);
  arrivals[0] = {0, 1, 2};

  AdaptiveOptions strict;
  strict.admission = AdmissionPolicy::kReject;
  const AdaptiveResult r1 = run_adaptive_executive(ladder, arrivals, 300, strict);
  ASSERT_EQ(r1.admissions.size(), 3u);
  EXPECT_EQ(r1.admissions[1].decision, AdmissionDecision::kRejected);
  EXPECT_EQ(r1.admissions[2].decision, AdmissionDecision::kRejected);

  AdaptiveOptions capped;
  capped.max_backoff = 5;  // t=1 -> 6 (backoff 5, ok); t=2 -> 12 (10, too far)
  const AdaptiveResult r2 = run_adaptive_executive(ladder, arrivals, 300, capped);
  ASSERT_EQ(r2.admissions.size(), 3u);
  EXPECT_EQ(r2.admissions[1].decision, AdmissionDecision::kDeferred);
  EXPECT_EQ(r2.admissions[2].decision, AdmissionDecision::kRejected);
}

// The acceptance scenario: 10%+ of executions overrun their declared
// weight; the blind executive misses CRIT deadlines, the adaptive one
// degrades (shedding BULK, then MID) and keeps every CRIT invocation
// satisfied.
TEST(AdaptiveExecutive, DegradedModeKeepsCriticalConstraintsAlive) {
  const GraphModel model = tiered_model();
  const ModeLadder ladder = build_mode_ladder(model);
  ASSERT_TRUE(ladder.success) << ladder.failure_reason;
  ASSERT_EQ(ladder.modes.size(), 3u);

  const Time horizon = 6000;
  const ConstraintArrivals arrivals = tiered_arrivals(horizon);

  OverrunModel overruns;
  overruns.probability = 0.25;
  overruns.magnitude = 3.0;
  overruns.seed = 11;

  // Baseline: the non-adaptive executive under the same fault model,
  // verified against CRIT alone — it demonstrably misses.
  GraphModel crit_only(ladder.base.comm());
  crit_only.add_constraint(ladder.base.constraint(0));
  const OverrunRunResult baseline =
      run_with_overruns(ladder.modes[0].schedule, crit_only, {arrivals[0]}, horizon,
                        overruns);
  EXPECT_GT(baseline.overrun_ops, 0u);
  EXPECT_LT(baseline.satisfied, baseline.invocations)
      << "scenario too easy: blind executive served every CRIT invocation";

  // Adaptive: same faults, watchdog-driven degradation; stay degraded
  // (recovery effectively disabled) for the comparison.
  AdaptiveOptions opts;
  opts.overruns = overruns;
  opts.watchdog.window = 16;  // react fast: CRIT's slack erodes within ~2 cycles
  opts.watchdog.min_observations = 4;
  opts.watchdog.degrade_threshold = 0.1;
  opts.watchdog.recovery_cycles = 100000;
  const AdaptiveResult adaptive = run_adaptive_executive(ladder, arrivals, horizon, opts);

  EXPECT_GT(adaptive.overrun_ops, 0u);
  EXPECT_FALSE(adaptive.mode_changes.empty());
  EXPECT_GT(adaptive.final_mode, 0u);
  EXPECT_GT(adaptive.shed_count[2], 0u);  // BULK was load-shed
  EXPECT_EQ(adaptive.critical_misses(ladder.base, 2), 0u)
      << "a CRIT invocation missed its deadline under degradation";
  // CRIT was genuinely exercised, not just shed.
  EXPECT_GT(adaptive.served_count[0], 100u);
  EXPECT_EQ(adaptive.shed_count[0], 0u);
}

TEST(AdaptiveExecutive, RecoversToPrimaryWhenOverrunsAreElementLocal) {
  // A two-tier model with real idle headroom (util ~0.64), so slide
  // from BULK's overruns is absorbed each cycle instead of compounding:
  // only BULK's own tight window (d == separation-spaced service) ever
  // misses. Once BULK is shed the degraded mode runs clean, so after
  // the recovery window the executive steps back up to the primary —
  // where overruns resume and it degrades again (a shed/recover cycle).
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"CRIT", single(0), 6, 14, ConstraintKind::kAsynchronous, 2});
  model.add_constraint(
      TimingConstraint{"BULK", single(1), 4, 4, ConstraintKind::kAsynchronous, 0});
  const ModeLadder ladder = build_mode_ladder(model);
  ASSERT_TRUE(ladder.success) << ladder.failure_reason;
  ASSERT_EQ(ladder.modes.size(), 2u);

  const Time horizon = 8000;
  ConstraintArrivals arrivals(2);
  arrivals[0] = rt::max_rate_arrivals(6, horizon);
  arrivals[1] = rt::max_rate_arrivals(4, horizon);

  AdaptiveOptions opts;
  opts.overruns.probability = 0.0;
  opts.overruns.magnitude = 3.0;
  opts.overruns.seed = 5;
  opts.overruns.element_probability = {0.0, 0.35};  // element "b" only
  opts.watchdog.window = 16;
  opts.watchdog.min_observations = 4;
  opts.watchdog.degrade_threshold = 0.1;
  opts.watchdog.recovery_cycles = 3;

  const AdaptiveResult r = run_adaptive_executive(ladder, arrivals, horizon, opts);
  bool stepped_down = false;
  bool stepped_up = false;
  for (const ModeChange& mc : r.mode_changes) {
    if (mc.to > mc.from) stepped_down = true;
    if (mc.to < mc.from && stepped_down) stepped_up = true;
  }
  EXPECT_TRUE(stepped_down);
  EXPECT_TRUE(stepped_up);
  EXPECT_EQ(r.final_mode, 0u);  // ends recovered
  // CRIT never suffers: its element never overruns, the idle headroom
  // absorbs BULK's slide, and it is never shed.
  EXPECT_EQ(r.shed_count[0], 0u);
  EXPECT_EQ(r.miss_count[0], 0u);
  // BULK pays: some invocations shed while degraded, some missed while
  // primary — that is the graceful-degradation contract.
  EXPECT_GT(r.shed_count[1], 0u);
}

TEST(AdaptiveExecutive, RejectsUnusableLadderAndNegativeHorizon) {
  ModeLadder broken;  // success == false, no modes
  EXPECT_THROW((void)run_adaptive_executive(broken, {}, 100), std::invalid_argument);

  const ModeLadder ladder = build_mode_ladder(tiered_model());
  ASSERT_TRUE(ladder.success);
  EXPECT_THROW((void)run_adaptive_executive(ladder, {}, -1), std::invalid_argument);
}

TEST(AdaptiveExecutive, HardenedLadderReplicatesSurvivors) {
  // With harden_k = 1 the degraded modes carry 2 disjoint executions
  // per original window for every surviving constraint.
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"KEEP", single(0), 6, 16, ConstraintKind::kAsynchronous, 1});
  model.add_constraint(
      TimingConstraint{"SHED", single(1), 4, 12, ConstraintKind::kAsynchronous, 0});

  ModeLadderOptions opts;
  opts.harden_k = 1;
  const ModeLadder ladder = build_mode_ladder(model, opts);
  ASSERT_TRUE(ladder.success) << ladder.failure_reason;
  ASSERT_EQ(ladder.modes.size(), 2u);
  const auto ft = fault_tolerant_latency(ladder.modes[1].schedule,
                                         ladder.base.constraint(0).task_graph, 2);
  ASSERT_TRUE(ft.has_value());
  EXPECT_LE(*ft, 16);
}

}  // namespace
}  // namespace rtg::core
