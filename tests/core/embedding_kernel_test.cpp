// Differential + pin tests for the indexed embedding kernel and the
// incremental verifier (ISSUE 3).
//
//   * verify_schedule's indexed serial and parallel paths must be
//     bit-identical to the pre-index flat-scan verifier, which is kept
//     as a reference implementation behind VerifyOptions::flat_reference;
//   * EmbeddingKernel witnesses must be bit-identical to the public
//     flat-scan find_earliest_embedding — including exclusion masks and
//     BnB repeated-label instances — and every assignment index must be
//     a valid position into the public unroll_ops view;
//   * IncrementalVerifier's drop reports must equal a from-scratch
//     verify of each candidate, across commits;
//   * compact_schedule on the incremental verifier must reproduce the
//     legacy generate-and-test compaction exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/optimize.hpp"
#include "core/static_schedule.hpp"
#include "graph/generators.hpp"
#include "sim/rng.hpp"

namespace rtg::core {
namespace {

graph::Digraph random_digraph(sim::Rng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0:
      return graph::make_chain(rng.uniform(1, 4));
    case 1:
      return graph::make_fork_join(rng.uniform(1, 3));
    case 2:
      return graph::make_random_dag(rng.uniform(1, 5), 0.4, rng);
    default:
      return graph::make_series_parallel(rng.uniform(1, 4), 0.5, rng);
  }
}

GraphModel random_model(sim::Rng& rng, Time min_d, Time max_d) {
  const graph::Digraph dag = random_digraph(rng);
  CommGraph comm;
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    comm.add_element("e" + std::to_string(v), rng.uniform(1, 2));
  }
  for (const auto& e : dag.edges()) {
    comm.add_channel(static_cast<ElementId>(e.from), static_cast<ElementId>(e.to));
  }
  const std::size_t n = dag.node_count();
  GraphModel model(std::move(comm));

  const int k = static_cast<int>(rng.uniform(1, 3));
  for (int c = 0; c < k; ++c) {
    TaskGraph tg;
    graph::NodeId v = static_cast<graph::NodeId>(rng.uniform(0, n - 1));
    OpId prev = tg.add_op(static_cast<ElementId>(v));
    const int steps = static_cast<int>(rng.uniform(0, 2));
    for (int s = 0; s < steps; ++s) {
      const auto& succ = dag.successors(v);
      if (succ.empty()) break;
      v = succ[rng.uniform(0, succ.size() - 1)];
      const OpId op = tg.add_op(static_cast<ElementId>(v));
      tg.add_dep(prev, op);
      prev = op;
    }
    model.add_constraint(TimingConstraint{
        "c" + std::to_string(c), std::move(tg), rng.uniform(1, 6),
        rng.uniform(min_d, max_d),
        rng.chance(0.4) ? ConstraintKind::kPeriodic : ConstraintKind::kAsynchronous});
  }
  return model;
}

StaticSchedule random_schedule(sim::Rng& rng, const GraphModel& model) {
  StaticSchedule sched;
  const std::size_t n = model.comm().size();
  const int entries = static_cast<int>(rng.uniform(0, 12));
  for (int i = 0; i < entries; ++i) {
    if (rng.chance(0.25)) {
      sched.push_idle(rng.uniform(1, 3));
    } else {
      const auto e = static_cast<ElementId>(rng.uniform(0, n - 1));
      sched.push_execution(e, model.comm().weight(e));
    }
  }
  return sched;
}

// The drop edit compact_schedule performs: execution entry -> equal idle.
StaticSchedule drop_to_idle(const StaticSchedule& sched, std::size_t entry) {
  StaticSchedule out;
  const auto& entries = sched.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i == entry || entries[i].elem == kIdleEntry) {
      out.push_idle(entries[i].duration);
    } else {
      out.push_execution(entries[i].elem, entries[i].duration);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Differential: indexed serial + parallel vs the flat-scan reference.

class IndexedVerifyDiff : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedVerifyDiff,
                         ::testing::Range<std::uint64_t>(0, 200));

TEST_P(IndexedVerifyDiff, BitIdenticalToFlatReference) {
  sim::Rng rng(GetParam() * 6364136223846793005ULL + 1442695040888963407ULL);
  const GraphModel model = random_model(rng, 1, 12);
  const StaticSchedule sched = random_schedule(rng, model);

  VerifyStats flat_stats;
  const FeasibilityReport flat = verify_schedule(
      sched, model, VerifyOptions{.stats = &flat_stats, .flat_reference = true});
  EXPECT_EQ(flat_stats.threads_used, 1u);
  EXPECT_EQ(flat_stats.embedding_queries, 0u);  // reference path: no counters

  for (const std::size_t n_threads : {1, 2, 4, 8}) {
    VerifyStats stats;
    const FeasibilityReport indexed = verify_schedule(
        sched, model, VerifyOptions{.n_threads = n_threads, .stats = &stats});
    EXPECT_EQ(indexed, flat) << "n_threads = " << n_threads;
    // Every work unit is answered exactly once, computed or memoized —
    // now on the serial path too (it shares the query table).
    EXPECT_EQ(stats.embedding_queries + stats.memo_hits, stats.work_units);
  }
}

// ---------------------------------------------------------------------------
// Witness pin: kernel witnesses == flat-scan witnesses, and assignments
// are valid positions into the public unroll_ops view.

void expect_valid_witness(const EmbeddingWitness& w, const TaskGraph& tg,
                          const std::vector<ScheduledOp>& ops, Time window_begin) {
  ASSERT_EQ(w.assignment.size(), tg.size());
  std::vector<bool> taken(ops.size(), false);
  for (std::size_t j = 0; j < w.assignment.size(); ++j) {
    const std::size_t idx = w.assignment[j];
    ASSERT_LT(idx, ops.size());
    EXPECT_EQ(ops[idx].elem, tg.labels()[j]);
    EXPECT_GE(ops[idx].start, window_begin);
    EXPECT_LE(ops[idx].finish(), w.finish);
    EXPECT_FALSE(taken[idx]) << "assignment not injective";
    taken[idx] = true;
  }
}

class KernelWitnessPin : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, KernelWitnessPin,
                         ::testing::Range<std::uint64_t>(0, 150));

TEST_P(KernelWitnessPin, MatchesFlatScanIncludingExclusions) {
  sim::Rng rng(GetParam() * 2862933555777941757ULL + 3037000493ULL);
  const GraphModel model = random_model(rng, 1, 10);
  const StaticSchedule sched = random_schedule(rng, model);
  if (sched.length() == 0) GTEST_SKIP() << "empty schedule";

  const std::size_t periods = 4;
  const std::vector<ScheduledOp> ops = unroll_ops(sched, periods);
  const UnrollIndex index(sched, periods);
  ASSERT_EQ(index.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(index.op(i).elem, ops[i].elem);
    EXPECT_EQ(index.op(i).start, ops[i].start);
    EXPECT_EQ(index.op(i).duration, ops[i].duration);
  }

  for (std::size_t c = 0; c < model.constraint_count(); ++c) {
    const TaskGraph& tg = model.constraint(c).task_graph;
    EmbeddingKernel kernel(tg, index);
    for (Time t = 0; t < sched.length() + 2; ++t) {
      const auto flat = find_earliest_embedding(tg, ops, t);
      const auto indexed = kernel.witness_at(t);
      ASSERT_EQ(indexed.has_value(), flat.has_value()) << "t = " << t;
      if (!flat) continue;
      EXPECT_EQ(indexed->finish, flat->finish);
      EXPECT_EQ(indexed->assignment, flat->assignment);  // bit-identical
      expect_valid_witness(*indexed, tg, ops, t);

      // Exclude the first pick and re-solve: both kernels must agree on
      // the alternate (or on infeasibility).
      std::vector<bool> excluded(ops.size(), false);
      excluded[flat->assignment.front()] = true;
      const auto flat_ex = find_earliest_embedding(tg, ops, t, excluded);
      const auto indexed_ex = kernel.witness_at(t, excluded);
      ASSERT_EQ(indexed_ex.has_value(), flat_ex.has_value());
      if (flat_ex) {
        EXPECT_EQ(indexed_ex->finish, flat_ex->finish);
        EXPECT_EQ(indexed_ex->assignment, flat_ex->assignment);
        expect_valid_witness(*indexed_ex, tg, ops, t);
      }
    }
    // finish_at agrees with witness_at and with the span reference.
    for (Time t = 0; t < sched.length() + 2; ++t) {
      const auto f = kernel.finish_at(t);
      const auto ref = earliest_embedding_finish(tg, ops, t);
      EXPECT_EQ(f, ref) << "t = " << t;
    }
  }
}

// Repeated labels force the branch-and-bound kernel: two ops on the same
// element must map to *distinct* executions, bit-identically to the
// flat-scan BnB.
TEST(KernelWitnessPin, BnbInjectiveRepeatedLabels) {
  TaskGraph tg;  // a -> b -> a : element 0 labels two ops
  const OpId o0 = tg.add_op(0);
  const OpId o1 = tg.add_op(1);
  const OpId o2 = tg.add_op(0);
  tg.add_dep(o0, o1);
  tg.add_dep(o1, o2);

  StaticSchedule sched;
  sched.push_execution(0, 1);
  sched.push_idle(1);
  sched.push_execution(1, 2);
  sched.push_execution(0, 1);
  sched.push_idle(2);

  const std::size_t periods = 5;
  const std::vector<ScheduledOp> ops = unroll_ops(sched, periods);
  const UnrollIndex index(sched, periods);
  EmbeddingKernel kernel(tg, index);
  for (Time t = 0; t < 2 * sched.length(); ++t) {
    const auto flat = find_earliest_embedding(tg, ops, t);
    const auto indexed = kernel.witness_at(t);
    ASSERT_EQ(indexed.has_value(), flat.has_value()) << "t = " << t;
    if (!flat) continue;
    EXPECT_EQ(indexed->finish, flat->finish);
    EXPECT_EQ(indexed->assignment, flat->assignment);
    EXPECT_NE(indexed->assignment[o0], indexed->assignment[o2]);
    expect_valid_witness(*indexed, tg, ops, t);
  }
}

// A periods_limit-capped kernel over a longer shared index answers
// exactly like a kernel over the shorter unroll.
TEST(KernelWitnessPin, PeriodsLimitMatchesShorterUnroll) {
  sim::Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const GraphModel model = random_model(rng, 1, 8);
    const StaticSchedule sched = random_schedule(rng, model);
    if (sched.length() == 0) continue;
    const UnrollIndex big(sched, 6);
    const std::vector<ScheduledOp> small_ops = unroll_ops(sched, 2);
    for (std::size_t c = 0; c < model.constraint_count(); ++c) {
      const TaskGraph& tg = model.constraint(c).task_graph;
      EmbeddingKernel capped(tg, big, /*periods_limit=*/2);
      for (Time t = 0; t < sched.length(); ++t) {
        EXPECT_EQ(capped.finish_at(t), earliest_embedding_finish(tg, small_ops, t));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// IncrementalVerifier: drop reports equal from-scratch verification,
// across rejected candidates and commits.

class IncrementalDiff : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDiff,
                         ::testing::Range<std::uint64_t>(0, 100));

TEST_P(IncrementalDiff, DropReportsMatchFullVerify) {
  sim::Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 0xBF58476D1CE4E5B9ULL);
  const GraphModel model = random_model(rng, 1, 12);
  StaticSchedule sched = random_schedule(rng, model);

  IncrementalVerifier verifier(model);
  EXPECT_EQ(verifier.verify(sched), verify_schedule(sched, model, VerifyOptions{.n_threads = 1}));

  // Walk the executions like compact_schedule does: probe every drop,
  // commit the feasible ones, and re-check the committed baseline.
  for (int round = 0; round < 3; ++round) {
    bool committed = false;
    const auto entries = sched.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].elem == kIdleEntry) continue;
      const StaticSchedule candidate = drop_to_idle(sched, i);
      const FeasibilityReport& incremental = verifier.verify_drop(candidate, i);
      const FeasibilityReport full =
          verify_schedule(candidate, model, VerifyOptions{.n_threads = 1});
      ASSERT_EQ(incremental, full) << "entry " << i;
      if (incremental.feasible) {
        verifier.commit_drop();
        sched = candidate;
        EXPECT_EQ(verifier.report(), full);
        committed = true;
        break;
      }
    }
    if (!committed) break;
  }
  // After the walk the cumulative counters are consistent.
  const VerifyStats& stats = verifier.stats();
  EXPECT_EQ(stats.embedding_queries + stats.memo_hits + stats.incremental_hits,
            stats.work_units);
}

// Infeasible drops are also reported exactly — including the case where
// the dropped execution was the element's last occurrence.
TEST(IncrementalVerifier, LastOccurrenceDropMatchesFullVerify) {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"c0", std::move(tg), 1, 6, ConstraintKind::kAsynchronous});

  StaticSchedule sched;
  sched.push_execution(0, 1);  // only execution of element 0
  sched.push_execution(1, 1);
  sched.push_idle(2);

  IncrementalVerifier verifier(model);
  EXPECT_TRUE(verifier.verify(sched).feasible);
  const StaticSchedule candidate = drop_to_idle(sched, 0);
  const FeasibilityReport& inc = verifier.verify_drop(candidate, 0);
  const FeasibilityReport full = verify_schedule(candidate, model);
  EXPECT_EQ(inc, full);
  EXPECT_FALSE(inc.feasible);
}

TEST(IncrementalVerifier, RejectsMalformedEdits) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  StaticSchedule sched;
  sched.push_execution(0, 1);
  sched.push_idle(1);

  IncrementalVerifier verifier(model);
  verifier.verify(sched);
  EXPECT_THROW(verifier.verify_drop(sched, 1), std::invalid_argument);  // idle entry
  StaticSchedule longer = sched;
  longer.push_idle(1);
  EXPECT_THROW(verifier.verify_drop(longer, 0), std::invalid_argument);
  EXPECT_THROW(verifier.commit_drop(), std::logic_error);  // nothing pending
}

// ---------------------------------------------------------------------------
// compact_schedule on the incremental verifier == legacy generate-and-test.

StaticSchedule reference_compact(const StaticSchedule& sched, const GraphModel& model,
                                 std::size_t* removed) {
  StaticSchedule current = sched;
  bool changed = true;
  while (changed) {
    changed = false;
    const auto entries = current.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].elem == kIdleEntry) continue;
      StaticSchedule candidate = drop_to_idle(current, i);
      if (verify_schedule(candidate, model, VerifyOptions{.n_threads = 1}).feasible) {
        current = std::move(candidate);
        if (removed) ++*removed;
        changed = true;
        break;
      }
    }
  }
  return current;
}

TEST(CompactEquivalence, IncrementalCompactionMatchesLegacy) {
  sim::Rng rng(0xC0117AC7);
  int compacted = 0;
  std::size_t total_hits = 0;
  for (int i = 0; i < 40; ++i) {
    const GraphModel model = random_model(rng, 4, 16);
    const HeuristicResult built = latency_schedule(model, HeuristicOptions{.n_threads = 1});
    if (!built.success) continue;
    // The constructed schedule is expressed against the (possibly
    // pipelined) scheduled_model, not the input model.
    const GraphModel& scheduled = built.scheduled_model;

    OptimizeStats stats;
    const StaticSchedule fast = compact_schedule(*built.schedule, scheduled, &stats);
    std::size_t removed = 0;
    const StaticSchedule slow = reference_compact(*built.schedule, scheduled, &removed);
    EXPECT_EQ(fast, slow);
    EXPECT_EQ(stats.executions_removed, removed);
    total_hits += stats.verify.incremental_hits;
    ++compacted;
  }
  ASSERT_GT(compacted, 0);
  // The whole point: the loop stops re-verifying unedited windows.
  EXPECT_GT(total_hits, 0u);
}

TEST(HeuristicRefine, RefinementPreservesFeasibilityAndCachesWindows) {
  sim::Rng rng(4242);
  bool exercised = false;
  for (int i = 0; i < 20 && !exercised; ++i) {
    const GraphModel model = random_model(rng, 6, 20);
    HeuristicOptions options;
    options.n_threads = 1;
    options.refine = true;
    const HeuristicResult refined = latency_schedule(model, options);
    if (!refined.success) continue;
    ASSERT_TRUE(refined.report.feasible);
    EXPECT_TRUE(verify_schedule(*refined.schedule, refined.scheduled_model).feasible);
    if (refined.refine_stats.executions_removed > 0) {
      EXPECT_GT(refined.refine_stats.verify.incremental_hits, 0u);
      exercised = true;
    }
  }
  EXPECT_TRUE(exercised) << "no model exercised the refinement pass";
}

// ---------------------------------------------------------------------------
// Small-work cutoff (auto thread count) + counter sanity.

TEST(VerifyCutoff, AutoFallsBackToSerialOnSmallPlans) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"c0", std::move(tg), 1, 4, ConstraintKind::kAsynchronous});
  StaticSchedule sched;
  sched.push_execution(0, 1);
  sched.push_idle(1);

  VerifyStats stats;
  const FeasibilityReport auto_report =
      verify_schedule(sched, model, VerifyOptions{.n_threads = 0, .stats = &stats});
  // The plan is far below the cutoff, so auto must choose the serial
  // path regardless of core count.
  EXPECT_EQ(stats.threads_used, 1u);

  // Explicit thread counts are honoured — and agree with auto.
  const FeasibilityReport forced =
      verify_schedule(sched, model, VerifyOptions{.n_threads = 4, .stats = &stats});
  EXPECT_EQ(stats.threads_used, 4u);
  EXPECT_EQ(forced, auto_report);
}

TEST(VerifyCounters, SerialEngineReportsKernelActivity) {
  // One async constraint over a schedule with several executions: its
  // offset set {0} ∪ {op starts + 1} yields multiple queries on one
  // kernel, so every counter must move.
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  comm.add_channel(0, 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const OpId o0 = tg.add_op(0);
  const OpId o1 = tg.add_op(1);
  tg.add_dep(o0, o1);
  model.add_constraint(
      TimingConstraint{"c0", std::move(tg), 1, 8, ConstraintKind::kAsynchronous});

  StaticSchedule sched;
  sched.push_execution(0, 1);
  sched.push_execution(1, 1);
  sched.push_idle(1);
  sched.push_execution(0, 1);
  sched.push_execution(1, 1);
  sched.push_idle(1);

  VerifyStats stats;
  const FeasibilityReport report =
      verify_schedule(sched, model, VerifyOptions{.n_threads = 1, .stats = &stats});
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(stats.threads_used, 1u);
  EXPECT_EQ(stats.embedding_queries + stats.memo_hits, stats.work_units);
  EXPECT_GT(stats.embedding_queries, 1u);
  EXPECT_GT(stats.index_seeks, 0u);
  EXPECT_GT(stats.arena_reuses, 0u);
}

}  // namespace
}  // namespace rtg::core
