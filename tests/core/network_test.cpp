#include "core/network.hpp"

#include <gtest/gtest.h>

namespace rtg::core {
namespace {

TEST(NetworkTopology, ConstructionAndLinks) {
  NetworkTopology t(3);
  EXPECT_EQ(t.processors(), 3u);
  EXPECT_TRUE(t.add_link(0, 1));
  EXPECT_FALSE(t.add_link(0, 1));  // duplicate
  EXPECT_TRUE(t.has_link(0, 1));
  EXPECT_FALSE(t.has_link(1, 0));
  t.add_duplex(1, 2);
  EXPECT_TRUE(t.has_link(2, 1));
  EXPECT_EQ(t.links().size(), 3u);
}

TEST(NetworkTopology, RejectsBadLinks) {
  NetworkTopology t(2);
  EXPECT_THROW(t.add_link(0, 0), std::invalid_argument);
  EXPECT_THROW(t.add_link(0, 5), std::out_of_range);
  EXPECT_THROW(NetworkTopology(0), std::invalid_argument);
}

TEST(NetworkTopology, RouteShortestPath) {
  // 0 -> 1 -> 2 and a shortcut 0 -> 2.
  NetworkTopology t(3);
  t.add_link(0, 1);
  t.add_link(1, 2);
  t.add_link(0, 2);
  EXPECT_EQ(t.route(0, 2), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(t.route(0, 1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(t.route(0, 0), (std::vector<std::size_t>{0}));
  EXPECT_EQ(t.route(2, 0), std::nullopt);  // directed
}

TEST(NetworkTopology, PrefabShapes) {
  const NetworkTopology mesh = NetworkTopology::full_mesh(4);
  EXPECT_EQ(mesh.links().size(), 12u);
  EXPECT_EQ(mesh.route(3, 1)->size(), 2u);

  const NetworkTopology ring = NetworkTopology::ring(4);
  EXPECT_EQ(ring.links().size(), 8u);
  EXPECT_EQ(ring.route(0, 2)->size(), 3u);  // two hops around

  const NetworkTopology star = NetworkTopology::star(4);
  EXPECT_EQ(star.links().size(), 6u);
  EXPECT_EQ(star.route(1, 3), (std::vector<std::size_t>{1, 0, 3}));
}

TEST(NetworkTopology, RingOfTwoHasNoDuplicateLinks) {
  const NetworkTopology ring = NetworkTopology::ring(2);
  EXPECT_EQ(ring.links().size(), 2u);
}

GraphModel two_stage_model(Time deadline) {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  comm.add_channel(0, 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const OpId oa = tg.add_op(0);
  const OpId ob = tg.add_op(1);
  tg.add_dep(oa, ob);
  model.add_constraint(
      TimingConstraint{"flow", std::move(tg), 20, deadline,
                       ConstraintKind::kAsynchronous});
  return model;
}

TEST(NetworkLatency, DirectLinkMatchesBusSemantics) {
  // a on P0 every slot, b on P1 every slot, direct link with one slot.
  TaskGraph tg;
  const OpId oa = tg.add_op(0);
  const OpId ob = tg.add_op(1);
  tg.add_dep(oa, ob);
  StaticSchedule p0;
  p0.push_execution(0, 1);
  StaticSchedule p1;
  p1.push_execution(1, 1);
  NetworkTopology t(2);
  t.add_link(0, 1);
  std::vector<LinkSchedule> tables{
      LinkSchedule{NetworkLink{0, 1}, {LinkSlot{0, 1, 0}}}};
  const auto lat = network_latency(tg, {p0, p1}, {0, 1}, t, tables);
  ASSERT_TRUE(lat.has_value());
  EXPECT_EQ(*lat, 3);  // a@[t,t+1), msg [t+1,t+2), b@[t+2,t+3)
}

TEST(NetworkLatency, TwoHopRouteAddsLatency) {
  // a on P0, b on P2, route through P1: two hops.
  TaskGraph tg;
  const OpId oa = tg.add_op(0);
  const OpId ob = tg.add_op(1);
  tg.add_dep(oa, ob);
  StaticSchedule p0;
  p0.push_execution(0, 1);
  StaticSchedule idle;
  idle.push_idle(1);
  StaticSchedule p2;
  p2.push_execution(1, 1);
  NetworkTopology t(3);
  t.add_link(0, 1);
  t.add_link(1, 2);
  std::vector<LinkSchedule> tables{
      LinkSchedule{NetworkLink{0, 1}, {LinkSlot{0, 1, 0}}},
      LinkSchedule{NetworkLink{1, 2}, {LinkSlot{0, 1, 1}}}};
  const auto lat = network_latency(tg, {p0, idle, p2}, {0, 2}, t, tables);
  ASSERT_TRUE(lat.has_value());
  EXPECT_EQ(*lat, 4);  // one extra hop vs the direct case
}

TEST(NetworkLatency, MissingSlotIsInfinite) {
  TaskGraph tg;
  const OpId oa = tg.add_op(0);
  const OpId ob = tg.add_op(1);
  tg.add_dep(oa, ob);
  StaticSchedule p0;
  p0.push_execution(0, 1);
  StaticSchedule p1;
  p1.push_execution(1, 1);
  NetworkTopology t(2);
  t.add_link(0, 1);
  std::vector<LinkSchedule> empty_table{LinkSchedule{NetworkLink{0, 1}, {}}};
  EXPECT_EQ(network_latency(tg, {p0, p1}, {0, 1}, t, empty_table), std::nullopt);
}

TEST(NetworkLatency, NoRouteIsInfinite) {
  TaskGraph tg;
  const OpId oa = tg.add_op(0);
  const OpId ob = tg.add_op(1);
  tg.add_dep(oa, ob);
  StaticSchedule p0;
  p0.push_execution(0, 1);
  StaticSchedule p1;
  p1.push_execution(1, 1);
  NetworkTopology t(2);  // no links at all
  EXPECT_EQ(network_latency(tg, {p0, p1}, {0, 1}, t, {}), std::nullopt);
}

TEST(NetworkSchedule, SingleProcessorTrivial) {
  const GraphModel model = two_stage_model(16);
  const NetworkScheduleResult r =
      network_schedule(model, NetworkTopology::full_mesh(1));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(r.link_schedules.empty());
}

TEST(NetworkSchedule, MeshTwoProcessors) {
  const GraphModel model = two_stage_model(24);
  NetworkOptions options;
  options.strategy = PartitionStrategy::kRoundRobin;  // force a crossing
  const NetworkScheduleResult r =
      network_schedule(model, NetworkTopology::full_mesh(2), options);
  ASSERT_TRUE(r.success) << r.failure_reason;
  ASSERT_EQ(r.end_to_end_latency.size(), 1u);
  EXPECT_LE(*r.end_to_end_latency[0], 24);
  EXPECT_FALSE(r.link_schedules.empty());
}

TEST(NetworkSchedule, FailsWithoutRoute) {
  const GraphModel model = two_stage_model(24);
  NetworkOptions options;
  options.strategy = PartitionStrategy::kRoundRobin;
  NetworkTopology disconnected(2);  // no links
  const NetworkScheduleResult r = network_schedule(model, disconnected, options);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("no route"), std::string::npos);
}

TEST(NetworkSchedule, RingRoutesMultiHop) {
  // Three-stage pipeline across a 3-ring with round-robin placement:
  // some channel must take the ring.
  CommGraph comm;
  comm.add_element("s0", 1);
  comm.add_element("s1", 1);
  comm.add_element("s2", 1);
  comm.add_channel(0, 1);
  comm.add_channel(1, 2);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  const OpId c = tg.add_op(2);
  tg.add_dep(a, b);
  tg.add_dep(b, c);
  model.add_constraint(
      TimingConstraint{"pipe", std::move(tg), 30, 40, ConstraintKind::kAsynchronous});

  NetworkOptions options;
  options.strategy = PartitionStrategy::kRoundRobin;
  const NetworkScheduleResult r =
      network_schedule(model, NetworkTopology::ring(3), options);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_LE(*r.end_to_end_latency[0], 40);
}

TEST(NetworkSchedule, StarFunnelsThroughHub) {
  // Leaves 1 and 2 communicate through hub 0: route length 3.
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  comm.add_channel(0, 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const OpId oa = tg.add_op(0);
  const OpId ob = tg.add_op(1);
  tg.add_dep(oa, ob);
  model.add_constraint(
      TimingConstraint{"f", std::move(tg), 20, 30, ConstraintKind::kAsynchronous});

  // Manual placement via assignment check: with 3 processors and
  // round-robin, a -> P0, b -> P1 (direct hub link). Use a 3-star and
  // LPT which may co-locate; accept either but require success.
  const NetworkScheduleResult r =
      network_schedule(model, NetworkTopology::star(3), NetworkOptions{});
  ASSERT_TRUE(r.success) << r.failure_reason;
}

}  // namespace
}  // namespace rtg::core
