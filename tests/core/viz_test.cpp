#include "core/viz.hpp"

#include <gtest/gtest.h>

namespace rtg::core {
namespace {

GraphModel tiny_model() {
  CommGraph comm;
  comm.add_element("fx", 1);
  comm.add_element("fs", 2, false);
  comm.add_channel(0, 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  tg.add_dep(a, b);
  model.add_constraint(
      TimingConstraint{"X", std::move(tg), 8, 8, ConstraintKind::kPeriodic});
  return model;
}

TEST(TaskGraphDot, NodesAndEdges) {
  const GraphModel model = tiny_model();
  const std::string dot =
      task_graph_dot(model.constraint(0).task_graph, model.comm(), "X");
  EXPECT_NE(dot.find("digraph X {"), std::string::npos);
  EXPECT_NE(dot.find("label=\"fx\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"fs\""), std::string::npos);
  EXPECT_NE(dot.find("o0 -> o1;"), std::string::npos);
}

TEST(TaskGraphDot, RepeatedLabelsDisambiguated) {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  comm.add_channel(0, 1);
  comm.add_channel(1, 0);
  TaskGraph tg;
  const OpId a1 = tg.add_op(0);
  const OpId b = tg.add_op(1);
  const OpId a2 = tg.add_op(0);
  tg.add_dep(a1, b);
  tg.add_dep(b, a2);
  const std::string dot = task_graph_dot(tg, comm);
  EXPECT_NE(dot.find("a#1"), std::string::npos);
  EXPECT_NE(dot.find("a#2"), std::string::npos);
}

TEST(ModelDot, ConstraintNotesAndFlags) {
  const std::string dot = model_dot(tiny_model());
  EXPECT_NE(dot.find("fs (w=2)"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);  // nopipeline
  EXPECT_NE(dot.find("periodic p=8 d=8"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(ScheduleGantt, RowsAndRuler) {
  const GraphModel model = tiny_model();
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_execution(1, 2);
  s.push_idle(1);
  const std::string gantt = schedule_gantt(s, model.comm());
  EXPECT_NE(gantt.find("fx"), std::string::npos);
  EXPECT_NE(gantt.find("fs"), std::string::npos);
  EXPECT_NE(gantt.find("|#...|"), std::string::npos);   // fx row
  EXPECT_NE(gantt.find("|.##.|"), std::string::npos);   // fs row
}

TEST(ScheduleGantt, EmptySchedule) {
  const GraphModel model = tiny_model();
  EXPECT_EQ(schedule_gantt(StaticSchedule{}, model.comm()), "(empty schedule)\n");
}

TEST(ScheduleGantt, UnknownElementsRenderAsIds) {
  CommGraph comm;
  comm.add_element("a", 1);
  StaticSchedule s;
  s.push_execution(7, 1);  // not in comm
  const std::string gantt = schedule_gantt(s, comm);
  EXPECT_NE(gantt.find("e7"), std::string::npos);
}

}  // namespace
}  // namespace rtg::core
