// Determinism-under-nondeterminism stress for the parallel engines
// (ISSUE 2 satellite): run the parallel verifier many times on one
// model and assert every run returns the identical report, even though
// thread scheduling differs run to run. Built under ThreadSanitizer in
// CI, this also shakes out data races in the pool, the memo table, and
// the shared frontier search.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/feasibility.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "sim/rng.hpp"
#include "util/partition.hpp"
#include "util/thread_pool.hpp"

namespace rtg::core {
namespace {

// A fixed mixed model (async + periodic, repeated labels, weights > 1)
// large enough that the verifier actually fans out.
GraphModel stress_model() {
  CommGraph comm;
  const ElementId a = comm.add_element("a", 2);
  const ElementId b = comm.add_element("b", 1);
  const ElementId c = comm.add_element("c", 1);
  const ElementId d = comm.add_element("d", 3);
  comm.add_channel(a, b);
  comm.add_channel(b, c);
  comm.add_channel(c, a);
  comm.add_channel(b, d);
  GraphModel model(std::move(comm));

  TaskGraph t0;
  {
    const OpId u = t0.add_op(a);
    const OpId v = t0.add_op(b);
    t0.add_dep(u, v);
  }
  model.add_constraint(
      TimingConstraint{"t0", std::move(t0), 1, 18, ConstraintKind::kAsynchronous});

  TaskGraph t1;
  {
    const OpId u = t1.add_op(b);
    const OpId v = t1.add_op(c);
    const OpId w = t1.add_op(a);
    t1.add_dep(u, v);
    t1.add_dep(v, w);
  }
  model.add_constraint(
      TimingConstraint{"t1", std::move(t1), 6, 24, ConstraintKind::kPeriodic});

  TaskGraph t2;
  t2.add_op(d);
  model.add_constraint(
      TimingConstraint{"t2", std::move(t2), 1, 15, ConstraintKind::kAsynchronous});
  return model;
}

StaticSchedule stress_schedule(const GraphModel& model) {
  StaticSchedule sched;
  sched.push_execution(0, model.comm().weight(0));
  sched.push_execution(1, model.comm().weight(1));
  sched.push_idle(1);
  sched.push_execution(2, model.comm().weight(2));
  sched.push_execution(3, model.comm().weight(3));
  sched.push_execution(1, model.comm().weight(1));
  sched.push_execution(0, model.comm().weight(0));
  sched.push_idle(2);
  return sched;
}

// 50 repetitions x 4 threads: identical report every time, identical to
// the serial one. Thread scheduling nondeterminism must be invisible.
TEST(ParallelStress, VerifyIsDeterministicAcrossRuns) {
  const GraphModel model = stress_model();
  const StaticSchedule sched = stress_schedule(model);
  const FeasibilityReport serial =
      verify_schedule(sched, model, VerifyOptions{.n_threads = 1});
  for (int run = 0; run < 50; ++run) {
    const FeasibilityReport parallel =
        verify_schedule(sched, model, VerifyOptions{.n_threads = 4});
    ASSERT_EQ(parallel, serial) << "run " << run;
  }
}

// The exact parallel search's *status* is stable across repeated runs
// (the witness cycle may legitimately differ run to run; every witness
// must verify).
TEST(ParallelStress, ExactStatusIsStableAcrossRuns) {
  const GraphModel model = stress_model();
  ExactOptions serial_options;
  serial_options.state_budget = 200'000;
  serial_options.n_threads = 1;
  const ExactResult serial = exact_feasible(model, serial_options);
  ASSERT_NE(serial.status, FeasibilityStatus::kUnknown);

  for (int run = 0; run < 8; ++run) {
    ExactOptions options = serial_options;
    options.n_threads = 4;
    const ExactResult parallel = exact_feasible(model, options);
    ASSERT_EQ(parallel.status, serial.status) << "run " << run;
    if (parallel.status == FeasibilityStatus::kFeasible) {
      ASSERT_TRUE(parallel.schedule.has_value());
      ASSERT_TRUE(verify_schedule(*parallel.schedule, model).feasible) << "run " << run;
    }
  }
}

// Pool-level stress: many tiny tasks, nested submissions from workers,
// and reuse across waves on one pool instance.
TEST(ParallelStress, ThreadPoolDrainsNestedSubmissions) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 64; ++i) {
      pool.submit([&pool, &counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
        pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
      });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 10 * 64 * 2);
}

// The seeded partitioner is deterministic, a true partition, and
// balanced to within one item.
TEST(ParallelStress, PartitionIsSeededAndBalanced) {
  const auto a = util::partition_indices(103, 8, 42);
  const auto b = util::partition_indices(103, 8, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) EXPECT_EQ(a[g], b[g]);

  std::vector<bool> seen(103, false);
  std::size_t min_size = 103, max_size = 0;
  for (const auto& group : a) {
    min_size = std::min(min_size, group.size());
    max_size = std::max(max_size, group.size());
    for (const std::size_t idx : group) {
      ASSERT_LT(idx, 103u);
      ASSERT_FALSE(seen[idx]) << "index dealt twice";
      seen[idx] = true;
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
  EXPECT_LE(max_size - min_size, 1u);

  const auto c = util::partition_indices(103, 8, 43);
  EXPECT_NE(a, c) << "different seeds should shuffle differently";
}

}  // namespace
}  // namespace rtg::core
