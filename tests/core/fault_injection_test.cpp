#include "core/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/degradation.hpp"
#include "core/fault.hpp"
#include "core/latency.hpp"
#include "monitor/streaming_monitor.hpp"
#include "rt/cyclic_executive.hpp"
#include "rt/scheduler.hpp"

namespace rtg::core {
namespace {

TaskGraph single(ElementId e) {
  TaskGraph tg;
  tg.add_op(e);
  return tg;
}

TaskGraph chain2(ElementId a, ElementId b) {
  TaskGraph tg;
  const OpId u = tg.add_op(a);
  const OpId v = tg.add_op(b);
  tg.add_dep(u, v);
  return tg;
}

// Two elements, one periodic chain X: (a -> b, p 8, d 8) and one
// sporadic Z: (a, sep 6, d 6). Schedule "a b . a . . . ." (period 8)
// is feasible for both.
GraphModel two_constraint_model() {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  comm.add_channel(0, 1);
  GraphModel model(std::move(comm));
  model.add_constraint(TimingConstraint{"X", chain2(0, 1), 8, 8});
  model.add_constraint(
      TimingConstraint{"Z", single(0), 6, 6, ConstraintKind::kAsynchronous});
  return model;
}

StaticSchedule two_constraint_schedule() {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  s.push_idle(1);
  s.push_execution(0, 1);
  s.push_idle(4);
  return s;
}

ConstraintArrivals arrivals_z(Time horizon) {
  ConstraintArrivals arrivals(2);
  arrivals[1] = rt::max_rate_arrivals(6, horizon);
  return arrivals;
}

// --- Baseline equivalence ----------------------------------------------

TEST(FaultInjection, EmptyPlanReproducesRunExecutive) {
  const GraphModel model = two_constraint_model();
  const StaticSchedule sched = two_constraint_schedule();
  const ConstraintArrivals arrivals = arrivals_z(64);

  sim::ExecutionTrace plain_trace;
  sim::TraceAppender plain_sink(plain_trace);
  const ExecutiveResult plain = run_executive(sched, model, arrivals, 64, &plain_sink);

  sim::ExecutionTrace faulted_trace;
  sim::TraceAppender faulted_sink(faulted_trace);
  const FaultRunResult faulted =
      run_executive_with_faults(sched, model, arrivals, 64, FaultPlan{}, &faulted_sink);

  EXPECT_EQ(plain_trace, faulted_trace);
  EXPECT_TRUE(faulted.executive.all_met);
  EXPECT_EQ(faulted.counters.faulted_ops(), 0u);
  ASSERT_EQ(plain.invocations.size(), faulted.executive.invocations.size());
  for (std::size_t i = 0; i < plain.invocations.size(); ++i) {
    EXPECT_EQ(plain.invocations[i].satisfied, faulted.executive.invocations[i].satisfied);
    EXPECT_EQ(plain.invocations[i].invoked, faulted.executive.invocations[i].invoked);
  }
}

// --- Determinism -------------------------------------------------------

TEST(FaultInjection, OracleIsDeterministicAndOrderIndependent) {
  FaultPlan plan;
  plan.seed = 7;
  plan.faults.push_back(FaultSpec{FaultKind::kSlotLoss, 0, 500, 0.3});
  plan.faults.push_back(FaultSpec{FaultKind::kDrop, 0, 500, 0.4, 0});
  const FaultInjector a(plan);
  const FaultInjector b(plan);

  // Same answers querying forward and backward.
  for (Time t = 0; t < 200; ++t) {
    EXPECT_EQ(a.slot_lost(t), b.slot_lost(199 - (199 - t)));
    EXPECT_EQ(a.fate(0, t, 1), b.fate(0, t, 1));
  }
  std::vector<bool> fwd;
  std::vector<bool> bwd;
  for (Time t = 0; t < 200; ++t) fwd.push_back(a.slot_lost(t));
  for (Time t = 199; t >= 0; --t) bwd.push_back(b.slot_lost(t));
  std::reverse(bwd.begin(), bwd.end());
  EXPECT_EQ(fwd, bwd);

  // Different seeds give different draws somewhere.
  FaultPlan other = plan;
  other.seed = 8;
  const FaultInjector c(other);
  bool differs = false;
  for (Time t = 0; t < 200 && !differs; ++t) {
    differs = a.slot_lost(t) != c.slot_lost(t);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjection, IdenticalSeedsGiveBitIdenticalRuns) {
  const GraphModel model = two_constraint_model();
  const StaticSchedule sched = two_constraint_schedule();
  const ConstraintArrivals arrivals = arrivals_z(128);
  FaultPlan plan;
  plan.seed = 42;
  plan.faults.push_back(FaultSpec{FaultKind::kDrop, 10, 60, 0.5, kAnyElement});
  plan.faults.push_back(
      FaultSpec{FaultKind::kClockDrift, 0, kOpenEnd, 1.0, kAnyElement, kAnyConstraint, 17});
  plan.faults.push_back(
      FaultSpec{FaultKind::kArrivalJitter, 0, kOpenEnd, 1.0, kAnyElement, 1, 3});

  sim::ExecutionTrace t1;
  sim::TraceAppender s1(t1);
  const FaultRunResult r1 = run_executive_with_faults(sched, model, arrivals, 128, plan, &s1);
  sim::ExecutionTrace t2;
  sim::TraceAppender s2(t2);
  const FaultRunResult r2 = run_executive_with_faults(sched, model, arrivals, 128, plan, &s2);

  EXPECT_EQ(t1, t2);
  EXPECT_EQ(r1.counters, r2.counters);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_EQ(r1.effective_arrivals, r2.effective_arrivals);
  EXPECT_EQ(r1.satisfied_count(), r2.satisfied_count());
}

// --- Plan validation and parsing ---------------------------------------

TEST(FaultInjection, ValidateRejectsMalformedSpecs) {
  const GraphModel model = two_constraint_model();
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{FaultKind::kSlotLoss, 10, 5, 0.5});  // window reversed
  plan.faults.push_back(FaultSpec{FaultKind::kDrop, 0, 10, 1.5, 0});   // rate > 1
  plan.faults.push_back(
      FaultSpec{FaultKind::kElementFail, 0, kOpenEnd, 1.0, 99});  // unknown element
  plan.faults.push_back(FaultSpec{FaultKind::kArrivalJitter, 0, kOpenEnd, 1.0,
                                  kAnyElement, 0, 3});  // jitter on periodic
  plan.faults.push_back(FaultSpec{FaultKind::kClockDrift, 0, kOpenEnd, 1.0,
                                  kAnyElement, kAnyConstraint, 0});  // every < 1
  const std::vector<std::string> issues = validate_fault_plan(plan, model);
  EXPECT_GE(issues.size(), 5u);
}

TEST(FaultInjection, ParsesTextPlans) {
  const GraphModel model = two_constraint_model();
  const FaultPlanParse parse = parse_fault_plan(
      "# a composed plan\n"
      "seed 42\n"
      "slotloss rate 0.02 from 100 to 500\n"
      "fail a at 200 repair 40\n"
      "corrupt b rate 0.1\n"
      "drop * rate 0.05 from 0 to 1000\n"
      "jitter Z max 5\n"
      "drift every 97\n",
      model);
  ASSERT_TRUE(parse.ok()) << (parse.errors.empty() ? "" : parse.errors.front());
  const FaultPlan& plan = *parse.plan;
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.faults.size(), 6u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kSlotLoss);
  EXPECT_DOUBLE_EQ(plan.faults[0].rate, 0.02);
  EXPECT_EQ(plan.faults[0].begin, 100);
  EXPECT_EQ(plan.faults[0].end, 500);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::kElementFail);
  EXPECT_EQ(plan.faults[1].element, 0u);
  EXPECT_EQ(plan.faults[1].begin, 200);
  EXPECT_EQ(plan.faults[1].magnitude, 40);
  EXPECT_EQ(plan.faults[3].element, kAnyElement);
  EXPECT_EQ(plan.faults[4].kind, FaultKind::kArrivalJitter);
  EXPECT_EQ(plan.faults[4].constraint, 1u);
  EXPECT_EQ(plan.faults[4].magnitude, 5);
  EXPECT_EQ(plan.faults[5].kind, FaultKind::kClockDrift);
  EXPECT_EQ(plan.faults[5].magnitude, 97);
}

TEST(FaultInjection, ParserReportsErrorsWithLineNumbers) {
  const GraphModel model = two_constraint_model();
  const FaultPlanParse parse = parse_fault_plan(
      "seed nope\n"
      "slotloss rate 2.0\n"
      "fail ghost at 5 repair 1\n"
      "jitter X max 3\n"
      "frobnicate everything\n"
      "drop a rate\n",
      model);
  EXPECT_FALSE(parse.ok());
  EXPECT_GE(parse.errors.size(), 5u);
  // Syntactic errors carry "line N:"; semantically invalid but
  // parseable directives surface through validation as "plan:".
  for (const std::string& e : parse.errors) {
    EXPECT_TRUE(e.rfind("line ", 0) == 0 || e.rfind("plan: ", 0) == 0) << e;
  }
}

// --- Fate semantics ----------------------------------------------------

TEST(FaultInjection, ElementFailureWindowKillsOverlappingExecutions) {
  FaultPlan plan;
  plan.faults.push_back(
      FaultSpec{FaultKind::kElementFail, 20, kOpenEnd, 1.0, 0, kAnyConstraint, 10});
  const FaultInjector inj(plan);
  EXPECT_FALSE(inj.element_down(0, 19));
  EXPECT_TRUE(inj.element_down(0, 20));
  EXPECT_TRUE(inj.element_down(0, 29));
  EXPECT_FALSE(inj.element_down(0, 30));
  EXPECT_FALSE(inj.element_down(1, 25));
  // Overlap at either edge is fatal; adjacency is not.
  EXPECT_EQ(inj.fate(0, 18, 2), ExecutionFate::kOk);
  EXPECT_EQ(inj.fate(0, 18, 3), ExecutionFate::kElementDown);
  EXPECT_EQ(inj.fate(0, 29, 2), ExecutionFate::kElementDown);
  EXPECT_EQ(inj.fate(0, 30, 2), ExecutionFate::kOk);
}

TEST(FaultInjection, DropAndCorruptRespectWindowAndElement) {
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{FaultKind::kDrop, 10, 20, 1.0, 0});
  plan.faults.push_back(FaultSpec{FaultKind::kCorrupt, 30, 40, 1.0, 1});
  const FaultInjector inj(plan);
  EXPECT_EQ(inj.fate(0, 12, 1), ExecutionFate::kDropped);
  EXPECT_EQ(inj.fate(0, 9, 1), ExecutionFate::kOk);
  EXPECT_EQ(inj.fate(0, 20, 1), ExecutionFate::kOk);
  EXPECT_EQ(inj.fate(1, 12, 1), ExecutionFate::kOk);
  EXPECT_EQ(inj.fate(1, 32, 2), ExecutionFate::kCorrupted);
  // Detection: corruption at completion, drops at dispatch.
  const FaultEvent drop{ExecutionFate::kDropped, 0, 12, 1};
  const FaultEvent corrupt{ExecutionFate::kCorrupted, 1, 32, 2};
  EXPECT_EQ(drop.detect_time(), 12);
  EXPECT_EQ(corrupt.detect_time(), 34);
}

TEST(FaultInjection, DriftAccruesAtConfiguredCadence) {
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{FaultKind::kClockDrift, 100, 200, 1.0, kAnyElement,
                                  kAnyConstraint, 25});
  const FaultInjector inj(plan);
  EXPECT_EQ(inj.drift_before(100), 0);
  EXPECT_EQ(inj.drift_before(124), 0);
  EXPECT_EQ(inj.drift_before(125), 1);
  EXPECT_EQ(inj.drift_before(175), 3);
  EXPECT_EQ(inj.drift_before(1000), inj.drift_before(200));
}

TEST(FaultInjection, ApplyShiftsStartsAndSplitsValid) {
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{FaultKind::kDrop, 0, 4, 1.0, 0});
  plan.faults.push_back(FaultSpec{FaultKind::kClockDrift, 0, kOpenEnd, 1.0, kAnyElement,
                                  kAnyConstraint, 5});
  const FaultInjector inj(plan);
  const std::vector<ScheduledOp> nominal = {{0, 0, 2}, {1, 4, 2}, {0, 8, 2}};
  const FaultedTimeline out = inj.apply(nominal, 40);
  ASSERT_EQ(out.ops.size(), 3u);
  // Drift every 5: op at 4 slides to 4, then... ticks at 5,10,...;
  // drift_before(0)=0, drift_before(4)=0, drift_before(8)=1.
  EXPECT_EQ(out.ops[0].start, 0);
  EXPECT_EQ(out.ops[1].start, 4);
  EXPECT_EQ(out.ops[2].start, 9);
  EXPECT_EQ(out.fate[0], ExecutionFate::kDropped);
  EXPECT_EQ(out.fate[1], ExecutionFate::kOk);
  EXPECT_EQ(out.fate[2], ExecutionFate::kOk);
  ASSERT_EQ(out.valid.size(), 2u);
  EXPECT_EQ(out.valid[0].elem, 1u);
  EXPECT_EQ(out.counters.dropped, 1u);
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].fate, ExecutionFate::kDropped);
}

TEST(FaultInjection, JitteredArrivalsStayLegal) {
  const GraphModel model = two_constraint_model();
  FaultPlan plan;
  plan.faults.push_back(
      FaultSpec{FaultKind::kArrivalJitter, 0, kOpenEnd, 1.0, kAnyElement, 1, 9});
  const FaultInjector inj(plan);
  const ConstraintArrivals shifted = inj.apply_arrivals(model, arrivals_z(600));
  EXPECT_TRUE(validate_arrivals(model, shifted).ok());
  // Some arrival actually moved.
  const ConstraintArrivals nominal = arrivals_z(600);
  EXPECT_NE(shifted[1], nominal[1]);
}

// --- Integration points ------------------------------------------------

TEST(FaultInjection, VisibleTraceMatchesMonitorGroundTruth) {
  const GraphModel model = two_constraint_model();
  const StaticSchedule sched = two_constraint_schedule();
  const ConstraintArrivals arrivals = arrivals_z(256);
  FaultPlan plan;
  plan.seed = 3;
  plan.faults.push_back(FaultSpec{FaultKind::kDrop, 30, 120, 0.6, kAnyElement});
  plan.faults.push_back(FaultSpec{FaultKind::kCorrupt, 120, 200, 0.5, 1});

  monitor::StreamingMonitor mon(model);
  sim::ExecutionTrace trace;
  sim::TraceAppender appender(trace);
  sim::FanOutSink fan({&mon, &appender});
  const FaultRunResult run =
      run_executive_with_faults(sched, model, arrivals, 256, plan, &fan);
  EXPECT_GT(run.counters.faulted_ops(), 0u);

  // The monitor's verdict over the visible trace equals the offline
  // reference of the same trace: invalidated executions render as idle,
  // so online observers see exactly the surviving ground truth.
  EXPECT_TRUE(monitor::verdicts_match(mon.report(), monitor::reference_check(trace, model)));
}

TEST(FaultInjection, RunWithOverrunsAcceptsAPlan) {
  const GraphModel model = two_constraint_model();
  const StaticSchedule sched = two_constraint_schedule();
  const ConstraintArrivals arrivals = arrivals_z(200);
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{FaultKind::kDrop, 0, 100, 1.0, 0});
  const OverrunRunResult faulted =
      run_with_overruns(sched, model, arrivals, 200, OverrunModel{}, nullptr, &plan);
  EXPECT_GT(faulted.fault_counters.dropped, 0u);
  const OverrunRunResult clean =
      run_with_overruns(sched, model, arrivals, 200, OverrunModel{}, nullptr, nullptr);
  EXPECT_EQ(clean.fault_counters.faulted_ops(), 0u);
  EXPECT_LT(faulted.satisfied, clean.satisfied);
}

TEST(FaultInjection, AdaptiveExecutiveRecordsFaultEvents) {
  const GraphModel model = two_constraint_model();
  const ModeLadder ladder = build_mode_ladder(model);
  ASSERT_TRUE(ladder.success);
  AdaptiveOptions options;
  options.faults.seed = 5;
  options.faults.faults.push_back(FaultSpec{FaultKind::kDrop, 0, 150, 0.7, kAnyElement});
  const AdaptiveResult run =
      run_adaptive_executive(ladder, arrivals_z(300), 300, options);
  EXPECT_GT(run.fault_counters.dropped, 0u);
  EXPECT_EQ(run.fault_counters.dropped + run.fault_counters.corrupted +
                run.fault_counters.slot_lost + run.fault_counters.element_down,
            run.fault_events.size());
  // Determinism: the same options reproduce the same run.
  const AdaptiveResult again =
      run_adaptive_executive(ladder, arrivals_z(300), 300, options);
  EXPECT_EQ(run.fault_counters, again.fault_counters);
  EXPECT_EQ(run.dispatches, again.dispatches);
}

TEST(FaultInjection, SlotFilterFaultsCyclicExecutiveTraces) {
  rt::TaskSet ts;
  ts.add(rt::Task{"t0", 1, 4, 4});
  ts.add(rt::Task{"t1", 1, 8, 8});
  const auto exec = rt::build_cyclic_executive(ts);
  ASSERT_TRUE(exec.has_value());

  CommGraph comm;
  comm.add_element("t0", 1);
  comm.add_element("t1", 1);

  FaultPlan plan;
  plan.faults.push_back(FaultSpec{FaultKind::kDrop, 0, kOpenEnd, 1.0, 0});
  const FaultInjector inj(plan);
  FaultCounters counters;

  sim::ExecutionTrace faulted;
  sim::TraceAppender sink(faulted);
  exec->emit(sink, inj.make_slot_filter(comm, &counters));
  // Every execution of element 0 was dropped; element 1 survives.
  EXPECT_GT(counters.dropped, 0u);
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    EXPECT_NE(faulted[i], 0) << "slot " << i;
  }
  const sim::ExecutionTrace nominal = exec->to_trace();
  bool saw_t1 = false;
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    if (nominal[i] == 1) {
      EXPECT_EQ(faulted[i], 1);
      saw_t1 = true;
    }
  }
  EXPECT_TRUE(saw_t1);
}

// --- Platform faults (ISSUE 10) ----------------------------------------

PlatformNames two_proc_names() {
  PlatformNames names;
  names.processors = {"p0", "p1"};
  names.links = {"bus"};
  return names;
}

TEST(FaultInjection, ParsesPlatformFaultPlans) {
  const GraphModel model = two_constraint_model();
  const FaultPlanParse parse = parse_fault_plan(
      "seed 9\n"
      "procfail p1 at 200 repair 50\n"
      "linkfail bus at 100 repair 30\n"
      "linkdegrade bus factor 2 from 0 to 500\n",
      model, two_proc_names());
  ASSERT_TRUE(parse.ok()) << (parse.errors.empty() ? "" : parse.errors[0]);
  ASSERT_EQ(parse.plan->faults.size(), 3u);
  EXPECT_EQ(parse.plan->faults[0].kind, FaultKind::kProcessorFail);
  EXPECT_EQ(parse.plan->faults[0].resource, 1u);
  EXPECT_EQ(parse.plan->faults[0].begin, 200);
  EXPECT_EQ(parse.plan->faults[0].magnitude, 50);
  EXPECT_EQ(parse.plan->faults[1].kind, FaultKind::kLinkFail);
  EXPECT_EQ(parse.plan->faults[1].resource, 0u);
  EXPECT_EQ(parse.plan->faults[2].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(parse.plan->faults[2].magnitude, 2);
  EXPECT_TRUE(is_platform_fault(parse.plan->faults[0].kind));
  EXPECT_FALSE(is_platform_fault(FaultKind::kElementFail));
}

TEST(FaultInjection, PlatformDirectivesNeedAPlatformInScope) {
  const GraphModel model = two_constraint_model();
  // No PlatformNames overload: the platform grammar must error, not
  // silently bind.
  const FaultPlanParse bare =
      parse_fault_plan("procfail p0 at 10 repair 5\n", model);
  ASSERT_FALSE(bare.ok());
  EXPECT_NE(bare.errors[0].find("no platform in scope"), std::string::npos);

  const FaultPlanParse unknown = parse_fault_plan(
      "procfail p7 at 10 repair 5\n", model, two_proc_names());
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.errors[0].find("unknown processor 'p7'"), std::string::npos);

  const FaultPlanParse badlink = parse_fault_plan(
      "linkfail wire at 10 repair 5\n", model, two_proc_names());
  ASSERT_FALSE(badlink.ok());
  EXPECT_NE(badlink.errors[0].find("unknown link 'wire'"), std::string::npos);
}

TEST(FaultInjection, PlatformDirectivesEnforceTheirClauses) {
  const GraphModel model = two_constraint_model();
  // procfail needs at + repair; linkdegrade needs factor.
  EXPECT_FALSE(parse_fault_plan("procfail p0 at 10\n", model, two_proc_names()).ok());
  EXPECT_FALSE(
      parse_fault_plan("linkdegrade bus from 0 to 10\n", model, two_proc_names()).ok());
  // Validation rejects wildcard resources and zero magnitudes.
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kProcessorFail;
  spec.begin = 5;
  spec.magnitude = 5;
  plan.faults.push_back(spec);  // resource left at kAnyResource
  EXPECT_FALSE(validate_fault_plan(plan, model, two_proc_names()).empty());
  plan.faults[0].resource = 0;
  EXPECT_TRUE(validate_fault_plan(plan, model, two_proc_names()).empty());
  plan.faults[0].magnitude = 0;
  EXPECT_FALSE(validate_fault_plan(plan, model, two_proc_names()).empty());
}

TEST(FaultInjection, PlatformWindowsAndEventTimes) {
  const GraphModel model = two_constraint_model();
  const FaultPlanParse parse = parse_fault_plan(
      "procfail p1 at 200 repair 50\n"
      "linkfail bus at 100 repair 30\n"
      "linkdegrade bus factor 3 from 40 to 60\n"
      "linkdegrade bus factor 2 from 50 to 70\n",
      model, two_proc_names());
  ASSERT_TRUE(parse.ok());
  const FaultInjector inj(*parse.plan);
  EXPECT_TRUE(inj.has_platform_faults());

  // Windows are half-open [at, at + repair).
  EXPECT_FALSE(inj.processor_down(1, 199));
  EXPECT_TRUE(inj.processor_down(1, 200));
  EXPECT_TRUE(inj.processor_down(1, 249));
  EXPECT_FALSE(inj.processor_down(1, 250));
  EXPECT_FALSE(inj.processor_down(0, 200));
  EXPECT_TRUE(inj.link_down(0, 100));
  EXPECT_FALSE(inj.link_down(0, 130));

  // Overlapping degrades multiply.
  EXPECT_EQ(inj.link_degrade(0, 39), 1);
  EXPECT_EQ(inj.link_degrade(0, 45), 3);
  EXPECT_EQ(inj.link_degrade(0, 55), 6);
  EXPECT_EQ(inj.link_degrade(0, 65), 2);
  EXPECT_EQ(inj.link_degrade(0, 70), 1);

  const std::vector<Time> events = inj.platform_event_times(1000);
  const std::vector<Time> expected = {40, 50, 60, 70, 100, 130, 200, 250};
  EXPECT_EQ(events, expected);
  // Clipped to (0, horizon).
  const std::vector<Time> clipped = inj.platform_event_times(120);
  const std::vector<Time> expected_clipped = {40, 50, 60, 70, 100};
  EXPECT_EQ(clipped, expected_clipped);

  // The oracle is stateless: a second injector over the same plan
  // agrees everywhere.
  const FaultInjector again(*parse.plan);
  for (Time t = 0; t < 300; ++t) {
    ASSERT_EQ(inj.processor_down(1, t), again.processor_down(1, t)) << t;
    ASSERT_EQ(inj.link_degrade(0, t), again.link_degrade(0, t)) << t;
  }
  EXPECT_EQ(again.platform_event_times(1000), events);
}

}  // namespace
}  // namespace rtg::core
