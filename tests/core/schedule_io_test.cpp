#include "core/schedule_io.hpp"

#include <gtest/gtest.h>

namespace rtg::core {
namespace {

CommGraph comm_xyz() {
  CommGraph g;
  g.add_element("fx", 1);
  g.add_element("fs", 2);
  g.add_element("fk", 1);
  return g;
}

TEST(ScheduleToText, RendersNamesAndIdleRuns) {
  const CommGraph comm = comm_xyz();
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_execution(1, 2);
  s.push_idle(1);
  s.push_execution(2, 1);
  s.push_idle(3);
  EXPECT_EQ(schedule_to_text(s, comm), "fx fs . fk .3");
}

TEST(ScheduleToText, UnknownElementThrows) {
  const CommGraph comm = comm_xyz();
  StaticSchedule s;
  s.push_execution(9, 1);
  EXPECT_THROW((void)schedule_to_text(s, comm), std::invalid_argument);
}

TEST(ScheduleFromText, ParsesTokens) {
  const CommGraph comm = comm_xyz();
  const auto r = schedule_from_text("fx fs .2 fk", comm);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->length(), 6);  // 1 + 2 + 2 + 1
  const auto ops = r.schedule->ops();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[1].elem, 1u);
  EXPECT_EQ(ops[1].duration, 2);  // weight implied
  EXPECT_EQ(ops[2].start, 5);
}

TEST(ScheduleFromText, CommentsAndNewlines) {
  const CommGraph comm = comm_xyz();
  const auto r = schedule_from_text("# header\nfx # trailing\n. fs\n", comm);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->length(), 4);
}

TEST(ScheduleFromText, UnknownElementReportedWithLine) {
  const CommGraph comm = comm_xyz();
  const auto r = schedule_from_text("fx\nnope\n", comm);
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].line, 2u);
  EXPECT_NE(r.errors[0].message.find("nope"), std::string::npos);
}

TEST(ScheduleFromText, BadIdleCountRejected) {
  const CommGraph comm = comm_xyz();
  EXPECT_FALSE(schedule_from_text(".0", comm).ok());
}

TEST(ScheduleFromText, EmptyInputIsEmptySchedule) {
  const CommGraph comm = comm_xyz();
  const auto r = schedule_from_text("  # nothing\n", comm);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->length(), 0);
}

TEST(ScheduleIo, RoundTrip) {
  const CommGraph comm = comm_xyz();
  StaticSchedule s;
  s.push_execution(1, 2);
  s.push_idle(4);
  s.push_execution(0, 1);
  s.push_execution(2, 1);
  const auto r = schedule_from_text(schedule_to_text(s, comm), comm);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.schedule, s);
}

TEST(ScheduleIo, RoundTripValidatesAgainstComm) {
  const CommGraph comm = comm_xyz();
  const auto r = schedule_from_text("fs fs fx", comm);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.schedule->validate(comm).empty());
}

}  // namespace
}  // namespace rtg::core
