#include "core/model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rtg::core {
namespace {

CommGraph simple_comm() {
  CommGraph g;
  g.add_element("a", 1);
  g.add_element("b", 2);
  g.add_element("c", 3, /*pipelinable=*/false);
  g.add_channel(0, 1);
  g.add_channel(1, 2);
  return g;
}

TEST(CommGraph, ElementAccessors) {
  const CommGraph g = simple_comm();
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.weight(1), 2);
  EXPECT_EQ(g.name(2), "c");
  EXPECT_TRUE(g.pipelinable(0));
  EXPECT_FALSE(g.pipelinable(2));
  EXPECT_EQ(g.find("b"), 1u);
  EXPECT_EQ(g.find("zz"), std::nullopt);
  EXPECT_TRUE(g.has_channel(0, 1));
  EXPECT_FALSE(g.has_channel(1, 0));
}

TEST(CommGraph, RejectsBadElements) {
  CommGraph g;
  EXPECT_THROW(g.add_element("", 1), std::invalid_argument);
  EXPECT_THROW(g.add_element("x", 0), std::invalid_argument);
  g.add_element("x", 1);
  EXPECT_THROW(g.add_element("x", 1), std::invalid_argument);
}

TEST(CommGraph, ElementNamesVector) {
  const CommGraph g = simple_comm();
  EXPECT_EQ(g.element_names(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TaskGraph, BuildAndLabels) {
  TaskGraph tg;
  const OpId o1 = tg.add_op(0);
  const OpId o2 = tg.add_op(1);
  EXPECT_TRUE(tg.add_dep(o1, o2));
  EXPECT_FALSE(tg.add_dep(o1, o2));
  EXPECT_EQ(tg.size(), 2u);
  EXPECT_EQ(tg.label(o2), 1u);
}

TEST(TaskGraph, ComputationTimeSumsElementWeights) {
  const CommGraph g = simple_comm();
  TaskGraph tg;
  tg.add_op(0);
  tg.add_op(1);
  tg.add_op(2);
  EXPECT_EQ(tg.computation_time(g), 6);
}

TEST(TaskGraph, ValidateAcceptsCompatible) {
  const CommGraph g = simple_comm();
  TaskGraph tg;
  const OpId o1 = tg.add_op(0);
  const OpId o2 = tg.add_op(1);
  tg.add_dep(o1, o2);
  EXPECT_TRUE(tg.validate(g).empty());
}

TEST(TaskGraph, ValidateRejectsMissingChannel) {
  const CommGraph g = simple_comm();
  TaskGraph tg;
  const OpId o1 = tg.add_op(0);
  const OpId o3 = tg.add_op(2);
  tg.add_dep(o1, o3);  // no channel a -> c
  const auto diags = tg.validate(g);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("no corresponding communication channel"), std::string::npos);
}

TEST(TaskGraph, ValidateRejectsUnknownElement) {
  const CommGraph g = simple_comm();
  TaskGraph tg;
  tg.add_op(17);
  EXPECT_FALSE(tg.validate(g).empty());
}

TEST(TaskGraph, AsChainDetectsChains) {
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  const OpId c = tg.add_op(2);
  tg.add_dep(a, b);
  tg.add_dep(b, c);
  const auto chain = tg.as_chain();
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(*chain, (std::vector<OpId>{a, b, c}));
}

TEST(TaskGraph, AsChainRejectsBranching) {
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  const OpId c = tg.add_op(2);
  tg.add_dep(a, b);
  tg.add_dep(a, c);
  EXPECT_EQ(tg.as_chain(), std::nullopt);
}

TEST(TaskGraph, AsChainRejectsDisconnected) {
  TaskGraph tg;
  tg.add_op(0);
  tg.add_op(1);  // two isolated ops: two heads
  EXPECT_EQ(tg.as_chain(), std::nullopt);
}

TEST(TaskGraph, AsChainSingleOpAndEmpty) {
  TaskGraph single;
  single.add_op(0);
  EXPECT_EQ(single.as_chain(), std::vector<OpId>{0});
  TaskGraph empty;
  EXPECT_EQ(empty.as_chain(), std::vector<OpId>{});
}

TEST(TaskGraph, RepeatedLabelsDetected) {
  TaskGraph tg;
  tg.add_op(0);
  tg.add_op(0);
  EXPECT_TRUE(tg.has_repeated_labels());
  TaskGraph distinct;
  distinct.add_op(0);
  distinct.add_op(1);
  EXPECT_FALSE(distinct.has_repeated_labels());
}

TEST(GraphModel, AddConstraintValidates) {
  GraphModel model(simple_comm());
  TaskGraph bad;
  const OpId o1 = bad.add_op(0);
  const OpId o3 = bad.add_op(2);
  bad.add_dep(o1, o3);
  EXPECT_THROW(model.add_constraint(
                   TimingConstraint{"bad", bad, 10, 10, ConstraintKind::kPeriodic}),
               std::invalid_argument);
}

TEST(GraphModel, RejectsEmptyTaskGraphAndBadParams) {
  GraphModel model(simple_comm());
  TaskGraph tg;
  tg.add_op(0);
  EXPECT_THROW(model.add_constraint(
                   TimingConstraint{"x", TaskGraph{}, 10, 10, ConstraintKind::kPeriodic}),
               std::invalid_argument);
  EXPECT_THROW(
      model.add_constraint(TimingConstraint{"x", tg, 0, 10, ConstraintKind::kPeriodic}),
      std::invalid_argument);
  EXPECT_THROW(
      model.add_constraint(TimingConstraint{"x", tg, 10, 0, ConstraintKind::kPeriodic}),
      std::invalid_argument);
}

TEST(GraphModel, FindConstraintByName) {
  GraphModel model(simple_comm());
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(TimingConstraint{"X", tg, 10, 10, ConstraintKind::kPeriodic});
  EXPECT_EQ(model.find_constraint("X"), 0u);
  EXPECT_EQ(model.find_constraint("Y"), std::nullopt);
}

TEST(GraphModel, DeadlineUtilization) {
  GraphModel model(simple_comm());
  TaskGraph tg;
  tg.add_op(1);  // weight 2
  model.add_constraint(TimingConstraint{"X", tg, 10, 8, ConstraintKind::kAsynchronous});
  EXPECT_DOUBLE_EQ(model.deadline_utilization(), 0.25);
}

TEST(GraphModel, Theorem3Hypotheses) {
  GraphModel model(simple_comm());
  TaskGraph tg;
  tg.add_op(0);  // weight 1
  model.add_constraint(TimingConstraint{"X", tg, 10, 10, ConstraintKind::kAsynchronous});
  EXPECT_TRUE(model.satisfies_theorem3());

  // Adding a constraint over the non-pipelinable weight-3 element
  // violates hypothesis (iii).
  TaskGraph tc;
  tc.add_op(2);
  model.add_constraint(TimingConstraint{"C", tc, 40, 40, ConstraintKind::kAsynchronous});
  EXPECT_FALSE(model.satisfies_theorem3());
}

TEST(GraphModel, Theorem3RejectsHighUtilization) {
  GraphModel model(simple_comm());
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(TimingConstraint{"X", tg, 10, 2, ConstraintKind::kAsynchronous});
  model.add_constraint(TimingConstraint{"Y", tg, 10, 5, ConstraintKind::kAsynchronous});
  EXPECT_GT(model.deadline_utilization(), 0.5);
  EXPECT_FALSE(model.satisfies_theorem3());
}

TEST(GraphModel, Theorem3RejectsTightDeadline) {
  GraphModel model(simple_comm());
  TaskGraph tg;
  tg.add_op(1);  // weight 2, need floor(d/2) >= 2 i.e. d >= 4
  model.add_constraint(TimingConstraint{"X", tg, 30, 3, ConstraintKind::kAsynchronous});
  EXPECT_LE(model.deadline_utilization(), 0.67);
  EXPECT_FALSE(model.satisfies_theorem3());
}

TEST(GraphModel, SharedElements) {
  GraphModel model(simple_comm());
  TaskGraph t1;
  t1.add_op(0);
  t1.add_op(1);
  t1.add_dep(0, 1);
  TaskGraph t2;
  t2.add_op(1);
  t2.add_op(2);
  t2.add_dep(0, 1);
  model.add_constraint(TimingConstraint{"X", t1, 10, 10, ConstraintKind::kPeriodic});
  model.add_constraint(TimingConstraint{"Y", t2, 10, 10, ConstraintKind::kPeriodic});
  EXPECT_EQ(model.shared_elements(), (std::vector<ElementId>{1}));
}

TEST(ControlSystem, MatchesFigure2Structure) {
  const GraphModel model = make_control_system();
  EXPECT_EQ(model.comm().size(), 5u);
  EXPECT_EQ(model.constraint_count(), 3u);

  const auto fs = model.comm().find("fs");
  const auto fk = model.comm().find("fk");
  ASSERT_TRUE(fs && fk);
  EXPECT_TRUE(model.comm().has_channel(*fs, *fk));
  EXPECT_TRUE(model.comm().has_channel(*fk, *fs));  // feedback loop

  const TimingConstraint& x = model.constraint(*model.find_constraint("X"));
  EXPECT_TRUE(x.periodic());
  EXPECT_EQ(x.task_graph.size(), 3u);
  const TimingConstraint& z = model.constraint(*model.find_constraint("Z"));
  EXPECT_FALSE(z.periodic());
  EXPECT_EQ(z.task_graph.size(), 2u);

  // f_s is shared by all three constraints.
  EXPECT_EQ(model.shared_elements().size(), 2u);  // fs and fk
}

TEST(ControlSystem, CustomParameters) {
  ControlSystemParams params;
  params.cs = 4;
  params.pz = 100;
  const GraphModel model = make_control_system(params);
  EXPECT_EQ(model.comm().weight(*model.comm().find("fs")), 4);
  EXPECT_EQ(model.constraint(*model.find_constraint("Z")).period, 100);
}

}  // namespace
}  // namespace rtg::core
