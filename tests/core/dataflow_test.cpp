#include "core/dataflow.hpp"

#include <gtest/gtest.h>

namespace rtg::core {
namespace {

// Model: src -> filt -> act (unit weights).
GraphModel chain_model() {
  CommGraph comm;
  comm.add_element("src", 1);
  comm.add_element("filt", 1);
  comm.add_element("act", 1);
  comm.add_channel(0, 1);
  comm.add_channel(1, 2);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  const OpId c = tg.add_op(2);
  tg.add_dep(a, b);
  tg.add_dep(b, c);
  model.add_constraint(
      TimingConstraint{"flow", std::move(tg), 10, 10, ConstraintKind::kPeriodic});
  return model;
}

StaticSchedule chain_schedule() {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  s.push_execution(2, 1);
  s.push_idle(1);
  return s;
}

TEST(Dataflow, DefaultBehaviourSumsInputs) {
  const GraphModel model = chain_model();
  DataflowExecutive exec(model);
  exec.set_source(0, [](Time) { return 5; });
  const DataflowResult r = exec.run(chain_schedule(), 2);
  // src emits 5; filt sums {5}; act sums {5}.
  EXPECT_EQ(r.outputs_of(0), (std::vector<Value>{5, 5}));
  EXPECT_EQ(r.outputs_of(2), (std::vector<Value>{5, 5}));
}

TEST(Dataflow, CustomBehaviourAndState) {
  const GraphModel model = chain_model();
  DataflowExecutive exec(model);
  exec.set_source(0, [](Time t) { return t; });  // sample = start time
  // filt: running sum kept in state.
  exec.set_behaviour(1, [](std::span<const Value> in, Value state) {
    const Value next = state + (in.empty() ? 0 : in[0]);
    return std::pair<Value, Value>{next, next};
  });
  const DataflowResult r = exec.run(chain_schedule(), 3);
  // src outputs 0, 4, 8 (start times); filt accumulates 0, 4, 12.
  EXPECT_EQ(r.outputs_of(0), (std::vector<Value>{0, 4, 8}));
  EXPECT_EQ(r.outputs_of(1), (std::vector<Value>{0, 4, 12}));
}

TEST(Dataflow, LatestOutputSemantics) {
  // act executes before filt in the schedule: it must see filt's value
  // from the *previous* cycle (latest transmitted), not the current.
  const GraphModel model = chain_model();
  StaticSchedule reordered;
  reordered.push_execution(2, 1);  // act first
  reordered.push_execution(0, 1);
  reordered.push_execution(1, 1);
  DataflowExecutive exec(model);
  exec.set_source(0, [](Time) { return 7; });
  const DataflowResult r = exec.run(reordered, 2);
  const auto act = r.outputs_of(2);
  ASSERT_EQ(act.size(), 2u);
  EXPECT_EQ(act[0], 0);  // nothing received yet
  EXPECT_EQ(act[1], 7);  // previous cycle's filt output
}

TEST(Dataflow, TransmissionsLogged) {
  const GraphModel model = chain_model();
  DataflowExecutive exec(model);
  exec.set_source(0, [](Time) { return 3; });
  const DataflowResult r = exec.run(chain_schedule(), 2);
  EXPECT_EQ(r.channel_values(0, 1), (std::vector<Value>{3, 3}));
  EXPECT_EQ(r.channel_values(1, 2), (std::vector<Value>{3, 3}));
  EXPECT_TRUE(r.channel_values(0, 2).empty());  // no such channel
}

TEST(Dataflow, EdgeRelationViolationDetected) {
  const GraphModel model = chain_model();
  DataflowExecutive exec(model);
  exec.set_source(0, [](Time t) { return t; });
  // Relation: values on src -> filt must be non-decreasing (holds) and
  // on filt -> act must stay below 5 (fails on later cycles).
  exec.set_edge_relation(0, 1, [](Value prev, Value cur) { return cur >= prev; });
  exec.set_edge_relation(1, 2, [](Value, Value cur) { return cur < 5; });
  const DataflowResult r = exec.run(chain_schedule(), 3);
  ASSERT_EQ(r.violations.size(), 1u);  // filt output 8 at cycle 3
  EXPECT_EQ(r.violations[0].from, 1u);
  EXPECT_EQ(r.violations[0].to, 2u);
  EXPECT_EQ(r.violations[0].current, 8);
}

TEST(Dataflow, EdgeRelationOnMissingChannelThrows) {
  const GraphModel model = chain_model();
  DataflowExecutive exec(model);
  EXPECT_THROW(exec.set_edge_relation(0, 2, [](Value, Value) { return true; }),
               std::invalid_argument);
}

TEST(Dataflow, InvalidScheduleRejected) {
  const GraphModel model = chain_model();
  DataflowExecutive exec(model);
  StaticSchedule bad;
  bad.push_execution(0, 3);  // wrong duration for unit element
  EXPECT_THROW((void)exec.run(bad, 1), std::invalid_argument);
}

TEST(Dataflow, PipelineOrderingHoldsOnProducedLogs) {
  const GraphModel model = chain_model();
  DataflowExecutive exec(model);
  exec.set_source(0, [](Time) { return 1; });
  const DataflowResult r = exec.run(chain_schedule(), 5);
  EXPECT_TRUE(r.pipeline_ordered);
  EXPECT_TRUE(check_pipeline_ordering(r.executions, r.transmissions));
}

TEST(Dataflow, CheckerRejectsBrokenLogs) {
  // Two executions of the same element with equal starts.
  std::vector<ExecutionEvent> executions{
      {0, 5, 6, 0},
      {0, 5, 7, 0},
  };
  EXPECT_FALSE(check_pipeline_ordering(executions, {}));

  // Finish inversion: earlier start finishes later.
  std::vector<ExecutionEvent> inverted{
      {0, 1, 10, 0},
      {0, 2, 3, 0},
  };
  EXPECT_FALSE(check_pipeline_ordering(inverted, {}));

  // Non-FIFO transmissions on one channel.
  std::vector<TransmissionEvent> transmissions{
      {0, 1, 9, 0},
      {0, 1, 4, 0},
  };
  EXPECT_FALSE(check_pipeline_ordering({}, transmissions));

  // Distinct channels may interleave freely.
  std::vector<TransmissionEvent> two_channels{
      {0, 1, 9, 0},
      {0, 2, 4, 0},
  };
  EXPECT_TRUE(check_pipeline_ordering({}, two_channels));
}

TEST(Dataflow, StateSeeding) {
  const GraphModel model = chain_model();
  DataflowExecutive exec(model);
  exec.set_state(1, 100);  // filt starts with bias 100
  exec.set_source(0, [](Time) { return 1; });
  const DataflowResult r = exec.run(chain_schedule(), 1);
  EXPECT_EQ(r.outputs_of(1), (std::vector<Value>{101}));
}

TEST(Dataflow, FeedbackLoopUsesPreviousValue) {
  // fs <-> fk feedback from the control system: fk's input at cycle n
  // is fs's output of cycle n, fs's fk-input at cycle n is fk's output
  // of cycle n-1.
  CommGraph comm;
  comm.add_element("fs", 1);
  comm.add_element("fk", 1);
  comm.add_channel(0, 1);
  comm.add_channel(1, 0);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const OpId s = tg.add_op(0);
  const OpId k = tg.add_op(1);
  tg.add_dep(s, k);
  model.add_constraint(
      TimingConstraint{"loop", std::move(tg), 4, 4, ConstraintKind::kPeriodic});

  StaticSchedule sched;
  sched.push_execution(0, 1);
  sched.push_execution(1, 1);

  DataflowExecutive exec(model);
  // fs: adds 1 to fk's last value; fk: passes through.
  exec.set_behaviour(0, [](std::span<const Value> in, Value st) {
    return std::pair<Value, Value>{(in.empty() ? 0 : in[0]) + 1, st};
  });
  exec.set_behaviour(1, [](std::span<const Value> in, Value st) {
    return std::pair<Value, Value>{in.empty() ? 0 : in[0], st};
  });
  const DataflowResult r = exec.run(sched, 4);
  EXPECT_EQ(r.outputs_of(0), (std::vector<Value>{1, 2, 3, 4}));  // counts up
}

}  // namespace
}  // namespace rtg::core
