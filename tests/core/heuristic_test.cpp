#include "core/heuristic.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "sim/rng.hpp"

namespace rtg::core {
namespace {

TaskGraph single(ElementId e) {
  TaskGraph tg;
  tg.add_op(e);
  return tg;
}

TEST(LatencySchedule, EmptyModelSucceeds) {
  CommGraph comm;
  comm.add_element("a", 1);
  const HeuristicResult r = latency_schedule(GraphModel(comm));
  EXPECT_TRUE(r.success);
}

TEST(LatencySchedule, SingleAsyncConstraint) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"A", single(0), 10, 4, ConstraintKind::kAsynchronous});
  const HeuristicResult r = latency_schedule(model);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(r.report.feasible);
  // Server period ceil(4/2) = 2; one unit slot per 2.
  EXPECT_EQ(r.schedule->length(), 2);
  EXPECT_DOUBLE_EQ(r.server_utilization, 0.5);
}

TEST(LatencySchedule, VerifiedLatencyWithinDeadline) {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  comm.add_channel(0, 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const OpId oa = tg.add_op(0);
  const OpId ob = tg.add_op(1);
  tg.add_dep(oa, ob);
  model.add_constraint(
      TimingConstraint{"AB", std::move(tg), 20, 8, ConstraintKind::kAsynchronous});
  const HeuristicResult r = latency_schedule(model);
  ASSERT_TRUE(r.success) << r.failure_reason;
  ASSERT_TRUE(r.report.verdicts[0].latency.has_value());
  EXPECT_LE(*r.report.verdicts[0].latency, 8);
}

TEST(LatencySchedule, PeriodicConstraintScheduled) {
  const GraphModel model = make_control_system();
  const HeuristicResult r = latency_schedule(model);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(r.report.feasible);
}

TEST(LatencySchedule, PipeliningEnablesTightDeadline) {
  // A non-preemptible 4-slot run of "big" blocks "urgent" (whose server
  // window is 2 slots) past its deadline; decomposed into unit
  // sub-functions the two interleave and both constraints are met.
  CommGraph comm;
  comm.add_element("big", 4);  // pipelinable
  comm.add_element("urgent", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"B", single(0), 40, 16, ConstraintKind::kAsynchronous});
  model.add_constraint(
      TimingConstraint{"U", single(1), 10, 4, ConstraintKind::kAsynchronous});

  HeuristicOptions with;
  with.pipeline = true;
  const HeuristicResult ok = latency_schedule(model, with);
  EXPECT_TRUE(ok.success) << ok.failure_reason;

  HeuristicOptions without;
  without.pipeline = false;
  const HeuristicResult bad = latency_schedule(model, without);
  // The non-preemptible 4-slot run of "big" blocks "urgent" past its
  // 2-slot window, so the unpipelined attempt cannot be feasible.
  EXPECT_FALSE(bad.success);
}

TEST(LatencySchedule, FailsWhenWorkExceedsWindow) {
  CommGraph comm;
  comm.add_element("big", 5, false);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"B", single(0), 20, 6, ConstraintKind::kAsynchronous});
  const HeuristicResult r = latency_schedule(model);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("server window"), std::string::npos);
}

TEST(LatencySchedule, FailsOnOverloadedServers) {
  CommGraph comm;
  comm.add_element("a", 1, false);
  comm.add_element("b", 1, false);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"A", single(0), 1, 1, ConstraintKind::kAsynchronous});
  model.add_constraint(
      TimingConstraint{"B", single(1), 1, 1, ConstraintKind::kAsynchronous});
  const HeuristicResult r = latency_schedule(model);
  EXPECT_FALSE(r.success);
}

TEST(LatencySchedule, HyperperiodGuard) {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"A", single(0), 10007, 10007, ConstraintKind::kPeriodic});
  model.add_constraint(
      TimingConstraint{"B", single(1), 10009, 10009, ConstraintKind::kPeriodic});
  HeuristicOptions opts;
  opts.max_schedule_length = 1000;
  const HeuristicResult r = latency_schedule(model, opts);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("hyperperiod"), std::string::npos);
}

TEST(LatencySchedule, Theorem3GuaranteeOnRandomInstances) {
  // Property: whenever the model satisfies Theorem 3's hypotheses the
  // construction must succeed and verify. Random instances below the
  // 1/2 bound.
  sim::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    CommGraph comm;
    const int n = static_cast<int>(rng.uniform(1, 4));
    for (int i = 0; i < n; ++i) {
      comm.add_element("e" + std::to_string(i),
                       rng.uniform(1, 3), /*pipelinable=*/true);
    }
    GraphModel model(std::move(comm));
    double budget = 0.5;
    const int k = static_cast<int>(rng.uniform(1, 3));
    for (int i = 0; i < k; ++i) {
      const ElementId e = static_cast<ElementId>(rng.uniform(0, n - 1));
      const Time w = model.comm().weight(e);
      // Pick a deadline meeting both hypotheses with room in the budget.
      const Time min_d = 2 * w;
      const double max_util = budget / (k - i);
      Time d = std::max<Time>(min_d, static_cast<Time>(
                                         static_cast<double>(w) / max_util) + 1);
      d = std::min<Time>(d, 64);
      if (static_cast<double>(w) / static_cast<double>(d) > max_util) continue;
      budget -= static_cast<double>(w) / static_cast<double>(d);
      model.add_constraint(TimingConstraint{"c" + std::to_string(i), single(e), 100, d,
                                            ConstraintKind::kAsynchronous});
    }
    if (model.constraint_count() == 0) continue;
    ASSERT_TRUE(model.satisfies_theorem3()) << "trial " << trial;
    const HeuristicResult r = latency_schedule(model);
    EXPECT_TRUE(r.success) << "trial " << trial << ": " << r.failure_reason;
    if (r.success) {
      EXPECT_TRUE(r.report.feasible) << "trial " << trial;
    }
  }
}

TEST(LatencySchedule, HarmonizationTamesCoprimePeriods) {
  // Two async constraints whose server periods are co-prime: the raw
  // hyperperiod blows past the cap, harmonized periods collapse it.
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(TimingConstraint{"A", single(0), 10, 2 * 10007,
                                        ConstraintKind::kAsynchronous});
  model.add_constraint(TimingConstraint{"B", single(1), 10, 2 * 9973,
                                        ConstraintKind::kAsynchronous});

  HeuristicOptions raw;
  raw.max_schedule_length = 100000;
  const HeuristicResult without = latency_schedule(model, raw);
  EXPECT_FALSE(without.success);
  EXPECT_NE(without.failure_reason.find("hyperperiod"), std::string::npos);

  HeuristicOptions harmonized = raw;
  harmonized.harmonize_periods = true;
  const HeuristicResult with = latency_schedule(model, harmonized);
  ASSERT_TRUE(with.success) << with.failure_reason;
  EXPECT_TRUE(with.report.feasible);
  EXPECT_EQ(with.schedule->length(), 8192);  // pow2_floor(10007) = 8192
}

TEST(LatencySchedule, HarmonizationStaysCorrectForPeriodic) {
  // Periodic constraints keep their invocation-window semantics under
  // harmonization (the d-window coverage subsumes them).
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"P", single(0), 12, 12, ConstraintKind::kPeriodic});
  HeuristicOptions options;
  options.harmonize_periods = true;
  const HeuristicResult r = latency_schedule(model, options);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(r.report.feasible);
  EXPECT_EQ(r.schedule->length(), 4);  // pow2_floor(ceil(12/2)) = 4
}

TEST(LatencySchedule, HarmonizationFailsWhenBudgetTooBig) {
  // w = 3 but pow2_floor(ceil(5/2)) = 2 < 3: the harmonized server
  // cannot hold the work.
  CommGraph comm;
  comm.add_element("w3", 3, false);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"C", single(0), 10, 5, ConstraintKind::kAsynchronous});
  HeuristicOptions options;
  options.harmonize_periods = true;
  const HeuristicResult r = latency_schedule(model, options);
  EXPECT_FALSE(r.success);
}

TEST(CoalesceModel, MergesIdenticalSubchains) {
  // Two constraints sharing fs, fk with equal rates merge into one.
  ControlSystemParams params;
  params.px = 20;
  params.py = 20;  // same rate as X -> merging is profitable
  params.dx = 20;
  params.dy = 20;
  const GraphModel model = make_control_system(params);
  const GraphModel merged = coalesce_model(model);
  EXPECT_LT(merged.constraint_count(), model.constraint_count());
}

TEST(CoalesceModel, NoMergeWithoutOverlap) {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"A", single(0), 10, 10, ConstraintKind::kAsynchronous});
  model.add_constraint(
      TimingConstraint{"B", single(1), 10, 10, ConstraintKind::kAsynchronous});
  EXPECT_EQ(coalesce_model(model).constraint_count(), 2u);
}

TEST(CoalesceModel, MergedScheduleServesOriginalConstraints) {
  ControlSystemParams params;
  params.px = params.py = params.dx = params.dy = 24;
  const GraphModel model = make_control_system(params);

  HeuristicOptions opts;
  opts.coalesce = true;
  const HeuristicResult r = latency_schedule(model, opts);
  ASSERT_TRUE(r.success) << r.failure_reason;

  // The schedule expressed over the pipelined *original* model must
  // satisfy the original (uncoalesced) constraints too.
  const GraphModel original_pipelined = pipeline_model(model).model;
  EXPECT_TRUE(verify_schedule(*r.schedule, original_pipelined).feasible);
}

TEST(CoalesceModel, ReducesExecutedWork) {
  ControlSystemParams params;
  params.px = params.py = params.dx = params.dy = 24;
  const GraphModel model = make_control_system(params);

  HeuristicOptions plain;
  const HeuristicResult without = latency_schedule(model, plain);
  HeuristicOptions merged;
  merged.coalesce = true;
  const HeuristicResult with = latency_schedule(model, merged);
  ASSERT_TRUE(without.success) << without.failure_reason;
  ASSERT_TRUE(with.success) << with.failure_reason;
  EXPECT_LT(with.schedule->utilization(), without.schedule->utilization());
}

}  // namespace
}  // namespace rtg::core
