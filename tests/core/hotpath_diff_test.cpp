// Hot-path rebuild safety net (ISSUE 8).
//
//   * Ablation bit-identity: verification must produce identical
//     reports with every HotPathConfig layer (SoA columns, bitset
//     occurrence rows, arena scratch, calibrated cutoff) switched off —
//     the layers are pure mechanical-sympathy rearrangements;
//   * Corpus slice: a 64-seed slice of the PR 7 corpus verified with
//     flat_reference on/off must agree on every FeasibilityReport,
//     witness, and chained report fingerprint;
//   * UnrollIndex bitset property: the occurrence-row answers
//     (gate-resolved first_at_or_after, same-word next_occurrence,
//     occupied_in word masks) must coincide with brute force over the
//     materialized unroll;
//   * Counter pins: on BnB (repeated-label) workloads the per-query
//     seek sequence is partition-independent, so bitset_skips and
//     index_seeks must be identical at 1/2/4 threads;
//   * Oversubscription regression: n_threads = 8 verification on an
//     E16-style workload must stay within 2x of serial wall time (the
//     pre-fix pool collapsed by two orders of magnitude; the threshold
//     is deliberately loose for noisy hosts). Runs under the TSan CI
//     job like every other test.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "gen/generator.hpp"
#include "graph/generators.hpp"
#include "sim/rng.hpp"

namespace rtg::core {
namespace {

// Restores the process-wide ablation toggles on scope exit so a failing
// assertion cannot leak a degraded configuration into other tests.
class ConfigGuard {
 public:
  ConfigGuard() : saved_(hotpath_config()) {}
  ~ConfigGuard() { hotpath_config() = saved_; }
  ConfigGuard(const ConfigGuard&) = delete;
  ConfigGuard& operator=(const ConfigGuard&) = delete;

 private:
  HotPathConfig saved_;
};

graph::Digraph random_digraph(sim::Rng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0:
      return graph::make_chain(rng.uniform(1, 4));
    case 1:
      return graph::make_fork_join(rng.uniform(1, 3));
    case 2:
      return graph::make_random_dag(rng.uniform(1, 5), 0.4, rng);
    default:
      return graph::make_series_parallel(rng.uniform(1, 4), 0.5, rng);
  }
}

// Like the embedding-kernel suite's generator, but with back-channels
// so a slice of the constraints can revisit a label (a -> b -> a),
// exercising the BnB kernel alongside the greedy one.
GraphModel random_model(sim::Rng& rng) {
  const graph::Digraph dag = random_digraph(rng);
  CommGraph comm;
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    comm.add_element("e" + std::to_string(v), rng.uniform(1, 2));
  }
  for (const auto& e : dag.edges()) {
    comm.add_channel(static_cast<ElementId>(e.from), static_cast<ElementId>(e.to));
    comm.add_channel(static_cast<ElementId>(e.to), static_cast<ElementId>(e.from));
  }
  const std::size_t n = dag.node_count();
  GraphModel model(std::move(comm));

  const int k = static_cast<int>(rng.uniform(1, 3));
  for (int c = 0; c < k; ++c) {
    TaskGraph tg;
    const auto& edges = dag.edges();
    if (!edges.empty() && rng.chance(0.4)) {
      const auto& e = edges[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(edges.size()) - 1))];
      const OpId o0 = tg.add_op(static_cast<ElementId>(e.from));
      const OpId o1 = tg.add_op(static_cast<ElementId>(e.to));
      const OpId o2 = tg.add_op(static_cast<ElementId>(e.from));
      tg.add_dep(o0, o1);
      tg.add_dep(o1, o2);
    } else {
      auto v = static_cast<graph::NodeId>(
          rng.uniform(0, static_cast<std::int64_t>(n) - 1));
      OpId prev = tg.add_op(static_cast<ElementId>(v));
      const int steps = static_cast<int>(rng.uniform(0, 2));
      for (int s = 0; s < steps; ++s) {
        const auto& succ = dag.successors(v);
        if (succ.empty()) break;
        v = succ[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(succ.size()) - 1))];
        const OpId op = tg.add_op(static_cast<ElementId>(v));
        tg.add_dep(prev, op);
        prev = op;
      }
    }
    model.add_constraint(TimingConstraint{
        "c" + std::to_string(c), std::move(tg), rng.uniform(2, 8),
        rng.uniform(4, 24),
        rng.chance(0.4) ? ConstraintKind::kPeriodic : ConstraintKind::kAsynchronous});
  }
  return model;
}

StaticSchedule random_schedule(sim::Rng& rng, const GraphModel& model) {
  StaticSchedule sched;
  const auto n = static_cast<std::int64_t>(model.comm().size());
  const int entries = static_cast<int>(rng.uniform(1, 14));
  for (int i = 0; i < entries; ++i) {
    if (rng.chance(0.25)) {
      sched.push_idle(rng.uniform(1, 3));
    } else {
      const auto e = static_cast<ElementId>(rng.uniform(0, n - 1));
      sched.push_execution(e, model.comm().weight(e));
    }
  }
  return sched;
}

std::string report_text(const FeasibilityReport& report) {
  std::ostringstream out;
  out << report.feasible << ';';
  for (const ConstraintVerdict& v : report.verdicts) {
    out << v.constraint << ',' << v.satisfied << ','
        << (v.latency ? *v.latency : Time(-1)) << ';';
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Ablation bit-identity: every layer off, singly and jointly.

TEST(HotPathAblation, EveryLayerConfigurationIsBitIdentical) {
  // all-on, each layer off alone, all-off (the pre-PR indexed shape).
  const HotPathConfig configs[] = {
      {},
      {.soa = false},
      {.bitset = false},
      {.arena = false},
      {.calibrate = false},
      {.soa = false, .bitset = false, .arena = false, .calibrate = false},
  };
  ConfigGuard guard;
  sim::Rng rng(0x10CA1);
  for (int i = 0; i < 60; ++i) {
    const GraphModel model = random_model(rng);
    const StaticSchedule sched = random_schedule(rng, model);

    hotpath_config() = HotPathConfig{};
    VerifyOptions flat_options;
    flat_options.flat_reference = true;
    const FeasibilityReport reference = verify_schedule(sched, model, flat_options);

    for (const HotPathConfig& config : configs) {
      hotpath_config() = config;
      for (const std::size_t n_threads : {1, 2}) {
        VerifyStats stats;
        VerifyOptions options;
        options.n_threads = n_threads;
        options.stats = &stats;
        const FeasibilityReport got = verify_schedule(sched, model, options);
        EXPECT_EQ(got, reference)
            << "seed round " << i << " soa=" << config.soa
            << " bitset=" << config.bitset << " arena=" << config.arena
            << " threads=" << n_threads;
        EXPECT_EQ(stats.embedding_queries + stats.memo_hits, stats.work_units);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 64-seed PR 7 corpus slice: flat vs indexed, reports + witnesses +
// fingerprints.

TEST(HotPathCorpus, CorpusSliceIsBitIdenticalToFlatReference) {
  std::size_t verified = 0;
  std::uint64_t flat_fp = 1469598103934665603ull;     // fnv offset basis
  std::uint64_t indexed_fp = 1469598103934665603ull;  // (chained per scenario)
  for (std::uint64_t index = 0; index < 64; ++index) {
    const gen::Scenario scenario = gen::generate(gen::corpus_options(index));
    const HeuristicResult built = latency_schedule(scenario.model);
    if (!built.success) continue;
    const GraphModel& model = built.scheduled_model;
    const StaticSchedule& sched = *built.schedule;

    VerifyOptions flat_options;
    flat_options.flat_reference = true;
    const FeasibilityReport flat = verify_schedule(sched, model, flat_options);
    const FeasibilityReport indexed = verify_schedule(sched, model);
    ASSERT_EQ(indexed, flat) << "corpus index " << index << " (" << scenario.name
                             << ")";

    // Chain a fingerprint over (scenario identity, report) under each
    // engine; equal chains pin the whole slice, not just each row.
    const std::string tag = std::to_string(scenario.fingerprint);
    flat_fp = gen::fnv1a(tag + report_text(flat) + std::to_string(flat_fp));
    indexed_fp = gen::fnv1a(tag + report_text(indexed) + std::to_string(indexed_fp));

    // Witness pin over the first periods of every constraint.
    const std::size_t periods = 4;
    const std::vector<ScheduledOp> ops = unroll_ops(sched, periods);
    const UnrollIndex idx(sched, periods);
    for (std::size_t c = 0; c < model.constraint_count(); ++c) {
      const TaskGraph& tg = model.constraint(c).task_graph;
      EmbeddingKernel kernel(tg, idx);
      for (Time t = 0; t < sched.length(); t += 1 + sched.length() / 7) {
        const auto ref = find_earliest_embedding(tg, ops, t);
        const auto got = kernel.witness_at(t);
        ASSERT_EQ(got.has_value(), ref.has_value())
            << "corpus index " << index << " c" << c << " t=" << t;
        if (ref) {
          EXPECT_EQ(got->finish, ref->finish);
          EXPECT_EQ(got->assignment, ref->assignment);
        }
      }
    }
    ++verified;
  }
  EXPECT_EQ(flat_fp, indexed_fp);
  EXPECT_GT(verified, 32u) << "corpus slice mostly unschedulable — vacuous run";
}

// ---------------------------------------------------------------------------
// UnrollIndex bitset property: row answers == brute force.

TEST(UnrollIndexBitset, RowAnswersMatchBruteForce) {
  sim::Rng rng(0xB175E7);
  for (int round = 0; round < 60; ++round) {
    const GraphModel model = random_model(rng);
    const StaticSchedule sched = random_schedule(rng, model);
    if (sched.length() == 0) continue;
    const std::size_t periods = static_cast<std::size_t>(rng.uniform(1, 5));
    const UnrollIndex index(sched, periods);
    const std::vector<ScheduledOp> ops = unroll_ops(sched, periods);
    ASSERT_EQ(index.size(), ops.size());
    const auto n_elems = static_cast<ElementId>(model.comm().size());
    // occupied_in models the *infinite* cyclic extension; 8 periods
    // cover every window probed below (b <= 4 * length + 1).
    const std::vector<ScheduledOp> extended = unroll_ops(sched, 8);

    for (ElementId e = 0; e < n_elems; ++e) {
      // first_at_or_after == first matching op in the materialized view,
      // whether the row gate or the binary search answered.
      const Time t_end = static_cast<Time>(periods) * sched.length() + 2;
      for (Time t = -1; t < t_end; ++t) {
        std::size_t want = UnrollIndex::npos;
        for (std::size_t i = 0; i < ops.size(); ++i) {
          if (ops[i].elem == e && ops[i].start >= t) {
            want = i;
            break;
          }
        }
        std::size_t skips = 0;
        const std::size_t got = index.first_at_or_after(e, t, ops.size(), &skips);
        EXPECT_EQ(got, want) << "e=" << e << " t=" << t << " round " << round;
      }

      for (Time a = 0; a < 3 * sched.length(); ++a) {
        for (Time b = a; b < a + sched.length() + 2; ++b) {
          bool want = false;
          for (const ScheduledOp& op : extended) {
            if (op.elem == e && op.start >= a && op.start < b) {
              want = true;
              break;
            }
          }
          EXPECT_EQ(index.occupied_in(e, a, b), want)
              << "e=" << e << " [" << a << "," << b << ") round " << round;
        }
      }
    }

    // next_occurrence chains enumerate exactly the element's op
    // subsequence (the same-word mask fast path included).
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::size_t want = UnrollIndex::npos;
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        if (ops[j].elem == ops[i].elem) {
          want = j;
          break;
        }
      }
      EXPECT_EQ(index.next_occurrence(i, ops.size()), want) << "i=" << i;
    }
  }
}

TEST(UnrollIndexBitset, GateSkipsAreCountedAndExact) {
  // One element occurring twice mid-period: windows at/before the first
  // start and past the last start must resolve via the row gates (and
  // count a skip), interior windows via the binary search (no skip).
  StaticSchedule sched;
  sched.push_idle(2);
  sched.push_execution(0, 1);
  sched.push_execution(1, 1);
  sched.push_execution(0, 1);
  sched.push_idle(1);  // period 6; element 0 starts at 2 and 4
  const UnrollIndex index(sched, 3);

  std::size_t skips = 0;
  EXPECT_EQ(index.first_at_or_after(0, 0, index.size(), &skips), 0u);  // head gate
  EXPECT_EQ(skips, 1u);
  EXPECT_EQ(index.first_at_or_after(0, 2, index.size(), &skips), 0u);  // == first
  EXPECT_EQ(skips, 2u);
  EXPECT_EQ(index.first_at_or_after(0, 5, index.size(), &skips), 3u);  // wrap gate
  EXPECT_EQ(skips, 3u);
  EXPECT_EQ(index.first_at_or_after(0, 3, index.size(), &skips), 2u);  // interior
  EXPECT_EQ(skips, 3u);  // binary-search path: no skip counted
}

// ---------------------------------------------------------------------------
// Counter pins: BnB workloads issue a partition-independent seek
// sequence, so the merged counters must agree across thread counts.

TEST(HotPathCounters, BnbCountersPinAcrossThreadCounts) {
  sim::Rng rng(0xC0117);
  int pinned = 0;
  for (int round = 0; round < 20; ++round) {
    CommGraph comm;
    comm.add_element("a", 1);
    comm.add_element("b", 1);
    comm.add_channel(0, 1);
    comm.add_channel(1, 0);
    GraphModel model(std::move(comm));
    for (int c = 0; c < 3; ++c) {
      // Repeated labels on every constraint: the BnB kernel keeps no
      // monotone-hint state, so its seeks are a pure per-query function
      // and cannot depend on how queries were dealt to workers.
      TaskGraph tg;
      const OpId o0 = tg.add_op(0);
      const OpId o1 = tg.add_op(1);
      const OpId o2 = tg.add_op(0);
      tg.add_dep(o0, o1);
      tg.add_dep(o1, o2);
      model.add_constraint(TimingConstraint{
          "c" + std::to_string(c), std::move(tg), rng.uniform(2, 6),
          rng.uniform(6, 20),
          c % 2 == 0 ? ConstraintKind::kAsynchronous : ConstraintKind::kPeriodic});
    }
    StaticSchedule sched;
    for (int i = 0; i < 10; ++i) {
      sched.push_execution(static_cast<ElementId>(rng.uniform(0, 1)), 1);
      if (rng.chance(0.3)) sched.push_idle(1);
    }

    VerifyStats serial;
    VerifyOptions serial_options;
    serial_options.n_threads = 1;
    serial_options.stats = &serial;
    const FeasibilityReport want = verify_schedule(sched, model, serial_options);
    if (serial.bitset_skips == 0) continue;  // degenerate round
    for (const std::size_t n_threads : {2, 4}) {
      VerifyStats stats;
      VerifyOptions options;
      options.n_threads = n_threads;
      options.stats = &stats;
      const FeasibilityReport got = verify_schedule(sched, model, options);
      EXPECT_EQ(got, want);
      EXPECT_EQ(stats.threads_used, n_threads);
      EXPECT_EQ(stats.bitset_skips, serial.bitset_skips) << "threads " << n_threads;
      EXPECT_EQ(stats.index_seeks, serial.index_seeks) << "threads " << n_threads;
      EXPECT_EQ(stats.embedding_queries, serial.embedding_queries);
      EXPECT_GT(stats.arena_bytes_peak, 0u);
    }
    ++pinned;
  }
  EXPECT_GT(pinned, 5) << "too few rounds produced bitset activity";
}

// ---------------------------------------------------------------------------
// Oversubscription regression (E16): forced n_threads = 8 on a host
// with fewer cores must not collapse. Pre-fix this ratio exceeded 50x.

TEST(HotPathOversubscription, EightThreadVerifyStaysNearSerial) {
  sim::Rng rng(0xE16);
  std::vector<std::pair<GraphModel, StaticSchedule>> cases;
  while (cases.size() < 6) {
    const GraphModel model = random_model(rng);
    const HeuristicResult built = latency_schedule(model);
    if (!built.success) continue;
    cases.emplace_back(built.scheduled_model, *built.schedule);
  }

  const auto run = [&](std::size_t n_threads) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < 10; ++rep) {
      for (const auto& [model, sched] : cases) {
        VerifyOptions options;
        options.n_threads = n_threads;
        const FeasibilityReport report = verify_schedule(sched, model, options);
        EXPECT_FALSE(report.cancelled);
      }
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  (void)run(1);  // warm caches and the cutoff calibration
  const double serial = run(1);
  const double oversubscribed = run(8);
  // Loose 2x bound per the issue: sanitizer and scheduler noise is
  // real, but the pre-fix pathology was two orders of magnitude.
  EXPECT_LT(oversubscribed, 2.0 * serial + 0.05)
      << "serial " << serial << "s vs n_threads=8 " << oversubscribed << "s";
}

}  // namespace
}  // namespace rtg::core
