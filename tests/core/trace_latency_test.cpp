#include <gtest/gtest.h>

#include "core/latency.hpp"
#include "rt/scheduler.hpp"

namespace rtg::core {
namespace {

TaskGraph single(ElementId e) {
  TaskGraph tg;
  tg.add_op(e);
  return tg;
}

CommGraph comm_abc() {
  CommGraph g;
  g.add_element("a", 1);
  g.add_element("b", 2);
  g.add_element("c", 1);
  g.add_channel(0, 2);
  return g;
}

TEST(OpsFromTrace, UnitRunsSplitPerSlot) {
  const CommGraph comm = comm_abc();
  sim::ExecutionTrace trace({0, 0, sim::kIdle, 2});
  const auto ops = ops_from_trace(trace, comm);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0], (ScheduledOp{0, 0, 1}));
  EXPECT_EQ(ops[1], (ScheduledOp{0, 1, 1}));
  EXPECT_EQ(ops[2], (ScheduledOp{2, 3, 1}));
}

TEST(OpsFromTrace, WeightedRunsGroup) {
  const CommGraph comm = comm_abc();
  sim::ExecutionTrace trace({1, 1, 1, 1});  // two back-to-back executions of b
  const auto ops = ops_from_trace(trace, comm);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0], (ScheduledOp{1, 0, 2}));
  EXPECT_EQ(ops[1], (ScheduledOp{1, 2, 2}));
}

TEST(OpsFromTrace, PartialRunDropped) {
  const CommGraph comm = comm_abc();
  sim::ExecutionTrace trace({1, 1, 1});  // 1.5 executions of b
  EXPECT_EQ(ops_from_trace(trace, comm).size(), 1u);
  sim::ExecutionTrace preempted({1, sim::kIdle, 1});  // split run: no execution
  EXPECT_TRUE(ops_from_trace(preempted, comm).empty());
}

TEST(OpsFromTrace, UnknownElementThrows) {
  const CommGraph comm = comm_abc();
  sim::ExecutionTrace trace({99});
  EXPECT_THROW((void)ops_from_trace(trace, comm), std::invalid_argument);
}

TEST(FiniteTraceLatency, UniformSpacing) {
  const CommGraph comm = comm_abc();
  // a at slots 0, 4, 8, 12: latency 5 over horizon 16 (window after
  // a@0 waits until a@4 completes at 5... window [1, 1+k] needs k >= 4;
  // windows near the tail can hide in the horizon).
  sim::ExecutionTrace trace;
  for (int rep = 0; rep < 4; ++rep) {
    trace.append(0);
    trace.append_idle(3);
  }
  const auto ops = ops_from_trace(trace, comm);
  const auto latency = finite_trace_latency(ops, 16, single(0));
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, 4);  // completion(1) = 5 -> k >= 4
}

TEST(FiniteTraceLatency, EmptyTraceIsNullopt) {
  EXPECT_EQ(finite_trace_latency({}, 10, single(0)), std::nullopt);
}

TEST(FiniteTraceLatency, SingleExecutionCoversNothingTwice) {
  const CommGraph comm = comm_abc();
  sim::ExecutionTrace trace({0});
  trace.append_idle(9);
  const auto ops = ops_from_trace(trace, comm);
  // Window [1, 1+k]: no a after slot 0 -> must not fit: k > 9.
  // Window [0, k] ok for k >= 1. Only k = 10 keeps all fitting windows
  // served (none besides t=0 fits).
  const auto latency = finite_trace_latency(ops, 10, single(0));
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, 10);
}

TEST(FiniteTraceLatency, MissingElementNullopt) {
  const CommGraph comm = comm_abc();
  sim::ExecutionTrace trace({0, 0, 0});
  const auto ops = ops_from_trace(trace, comm);
  EXPECT_EQ(finite_trace_latency(ops, 3, single(1)), std::nullopt);
}

TEST(FiniteTraceLatency, ChainAcrossTrace) {
  const CommGraph comm = comm_abc();
  TaskGraph chain;
  const OpId oa = chain.add_op(0);
  const OpId oc = chain.add_op(2);
  chain.add_dep(oa, oc);
  // a c a c over 4 slots: completion(0)=2, completion(1)=4, completion(2)=4.
  sim::ExecutionTrace trace({0, 2, 0, 2});
  const auto ops = ops_from_trace(trace, comm);
  const auto latency = finite_trace_latency(ops, 4, chain);
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, 3);  // window [1,4] holds a@2,c@3
}

TEST(FiniteTraceLatency, AgreesWithScheduleLatencyOnLongUnrolls) {
  // For a cyclic schedule unrolled many times, the finite-trace latency
  // converges to the cyclic latency.
  const CommGraph comm = comm_abc();
  StaticSchedule sched;
  sched.push_execution(0, 1);
  sched.push_idle(2);
  sched.push_execution(2, 1);
  const auto cyclic = schedule_latency(sched, single(2));
  ASSERT_TRUE(cyclic.has_value());

  const auto trace = sched.to_trace(50);
  const auto ops = ops_from_trace(trace, comm);
  const auto finite = finite_trace_latency(ops, static_cast<Time>(trace.size()),
                                           single(2));
  ASSERT_TRUE(finite.has_value());
  EXPECT_EQ(*finite, *cyclic);
}

TEST(FiniteTraceLatency, ProcessSimulatorTraceMeasurable) {
  // Glue test: measure the latency an EDF process trace provides for a
  // single-op task graph of the corresponding element.
  rt::TaskSet ts;
  rt::Task t;
  t.c = 1;
  t.p = 5;
  t.d = 5;
  ts.add(t);
  const rt::SimResult sim = rt::simulate(ts, rt::Policy::kEdf, 40);

  CommGraph comm;
  comm.add_element("task0", 1);
  const auto ops = ops_from_trace(sim.trace, comm);
  const auto latency = finite_trace_latency(ops, 40, single(0));
  ASSERT_TRUE(latency.has_value());
  // Task runs at slots 0, 5, 10, ...: worst window opens just after a
  // run and waits for the next one to complete (5 slots later).
  EXPECT_EQ(*latency, 5);
}

}  // namespace
}  // namespace rtg::core
