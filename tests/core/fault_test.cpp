#include "core/fault.hpp"

#include <gtest/gtest.h>

#include "core/latency.hpp"
#include "rt/scheduler.hpp"

namespace rtg::core {
namespace {

TaskGraph single(ElementId e) {
  TaskGraph tg;
  tg.add_op(e);
  return tg;
}

GraphModel one_async(Time d) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"A", single(0), 4, d, ConstraintKind::kAsynchronous});
  return model;
}

TEST(FaultTolerantLatency, ReplicaOneMatchesLatency) {
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_idle(1);
  EXPECT_EQ(fault_tolerant_latency(s, single(0), 1), schedule_latency(s, single(0)));
}

TEST(FaultTolerantLatency, TwoDisjointExecutionsNeedTwoOccurrences) {
  StaticSchedule s;  // "a ." -> a at 0, 2, 4, ...
  s.push_execution(0, 1);
  s.push_idle(1);
  // One execution per 2 slots: 2 disjoint ones from t=1 finish at 5.
  EXPECT_EQ(fault_tolerant_latency(s, single(0), 2), 4);
  EXPECT_EQ(fault_tolerant_latency(s, single(0), 3), 6);
}

TEST(FaultTolerantLatency, ZeroReplicasIsZero) {
  StaticSchedule s;
  s.push_execution(0, 1);
  EXPECT_EQ(fault_tolerant_latency(s, single(0), 0), 0);
}

TEST(FaultTolerantLatency, InfiniteWhenElementMissing) {
  StaticSchedule s;
  s.push_execution(0, 1);
  EXPECT_EQ(fault_tolerant_latency(s, single(1), 2), std::nullopt);
}

TEST(FaultTolerantLatency, ChainReplicasAreDisjoint) {
  // "a b" cyclic: two disjoint a->b executions from t=0 use cycles 1
  // and 2, finishing at 4.
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  TaskGraph chain;
  const OpId oa = chain.add_op(0);
  const OpId ob = chain.add_op(1);
  chain.add_dep(oa, ob);
  const auto ft = fault_tolerant_latency(s, chain, 2);
  ASSERT_TRUE(ft.has_value());
  EXPECT_EQ(*ft, 5);  // worst window start just after a@0
}

TEST(HardenModel, DividesDeadlines) {
  const GraphModel model = one_async(9);
  const GraphModel hardened = harden_model(model, 2);
  EXPECT_EQ(hardened.constraint(0).deadline, 3);
  EXPECT_FALSE(hardened.constraint(0).periodic());
}

TEST(HardenModel, RejectsTooSmallDeadline) {
  const GraphModel model = one_async(2);
  EXPECT_THROW((void)harden_model(model, 2), std::invalid_argument);
}

TEST(HardenAndSchedule, KZeroEquivalentToPlain) {
  const GraphModel model = one_async(8);
  const HardenedResult r = harden_and_schedule(model, 0);
  ASSERT_TRUE(r.success) << r.failure_reason;
  ASSERT_EQ(r.ft_latency.size(), 1u);
  EXPECT_LE(*r.ft_latency[0], 8);
}

TEST(HardenAndSchedule, ProvidesKPlusOneExecutions) {
  const GraphModel model = one_async(12);
  for (std::size_t k : {1u, 2u}) {
    const HardenedResult r = harden_and_schedule(model, k);
    ASSERT_TRUE(r.success) << "k=" << k << ": " << r.failure_reason;
    const auto ft = fault_tolerant_latency(
        *r.schedule, r.scheduled_model.constraint(0).task_graph, k + 1);
    ASSERT_TRUE(ft.has_value());
    EXPECT_LE(*ft, 12);
  }
}

TEST(HardenAndSchedule, UtilizationGrowsWithK) {
  const GraphModel model = one_async(12);
  const HardenedResult k0 = harden_and_schedule(model, 0);
  const HardenedResult k2 = harden_and_schedule(model, 2);
  ASSERT_TRUE(k0.success && k2.success);
  EXPECT_GT(k2.utilization, k0.utilization);
}

TEST(HardenAndSchedule, FailsWhenNoBudget) {
  // Deadline 2, k=2 -> hardened deadline would be 0: impossible.
  const GraphModel model = one_async(2);
  const HardenedResult r = harden_and_schedule(model, 2);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("deadline too small"), std::string::npos);
}

TEST(RunWithFailures, ZeroFailureRateServesEverything) {
  const GraphModel model = one_async(8);
  const HardenedResult r = harden_and_schedule(model, 0);
  ASSERT_TRUE(r.success);
  const auto arrivals = rt::max_rate_arrivals(4, 400);
  FailureModel fm;
  fm.omission_probability = 0.0;
  const FaultInjectionResult fr =
      run_with_failures(*r.schedule, r.scheduled_model, {arrivals}, 420, fm);
  EXPECT_EQ(fr.failed_ops, 0u);
  EXPECT_DOUBLE_EQ(fr.survival_rate(), 1.0);
  EXPECT_GT(fr.invocations, 50u);
}

TEST(RunWithFailures, HardenedScheduleSurvivesBetter) {
  const GraphModel model = one_async(12);
  const HardenedResult plain = harden_and_schedule(model, 0);
  const HardenedResult hard = harden_and_schedule(model, 2);
  ASSERT_TRUE(plain.success && hard.success);

  const auto arrivals = rt::max_rate_arrivals(4, 2000);
  FailureModel fm;
  fm.omission_probability = 0.3;
  fm.seed = 99;
  // Verify against the ORIGINAL 12-slot deadlines (the hardened models
  // carry the divided deadlines; the element ids coincide because the
  // single element is unit weight and needs no pipelining).
  const FaultInjectionResult p =
      run_with_failures(*plain.schedule, model, {arrivals}, 2100, fm);
  const FaultInjectionResult h =
      run_with_failures(*hard.schedule, model, {arrivals}, 2100, fm);
  EXPECT_GT(p.failed_ops, 0u);
  EXPECT_GT(h.survival_rate(), p.survival_rate());
  EXPECT_GT(h.survival_rate(), 0.95);
}

TEST(InjectOverruns, ZeroProbabilityIsIdentity) {
  const GraphModel model = one_async(8);
  const HardenedResult r = harden_and_schedule(model, 0);
  ASSERT_TRUE(r.success);
  const std::vector<ScheduledOp> ops = unroll_ops(*r.schedule, 5);
  OverrunModel om;
  om.probability = 0.0;
  std::size_t count = 123;
  const std::vector<ScheduledOp> out = inject_overruns(ops, om, &count);
  EXPECT_EQ(count, 0u);
  ASSERT_EQ(out.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(out[i].start, ops[i].start);
    EXPECT_EQ(out[i].finish(), ops[i].finish());
  }
}

TEST(InjectOverruns, CertainOverrunSlidesSuccessors) {
  // Two back-to-back unit ops: with p=1 and magnitude 2 the first op
  // becomes [0,2) and pushes the second to [2,4).
  std::vector<ScheduledOp> ops;
  ops.push_back(ScheduledOp{0, 0, 1});
  ops.push_back(ScheduledOp{0, 1, 1});
  OverrunModel om;
  om.probability = 1.0;
  om.magnitude = 2.0;
  std::size_t count = 0;
  const std::vector<ScheduledOp> out = inject_overruns(ops, om, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(out[0].start, 0);
  EXPECT_EQ(out[0].finish(), 2);
  EXPECT_EQ(out[1].start, 2);
  EXPECT_EQ(out[1].finish(), 4);
}

TEST(InjectOverruns, MagnitudeBelowOneNeverShrinksOps) {
  std::vector<ScheduledOp> ops;
  ops.push_back(ScheduledOp{0, 0, 2});
  OverrunModel om;
  om.probability = 1.0;
  om.magnitude = 0.25;  // clamped to 1.0: an overrun never shortens work
  const std::vector<ScheduledOp> out = inject_overruns(ops, om);
  EXPECT_EQ(out[0].duration, 2);
}

TEST(InjectOverruns, ElementLocalRatesOverrideDefaults) {
  std::vector<ScheduledOp> ops;
  ops.push_back(ScheduledOp{0, 0, 1});
  ops.push_back(ScheduledOp{1, 1, 1});
  OverrunModel om;
  om.probability = 0.0;
  om.magnitude = 3.0;
  om.element_probability = {0.0, 1.0};  // only element 1 overruns
  std::size_t count = 0;
  const std::vector<ScheduledOp> out = inject_overruns(ops, om, &count);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(out[0].finish(), 1);  // element 0 untouched
  EXPECT_EQ(out[1].duration, 3);
}

TEST(InjectOverruns, DeterministicUnderSeed) {
  const GraphModel model = one_async(8);
  const HardenedResult r = harden_and_schedule(model, 0);
  ASSERT_TRUE(r.success);
  const std::vector<ScheduledOp> ops = unroll_ops(*r.schedule, 50);
  OverrunModel om;
  om.probability = 0.4;
  om.seed = 7;
  std::size_t c1 = 0, c2 = 0;
  const auto a = inject_overruns(ops, om, &c1);
  const auto b = inject_overruns(ops, om, &c2);
  EXPECT_EQ(c1, c2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].finish(), b[i].finish());
  }
  om.seed = 8;
  std::size_t c3 = 0;
  (void)inject_overruns(ops, om, &c3);
  EXPECT_GT(c1, 0u);  // p=0.4 over ~50 ops: some overruns expected
}

TEST(RunWithOverruns, CleanRunServesEverything) {
  const GraphModel model = one_async(8);
  const HardenedResult r = harden_and_schedule(model, 0);
  ASSERT_TRUE(r.success);
  const auto arrivals = rt::max_rate_arrivals(4, 400);
  OverrunModel om;
  om.probability = 0.0;
  const OverrunRunResult out =
      run_with_overruns(*r.schedule, r.scheduled_model, {arrivals}, 420, om);
  EXPECT_EQ(out.overrun_ops, 0u);
  EXPECT_EQ(out.max_slide, 0);
  EXPECT_DOUBLE_EQ(out.survival_rate(), 1.0);
  EXPECT_GT(out.invocations, 50u);
}

TEST(RunWithOverruns, HeavyOverrunsCauseMisses) {
  // Deadline equal to the service period leaves no slack: every
  // overrun slides the serving execution past some deadline.
  const GraphModel model = one_async(4);
  const HardenedResult r = harden_and_schedule(model, 0);
  ASSERT_TRUE(r.success);
  const auto arrivals = rt::max_rate_arrivals(4, 1000);
  OverrunModel om;
  om.probability = 0.5;
  om.magnitude = 3.0;
  om.seed = 3;
  const OverrunRunResult out =
      run_with_overruns(*r.schedule, r.scheduled_model, {arrivals}, 1100, om);
  EXPECT_GT(out.overrun_ops, 0u);
  EXPECT_GT(out.max_slide, 0);
  EXPECT_LT(out.survival_rate(), 1.0);
}

TEST(RunWithFailures, TotalLossKillsEverything) {
  const GraphModel model = one_async(8);
  const HardenedResult r = harden_and_schedule(model, 0);
  ASSERT_TRUE(r.success);
  const auto arrivals = rt::max_rate_arrivals(4, 200);
  FailureModel fm;
  fm.omission_probability = 1.0;
  const FaultInjectionResult fr =
      run_with_failures(*r.schedule, r.scheduled_model, {arrivals}, 220, fm);
  EXPECT_EQ(fr.satisfied, 0u);
}

}  // namespace
}  // namespace rtg::core
