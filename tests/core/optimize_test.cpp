#include "core/optimize.hpp"

#include <gtest/gtest.h>

#include "core/heuristic.hpp"

namespace rtg::core {
namespace {

TaskGraph single(ElementId e) {
  TaskGraph tg;
  tg.add_op(e);
  return tg;
}

GraphModel one_async(Time d) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"A", single(0), 4, d, ConstraintKind::kAsynchronous});
  return model;
}

TEST(CompactSchedule, RemovesRedundantExecutions) {
  const GraphModel model = one_async(6);
  StaticSchedule over;  // "a a a ." latency well under 6
  over.push_execution(0, 1);
  over.push_execution(0, 1);
  over.push_execution(0, 1);
  over.push_idle(1);
  OptimizeStats stats;
  const StaticSchedule compacted = compact_schedule(over, model, &stats);
  EXPECT_TRUE(verify_schedule(compacted, model).feasible);
  EXPECT_GT(stats.executions_removed, 0u);
  EXPECT_LT(compacted.busy(), over.busy());
}

TEST(CompactSchedule, KeepsNecessaryExecutions) {
  const GraphModel model = one_async(2);
  StaticSchedule tight;  // "a" every slot: latency 1 <= 2 but removing
  tight.push_execution(0, 1);  // the only op leaves nothing
  OptimizeStats stats;
  const StaticSchedule out = compact_schedule(tight, model, &stats);
  EXPECT_EQ(stats.executions_removed, 0u);
  EXPECT_EQ(out, tight);
}

TEST(CompactSchedule, ThrowsOnInfeasibleInput) {
  const GraphModel model = one_async(1);
  StaticSchedule bad;
  bad.push_execution(0, 1);
  bad.push_idle(5);
  EXPECT_THROW((void)compact_schedule(bad, model), std::invalid_argument);
}

TEST(TrimIdle, ShortensLooseSchedules) {
  const GraphModel model = one_async(8);
  StaticSchedule loose;  // "a . . . . ." latency 6+... = wait: len 6
  loose.push_execution(0, 1);
  loose.push_idle(5);
  ASSERT_TRUE(verify_schedule(loose, model).feasible);
  OptimizeStats stats;
  const StaticSchedule trimmed = trim_idle(loose, model, &stats);
  EXPECT_TRUE(verify_schedule(trimmed, model).feasible);
  EXPECT_LT(trimmed.length(), loose.length());
  EXPECT_EQ(stats.idle_removed, loose.length() - trimmed.length());
}

TEST(TrimIdle, NeverBreaksFeasibility) {
  const GraphModel model = one_async(4);
  StaticSchedule s;  // "a . ." latency 5? a@0,3,6: t=1 -> fin 4, lat 3 -- feasible
  s.push_execution(0, 1);
  s.push_idle(2);
  ASSERT_TRUE(verify_schedule(s, model).feasible);
  const StaticSchedule trimmed = trim_idle(s, model);
  EXPECT_TRUE(verify_schedule(trimmed, model).feasible);
}

TEST(OptimizeSchedule, ImprovesHeuristicOutput) {
  // Two constraints sharing an element at different deadlines: the
  // per-constraint servers both schedule it, leaving removable slack.
  CommGraph comm;
  comm.add_element("shared", 1);
  comm.add_element("own", 1);
  comm.add_channel(1, 0);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"S", single(0), 4, 8, ConstraintKind::kAsynchronous});
  TaskGraph chain;
  const OpId a = chain.add_op(1);
  const OpId b = chain.add_op(0);
  chain.add_dep(a, b);
  model.add_constraint(
      TimingConstraint{"C", std::move(chain), 6, 12, ConstraintKind::kAsynchronous});

  const HeuristicResult h = latency_schedule(model);
  ASSERT_TRUE(h.success) << h.failure_reason;
  OptimizeStats stats;
  const StaticSchedule optimized =
      optimize_schedule(*h.schedule, h.scheduled_model, &stats);
  EXPECT_TRUE(verify_schedule(optimized, h.scheduled_model).feasible);
  EXPECT_LE(optimized.busy(), h.schedule->busy());
  EXPECT_LE(optimized.length(), h.schedule->length());
  EXPECT_GT(stats.executions_removed + static_cast<std::size_t>(stats.idle_removed),
            0u);
}

TEST(OptimizeSchedule, StatsCaptureBeforeAfter) {
  const GraphModel model = one_async(6);
  StaticSchedule s;
  s.push_execution(0, 1);
  s.push_execution(0, 1);
  s.push_idle(2);
  OptimizeStats stats;
  (void)optimize_schedule(s, model, &stats);
  EXPECT_EQ(stats.length_before, 4);
  EXPECT_GT(stats.utilization_before, 0.0);
  EXPECT_LE(stats.length_after, stats.length_before);
}

TEST(FindFeasibleRotation, RecoversPhase) {
  // Periodic constraint needing the execution at the start of each
  // period: the rotated-away schedule fails, rotation fixes it.
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"P", single(0), 4, 1, ConstraintKind::kPeriodic});

  StaticSchedule misaligned;  // ". . . a" — a lands at slot 3, not 0
  misaligned.push_idle(3);
  misaligned.push_execution(0, 1);
  EXPECT_FALSE(verify_schedule(misaligned, model).feasible);

  const auto rotated = find_feasible_rotation(misaligned, model);
  ASSERT_TRUE(rotated.has_value());
  EXPECT_TRUE(verify_schedule(*rotated, model).feasible);
  EXPECT_EQ(rotated->entries()[0].elem, 0u);  // execution first
}

TEST(FindFeasibleRotation, NulloptWhenHopeless) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"P", single(0), 2, 1, ConstraintKind::kPeriodic});
  StaticSchedule s;  // one a per 4 slots can never serve period 2
  s.push_execution(0, 1);
  s.push_idle(3);
  EXPECT_EQ(find_feasible_rotation(s, model), std::nullopt);
}

}  // namespace
}  // namespace rtg::core
