#include "core/runtime.hpp"

#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "rt/scheduler.hpp"
#include "sim/rng.hpp"

namespace rtg::core {
namespace {

TaskGraph single(ElementId e) {
  TaskGraph tg;
  tg.add_op(e);
  return tg;
}

GraphModel one_async(Time sep, Time d) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"A", single(0), sep, d, ConstraintKind::kAsynchronous});
  return model;
}

TEST(RunExecutive, ServesAsyncArrivals) {
  const GraphModel model = one_async(3, 4);
  StaticSchedule sched;  // "a ." latency 2
  sched.push_execution(0, 1);
  sched.push_idle(1);
  const ExecutiveResult r = run_executive(sched, model, {{0, 5, 11}}, 30);
  EXPECT_TRUE(r.all_met);
  ASSERT_EQ(r.invocations.size(), 3u);
  EXPECT_EQ(r.invocations[0].invoked, 0);
  EXPECT_EQ(*r.invocations[0].completed, 1);
  EXPECT_EQ(*r.invocations[1].completed, 7);  // a@6 finishes at 7
}

TEST(RunExecutive, DetectsMissWhenScheduleTooSlow) {
  const GraphModel model = one_async(3, 1);
  StaticSchedule sched;  // "a ." latency 2 > deadline 1 for odd arrivals
  sched.push_execution(0, 1);
  sched.push_idle(1);
  const ExecutiveResult r = run_executive(sched, model, {{1}}, 10);
  EXPECT_FALSE(r.all_met);
  EXPECT_FALSE(r.invocations[0].satisfied);
}

TEST(RunExecutive, PeriodicInvocationsGenerated) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"P", single(0), 4, 4, ConstraintKind::kPeriodic});
  StaticSchedule sched;
  sched.push_execution(0, 1);
  sched.push_idle(3);
  const ExecutiveResult r = run_executive(sched, model, {{}}, 16);
  EXPECT_TRUE(r.all_met);
  EXPECT_EQ(r.invocations.size(), 4u);  // t = 0, 4, 8, 12
}

TEST(RunExecutive, InvocationsPastHorizonExcluded) {
  const GraphModel model = one_async(3, 5);
  StaticSchedule sched;
  sched.push_execution(0, 1);
  const ExecutiveResult r = run_executive(sched, model, {{0, 7}}, 10);
  // Arrival at 7 has deadline 12 > horizon: not recorded.
  EXPECT_EQ(r.invocations.size(), 1u);
}

TEST(RunExecutive, ValidatesArrivalStreams) {
  const GraphModel model = one_async(5, 5);
  StaticSchedule sched;
  sched.push_execution(0, 1);
  EXPECT_THROW((void)run_executive(sched, model, {{0, 3}}, 20), std::invalid_argument);
  EXPECT_THROW((void)run_executive(sched, model, {{-1}}, 20), std::invalid_argument);
  EXPECT_THROW((void)run_executive(sched, model, {}, 20), std::invalid_argument);
}

TEST(RunExecutive, RejectsEmptyScheduleAndNegativeHorizon) {
  const GraphModel model = one_async(5, 5);
  StaticSchedule empty;
  EXPECT_THROW((void)run_executive(empty, model, {{}}, 20), std::invalid_argument);
  StaticSchedule sched;
  sched.push_execution(0, 1);
  EXPECT_THROW((void)run_executive(sched, model, {{}}, -1), std::invalid_argument);
}

TEST(RunExecutive, DispatchCountMatchesUnrolledOps) {
  const GraphModel model = one_async(5, 5);
  StaticSchedule sched;  // 2 ops per 4-slot period
  sched.push_execution(0, 1);
  sched.push_idle(1);
  sched.push_execution(0, 1);
  sched.push_idle(1);
  const ExecutiveResult r = run_executive(sched, model, {{}}, 12);
  EXPECT_EQ(r.dispatches, 6u);  // 3 periods * 2 ops
}

TEST(RunExecutive, FeasibleScheduleServesWorstCaseArrivals) {
  // Property: a schedule whose verified latency is <= d serves *every*
  // legal arrival pattern, including maximal-rate ones.
  const GraphModel model = one_async(2, 6);
  const HeuristicResult h = latency_schedule(model);
  ASSERT_TRUE(h.success) << h.failure_reason;

  const auto arrivals = rt::max_rate_arrivals(2, 200);
  const ExecutiveResult r =
      run_executive(*h.schedule, h.scheduled_model, {arrivals}, 220);
  EXPECT_TRUE(r.all_met);
  EXPECT_GT(r.invocations.size(), 50u);
}

TEST(RunExecutive, FeasibleScheduleServesRandomArrivals) {
  const GraphModel model = make_control_system();
  const HeuristicResult h = latency_schedule(model);
  ASSERT_TRUE(h.success) << h.failure_reason;

  sim::Rng rng(7);
  ConstraintArrivals arrivals(3);
  arrivals[2] = rt::random_arrivals(50, 2000, 20.0, rng);  // Z is index 2
  const ExecutiveResult r = run_executive(*h.schedule, h.scheduled_model, arrivals, 2200);
  EXPECT_TRUE(r.all_met);
  // Response times never exceed the deadline.
  for (const InvocationRecord& rec : r.invocations) {
    ASSERT_TRUE(rec.completed.has_value());
    EXPECT_LE(*rec.completed, rec.abs_deadline);
  }
}

TEST(RunExecutive, ResponseTimeAccessor) {
  const GraphModel model = one_async(3, 4);
  StaticSchedule sched;
  sched.push_execution(0, 1);
  sched.push_idle(1);
  const ExecutiveResult r = run_executive(sched, model, {{1}}, 10);
  ASSERT_EQ(r.invocations.size(), 1u);
  ASSERT_TRUE(r.invocations[0].response_time().has_value());
  EXPECT_EQ(*r.invocations[0].response_time(), 2);  // a@2 finishes at 3
}

TEST(RunExecutive, ResponseTimeUnsetWhileIncomplete) {
  const GraphModel model = one_async(3, 1);
  StaticSchedule sched;  // "a ." cannot serve an odd arrival inside d=1
  sched.push_execution(0, 1);
  sched.push_idle(1);
  const ExecutiveResult r = run_executive(sched, model, {{1}}, 10);
  ASSERT_EQ(r.invocations.size(), 1u);
  EXPECT_FALSE(r.invocations[0].satisfied);
  EXPECT_EQ(r.invocations[0].response_time(), std::nullopt);
}

TEST(ValidateArrivals, ReportsEveryDefectWithConstraintAndTimes) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"A", tg, 5, 5, ConstraintKind::kAsynchronous});

  // Sorted but separation-violating, plus a negative instant.
  const ArrivalValidation v = validate_arrivals(model, {{-2, 0, 3}});
  ASSERT_EQ(v.issues.size(), 2u);
  EXPECT_EQ(v.issues[0].kind, ArrivalIssue::Kind::kNegativeTime);
  EXPECT_EQ(v.issues[0].time, -2);
  EXPECT_EQ(v.issues[1].kind, ArrivalIssue::Kind::kSeparationViolation);
  EXPECT_EQ(v.issues[1].constraint_name, "A");
  EXPECT_EQ(v.issues[1].position, 2u);
  EXPECT_EQ(v.issues[1].time, 3);
  EXPECT_EQ(v.issues[1].previous, 0);
  EXPECT_NE(v.to_string().find("'A'"), std::string::npos);

  const ArrivalValidation unsorted = validate_arrivals(model, {{7, 2}});
  ASSERT_EQ(unsorted.issues.size(), 1u);
  EXPECT_EQ(unsorted.issues[0].kind, ArrivalIssue::Kind::kUnsorted);

  const ArrivalValidation missing = validate_arrivals(model, {});
  ASSERT_EQ(missing.issues.size(), 1u);
  EXPECT_EQ(missing.issues[0].kind, ArrivalIssue::Kind::kMissingStream);

  EXPECT_TRUE(validate_arrivals(model, {{0, 5, 11}}).ok());
}

}  // namespace
}  // namespace rtg::core
