// Differential tests: the parallel verification and feasibility engines
// against their serial legacy paths (ISSUE 2).
//
//   * verify_schedule must be *bit-identical* to the serial verifier at
//     every thread count — same verdict order, same latencies, same
//     satisfied flags (FeasibilityReport::operator== covers all of it);
//   * exact_feasible must return the same FeasibilityStatus as the
//     serial search, and any witness schedule it produces must verify.
//
// Models are seeded-random over the graph generators so each run covers
// the same ~200 instances deterministically.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "graph/generators.hpp"
#include "sim/rng.hpp"

namespace rtg::core {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

// Random communication graph drawn from the structured generators, so
// the differential sweep sees chains, fork-joins, and random DAGs, not
// just unstructured element soups.
graph::Digraph random_digraph(sim::Rng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0:
      return graph::make_chain(rng.uniform(1, 4));
    case 1:
      return graph::make_fork_join(rng.uniform(1, 3));
    case 2:
      return graph::make_random_dag(rng.uniform(1, 5), 0.4, rng);
    default:
      return graph::make_series_parallel(rng.uniform(1, 4), 0.5, rng);
  }
}

// Builds a model whose comm graph mirrors the generated digraph and
// whose task graphs are label-respecting walks (so add_constraint's
// homomorphism validation always passes).
GraphModel random_model(sim::Rng& rng, Time min_d, Time max_d) {
  const graph::Digraph dag = random_digraph(rng);
  CommGraph comm;
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    comm.add_element("e" + std::to_string(v), rng.uniform(1, 2));
  }
  for (const auto& e : dag.edges()) {
    comm.add_channel(static_cast<ElementId>(e.from), static_cast<ElementId>(e.to));
  }
  const std::size_t n = dag.node_count();
  GraphModel model(std::move(comm));

  const int k = static_cast<int>(rng.uniform(1, 3));
  for (int c = 0; c < k; ++c) {
    TaskGraph tg;
    // Walk forward along channels for a chain-shaped task graph.
    graph::NodeId v = static_cast<graph::NodeId>(rng.uniform(0, n - 1));
    OpId prev = tg.add_op(static_cast<ElementId>(v));
    const int steps = static_cast<int>(rng.uniform(0, 2));
    for (int s = 0; s < steps; ++s) {
      const auto& succ = dag.successors(v);
      if (succ.empty()) break;
      v = succ[rng.uniform(0, succ.size() - 1)];
      const OpId op = tg.add_op(static_cast<ElementId>(v));
      tg.add_dep(prev, op);
      prev = op;
    }
    model.add_constraint(TimingConstraint{
        "c" + std::to_string(c), std::move(tg), rng.uniform(1, 6),
        rng.uniform(min_d, max_d),
        rng.chance(0.4) ? ConstraintKind::kPeriodic : ConstraintKind::kAsynchronous});
  }
  return model;
}

// Random schedule over the model's elements: complete executions (one
// weight's worth of slots) interleaved with idle runs.
StaticSchedule random_schedule(sim::Rng& rng, const GraphModel& model) {
  StaticSchedule sched;
  const std::size_t n = model.comm().size();
  const int entries = static_cast<int>(rng.uniform(0, 12));
  for (int i = 0; i < entries; ++i) {
    if (rng.chance(0.25)) {
      sched.push_idle(rng.uniform(1, 3));
    } else {
      const auto e = static_cast<ElementId>(rng.uniform(0, n - 1));
      sched.push_execution(e, model.comm().weight(e));
    }
  }
  return sched;
}

class ParallelVerifyDiff : public ::testing::TestWithParam<std::uint64_t> {};

// ~200 seeded models x 4 thread counts: the parallel verifier must
// reproduce the serial report exactly.
INSTANTIATE_TEST_SUITE_P(Seeds, ParallelVerifyDiff,
                         ::testing::Range<std::uint64_t>(0, 200));

TEST_P(ParallelVerifyDiff, BitIdenticalToSerial) {
  sim::Rng rng(GetParam() * 6364136223846793005ULL + 1442695040888963407ULL);
  const GraphModel model = random_model(rng, 1, 12);
  const StaticSchedule sched = random_schedule(rng, model);

  const FeasibilityReport serial = verify_schedule(sched, model, VerifyOptions{.n_threads = 1});
  for (const std::size_t n_threads : kThreadCounts) {
    VerifyStats stats;
    const FeasibilityReport parallel = verify_schedule(
        sched, model, VerifyOptions{.n_threads = n_threads, .stats = &stats});
    EXPECT_EQ(parallel, serial) << "n_threads = " << n_threads;
    if (n_threads > 1) {
      // Every work unit is answered exactly once, computed or memoized.
      EXPECT_EQ(stats.embedding_queries + stats.memo_hits, stats.work_units);
    }
  }
}

class ParallelExactDiff : public ::testing::TestWithParam<std::uint64_t> {};

// Smaller instances (the game is exponential) but the same contract:
// identical status, and the parallel witness must verify.
INSTANTIATE_TEST_SUITE_P(Seeds, ParallelExactDiff,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST_P(ParallelExactDiff, StatusMatchesSerial) {
  sim::Rng rng(GetParam() * 2862933555777941757ULL + 3037000493ULL);
  const GraphModel model = random_model(rng, 2, 6);

  ExactOptions serial_options;
  serial_options.state_budget = 200'000;
  serial_options.n_threads = 1;
  const ExactResult serial = exact_feasible(model, serial_options);
  if (serial.status == FeasibilityStatus::kUnknown) {
    GTEST_SKIP() << "budget-truncated instance";
  }

  for (const std::size_t n_threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    ExactOptions options = serial_options;
    options.n_threads = n_threads;
    const ExactResult parallel = exact_feasible(model, options);
    EXPECT_EQ(parallel.status, serial.status) << "n_threads = " << n_threads;
    if (serial.states_explored > 0) {
      // Refuted/trivial models answer without a search in both engines.
      EXPECT_GE(parallel.states_explored, 1u);
    }
    if (parallel.status == FeasibilityStatus::kFeasible) {
      ASSERT_TRUE(parallel.schedule.has_value());
      EXPECT_TRUE(
          verify_schedule(*parallel.schedule, model, VerifyOptions{.n_threads = 1}).feasible)
          << "n_threads = " << n_threads;
    }
  }
}

// The parallel search respects the state budget: with a tiny budget it
// either proves an answer within it or reports kUnknown — and any
// feasible claim still carries a verified witness.
TEST(ParallelExact, TinyBudgetIsSoundOrUnknown) {
  sim::Rng rng(20260806);
  for (int i = 0; i < 10; ++i) {
    const GraphModel model = random_model(rng, 2, 6);
    ExactOptions options;
    options.state_budget = 2;
    options.n_threads = 4;
    const ExactResult r = exact_feasible(model, options);
    if (r.status == FeasibilityStatus::kFeasible) {
      ASSERT_TRUE(r.schedule.has_value());
      EXPECT_TRUE(verify_schedule(*r.schedule, model).feasible);
    }
  }
}

// The heuristic's report is the same at every thread count (it is the
// same verify_schedule underneath).
TEST(ParallelHeuristic, ReportMatchesSerial) {
  sim::Rng rng(97);
  for (int i = 0; i < 20; ++i) {
    const GraphModel model = random_model(rng, 6, 20);
    HeuristicOptions serial_options;
    serial_options.n_threads = 1;
    const HeuristicResult serial = latency_schedule(model, serial_options);

    HeuristicOptions parallel_options;
    parallel_options.n_threads = 4;
    const HeuristicResult parallel = latency_schedule(model, parallel_options);

    EXPECT_EQ(parallel.success, serial.success);
    EXPECT_EQ(parallel.report, serial.report);
    EXPECT_EQ(parallel.schedule, serial.schedule);
  }
}

}  // namespace
}  // namespace rtg::core
