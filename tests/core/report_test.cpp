#include "core/report.hpp"

#include <gtest/gtest.h>

namespace rtg::core {
namespace {

TaskGraph single(ElementId e) {
  TaskGraph tg;
  tg.add_op(e);
  return tg;
}

TEST(AnalyzeModel, ControlSystemAdvisesHeuristic) {
  const GraphModel model = make_control_system();
  const ModelAnalysis a = analyze_model(model);
  EXPECT_TRUE(a.theorem3);
  EXPECT_EQ(a.advice, EngineAdvice::kHeuristic);
  ASSERT_EQ(a.constraints.size(), 3u);
  EXPECT_EQ(a.constraints[0].computation, 4);
  EXPECT_EQ(a.constraints[0].critical_path, 4);  // chain: cp == w
  EXPECT_TRUE(a.constraints[2].half_deadline_ok);  // Z: 3 <= 12
  EXPECT_TRUE(a.refutations.empty());
}

TEST(AnalyzeModel, DenseModelAdvisesExactGame) {
  CommGraph comm;
  comm.add_element("a", 1, false);
  comm.add_element("b", 1, false);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"A", single(0), 1, 2, ConstraintKind::kAsynchronous});
  model.add_constraint(
      TimingConstraint{"B", single(1), 1, 2, ConstraintKind::kAsynchronous});
  const ModelAnalysis a = analyze_model(model);
  EXPECT_GT(a.deadline_utilization, 0.5);
  EXPECT_EQ(a.advice, EngineAdvice::kExactGame);
}

TEST(AnalyzeModel, NarrowMissAdvisesHeuristicLikely) {
  // Low utilization but a non-pipelinable heavy element breaks (iii).
  CommGraph comm;
  comm.add_element("w4", 4, false);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"C", single(0), 40, 40, ConstraintKind::kAsynchronous});
  const ModelAnalysis a = analyze_model(model);
  EXPECT_FALSE(a.theorem3);
  EXPECT_LE(a.deadline_utilization, 0.5);
  EXPECT_EQ(a.advice, EngineAdvice::kHeuristicLikely);
  EXPECT_FALSE(a.constraints[0].pipelinable);
}

TEST(AnalyzeModel, RefutedModelAdvisesInfeasible) {
  CommGraph comm;
  comm.add_element("a", 5);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"C", single(0), 10, 3, ConstraintKind::kAsynchronous});
  const ModelAnalysis a = analyze_model(model);
  EXPECT_EQ(a.advice, EngineAdvice::kInfeasible);
  EXPECT_FALSE(a.refutations.empty());
}

TEST(AnalyzeModel, CriticalPathVsComputationForDags) {
  // Fork-join: cp < w.
  CommGraph comm;
  comm.add_element("s", 1);
  comm.add_element("l", 2);
  comm.add_element("r", 2);
  comm.add_element("t", 1);
  comm.add_channel(0, 1);
  comm.add_channel(0, 2);
  comm.add_channel(1, 3);
  comm.add_channel(2, 3);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const OpId s = tg.add_op(0);
  const OpId l = tg.add_op(1);
  const OpId r = tg.add_op(2);
  const OpId t = tg.add_op(3);
  tg.add_dep(s, l);
  tg.add_dep(s, r);
  tg.add_dep(l, t);
  tg.add_dep(r, t);
  model.add_constraint(
      TimingConstraint{"FJ", std::move(tg), 20, 20, ConstraintKind::kAsynchronous});
  const ModelAnalysis a = analyze_model(model);
  EXPECT_EQ(a.constraints[0].computation, 6);
  EXPECT_EQ(a.constraints[0].critical_path, 4);  // s -> l -> t
}

TEST(RenderAnalysis, MentionsKeyFacts) {
  const GraphModel model = make_control_system();
  const std::string text = render_analysis(analyze_model(model), model);
  EXPECT_NE(text.find("theorem 3 hypotheses: satisfied"), std::string::npos);
  EXPECT_NE(text.find("advice: constructive heuristic"), std::string::npos);
  EXPECT_NE(text.find("X:"), std::string::npos);
}

TEST(RenderAnalysis, ShowsRefutations) {
  CommGraph comm;
  comm.add_element("a", 5);
  GraphModel model(std::move(comm));
  model.add_constraint(
      TimingConstraint{"C", single(0), 10, 3, ConstraintKind::kAsynchronous});
  const std::string text = render_analysis(analyze_model(model), model);
  EXPECT_NE(text.find("REFUTED:"), std::string::npos);
  EXPECT_NE(text.find("infeasible"), std::string::npos);
}

}  // namespace
}  // namespace rtg::core
