#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace rtg::core {
namespace {

GraphModel weighted_model() {
  CommGraph comm;
  comm.add_element("src", 1);            // 0
  comm.add_element("filt", 3);           // 1: decomposes into 3 stages
  comm.add_element("act", 2, false);     // 2: non-pipelinable, stays whole
  comm.add_channel(0, 1);
  comm.add_channel(1, 2);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  const OpId c = tg.add_op(2);
  tg.add_dep(a, b);
  tg.add_dep(b, c);
  model.add_constraint(
      TimingConstraint{"C", std::move(tg), 20, 12, ConstraintKind::kAsynchronous});
  return model;
}

TEST(PipelineModel, DecomposesPipelinableElements) {
  const PipelinedModel p = pipeline_model(weighted_model());
  // src(1) + filt/0..2 + act(1 whole) = 5 elements.
  EXPECT_EQ(p.model.comm().size(), 5u);
  EXPECT_TRUE(p.model.comm().find("filt/0").has_value());
  EXPECT_TRUE(p.model.comm().find("filt/2").has_value());
  EXPECT_FALSE(p.model.comm().find("filt").has_value());
  EXPECT_TRUE(p.model.comm().find("act").has_value());  // untouched
}

TEST(PipelineModel, SubElementsAreUnitWeight) {
  const PipelinedModel p = pipeline_model(weighted_model());
  const auto f0 = p.model.comm().find("filt/0");
  ASSERT_TRUE(f0.has_value());
  EXPECT_EQ(p.model.comm().weight(*f0), 1);
  const auto act = p.model.comm().find("act");
  EXPECT_EQ(p.model.comm().weight(*act), 2);  // non-pipelinable keeps weight
}

TEST(PipelineModel, ChainChannelsInserted) {
  const PipelinedModel p = pipeline_model(weighted_model());
  const auto f0 = *p.model.comm().find("filt/0");
  const auto f1 = *p.model.comm().find("filt/1");
  const auto f2 = *p.model.comm().find("filt/2");
  EXPECT_TRUE(p.model.comm().has_channel(f0, f1));
  EXPECT_TRUE(p.model.comm().has_channel(f1, f2));
  // External channels redirected: src -> filt/0 and filt/2 -> act.
  const auto src = *p.model.comm().find("src");
  const auto act = *p.model.comm().find("act");
  EXPECT_TRUE(p.model.comm().has_channel(src, f0));
  EXPECT_TRUE(p.model.comm().has_channel(f2, act));
}

TEST(PipelineModel, ProvenanceMapsBack) {
  const GraphModel original = weighted_model();
  const PipelinedModel p = pipeline_model(original);
  for (ElementId e = 0; e < p.model.comm().size(); ++e) {
    ASSERT_LT(p.origin[e], original.comm().size());
  }
  const auto f1 = *p.model.comm().find("filt/1");
  EXPECT_EQ(original.comm().name(p.origin[f1]), "filt");
  EXPECT_EQ(p.stage[f1], 1);
  const auto src = *p.model.comm().find("src");
  EXPECT_EQ(p.stage[src], 0);
}

TEST(PipelineModel, TaskGraphsRewrittenAndValid) {
  const PipelinedModel p = pipeline_model(weighted_model());
  ASSERT_EQ(p.model.constraint_count(), 1u);
  const TimingConstraint& c = p.model.constraint(0);
  // src + 3 filt stages + act = 5 ops.
  EXPECT_EQ(c.task_graph.size(), 5u);
  EXPECT_TRUE(c.task_graph.validate(p.model.comm()).empty());
  EXPECT_TRUE(graph::is_acyclic(c.task_graph.skeleton()));
  // Computation time is preserved.
  EXPECT_EQ(c.task_graph.computation_time(p.model.comm()), 6);
  // It is still a chain.
  EXPECT_TRUE(c.task_graph.as_chain().has_value());
}

TEST(PipelineModel, ConstraintParametersPreserved) {
  const PipelinedModel p = pipeline_model(weighted_model());
  const TimingConstraint& c = p.model.constraint(0);
  EXPECT_EQ(c.name, "C");
  EXPECT_EQ(c.period, 20);
  EXPECT_EQ(c.deadline, 12);
  EXPECT_EQ(c.kind, ConstraintKind::kAsynchronous);
}

TEST(PipelineModel, UnitModelIsUnchangedStructurally) {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  comm.add_channel(0, 1);
  GraphModel model(std::move(comm));
  const PipelinedModel p = pipeline_model(model);
  EXPECT_EQ(p.model.comm().size(), 2u);
  EXPECT_EQ(p.model.comm().name(0), "a");
}

TEST(PipelineModel, ForkJoinTaskGraphRewiring) {
  CommGraph comm;
  comm.add_element("s", 2);   // 0, decomposes
  comm.add_element("l", 1);   // 1
  comm.add_element("r", 1);   // 2
  comm.add_element("t", 2);   // 3, decomposes
  comm.add_channel(0, 1);
  comm.add_channel(0, 2);
  comm.add_channel(1, 3);
  comm.add_channel(2, 3);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  const OpId s = tg.add_op(0);
  const OpId l = tg.add_op(1);
  const OpId r = tg.add_op(2);
  const OpId t = tg.add_op(3);
  tg.add_dep(s, l);
  tg.add_dep(s, r);
  tg.add_dep(l, t);
  tg.add_dep(r, t);
  model.add_constraint(
      TimingConstraint{"fj", std::move(tg), 30, 20, ConstraintKind::kAsynchronous});

  const PipelinedModel p = pipeline_model(model);
  const TimingConstraint& c = p.model.constraint(0);
  EXPECT_EQ(c.task_graph.size(), 6u);  // 2 + 1 + 1 + 2
  EXPECT_TRUE(c.task_graph.validate(p.model.comm()).empty());
  // Fork edges leave from s/1 (exit stage), join edges enter t/0.
  const auto s1 = *p.model.comm().find("s/1");
  const auto t0 = *p.model.comm().find("t/0");
  const auto l0 = *p.model.comm().find("l");
  EXPECT_TRUE(p.model.comm().has_channel(s1, l0));
  EXPECT_TRUE(p.model.comm().has_channel(l0, t0));
}

TEST(FullyUnitWeight, Classification) {
  CommGraph unit;
  unit.add_element("a", 1);
  EXPECT_TRUE(fully_unit_weight(GraphModel(unit)));

  CommGraph heavy;
  heavy.add_element("a", 2);
  EXPECT_FALSE(fully_unit_weight(GraphModel(heavy)));

  CommGraph frozen;
  frozen.add_element("a", 2, false);  // heavy but not pipelinable
  EXPECT_TRUE(fully_unit_weight(GraphModel(frozen)));
}

}  // namespace
}  // namespace rtg::core
