#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include "core/feasibility.hpp"

namespace rtg::core {
namespace {

CommGraph comm_ab(Time wa = 1, Time wb = 1) {
  CommGraph g;
  g.add_element("a", wa);
  g.add_element("b", wb);
  g.add_channel(0, 1);
  return g;
}

TaskGraph chain_ab() {
  TaskGraph tg;
  const OpId a = tg.add_op(0);
  const OpId b = tg.add_op(1);
  tg.add_dep(a, b);
  return tg;
}

TEST(CriticalPath, SumsAlongPrecedence) {
  const CommGraph comm = comm_ab(2, 3);
  EXPECT_EQ(task_graph_critical_path(chain_ab(), comm), 5);

  // Antichain: critical path is the heaviest single op.
  TaskGraph anti;
  anti.add_op(0);
  anti.add_op(1);
  EXPECT_EQ(task_graph_critical_path(anti, comm), 3);
}

TEST(RefuteFeasibility, CriticalPathViolation) {
  GraphModel model(comm_ab(2, 3));
  model.add_constraint(
      TimingConstraint{"C", chain_ab(), 10, 4, ConstraintKind::kAsynchronous});
  const auto witnesses = refute_feasibility(model);
  ASSERT_FALSE(witnesses.empty());
  EXPECT_EQ(witnesses[0].kind, InfeasibilityWitness::Kind::kCriticalPath);
  EXPECT_EQ(witnesses[0].constraint, 0u);
  EXPECT_NE(to_string(witnesses[0], model).find("critical-path"), std::string::npos);
}

TEST(RefuteFeasibility, WindowCapacityViolation) {
  // Antichain whose total exceeds the deadline but whose critical path
  // does not: two weight-3 ops of distinct elements, d = 4.
  CommGraph comm;
  comm.add_element("a", 3);
  comm.add_element("b", 3);
  GraphModel model(std::move(comm));
  TaskGraph anti;
  anti.add_op(0);
  anti.add_op(1);
  model.add_constraint(
      TimingConstraint{"C", std::move(anti), 10, 4, ConstraintKind::kAsynchronous});
  const auto witnesses = refute_feasibility(model);
  ASSERT_EQ(witnesses.size(), 2u);  // capacity + density (6 slots per 4)
  EXPECT_EQ(witnesses[0].kind, InfeasibilityWitness::Kind::kWindowCapacity);
}

TEST(RefuteFeasibility, DemandDensityViolation) {
  // Three unit constraints with deadline 2: density 1.5.
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  comm.add_element("c", 1);
  GraphModel model(std::move(comm));
  for (ElementId e = 0; e < 3; ++e) {
    TaskGraph tg;
    tg.add_op(e);
    model.add_constraint(TimingConstraint{"c" + std::to_string(e), std::move(tg), 1, 2,
                                          ConstraintKind::kAsynchronous});
  }
  const auto witnesses = refute_feasibility(model);
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_EQ(witnesses[0].kind, InfeasibilityWitness::Kind::kDemandDensity);
}

TEST(RefuteFeasibility, SharingNotDoubleCounted) {
  // Two constraints over the SAME element at deadline 2: shareable, so
  // the rate is max (1/2), not sum (1) -- wait, sum would be 1.0 which
  // passes anyway; use deadline 1: max rate 1.0 passes, sum 2.0 would
  // refute. The model IS feasible ("a" every slot).
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  for (int i = 0; i < 2; ++i) {
    TaskGraph tg;
    tg.add_op(0);
    model.add_constraint(TimingConstraint{"c" + std::to_string(i), std::move(tg), 1, 1,
                                          ConstraintKind::kAsynchronous});
  }
  EXPECT_TRUE(refute_feasibility(model).empty());
  EXPECT_DOUBLE_EQ(demand_density(model), 1.0);
  EXPECT_EQ(exact_feasible(model).status, FeasibilityStatus::kFeasible);
}

TEST(DemandDensity, PeriodicUsesPeriod) {
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"P", std::move(tg), 4, 2, ConstraintKind::kPeriodic});
  EXPECT_DOUBLE_EQ(demand_density(model), 0.25);  // 1 per period 4
}

TEST(DemandDensity, PeriodicWithLooseDeadlineRelaxes) {
  // d > p: one execution can serve overlapping invocation windows, so
  // the sound rate is 1/(p+d), not 1/p.
  CommGraph comm;
  comm.add_element("a", 1);
  GraphModel model(std::move(comm));
  TaskGraph tg;
  tg.add_op(0);
  model.add_constraint(
      TimingConstraint{"P", std::move(tg), 2, 6, ConstraintKind::kPeriodic});
  EXPECT_DOUBLE_EQ(demand_density(model), 1.0 / 8.0);
}

TEST(DemandDensity, RepeatedOpsCount) {
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("x", 1);
  comm.add_channel(0, 1);
  comm.add_channel(1, 0);
  GraphModel model(std::move(comm));
  TaskGraph tg;  // a -> x -> a: two a-ops per window
  const OpId a1 = tg.add_op(0);
  const OpId x = tg.add_op(1);
  const OpId a2 = tg.add_op(0);
  tg.add_dep(a1, x);
  tg.add_dep(x, a2);
  model.add_constraint(
      TimingConstraint{"R", std::move(tg), 1, 10, ConstraintKind::kAsynchronous});
  EXPECT_DOUBLE_EQ(demand_density(model), 0.3);  // (2 + 1) / 10
}

TEST(RefuteFeasibility, EmptyModelClean) {
  CommGraph comm;
  comm.add_element("a", 1);
  EXPECT_TRUE(refute_feasibility(GraphModel(comm)).empty());
}

TEST(ExactFeasible, UsesBoundsEarlyOut) {
  // A density-refutable model returns infeasible with zero states
  // explored (no search).
  CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("b", 1);
  comm.add_element("c", 1);
  GraphModel model(std::move(comm));
  for (ElementId e = 0; e < 3; ++e) {
    TaskGraph tg;
    tg.add_op(e);
    model.add_constraint(TimingConstraint{"c" + std::to_string(e), std::move(tg), 1, 2,
                                          ConstraintKind::kAsynchronous});
  }
  const ExactResult r = exact_feasible(model);
  EXPECT_EQ(r.status, FeasibilityStatus::kInfeasible);
  EXPECT_EQ(r.states_explored, 0u);
}

}  // namespace
}  // namespace rtg::core
