#include "core/feasibility.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace rtg::core {
namespace {

TaskGraph single(ElementId e) {
  TaskGraph tg;
  tg.add_op(e);
  return tg;
}

// Model with n unit elements; add_async attaches single-op constraints.
GraphModel unit_model(std::size_t n_elements) {
  CommGraph comm;
  for (std::size_t i = 0; i < n_elements; ++i) {
    comm.add_element("e" + std::to_string(i), 1, false);
  }
  return GraphModel(std::move(comm));
}

void add_async(GraphModel& model, ElementId e, Time d) {
  model.add_constraint(TimingConstraint{"a" + std::to_string(e) + "d" + std::to_string(d),
                                        single(e), 1, d,
                                        ConstraintKind::kAsynchronous});
}

TEST(ExactFeasible, EmptyModelIsFeasible) {
  GraphModel model = unit_model(1);
  const ExactResult r = exact_feasible(model);
  EXPECT_EQ(r.status, FeasibilityStatus::kFeasible);
  ASSERT_TRUE(r.schedule.has_value());
}

TEST(ExactFeasible, SingleConstraintFeasible) {
  GraphModel model = unit_model(1);
  add_async(model, 0, 2);
  const ExactResult r = exact_feasible(model);
  ASSERT_EQ(r.status, FeasibilityStatus::kFeasible);
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_TRUE(verify_schedule(*r.schedule, model).feasible);
}

TEST(ExactFeasible, TwoConstraintsNeedTwoSlots) {
  GraphModel model = unit_model(2);
  add_async(model, 0, 2);
  add_async(model, 1, 2);
  const ExactResult r = exact_feasible(model);
  ASSERT_EQ(r.status, FeasibilityStatus::kFeasible);
  EXPECT_TRUE(verify_schedule(*r.schedule, model).feasible);
}

TEST(ExactFeasible, ImpossiblyTightDeadlineInfeasible) {
  GraphModel model = unit_model(2);
  add_async(model, 0, 1);  // every slot must be e0...
  add_async(model, 1, 1);  // ...and also e1
  const ExactResult r = exact_feasible(model);
  EXPECT_EQ(r.status, FeasibilityStatus::kInfeasible);
}

TEST(ExactFeasible, ThreeIntoTwoSlotsInfeasible) {
  GraphModel model = unit_model(3);
  add_async(model, 0, 2);
  add_async(model, 1, 2);
  add_async(model, 2, 2);
  EXPECT_EQ(exact_feasible(model).status, FeasibilityStatus::kInfeasible);
}

TEST(ExactFeasible, WeightTwoNeedsDeadlineThree) {
  // A weight-2 execution never fits completely in every 2-window (the
  // window straddling an execution boundary has no complete run), but
  // deadline 3 works with back-to-back executions.
  CommGraph comm;
  comm.add_element("heavy", 2, false);
  GraphModel tight(comm);
  add_async(tight, 0, 2);
  EXPECT_EQ(exact_feasible(tight).status, FeasibilityStatus::kInfeasible);

  GraphModel loose(comm);
  add_async(loose, 0, 3);
  const ExactResult r = exact_feasible(loose);
  ASSERT_EQ(r.status, FeasibilityStatus::kFeasible);
  EXPECT_TRUE(verify_schedule(*r.schedule, loose).feasible);
}

TEST(ExactFeasible, ChainConstraintBoundary) {
  CommGraph comm;
  comm.add_element("a", 1, false);
  comm.add_element("b", 1, false);
  comm.add_channel(0, 1);

  // Chain a -> b in every 2-window: impossible.
  {
    GraphModel model(comm);
    TaskGraph tg;
    const OpId oa = tg.add_op(0);
    const OpId ob = tg.add_op(1);
    tg.add_dep(oa, ob);
    model.add_constraint(
        TimingConstraint{"ab", std::move(tg), 1, 2, ConstraintKind::kAsynchronous});
    EXPECT_EQ(exact_feasible(model).status, FeasibilityStatus::kInfeasible);
  }
  // Deadline 4: "a b" round-robin works.
  {
    GraphModel model(comm);
    TaskGraph tg;
    const OpId oa = tg.add_op(0);
    const OpId ob = tg.add_op(1);
    tg.add_dep(oa, ob);
    model.add_constraint(
        TimingConstraint{"ab", std::move(tg), 1, 4, ConstraintKind::kAsynchronous});
    const ExactResult r = exact_feasible(model);
    ASSERT_EQ(r.status, FeasibilityStatus::kFeasible);
    EXPECT_TRUE(verify_schedule(*r.schedule, model).feasible);
  }
}

TEST(ExactFeasible, PeriodicConstraintHonoured) {
  GraphModel model = unit_model(2);
  model.add_constraint(
      TimingConstraint{"p", single(0), 2, 1, ConstraintKind::kPeriodic});
  add_async(model, 1, 4);
  const ExactResult r = exact_feasible(model);
  ASSERT_EQ(r.status, FeasibilityStatus::kFeasible);
  EXPECT_TRUE(verify_schedule(*r.schedule, model).feasible);
}

TEST(ExactFeasible, TwoPeriodicSameSlotInfeasible) {
  GraphModel model = unit_model(2);
  model.add_constraint(
      TimingConstraint{"p0", single(0), 2, 1, ConstraintKind::kPeriodic});
  model.add_constraint(
      TimingConstraint{"p1", single(1), 2, 1, ConstraintKind::kPeriodic});
  EXPECT_EQ(exact_feasible(model).status, FeasibilityStatus::kInfeasible);
}

TEST(ExactFeasible, BudgetExhaustionReportsUnknown) {
  GraphModel model = unit_model(3);
  add_async(model, 0, 6);
  add_async(model, 1, 6);
  add_async(model, 2, 6);
  ExactOptions options;
  options.state_budget = 2;
  const ExactResult r = exact_feasible(model, options);
  EXPECT_EQ(r.status, FeasibilityStatus::kUnknown);
}

TEST(ExactFeasible, OversizedWeightThrows) {
  CommGraph comm;
  comm.add_element("w", 300, false);
  GraphModel model(comm);
  add_async(model, 0, 600);
  EXPECT_THROW((void)exact_feasible(model), std::invalid_argument);
}

TEST(BruteForce, FindsKnownSchedule) {
  GraphModel model = unit_model(2);
  add_async(model, 0, 2);
  add_async(model, 1, 2);
  const auto sched = brute_force_schedule(model, 2);
  ASSERT_TRUE(sched.has_value());
  EXPECT_TRUE(verify_schedule(*sched, model).feasible);
}

TEST(BruteForce, ReturnsNulloptWhenNoneAtThatLength) {
  GraphModel model = unit_model(2);
  add_async(model, 0, 1);
  add_async(model, 1, 1);
  EXPECT_EQ(brute_force_schedule(model, 4), std::nullopt);
  EXPECT_EQ(brute_force_schedule(model, 0), std::nullopt);
}

TEST(ExactFeasible, AgreesWithBruteForceOnRandomInstances) {
  sim::Rng rng(555);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform(1, 3));
    GraphModel model = unit_model(n);
    const int k = static_cast<int>(rng.uniform(1, 3));
    for (int i = 0; i < k; ++i) {
      add_async(model, static_cast<ElementId>(rng.uniform(0, static_cast<Time>(n) - 1)),
                rng.uniform(1, 4));
    }
    const ExactResult exact = exact_feasible(model);
    ASSERT_NE(exact.status, FeasibilityStatus::kUnknown) << "trial " << trial;

    bool brute_found = false;
    for (Time len = 1; len <= 6 && !brute_found; ++len) {
      brute_found = brute_force_schedule(model, len).has_value();
    }
    if (exact.status == FeasibilityStatus::kFeasible) {
      EXPECT_TRUE(verify_schedule(*exact.schedule, model).feasible) << "trial " << trial;
    }
    if (brute_found) {
      EXPECT_EQ(exact.status, FeasibilityStatus::kFeasible) << "trial " << trial;
    }
  }
}

TEST(ExactFeasible, CycleCandidatesImproveSchedule) {
  // One constraint with slack: the first cycle found is dense (the DFS
  // favours busy slots); searching more candidates finds leaner cycles.
  GraphModel model = unit_model(1);
  add_async(model, 0, 6);

  ExactOptions first;
  first.cycle_candidates = 1;
  const ExactResult quick = exact_feasible(model, first);
  ASSERT_EQ(quick.status, FeasibilityStatus::kFeasible);

  ExactOptions many;
  many.cycle_candidates = 64;
  const ExactResult lean = exact_feasible(model, many);
  ASSERT_EQ(lean.status, FeasibilityStatus::kFeasible);
  EXPECT_TRUE(verify_schedule(*lean.schedule, model).feasible);
  EXPECT_LE(lean.schedule->utilization(), quick.schedule->utilization());
  EXPECT_GE(lean.states_explored, quick.states_explored);
}

TEST(ExactFeasible, CycleCandidatesNeverChangeTheVerdict) {
  sim::Rng rng(808);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform(1, 3));
    GraphModel model = unit_model(n);
    const int k = static_cast<int>(rng.uniform(1, 2));
    for (int i = 0; i < k; ++i) {
      add_async(model, static_cast<ElementId>(rng.uniform(0, static_cast<Time>(n) - 1)),
                rng.uniform(1, 4));
    }
    ExactOptions one;
    ExactOptions many;
    many.cycle_candidates = 16;
    const auto a = exact_feasible(model, one);
    const auto b = exact_feasible(model, many);
    EXPECT_EQ(a.status, b.status) << "trial " << trial;
    if (b.status == FeasibilityStatus::kFeasible) {
      EXPECT_TRUE(verify_schedule(*b.schedule, model).feasible) << trial;
    }
  }
}

TEST(ExactFeasible, ScheduleStructureIsCyclicallyValid) {
  // The returned schedule must stay feasible when doubled (cyclic
  // repetition invariance).
  GraphModel model = unit_model(2);
  add_async(model, 0, 3);
  add_async(model, 1, 3);
  const ExactResult r = exact_feasible(model);
  ASSERT_EQ(r.status, FeasibilityStatus::kFeasible);
  StaticSchedule doubled;
  for (int rep = 0; rep < 2; ++rep) {
    for (const ScheduleEntry& entry : r.schedule->entries()) {
      if (entry.elem == kIdleEntry) {
        doubled.push_idle(entry.duration);
      } else {
        doubled.push_execution(entry.elem, entry.duration);
      }
    }
  }
  EXPECT_TRUE(verify_schedule(doubled, model).feasible);
}

}  // namespace
}  // namespace rtg::core
