# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_flight_control "/root/repo/build/examples/flight_control")
set_tests_properties(example_flight_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_robot_arm "/root/repo/build/examples/robot_arm")
set_tests_properties(example_robot_arm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_process_control "/root/repo/build/examples/process_control")
set_tests_properties(example_process_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_offline_toolchain "/root/repo/build/examples/offline_toolchain")
set_tests_properties(example_offline_toolchain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spec_compiler "/root/repo/build/examples/spec_compiler" "/root/repo/examples/control_system.rts" "--schedule" "--emit" "--processes")
set_tests_properties(example_spec_compiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
