# Empty dependencies file for process_control.
# This may be replaced when dependencies are built.
