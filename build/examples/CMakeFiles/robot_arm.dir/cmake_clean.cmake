file(REMOVE_RECURSE
  "CMakeFiles/robot_arm.dir/robot_arm.cpp.o"
  "CMakeFiles/robot_arm.dir/robot_arm.cpp.o.d"
  "robot_arm"
  "robot_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robot_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
