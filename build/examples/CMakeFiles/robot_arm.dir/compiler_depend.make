# Empty compiler generated dependencies file for robot_arm.
# This may be replaced when dependencies are built.
