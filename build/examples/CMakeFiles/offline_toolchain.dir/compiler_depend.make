# Empty compiler generated dependencies file for offline_toolchain.
# This may be replaced when dependencies are built.
