file(REMOVE_RECURSE
  "CMakeFiles/offline_toolchain.dir/offline_toolchain.cpp.o"
  "CMakeFiles/offline_toolchain.dir/offline_toolchain.cpp.o.d"
  "offline_toolchain"
  "offline_toolchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
