file(REMOVE_RECURSE
  "CMakeFiles/spec_compiler.dir/spec_compiler.cpp.o"
  "CMakeFiles/spec_compiler.dir/spec_compiler.cpp.o.d"
  "spec_compiler"
  "spec_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
