# Empty compiler generated dependencies file for spec_compiler.
# This may be replaced when dependencies are built.
