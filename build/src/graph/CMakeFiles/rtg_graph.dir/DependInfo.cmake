
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cpp" "src/graph/CMakeFiles/rtg_graph.dir/algorithms.cpp.o" "gcc" "src/graph/CMakeFiles/rtg_graph.dir/algorithms.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/rtg_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/rtg_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/rtg_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/rtg_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/rtg_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/rtg_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/homomorphism.cpp" "src/graph/CMakeFiles/rtg_graph.dir/homomorphism.cpp.o" "gcc" "src/graph/CMakeFiles/rtg_graph.dir/homomorphism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
