file(REMOVE_RECURSE
  "librtg_graph.a"
)
