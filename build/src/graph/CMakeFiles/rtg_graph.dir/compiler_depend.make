# Empty compiler generated dependencies file for rtg_graph.
# This may be replaced when dependencies are built.
