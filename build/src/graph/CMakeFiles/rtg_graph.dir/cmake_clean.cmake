file(REMOVE_RECURSE
  "CMakeFiles/rtg_graph.dir/algorithms.cpp.o"
  "CMakeFiles/rtg_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/rtg_graph.dir/digraph.cpp.o"
  "CMakeFiles/rtg_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/rtg_graph.dir/dot.cpp.o"
  "CMakeFiles/rtg_graph.dir/dot.cpp.o.d"
  "CMakeFiles/rtg_graph.dir/generators.cpp.o"
  "CMakeFiles/rtg_graph.dir/generators.cpp.o.d"
  "CMakeFiles/rtg_graph.dir/homomorphism.cpp.o"
  "CMakeFiles/rtg_graph.dir/homomorphism.cpp.o.d"
  "librtg_graph.a"
  "librtg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
