
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/analysis.cpp" "src/rt/CMakeFiles/rtg_rt.dir/analysis.cpp.o" "gcc" "src/rt/CMakeFiles/rtg_rt.dir/analysis.cpp.o.d"
  "/root/repo/src/rt/cyclic_executive.cpp" "src/rt/CMakeFiles/rtg_rt.dir/cyclic_executive.cpp.o" "gcc" "src/rt/CMakeFiles/rtg_rt.dir/cyclic_executive.cpp.o.d"
  "/root/repo/src/rt/polling_server.cpp" "src/rt/CMakeFiles/rtg_rt.dir/polling_server.cpp.o" "gcc" "src/rt/CMakeFiles/rtg_rt.dir/polling_server.cpp.o.d"
  "/root/repo/src/rt/scheduler.cpp" "src/rt/CMakeFiles/rtg_rt.dir/scheduler.cpp.o" "gcc" "src/rt/CMakeFiles/rtg_rt.dir/scheduler.cpp.o.d"
  "/root/repo/src/rt/task.cpp" "src/rt/CMakeFiles/rtg_rt.dir/task.cpp.o" "gcc" "src/rt/CMakeFiles/rtg_rt.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rtg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
