file(REMOVE_RECURSE
  "librtg_rt.a"
)
