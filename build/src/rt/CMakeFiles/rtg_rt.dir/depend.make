# Empty dependencies file for rtg_rt.
# This may be replaced when dependencies are built.
