file(REMOVE_RECURSE
  "CMakeFiles/rtg_rt.dir/analysis.cpp.o"
  "CMakeFiles/rtg_rt.dir/analysis.cpp.o.d"
  "CMakeFiles/rtg_rt.dir/cyclic_executive.cpp.o"
  "CMakeFiles/rtg_rt.dir/cyclic_executive.cpp.o.d"
  "CMakeFiles/rtg_rt.dir/polling_server.cpp.o"
  "CMakeFiles/rtg_rt.dir/polling_server.cpp.o.d"
  "CMakeFiles/rtg_rt.dir/scheduler.cpp.o"
  "CMakeFiles/rtg_rt.dir/scheduler.cpp.o.d"
  "CMakeFiles/rtg_rt.dir/task.cpp.o"
  "CMakeFiles/rtg_rt.dir/task.cpp.o.d"
  "librtg_rt.a"
  "librtg_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtg_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
