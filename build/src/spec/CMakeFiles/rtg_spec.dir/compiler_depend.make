# Empty compiler generated dependencies file for rtg_spec.
# This may be replaced when dependencies are built.
