file(REMOVE_RECURSE
  "librtg_spec.a"
)
