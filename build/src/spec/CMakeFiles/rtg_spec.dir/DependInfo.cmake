
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/compile.cpp" "src/spec/CMakeFiles/rtg_spec.dir/compile.cpp.o" "gcc" "src/spec/CMakeFiles/rtg_spec.dir/compile.cpp.o.d"
  "/root/repo/src/spec/emit.cpp" "src/spec/CMakeFiles/rtg_spec.dir/emit.cpp.o" "gcc" "src/spec/CMakeFiles/rtg_spec.dir/emit.cpp.o.d"
  "/root/repo/src/spec/lexer.cpp" "src/spec/CMakeFiles/rtg_spec.dir/lexer.cpp.o" "gcc" "src/spec/CMakeFiles/rtg_spec.dir/lexer.cpp.o.d"
  "/root/repo/src/spec/parser.cpp" "src/spec/CMakeFiles/rtg_spec.dir/parser.cpp.o" "gcc" "src/spec/CMakeFiles/rtg_spec.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rtg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/rtg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
