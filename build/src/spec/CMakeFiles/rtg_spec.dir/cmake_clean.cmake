file(REMOVE_RECURSE
  "CMakeFiles/rtg_spec.dir/compile.cpp.o"
  "CMakeFiles/rtg_spec.dir/compile.cpp.o.d"
  "CMakeFiles/rtg_spec.dir/emit.cpp.o"
  "CMakeFiles/rtg_spec.dir/emit.cpp.o.d"
  "CMakeFiles/rtg_spec.dir/lexer.cpp.o"
  "CMakeFiles/rtg_spec.dir/lexer.cpp.o.d"
  "CMakeFiles/rtg_spec.dir/parser.cpp.o"
  "CMakeFiles/rtg_spec.dir/parser.cpp.o.d"
  "librtg_spec.a"
  "librtg_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtg_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
