# Empty compiler generated dependencies file for rtg_core.
# This may be replaced when dependencies are built.
