file(REMOVE_RECURSE
  "librtg_core.a"
)
