
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/rtg_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/dataflow.cpp" "src/core/CMakeFiles/rtg_core.dir/dataflow.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/dataflow.cpp.o.d"
  "/root/repo/src/core/fault.cpp" "src/core/CMakeFiles/rtg_core.dir/fault.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/fault.cpp.o.d"
  "/root/repo/src/core/feasibility.cpp" "src/core/CMakeFiles/rtg_core.dir/feasibility.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/feasibility.cpp.o.d"
  "/root/repo/src/core/heuristic.cpp" "src/core/CMakeFiles/rtg_core.dir/heuristic.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/heuristic.cpp.o.d"
  "/root/repo/src/core/latency.cpp" "src/core/CMakeFiles/rtg_core.dir/latency.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/latency.cpp.o.d"
  "/root/repo/src/core/maintenance.cpp" "src/core/CMakeFiles/rtg_core.dir/maintenance.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/maintenance.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/rtg_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/model.cpp.o.d"
  "/root/repo/src/core/multiproc.cpp" "src/core/CMakeFiles/rtg_core.dir/multiproc.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/multiproc.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/core/CMakeFiles/rtg_core.dir/network.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/network.cpp.o.d"
  "/root/repo/src/core/npc.cpp" "src/core/CMakeFiles/rtg_core.dir/npc.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/npc.cpp.o.d"
  "/root/repo/src/core/optimize.cpp" "src/core/CMakeFiles/rtg_core.dir/optimize.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/optimize.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/rtg_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/rtg_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/report.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/rtg_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/schedule_io.cpp" "src/core/CMakeFiles/rtg_core.dir/schedule_io.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/schedule_io.cpp.o.d"
  "/root/repo/src/core/static_schedule.cpp" "src/core/CMakeFiles/rtg_core.dir/static_schedule.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/static_schedule.cpp.o.d"
  "/root/repo/src/core/synthesis.cpp" "src/core/CMakeFiles/rtg_core.dir/synthesis.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/synthesis.cpp.o.d"
  "/root/repo/src/core/viz.cpp" "src/core/CMakeFiles/rtg_core.dir/viz.cpp.o" "gcc" "src/core/CMakeFiles/rtg_core.dir/viz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/rtg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/rtg_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
