# Empty compiler generated dependencies file for rtg_sim.
# This may be replaced when dependencies are built.
