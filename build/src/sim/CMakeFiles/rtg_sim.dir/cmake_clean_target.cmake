file(REMOVE_RECURSE
  "librtg_sim.a"
)
