file(REMOVE_RECURSE
  "CMakeFiles/rtg_sim.dir/stats.cpp.o"
  "CMakeFiles/rtg_sim.dir/stats.cpp.o.d"
  "CMakeFiles/rtg_sim.dir/trace.cpp.o"
  "CMakeFiles/rtg_sim.dir/trace.cpp.o.d"
  "librtg_sim.a"
  "librtg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
