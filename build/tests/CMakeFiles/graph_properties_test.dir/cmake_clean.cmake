file(REMOVE_RECURSE
  "CMakeFiles/graph_properties_test.dir/graph/algorithm_properties_test.cpp.o"
  "CMakeFiles/graph_properties_test.dir/graph/algorithm_properties_test.cpp.o.d"
  "graph_properties_test"
  "graph_properties_test.pdb"
  "graph_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
