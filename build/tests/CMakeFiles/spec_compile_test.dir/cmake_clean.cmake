file(REMOVE_RECURSE
  "CMakeFiles/spec_compile_test.dir/spec/compile_test.cpp.o"
  "CMakeFiles/spec_compile_test.dir/spec/compile_test.cpp.o.d"
  "spec_compile_test"
  "spec_compile_test.pdb"
  "spec_compile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
