# Empty dependencies file for spec_compile_test.
# This may be replaced when dependencies are built.
