# Empty compiler generated dependencies file for core_heuristic_test.
# This may be replaced when dependencies are built.
