# Empty compiler generated dependencies file for rt_cyclic_executive_test.
# This may be replaced when dependencies are built.
