file(REMOVE_RECURSE
  "CMakeFiles/rt_cyclic_executive_test.dir/rt/cyclic_executive_test.cpp.o"
  "CMakeFiles/rt_cyclic_executive_test.dir/rt/cyclic_executive_test.cpp.o.d"
  "rt_cyclic_executive_test"
  "rt_cyclic_executive_test.pdb"
  "rt_cyclic_executive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_cyclic_executive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
