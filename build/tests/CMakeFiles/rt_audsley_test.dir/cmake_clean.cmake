file(REMOVE_RECURSE
  "CMakeFiles/rt_audsley_test.dir/rt/audsley_test.cpp.o"
  "CMakeFiles/rt_audsley_test.dir/rt/audsley_test.cpp.o.d"
  "rt_audsley_test"
  "rt_audsley_test.pdb"
  "rt_audsley_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_audsley_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
