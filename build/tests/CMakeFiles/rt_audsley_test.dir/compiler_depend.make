# Empty compiler generated dependencies file for rt_audsley_test.
# This may be replaced when dependencies are built.
