file(REMOVE_RECURSE
  "CMakeFiles/spec_fuzz_test.dir/spec/fuzz_test.cpp.o"
  "CMakeFiles/spec_fuzz_test.dir/spec/fuzz_test.cpp.o.d"
  "spec_fuzz_test"
  "spec_fuzz_test.pdb"
  "spec_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
