file(REMOVE_RECURSE
  "CMakeFiles/rt_polling_server_test.dir/rt/polling_server_test.cpp.o"
  "CMakeFiles/rt_polling_server_test.dir/rt/polling_server_test.cpp.o.d"
  "rt_polling_server_test"
  "rt_polling_server_test.pdb"
  "rt_polling_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_polling_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
