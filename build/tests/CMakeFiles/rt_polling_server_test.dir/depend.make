# Empty dependencies file for rt_polling_server_test.
# This may be replaced when dependencies are built.
