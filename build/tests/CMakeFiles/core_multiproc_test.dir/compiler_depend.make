# Empty compiler generated dependencies file for core_multiproc_test.
# This may be replaced when dependencies are built.
