file(REMOVE_RECURSE
  "CMakeFiles/core_multiproc_test.dir/core/multiproc_test.cpp.o"
  "CMakeFiles/core_multiproc_test.dir/core/multiproc_test.cpp.o.d"
  "core_multiproc_test"
  "core_multiproc_test.pdb"
  "core_multiproc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multiproc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
