file(REMOVE_RECURSE
  "CMakeFiles/graph_homomorphism_test.dir/graph/homomorphism_test.cpp.o"
  "CMakeFiles/graph_homomorphism_test.dir/graph/homomorphism_test.cpp.o.d"
  "graph_homomorphism_test"
  "graph_homomorphism_test.pdb"
  "graph_homomorphism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_homomorphism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
