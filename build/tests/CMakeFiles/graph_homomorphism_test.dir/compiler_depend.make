# Empty compiler generated dependencies file for graph_homomorphism_test.
# This may be replaced when dependencies are built.
