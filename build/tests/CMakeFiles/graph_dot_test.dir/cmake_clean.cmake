file(REMOVE_RECURSE
  "CMakeFiles/graph_dot_test.dir/graph/dot_test.cpp.o"
  "CMakeFiles/graph_dot_test.dir/graph/dot_test.cpp.o.d"
  "graph_dot_test"
  "graph_dot_test.pdb"
  "graph_dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
