# Empty compiler generated dependencies file for graph_dot_test.
# This may be replaced when dependencies are built.
