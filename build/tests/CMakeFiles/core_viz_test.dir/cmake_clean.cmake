file(REMOVE_RECURSE
  "CMakeFiles/core_viz_test.dir/core/viz_test.cpp.o"
  "CMakeFiles/core_viz_test.dir/core/viz_test.cpp.o.d"
  "core_viz_test"
  "core_viz_test.pdb"
  "core_viz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_viz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
