# Empty dependencies file for core_viz_test.
# This may be replaced when dependencies are built.
