file(REMOVE_RECURSE
  "CMakeFiles/property_test2.dir/integration/property_test2.cpp.o"
  "CMakeFiles/property_test2.dir/integration/property_test2.cpp.o.d"
  "property_test2"
  "property_test2.pdb"
  "property_test2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_test2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
