# Empty compiler generated dependencies file for property_test2.
# This may be replaced when dependencies are built.
