# Empty dependencies file for core_network_test.
# This may be replaced when dependencies are built.
