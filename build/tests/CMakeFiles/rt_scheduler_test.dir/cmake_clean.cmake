file(REMOVE_RECURSE
  "CMakeFiles/rt_scheduler_test.dir/rt/scheduler_test.cpp.o"
  "CMakeFiles/rt_scheduler_test.dir/rt/scheduler_test.cpp.o.d"
  "rt_scheduler_test"
  "rt_scheduler_test.pdb"
  "rt_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
