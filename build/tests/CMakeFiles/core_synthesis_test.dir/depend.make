# Empty dependencies file for core_synthesis_test.
# This may be replaced when dependencies are built.
