file(REMOVE_RECURSE
  "CMakeFiles/core_synthesis_test.dir/core/synthesis_test.cpp.o"
  "CMakeFiles/core_synthesis_test.dir/core/synthesis_test.cpp.o.d"
  "core_synthesis_test"
  "core_synthesis_test.pdb"
  "core_synthesis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_synthesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
