# Empty compiler generated dependencies file for core_optimize_test.
# This may be replaced when dependencies are built.
