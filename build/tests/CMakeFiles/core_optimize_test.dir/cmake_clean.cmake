file(REMOVE_RECURSE
  "CMakeFiles/core_optimize_test.dir/core/optimize_test.cpp.o"
  "CMakeFiles/core_optimize_test.dir/core/optimize_test.cpp.o.d"
  "core_optimize_test"
  "core_optimize_test.pdb"
  "core_optimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_optimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
