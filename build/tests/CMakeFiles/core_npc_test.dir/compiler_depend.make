# Empty compiler generated dependencies file for core_npc_test.
# This may be replaced when dependencies are built.
