file(REMOVE_RECURSE
  "CMakeFiles/core_npc_test.dir/core/npc_test.cpp.o"
  "CMakeFiles/core_npc_test.dir/core/npc_test.cpp.o.d"
  "core_npc_test"
  "core_npc_test.pdb"
  "core_npc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_npc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
