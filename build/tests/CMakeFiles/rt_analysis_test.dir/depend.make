# Empty dependencies file for rt_analysis_test.
# This may be replaced when dependencies are built.
