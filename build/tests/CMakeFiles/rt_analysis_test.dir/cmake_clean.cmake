file(REMOVE_RECURSE
  "CMakeFiles/rt_analysis_test.dir/rt/analysis_test.cpp.o"
  "CMakeFiles/rt_analysis_test.dir/rt/analysis_test.cpp.o.d"
  "rt_analysis_test"
  "rt_analysis_test.pdb"
  "rt_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
