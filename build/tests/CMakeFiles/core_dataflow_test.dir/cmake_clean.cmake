file(REMOVE_RECURSE
  "CMakeFiles/core_dataflow_test.dir/core/dataflow_test.cpp.o"
  "CMakeFiles/core_dataflow_test.dir/core/dataflow_test.cpp.o.d"
  "core_dataflow_test"
  "core_dataflow_test.pdb"
  "core_dataflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dataflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
