# Empty dependencies file for core_dataflow_test.
# This may be replaced when dependencies are built.
