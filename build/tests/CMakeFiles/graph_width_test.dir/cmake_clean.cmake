file(REMOVE_RECURSE
  "CMakeFiles/graph_width_test.dir/graph/width_test.cpp.o"
  "CMakeFiles/graph_width_test.dir/graph/width_test.cpp.o.d"
  "graph_width_test"
  "graph_width_test.pdb"
  "graph_width_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_width_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
