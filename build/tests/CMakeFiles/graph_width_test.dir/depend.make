# Empty dependencies file for graph_width_test.
# This may be replaced when dependencies are built.
