# Empty dependencies file for rt_task_test.
# This may be replaced when dependencies are built.
