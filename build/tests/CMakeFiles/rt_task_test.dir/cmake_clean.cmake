file(REMOVE_RECURSE
  "CMakeFiles/rt_task_test.dir/rt/task_test.cpp.o"
  "CMakeFiles/rt_task_test.dir/rt/task_test.cpp.o.d"
  "rt_task_test"
  "rt_task_test.pdb"
  "rt_task_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
