file(REMOVE_RECURSE
  "CMakeFiles/spec_emit_test.dir/spec/emit_test.cpp.o"
  "CMakeFiles/spec_emit_test.dir/spec/emit_test.cpp.o.d"
  "spec_emit_test"
  "spec_emit_test.pdb"
  "spec_emit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_emit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
