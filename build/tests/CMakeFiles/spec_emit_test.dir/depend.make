# Empty dependencies file for spec_emit_test.
# This may be replaced when dependencies are built.
