# Empty compiler generated dependencies file for spec_lexer_test.
# This may be replaced when dependencies are built.
