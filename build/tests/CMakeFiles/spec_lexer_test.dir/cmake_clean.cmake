file(REMOVE_RECURSE
  "CMakeFiles/spec_lexer_test.dir/spec/lexer_test.cpp.o"
  "CMakeFiles/spec_lexer_test.dir/spec/lexer_test.cpp.o.d"
  "spec_lexer_test"
  "spec_lexer_test.pdb"
  "spec_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
