# Empty dependencies file for bench_nphard_scaling.
# This may be replaced when dependencies are built.
