file(REMOVE_RECURSE
  "CMakeFiles/bench_nphard_scaling.dir/bench_nphard_scaling.cpp.o"
  "CMakeFiles/bench_nphard_scaling.dir/bench_nphard_scaling.cpp.o.d"
  "bench_nphard_scaling"
  "bench_nphard_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nphard_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
