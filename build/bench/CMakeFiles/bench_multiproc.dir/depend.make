# Empty dependencies file for bench_multiproc.
# This may be replaced when dependencies are built.
