file(REMOVE_RECURSE
  "CMakeFiles/bench_multiproc.dir/bench_multiproc.cpp.o"
  "CMakeFiles/bench_multiproc.dir/bench_multiproc.cpp.o.d"
  "bench_multiproc"
  "bench_multiproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
