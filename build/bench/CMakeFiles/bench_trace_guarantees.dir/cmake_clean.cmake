file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_guarantees.dir/bench_trace_guarantees.cpp.o"
  "CMakeFiles/bench_trace_guarantees.dir/bench_trace_guarantees.cpp.o.d"
  "bench_trace_guarantees"
  "bench_trace_guarantees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_guarantees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
