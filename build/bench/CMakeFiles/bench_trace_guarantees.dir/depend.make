# Empty dependencies file for bench_trace_guarantees.
# This may be replaced when dependencies are built.
