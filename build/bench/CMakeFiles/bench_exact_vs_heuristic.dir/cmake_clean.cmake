file(REMOVE_RECURSE
  "CMakeFiles/bench_exact_vs_heuristic.dir/bench_exact_vs_heuristic.cpp.o"
  "CMakeFiles/bench_exact_vs_heuristic.dir/bench_exact_vs_heuristic.cpp.o.d"
  "bench_exact_vs_heuristic"
  "bench_exact_vs_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exact_vs_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
