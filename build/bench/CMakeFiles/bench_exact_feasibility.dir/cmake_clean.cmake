file(REMOVE_RECURSE
  "CMakeFiles/bench_exact_feasibility.dir/bench_exact_feasibility.cpp.o"
  "CMakeFiles/bench_exact_feasibility.dir/bench_exact_feasibility.cpp.o.d"
  "bench_exact_feasibility"
  "bench_exact_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exact_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
