# Empty dependencies file for bench_exact_feasibility.
# This may be replaced when dependencies are built.
