# Empty compiler generated dependencies file for bench_network_topology.
# This may be replaced when dependencies are built.
