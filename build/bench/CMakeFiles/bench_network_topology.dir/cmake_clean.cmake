file(REMOVE_RECURSE
  "CMakeFiles/bench_network_topology.dir/bench_network_topology.cpp.o"
  "CMakeFiles/bench_network_topology.dir/bench_network_topology.cpp.o.d"
  "bench_network_topology"
  "bench_network_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
