file(REMOVE_RECURSE
  "CMakeFiles/bench_optimize_ablation.dir/bench_optimize_ablation.cpp.o"
  "CMakeFiles/bench_optimize_ablation.dir/bench_optimize_ablation.cpp.o.d"
  "bench_optimize_ablation"
  "bench_optimize_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimize_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
