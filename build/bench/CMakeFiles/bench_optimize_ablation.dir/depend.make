# Empty dependencies file for bench_optimize_ablation.
# This may be replaced when dependencies are built.
