file(REMOVE_RECURSE
  "CMakeFiles/bench_edf_baselines.dir/bench_edf_baselines.cpp.o"
  "CMakeFiles/bench_edf_baselines.dir/bench_edf_baselines.cpp.o.d"
  "bench_edf_baselines"
  "bench_edf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
