# Empty dependencies file for bench_latency_analysis.
# This may be replaced when dependencies are built.
