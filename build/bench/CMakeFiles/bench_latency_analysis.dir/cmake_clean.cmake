file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_analysis.dir/bench_latency_analysis.cpp.o"
  "CMakeFiles/bench_latency_analysis.dir/bench_latency_analysis.cpp.o.d"
  "bench_latency_analysis"
  "bench_latency_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
