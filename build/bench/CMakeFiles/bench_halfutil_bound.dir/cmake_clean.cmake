file(REMOVE_RECURSE
  "CMakeFiles/bench_halfutil_bound.dir/bench_halfutil_bound.cpp.o"
  "CMakeFiles/bench_halfutil_bound.dir/bench_halfutil_bound.cpp.o.d"
  "bench_halfutil_bound"
  "bench_halfutil_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_halfutil_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
