# Empty compiler generated dependencies file for bench_halfutil_bound.
# This may be replaced when dependencies are built.
