# Empty compiler generated dependencies file for bench_process_vs_graph.
# This may be replaced when dependencies are built.
