file(REMOVE_RECURSE
  "CMakeFiles/bench_process_vs_graph.dir/bench_process_vs_graph.cpp.o"
  "CMakeFiles/bench_process_vs_graph.dir/bench_process_vs_graph.cpp.o.d"
  "bench_process_vs_graph"
  "bench_process_vs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_process_vs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
