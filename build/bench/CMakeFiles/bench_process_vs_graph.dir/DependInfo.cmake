
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_process_vs_graph.cpp" "bench/CMakeFiles/bench_process_vs_graph.dir/bench_process_vs_graph.cpp.o" "gcc" "bench/CMakeFiles/bench_process_vs_graph.dir/bench_process_vs_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/rtg_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/rtg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rtg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
