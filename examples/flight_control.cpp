// flight_control — an avionics-flavoured scenario written in the
// requirements DSL: multi-rate sensor fusion (IMU fast, GPS slow, air
// data medium) feeding a control law, plus a sporadic pilot mode switch
// with a hard reaction deadline. Demonstrates the paper's full
// methodology: specification text -> graph-based model -> latency
// scheduling -> comparison with process-based synthesis.
//
//   $ ./flight_control
#include <cstdio>

#include "core/heuristic.hpp"
#include "core/runtime.hpp"
#include "core/synthesis.hpp"
#include "rt/analysis.hpp"
#include "rt/scheduler.hpp"
#include "sim/rng.hpp"
#include "spec/compile.hpp"

using namespace rtg;

namespace {

constexpr const char* kSpec = R"(
# Flight-control requirements.
# Sensor preprocessors
element imu_filter weight 2      # inertial measurement, fast path
element gps_fuse   weight 3     # GPS correction, slow path
element airdata    weight 1      # pitot / static pressure
element mode_sel   weight 1      # pilot mode switch decoder

# Control law and actuation
element ctl_law    weight 4      # attitude control law
element servo_cmd  weight 1      # actuator command formatting

channel imu_filter -> ctl_law -> servo_cmd
channel gps_fuse -> ctl_law
channel airdata -> ctl_law
channel mode_sel -> ctl_law

# Inner loop: IMU at 1/40, full law each sample.
constraint INNER periodic period 40 deadline 40 {
  imu_filter -> ctl_law -> servo_cmd
}
# GPS correction folded in at a quarter of the rate.
constraint GPS periodic period 160 deadline 160 {
  gps_fuse -> ctl_law -> servo_cmd
}
# Air data at half rate.
constraint AIR periodic period 80 deadline 80 {
  airdata -> ctl_law
}
# Pilot flips a mode switch: new law output within 60 slots.
constraint MODE sporadic separation 200 deadline 60 {
  mode_sel -> ctl_law -> servo_cmd
}
)";

}  // namespace

int main() {
  const spec::CompileResult compiled = spec::compile_text(kSpec);
  if (!compiled.ok()) {
    for (const spec::CompileError& e : compiled.errors) {
      std::printf("spec error (line %zu): %s\n", e.line, e.message.c_str());
    }
    return 1;
  }
  const core::GraphModel& model = *compiled.model;
  std::printf("compiled %zu elements, %zu constraints; sum w/d = %.3f\n",
              model.comm().size(), model.constraint_count(),
              model.deadline_utilization());

  // Latency scheduling.
  const core::HeuristicResult synth = core::latency_schedule(model);
  if (!synth.success) {
    std::printf("latency scheduling failed: %s\n", synth.failure_reason.c_str());
    return 1;
  }
  std::printf("static schedule: length %lld, busy %.1f%%, server util %.3f\n",
              static_cast<long long>(synth.schedule->length()),
              100.0 * synth.schedule->utilization(), synth.server_utilization);

  // Process-based baseline for contrast.
  const core::ProcessSynthesis procs = core::synthesize_processes(model, true);
  std::printf("process model: %zu processes, %zu monitors, EDF %s, "
              "work/hyperperiod %lld/%lld\n",
              procs.processes.size(), procs.monitors.size(),
              rt::edf_schedulable(procs.task_set) ? "schedulable" : "NOT schedulable",
              static_cast<long long>(procs.work_per_hyperperiod),
              static_cast<long long>(procs.hyperperiod));

  // Executive with a burst of pilot mode switches at the minimum
  // separation — the adversarial case for the MODE deadline.
  core::ConstraintArrivals arrivals(model.constraint_count());
  const auto mode = model.find_constraint("MODE");
  arrivals[*mode] = rt::max_rate_arrivals(200, 20000);
  const core::ExecutiveResult run =
      core::run_executive(*synth.schedule, synth.scheduled_model, arrivals, 20400);

  sim::Time worst_mode = 0;
  for (const core::InvocationRecord& rec : run.invocations) {
    if (rec.constraint == *mode && rec.completed) {
      worst_mode = std::max(worst_mode, *rec.response_time());
    }
  }
  std::printf("executive: %zu invocations, all met: %s; worst mode-switch "
              "response %lld (deadline 60)\n",
              run.invocations.size(), run.all_met ? "yes" : "NO",
              static_cast<long long>(worst_mode));
  return run.all_met ? 0 : 1;
}
