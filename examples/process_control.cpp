// process_control — a chemical-reactor temperature loop run at the
// *value* level: sensors produce real samples, the control law computes
// actuator commands through the synthesized static schedule, edge
// relations watch the data for integrity violations (the paper's
// fault-tolerance direction), and omission faults are injected to show
// what k-fault-tolerant hardening buys.
//
//   $ ./process_control
#include <cstdio>

#include "core/dataflow.hpp"
#include "core/fault.hpp"
#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "rt/scheduler.hpp"

using namespace rtg;
using core::Value;
using sim::Time;

int main() {
  // Model: temp sensor and pressure sensor feed a PI-style control law
  // driving a valve; the law also feeds back its integral state.
  core::CommGraph comm;
  const auto temp = comm.add_element("temp_sense", 1);
  const auto pres = comm.add_element("pres_sense", 1);
  const auto law = comm.add_element("pi_law", 2);
  const auto valve = comm.add_element("valve_cmd", 1);
  comm.add_channel(temp, law);
  comm.add_channel(pres, law);
  comm.add_channel(law, valve);
  core::GraphModel model(std::move(comm));

  {
    core::TaskGraph tg;
    const auto a = tg.add_op(temp);
    const auto b = tg.add_op(law);
    const auto c = tg.add_op(valve);
    tg.add_dep(a, b);
    tg.add_dep(b, c);
    model.add_constraint(core::TimingConstraint{
        "TEMP", std::move(tg), 16, 32, core::ConstraintKind::kPeriodic});
  }
  {
    core::TaskGraph tg;
    const auto a = tg.add_op(pres);
    const auto b = tg.add_op(law);
    tg.add_dep(a, b);
    model.add_constraint(core::TimingConstraint{
        "PRES", std::move(tg), 32, 64, core::ConstraintKind::kPeriodic});
  }

  const core::HeuristicResult synth = core::latency_schedule(model);
  if (!synth.success) {
    std::printf("synthesis failed: %s\n", synth.failure_reason.c_str());
    return 1;
  }
  std::printf("schedule: length %lld, busy %.0f%%\n",
              static_cast<long long>(synth.schedule->length()),
              100.0 * synth.schedule->utilization());

  // --- Value-level run. ---------------------------------------------
  const core::GraphModel& pm = synth.scheduled_model;  // pipelined model
  core::DataflowExecutive exec(pm);
  const auto p_temp = *pm.comm().find("temp_sense");
  const auto p_pres = *pm.comm().find("pres_sense");
  const auto p_law0 = *pm.comm().find("pi_law/0");
  const auto p_law1 = *pm.comm().find("pi_law/1");
  const auto p_valve = *pm.comm().find("valve_cmd");

  // Reactor temperature drifts up; setpoint is 500 (tenths of a degree).
  exec.set_source(p_temp, [](Time t) { return 480 + t / 8; });
  exec.set_source(p_pres, [](Time t) { return 300 + (t % 64) / 16; });
  // pi_law stage 0: error = setpoint - temp (pressure ignored in this
  // toy law); stage 1: integral state + proportional term.
  exec.set_behaviour(p_law0, [](std::span<const Value> in, Value st) {
    const Value measured = in.empty() ? 0 : in[0];
    return std::pair<Value, Value>{500 - measured, st};
  });
  exec.set_behaviour(p_law1, [](std::span<const Value> in, Value integral) {
    const Value err = in.empty() ? 0 : in[0];
    const Value next_integral = integral + err;
    return std::pair<Value, Value>{2 * err + next_integral / 4, next_integral};
  });
  exec.set_behaviour(p_valve, [](std::span<const Value> in, Value st) {
    // Clamp the command to the valve's range.
    Value cmd = in.empty() ? 0 : in[0];
    cmd = cmd < -100 ? -100 : cmd > 100 ? 100 : cmd;
    return std::pair<Value, Value>{cmd, st};
  });
  // Integrity relation: commanded valve steps must not exceed 50 units
  // between consecutive commands (rate-of-change guard).
  exec.set_edge_relation(p_law1, p_valve, [](Value prev, Value cur) {
    const Value step = cur - prev;
    return step <= 50 && step >= -50;
  });

  const core::DataflowResult run = exec.run(*synth.schedule, 12);
  const auto commands = run.outputs_of(p_valve);
  std::printf("valve commands (%zu):", commands.size());
  for (std::size_t i = 0; i < commands.size() && i < 12; ++i) {
    std::printf(" %lld", static_cast<long long>(commands[i]));
  }
  std::printf("\nedge-relation violations: %zu, pipeline ordered: %s\n",
              run.violations.size(), run.pipeline_ordered ? "yes" : "NO");

  // --- Fault tolerance. ---------------------------------------------
  std::printf("\nomission faults at 20%% per execution, worst-case arrivals:\n");
  for (std::size_t k : {0u, 1u}) {
    const core::HardenedResult hardened = core::harden_and_schedule(model, k);
    if (!hardened.success) {
      std::printf("  k=%zu: %s\n", k, hardened.failure_reason.c_str());
      continue;
    }
    core::FailureModel fm;
    fm.omission_probability = 0.2;
    fm.seed = 7;
    const core::FaultInjectionResult fr = core::run_with_failures(
        *hardened.schedule, synth.scheduled_model, {{}, {}}, 4000, fm);
    std::printf("  k=%zu: schedule busy %.0f%%, survival %.2f%% (%zu/%zu)\n", k,
                100.0 * hardened.utilization, 100.0 * fr.survival_rate(),
                fr.satisfied, fr.invocations);
  }
  return run.violations.empty() && run.pipeline_ordered ? 0 : 1;
}
