// robot_arm — a robotics pipeline (sense -> kinematics -> plan ->
// drive) decomposed across multiple processors, exercising the paper's
// multiprocessor sketch: per-processor latency scheduling plus a TDMA
// communication bus, with exact end-to-end verification.
//
//   $ ./robot_arm
#include <cstdio>

#include "core/model.hpp"
#include "core/multiproc.hpp"
#include "graph/algorithms.hpp"

using namespace rtg;

namespace {

core::GraphModel build_arm_model() {
  core::CommGraph comm;
  const auto enc = comm.add_element("encoders", 1);      // joint encoders
  const auto fk = comm.add_element("fwd_kin", 3);        // forward kinematics
  const auto cam = comm.add_element("camera", 2);        // vision preprocessing
  const auto obj = comm.add_element("obj_track", 3);     // target tracking
  const auto plan = comm.add_element("traj_plan", 4);    // trajectory planning
  const auto ik = comm.add_element("inv_kin", 3);        // inverse kinematics
  const auto drv = comm.add_element("joint_drive", 1);   // motor commands
  comm.add_channel(enc, fk);
  comm.add_channel(fk, plan);
  comm.add_channel(cam, obj);
  comm.add_channel(obj, plan);
  comm.add_channel(plan, ik);
  comm.add_channel(ik, drv);

  core::GraphModel model(std::move(comm));

  // Servo loop: encoders through the full chain to the drives.
  {
    core::TaskGraph tg;
    const auto a = tg.add_op(enc);
    const auto b = tg.add_op(fk);
    const auto c = tg.add_op(plan);
    const auto d = tg.add_op(ik);
    const auto e = tg.add_op(drv);
    tg.add_dep(a, b);
    tg.add_dep(b, c);
    tg.add_dep(c, d);
    tg.add_dep(d, e);
    model.add_constraint(core::TimingConstraint{
        "SERVO", std::move(tg), 60, 60, core::ConstraintKind::kPeriodic});
  }
  // Vision loop: camera -> tracking -> replan, slower.
  {
    core::TaskGraph tg;
    const auto a = tg.add_op(cam);
    const auto b = tg.add_op(obj);
    const auto c = tg.add_op(plan);
    tg.add_dep(a, b);
    tg.add_dep(b, c);
    model.add_constraint(core::TimingConstraint{
        "VISION", std::move(tg), 120, 120, core::ConstraintKind::kPeriodic});
  }
  // Emergency replan on contact: sporadic, tight deadline.
  {
    core::TaskGraph tg;
    const auto c = tg.add_op(plan);
    const auto d = tg.add_op(ik);
    const auto e = tg.add_op(drv);
    tg.add_dep(c, d);
    tg.add_dep(d, e);
    model.add_constraint(core::TimingConstraint{
        "ESTOP", std::move(tg), 300, 80, core::ConstraintKind::kAsynchronous});
  }
  return model;
}

}  // namespace

int main() {
  const core::GraphModel model = build_arm_model();
  std::printf("robot arm model: %zu elements, %zu constraints, sum w/d = %.3f\n",
              model.comm().size(), model.constraint_count(),
              model.deadline_utilization());
  // Dilworth width of each task graph = the most operations that could
  // ever run concurrently, a natural cap on useful processors.
  std::size_t max_width = 1;
  for (const core::TimingConstraint& c : model.constraints()) {
    max_width = std::max(max_width, graph::dag_width(c.task_graph.skeleton()));
  }
  std::printf("max task-graph width: %zu (processors beyond the combined "
              "workload's parallelism cannot shorten any one constraint)\n\n",
              max_width);

  for (std::size_t m : {1, 2, 3}) {
    for (const auto& [strategy, name] :
         {std::pair{core::PartitionStrategy::kLpt, "LPT"},
          std::pair{core::PartitionStrategy::kCommunication, "comm-aware"}}) {
      core::MultiprocOptions options;
      options.processors = m;
      options.strategy = strategy;
      const core::MultiprocResult r = core::multiproc_schedule(model, options);
      std::printf("m=%zu %-10s : ", m, name);
      if (!r.success) {
        std::printf("failed (%s)\n", r.failure_reason.c_str());
        continue;
      }
      std::printf("ok, bus channels %zu", r.bus_channels.size());
      for (std::size_t i = 0; i < r.end_to_end_latency.size(); ++i) {
        const core::TimingConstraint& c = r.scheduled_model.constraint(i);
        std::printf("  %s=%lld/%lld", c.name.c_str(),
                    r.end_to_end_latency[i] ? static_cast<long long>(
                                                  *r.end_to_end_latency[i])
                                            : -1,
                    static_cast<long long>(c.deadline));
      }
      std::printf("\n");
    }
  }
  return 0;
}
