// trace_replay — replay a captured .rtt binary trace against the
// constraints of a requirements specification and report every violated
// window, with the offending trace slice for context.
//
//   $ ./trace_replay <file.rts> <trace.rtt> [--health]
//
// The trace's model fingerprint must match either the raw compiled
// model or its software-pipelined form (schedules and executives run
// against the pipelined model, so captures normally carry that
// fingerprint); replay refuses a mismatched trace because verdicts
// against the wrong constraint set are meaningless.
//
// Every replay is also a self-check: the streaming verdicts are
// re-derived with the naive offline reference checker and compared
// bit for bit.
//
// Exit status: 0 all windows satisfied, 1 usage/spec errors, 2 bad or
// mismatched trace file, 3 violations found.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/pipeline.hpp"
#include "monitor/streaming_monitor.hpp"
#include "monitor/trace_io.hpp"
#include "spec/compile.hpp"

using namespace rtg;

namespace {

int usage() {
  std::fprintf(stderr, "usage: trace_replay <file.rts | -> <trace.rtt> [--health]\n");
  return 1;
}

// Renders trace slots [begin, begin+length) as "x y . z" element names.
std::string render_window(const sim::ExecutionTrace& trace, const core::CommGraph& comm,
                          core::Time begin, core::Time length) {
  const auto end = std::min<std::size_t>(static_cast<std::size_t>(begin + length),
                                         trace.size());
  std::string out;
  for (std::size_t i = static_cast<std::size_t>(begin); i < end; ++i) {
    if (!out.empty()) out += ' ';
    const sim::Slot s = trace.slots()[i];
    out += s == sim::kIdle ? "." : comm.name(static_cast<core::ElementId>(s));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_health = false;
  const char* spec_path = nullptr;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--health") == 0) {
      want_health = true;
    } else if (spec_path == nullptr) {
      spec_path = argv[i];
    } else if (trace_path == nullptr) {
      trace_path = argv[i];
    } else {
      return usage();
    }
  }
  if (spec_path == nullptr || trace_path == nullptr) return usage();

  std::string text;
  if (std::strcmp(spec_path, "-") == 0) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(spec_path);
    if (!in) {
      std::fprintf(stderr, "trace_replay: cannot open '%s'\n", spec_path);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  const spec::CompileResult compiled = spec::compile_text(text);
  if (!compiled.ok()) {
    for (const spec::CompileError& e : compiled.errors) {
      std::fprintf(stderr, "%s:%zu: error: %s\n", spec_path, e.line, e.message.c_str());
    }
    return 1;
  }

  monitor::RttFile file;
  try {
    file = monitor::read_trace_file(trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_replay: %s: %s\n", trace_path, e.what());
    return 2;
  }

  // Captures normally run against the software-pipelined model; accept
  // the raw model too for hand-written traces.
  const core::GraphModel& raw = *compiled.model;
  const core::GraphModel pipelined = core::pipeline_model(raw).model;
  const core::GraphModel* model = nullptr;
  if (file.fingerprint == monitor::model_fingerprint(pipelined)) {
    model = &pipelined;
  } else if (file.fingerprint == monitor::model_fingerprint(raw)) {
    model = &raw;
  } else {
    std::fprintf(stderr,
                 "trace_replay: %s was captured under a different model "
                 "(fingerprint %016llx matches neither '%s' nor its pipelined "
                 "form)\n",
                 trace_path, static_cast<unsigned long long>(file.fingerprint),
                 spec_path);
    return 2;
  }

  monitor::StreamingMonitor mon(*model);
  mon.on_slots(file.trace.slots());
  const monitor::MonitorReport report = mon.report();
  std::printf("# %s: %llu slots, %zu constraints (%s model), idle %.1f%%\n",
              trace_path, static_cast<unsigned long long>(report.horizon),
              model->constraint_count(), model == &pipelined ? "pipelined" : "raw",
              100.0 * report.idle_ratio());

  for (const monitor::ViolationEvent& e : report.violations) {
    const core::TimingConstraint& c = model->constraint(e.constraint);
    std::printf("VIOLATION %s: %zu window%s [%lld, %lld] stride %lld, "
                "placeable ops %zu/%zu\n",
                c.name.c_str(), e.windows(), e.windows() == 1 ? "" : "s",
                static_cast<long long>(e.first_begin),
                static_cast<long long>(e.last_begin),
                static_cast<long long>(e.stride), e.matched_ops, e.total_ops);
    std::printf("  trace[%lld, %lld): %s\n", static_cast<long long>(e.first_begin),
                static_cast<long long>(e.first_begin + e.deadline),
                render_window(file.trace, model->comm(), e.first_begin, e.deadline)
                    .c_str());
  }

  if (want_health) {
    for (std::size_t i = 0; i < report.health.size(); ++i) {
      const monitor::ConstraintHealth& h = report.health[i];
      std::printf("# %s: %zu windows checked, %zu violated, min slack %s, "
                  "peak buffered ops %zu, embedding queries %zu\n",
                  model->constraint(i).name.c_str(), h.windows_checked,
                  h.windows_violated,
                  h.min_slack ? std::to_string(*h.min_slack).c_str() : "-",
                  h.peak_buffered_ops, h.embedding_queries);
    }
  }

  // Self-check: streaming verdicts must be bit-identical to the naive
  // offline reference on the same finite trace.
  if (!monitor::verdicts_match(report, monitor::reference_check(file.trace, *model))) {
    std::fprintf(stderr, "trace_replay: INTERNAL ERROR: streaming verdicts "
                         "disagree with the offline reference\n");
    return 2;
  }
  std::printf("# verdict: %s (cross-checked against offline reference)\n",
              report.ok() ? "CLEAN" : "VIOLATED");
  return report.ok() ? 0 : 3;
}
