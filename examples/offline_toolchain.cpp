// offline_toolchain — the full design workflow the paper's "software
// automation strategy" prescribes, as one program:
//
//   1. capture requirements (spec text -> model instance);
//   2. analytic sanity: necessary-condition bounds;
//   3. resource allocation: exact simulation game on the tiny core,
//      constructive heuristic on the full model;
//   4. post-optimization: compaction + idle trimming;
//   5. deployment artifact: save the schedule, reload it, re-verify.
//
//   $ ./offline_toolchain
#include <cstdio>
#include <string>

#include "core/bounds.hpp"
#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/optimize.hpp"
#include "core/schedule_io.hpp"
#include "spec/compile.hpp"
#include "spec/emit.hpp"

using namespace rtg;

namespace {

constexpr const char* kSpec = R"(
# Conveyor-line supervisor.
element belt_sense            # belt speed encoder
element item_detect           # optical gate
element speed_ctl weight 2    # PI speed controller
element diverter              # pneumatic diverter command
element estop_scan            # emergency-stop loop

channel belt_sense -> speed_ctl
channel item_detect -> diverter
channel estop_scan -> speed_ctl

constraint SPEED periodic period 12 deadline 12 { belt_sense -> speed_ctl }
constraint DIVERT sporadic separation 8 deadline 10 { item_detect -> diverter }
constraint ESTOP sporadic separation 40 deadline 14 { estop_scan -> speed_ctl }
)";

}  // namespace

int main() {
  // 1. Capture.
  const spec::CompileResult compiled = spec::compile_text(kSpec);
  if (!compiled.ok()) {
    for (const auto& e : compiled.errors) {
      std::printf("spec error (line %zu): %s\n", e.line, e.message.c_str());
    }
    return 1;
  }
  const core::GraphModel& model = *compiled.model;
  std::printf("1. captured: %zu elements, %zu constraints (sum w/d = %.3f)\n",
              model.comm().size(), model.constraint_count(),
              model.deadline_utilization());

  // 2. Bounds.
  const auto witnesses = core::refute_feasibility(model);
  if (!witnesses.empty()) {
    std::printf("2. bounds REFUTE the model:\n");
    for (const auto& w : witnesses) {
      std::printf("   %s\n", core::to_string(w, model).c_str());
    }
    return 1;
  }
  std::printf("2. bounds: no refutation (demand density %.3f)\n",
              core::demand_density(model));

  // 3. Synthesis: constructive heuristic first, exact simulation game
  // as the fallback for the regime beyond Theorem 3's bound.
  core::StaticSchedule schedule;
  core::GraphModel schedule_model;  // the model `schedule` is expressed against
  const core::HeuristicResult synth = core::latency_schedule(model);
  if (synth.success) {
    std::printf("3. heuristic schedule: length %lld, busy %.1f%%\n",
                static_cast<long long>(synth.schedule->length()),
                100.0 * synth.schedule->utilization());
    schedule = *synth.schedule;
    schedule_model = synth.scheduled_model;
  } else {
    std::printf("3. heuristic declined (%s); falling back to the exact game...\n",
                synth.failure_reason.c_str());
    core::ExactOptions options;
    options.state_budget = 500'000;
    const core::ExactResult exact = core::exact_feasible(model, options);
    if (exact.status != core::FeasibilityStatus::kFeasible) {
      std::printf("   exact: %s — no schedule\n",
                  exact.status == core::FeasibilityStatus::kInfeasible ? "infeasible"
                                                                       : "unknown");
      return 1;
    }
    std::printf("   exact game schedule: length %lld, busy %.1f%% "
                "(%zu states explored)\n",
                static_cast<long long>(exact.schedule->length()),
                100.0 * exact.schedule->utilization(), exact.states_explored);
    schedule = *exact.schedule;
    schedule_model = model;  // the game works on the unpipelined model
  }

  // 4. Optimize.
  core::OptimizeStats stats;
  const core::StaticSchedule lean =
      core::optimize_schedule(schedule, schedule_model, &stats);
  std::printf("4. optimized: removed %zu executions and %lld idle slots "
              "(length %lld -> %lld, busy %.1f%% -> %.1f%%)\n",
              stats.executions_removed, static_cast<long long>(stats.idle_removed),
              static_cast<long long>(stats.length_before),
              static_cast<long long>(stats.length_after),
              100.0 * stats.utilization_before, 100.0 * stats.utilization_after);

  // 5. Save / reload / re-verify.
  const std::string artifact =
      core::schedule_to_text(lean, schedule_model.comm());
  std::printf("5. artifact: \"%s\"\n", artifact.c_str());
  const auto reloaded =
      core::schedule_from_text(artifact, schedule_model.comm());
  if (!reloaded.ok()) {
    std::printf("   reload FAILED\n");
    return 1;
  }
  const core::FeasibilityReport report =
      core::verify_schedule(*reloaded.schedule, schedule_model);
  for (const auto& v : report.verdicts) {
    const auto& c = schedule_model.constraint(v.constraint);
    if (v.latency) {
      std::printf("   %-7s latency %lld / %lld : %s\n", c.name.c_str(),
                  static_cast<long long>(*v.latency),
                  static_cast<long long>(c.deadline), v.satisfied ? "ok" : "MISS");
    } else {
      std::printf("   %-7s periodic windows : %s\n", c.name.c_str(),
                  v.satisfied ? "ok" : "MISS");
    }
  }
  std::printf("   verdict: %s\n", report.feasible ? "FEASIBLE" : "INFEASIBLE");
  return report.feasible ? 0 : 1;
}
