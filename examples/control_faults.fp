# Fault plan for control_system.rts (format: docs/FAULTS.md).
# Exercise with:
#   spec_compiler control_system.rts --inject control_faults.fp --recovery
seed 42
drop fs rate 0.2 from 0 to 200
fail fk at 300 repair 25
corrupt fx rate 0.1 from 400 to 600
jitter Z max 4
drift every 150 from 0 to 900
