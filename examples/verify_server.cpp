// verify_server — batch front end of the verification service.
//
// Reads line-delimited request frames (svc/protocol) from a file or
// stdin, runs them through a VerifyService, and writes response frames
// in submission order. Pointing --in at a named pipe turns it into a
// long-running server; pointing it at a file makes a batch run:
//
//   verify_server --in requests.txt --out responses.txt --workers 4 \
//                 --cache-snapshot cache.rtvc --health
//
// Exit codes: 0 all frames processed, 1 bad usage, 2 protocol error.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "svc/protocol.hpp"
#include "svc/service.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "verify_server: error: " << message << '\n'
            << "usage: verify_server [--in FILE|-] [--out FILE|-] [--workers N]\n"
            << "         [--max-pending N] [--tenant-rate R] [--tenant-burst B]\n"
            << "         [--cache-snapshot FILE] [--chaos-seed N]\n"
            << "         [--chaos-stall-rate F] [--chaos-stall-ms N]\n"
            << "         [--chaos-fail-rate F] [--health]\n";
  std::exit(1);
}

std::string need_value(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) usage_error(flag + " requires a value");
  return argv[++i];
}

std::uint64_t parse_num(const std::string& value, const std::string& flag) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    usage_error(flag + ": not a number: '" + value + "'");
  }
}

double parse_real(const std::string& value, const std::string& flag) {
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    usage_error(flag + ": not a number: '" + value + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path = "-";
  std::string out_path = "-";
  bool print_health = false;
  rtg::svc::ServiceOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--in") {
      in_path = need_value(argc, argv, i, arg);
    } else if (arg == "--out") {
      out_path = need_value(argc, argv, i, arg);
    } else if (arg == "--workers") {
      options.workers = parse_num(need_value(argc, argv, i, arg), arg);
    } else if (arg == "--max-pending") {
      options.admission.max_pending = parse_num(need_value(argc, argv, i, arg), arg);
    } else if (arg == "--tenant-rate") {
      options.admission.tenant_rate = parse_real(need_value(argc, argv, i, arg), arg);
    } else if (arg == "--tenant-burst") {
      options.admission.tenant_burst = parse_real(need_value(argc, argv, i, arg), arg);
    } else if (arg == "--cache-snapshot") {
      options.snapshot_path = need_value(argc, argv, i, arg);
    } else if (arg == "--chaos-seed") {
      options.chaos.seed = parse_num(need_value(argc, argv, i, arg), arg);
    } else if (arg == "--chaos-stall-rate") {
      options.chaos.stall_rate = parse_real(need_value(argc, argv, i, arg), arg);
    } else if (arg == "--chaos-stall-ms") {
      options.chaos.stall_ms =
          static_cast<std::uint32_t>(parse_num(need_value(argc, argv, i, arg), arg));
    } else if (arg == "--chaos-fail-rate") {
      options.chaos.fail_rate = parse_real(need_value(argc, argv, i, arg), arg);
    } else if (arg == "--health") {
      print_health = true;
    } else {
      usage_error("unknown flag '" + arg + "'");
    }
  }

  std::ifstream in_file;
  if (in_path != "-") {
    in_file.open(in_path);
    if (!in_file) usage_error("cannot open input '" + in_path + "'");
  }
  std::istream& in = in_path == "-" ? std::cin : in_file;

  std::ofstream out_file;
  if (out_path != "-") {
    out_file.open(out_path, std::ios::trunc);
    if (!out_file) usage_error("cannot open output '" + out_path + "'");
  }
  std::ostream& out = out_path == "-" ? std::cout : out_file;

  try {
    rtg::svc::VerifyService service(options);

    std::vector<std::future<rtg::svc::JobResponse>> futures;
    while (auto request = rtg::svc::read_request(in)) {
      futures.push_back(service.submit(std::move(*request)));
    }
    for (auto& future : futures) {
      rtg::svc::write_response(out, future.get());
    }
    out.flush();
    service.shutdown();

    if (print_health) {
      const rtg::svc::ServiceHealth h = service.health();
      std::cerr << "verify_server: submitted=" << h.submitted
                << " completed=" << h.completed << " rejected=" << h.rejected
                << " deferred=" << h.deferred << " expired=" << h.expired
                << " invalid=" << h.invalid << " failed=" << h.failed
                << " retries=" << h.retries << " redeliveries=" << h.redeliveries
                << " stuck=" << h.stuck_worker_events
                << " degraded=" << h.degraded_jobs << " mode=" << h.mode
                << " cache[hits=" << h.cache_hits << " misses=" << h.cache_misses
                << " evictions=" << h.cache_evictions << " size=" << h.cache_size
                << "]\n";
      if (h.snapshot_load_failed) {
        std::cerr << "verify_server: warning: snapshot was corrupt; started cold\n";
      }
    }
  } catch (const rtg::svc::ProtocolError& e) {
    std::cerr << "verify_server: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "verify_server: error: " << e.what() << '\n';
    return 2;
  }
  return 0;
}
