# End-to-end smoke test for the verification service CLI pair.
#
# 1. spec_compiler synthesizes a schedule for the control-system spec.
# 2. verify_client composes a three-job batch: verify that schedule,
#    synthesize a fresh one, and monitor the captured .rtt trace.
# 3. verify_server processes the batch file -> response file.
# 4. verify_client --summarize must accept every response (exit 0).
#
# Invoked via `cmake -P` with CLIENT/SERVER/COMPILER/SPEC/TRACE/WORKDIR.

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}")
  endif()
endfunction()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
set(sched "${WORKDIR}/sched.txt")
set(requests "${WORKDIR}/requests.txt")
set(responses "${WORKDIR}/responses.txt")

run("${COMPILER}" "${SPEC}" --save "${sched}")

run("${CLIENT}" --spec "${SPEC}" --verify "${sched}" --id 1 --tenant acme
    --out "${requests}")
run("${CLIENT}" --spec "${SPEC}" --synth --id 2 --tenant acme
    --out "${requests}")
run("${CLIENT}" --spec "${SPEC}" --monitor "${TRACE}" --id 3 --tenant acme
    --out "${requests}")

run("${SERVER}" --in "${requests}" --out "${responses}" --workers 2 --health)

run("${CLIENT}" --summarize "${responses}")

# The batch must produce exactly one response per request.
file(STRINGS "${responses}" rsp_lines REGEX "^RSP ")
list(LENGTH rsp_lines n)
if(NOT n EQUAL 3)
  message(FATAL_ERROR "expected 3 responses, got ${n}")
endif()
