// spec_compiler — command-line front end: compile a .rts requirements
// specification into a graph-based model instance, synthesize a static
// schedule, and emit artifacts.
//
//   $ ./spec_compiler <file.rts> [--dot] [--schedule] [--processes]
//                     [--emit] [--exact] [--map N] [--mapper <name>]
//                     [--threads N] [--save <sched>] [--verify <sched>]
//                     [--emit-trace <trace.rtt>] [--monitor]
//   $ echo "element a" | ./spec_compiler -
//
// Exit status: 0 on success, 1 on spec or usage errors, 2 on synthesis
// failure, 3 on an internal error (reported as one line, never an
// unhandled exception).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault_injection.hpp"
#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/schedule_io.hpp"
#include "core/synthesis.hpp"
#include "graph/dot.hpp"
#include "map/deploy.hpp"
#include "map/fault_tolerance.hpp"
#include "monitor/streaming_monitor.hpp"
#include "monitor/trace_capture.hpp"
#include "monitor/trace_io.hpp"
#include "rt/analysis.hpp"
#include "rt/recovery.hpp"
#include "rt/scheduler.hpp"
#include "rt/task.hpp"
#include "sim/trace.hpp"
#include "gen/generator.hpp"
#include "spec/compile.hpp"
#include "spec/emit.hpp"

using namespace rtg;

namespace {

// Rotates a cyclic schedule left by `k` entries — the cheap way to get
// a distinct-but-often-feasible fallback candidate for --recovery.
core::StaticSchedule rotate_entries(const core::StaticSchedule& s, std::size_t k) {
  core::StaticSchedule r;
  const std::vector<core::ScheduleEntry>& es = s.entries();
  for (std::size_t i = 0; i < es.size(); ++i) {
    const core::ScheduleEntry& e = es[(i + k) % es.size()];
    if (e.elem == core::kIdleEntry) {
      r.push_idle(e.duration);
    } else {
      r.push_execution(e.elem, e.duration);
    }
  }
  return r;
}

// Re-targets a fault plan parsed against the source model onto the
// software-pipelined model the schedule runs on: a spec naming element
// `fs` fans out to every pipelined replica (`fs/0`, `fs/1`, ...).
// Constraint indices are stable across pipelining.
core::FaultPlan remap_plan(const core::FaultPlan& plan, const core::CommGraph& from,
                           const core::CommGraph& to) {
  core::FaultPlan out;
  out.seed = plan.seed;
  for (const core::FaultSpec& spec : plan.faults) {
    if (spec.element == core::kAnyElement) {
      out.faults.push_back(spec);
      continue;
    }
    const std::string& name = from.name(spec.element);
    for (core::ElementId e = 0; e < static_cast<core::ElementId>(to.size()); ++e) {
      const std::string& candidate = to.name(e);
      if (candidate == name || candidate.rfind(name + "/", 0) == 0) {
        core::FaultSpec copy = spec;
        copy.element = e;
        out.faults.push_back(copy);
      }
    }
  }
  return out;
}

// One-line diagnostic + non-zero exit for a bad invocation; the full
// usage text is reserved for bare `spec_compiler`.
int flag_error(const std::string& message) {
  std::fprintf(stderr, "spec_compiler: error: %s\n", message.c_str());
  return 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: spec_compiler <file.rts | - | --gen <opts>> [--dot] [--schedule] "
               "[--processes] [--emit] [--exact] [--analyze] [--map N]\n"
               "                     [--mapper <greedy|sa|spd|roundrobin|lpt|comm>]\n"
               "                     [--threads N] [--save <sched>] [--verify <sched>]\n"
               "                     [--stats] [--emit-trace <trace.rtt>] [--monitor]\n"
               "                     [--inject <plan.fp>] [--recovery] [--tolerate K]\n"
               "  --map N       mapped deployment on N processors (shared bus\n"
               "                unless the spec declares processor/bus/link\n"
               "                lines): mapper portfolio, per-processor\n"
               "                synthesis, link slot tables, sharded + seam\n"
               "                verification (--multiproc N is the deprecated\n"
               "                alias for --map N --mapper comm)\n"
               "  --mapper      portfolio member for --map (default greedy)\n"
               "  --gen         generate a seeded scenario instead of reading a\n"
               "                file; opts are comma-separated key=value pairs,\n"
               "                e.g. topology=layered,seed=17,util=0.4 or\n"
               "                domain=avionics,seed=3 (see docs/SCENARIOS.md)\n"
               "  --threads N   worker threads for verification and the exact\n"
               "                search (0 = hardware concurrency, 1 = serial)\n"
               "  --stats       with --verify or --map: print the engine\n"
               "                counters (queries, memo hits, seeks, bitset\n"
               "                skips, arena peak, threads; seam windows)\n"
               "  --emit-trace  capture the synthesized schedule's execution\n"
               "                trace to a binary .rtt file (replay with\n"
               "                trace_replay)\n"
               "  --monitor     run the online streaming monitor over the\n"
               "                synthesized trace and print its health report\n"
               "  --inject      run the synthesized schedule under a fault plan\n"
               "                (format: docs/FAULTS.md) and report survival;\n"
               "                with --map the plan must hold *platform* faults\n"
               "                (procfail/linkfail/linkdegrade) and the mapped\n"
               "                deployment is run healed vs blind\n"
               "  --recovery    rerun the faulted horizon under the self-healing\n"
               "                executive (retry / resync / verified failover)\n"
               "  --tolerate K  with --map: k-failure-tolerant deployment — a\n"
               "                proof-checked MigrationTable entry per failure\n"
               "                set of at most K processors\n");
  return 1;
}

}  // namespace

namespace {
int run(int argc, char** argv);
}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    // Synthesis and analysis can throw (lcm overflow, absurd weights,
    // I/O failures); a tool must turn that into a diagnostic, not a
    // terminate() after partial output.
    std::fprintf(stderr, "spec_compiler: error: %s\n", e.what());
    return 3;
  }
}

namespace {
int run(int argc, char** argv) {
  if (argc < 2) return usage();
  bool want_dot = false, want_schedule = false, want_processes = false;
  bool want_emit = false, want_exact = false, want_analyze = false;
  std::size_t map_procs = 0;
  std::size_t tolerate = 0;
  const char* mapper_name = "greedy";
  std::size_t n_threads = 0;  // 0 = hardware concurrency
  const char* path = nullptr;
  const char* save_path = nullptr;
  const char* verify_path = nullptr;
  const char* emit_trace_path = nullptr;
  const char* inject_path = nullptr;
  const char* gen_spec = nullptr;
  bool want_monitor = false;
  bool want_recovery = false;
  bool want_stats = false;
  // Value-taking flags must fail loudly when the value is missing; the
  // old `&& i + 1 < argc` guards silently demoted e.g. a bare `--save`
  // into the input path.
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "spec_compiler: error: %s requires a value\n", argv[i]);
      std::exit(1);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) {
      want_dot = true;
    } else if (std::strcmp(argv[i], "--schedule") == 0) {
      want_schedule = true;
    } else if (std::strcmp(argv[i], "--processes") == 0) {
      want_processes = true;
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      want_analyze = true;
    } else if (std::strcmp(argv[i], "--emit") == 0) {
      want_emit = true;
    } else if (std::strcmp(argv[i], "--exact") == 0) {
      want_exact = true;
    } else if (std::strcmp(argv[i], "--save") == 0) {
      save_path = need_value(i);
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify_path = need_value(i);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(argv[i], "--emit-trace") == 0) {
      emit_trace_path = need_value(i);
    } else if (std::strcmp(argv[i], "--monitor") == 0) {
      want_monitor = true;
    } else if (std::strcmp(argv[i], "--inject") == 0) {
      inject_path = need_value(i);
    } else if (std::strcmp(argv[i], "--recovery") == 0) {
      want_recovery = true;
    } else if (std::strcmp(argv[i], "--gen") == 0) {
      gen_spec = need_value(i);
    } else if (std::strcmp(argv[i], "--map") == 0) {
      map_procs = static_cast<std::size_t>(std::atoi(need_value(i)));
      if (map_procs == 0) {
        return flag_error("--map requires a positive processor count");
      }
    } else if (std::strcmp(argv[i], "--tolerate") == 0) {
      const int k = std::atoi(need_value(i));
      if (k <= 0) return flag_error("--tolerate requires a positive k");
      tolerate = static_cast<std::size_t>(k);
    } else if (std::strcmp(argv[i], "--mapper") == 0) {
      mapper_name = need_value(i);
      if (map::make_mapper(mapper_name) == nullptr) {
        return flag_error(std::string("unknown mapper '") + mapper_name +
                          "' (greedy, sa, spd, roundrobin, lpt, comm)");
      }
    } else if (std::strcmp(argv[i], "--multiproc") == 0) {
      // Deprecated alias from the pre-portfolio decomposition; the
      // communication-aware partition is now GreedyMapper's comm policy.
      map_procs = static_cast<std::size_t>(std::atoi(need_value(i)));
      if (map_procs == 0) {
        return flag_error("--multiproc requires a positive processor count");
      }
      mapper_name = "comm";
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const int n = std::atoi(need_value(i));
      if (n < 0) return flag_error("--threads requires a non-negative count");
      n_threads = static_cast<std::size_t>(n);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      return flag_error(std::string("unknown flag '") + argv[i] + "'");
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return flag_error(std::string("unexpected extra argument '") + argv[i] +
                        "' (input path already given)");
    }
  }
  if (gen_spec != nullptr && path != nullptr) {
    return flag_error("--gen replaces the input file; drop '" + std::string(path) +
                      "'");
  }
  if (path == nullptr && gen_spec == nullptr) {
    return flag_error("no input file (use '-' for stdin, or --gen)");
  }
  if (want_monitor && emit_trace_path == nullptr) {
    return flag_error("--monitor requires --emit-trace (the monitor replays the captured trace)");
  }
  if (want_stats && verify_path == nullptr && map_procs == 0) {
    return flag_error(
        "--stats requires --verify or --map (it reports the engine counters)");
  }
  if (tolerate > 0 && map_procs == 0) {
    return flag_error("--tolerate requires --map (it is a mapped-deployment knob)");
  }
  if (want_recovery && map_procs > 0) {
    return flag_error(
        "--recovery is the uniprocessor executive; use --inject with --map for "
        "platform faults");
  }
  // --inject with --map feeds the mapped fault run, not the
  // uniprocessor executive.
  if (save_path != nullptr || emit_trace_path != nullptr || want_monitor ||
      (inject_path != nullptr && map_procs == 0) || want_recovery) {
    want_schedule = true;
  }
  if (!want_dot && !want_processes && !want_emit && !want_exact && !want_analyze &&
      map_procs == 0 && verify_path == nullptr) {
    want_schedule = true;
  }

  std::string text;
  if (gen_spec != nullptr) {
    std::string error;
    const std::optional<gen::ScenarioOptions> options =
        gen::parse_scenario_spec(gen_spec, &error);
    if (!options) return flag_error("--gen: " + error);
    const gen::Scenario scenario = gen::generate(*options);
    std::fprintf(stderr, "generated: %s fingerprint %016llx (--gen %s)\n",
                 scenario.name.c_str(),
                 static_cast<unsigned long long>(scenario.fingerprint),
                 gen::scenario_spec_string(*options).c_str());
    text = scenario.spec;
    path = "<gen>";
  } else if (std::strcmp(path, "-") == 0) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "spec_compiler: cannot open '%s'\n", path);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  const spec::CompileResult compiled = spec::compile_text(text);
  if (!compiled.ok()) {
    for (const spec::CompileError& e : compiled.errors) {
      std::fprintf(stderr, "%s:%zu: error: %s\n", path, e.line, e.message.c_str());
    }
    return 1;
  }
  const core::GraphModel& model = *compiled.model;
  std::fprintf(stderr, "compiled: %zu elements, %zu constraints, sum w/d = %.3f\n",
               model.comm().size(), model.constraint_count(),
               model.deadline_utilization());

  if (want_dot) {
    std::printf("%s", graph::to_dot(model.comm().digraph(),
                                    {.graph_name = "spec"})
                          .c_str());
  }
  if (want_schedule) {
    core::HeuristicOptions heuristic_options;
    heuristic_options.n_threads = n_threads;
    const core::HeuristicResult synth = core::latency_schedule(model, heuristic_options);
    if (!synth.success) {
      std::fprintf(stderr, "synthesis failed: %s\n", synth.failure_reason.c_str());
      return 2;
    }
    std::printf("# static schedule, length %lld, utilization %.3f\n",
                static_cast<long long>(synth.schedule->length()),
                synth.schedule->utilization());
    std::printf("%s\n", synth.schedule->to_string(synth.scheduled_model.comm()).c_str());
    if (save_path != nullptr) {
      std::ofstream out(save_path);
      if (!out) {
        std::fprintf(stderr, "spec_compiler: cannot write '%s'\n", save_path);
        return 2;
      }
      out << "# schedule for " << path << " (element names follow the\n"
          << "# software-pipelined model; verify with --verify)\n"
          << core::schedule_to_text(*synth.schedule, synth.scheduled_model.comm())
          << "\n";
      std::fprintf(stderr, "saved schedule to %s\n", save_path);
    }
    for (const core::ConstraintVerdict& v : synth.report.verdicts) {
      const core::TimingConstraint& c = synth.scheduled_model.constraint(v.constraint);
      if (v.latency) {
        std::printf("# %s: latency %lld, deadline %lld\n", c.name.c_str(),
                    static_cast<long long>(*v.latency),
                    static_cast<long long>(c.deadline));
      } else {
        std::printf("# %s: periodic windows %s\n", c.name.c_str(),
                    v.satisfied ? "ok" : "MISSED");
      }
    }
    if (emit_trace_path != nullptr || want_monitor) {
      const core::GraphModel& sm = synth.scheduled_model;
      // Repeat the cyclic schedule until every constraint's verdict on
      // the finite trace is decided: lcm with the period for periodic
      // alignment, plus one deadline of lookahead.
      const core::Time length = synth.schedule->length();
      core::Time needed = length;
      for (const core::TimingConstraint& c : sm.constraints()) {
        const core::Time span =
            (c.periodic() ? rt::lcm_checked(length, c.period) : length) + c.deadline;
        needed = std::max(needed, span);
      }
      const auto reps = static_cast<std::size_t>((needed + length - 1) / length);
      const sim::ExecutionTrace trace = synth.schedule->to_trace(reps);

      monitor::RttWriter writer(monitor::model_fingerprint(sm));
      monitor::StreamingMonitor streaming(sm);
      std::vector<sim::TraceSink*> sinks;
      if (emit_trace_path != nullptr) sinks.push_back(&writer);
      if (want_monitor) sinks.push_back(&streaming);
      sim::FanOutSink fan(sinks);
      monitor::CaptureStats capture_stats;
      {
        // Ring sized to the whole trace: the capture path is exercised
        // end to end but lossless, so the .rtt file is exact.
        monitor::TraceCapture capture(fan, trace.size() + 1);
        capture.on_slots(trace.slots());
        capture.close();
        capture_stats = capture.stats();
      }
      std::fprintf(stderr,
                   "captured %llu slots (%zu schedule repetitions, %llu dropped)\n",
                   static_cast<unsigned long long>(capture_stats.produced), reps,
                   static_cast<unsigned long long>(capture_stats.dropped));
      if (emit_trace_path != nullptr) {
        std::ofstream out(emit_trace_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "spec_compiler: cannot write '%s'\n", emit_trace_path);
          return 2;
        }
        writer.finish(out);
        std::fprintf(stderr, "saved trace to %s\n", emit_trace_path);
      }
      if (want_monitor) {
        const monitor::MonitorReport mr = streaming.report();
        std::printf("# monitor: %lld slots, idle %.1f%%, %zu violation events\n",
                    static_cast<long long>(mr.horizon), 100.0 * mr.idle_ratio(),
                    mr.violations.size());
        for (std::size_t i = 0; i < mr.health.size(); ++i) {
          const monitor::ConstraintHealth& h = mr.health[i];
          std::printf("# %s: %zu windows, %zu violated, min slack %s, "
                      "peak buffered ops %zu, embedding queries %zu\n",
                      sm.constraint(i).name.c_str(), h.windows_checked,
                      h.windows_violated,
                      h.min_slack ? std::to_string(*h.min_slack).c_str() : "-",
                      h.peak_buffered_ops, h.embedding_queries);
        }
        if (!mr.ok()) {
          std::fprintf(stderr, "monitor found violations in a verified schedule\n");
          return 2;
        }
      }
    }
    if ((inject_path != nullptr && map_procs == 0) || want_recovery) {
      const core::GraphModel& sm = synth.scheduled_model;
      core::FaultPlan plan;  // empty = fault-free
      if (inject_path != nullptr) {
        std::ifstream in(inject_path);
        if (!in) {
          std::fprintf(stderr, "spec_compiler: cannot open '%s'\n", inject_path);
          return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        // Plans are written against the source model's names; fan each
        // spec out to the pipelined replicas the schedule dispatches.
        const core::FaultPlanParse fp = core::parse_fault_plan(buffer.str(), model);
        if (!fp.ok()) {
          for (const std::string& e : fp.errors) {
            std::fprintf(stderr, "%s: error: %s\n", inject_path, e.c_str());
          }
          return 1;
        }
        plan = remap_plan(*fp.plan, model.comm(), sm.comm());
      }
      // Horizon: enough repetitions to decide every constraint, tripled
      // so stochastic faults get statistical mass.
      const core::Time length = synth.schedule->length();
      core::Time needed = length;
      for (const core::TimingConstraint& c : sm.constraints()) {
        const core::Time span =
            (c.periodic() ? rt::lcm_checked(length, c.period) : length) + c.deadline;
        needed = std::max(needed, span);
      }
      const core::Time horizon = needed * 3;
      core::ConstraintArrivals arrivals(sm.constraint_count());
      for (std::size_t i = 0; i < sm.constraint_count(); ++i) {
        if (!sm.constraint(i).periodic()) {
          arrivals[i] = rt::max_rate_arrivals(sm.constraint(i).period, horizon);
        }
      }
      const core::FaultRunResult baseline = core::run_executive_with_faults(
          *synth.schedule, sm, arrivals, horizon, plan);
      std::printf("# inject: horizon %lld, %zu faulted ops "
                  "(%zu slot-lost, %zu down, %zu dropped, %zu corrupt, "
                  "drift %lld), blind executive %zu/%zu satisfied\n",
                  static_cast<long long>(horizon), baseline.counters.faulted_ops(),
                  baseline.counters.slot_lost, baseline.counters.element_down,
                  baseline.counters.dropped, baseline.counters.corrupted,
                  static_cast<long long>(baseline.counters.drift_slots),
                  baseline.satisfied_count(), baseline.executive.invocations.size());
      if (want_recovery) {
        // Fallback candidates: entry rotations of the synthesized
        // schedule; the first one accepted by the table builder (i.e.
        // verified feasible with an admissible seam check) joins the
        // fleet. With none, the table holds the primary alone and
        // recovery is retry + resync only.
        rt::FailoverOptions fo;
        fo.max_offsets = std::size_t{1} << 22;  // long synthesized schedules
        fo.n_threads = n_threads;
        rt::FailoverTable table;
        bool with_fallback = false;
        const std::size_t n_entries = synth.schedule->entries().size();
        for (std::size_t k = 1; k < std::min<std::size_t>(n_entries, 8) && !with_fallback;
             ++k) {
          try {
            table = rt::compute_failover_table(
                sm, {*synth.schedule, rotate_entries(*synth.schedule, k)}, fo);
            with_fallback = table.admissible_count(0, 1) > 0;
          } catch (const std::invalid_argument&) {
            with_fallback = false;  // infeasible rotation: keep looking
          }
        }
        if (!with_fallback) {
          table = rt::compute_failover_table(sm, {*synth.schedule}, fo);
        }
        rt::SelfHealingConfig config;
        config.faults = plan;
        config.recovery.n_threads = n_threads;
        const rt::SelfHealingResult healed =
            rt::run_self_healing(sm, table, arrivals, horizon, config);
        std::size_t healed_ok = 0;
        for (const core::InvocationRecord& r : healed.executive.invocations) {
          healed_ok += r.satisfied ? 1 : 0;
        }
        std::printf("# recovery: %zu fallback schedules, self-healing %zu/%zu "
                    "satisfied, %zu retries ok, %zu abandoned, %zu failovers "
                    "(%zu blocked), final schedule %zu\n",
                    table.size(), healed_ok, healed.executive.invocations.size(),
                    healed.retries_succeeded, healed.retries_abandoned,
                    healed.failovers(), healed.blocked_switches,
                    healed.final_schedule);
        std::printf("# recovery: detection-to-recovery mean %.2f max %lld, "
                    "monitor %s offline verdicts\n",
                    healed.mean_detection_to_recovery,
                    static_cast<long long>(healed.max_detection_to_recovery),
                    healed.monitor.ok() == healed.executive.all_met
                        ? "agrees with"
                        : "DISAGREES with");
        for (const rt::RecoveryBound& b : rt::recovery_bounds(*synth.schedule, sm)) {
          std::printf("# recovery bound %s: %s\n",
                      sm.constraint(b.constraint).name.c_str(),
                      b.recoverable ? "single-fault recoverable"
                                    : "not provably recoverable");
        }
      }
    }
  }
  if (want_analyze) {
    std::printf("%s", core::render_analysis(core::analyze_model(model), model).c_str());
  }
  if (want_emit) {
    std::printf("%s", spec::emit(model).c_str());
  }
  if (want_exact) {
    core::ExactOptions options;
    options.state_budget = 500'000;
    options.n_threads = n_threads;
    const core::ExactResult r = core::exact_feasible(model, options);
    switch (r.status) {
      case core::FeasibilityStatus::kFeasible:
        std::printf("# exact: FEASIBLE (%zu states)\n", r.states_explored);
        std::printf("%s\n", r.schedule->to_string(model.comm()).c_str());
        break;
      case core::FeasibilityStatus::kInfeasible:
        std::printf("# exact: INFEASIBLE (%zu states)\n", r.states_explored);
        break;
      case core::FeasibilityStatus::kUnknown:
        std::printf("# exact: UNKNOWN — state budget exhausted (%zu states)\n",
                    r.states_explored);
        break;
    }
  }
  if (map_procs > 0) {
    // A spec-declared platform wins over the default shared bus.
    map::Platform platform;
    if (compiled.platform.has_value()) {
      platform = *compiled.platform;
      if (platform.processors() != map_procs) {
        std::fprintf(stderr,
                     "note: spec declares %zu processors; --map %zu ignored\n",
                     platform.processors(), map_procs);
      }
    } else {
      platform = map::Platform::bus(map_procs);
    }
    map::DeployOptions deploy_options;
    deploy_options.mapper = mapper_name;
    deploy_options.local.n_threads = n_threads;
    deploy_options.seam_threads = n_threads;

    // A fault plan against a mapped deployment must be a *platform*
    // plan; element-level fault kinds belong to the uniprocessor
    // executives (--inject without --map).
    core::FaultPlan platform_plan;
    if (inject_path != nullptr) {
      std::ifstream in(inject_path);
      if (!in) {
        std::fprintf(stderr, "spec_compiler: cannot open '%s'\n", inject_path);
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const core::FaultPlanParse fp = core::parse_fault_plan(
          buffer.str(), model, map::platform_names(platform));
      if (!fp.ok()) {
        for (const std::string& e : fp.errors) {
          std::fprintf(stderr, "%s: error: %s\n", inject_path, e.c_str());
        }
        return 1;
      }
      for (const core::FaultSpec& f : fp.plan->faults) {
        if (!core::is_platform_fault(f.kind)) {
          return flag_error(std::string("--inject with --map: '") +
                            std::string(core::fault_kind_name(f.kind)) +
                            "' is an element-level fault; mapped runs take "
                            "platform faults only (procfail, linkfail, "
                            "linkdegrade) — drop --map or the directive");
        }
      }
      platform_plan = *fp.plan;
    }

    map::TolerantDeployment td;
    map::Deployment deployment;
    const bool tolerant_path = tolerate > 0 || inject_path != nullptr;
    if (tolerant_path) {
      map::TolerantOptions topts;
      topts.k = tolerate > 0 ? tolerate : 1;
      topts.deploy = deploy_options;
      td = map::deploy_tolerant(model, platform, topts);
      if (!td.success) {
        std::fprintf(stderr, "mapped synthesis failed: %s\n",
                     td.failure_reason.c_str());
        return 2;
      }
      std::printf("# tolerant deployment k=%zu: %zu of %zu failure scenarios "
                  "covered by proof-checked migrations\n",
                  td.k, td.table.size(), td.scenarios);
      for (const map::UncoveredScenario& u : td.uncovered) {
        std::string names;
        for (map::ProcId p : u.failed) {
          if (!names.empty()) names += ",";
          names += platform.processor_names[p];
        }
        std::printf("# uncovered {%s}: %s\n", names.c_str(), u.reason.c_str());
      }
      if (tolerate > 0 && !td.tolerant) {
        std::fprintf(stderr,
                     "spec_compiler: deployment is not %zu-failure tolerant "
                     "(%zu uncovered scenarios)\n",
                     td.k, td.uncovered.size());
        return 2;
      }
      deployment = td.base;
    } else {
      deployment = map::deploy(model, platform, deploy_options);
      if (!deployment.success) {
        std::fprintf(stderr, "mapped synthesis failed: %s\n",
                     deployment.failure_reason.c_str());
        return 2;
      }
    }
    const map::Deployment& d = deployment;
    std::printf("# mapped deployment on %zu processors (mapper %s): "
                "%zu messages, %llu link slots, load imbalance %.2f\n",
                platform.processors(), d.mapping.mapper.c_str(),
                d.messages.size(),
                static_cast<unsigned long long>(d.comm.total_slots()),
                map::load_imbalance(d.mapping.loads(d.scheduled_model.comm(),
                                                    platform.processors())));
    for (std::size_t p = 0; p < d.processor_schedules.size(); ++p) {
      std::printf("P%zu (%s): %s\n", p, platform.processor_names[p].c_str(),
                  d.processor_schedules[p].to_string(d.scheduled_model.comm()).c_str());
    }
    for (std::size_t i = 0; i < d.comm.messages.size(); ++i) {
      const map::Message& m = d.comm.messages[i];
      const auto [link_idx, slot_idx] = d.comm.slot_of[i];
      const map::SlotAssignment& slot = d.comm.links[link_idx].slots[slot_idx];
      std::printf("# message %s -> %s via %s (offset %lld, %lld slots)\n",
                  d.scheduled_model.comm().name(m.from).c_str(),
                  d.scheduled_model.comm().name(m.to).c_str(),
                  platform.links[m.link].name.c_str(),
                  static_cast<long long>(slot.offset),
                  static_cast<long long>(slot.duration));
    }
    for (std::size_t i = 0; i < d.end_to_end.size(); ++i) {
      std::printf("# %s: end-to-end latency %lld / deadline %lld\n",
                  d.scheduled_model.constraint(i).name.c_str(),
                  static_cast<long long>(*d.end_to_end[i]),
                  static_cast<long long>(d.scheduled_model.constraint(i).deadline));
    }
    if (want_stats) {
      std::printf("# stats: seam_windows=%llu seam_seeks=%llu threads=%llu "
                  "witnesses=%zu\n",
                  static_cast<unsigned long long>(d.seam_stats.windows),
                  static_cast<unsigned long long>(d.seam_stats.index_seeks),
                  static_cast<unsigned long long>(d.seam_stats.threads_used),
                  d.witnesses.size());
    }
    if (inject_path != nullptr) {
      // Horizon: three constraint spans, stretched to cover every
      // injected fault window plus its repair.
      core::Time needed = 1;
      for (const core::TimingConstraint& c : d.scheduled_model.constraints()) {
        needed = std::max(needed, c.period + c.deadline);
      }
      core::Time horizon = needed * 3;
      for (const core::FaultSpec& f : platform_plan.faults) {
        if (f.end != core::kOpenEnd) horizon = std::max(horizon, f.end + f.magnitude);
        horizon = std::max(horizon, f.begin + 2 * std::max<core::Time>(f.magnitude, 1));
      }
      map::FaultRunOptions run_options;
      run_options.seam_threads = n_threads;
      const map::PlatformFaultRun healed =
          map::run_deployment_with_faults(td, platform_plan, horizon, run_options);
      run_options.heal = false;
      const map::PlatformFaultRun blind =
          map::run_deployment_with_faults(td, platform_plan, horizon, run_options);
      std::printf("# platform inject: horizon %lld, %zu epochs, healed %zu/%zu "
                  "windows (%zu migrations, %zu reroutes, %zu reverts, "
                  "%zu outages, %zu proofs, %zu proof failures)\n",
                  static_cast<long long>(horizon), healed.epochs.size(),
                  healed.windows_ok, healed.windows_total, healed.migrations,
                  healed.reroutes, healed.reverts, healed.outages,
                  healed.proof_checks, healed.proof_failures);
      std::printf("# platform inject: blind %zu/%zu windows; healed "
                  "fingerprint %016llx\n",
                  blind.windows_ok, blind.windows_total,
                  static_cast<unsigned long long>(healed.fingerprint()));
      for (const map::EpochRecord& e : healed.epochs) {
        std::printf("# epoch [%lld, %lld): %s\n",
                    static_cast<long long>(e.begin), static_cast<long long>(e.end),
                    e.detail.c_str());
      }
    }
  }
  if (verify_path != nullptr) {
    std::ifstream in(verify_path);
    if (!in) {
      std::fprintf(stderr, "spec_compiler: cannot open '%s'\n", verify_path);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    // Schedules are expressed against the pipelined model.
    const core::GraphModel pipelined = core::pipeline_model(model).model;
    const auto parsed = core::schedule_from_text(buffer.str(), pipelined.comm());
    if (!parsed.ok()) {
      for (const auto& e : parsed.errors) {
        std::fprintf(stderr, "%s:%zu: error: %s\n", verify_path, e.line,
                     e.message.c_str());
      }
      return 2;
    }
    core::VerifyStats stats;
    core::VerifyOptions verify_options;
    verify_options.n_threads = n_threads;
    if (want_stats) verify_options.stats = &stats;
    const core::FeasibilityReport report =
        core::verify_schedule(*parsed.schedule, pipelined, verify_options);
    for (const core::ConstraintVerdict& v : report.verdicts) {
      const core::TimingConstraint& c = pipelined.constraint(v.constraint);
      if (v.latency) {
        std::printf("# %s: latency %lld / deadline %lld -> %s\n", c.name.c_str(),
                    static_cast<long long>(*v.latency),
                    static_cast<long long>(c.deadline), v.satisfied ? "ok" : "MISS");
      } else {
        std::printf("# %s: periodic windows -> %s\n", c.name.c_str(),
                    v.satisfied ? "ok" : "MISS");
      }
    }
    if (want_stats) {
      std::printf(
          "# stats: work_units=%llu queries=%llu memo_hits=%llu seeks=%llu\n"
          "# stats: bitset_skips=%llu arena_reuses=%llu arena_bytes_peak=%llu "
          "threads=%llu\n",
          static_cast<unsigned long long>(stats.work_units),
          static_cast<unsigned long long>(stats.embedding_queries),
          static_cast<unsigned long long>(stats.memo_hits),
          static_cast<unsigned long long>(stats.index_seeks),
          static_cast<unsigned long long>(stats.bitset_skips),
          static_cast<unsigned long long>(stats.arena_reuses),
          static_cast<unsigned long long>(stats.arena_bytes_peak),
          static_cast<unsigned long long>(stats.threads_used));
    }
    std::printf("# verdict: %s\n", report.feasible ? "FEASIBLE" : "INFEASIBLE");
    if (!report.feasible) return 2;
  }
  if (want_processes) {
    const core::ProcessSynthesis procs = core::synthesize_processes(model, true);
    std::printf("# process-based synthesis: %zu processes, %zu monitors\n",
                procs.processes.size(), procs.monitors.size());
    for (const core::SynthesizedProcess& p : procs.processes) {
      std::printf("process %s (%s, p=%lld, d=%lld, c=%lld):", p.name.c_str(),
                  p.kind == core::ConstraintKind::kPeriodic ? "periodic" : "sporadic",
                  static_cast<long long>(p.period),
                  static_cast<long long>(p.deadline),
                  static_cast<long long>(p.computation));
      for (core::ElementId e : p.body) {
        std::printf(" %s", procs.model.comm().name(e).c_str());
      }
      std::printf("\n");
    }
    std::printf("# EDF schedulable: %s\n",
                rt::edf_schedulable(procs.task_set) ? "yes" : "no");
  }
  return 0;
}
}  // namespace
