# Platform fault plan for control_system.rts mapped on three
# processors (format: docs/FAULTS.md, "Platform faults").
# Exercise with:
#   spec_compiler control_system.rts --map 3 --inject platform_faults.fp
seed 7
procfail p1 at 40 repair 30
linkdegrade bus factor 2 from 90 to 120
