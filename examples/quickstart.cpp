// quickstart — the paper's Figure 1 / Figure 2 control system, end to
// end: build the model, synthesize a feasible static schedule with
// latency scheduling, and drive the run-time executive against sporadic
// toggle-switch events — while an online monitor watches the realized
// timeline through a lock-free capture ring.
//
//   $ ./quickstart
#include <cstdio>

#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "core/runtime.hpp"
#include "core/viz.hpp"
#include "graph/dot.hpp"
#include "monitor/streaming_monitor.hpp"
#include "monitor/trace_capture.hpp"
#include "rt/scheduler.hpp"
#include "sim/rng.hpp"

using namespace rtg;

int main() {
  // --- Step 1: the model instance (Figure 2). -----------------------
  core::ControlSystemParams params;
  params.cx = 1;
  params.cy = 1;
  params.cz = 1;
  params.cs = 2;
  params.ck = 1;
  params.px = params.dx = 20;  // fast sensor x
  params.py = params.dy = 40;  // slow sensor y
  params.pz = 50;              // toggle switch z: rare, but
  params.dz = 25;              // must react within 25 slots
  const core::GraphModel model = core::make_control_system(params);

  std::printf("== Communication graph G (Figure 1) ==\n");
  std::printf("%s\n", graph::to_dot(model.comm().digraph(),
                                    {.graph_name = "control_system"})
                          .c_str());
  std::printf("Timing constraints T (Figure 2):\n");
  for (const core::TimingConstraint& c : model.constraints()) {
    std::printf("  %-2s %-12s p=%-3lld d=%-3lld ops=%zu  (w=%lld)\n", c.name.c_str(),
                c.periodic() ? "periodic" : "asynchronous",
                static_cast<long long>(c.period), static_cast<long long>(c.deadline),
                c.task_graph.size(),
                static_cast<long long>(c.task_graph.computation_time(model.comm())));
  }
  std::printf("Deadline utilization sum w/d = %.3f\n\n", model.deadline_utilization());

  // --- Step 2: synthesis (latency scheduling, Theorem 3 machinery). --
  const core::HeuristicResult synth = core::latency_schedule(model);
  if (!synth.success) {
    std::printf("synthesis failed: %s\n", synth.failure_reason.c_str());
    return 1;
  }
  std::printf("== Static schedule (length %lld, utilization %.2f) ==\n",
              static_cast<long long>(synth.schedule->length()),
              synth.schedule->utilization());
  const std::string rendered = synth.schedule->to_string(synth.scheduled_model.comm());
  std::printf("%.200s%s\n\n", rendered.c_str(),
              rendered.size() > 200 ? " ..." : "");

  // Gantt view of the first 64 slots (one row per functional element).
  {
    core::StaticSchedule head;
    sim::Time taken = 0;
    for (const core::ScheduleEntry& entry : synth.schedule->entries()) {
      if (taken + entry.duration > 64) break;
      if (entry.elem == core::kIdleEntry) {
        head.push_idle(entry.duration);
      } else {
        head.push_execution(entry.elem, entry.duration);
      }
      taken += entry.duration;
    }
    if (head.length() > 0) {
      std::printf("%s\n",
                  core::schedule_gantt(head, synth.scheduled_model.comm()).c_str());
    }
  }

  std::printf("Verified against the model:\n");
  for (const core::ConstraintVerdict& v : synth.report.verdicts) {
    const core::TimingConstraint& c = synth.scheduled_model.constraint(v.constraint);
    if (v.latency) {
      std::printf("  %-2s latency %lld <= deadline %lld : %s\n", c.name.c_str(),
                  static_cast<long long>(*v.latency),
                  static_cast<long long>(c.deadline), v.satisfied ? "OK" : "MISS");
    } else {
      std::printf("  %-2s periodic windows : %s\n", c.name.c_str(),
                  v.satisfied ? "OK" : "MISS");
    }
  }

  // --- Step 3: the run-time executive, observed live. ---------------
  // The executive writes its realized timeline into a lock-free SPSC
  // ring; a drain thread feeds the online monitor, which re-checks
  // every timing window of the model as it closes. The ring is sized
  // past the horizon so the demo capture is lossless.
  sim::Rng rng(2026);
  core::ConstraintArrivals arrivals(model.constraint_count());
  arrivals[2] = rt::random_arrivals(params.pz, 5000, 40.0, rng);  // Z events
  monitor::StreamingMonitor live_monitor(synth.scheduled_model);
  core::ExecutiveResult run;
  monitor::CaptureStats capture_stats;
  {
    monitor::TraceCapture capture(live_monitor, 8192);
    run = core::run_executive(*synth.schedule, synth.scheduled_model, arrivals, 5200,
                              &capture);
    capture.close();
    capture_stats = capture.stats();
  }

  std::size_t z_count = 0;
  sim::Time worst_z = 0;
  for (const core::InvocationRecord& rec : run.invocations) {
    if (rec.constraint == 2) {
      ++z_count;
      if (rec.completed) worst_z = std::max(worst_z, *rec.response_time());
    }
  }
  std::printf("\n== Executive run (5200 slots) ==\n");
  std::printf("invocations served: %zu (all met: %s)\n", run.invocations.size(),
              run.all_met ? "yes" : "NO");
  std::printf("toggle events z: %zu, worst response %lld (deadline %lld)\n", z_count,
              static_cast<long long>(worst_z), static_cast<long long>(params.dz));
  std::printf("dispatcher decisions: %zu (one table lookup each)\n", run.dispatches);

  const monitor::MonitorReport live = live_monitor.report();
  std::size_t windows_checked = 0;
  for (const monitor::ConstraintHealth& h : live.health) {
    windows_checked += h.windows_checked;
  }
  std::printf("\n== Online monitor (lock-free capture -> streaming check) ==\n");
  std::printf("captured %llu slots (%llu dropped), idle %.1f%%\n",
              static_cast<unsigned long long>(capture_stats.produced),
              static_cast<unsigned long long>(capture_stats.dropped),
              100.0 * live.idle_ratio());
  std::printf("timing windows checked online: %zu, violated: %zu -> %s\n",
              windows_checked, live.violations.size(),
              live.ok() ? "CLEAN" : "VIOLATED");
  return run.all_met && live.ok() ? 0 : 1;
}
