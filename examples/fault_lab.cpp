// fault_lab — the robustness stack end to end: a fault plan written in
// the textual format of docs/FAULTS.md is injected into a two-element
// control loop, first under the blind table-driven executive (the
// no-recovery baseline), then under the self-healing executive with
// retry, resync, and verified hot failover enabled.
//
// The run prints the per-constraint recovery bounds (which constraints
// a single fault can never kill, given enough idle slack), the
// precomputed failover admissibility table, and a side-by-side of
// baseline vs self-healing invocation survival. Exit status 0 iff the
// self-healing run dominates the baseline and the online monitor agrees
// with the offline verdicts — so this example doubles as a smoke test.
#include <cstdio>
#include <string>

#include "core/fault_injection.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "rt/recovery.hpp"
#include "rt/scheduler.hpp"

using namespace rtg;
using core::Time;

namespace {

// Sense -> control loop: a periodic end-to-end chain plus a sporadic
// command stream on the sensor.
core::GraphModel loop_model() {
  core::CommGraph comm;
  const auto sense = comm.add_element("sense", 1);
  const auto ctrl = comm.add_element("ctrl", 1);
  comm.add_channel(sense, ctrl);
  core::GraphModel model(std::move(comm));
  core::TaskGraph chain;
  const auto op_s = chain.add_op(sense);
  const auto op_c = chain.add_op(ctrl);
  chain.add_dep(op_s, op_c);
  model.add_constraint(core::TimingConstraint{
      "LOOP", std::move(chain), 8, 8, core::ConstraintKind::kPeriodic});
  // CMD's deadline is twice its separation: the slack that makes it
  // provably single-fault recoverable (see the bounds printed below).
  core::TaskGraph cmd;
  cmd.add_op(sense);
  model.add_constraint(core::TimingConstraint{
      "CMD", std::move(cmd), 6, 12, core::ConstraintKind::kAsynchronous});
  return model;
}

core::StaticSchedule primary() {
  core::StaticSchedule s;  // sense ctrl . sense . . . .
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  s.push_idle(1);
  s.push_execution(0, 1);
  s.push_idle(4);
  return s;
}

core::StaticSchedule fallback() {
  core::StaticSchedule s;  // sense ctrl . . sense . . .
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  s.push_idle(2);
  s.push_execution(0, 1);
  s.push_idle(3);
  return s;
}

}  // namespace

int main() {
  const core::GraphModel model = loop_model();
  const Time horizon = 800;
  core::ConstraintArrivals arrivals(2);
  arrivals[1] = rt::max_rate_arrivals(6, horizon);

  // The fault plan, in the textual format (docs/FAULTS.md): a dispatch
  // blackout at startup, clock drift through the middle of the run, and
  // a corrupting sensor toward the end.
  const std::string plan_text =
      "seed 7\n"
      "drop sense rate 1.0 from 0 to 9\n"
      "drift every 64 from 100 to 400\n"
      "corrupt sense rate 0.15 from 400 to 700\n";
  const core::FaultPlanParse parsed = core::parse_fault_plan(plan_text, model);
  if (!parsed.ok()) {
    for (const std::string& e : parsed.errors) std::fprintf(stderr, "%s\n", e.c_str());
    return 1;
  }

  // 1. Which constraints can a single fault never kill? L + W + d <= d.
  std::printf("recovery bounds (primary schedule):\n");
  const auto bounds = rt::recovery_bounds(primary(), model);
  for (const rt::RecoveryBound& b : bounds) {
    std::printf("  %-5s latency %lld + redispatch %lld + detection %lld "
                "vs deadline %lld -> %s\n",
                model.constraint(b.constraint).name.c_str(),
                b.latency ? static_cast<long long>(*b.latency) : -1,
                b.redispatch ? static_cast<long long>(*b.redispatch) : -1,
                static_cast<long long>(b.detection),
                static_cast<long long>(model.constraint(b.constraint).deadline),
                b.recoverable ? "recoverable" : "NOT recoverable");
  }

  // 2. The failover admissibility table: both schedules verified
  //    feasible, every (phase, grid) seam checked via Mok's latency
  //    semantics.
  const rt::FailoverTable table =
      rt::compute_failover_table(model, {primary(), fallback()});
  std::printf("failover table: grid %lld, %zu/%zu admissible cells 0->1, "
              "%zu/%zu cells 1->0\n",
              static_cast<long long>(table.grid), table.admissible_count(0, 1),
              static_cast<std::size_t>(table.schedules[0].length() * table.grid),
              table.admissible_count(1, 0),
              static_cast<std::size_t>(table.schedules[1].length() * table.grid));

  // 3. Baseline: the blind executive under the same plan.
  const core::FaultRunResult baseline = core::run_executive_with_faults(
      primary(), model, arrivals, horizon, *parsed.plan);

  // 4. The self-healing executive.
  rt::SelfHealingConfig config;
  config.faults = *parsed.plan;
  const rt::SelfHealingResult healed =
      rt::run_self_healing(model, table, arrivals, horizon, config);

  std::size_t healed_ok = 0;
  for (const core::InvocationRecord& r : healed.executive.invocations) {
    healed_ok += r.satisfied ? 1 : 0;
  }
  std::printf("faults injected: %zu (drift %lld slots)\n",
              healed.counters.faulted_ops(),
              static_cast<long long>(healed.counters.drift_slots));
  std::printf("baseline:     %zu/%zu invocations satisfied\n",
              baseline.satisfied_count(), baseline.executive.invocations.size());
  std::printf("self-healing: %zu/%zu invocations satisfied "
              "(%zu retries, %zu resyncs, %zu failovers, final schedule %zu)\n",
              healed_ok, healed.executive.invocations.size(),
              healed.retries_succeeded,
              [&] {
                std::size_t n = 0;
                for (const rt::RecoveryAction& a : healed.actions) {
                  n += a.kind == rt::RecoveryActionKind::kResync ? 1 : 0;
                }
                return n;
              }(),
              healed.failovers(), healed.final_schedule);
  std::printf("detection-to-recovery: mean %.2f, max %lld slots\n",
              healed.mean_detection_to_recovery,
              static_cast<long long>(healed.max_detection_to_recovery));
  std::printf("online monitor: %zu violation events, %s offline verdicts\n",
              healed.monitor.violations.size(),
              healed.monitor.ok() == healed.executive.all_met ? "agrees with"
                                                                : "DISAGREES with");

  // Smoke-test assertions: healing must dominate the blind baseline and
  // the online monitor must agree with the offline re-verification.
  if (healed_ok < baseline.satisfied_count()) return 1;
  if (healed.monitor.ok() != healed.executive.all_met) return 1;
  return 0;
}
