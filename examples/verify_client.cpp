// verify_client — composes request frames for verify_server and
// summarizes its response streams.
//
//   # append a verification request to a batch file
//   verify_client --spec control_system.rts --verify sched.txt \
//                 --id 1 --tenant acme --deadline-ms 2000 --out requests.txt
//
//   # append a synthesis request (exact engine)
//   verify_client --spec control_system.rts --synth --exact --id 2 \
//                 --out requests.txt
//
//   # ship a captured .rtt trace to the tenant's streaming monitor
//   verify_client --spec control_system.rts --monitor capture.rtt --id 3 \
//                 --out requests.txt
//
//   # read back a response stream
//   verify_client --summarize responses.txt
//
// Exit codes: 0 success, 1 bad usage / unreadable file, 2 malformed
// response stream, 3 summarized stream contains failed/invalid jobs.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "svc/protocol.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "verify_client: error: " << message << '\n'
            << "usage: verify_client --spec FILE (--verify SCHED | --synth [--exact]"
            << " | --monitor RTT)\n"
            << "         [--id N] [--tenant NAME] [--deadline-ms N] [--out FILE|-]\n"
            << "       verify_client --summarize RSPFILE|-\n";
  std::exit(1);
}

std::string need_value(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) usage_error(flag + " requires a value");
  return argv[++i];
}

std::string read_file(const std::string& path, bool binary) {
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) usage_error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int summarize(const std::string& path) {
  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) usage_error("cannot open '" + path + "'");
  }
  std::istream& in = path == "-" ? std::cin : file;
  std::size_t bad = 0;
  try {
    while (auto rsp = rtg::svc::read_response(in)) {
      std::cout << "job " << rsp->id << ": " << rtg::svc::job_status_name(rsp->status)
                << " verdict=" << (rsp->verdict ? "yes" : "no")
                << (rsp->cached ? " (cached)" : "")
                << (rsp->degraded ? " (degraded)" : "");
      if (rsp->status == rtg::svc::JobStatus::kRejected) {
        std::cout << " retry_after_ms=" << rsp->retry_after_ms;
      }
      std::cout << " queue_ms=" << rsp->queue_ms << " run_ms=" << rsp->run_ms << '\n';
      if (rsp->status == rtg::svc::JobStatus::kFailed ||
          rsp->status == rtg::svc::JobStatus::kInvalid) {
        ++bad;
      }
    }
  } catch (const rtg::svc::ProtocolError& e) {
    std::cerr << "verify_client: " << e.what() << '\n';
    return 2;
  }
  return bad == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  rtg::svc::JobRequest req;
  std::string spec_path;
  std::string sched_path;
  std::string trace_path;
  std::string out_path = "-";
  std::string summarize_path;
  bool synth = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec") {
      spec_path = need_value(argc, argv, i, arg);
    } else if (arg == "--verify") {
      sched_path = need_value(argc, argv, i, arg);
    } else if (arg == "--synth") {
      synth = true;
    } else if (arg == "--exact") {
      req.exact = true;
    } else if (arg == "--monitor") {
      trace_path = need_value(argc, argv, i, arg);
    } else if (arg == "--id") {
      try {
        req.id = std::stoull(need_value(argc, argv, i, arg));
      } catch (const std::exception&) {
        usage_error("--id: not a number");
      }
    } else if (arg == "--tenant") {
      req.tenant = need_value(argc, argv, i, arg);
    } else if (arg == "--deadline-ms") {
      try {
        req.deadline_ms = std::stoull(need_value(argc, argv, i, arg));
      } catch (const std::exception&) {
        usage_error("--deadline-ms: not a number");
      }
    } else if (arg == "--out") {
      out_path = need_value(argc, argv, i, arg);
    } else if (arg == "--summarize") {
      summarize_path = need_value(argc, argv, i, arg);
    } else {
      usage_error("unknown flag '" + arg + "'");
    }
  }

  if (!summarize_path.empty()) return summarize(summarize_path);

  if (spec_path.empty()) usage_error("--spec is required");
  const int modes = (!sched_path.empty() ? 1 : 0) + (synth ? 1 : 0) +
                    (!trace_path.empty() ? 1 : 0);
  if (modes != 1) {
    usage_error("exactly one of --verify, --synth, --monitor is required");
  }

  req.spec = read_file(spec_path, /*binary=*/false);
  if (!sched_path.empty()) {
    req.kind = rtg::svc::JobKind::kVerify;
    req.schedule = read_file(sched_path, /*binary=*/false);
  } else if (synth) {
    req.kind = rtg::svc::JobKind::kSynthesize;
  } else {
    req.kind = rtg::svc::JobKind::kMonitor;
    req.trace = read_file(trace_path, /*binary=*/true);
  }

  std::ofstream out_file;
  if (out_path != "-") {
    out_file.open(out_path, std::ios::app);
    if (!out_file) usage_error("cannot open '" + out_path + "'");
  }
  std::ostream& out = out_path == "-" ? std::cout : out_file;
  rtg::svc::write_request(out, req);
  return 0;
}
