// E5 — process-based synthesis duplicates shared work.
//
// The paper: "this approach is inefficient since it does not take
// advantage of operations that are common to two or more timing
// constraints. For example, if p_x is equal to p_y [...] there is no
// reason why f_S should be executed twice per period."
//
// For families of k periodic constraints that all share a heavy common
// suffix (the f_S/f_K pattern), this harness reports busy slots per
// slot under (a) process-based synthesis and (b) coalesced latency
// scheduling, plus the schedulability verdicts of each path, as the
// sharing degree and rate grow.
#include <cstdio>

#include "core/heuristic.hpp"
#include "core/synthesis.hpp"
#include "rt/analysis.hpp"

using namespace rtg;
using sim::Time;

namespace {

// k front-end sensors feeding a shared control suffix (weight ws) at a
// common period p.
core::GraphModel shared_suffix_model(std::size_t k, Time shared_weight, Time p) {
  core::CommGraph comm;
  std::vector<core::ElementId> sensors;
  for (std::size_t i = 0; i < k; ++i) {
    sensors.push_back(comm.add_element("in" + std::to_string(i), 1));
  }
  const auto fs = comm.add_element("fs", shared_weight);
  const auto fk = comm.add_element("fk", 1);
  for (auto s : sensors) comm.add_channel(s, fs);
  comm.add_channel(fs, fk);

  core::GraphModel model(std::move(comm));
  for (std::size_t i = 0; i < k; ++i) {
    core::TaskGraph tg;
    const auto a = tg.add_op(sensors[i]);
    const auto b = tg.add_op(fs);
    const auto c = tg.add_op(fk);
    tg.add_dep(a, b);
    tg.add_dep(b, c);
    model.add_constraint(core::TimingConstraint{
        "C" + std::to_string(i), std::move(tg), p, p, core::ConstraintKind::kPeriodic});
  }
  return model;
}

}  // namespace

int main() {
  std::printf("E5: shared work — process model vs coalesced latency scheduling\n\n");
  std::printf("%-4s %-4s %-4s %-14s %-14s %-12s %-12s\n", "k", "ws", "p",
              "process_busy", "graph_busy", "process_EDF", "graph_ok");

  for (std::size_t k : {2, 3, 4, 6}) {
    for (Time shared_weight : {2, 4}) {
      const Time p = 24;  // fixed rate: duplicated work accumulates with k
      const core::GraphModel model = shared_suffix_model(k, shared_weight, p);

      const core::ProcessSynthesis procs = core::synthesize_processes(model);
      const double process_busy =
          static_cast<double>(procs.work_per_hyperperiod) /
          static_cast<double>(procs.hyperperiod);
      const bool process_ok = rt::edf_schedulable(procs.task_set);

      core::HeuristicOptions opts;
      opts.coalesce = true;
      const core::HeuristicResult graph = core::latency_schedule(model, opts);

      std::printf("%-4zu %-4lld %-4lld %-14.3f %-14.3f %-12s %-12s\n", k,
                  static_cast<long long>(shared_weight), static_cast<long long>(p),
                  process_busy,
                  graph.success ? graph.schedule->utilization() : -1.0,
                  process_ok ? "ok" : "OVERLOAD",
                  graph.success ? "ok" : "failed");
    }
  }

  std::printf("\nThe graph model executes the shared suffix once per period\n"
              "regardless of k; the process model pays it k times and tips\n"
              "into overload as k grows.\n");
  return 0;
}
