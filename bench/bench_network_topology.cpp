// E15 — communication-network scheduling: shared bus vs point-to-point
// topologies.
//
// The paper leaves the network-scheduling half of the multiprocessor
// decomposition to "another paper"; this experiment explores its design
// space: the same pipeline-farm workload decomposed over m processors
// with (a) the single shared TDMA bus of core/multiproc and (b)
// per-link TDMA over full-mesh, ring, and star topologies. Metrics:
// success rate and worst end-to-end latency. Point-to-point links avoid
// bus contention (every channel waits only for its own link's short
// cycle), at the price of multi-hop routes on sparse topologies.
#include <cstdio>
#include <vector>

#include "core/multiproc.hpp"
#include "core/network.hpp"
#include "sim/rng.hpp"

using namespace rtg;
using sim::Time;

namespace {

core::GraphModel pipeline_farm(std::size_t chains, std::size_t depth, Time deadline,
                               sim::Rng& rng) {
  core::CommGraph comm;
  std::vector<std::vector<core::ElementId>> rows;
  for (std::size_t c = 0; c < chains; ++c) {
    std::vector<core::ElementId> row;
    for (std::size_t d = 0; d < depth; ++d) {
      row.push_back(comm.add_element("p" + std::to_string(c) + "_" + std::to_string(d),
                                     rng.uniform(1, 2), true));
      if (d > 0) comm.add_channel(row[d - 1], row[d]);
    }
    rows.push_back(std::move(row));
  }
  core::GraphModel model(std::move(comm));
  for (std::size_t c = 0; c < chains; ++c) {
    core::TaskGraph tg;
    core::OpId prev = graph::kInvalidNode;
    for (core::ElementId e : rows[c]) {
      const core::OpId op = tg.add_op(e);
      if (prev != graph::kInvalidNode) tg.add_dep(prev, op);
      prev = op;
    }
    model.add_constraint(core::TimingConstraint{
        "chain" + std::to_string(c), std::move(tg), 10, deadline,
        core::ConstraintKind::kAsynchronous});
  }
  return model;
}

struct Row {
  int ok = 0;
  long long worst = 0;
};

}  // namespace

int main() {
  std::printf("E15: network scheduling — bus vs point-to-point topologies\n");
  std::printf("(4 chains x 3 stages, d=120, round-robin placement, 10 trials)\n\n");
  std::printf("%-4s %-12s %-10s %-14s\n", "m", "network", "success%", "worst_latency");

  const int trials = 10;
  for (std::size_t m : {2, 4}) {
    // (a) shared bus.
    {
      Row row;
      sim::Rng rng(77 + m);
      for (int t = 0; t < trials; ++t) {
        const core::GraphModel model = pipeline_farm(4, 3, 120, rng);
        core::MultiprocOptions options;
        options.processors = m;
        options.strategy = core::PartitionStrategy::kRoundRobin;
        const core::MultiprocResult r = core::multiproc_schedule(model, options);
        if (!r.success) continue;
        ++row.ok;
        for (const auto& lat : r.end_to_end_latency) {
          row.worst = std::max(row.worst, static_cast<long long>(*lat));
        }
      }
      std::printf("%-4zu %-12s %-10.0f %-14lld\n", m, "bus",
                  100.0 * row.ok / trials, row.worst);
    }
    // (b) point-to-point topologies.
    for (const auto& [name, topology] :
         {std::pair{"mesh", core::NetworkTopology::full_mesh(m)},
          std::pair{"ring", core::NetworkTopology::ring(m)},
          std::pair{"star", core::NetworkTopology::star(m)}}) {
      Row row;
      sim::Rng rng(77 + m);
      for (int t = 0; t < trials; ++t) {
        const core::GraphModel model = pipeline_farm(4, 3, 120, rng);
        core::NetworkOptions options;
        options.strategy = core::PartitionStrategy::kRoundRobin;
        const core::NetworkScheduleResult r =
            core::network_schedule(model, topology, options);
        if (!r.success) continue;
        ++row.ok;
        for (const auto& lat : r.end_to_end_latency) {
          row.worst = std::max(row.worst, static_cast<long long>(*lat));
        }
      }
      std::printf("%-4zu %-12s %-10.0f %-14lld\n", m, name,
                  100.0 * row.ok / trials, row.worst);
    }
  }
  std::printf("\nExpected shape: mesh dominates the bus at equal processor\n"
              "counts (per-link cycles are shorter than the global bus\n"
              "cycle); the ring pays multi-hop routes; the star funnels\n"
              "everything through the hub's links.\n");
  return 0;
}
