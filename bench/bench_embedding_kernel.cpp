// E17 — indexed embedding kernel + incremental re-verification (ISSUE 3).
//
// Three measurements, all single-thread (the win is algorithmic):
//   1. Before/after on E16's verify workload: the flat-scan reference
//      kernel (pre-index behavior, kept under VerifyOptions::
//      flat_reference) vs the indexed serial engine.
//   2. A model-size x unroll-depth sweep (chain task graphs of growing
//      length drive the unroll budget) comparing the same two paths.
//   3. The optimize compaction loop: legacy generate-and-test with a
//      full flat verification per candidate vs compact_schedule on the
//      IncrementalVerifier, with the incremental cache-hit counter.
// Emits BENCH_embedding.json in the working directory.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/optimize.hpp"
#include "core/static_schedule.hpp"
#include "sim/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rtg;
using core::GraphModel;
using core::StaticSchedule;
using Time = sim::Time;

struct VerifyCase {
  GraphModel model;
  StaticSchedule schedule;
};

// E16's verification workload, reproduced seed-for-seed so before/after
// times are comparable with BENCH_parallel.json.
std::vector<VerifyCase> make_e16_cases(int count) {
  std::vector<VerifyCase> cases;
  sim::Rng rng(0xE16);
  while (static_cast<int>(cases.size()) < count) {
    core::CommGraph comm;
    const int n = static_cast<int>(rng.uniform(3, 6));
    for (int i = 0; i < n; ++i) {
      comm.add_element("e" + std::to_string(i), rng.uniform(1, 2), true);
    }
    GraphModel model(std::move(comm));
    const int k = static_cast<int>(rng.uniform(2, 4));
    for (int c = 0; c < k; ++c) {
      const auto elem = static_cast<core::ElementId>(rng.uniform(0, n - 1));
      const auto kind = rng.chance(0.4) ? core::ConstraintKind::kPeriodic
                                        : core::ConstraintKind::kAsynchronous;
      core::TaskGraph tg;
      tg.add_op(elem);
      model.add_constraint(core::TimingConstraint{"c" + std::to_string(c),
                                                  std::move(tg), rng.uniform(4, 12),
                                                  rng.uniform(8, 30), kind});
      if (rng.chance(0.5)) {
        core::TaskGraph dup;
        dup.add_op(elem);
        model.add_constraint(core::TimingConstraint{"c" + std::to_string(c) + "m",
                                                    std::move(dup), rng.uniform(4, 12),
                                                    rng.uniform(8, 30), kind});
      }
    }
    const core::HeuristicResult h = core::latency_schedule(model);
    if (!h.success) continue;
    cases.push_back(VerifyCase{h.scheduled_model, *h.schedule});
  }
  return cases;
}

// Compaction workload: mixed non-harmonized periods stretch the
// hyperperiod so schedules carry dozens to hundreds of execution
// entries — enough drop candidates for the loop comparison to be
// meaningful — while staying far below E16's multi-thousand-entry
// schedules, where the legacy O(entries^2-verifications) baseline
// would not terminate in bench time.
std::vector<VerifyCase> make_optimize_cases(int count) {
  constexpr Time kPeriods[] = {6, 8, 12};
  std::vector<VerifyCase> cases;
  sim::Rng rng(0xE17C);
  int attempts = 0;
  while (static_cast<int>(cases.size()) < count && ++attempts < 400) {
    core::CommGraph comm;
    const int n = static_cast<int>(rng.uniform(3, 5));
    for (int i = 0; i < n; ++i) {
      comm.add_element("e" + std::to_string(i), 1, true);
    }
    GraphModel model(std::move(comm));
    const int k = static_cast<int>(rng.uniform(3, 5));
    for (int c = 0; c < k; ++c) {
      const auto elem = static_cast<core::ElementId>(rng.uniform(0, n - 1));
      core::TaskGraph tg;
      tg.add_op(elem);
      model.add_constraint(core::TimingConstraint{
          "c" + std::to_string(c), std::move(tg),
          kPeriods[rng.uniform(0, 2)], rng.uniform(24, 48),
          core::ConstraintKind::kAsynchronous});
    }
    const core::HeuristicResult h = core::latency_schedule(model);
    if (!h.success) continue;
    const std::size_t entries = h.schedule->entries().size();
    if (entries < 30 || entries > 400) continue;
    cases.push_back(VerifyCase{h.scheduled_model, *h.schedule});
  }
  return cases;
}

// Sweep cell: a chain communication graph of `elements` elements, one
// asynchronous chain constraint of `chain` ops per start position. The
// chain length drives the unroll budget (2|C| + 2 periods), i.e. how
// deep each embedding query looks into the virtual unroll. The schedule
// is built directly (three interleaved passes over the elements, idle
// gaps in between) — the sweep compares kernel wall time on identical
// reports, so the schedules need not be feasible.
VerifyCase make_sweep_case(int elements, int chain, sim::Rng& rng) {
  core::CommGraph comm;
  for (int i = 0; i < elements; ++i) {
    comm.add_element("e" + std::to_string(i), rng.uniform(1, 2), true);
  }
  for (int i = 0; i + 1 < elements; ++i) {
    comm.add_channel(static_cast<core::ElementId>(i),
                     static_cast<core::ElementId>(i + 1));
  }
  StaticSchedule sched;
  GraphModel model(std::move(comm));
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < elements; ++i) {
      const auto e = static_cast<core::ElementId>(i);
      sched.push_execution(e, model.comm().weight(e));
      if (rng.chance(0.3)) sched.push_idle(rng.uniform(1, 2));
    }
  }
  for (int s = 0; s + chain <= elements; ++s) {
    core::TaskGraph tg;
    core::OpId prev = tg.add_op(static_cast<core::ElementId>(s));
    for (int j = 1; j < chain; ++j) {
      const core::OpId op = tg.add_op(static_cast<core::ElementId>(s + j));
      tg.add_dep(prev, op);
      prev = op;
    }
    model.add_constraint(core::TimingConstraint{
        "c" + std::to_string(s), std::move(tg), rng.uniform(8, 16),
        rng.uniform(static_cast<Time>(4 * chain), static_cast<Time>(8 * chain)),
        core::ConstraintKind::kAsynchronous});
  }
  return VerifyCase{std::move(model), std::move(sched)};
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Times `reps` verifications of every case on one path. With
// require_feasible, aborts on an infeasible report (the E16 workload is
// feasible by construction; the sweep cells need not be).
double time_verify(const std::vector<VerifyCase>& cases, int reps,
                   bool flat_reference, core::VerifyStats* total,
                   bool require_feasible = true) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const VerifyCase& c : cases) {
      core::VerifyStats stats;
      core::VerifyOptions options;
      options.n_threads = 1;
      options.stats = &stats;
      options.flat_reference = flat_reference;
      const bool feasible = core::verify_schedule(c.schedule, c.model, options).feasible;
      if (require_feasible && !feasible) {
        std::fprintf(stderr, "verification regressed!\n");
        std::exit(1);
      }
      if (total) *total += stats;
    }
  }
  return seconds_since(t0);
}

// The pre-change compaction loop: full flat verification per candidate.
StaticSchedule legacy_compact(const StaticSchedule& sched, const GraphModel& model,
                              std::size_t* removed) {
  core::VerifyOptions flat;
  flat.flat_reference = true;
  StaticSchedule current = sched;
  bool changed = true;
  while (changed) {
    changed = false;
    const auto entries = current.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].elem == core::kIdleEntry) continue;
      StaticSchedule candidate;
      for (std::size_t j = 0; j < entries.size(); ++j) {
        if (j == i || entries[j].elem == core::kIdleEntry) {
          candidate.push_idle(entries[j].duration);
        } else {
          candidate.push_execution(entries[j].elem, entries[j].duration);
        }
      }
      if (core::verify_schedule(candidate, model, flat).feasible) {
        current = std::move(candidate);
        if (removed) ++*removed;
        changed = true;
        break;
      }
    }
  }
  return current;
}

struct SweepRow {
  int elements = 0;
  int chain = 0;
  double flat_s = 0;
  double indexed_s = 0;
  double speedup = 0;
};

}  // namespace

int main() {
  constexpr int kE16Cases = 12;
  constexpr int kE16Reps = 40;
  constexpr int kSweepReps = 20;

  std::setvbuf(stdout, nullptr, _IONBF, 0);  // progress visible when redirected
  std::printf("# E17: indexed embedding kernel (hardware_concurrency = %zu)\n",
              rtg::util::resolve_threads(0));

  // 1. Before/after on E16's verify workload.
  const auto e16 = make_e16_cases(kE16Cases);
  std::size_t total_entries = 0;
  for (const VerifyCase& c : e16) total_entries += c.schedule.entries().size();
  std::printf("# %d E16 cases, %zu schedule entries total\n", kE16Cases, total_entries);
  const double before_s = time_verify(e16, kE16Reps, /*flat_reference=*/true, nullptr);
  core::VerifyStats after_stats;
  const double after_s = time_verify(e16, kE16Reps, /*flat_reference=*/false, &after_stats);
  const double verify_speedup = after_s > 0 ? before_s / after_s : 0;
  std::printf("E16 workload: flat %.4fs -> indexed %.4fs (%.2fx); "
              "index_seeks=%zu arena_reuses=%zu\n",
              before_s, after_s, verify_speedup, after_stats.index_seeks,
              after_stats.arena_reuses);

  // 2. Model size x unroll depth sweep.
  std::vector<SweepRow> sweep;
  sim::Rng sweep_rng(0xE17);
  for (const int elements : {4, 8, 12}) {
    for (const int chain : {1, 2, 4}) {
      const std::vector<VerifyCase> cell{make_sweep_case(elements, chain, sweep_rng)};
      SweepRow row;
      row.elements = elements;
      row.chain = chain;
      row.flat_s = time_verify(cell, kSweepReps, true, nullptr, false);
      row.indexed_s = time_verify(cell, kSweepReps, false, nullptr, false);
      row.speedup = row.indexed_s > 0 ? row.flat_s / row.indexed_s : 0;
      std::printf("sweep n=%2d chain=%d: flat %.4fs -> indexed %.4fs (%.2fx)\n",
                  row.elements, row.chain, row.flat_s, row.indexed_s, row.speedup);
      sweep.push_back(row);
    }
  }

  // 3. Optimize loop: legacy generate-and-test vs incremental verifier.
  const auto opt_cases = make_optimize_cases(8);
  std::size_t opt_entries = 0;
  for (const VerifyCase& c : opt_cases) opt_entries += c.schedule.entries().size();
  std::printf("# %zu optimize cases, %zu schedule entries total\n",
              opt_cases.size(), opt_entries);
  double opt_before_s = 0, opt_after_s = 0;
  std::size_t legacy_removed = 0;
  core::OptimizeStats opt_stats;
  {
    auto t0 = std::chrono::steady_clock::now();
    for (const VerifyCase& c : opt_cases) {
      (void)legacy_compact(c.schedule, c.model, &legacy_removed);
    }
    opt_before_s = seconds_since(t0);

    std::size_t incremental_removed = 0;
    t0 = std::chrono::steady_clock::now();
    for (const VerifyCase& c : opt_cases) {
      core::OptimizeStats stats;
      (void)core::compact_schedule(c.schedule, c.model, &stats);
      incremental_removed += stats.executions_removed;
      opt_stats.verify += stats.verify;
    }
    opt_after_s = seconds_since(t0);
    if (incremental_removed != legacy_removed) {
      std::fprintf(stderr, "compaction diverged from the legacy loop!\n");
      return 1;
    }
    if (opt_stats.verify.incremental_hits == 0) {
      std::fprintf(stderr, "incremental verifier never hit its cache!\n");
      return 1;
    }
  }
  const double opt_speedup = opt_after_s > 0 ? opt_before_s / opt_after_s : 0;
  const double answered =
      static_cast<double>(opt_stats.verify.incremental_hits +
                          opt_stats.verify.embedding_queries);
  const double hit_rate =
      answered > 0 ? static_cast<double>(opt_stats.verify.incremental_hits) / answered : 0;
  std::printf("optimize loop: legacy %.4fs -> incremental %.4fs (%.2fx); "
              "cache_hits=%zu (%.1f%% of windows)\n",
              opt_before_s, opt_after_s, opt_speedup,
              opt_stats.verify.incremental_hits, 100.0 * hit_rate);

  std::FILE* out = std::fopen("BENCH_embedding.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_embedding.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"experiment\": \"E17_embedding_kernel\",\n");
  std::fprintf(out, "  \"hardware_concurrency\": %zu,\n", rtg::util::resolve_threads(0));
  std::fprintf(out,
               "  \"e16_workload\": {\"before_verify_s\": %.6f, \"after_verify_s\": %.6f, "
               "\"speedup\": %.3f, \"index_seeks\": %zu, \"arena_reuses\": %zu},\n",
               before_s, after_s, verify_speedup, after_stats.index_seeks,
               after_stats.arena_reuses);
  std::fprintf(out,
               "  \"optimize_loop\": {\"before_s\": %.6f, \"after_s\": %.6f, "
               "\"speedup\": %.3f, \"incremental_cache_hits\": %zu, "
               "\"incremental_hit_rate\": %.4f},\n",
               opt_before_s, opt_after_s, opt_speedup,
               opt_stats.verify.incremental_hits, hit_rate);
  std::fprintf(out, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    std::fprintf(out,
                 "    {\"elements\": %d, \"chain\": %d, \"flat_s\": %.6f, "
                 "\"indexed_s\": %.6f, \"speedup\": %.3f}%s\n",
                 r.elements, r.chain, r.flat_s, r.indexed_s, r.speedup,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("# wrote BENCH_embedding.json\n");
  return 0;
}
