// E22 — hot-path ablation: SoA columns, bitset occurrence rows, arena
// scratch, calibrated cutoff (ISSUE 8).
//
// Re-runs E16/E17's verification workload (seed-for-seed) through the
// rebuilt hot path with each mechanical-sympathy layer enabled
// cumulatively:
//
//   flat       VerifyOptions::flat_reference (pre-index linear scans)
//   aos        indexed engine, every HotPathConfig layer off — the
//              pre-rebuild AoS kernel shape
//   +soa       structure-of-arrays UnrollIndex columns
//   +bitset    per-element occurrence rows with word-mask gates
//   +arena     bump-pointer scratch arena in the kernels
//   +cutoff    calibrated serial/parallel cutoff, auto thread mode
//              (on a single-core host this resolves to the serial path;
//              the row pins that auto never regresses the serial time)
//
// Each row is the best of kBatches timed batches (the host is a shared
// single-core box; min is the noise-robust statistic), and every report
// is checked against the flat reference before timing starts. Emits
// BENCH_hotpath.json in the working directory.
//
// --smoke: quick CI guard — two batches, and exits non-zero unless the
// fully-enabled engine beats flat_reference by >= 3x (the full run
// measures ~15-20x; 3x leaves room for sanitizer-free CI hosts of any
// speed). Wired as the perf_smoke_hotpath ctest, skipped under
// sanitizers where instrumentation distorts the ratio.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "sim/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rtg;
using core::GraphModel;
using core::StaticSchedule;

struct VerifyCase {
  GraphModel model;
  StaticSchedule schedule;
};

// E16's verification workload, reproduced seed-for-seed so rows are
// comparable with BENCH_parallel.json and BENCH_embedding.json.
std::vector<VerifyCase> make_e16_cases(int count) {
  std::vector<VerifyCase> cases;
  sim::Rng rng(0xE16);
  while (static_cast<int>(cases.size()) < count) {
    core::CommGraph comm;
    const int n = static_cast<int>(rng.uniform(3, 6));
    for (int i = 0; i < n; ++i) {
      comm.add_element("e" + std::to_string(i), rng.uniform(1, 2), true);
    }
    GraphModel model(std::move(comm));
    const int k = static_cast<int>(rng.uniform(2, 4));
    for (int c = 0; c < k; ++c) {
      const auto elem = static_cast<core::ElementId>(rng.uniform(0, n - 1));
      const auto kind = rng.chance(0.4) ? core::ConstraintKind::kPeriodic
                                        : core::ConstraintKind::kAsynchronous;
      core::TaskGraph tg;
      tg.add_op(elem);
      model.add_constraint(core::TimingConstraint{"c" + std::to_string(c),
                                                  std::move(tg), rng.uniform(4, 12),
                                                  rng.uniform(8, 30), kind});
      if (rng.chance(0.5)) {
        core::TaskGraph dup;
        dup.add_op(elem);
        model.add_constraint(core::TimingConstraint{"c" + std::to_string(c) + "m",
                                                    std::move(dup), rng.uniform(4, 12),
                                                    rng.uniform(8, 30), kind});
      }
    }
    const core::HeuristicResult h = core::latency_schedule(model);
    if (!h.success) continue;
    cases.push_back(VerifyCase{h.scheduled_model, *h.schedule});
  }
  return cases;
}

struct LayerRow {
  const char* name;
  bool flat;  // flat_reference instead of the indexed engine
  core::HotPathConfig config;
  std::size_t n_threads;  // 1 = serial; 0 = auto (the cutoff row)
};

struct Result {
  const char* name = "";
  double verify_s = 0;
  double speedup_vs_flat = 0;
  double speedup_vs_aos = 0;
  std::size_t index_seeks = 0;
  std::size_t bitset_skips = 0;
  std::size_t arena_reuses = 0;
  std::size_t arena_bytes_peak = 0;
};

double run_batch(const std::vector<VerifyCase>& cases, const LayerRow& layer,
                 int reps, core::VerifyStats* totals) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const VerifyCase& c : cases) {
      core::VerifyStats stats;
      core::VerifyOptions options;
      options.n_threads = layer.n_threads;
      options.stats = &stats;
      options.flat_reference = layer.flat;
      const auto report = core::verify_schedule(c.schedule, c.model, options);
      if (!report.feasible) {
        std::fprintf(stderr, "verification regressed under %s!\n", layer.name);
        std::exit(1);
      }
      if (totals != nullptr && rep == 0) {
        totals->index_seeks += stats.index_seeks;
        totals->bitset_skips += stats.bitset_skips;
        totals->arena_reuses += stats.arena_reuses;
        totals->arena_bytes_peak =
            std::max(totals->arena_bytes_peak, stats.arena_bytes_peak);
      }
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int kVerifyCases = 12;
  const int kReps = smoke ? 4 : 10;
  const int kBatches = smoke ? 2 : 3;

  const LayerRow layers[] = {
      {"flat", true, {}, 1},
      {"aos",
       false,
       {.soa = false, .bitset = false, .arena = false, .calibrate = false},
       1},
      {"+soa", false, {.bitset = false, .arena = false, .calibrate = false}, 1},
      {"+bitset", false, {.arena = false, .calibrate = false}, 1},
      {"+arena", false, {.calibrate = false}, 1},
      {"+cutoff", false, {}, 0},
  };

  const auto cases = make_e16_cases(kVerifyCases);

  // Correctness gate before any timing: every layer must reproduce the
  // flat reference bit-for-bit.
  const core::HotPathConfig saved = core::hotpath_config();
  for (const VerifyCase& c : cases) {
    core::VerifyOptions flat_options;
    flat_options.flat_reference = true;
    const auto want = core::verify_schedule(c.schedule, c.model, flat_options);
    for (const LayerRow& layer : layers) {
      core::hotpath_config() = layer.config;
      core::VerifyOptions options;
      options.n_threads = layer.n_threads;
      options.flat_reference = layer.flat;
      if (!(core::verify_schedule(c.schedule, c.model, options) == want)) {
        std::fprintf(stderr, "layer %s is not bit-identical to flat!\n",
                     layer.name);
        return 1;
      }
    }
  }

  std::printf("# E22: hot-path ablation (hardware_concurrency = %zu, "
              "cutoff = %zu work units)\n",
              rtg::util::resolve_threads(0), core::serial_parallel_cutoff());
  std::printf("%10s %12s %10s %10s %12s %12s %10s %10s\n", "layer", "verify[s]",
              "vs flat", "vs aos", "seeks", "bit_skips", "arena", "peak[B]");

  std::vector<Result> results;
  for (const LayerRow& layer : layers) {
    core::hotpath_config() = layer.config;
    core::VerifyStats totals;
    Result r;
    r.name = layer.name;
    r.verify_s = run_batch(cases, layer, kReps, &totals);  // warm + counters
    for (int b = 1; b < kBatches; ++b) {
      r.verify_s = std::min(r.verify_s, run_batch(cases, layer, kReps, nullptr));
    }
    r.index_seeks = totals.index_seeks;
    r.bitset_skips = totals.bitset_skips;
    r.arena_reuses = totals.arena_reuses;
    r.arena_bytes_peak = totals.arena_bytes_peak;
    if (!results.empty()) {
      r.speedup_vs_flat = results.front().verify_s / r.verify_s;
      if (results.size() >= 2) {
        r.speedup_vs_aos = results[1].verify_s / r.verify_s;
      }
    } else {
      r.speedup_vs_flat = 1.0;
    }
    std::printf("%10s %12.4f %10.2f %10.2f %12zu %12zu %10zu %10zu\n", r.name,
                r.verify_s, r.speedup_vs_flat, r.speedup_vs_aos, r.index_seeks,
                r.bitset_skips, r.arena_reuses, r.arena_bytes_peak);
    results.push_back(r);
  }
  core::hotpath_config() = saved;

  if (!smoke) {
    std::FILE* out = std::fopen("BENCH_hotpath.json", "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_hotpath.json\n");
      return 1;
    }
    std::fprintf(out, "{\n  \"experiment\": \"E22_hotpath_ablation\",\n");
    std::fprintf(out, "  \"hardware_concurrency\": %zu,\n",
                 rtg::util::resolve_threads(0));
    std::fprintf(out, "  \"serial_parallel_cutoff\": %zu,\n",
                 core::serial_parallel_cutoff());
    std::fprintf(out,
                 "  \"workload\": \"E16 verify cases x %d reps, best of %d "
                 "batches, serial unless noted\",\n",
                 kReps, kBatches);
    std::fprintf(out, "  \"rows\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(out,
                   "    {\"layer\": \"%s\", \"verify_s\": %.6f, "
                   "\"speedup_vs_flat\": %.2f, \"speedup_vs_aos\": %.2f, "
                   "\"index_seeks\": %zu, \"bitset_skips\": %zu, "
                   "\"arena_reuses\": %zu, \"arena_bytes_peak\": %zu}%s\n",
                   r.name, r.verify_s, r.speedup_vs_flat, r.speedup_vs_aos,
                   r.index_seeks, r.bitset_skips, r.arena_reuses,
                   r.arena_bytes_peak, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("# wrote BENCH_hotpath.json\n");
  }

  // Smoke gate: the fully-enabled serial engine (the +arena row — the
  // last serial configuration) must beat flat by a wide margin.
  const double indexed_s = results[results.size() - 2].verify_s;
  const double ratio = results.front().verify_s / indexed_s;
  if (smoke) {
    std::printf("# smoke: indexed %.2fx over flat (gate: >= 3x)\n", ratio);
    if (ratio < 3.0) {
      std::fprintf(stderr, "perf smoke FAILED: indexed only %.2fx over flat\n",
                   ratio);
      return 1;
    }
  }
  return 0;
}
