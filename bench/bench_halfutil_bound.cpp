// E4 — Theorem 3: the 1/2-utilization sufficient condition.
//
// Sweeps Σ w_i/d_i from 0.1 to 1.0 over random asynchronous constraint
// sets (pipelinable elements, floor(d/2) >= w) and reports the
// heuristic's success rate per utilization bucket, with and without
// software pipelining. The paper's claim: 100% success for U <= 1/2
// when pipelining is available. Above 1/2 the construction degrades;
// where the crossover falls is the empirical content of this
// experiment.
#include <cstdio>
#include <vector>

#include "core/heuristic.hpp"
#include "sim/rng.hpp"

using namespace rtg;
using sim::Time;

namespace {

// Builds a random async constraint set targeting utilization `target`.
core::GraphModel random_instance(double target, sim::Rng& rng) {
  core::CommGraph comm;
  const int n = static_cast<int>(rng.uniform(2, 5));
  for (int i = 0; i < n; ++i) {
    comm.add_element("e" + std::to_string(i), rng.uniform(1, 3), true);
  }
  core::GraphModel model(std::move(comm));
  double used = 0.0;
  for (int c = 0; c < 16 && used < target; ++c) {
    const auto e = static_cast<core::ElementId>(rng.uniform(0, n - 1));
    const Time w = model.comm().weight(e);
    const double remaining = target - used;
    // Deadline chosen so this constraint uses at most `remaining`,
    // subject to floor(d/2) >= w.
    Time d = std::max<Time>(2 * w,
                            static_cast<Time>(static_cast<double>(w) / remaining) + 1);
    d = std::min<Time>(d, 60);
    const double util = static_cast<double>(w) / static_cast<double>(d);
    if (used + util > target + 0.02) break;
    used += util;
    core::TaskGraph tg;
    tg.add_op(e);
    model.add_constraint(core::TimingConstraint{"c" + std::to_string(c), std::move(tg),
                                                2, d,
                                                core::ConstraintKind::kAsynchronous});
  }
  return model;
}

}  // namespace

int main() {
  std::printf("E4: Theorem 3 sufficient condition — heuristic success rate vs "
              "utilization\n\n");
  std::printf("%-8s %-10s %-14s %-14s\n", "target", "actual_U", "pipelined",
              "unpipelined");

  sim::Rng rng(7);
  const int trials = 60;
  for (double target = 0.1; target <= 1.001; target += 0.1) {
    int ok_pipe = 0, ok_nopipe = 0, count = 0;
    double util_sum = 0.0;
    for (int t = 0; t < trials; ++t) {
      const core::GraphModel model = random_instance(target, rng);
      if (model.constraint_count() == 0) continue;
      ++count;
      util_sum += model.deadline_utilization();
      core::HeuristicOptions with;
      with.pipeline = true;
      if (core::latency_schedule(model, with).success) ++ok_pipe;
      core::HeuristicOptions without;
      without.pipeline = false;
      if (core::latency_schedule(model, without).success) ++ok_nopipe;
    }
    if (count == 0) continue;
    std::printf("%-8.1f %-10.3f %-14.1f %-14.1f\n", target, util_sum / count,
                100.0 * ok_pipe / count, 100.0 * ok_nopipe / count);
  }
  std::printf("\nTheorem 3 predicts 100%% in the pipelined column for every "
              "row with U <= 0.5.\n");
  return 0;
}
