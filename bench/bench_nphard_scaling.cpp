// E3 — Theorem 2: strong NP-hardness via 3-PARTITION gadgets.
//
// The exact solver's wall time on 3-PARTITION-encoded instances grows
// combinatorially with the number of bins, while the polynomial
// heuristic either answers instantly or declines. Reported per size:
// dedicated 3-PARTITION solver time (reference), simulation-game time
// and states, and the heuristic's verdict. Run on the single-operation
// encoding (theorem restriction (ii)).
#include <chrono>
#include <cstdio>

#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/npc.hpp"
#include "sim/rng.hpp"

using namespace rtg;
using sim::Time;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

}  // namespace

int main() {
  std::printf("E3: NP-hardness scaling on 3-PARTITION instances (capacity 8)\n\n");
  std::printf("%-5s %-10s %-10s %-12s %-12s %-12s %-10s\n", "bins", "solvable",
              "tp_ms", "game_status", "game_states", "game_ms", "heuristic");

  sim::Rng rng(42);
  for (std::size_t bins = 1; bins <= 3; ++bins) {
    for (const bool overload : {false, true}) {
      // Capacity 8 keeps deadlines (window sizes) small enough for the
      // game; growth across bins is the point of the experiment.
      core::ThreePartitionInstance inst =
          core::random_solvable_three_partition(bins, 8, rng);
      if (overload) inst = core::make_overloaded(inst);

      const auto tp_start = std::chrono::steady_clock::now();
      const bool tp = core::solve_three_partition(inst);
      const double tp_ms = ms_since(tp_start);

      const core::GraphModel model = core::three_partition_model(inst);

      // A modest budget: rows that come back "unknown" hit it, which is
      // itself the measurement — the state space exploded.
      core::ExactOptions options;
      options.state_budget = 300000;
      const auto game_start = std::chrono::steady_clock::now();
      const core::ExactResult game = core::exact_feasible(model, options);
      const double game_ms = ms_since(game_start);
      const char* status =
          game.status == core::FeasibilityStatus::kFeasible    ? "feasible"
          : game.status == core::FeasibilityStatus::kInfeasible ? "infeasible"
                                                                 : "unknown";

      const core::HeuristicResult h = core::latency_schedule(model);

      std::printf("%-5zu %-10s %-10.2f %-12s %-12zu %-12.2f %-10s\n", bins,
                  tp ? "yes" : "no", tp_ms, status, game.states_explored, game_ms,
                  h.success ? "found" : "declined");

      if (game.status == core::FeasibilityStatus::kFeasible) {
        // Sanity: the game's schedule must verify.
        if (!core::verify_schedule(*game.schedule, model).feasible) {
          std::printf("  !! game schedule failed verification\n");
        }
      }
    }
  }

  std::printf("\nNote: the heuristic 'declined' column is expected — the gadget\n"
              "elements are non-pipelinable and near 100%% dense, which is\n"
              "exactly the regime Theorem 2 says no polynomial method covers.\n");
  return 0;
}
