// E2 — Theorem 1: the finite simulation game.
//
// Measures the exact solver's explored-state count and wall time as the
// instance grows along two axes the theorem's finiteness argument
// depends on: the number of constraints (alphabet size) and the maximum
// deadline (window size). Demonstrates that the game is finite and
// decidable — and that its state space grows steeply, which motivates
// the heuristic (Theorem 3) and foreshadows the hardness result (E3).
#include <chrono>
#include <cstdio>

#include "core/feasibility.hpp"

using namespace rtg;
using sim::Time;

namespace {

core::GraphModel instance(std::size_t n_constraints, Time deadline) {
  core::CommGraph comm;
  for (std::size_t i = 0; i < n_constraints; ++i) {
    comm.add_element("e" + std::to_string(i), 1, false);
  }
  core::GraphModel model(std::move(comm));
  for (std::size_t i = 0; i < n_constraints; ++i) {
    core::TaskGraph tg;
    tg.add_op(static_cast<core::ElementId>(i));
    model.add_constraint(core::TimingConstraint{
        "c" + std::to_string(i), std::move(tg), 1, deadline,
        core::ConstraintKind::kAsynchronous});
  }
  return model;
}

const char* status_name(core::FeasibilityStatus status) {
  switch (status) {
    case core::FeasibilityStatus::kFeasible: return "feasible";
    case core::FeasibilityStatus::kInfeasible: return "infeasible";
    case core::FeasibilityStatus::kUnknown: return "unknown";
  }
  return "?";
}

void run(std::size_t n, Time d) {
  const core::GraphModel model = instance(n, d);
  core::ExactOptions options;
  options.state_budget = 2'000'000;
  const auto start = std::chrono::steady_clock::now();
  const core::ExactResult r = core::exact_feasible(model, options);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  std::printf("%-4zu %-6lld %-12s %-12zu %-10.2f %s\n", n,
              static_cast<long long>(d), status_name(r.status), r.states_explored, ms,
              r.status == core::FeasibilityStatus::kFeasible
                  ? ("len=" + std::to_string(r.schedule->length())).c_str()
                  : "");
}

}  // namespace

int main() {
  std::printf("E2: exact feasibility via the simulation game\n");
  std::printf("(n single-op unit constraints, common deadline d; feasible iff n <= d)\n\n");
  std::printf("%-4s %-6s %-12s %-12s %-10s %s\n", "n", "d", "status", "states",
              "time_ms", "schedule");

  // Axis 1: constraints at the feasibility boundary (d = n).
  for (std::size_t n = 1; n <= 5; ++n) {
    run(n, static_cast<Time>(n));      // exactly feasible
  }
  std::printf("\n");
  // Axis 2: growing slack for fixed n (window size drives the state
  // space).
  for (Time d = 3; d <= 7; ++d) {
    run(3, d);
  }
  std::printf("\n");
  // Axis 3: infeasible instances (full exploration needed for the
  // infeasibility proof).
  for (std::size_t n = 2; n <= 5; ++n) {
    run(n, static_cast<Time>(n) - 1);  // one slot short
  }

  // Ablation: DFS branching order. Least-recently-executed-first finds
  // feasible cycles orders of magnitude faster than static id order on
  // the same instances (both are complete).
  std::printf("\nBranch-order ablation (feasible boundary instances):\n");
  std::printf("%-4s %-6s %-16s %-16s\n", "n", "d", "LRU_states", "static_states");
  for (std::size_t n = 3; n <= 6; ++n) {
    const core::GraphModel model = instance(n, static_cast<Time>(n));
    core::ExactOptions lru;
    lru.order = core::BranchOrder::kLeastRecentlyExecuted;
    core::ExactOptions stat;
    stat.order = core::BranchOrder::kStaticId;
    stat.state_budget = 500'000;
    const auto a = core::exact_feasible(model, lru);
    const auto b = core::exact_feasible(model, stat);
    std::printf("%-4zu %-6zu %-16zu %-16zu\n", n, n, a.states_explored,
                b.states_explored);
  }
  return 0;
}
