// E12 — fault-tolerant scheduling: replication cost vs survival.
//
// For hardening levels k = 0, 1, 2 over the control-system model:
// schedule busy fraction (the cost), verified fault-tolerant latency,
// and measured invocation survival under omission faults at several
// failure rates. The paper's fault-tolerance discussion is qualitative;
// this experiment gives it numbers.
//
// E13 — execution overruns: blind executive vs adaptive degradation vs
// the process-model polling server, swept over overrun probabilities.
#include <cstdio>

#include "core/degradation.hpp"
#include "core/fault.hpp"
#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "rt/polling_server.hpp"
#include "rt/scheduler.hpp"

using namespace rtg;
using sim::Time;

namespace {

// The three-tier model of tests/core/degradation_test.cpp: a nearly
// saturated primary where overruns cascade into deadline misses.
core::GraphModel tiered_model() {
  core::CommGraph comm;
  comm.add_element("a", 1);
  comm.add_element("c", 1);
  comm.add_element("b", 1);
  core::GraphModel model(std::move(comm));
  const auto single = [](core::ElementId e) {
    core::TaskGraph tg;
    tg.add_op(e);
    return tg;
  };
  model.add_constraint(core::TimingConstraint{
      "CRIT", single(0), 6, 14, core::ConstraintKind::kAsynchronous, 2});
  model.add_constraint(core::TimingConstraint{
      "MID", single(1), 3, 6, core::ConstraintKind::kAsynchronous, 1});
  model.add_constraint(core::TimingConstraint{
      "BULK", single(2), 2, 4, core::ConstraintKind::kAsynchronous, 0});
  return model;
}

void overrun_sweep() {
  std::printf("\nE13: overrun tolerance — blind vs adaptive vs polling server\n\n");
  const core::GraphModel model = tiered_model();
  const core::ModeLadder ladder = core::build_mode_ladder(model);
  if (!ladder.success) {
    std::printf("mode ladder failed: %s\n", ladder.failure_reason.c_str());
    return;
  }
  const Time horizon = 12000;
  core::ConstraintArrivals arrivals(3);
  arrivals[0] = rt::max_rate_arrivals(6, horizon);
  arrivals[1] = rt::max_rate_arrivals(3, horizon);
  arrivals[2] = rt::max_rate_arrivals(2, horizon);

  // Process-model comparator: CRIT as the aperiodic stream through a
  // polling server, MID and BULK as periodic demand at their rates.
  rt::TaskSet procs;
  procs.add(rt::Task{"MID", 1, 3, 6});
  procs.add(rt::Task{"BULK", 1, 2, 4});
  std::vector<rt::AperiodicJob> crit_jobs;
  for (const Time t : arrivals[0]) crit_jobs.push_back(rt::AperiodicJob{t, 1});

  std::printf("%-8s %-14s %-14s %-12s %-12s %-14s\n", "p_over",
              "blind CRIT", "adapt CRIT", "mode chg", "shed BULK",
              "server CRIT>d");
  for (const double p : {0.0, 0.05, 0.10, 0.25, 0.40}) {
    core::OverrunModel om;
    om.probability = p;
    om.magnitude = 3.0;
    om.seed = 11;

    // Blind: the primary schedule dispatched with no watchdog, CRIT
    // verified against its original window.
    core::GraphModel crit_only(ladder.base.comm());
    crit_only.add_constraint(ladder.base.constraint(0));
    const core::OverrunRunResult blind = core::run_with_overruns(
        ladder.modes[0].schedule, crit_only, {arrivals[0]}, horizon, om);

    core::AdaptiveOptions opts;
    opts.overruns = om;
    opts.watchdog.window = 16;
    opts.watchdog.min_observations = 4;
    opts.watchdog.degrade_threshold = 0.1;
    opts.watchdog.recovery_cycles = 64;
    const core::AdaptiveResult adaptive =
        core::run_adaptive_executive(ladder, arrivals, horizon, opts);

    rt::ServerOverruns so;
    so.probability = p;
    so.magnitude = 3.0;
    so.seed = 11;
    const rt::PollingServerResult server = rt::simulate_polling_server_overrun(
        procs, 1, 6, crit_jobs, horizon, so);
    std::size_t server_late = 0;
    for (const rt::ServedJob& j : server.aperiodic_jobs) {
      if (!j.completed() || j.response_time() > 14) ++server_late;
    }

    std::printf("%-8.2f %4zu/%-8zu %4zu/%-8zu %-12zu %-12zu %zu/%zu\n", p,
                blind.invocations - blind.satisfied, blind.invocations,
                adaptive.miss_count[0], adaptive.served_count[0],
                adaptive.mode_changes.size(), adaptive.shed_count[2],
                server_late, server.aperiodic_jobs.size());
  }
  std::printf("\nExpected shape: the blind executive's CRIT misses grow with\n"
              "the overrun rate; the adaptive executive sheds BULK (then MID)\n"
              "and holds CRIT misses near zero (the residue is the detection\n"
              "lag after each recovery attempt); the saturated polling server\n"
              "collapses for every stream under any sustained overrun.\n");
}

}  // namespace

int main() {
  std::printf("E12: k-fault-tolerant schedules — cost and survival\n\n");

  // Asynchronous-only variant of the control system (hardening turns
  // everything into continuous servers anyway).
  core::CommGraph comm;
  const auto fx = comm.add_element("fx", 1);
  const auto fs = comm.add_element("fs", 2);
  const auto fk = comm.add_element("fk", 1);
  comm.add_channel(fx, fs);
  comm.add_channel(fs, fk);
  core::GraphModel model(std::move(comm));
  core::TaskGraph tg;
  const auto a = tg.add_op(fx);
  const auto b = tg.add_op(fs);
  const auto c = tg.add_op(fk);
  tg.add_dep(a, b);
  tg.add_dep(b, c);
  model.add_constraint(core::TimingConstraint{
      "LOOP", std::move(tg), 10, 36, core::ConstraintKind::kAsynchronous});

  std::printf("%-4s %-8s %-10s %-12s %-12s %-12s\n", "k", "busy%", "ft_latency",
              "surv@10%", "surv@25%", "surv@40%");

  const auto arrivals = rt::max_rate_arrivals(10, 6000);
  for (std::size_t k : {0u, 1u, 2u}) {
    const core::HardenedResult r = core::harden_and_schedule(model, k);
    if (!r.success) {
      std::printf("%-4zu hardening failed: %s\n", k, r.failure_reason.c_str());
      continue;
    }
    double survival[3] = {0, 0, 0};
    const double rates[3] = {0.10, 0.25, 0.40};
    for (int i = 0; i < 3; ++i) {
      core::FailureModel fm;
      fm.omission_probability = rates[i];
      fm.seed = 17 + static_cast<std::uint64_t>(i);
      // Check against ORIGINAL deadlines: build a verification model
      // that pairs the original constraint with the pipelined graph.
      core::GraphModel check(r.scheduled_model.comm());
      core::TimingConstraint orig = r.scheduled_model.constraint(0);
      orig.deadline = model.constraint(0).deadline;
      check.add_constraint(std::move(orig));
      const core::FaultInjectionResult fr =
          core::run_with_failures(*r.schedule, check, {arrivals}, 6200, fm);
      survival[i] = fr.survival_rate();
    }
    std::printf("%-4zu %-8.1f %-10lld %-12.3f %-12.3f %-12.3f\n", k,
                100.0 * r.utilization,
                r.ft_latency[0] ? static_cast<long long>(*r.ft_latency[0]) : -1,
                survival[0], survival[1], survival[2]);
  }
  std::printf("\nExpected shape: busy%% roughly scales with k+1 while the\n"
              "survival columns approach 1.0 — replication buys omission\n"
              "masking at proportional processor cost.\n");

  overrun_sweep();
  return 0;
}
