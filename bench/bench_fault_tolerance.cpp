// E12 — fault-tolerant scheduling: replication cost vs survival.
//
// For hardening levels k = 0, 1, 2 over the control-system model:
// schedule busy fraction (the cost), verified fault-tolerant latency,
// and measured invocation survival under omission faults at several
// failure rates. The paper's fault-tolerance discussion is qualitative;
// this experiment gives it numbers.
#include <cstdio>

#include "core/fault.hpp"
#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "rt/scheduler.hpp"

using namespace rtg;
using sim::Time;

int main() {
  std::printf("E12: k-fault-tolerant schedules — cost and survival\n\n");

  // Asynchronous-only variant of the control system (hardening turns
  // everything into continuous servers anyway).
  core::CommGraph comm;
  const auto fx = comm.add_element("fx", 1);
  const auto fs = comm.add_element("fs", 2);
  const auto fk = comm.add_element("fk", 1);
  comm.add_channel(fx, fs);
  comm.add_channel(fs, fk);
  core::GraphModel model(std::move(comm));
  core::TaskGraph tg;
  const auto a = tg.add_op(fx);
  const auto b = tg.add_op(fs);
  const auto c = tg.add_op(fk);
  tg.add_dep(a, b);
  tg.add_dep(b, c);
  model.add_constraint(core::TimingConstraint{
      "LOOP", std::move(tg), 10, 36, core::ConstraintKind::kAsynchronous});

  std::printf("%-4s %-8s %-10s %-12s %-12s %-12s\n", "k", "busy%", "ft_latency",
              "surv@10%", "surv@25%", "surv@40%");

  const auto arrivals = rt::max_rate_arrivals(10, 6000);
  for (std::size_t k : {0u, 1u, 2u}) {
    const core::HardenedResult r = core::harden_and_schedule(model, k);
    if (!r.success) {
      std::printf("%-4zu hardening failed: %s\n", k, r.failure_reason.c_str());
      continue;
    }
    double survival[3] = {0, 0, 0};
    const double rates[3] = {0.10, 0.25, 0.40};
    for (int i = 0; i < 3; ++i) {
      core::FailureModel fm;
      fm.omission_probability = rates[i];
      fm.seed = 17 + static_cast<std::uint64_t>(i);
      // Check against ORIGINAL deadlines: build a verification model
      // that pairs the original constraint with the pipelined graph.
      core::GraphModel check(r.scheduled_model.comm());
      core::TimingConstraint orig = r.scheduled_model.constraint(0);
      orig.deadline = model.constraint(0).deadline;
      check.add_constraint(std::move(orig));
      const core::FaultInjectionResult fr =
          core::run_with_failures(*r.schedule, check, {arrivals}, 6200, fm);
      survival[i] = fr.survival_rate();
    }
    std::printf("%-4zu %-8.1f %-10lld %-12.3f %-12.3f %-12.3f\n", k,
                100.0 * r.utilization,
                r.ft_latency[0] ? static_cast<long long>(*r.ft_latency[0]) : -1,
                survival[0], survival[1], survival[2]);
  }
  std::printf("\nExpected shape: busy%% roughly scales with k+1 while the\n"
              "survival columns approach 1.0 — replication buys omission\n"
              "masking at proportional processor cost.\n");
  return 0;
}
