// E16 — parallel verification & feasibility scaling (ISSUE 2).
//
// Sweeps the n_threads knob over {1, 2, 4, 8} for (a) verify_schedule
// on a batch of generated model/schedule pairs and (b) the exact
// Theorem-1 game search, and reports wall time, speedup over the serial
// path, unique states per second, and the verifier's memo hit rate.
// Emits BENCH_parallel.json in the working directory for tooling.
//
// Speedups above 1x are only reachable on multi-core hosts. On a
// single hardware thread the engines clamp their worker count to the
// core count (util::resolve_threads) and run the partitioned plan
// inline, so n_threads >= 2 stays within noise of the serial path
// instead of collapsing (the historical E16 pathology — see
// EXPERIMENTS.md E16/E22). Every thread count still exercises the
// parallel partitioning and reduction code, which is what CI checks.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "sim/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rtg;
using core::GraphModel;
using core::StaticSchedule;
using Time = sim::Time;

// Verification workload: schedules synthesized by the heuristic for
// random multi-constraint models (realistic shapes: long cycles, mixed
// async/periodic), re-verified many times.
struct VerifyCase {
  GraphModel model;
  StaticSchedule schedule;
};

std::vector<VerifyCase> make_verify_cases(int count) {
  std::vector<VerifyCase> cases;
  sim::Rng rng(0xE16);
  while (static_cast<int>(cases.size()) < count) {
    core::CommGraph comm;
    const int n = static_cast<int>(rng.uniform(3, 6));
    for (int i = 0; i < n; ++i) {
      comm.add_element("e" + std::to_string(i), rng.uniform(1, 2), true);
    }
    GraphModel model(std::move(comm));
    const int k = static_cast<int>(rng.uniform(2, 4));
    for (int c = 0; c < k; ++c) {
      const auto elem = static_cast<core::ElementId>(rng.uniform(0, n - 1));
      const auto kind = rng.chance(0.4) ? core::ConstraintKind::kPeriodic
                                        : core::ConstraintKind::kAsynchronous;
      core::TaskGraph tg;
      tg.add_op(elem);
      model.add_constraint(core::TimingConstraint{"c" + std::to_string(c),
                                                  std::move(tg), rng.uniform(4, 12),
                                                  rng.uniform(8, 30), kind});
      if (rng.chance(0.5)) {
        // A structurally identical constraint with a different deadline:
        // its embedding queries hit the shared memo table.
        core::TaskGraph dup;
        dup.add_op(elem);
        model.add_constraint(core::TimingConstraint{"c" + std::to_string(c) + "m",
                                                    std::move(dup), rng.uniform(4, 12),
                                                    rng.uniform(8, 30), kind});
      }
    }
    const core::HeuristicResult h = core::latency_schedule(model);
    if (!h.success) continue;
    cases.push_back(VerifyCase{h.scheduled_model, *h.schedule});
  }
  return cases;
}

// Exact-search workload: the paper's Figure 1/2 control system (scaled
// down so the game stays inside the budget), solved fresh each
// repetition — nothing is cached across runs by construction.
GraphModel exact_case() {
  core::ControlSystemParams params;
  params.px = params.dx = 8;
  params.py = params.dy = 16;
  params.pz = 10;
  params.dz = 8;
  return core::make_control_system(params);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Row {
  std::size_t threads = 1;
  double verify_s = 0;
  double verify_speedup = 1;
  double memo_hit_rate = 0;
  double exact_s = 0;
  double exact_speedup = 1;
  double states_per_s = 0;
};

}  // namespace

int main() {
  constexpr std::size_t kThreads[] = {1, 2, 4, 8};
  constexpr int kVerifyCases = 12;
  constexpr int kVerifyReps = 40;
  constexpr int kExactReps = 5;

  const auto cases = make_verify_cases(kVerifyCases);
  const GraphModel exact_model = exact_case();

  std::printf("# E16: parallel scaling (hardware_concurrency = %zu)\n",
              rtg::util::resolve_threads(0));
  std::printf("%8s %12s %9s %9s %12s %9s %12s\n", "threads", "verify[s]", "speedup",
              "memo%", "exact[s]", "speedup", "states/s");

  std::vector<Row> rows;
  for (const std::size_t n_threads : kThreads) {
    Row row;
    row.threads = n_threads;

    std::size_t queries = 0, hits = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kVerifyReps; ++rep) {
      for (const VerifyCase& c : cases) {
        core::VerifyStats stats;  // per-call counters; summed below
        const auto report = core::verify_schedule(
            c.schedule, c.model,
            core::VerifyOptions{.n_threads = n_threads, .stats = &stats});
        if (!report.feasible) {
          std::fprintf(stderr, "verification regressed!\n");
          return 1;
        }
        queries += stats.embedding_queries;
        hits += stats.memo_hits;
      }
    }
    row.verify_s = seconds_since(t0);
    const double answered = static_cast<double>(queries + hits);
    row.memo_hit_rate = answered > 0 ? static_cast<double>(hits) / answered : 0;

    std::size_t states = 0;
    t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kExactReps; ++rep) {
      core::ExactOptions options;
      options.state_budget = 500'000;
      options.n_threads = n_threads;
      const core::ExactResult r = core::exact_feasible(exact_model, options);
      states += r.states_explored;
      if (r.status == core::FeasibilityStatus::kUnknown) {
        std::fprintf(stderr, "exact search hit the budget!\n");
        return 1;
      }
    }
    row.exact_s = seconds_since(t0);
    row.states_per_s =
        row.exact_s > 0 ? static_cast<double>(states) / row.exact_s : 0;

    if (!rows.empty()) {
      row.verify_speedup = rows.front().verify_s / row.verify_s;
      row.exact_speedup = rows.front().exact_s / row.exact_s;
    }
    std::printf("%8zu %12.4f %9.2f %8.1f%% %12.4f %9.2f %12.0f\n", row.threads,
                row.verify_s, row.verify_speedup, 100.0 * row.memo_hit_rate,
                row.exact_s, row.exact_speedup, row.states_per_s);
    rows.push_back(row);
  }

  std::FILE* out = std::fopen("BENCH_parallel.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  const std::size_t hw = rtg::util::resolve_threads(0);
  std::fprintf(out, "{\n  \"experiment\": \"E16_parallel_scaling\",\n");
  std::fprintf(out, "  \"hardware_concurrency\": %zu,\n", hw);
  if (hw == 1) {
    // Make single-core results self-documenting: compute workers are
    // clamped to the core count, so n_threads >= 2 runs the partitioned
    // plan inline and stays within noise of serial (E22 fixed the old
    // oversubscription collapse).
    std::fprintf(out,
                 "  \"note\": \"single hardware thread: compute workers are "
                 "clamped to the core count, so n_threads >= 2 runs the "
                 "partitioned plan inline at ~1x serial; this run checks "
                 "correctness, not scaling\",\n");
  }
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"verify_s\": %.6f, \"verify_speedup\": %.3f, "
                 "\"memo_hit_rate\": %.4f, \"exact_s\": %.6f, \"exact_speedup\": %.3f, "
                 "\"states_per_s\": %.1f}%s\n",
                 r.threads, r.verify_s, r.verify_speedup, r.memo_hit_rate, r.exact_s,
                 r.exact_speedup, r.states_per_s, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("# wrote BENCH_parallel.json\n");
  return 0;
}
