// E21 — the scenario corpus: feasibility frontiers and the Theorem 3
// boundary map.
//
// Part 1 (frontier): for every topology family, sweep the utilization
// target and run the full differential tournament (exact game on the
// pipelined model, Theorem-3 heuristic, verifier stack, process-model
// EDF baseline) over a seed batch per cell. Reported per cell: the
// heuristic feasibility rate, the exact engine's verdict split, and the
// baseline's EDF-schedulability rate — the feasibility frontier of each
// graph family, and the gap between constructive scheduling and the
// paper's process-model translation.
//
// Part 2 (boundary map): sweep utilization x pipelinable-fraction and
// chart where Theorem 3's hypotheses hold and where the constructive
// heuristic keeps succeeding past them — the pipelining boundary the
// paper's Theorem 3 draws (Σ w/d <= 1/2 + all elements pipelinable).
//
// Any tournament coherence violation fails the bench (exit 1): the
// corpus numbers are only worth recording if every engine agreed.
//
// Emits BENCH_corpus.json in the working directory.
#include <cstdio>
#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "gen/tournament.hpp"

namespace {

using namespace rtg;

constexpr std::uint64_t kSeedsPerCell = 8;

struct FrontierCell {
  gen::Topology topology = gen::Topology::kChain;
  double utilization = 0;
  std::size_t heuristic_ok = 0;
  std::size_t exact_feasible = 0;
  std::size_t exact_infeasible = 0;
  std::size_t exact_unknown = 0;
  std::size_t baseline_edf = 0;
  std::size_t theorem3 = 0;
};

struct BoundaryCell {
  double utilization = 0;
  double pipelinable = 0;
  std::size_t theorem3 = 0;
  std::size_t heuristic_ok = 0;
};

struct DomainCell {
  gen::DomainPack domain = gen::DomainPack::kSensorFusion;
  std::size_t heuristic_ok = 0;
  std::size_t exact_feasible = 0;
  std::size_t baseline_edf = 0;
};

std::size_t g_violations = 0;

void account(const gen::TournamentRow& row) {
  if (!row.violations.empty()) {
    g_violations += row.violations.size();
    for (const std::string& v : row.violations) {
      std::fprintf(stderr, "VIOLATION [%s]: %s\n  repro: spec_compiler %s\n",
                   row.name.c_str(), v.c_str(), row.repro.c_str());
    }
  }
}

}  // namespace

int main() {
  gen::TournamentOptions tournament;
  tournament.exact_budget = 8'000;
  tournament.exact_threads = 1;

  // Part 1: feasibility frontiers per topology family.
  const gen::Topology kTopologies[] = {gen::Topology::kChain, gen::Topology::kForkJoin,
                                       gen::Topology::kLayered, gen::Topology::kDiamond,
                                       gen::Topology::kRandomDag};
  const double kUtils[] = {0.2, 0.35, 0.5, 0.65, 0.8, 1.0};

  std::vector<FrontierCell> frontier;
  for (const gen::Topology t : kTopologies) {
    for (const double u : kUtils) {
      FrontierCell cell;
      cell.topology = t;
      cell.utilization = u;
      for (std::uint64_t seed = 0; seed < kSeedsPerCell; ++seed) {
        gen::ScenarioOptions options;
        options.seed = seed;
        options.platform.topology = t;
        options.platform.elements = 6;
        options.constraints.constraints = 3;
        options.constraints.utilization = u;
        const gen::TournamentRow row =
            gen::run_tournament_row(gen::generate(options), tournament);
        account(row);
        if (row.heuristic_success) ++cell.heuristic_ok;
        if (row.theorem3) ++cell.theorem3;
        if (row.baseline_edf) ++cell.baseline_edf;
        switch (row.exact_status) {
          case core::FeasibilityStatus::kFeasible: ++cell.exact_feasible; break;
          case core::FeasibilityStatus::kInfeasible: ++cell.exact_infeasible; break;
          case core::FeasibilityStatus::kUnknown: ++cell.exact_unknown; break;
        }
      }
      frontier.push_back(cell);
    }
  }

  std::printf("E21a: feasibility frontier (rates over %llu seeds per cell)\n",
              static_cast<unsigned long long>(kSeedsPerCell));
  std::printf("%-10s %6s | %9s %7s | %8s %8s %8s | %8s\n", "topology", "util",
              "heuristic", "thm3", "ex_feas", "ex_infe", "ex_unk", "edf_base");
  for (const FrontierCell& c : frontier) {
    std::printf("%-10s %6.2f | %8.2f%% %6zu | %8zu %8zu %8zu | %8zu\n",
                std::string(gen::topology_name(c.topology)).c_str(), c.utilization,
                100.0 * static_cast<double>(c.heuristic_ok) / kSeedsPerCell,
                c.theorem3, c.exact_feasible, c.exact_infeasible, c.exact_unknown,
                c.baseline_edf);
  }

  // Part 2: the Theorem 3 pipelining boundary map. No exact engine —
  // the question here is where the hypotheses hold and where the
  // construction succeeds, not ground-truth feasibility.
  gen::TournamentOptions construct_only = tournament;
  construct_only.run_exact = false;
  construct_only.run_baseline = false;

  const double kBoundaryUtils[] = {0.3, 0.4, 0.5, 0.6, 0.8};
  const double kPipelinable[] = {1.0, 0.8, 0.5, 0.0};
  std::vector<BoundaryCell> boundary;
  for (const double u : kBoundaryUtils) {
    for (const double p : kPipelinable) {
      BoundaryCell cell;
      cell.utilization = u;
      cell.pipelinable = p;
      for (std::uint64_t seed = 0; seed < kSeedsPerCell; ++seed) {
        gen::ScenarioOptions options;
        options.seed = seed;
        options.platform.topology = gen::Topology::kLayered;
        options.platform.elements = 6;
        options.platform.pipelinable = p;
        options.constraints.constraints = 3;
        options.constraints.utilization = u;
        const gen::TournamentRow row =
            gen::run_tournament_row(gen::generate(options), construct_only);
        account(row);
        if (row.theorem3) ++cell.theorem3;
        if (row.heuristic_success) ++cell.heuristic_ok;
      }
      boundary.push_back(cell);
    }
  }

  std::printf("\nE21b: Theorem 3 pipelining boundary (layered, %llu seeds per cell)\n",
              static_cast<unsigned long long>(kSeedsPerCell));
  std::printf("%6s %12s | %6s %10s\n", "util", "pipelinable", "thm3", "heuristic");
  for (const BoundaryCell& c : boundary) {
    std::printf("%6.2f %12.2f | %6zu %9.2f%%\n", c.utilization, c.pipelinable,
                c.theorem3,
                100.0 * static_cast<double>(c.heuristic_ok) / kSeedsPerCell);
  }

  // Domain packs through the full tournament.
  std::vector<DomainCell> domains;
  for (const gen::DomainPack d :
       {gen::DomainPack::kSensorFusion, gen::DomainPack::kAvionics,
        gen::DomainPack::kMarketData}) {
    DomainCell cell;
    cell.domain = d;
    for (std::uint64_t seed = 0; seed < kSeedsPerCell; ++seed) {
      gen::ScenarioOptions options;
      options.seed = seed;
      options.domain = d;
      const gen::TournamentRow row =
          gen::run_tournament_row(gen::generate(options), tournament);
      account(row);
      if (row.heuristic_success) ++cell.heuristic_ok;
      if (row.exact_status == core::FeasibilityStatus::kFeasible) ++cell.exact_feasible;
      if (row.baseline_edf) ++cell.baseline_edf;
    }
    domains.push_back(cell);
  }
  std::printf("\nE21c: domain packs\n%-14s | %9s %8s %8s\n", "domain", "heuristic",
              "ex_feas", "edf_base");
  for (const DomainCell& c : domains) {
    std::printf("%-14s | %9zu %8zu %8zu\n",
                std::string(gen::domain_name(c.domain)).c_str(), c.heuristic_ok,
                c.exact_feasible, c.baseline_edf);
  }

  std::printf("\ncoherence violations: %zu\n", g_violations);

  FILE* json = std::fopen("BENCH_corpus.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"experiment\": \"E21\",\n  \"seeds_per_cell\": %llu,\n",
                 static_cast<unsigned long long>(kSeedsPerCell));
    std::fprintf(json, "  \"violations\": %zu,\n  \"frontier\": [\n", g_violations);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const FrontierCell& c = frontier[i];
      std::fprintf(json,
                   "    {\"topology\": \"%s\", \"util\": %.2f, \"heuristic_ok\": %zu, "
                   "\"theorem3\": %zu, \"exact_feasible\": %zu, \"exact_infeasible\": "
                   "%zu, \"exact_unknown\": %zu, \"baseline_edf\": %zu}%s\n",
                   std::string(gen::topology_name(c.topology)).c_str(), c.utilization,
                   c.heuristic_ok, c.theorem3, c.exact_feasible, c.exact_infeasible,
                   c.exact_unknown, c.baseline_edf,
                   i + 1 < frontier.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"theorem3_boundary\": [\n");
    for (std::size_t i = 0; i < boundary.size(); ++i) {
      const BoundaryCell& c = boundary[i];
      std::fprintf(json,
                   "    {\"util\": %.2f, \"pipelinable\": %.2f, \"theorem3\": %zu, "
                   "\"heuristic_ok\": %zu}%s\n",
                   c.utilization, c.pipelinable, c.theorem3, c.heuristic_ok,
                   i + 1 < boundary.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"domains\": [\n");
    for (std::size_t i = 0; i < domains.size(); ++i) {
      const DomainCell& c = domains[i];
      std::fprintf(json,
                   "    {\"domain\": \"%s\", \"heuristic_ok\": %zu, "
                   "\"exact_feasible\": %zu, \"baseline_edf\": %zu}%s\n",
                   std::string(gen::domain_name(c.domain)).c_str(), c.heuristic_ok,
                   c.exact_feasible, c.baseline_edf,
                   i + 1 < domains.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_corpus.json\n");
  }

  if (g_violations != 0) {
    std::fprintf(stderr, "bench_scenario_corpus: %zu coherence violations\n",
                 g_violations);
    return 1;
  }
  return 0;
}
