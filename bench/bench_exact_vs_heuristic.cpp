// E14 — quality gap: exact (simulation game) vs constructive heuristic.
//
// Where both engines succeed, how much shorter/leaner are the optimal
// game cycles than the Theorem-3 server schedules? Random tiny async
// models (the regime the exact solver can handle), reporting per
// instance class: success rates, mean schedule length, and mean busy
// fraction of each engine, plus the analytic demand-density lower
// bound for calibration.
#include <cstdio>

#include "core/bounds.hpp"
#include "core/feasibility.hpp"
#include "core/heuristic.hpp"
#include "core/optimize.hpp"
#include "sim/rng.hpp"

using namespace rtg;
using sim::Time;

namespace {

core::GraphModel random_model(std::size_t n_elems, Time min_d, Time max_d,
                              sim::Rng& rng) {
  core::CommGraph comm;
  for (std::size_t i = 0; i < n_elems; ++i) {
    comm.add_element("e" + std::to_string(i), 1, false);
  }
  core::GraphModel model(std::move(comm));
  const int k = static_cast<int>(rng.uniform(1, static_cast<Time>(n_elems)));
  for (int c = 0; c < k; ++c) {
    core::TaskGraph tg;
    tg.add_op(static_cast<core::ElementId>(
        rng.uniform(0, static_cast<Time>(n_elems) - 1)));
    model.add_constraint(core::TimingConstraint{
        "c" + std::to_string(c), std::move(tg), 1, rng.uniform(min_d, max_d),
        core::ConstraintKind::kAsynchronous});
  }
  return model;
}

}  // namespace

int main() {
  std::printf("E14: exact simulation game vs Theorem-3 heuristic (unit async\n"
              "constraints; 40 instances per row)\n\n");
  std::printf("%-10s %-12s %-12s %-14s %-14s %-14s %-12s\n", "deadlines", "exact_ok%",
              "heur_ok%", "exact_busy", "exact64_busy", "heur_busy", "density_lb");

  sim::Rng rng(2025);
  struct Bucket {
    Time min_d, max_d;
  };
  for (const Bucket bucket : {Bucket{2, 4}, Bucket{4, 8}, Bucket{8, 12}}) {
    int exact_ok = 0, heur_ok = 0, both = 0;
    double exact_busy = 0.0, exact64_busy = 0.0, heur_busy = 0.0, density = 0.0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
      const core::GraphModel model = random_model(3, bucket.min_d, bucket.max_d, rng);
      density += core::demand_density(model);

      core::ExactOptions options;
      options.state_budget = 300'000;
      const core::ExactResult exact = core::exact_feasible(model, options);
      const core::HeuristicResult heur = core::latency_schedule(model);
      if (exact.status == core::FeasibilityStatus::kFeasible) ++exact_ok;
      if (heur.success) ++heur_ok;
      if (exact.status == core::FeasibilityStatus::kFeasible && heur.success) {
        ++both;
        // The game returns the *first* cycle its DFS closes (it favours
        // busy slots), and the heuristic over-polls by design. Compact
        // both (drop executions, keep the cycle length) so the column
        // compares minimal sustained work rates. exact64 additionally
        // searches 64 cycle candidates and keeps the leanest.
        exact_busy += core::compact_schedule(*exact.schedule, model).utilization();
        core::ExactOptions best_of;
        best_of.state_budget = 300'000;
        best_of.cycle_candidates = 64;
        const core::ExactResult lean = core::exact_feasible(model, best_of);
        exact64_busy +=
            core::compact_schedule(*lean.schedule, model).utilization();
        heur_busy +=
            core::compact_schedule(*heur.schedule, heur.scheduled_model).utilization();
      }
      // Sanity: the heuristic never succeeds where the exact engine
      // proves infeasibility.
      if (heur.success && exact.status == core::FeasibilityStatus::kInfeasible) {
        std::printf("!! soundness violation\n");
        return 1;
      }
    }
    char range[16];
    std::snprintf(range, sizeof range, "%lld-%lld",
                  static_cast<long long>(bucket.min_d),
                  static_cast<long long>(bucket.max_d));
    std::printf("%-10s %-12.0f %-12.0f %-14.3f %-14.3f %-14.3f %-12.3f\n", range,
                100.0 * exact_ok / trials, 100.0 * heur_ok / trials,
                both ? exact_busy / both : 0.0, both ? exact64_busy / both : 0.0,
                both ? heur_busy / both : 0.0, density / trials);
  }
  std::printf("\nReading: the exact engine is complete (accepts more instances,\n"
              "especially at tight deadlines where the heuristic's doubled\n"
              "server rate cannot fit). The first cycle the DFS closes is\n"
              "short and over-serves loose deadlines (exact_busy); letting\n"
              "the search collect 64 candidate cycles and keep the leanest\n"
              "(exact64_busy) recovers schedules at or below the heuristic's\n"
              "rate, approaching the density lower bound — completeness and\n"
              "quality, for extra search time.\n");
  return 0;
}
