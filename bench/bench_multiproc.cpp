// E23 — the mapping portfolio over the mapped corpus.
//
// A 64-seed slice of the standing scenario corpus (gen::corpus_options,
// the same seeds CI sweeps) is deployed on every platform family
// (shared bus, full crossbar, ring) at P in {2, 4, 8} with each
// portfolio mapper (greedy latency-density, simulated annealing,
// series-parallel decomposition). Reported per cell: deployment success
// rate, mean end-to-end latency margin (min over constraints of
// deadline - measured latency, averaged over successes), mean occupied
// link slots, and mean load imbalance (peak/mean processor load).
//
// The portfolio claim under test: the annealer and the decomposition
// mapper each beat greedy on success rate or mean margin at every P on
// at least one platform family. The bench exits 1 when the claim fails,
// so the recorded BENCH_multiproc.json always evidences it. Every cell
// is deterministic; a failing (seed, P, mapper) cell reproduces with
// the printed one-liner.
//
// Emits BENCH_multiproc.json in the working directory.
#include <cstdio>
#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "map/deploy.hpp"

namespace {

using namespace rtg;
using core::Time;

constexpr std::uint64_t kSeeds = 64;
constexpr std::size_t kProcs[] = {2, 4, 8};
const char* const kFamilies[] = {"bus", "full", "ring"};
const char* const kMappers[] = {"greedy", "sa", "spd"};

map::Platform make_platform(const std::string& family, std::size_t procs) {
  if (family == "full") return map::Platform::full(procs);
  if (family == "ring") return map::Platform::ring(procs);
  return map::Platform::bus(procs);
}

struct Cell {
  std::size_t procs = 0;
  std::string family;
  std::string mapper;
  std::size_t attempts = 0;
  std::size_t ok = 0;
  double margin_sum = 0;     // over successes
  double slots_sum = 0;      // over successes
  double imbalance_sum = 0;  // over successes

  [[nodiscard]] double rate() const {
    return attempts == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(attempts);
  }
  [[nodiscard]] double mean_margin() const {
    return ok == 0 ? 0.0 : margin_sum / static_cast<double>(ok);
  }
  [[nodiscard]] double mean_slots() const {
    return ok == 0 ? 0.0 : slots_sum / static_cast<double>(ok);
  }
  [[nodiscard]] double mean_imbalance() const {
    return ok == 0 ? 0.0 : imbalance_sum / static_cast<double>(ok);
  }
};

Cell& cell_of(std::vector<Cell>& cells, std::size_t procs, const std::string& family,
              const std::string& mapper) {
  for (Cell& c : cells) {
    if (c.procs == procs && c.family == family && c.mapper == mapper) return c;
  }
  cells.push_back(Cell{procs, family, mapper});
  return cells.back();
}

}  // namespace

int main() {
  std::printf("E23: mapping portfolio, %llu-seed corpus slice, P in {2,4,8}\n\n",
              static_cast<unsigned long long>(kSeeds));

  std::vector<Cell> cells;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const gen::ScenarioOptions options = gen::corpus_options(seed);
    const gen::Scenario scenario = gen::generate(options);
    for (const std::size_t procs : kProcs) {
      for (const char* const family : kFamilies) {
        const map::Platform platform = make_platform(family, procs);
        for (const char* const mapper : kMappers) {
          map::DeployOptions deploy_options;
          deploy_options.mapper = mapper;
          const map::Deployment d =
              map::deploy(scenario.model, platform, deploy_options);
          Cell& cell = cell_of(cells, procs, family, mapper);
          ++cell.attempts;
          if (!d.success) continue;
          ++cell.ok;
          const auto margin = d.min_margin(d.scheduled_model);
          cell.margin_sum += margin ? static_cast<double>(*margin) : 0.0;
          cell.slots_sum += static_cast<double>(d.comm.total_slots());
          cell.imbalance_sum += map::load_imbalance(d.mapping.loads(
              d.scheduled_model.comm(), platform.processors()));
          // Repro for any cell under scrutiny (bus cells reproduce
          // through the generator's own knobs):
          //   spec_compiler --gen <spec>,processors=P --map P --mapper M
        }
      }
    }
  }

  std::printf("%-4s %-6s %-8s %-9s %-12s %-11s %-10s\n", "P", "fam", "mapper",
              "success%", "mean_margin", "mean_slots", "imbalance");
  for (const Cell& c : cells) {
    std::printf("%-4zu %-6s %-8s %-9.1f %-12.1f %-11.2f %-10.2f\n", c.procs,
                c.family.c_str(), c.mapper.c_str(), 100.0 * c.rate(),
                c.mean_margin(), c.mean_slots(), c.mean_imbalance());
  }

  // Portfolio claim: at every P, sa and spd each beat greedy on success
  // rate or mean margin on at least one platform family.
  bool claim_ok = true;
  for (const std::size_t procs : kProcs) {
    for (const char* const challenger : {"sa", "spd"}) {
      bool beats = false;
      for (const char* const family : kFamilies) {
        const Cell& g = cell_of(cells, procs, family, "greedy");
        const Cell& c = cell_of(cells, procs, family, challenger);
        if (c.ok > g.ok || (c.ok > 0 && c.mean_margin() > g.mean_margin())) {
          beats = true;
          break;
        }
      }
      std::printf("# P=%zu: %s %s greedy on some family\n", procs, challenger,
                  beats ? "beats" : "DOES NOT beat");
      if (!beats) claim_ok = false;
    }
  }

  FILE* json = std::fopen("BENCH_multiproc.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"experiment\": \"E23\",\n  \"seeds\": %llu,\n",
                 static_cast<unsigned long long>(kSeeds));
    std::fprintf(json, "  \"portfolio_claim\": %s,\n  \"cells\": [\n",
                 claim_ok ? "true" : "false");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(json,
                   "    {\"procs\": %zu, \"family\": \"%s\", \"mapper\": \"%s\", "
                   "\"attempts\": %zu, \"ok\": %zu, \"mean_margin\": %.2f, "
                   "\"mean_slots\": %.2f, \"mean_imbalance\": %.3f}%s\n",
                   c.procs, c.family.c_str(), c.mapper.c_str(), c.attempts, c.ok,
                   c.mean_margin(), c.mean_slots(), c.mean_imbalance(),
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_multiproc.json\n");
  }

  if (!claim_ok) {
    std::fprintf(stderr, "bench_multiproc: portfolio claim failed\n");
    return 1;
  }
  return 0;
}
