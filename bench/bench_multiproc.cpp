// E8 — multiprocessor decomposition.
//
// Random layered control-flow models decomposed onto m processors with
// each partition strategy: success rate, bus channel count, average
// end-to-end latency margin (deadline - measured latency), and
// per-processor load balance. Reproduces the paper's claim that the
// synthesis problem decomposes into per-processor problems plus a
// network scheduling problem.
#include <cstdio>
#include <vector>

#include "core/multiproc.hpp"
#include "graph/generators.hpp"
#include "sim/rng.hpp"

using namespace rtg;
using sim::Time;

namespace {

// A multi-stage processing model: `chains` independent source-to-sink
// pipelines of `depth` elements, each with a generous deadline.
core::GraphModel pipeline_farm(std::size_t chains, std::size_t depth, Time deadline,
                               sim::Rng& rng) {
  core::CommGraph comm;
  std::vector<std::vector<core::ElementId>> rows;
  for (std::size_t c = 0; c < chains; ++c) {
    std::vector<core::ElementId> row;
    for (std::size_t d = 0; d < depth; ++d) {
      row.push_back(comm.add_element("p" + std::to_string(c) + "_" + std::to_string(d),
                                     rng.uniform(1, 2), true));
      if (d > 0) comm.add_channel(row[d - 1], row[d]);
    }
    rows.push_back(std::move(row));
  }
  core::GraphModel model(std::move(comm));
  for (std::size_t c = 0; c < chains; ++c) {
    core::TaskGraph tg;
    core::OpId prev = graph::kInvalidNode;
    for (core::ElementId e : rows[c]) {
      const core::OpId op = tg.add_op(e);
      if (prev != graph::kInvalidNode) tg.add_dep(prev, op);
      prev = op;
    }
    model.add_constraint(core::TimingConstraint{
        "chain" + std::to_string(c), std::move(tg), 10, deadline,
        core::ConstraintKind::kAsynchronous});
  }
  return model;
}

const char* strategy_name(core::PartitionStrategy s) {
  switch (s) {
    case core::PartitionStrategy::kRoundRobin: return "roundrobin";
    case core::PartitionStrategy::kLpt: return "lpt";
    case core::PartitionStrategy::kCommunication: return "comm";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("E8: multiprocessor decomposition (3 chains x 3 stages, d=96)\n\n");
  std::printf("%-4s %-12s %-9s %-8s %-14s %-14s\n", "m", "strategy", "success%",
              "bus_ch", "avg_margin", "max_latency");

  const int trials = 10;
  for (std::size_t m : {1, 2, 4}) {
    for (auto strategy :
         {core::PartitionStrategy::kRoundRobin, core::PartitionStrategy::kLpt,
          core::PartitionStrategy::kCommunication}) {
      int ok = 0;
      double margin_sum = 0.0;
      long long worst_latency = 0;
      std::size_t bus_channels = 0;
      sim::Rng rng(1000 + m);
      for (int t = 0; t < trials; ++t) {
        const core::GraphModel model = pipeline_farm(3, 3, 96, rng);
        core::MultiprocOptions options;
        options.processors = m;
        options.strategy = strategy;
        const core::MultiprocResult r = core::multiproc_schedule(model, options);
        if (!r.success) continue;
        ++ok;
        bus_channels = std::max(bus_channels, r.bus_channels.size());
        for (std::size_t i = 0; i < r.end_to_end_latency.size(); ++i) {
          const Time d = r.scheduled_model.constraint(i).deadline;
          const Time lat = *r.end_to_end_latency[i];
          margin_sum += static_cast<double>(d - lat);
          worst_latency = std::max<long long>(worst_latency, lat);
        }
      }
      std::printf("%-4zu %-12s %-9.0f %-8zu %-14.1f %-14lld\n", m,
                  strategy_name(strategy), 100.0 * ok / trials, bus_channels,
                  ok ? margin_sum / (ok * 3) : 0.0, worst_latency);
    }
  }
  std::printf("\nExpected shape: m=1 always succeeds with zero bus channels;\n"
              "comm-aware partitioning needs fewer bus channels than\n"
              "round-robin and keeps larger margins.\n");
  return 0;
}
