// E20 — verification service under offered load (overload tolerance).
//
// Submits bursts of mixed verify/synthesize jobs (three tenants) to an
// in-process VerifyService at increasing offered load and reports, per
// load point: goodput (completed jobs/s), p50/p99 service latency of
// completed jobs, and the shed rate (explicit kRejected responses /
// offered). A robust server shows a goodput plateau with a rising shed
// rate — never a latency collapse or a silent drop.
//
// Every job's spec carries a unique comment line, so the result cache
// cannot short-circuit the work being measured.
//
// Emits BENCH_service.json in the working directory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "svc/service.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rtg;

const char* kSpecBase =
    "element fx\n"
    "element fy\n"
    "element fz\n"
    "element fs weight 2\n"
    "element fk\n"
    "channel fx -> fs -> fk\n"
    "channel fy -> fs\n"
    "channel fz -> fs\n"
    "channel fk -> fs\n"
    "constraint X periodic period 20 deadline 20 { fx -> fs -> fk }\n"
    "constraint Y periodic period 40 deadline 40 { fy -> fs -> fk }\n"
    "constraint Z sporadic separation 50 deadline 25 { fz -> fs }\n";

struct Row {
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t other = 0;  // expired/invalid/failed (should stay 0)
  double wall_s = 0;
  double goodput_jobs_s = 0;
  double shed_rate = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

Row run_load_point(std::size_t offered) {
  svc::ServiceOptions options;
  options.workers = 2;
  options.admission.max_pending = 64;
  options.admission.policy = core::AdmissionPolicy::kReject;
  options.admission.tenant_rate = 100.0;
  options.admission.tenant_burst = 16.0;

  svc::VerifyService service(options);
  std::vector<std::future<svc::JobResponse>> futures;
  futures.reserve(offered);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < offered; ++i) {
    svc::JobRequest req;
    req.id = i + 1;
    req.tenant = "tenant-" + std::to_string(i % 3);
    req.kind = svc::JobKind::kSynthesize;
    // Unique comment defeats the cache; the work itself is identical.
    req.spec = std::string("# job ") + std::to_string(i) + "\n" + kSpecBase;
    futures.push_back(service.submit(std::move(req)));
  }

  Row row;
  row.offered = offered;
  std::vector<double> latencies_ms;
  for (auto& f : futures) {
    const svc::JobResponse rsp = f.get();
    switch (rsp.status) {
      case svc::JobStatus::kOk:
        ++row.completed;
        latencies_ms.push_back(static_cast<double>(rsp.queue_ms + rsp.run_ms));
        break;
      case svc::JobStatus::kRejected:
        ++row.rejected;
        break;
      default:
        ++row.other;
        break;
    }
  }
  row.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  service.shutdown();

  row.goodput_jobs_s =
      row.wall_s > 0 ? static_cast<double>(row.completed) / row.wall_s : 0;
  row.shed_rate = static_cast<double>(row.rejected) / static_cast<double>(offered);
  row.p50_ms = percentile(latencies_ms, 0.50);
  row.p99_ms = percentile(latencies_ms, 0.99);
  return row;
}

}  // namespace

int main() {
  const std::size_t kLoads[] = {8, 32, 128, 256, 512};

  std::printf("# E20: service under offered load (hardware_concurrency = %zu)\n",
              util::resolve_threads(0));
  std::printf("%8s %10s %9s %7s %12s %10s %9s %9s\n", "offered", "completed",
              "rejected", "other", "goodput/s", "shed", "p50[ms]", "p99[ms]");

  std::vector<Row> rows;
  for (const std::size_t offered : kLoads) {
    const Row row = run_load_point(offered);
    std::printf("%8zu %10zu %9zu %7zu %12.1f %9.1f%% %9.1f %9.1f\n", row.offered,
                row.completed, row.rejected, row.other, row.goodput_jobs_s,
                100.0 * row.shed_rate, row.p50_ms, row.p99_ms);
    if (row.other != 0) {
      std::fprintf(stderr, "unexpected non-ok non-rejected responses!\n");
      return 1;
    }
    if (row.completed + row.rejected != row.offered) {
      std::fprintf(stderr, "lost responses!\n");
      return 1;
    }
    rows.push_back(row);
  }

  std::FILE* out = std::fopen("BENCH_service.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"experiment\": \"E20_service_overload\",\n");
  std::fprintf(out, "  \"hardware_concurrency\": %zu,\n", util::resolve_threads(0));
  std::fprintf(out, "  \"workers\": 2,\n  \"max_pending\": 64,\n");
  std::fprintf(out, "  \"tenant_rate\": 100.0,\n  \"tenant_burst\": 16.0,\n");
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"offered\": %zu, \"completed\": %zu, \"rejected\": %zu, "
                 "\"goodput_jobs_s\": %.1f, \"shed_rate\": %.4f, "
                 "\"p50_ms\": %.1f, \"p99_ms\": %.1f}%s\n",
                 r.offered, r.completed, r.rejected, r.goodput_jobs_s, r.shed_rate,
                 r.p50_ms, r.p99_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("# wrote BENCH_service.json\n");
  return 0;
}
