// E10 — latency-analysis engine cost.
//
// google-benchmark microbenchmarks of schedule_latency as the schedule
// length and task-graph size/shape grow: the greedy embedding path
// (distinct labels) is near-linear per window start; the
// branch-and-bound path (repeated labels) shows the exponential tail
// Theorem 2 predicts for the general problem.
#include <benchmark/benchmark.h>

#include "core/latency.hpp"
#include "sim/rng.hpp"

using namespace rtg;
using sim::Time;

namespace {

// Random cyclic schedule of `len` unit slots over `alphabet` elements
// (20% idle).
core::StaticSchedule random_schedule(Time len, core::ElementId alphabet,
                                     sim::Rng& rng) {
  core::StaticSchedule sched;
  for (Time i = 0; i < len; ++i) {
    if (rng.chance(0.2)) {
      sched.push_idle(1);
    } else {
      sched.push_execution(
          static_cast<core::ElementId>(rng.uniform(0, alphabet - 1)), 1);
    }
  }
  return sched;
}

core::TaskGraph chain_distinct(core::ElementId alphabet, std::size_t len,
                               sim::Rng& rng) {
  core::TaskGraph tg;
  core::OpId prev = graph::kInvalidNode;
  for (std::size_t i = 0; i < len; ++i) {
    const core::OpId op =
        tg.add_op(static_cast<core::ElementId>(i % alphabet));
    if (prev != graph::kInvalidNode) tg.add_dep(prev, op);
    prev = op;
  }
  (void)rng;
  return tg;
}

void BM_LatencyVsScheduleLength(benchmark::State& state) {
  sim::Rng rng(9);
  const Time len = state.range(0);
  const core::StaticSchedule sched = random_schedule(len, 8, rng);
  const core::TaskGraph tg = chain_distinct(8, 4, rng);
  for (auto _ : state) {
    const auto latency = core::schedule_latency(sched, tg);
    benchmark::DoNotOptimize(latency);
  }
  state.SetComplexityN(static_cast<std::int64_t>(len));
}
BENCHMARK(BM_LatencyVsScheduleLength)->Range(32, 2048)->Complexity();

void BM_LatencyVsTaskGraphSize(benchmark::State& state) {
  sim::Rng rng(11);
  const auto ops = static_cast<std::size_t>(state.range(0));
  const core::StaticSchedule sched = random_schedule(256, 8, rng);
  const core::TaskGraph tg = chain_distinct(8, ops, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_latency(sched, tg));
  }
}
BENCHMARK(BM_LatencyVsTaskGraphSize)->Arg(2)->Arg(4)->Arg(8);

// Repeated labels force branch-and-bound: chain a->b->a->b->...
void BM_LatencyRepeatedLabels(benchmark::State& state) {
  sim::Rng rng(13);
  const auto ops = static_cast<std::size_t>(state.range(0));
  const core::StaticSchedule sched = random_schedule(128, 2, rng);
  core::TaskGraph tg;
  core::OpId prev = graph::kInvalidNode;
  for (std::size_t i = 0; i < ops; ++i) {
    const core::OpId op = tg.add_op(static_cast<core::ElementId>(i % 2));
    if (prev != graph::kInvalidNode) tg.add_dep(prev, op);
    prev = op;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_latency(sched, tg));
  }
}
BENCHMARK(BM_LatencyRepeatedLabels)->Arg(2)->Arg(4)->Arg(6);

// Fork-join DAG embedding (greedy path, non-chain precedence).
void BM_LatencyForkJoin(benchmark::State& state) {
  sim::Rng rng(17);
  const auto width = static_cast<core::ElementId>(state.range(0));
  const core::StaticSchedule sched = random_schedule(512, width + 2, rng);
  core::TaskGraph tg;
  const core::OpId src = tg.add_op(width);
  const core::OpId snk = tg.add_op(width + 1);
  for (core::ElementId i = 0; i < width; ++i) {
    const core::OpId mid = tg.add_op(i);
    tg.add_dep(src, mid);
    tg.add_dep(mid, snk);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_latency(sched, tg));
  }
}
BENCHMARK(BM_LatencyForkJoin)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
