// E11 — ablation of the synthesis pipeline's optimization knobs.
//
// DESIGN.md calls out two design choices the constructive scheduler
// makes: (a) coalescing shared work before scheduling, (b) post-hoc
// schedule compaction. This harness ablates both on shared-suffix
// workloads (the Fig. 1 shape generalized) and reports busy fraction
// and schedule length for each combination — quantifying how much each
// pass contributes.
#include <cstdio>

#include "core/heuristic.hpp"
#include "core/optimize.hpp"
#include "sim/rng.hpp"

using namespace rtg;
using sim::Time;

namespace {

// k sensors feeding a shared weight-2 suffix, plus one sporadic chain.
core::GraphModel workload(std::size_t k, Time p) {
  core::CommGraph comm;
  std::vector<core::ElementId> ins;
  for (std::size_t i = 0; i < k; ++i) {
    ins.push_back(comm.add_element("in" + std::to_string(i), 1));
  }
  const auto fs = comm.add_element("fs", 2);
  const auto fk = comm.add_element("fk", 1);
  for (auto e : ins) comm.add_channel(e, fs);
  comm.add_channel(fs, fk);
  core::GraphModel model(std::move(comm));
  for (std::size_t i = 0; i < k; ++i) {
    core::TaskGraph tg;
    const auto a = tg.add_op(ins[i]);
    const auto b = tg.add_op(fs);
    const auto c = tg.add_op(fk);
    tg.add_dep(a, b);
    tg.add_dep(b, c);
    model.add_constraint(core::TimingConstraint{
        "C" + std::to_string(i), std::move(tg), p, p,
        core::ConstraintKind::kPeriodic});
  }
  return model;
}

struct Row {
  bool ok = false;
  double busy = 0.0;
  Time length = 0;
};

Row run(const core::GraphModel& model, bool coalesce, bool optimize) {
  core::HeuristicOptions opts;
  opts.coalesce = coalesce;
  const core::HeuristicResult h = core::latency_schedule(model, opts);
  Row row;
  if (!h.success) return row;
  core::StaticSchedule sched = *h.schedule;
  if (optimize) {
    sched = core::optimize_schedule(sched, h.scheduled_model);
  }
  row.ok = true;
  row.busy = sched.utilization();
  row.length = sched.length();
  return row;
}

}  // namespace

int main() {
  std::printf("E11: ablation — coalescing and schedule compaction\n");
  std::printf("(k sensors sharing a weight-2 suffix, period 24; busy fraction)\n\n");
  std::printf("%-4s %-12s %-12s %-12s %-12s\n", "k", "plain", "+coalesce",
              "+optimize", "+both");

  for (std::size_t k : {2, 3, 4}) {
    const core::GraphModel model = workload(k, 24);
    const Row plain = run(model, false, false);
    const Row co = run(model, true, false);
    const Row op = run(model, false, true);
    const Row both = run(model, true, true);
    auto cell = [](const Row& r) {
      static char buffers[4][32];
      static int next = 0;
      char* buf = buffers[next++ % 4];
      if (!r.ok) {
        std::snprintf(buf, 32, "failed");
      } else {
        std::snprintf(buf, 32, "%.3f/L%lld", r.busy, static_cast<long long>(r.length));
      }
      return buf;
    };
    std::printf("%-4zu %-12s %-12s %-12s %-12s\n", k, cell(plain), cell(co), cell(op),
                cell(both));
  }
  std::printf("\nColumns report busy-fraction / schedule length. Coalescing\n"
              "removes duplicated shared work before scheduling; compaction\n"
              "strips whatever over-provisioning survives it. Their sum is\n"
              "the gap between naive per-constraint servers and a lean\n"
              "static schedule.\n");
  return 0;
}
