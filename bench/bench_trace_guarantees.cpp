// E13 — why static schedules: guaranteed vs observed latency.
//
// The paper's thesis is that hard-real-time systems need *guarantees*
// about absolute timing, which latency scheduling provides by
// construction. This harness contrasts, for a shared functional
// element under growing background load:
//   * the static schedule's verified worst-case latency (a guarantee
//     that holds for every window, forever), and
//   * the latency a process-model EDF trace *happened* to provide over
//     a finite run (measured with finite_trace_latency), which degrades
//     and jitters as background load grows — fine on average, but
//     nothing a hard deadline can be certified against unless the
//     element's own process runs at a guaranteed rate.
#include <cstdio>

#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "rt/scheduler.hpp"

using namespace rtg;
using sim::Time;

int main() {
  std::printf("E13: guaranteed (static) vs observed (EDF trace) latency\n");
  std::printf("(watched element needs service; background tasks add load)\n\n");
  std::printf("%-14s %-18s %-18s\n", "bg_load", "static_latency", "edf_trace_latency");

  for (int bg = 0; bg <= 4; ++bg) {
    // Graph model: one async constraint on a unit element, deadline 12.
    core::CommGraph comm;
    comm.add_element("watched", 1);
    for (int i = 0; i < bg; ++i) {
      comm.add_element("bg" + std::to_string(i), 2);
    }
    core::GraphModel model(std::move(comm));
    {
      core::TaskGraph tg;
      tg.add_op(0);
      model.add_constraint(core::TimingConstraint{
          "W", std::move(tg), 6, 12, core::ConstraintKind::kAsynchronous});
    }
    for (int i = 0; i < bg; ++i) {
      core::TaskGraph tg;
      tg.add_op(static_cast<core::ElementId>(1 + i));
      model.add_constraint(core::TimingConstraint{
          "B" + std::to_string(i), std::move(tg), 10, 40,
          core::ConstraintKind::kAsynchronous});
    }
    const core::HeuristicResult synth = core::latency_schedule(model);
    long long static_latency = -1;
    if (synth.success && synth.report.verdicts[0].latency) {
      static_latency = static_cast<long long>(*synth.report.verdicts[0].latency);
    }

    // Process model: same workload as periodic EDF tasks; watched task
    // period 6 (its server rate), background period 10.
    rt::TaskSet ts;
    {
      rt::Task t;
      t.name = "watched";
      t.c = 1;
      t.p = 6;
      t.d = 6;
      ts.add(t);
    }
    for (int i = 0; i < bg; ++i) {
      rt::Task t;
      t.name = "bg";
      t.c = 2;
      t.p = 10;
      t.d = 10;
      ts.add(t);
    }
    const Time horizon = 600;
    const rt::SimResult sim = rt::simulate(ts, rt::Policy::kEdf, horizon);
    core::CommGraph trace_comm;
    trace_comm.add_element("watched", 1);
    for (int i = 0; i < bg; ++i) {
      trace_comm.add_element("bg" + std::to_string(i), 2);
    }
    core::TaskGraph watched;
    watched.add_op(0);
    const auto ops = core::ops_from_trace(sim.trace, trace_comm);
    const auto observed = core::finite_trace_latency(ops, horizon, watched);

    std::printf("%-14.2f %-18lld %-18lld\n",
                static_cast<double>(bg) * 0.2 + 1.0 / 6.0, static_latency,
                observed ? static_cast<long long>(*observed) : -1);
  }
  std::printf("\nThe static column is a certified bound (every window, any\n"
              "arrival pattern). The EDF column is an observation: it grows\n"
              "with load because EDF defers the watched task whenever its\n"
              "deadline allows, and no per-window guarantee exists beyond\n"
              "the task's own deadline.\n");
  return 0;
}
