// E6 — software pipelining enables feasibility and shrinks critical
// sections.
//
// A heavy shared element of weight w competes with an urgent
// single-slot constraint. Without pipelining the w-slot execution is
// non-preemptible and blocks the urgent deadline; decomposed into unit
// sub-functions the schedules interleave. Reported per w: heuristic
// verdicts with/without pipelining, the urgent constraint's measured
// latency, and (process-model view) the blocking-induced response-time
// inflation the monitors cause.
#include <cstdio>

#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "core/synthesis.hpp"
#include "rt/analysis.hpp"

using namespace rtg;
using sim::Time;

namespace {

core::GraphModel interference_model(Time heavy_weight) {
  core::CommGraph comm;
  comm.add_element("heavy", heavy_weight, true);
  comm.add_element("urgent", 1, true);
  core::GraphModel model(std::move(comm));
  core::TaskGraph heavy;
  heavy.add_op(0);
  model.add_constraint(core::TimingConstraint{
      "HEAVY", std::move(heavy), 50, 8 * heavy_weight,
      core::ConstraintKind::kAsynchronous});
  core::TaskGraph urgent;
  urgent.add_op(1);
  model.add_constraint(core::TimingConstraint{
      "URGENT", std::move(urgent), 10, 4, core::ConstraintKind::kAsynchronous});
  return model;
}

}  // namespace

int main() {
  std::printf("E6: software pipelining vs non-preemptible executions\n\n");
  std::printf("%-4s %-12s %-14s %-16s %-16s\n", "w", "pipelined", "unpipelined",
              "urgent_latency", "urgent_latency");
  std::printf("%-4s %-12s %-14s %-16s %-16s\n", "", "", "", "(pipelined)",
              "(unpipelined)");

  for (Time w : {1, 2, 3, 4, 6, 8}) {
    const core::GraphModel model = interference_model(w);

    core::HeuristicOptions with;
    with.pipeline = true;
    const core::HeuristicResult piped = core::latency_schedule(model, with);
    core::HeuristicOptions without;
    without.pipeline = false;
    const core::HeuristicResult raw = core::latency_schedule(model, without);

    auto urgent_latency = [](const core::HeuristicResult& r) -> long long {
      if (!r.success) return -1;
      for (const core::ConstraintVerdict& v : r.report.verdicts) {
        if (r.scheduled_model.constraint(v.constraint).name == "URGENT" && v.latency) {
          return static_cast<long long>(*v.latency);
        }
      }
      return -1;
    };

    std::printf("%-4lld %-12s %-14s %-16lld %-16lld\n", static_cast<long long>(w),
                piped.success ? "ok" : "failed", raw.success ? "ok" : "failed",
                urgent_latency(piped), urgent_latency(raw));
  }

  std::printf("\nProcess-model view: monitor critical sections before/after "
              "pipelining\n");
  std::printf("%-4s %-22s %-22s\n", "w", "blocking_unpipelined", "blocking_pipelined");
  for (Time w : {2, 4, 8}) {
    // Two constraints sharing the heavy element -> it gets a monitor.
    core::CommGraph comm;
    comm.add_element("shared", w, true);
    comm.add_element("a", 1);
    comm.add_element("b", 1);
    comm.add_channel(1, 0);
    comm.add_channel(2, 0);
    core::GraphModel model(std::move(comm));
    for (const char* name : {"A", "B"}) {
      core::TaskGraph tg;
      const auto in = tg.add_op(name[0] == 'A' ? 1 : 2);
      const auto sh = tg.add_op(0);
      tg.add_dep(in, sh);
      model.add_constraint(core::TimingConstraint{
          name, std::move(tg), 8 * w, 8 * w, core::ConstraintKind::kPeriodic});
    }
    const core::ProcessSynthesis raw = core::synthesize_processes(model, false);
    const core::ProcessSynthesis piped = core::synthesize_processes(model, true);
    std::printf("%-4lld %-22lld %-22lld\n", static_cast<long long>(w),
                static_cast<long long>(raw.task_set[0].critical_section),
                static_cast<long long>(piped.task_set[0].critical_section));
  }
  return 0;
}
