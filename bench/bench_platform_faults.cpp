// E24 — platform fault tolerance: healed vs blind deployments (ISSUE 10).
//
// Two measurements over the seeded mapped corpus:
//
//   1. Failure-rate sweep: for each (processor, link) failure-rate tier,
//      every corpus entry that deploys gets a seeded platform fault plan
//      (procfail / linkfail / linkdegrade) and is run twice over the
//      same horizon — blind (nominal tables frozen) and healed
//      (proof-checked migrations, keep-vs-reroute communication
//      rescheduling, reverts on repair). The metric is deadline windows
//      satisfied, plus the recovery action mix and proof volume.
//   2. Tolerance-target sweep: one representative platform, k = 0..2 —
//      scenario counts, migration-table coverage, and the wall cost of
//      proving every entry (deploy_tolerant re-verifies each cell on
//      the degraded platform; nothing is trusted from the nominal run).
//
// Every number is deterministic: fault decisions are pure hashes of
// (seed, resource, time) and the run loop is bit-identical across seam
// thread counts. Emits BENCH_platform_faults.json in the working
// directory.
#include <chrono>
#include <cstdio>
#include <vector>

#include "gen/generator.hpp"
#include "map/fault_tolerance.hpp"

namespace {

using namespace rtg;
using Time = core::Time;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct RateRow {
  double proc_rate = 0;
  double link_rate = 0;
  std::size_t deployed = 0;
  std::size_t windows_total = 0;
  std::size_t blind_ok = 0;
  std::size_t healed_ok = 0;
  std::size_t migrations = 0;
  std::size_t reroutes = 0;
  std::size_t reverts = 0;
  std::size_t outages = 0;
  std::size_t proof_checks = 0;
  std::size_t proof_failures = 0;
  std::size_t dominance_violations = 0;
  double healed_ms = 0;  // mean per healed run
};

struct KRow {
  std::size_t k = 0;
  std::size_t scenarios = 0;
  std::size_t covered = 0;
  std::size_t uncovered = 0;
  std::size_t standby = 0;
  bool tolerant = false;
  double deploy_ms = 0;
};

}  // namespace

int main() {
  constexpr std::uint64_t kSeeds = 32;
  constexpr Time kHorizon = 600;
  constexpr Time kRepair = 60;

  std::printf("E24: platform faults — blind deployment vs healed run loop\n\n");
  std::printf("corpus: %llu mapped seeds (bus/ring/partial-mesh), horizon %lld, "
              "repair %lld, k=1 standby\n\n",
              static_cast<unsigned long long>(kSeeds),
              static_cast<long long>(kHorizon), static_cast<long long>(kRepair));

  // --- 1. Failure-rate sweep ----------------------------------------------
  const double kTiers[][2] = {
      {0.001, 0.0005}, {0.002, 0.001}, {0.004, 0.002}, {0.008, 0.004}};
  std::printf("%-16s %-8s %-16s %-16s %-22s %-8s %-8s\n", "rate (proc/link)",
              "deploys", "blind ok", "healed ok", "migr/rert/revert/out",
              "proofs", "ms/run");
  std::vector<RateRow> rows;
  for (const auto& tier : kTiers) {
    RateRow row;
    row.proc_rate = tier[0];
    row.link_rate = tier[1];
    double healed_s = 0;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      const gen::Scenario scenario =
          gen::generate(gen::mapped_corpus_options(seed));
      if (!scenario.hardware.has_value()) continue;
      map::TolerantOptions topts;
      topts.k = 1;
      const map::TolerantDeployment td =
          map::deploy_tolerant(scenario.model, *scenario.hardware, topts);
      if (!td.success) continue;
      ++row.deployed;
      const core::FaultPlan plan = map::make_platform_fault_plan(
          seed * 2654435761u + 1, *scenario.hardware, kHorizon, tier[0],
          tier[1], kRepair, tier[1]);
      map::FaultRunOptions options;
      auto t0 = std::chrono::steady_clock::now();
      const map::PlatformFaultRun healed =
          map::run_deployment_with_faults(td, plan, kHorizon, options);
      healed_s += seconds_since(t0);
      options.heal = false;
      const map::PlatformFaultRun blind =
          map::run_deployment_with_faults(td, plan, kHorizon, options);
      row.windows_total += healed.windows_total;
      row.blind_ok += blind.windows_ok;
      row.healed_ok += healed.windows_ok;
      row.migrations += healed.migrations;
      row.reroutes += healed.reroutes;
      row.reverts += healed.reverts;
      row.outages += healed.outages;
      row.proof_checks += healed.proof_checks;
      row.proof_failures += healed.proof_failures;
      if (healed.windows_ok < blind.windows_ok) ++row.dominance_violations;
    }
    row.healed_ms = row.deployed > 0 ? 1e3 * healed_s / row.deployed : 0.0;
    rows.push_back(row);
    std::printf("%.4f/%-8.4f %-8zu %6zu/%-9zu %6zu/%-9zu %4zu/%zu/%zu/%-10zu "
                "%-8zu %.3f\n",
                row.proc_rate, row.link_rate, row.deployed, row.blind_ok,
                row.windows_total, row.healed_ok, row.windows_total,
                row.migrations, row.reroutes, row.reverts, row.outages,
                row.proof_checks, row.healed_ms);
    if (row.dominance_violations > 0) {
      std::fprintf(stderr, "DOMINANCE VIOLATION: %zu seeds healed < blind\n",
                   row.dominance_violations);
      return 1;
    }
    if (row.proof_failures > 0) {
      std::fprintf(stderr, "PROOF FAILURES: %zu activations failed re-proof\n",
                   row.proof_failures);
      return 1;
    }
  }

  // --- 2. Tolerance-target sweep ------------------------------------------
  // First corpus entry that deploys on >= 4 processors: enough platform
  // to make k=2 a real combinatorial obligation.
  gen::Scenario deep;
  bool have_deep = false;
  for (std::uint64_t seed = 0; seed < kSeeds && !have_deep; ++seed) {
    gen::Scenario scenario = gen::generate(gen::mapped_corpus_options(seed));
    if (!scenario.hardware.has_value() ||
        scenario.hardware->processors() < 4) {
      continue;
    }
    map::TolerantOptions topts;
    topts.k = 0;
    if (map::deploy_tolerant(scenario.model, *scenario.hardware, topts).success) {
      deep = std::move(scenario);
      have_deep = true;
    }
  }
  std::vector<KRow> krows;
  if (have_deep) {
    std::printf("\nk-sweep on a %zu-processor corpus platform:\n",
                deep.hardware->processors());
    std::printf("%-4s %-10s %-10s %-10s %-8s %-9s %-10s\n", "k", "scenarios",
                "covered", "uncovered", "standby", "tolerant", "deploy ms");
    for (std::size_t k = 0; k <= 2; ++k) {
      map::TolerantOptions topts;
      topts.k = k;
      auto t0 = std::chrono::steady_clock::now();
      const map::TolerantDeployment td =
          map::deploy_tolerant(deep.model, *deep.hardware, topts);
      KRow krow;
      krow.k = k;
      krow.scenarios = td.scenarios;
      krow.covered = td.table.entries.size();
      krow.uncovered = td.uncovered.size();
      krow.standby = td.standby.size();
      krow.tolerant = td.tolerant;
      krow.deploy_ms = 1e3 * seconds_since(t0);
      krows.push_back(krow);
      std::printf("%-4zu %-10zu %-10zu %-10zu %-8zu %-9s %.3f\n", krow.k,
                  krow.scenarios, krow.covered, krow.uncovered, krow.standby,
                  krow.tolerant ? "yes" : "no", krow.deploy_ms);
    }
  }

  std::FILE* out = std::fopen("BENCH_platform_faults.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_platform_faults.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"experiment\": \"E24_platform_faults\",\n");
  std::fprintf(out,
               "  \"workload\": {\"seeds\": %llu, \"horizon\": %lld, "
               "\"repair\": %lld, \"k\": 1},\n",
               static_cast<unsigned long long>(kSeeds),
               static_cast<long long>(kHorizon),
               static_cast<long long>(kRepair));
  std::fprintf(out, "  \"rate_sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RateRow& r = rows[i];
    std::fprintf(out,
                 "    {\"proc_rate\": %.4f, \"link_rate\": %.4f, "
                 "\"deployed\": %zu, \"windows_total\": %zu, "
                 "\"blind_ok\": %zu, \"healed_ok\": %zu, \"migrations\": %zu, "
                 "\"reroutes\": %zu, \"reverts\": %zu, \"outages\": %zu, "
                 "\"proof_checks\": %zu, \"proof_failures\": %zu, "
                 "\"healed_ms\": %.3f}%s\n",
                 r.proc_rate, r.link_rate, r.deployed, r.windows_total,
                 r.blind_ok, r.healed_ok, r.migrations, r.reroutes, r.reverts,
                 r.outages, r.proof_checks, r.proof_failures, r.healed_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"k_sweep\": [\n");
  for (std::size_t i = 0; i < krows.size(); ++i) {
    const KRow& r = krows[i];
    std::fprintf(out,
                 "    {\"k\": %zu, \"scenarios\": %zu, \"covered\": %zu, "
                 "\"uncovered\": %zu, \"standby\": %zu, \"tolerant\": %s, "
                 "\"deploy_ms\": %.3f}%s\n",
                 r.k, r.scenarios, r.covered, r.uncovered, r.standby,
                 r.tolerant ? "true" : "false", r.deploy_ms,
                 i + 1 < krows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\n# wrote BENCH_platform_faults.json\n");

  std::printf("\nExpected shape: healed dominates blind at every failure rate\n"
              "(enforced above — a violation fails the binary). The gap widens\n"
              "with the rate until outages cap it: migrations absorb processor\n"
              "failures while standby capacity holds, reroutes absorb link\n"
              "deaths while a surviving route exists, and the keep-vs-reroute\n"
              "rule leaves nominal tables in place when they still fit the\n"
              "degraded bandwidth. Every activation is re-proved; the proof\n"
              "column is the price of never trusting a stale witness.\n");
  return 0;
}
