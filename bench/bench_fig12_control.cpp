// E1 — Figure 1 / Figure 2 control system.
//
// The paper's only worked artifact is the control-system example; this
// harness regenerates it quantitatively: for a sweep of sampling-rate
// ratios it reports the synthesized static schedule, the measured
// latency of every constraint against its deadline, and the shared-work
// advantage over process-based synthesis (the paper's p_x = p_y
// remark).
#include <cstdio>

#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "core/runtime.hpp"
#include "core/synthesis.hpp"
#include "rt/scheduler.hpp"
#include "sim/rng.hpp"

using namespace rtg;
using sim::Time;

int main() {
  std::printf("E1: Figure 1/2 control system reproduction\n");
  std::printf("%-18s %-8s %-10s %-12s %-12s %-12s %-10s\n", "config", "sched_len",
              "busy%", "Z_latency", "Z_deadline", "worstZresp", "all_met");

  struct Config {
    const char* name;
    core::ControlSystemParams params;
  };
  core::ControlSystemParams base;
  Config configs[] = {
      {"paper-default", base},
      {"px=py=20", [] {
         core::ControlSystemParams p;
         p.py = p.dy = 20;
         return p;
       }()},
      {"fast-z(d=15)", [] {
         core::ControlSystemParams p;
         p.dz = 15;
         return p;
       }()},
      {"heavy-fs(c=4)", [] {
         core::ControlSystemParams p;
         p.cs = 4;
         return p;
       }()},
  };

  for (const Config& config : configs) {
    const core::GraphModel model = core::make_control_system(config.params);
    const core::HeuristicResult synth = core::latency_schedule(model);
    if (!synth.success) {
      std::printf("%-18s synthesis failed: %s\n", config.name,
                  synth.failure_reason.c_str());
      continue;
    }
    sim::Rng rng(1);
    core::ConstraintArrivals arrivals(3);
    arrivals[2] = rt::max_rate_arrivals(config.params.pz, 4000);
    const core::ExecutiveResult run =
        core::run_executive(*synth.schedule, synth.scheduled_model, arrivals, 4200);
    Time worst_z = 0;
    for (const core::InvocationRecord& rec : run.invocations) {
      if (rec.constraint == 2 && rec.completed) {
        worst_z = std::max(worst_z, *rec.response_time());
      }
    }
    const auto& z_verdict = synth.report.verdicts[2];
    std::printf("%-18s %-8lld %-10.1f %-12lld %-12lld %-12lld %-10s\n", config.name,
                static_cast<long long>(synth.schedule->length()),
                100.0 * synth.schedule->utilization(),
                z_verdict.latency ? static_cast<long long>(*z_verdict.latency) : -1,
                static_cast<long long>(config.params.dz),
                static_cast<long long>(worst_z), run.all_met ? "yes" : "NO");
  }

  // Shared-work comparison at p_x = p_y (the paper's remark), on the
  // periodic part X + Y whose f_S/f_K suffix is shared.
  std::printf("\nShared-work comparison at px = py = 20, X and Y only\n"
              "(busy slots per slot):\n");
  core::CommGraph comm;
  const auto fx = comm.add_element("fx", 1);
  const auto fy = comm.add_element("fy", 1);
  const auto fs = comm.add_element("fs", 2);
  const auto fk = comm.add_element("fk", 1);
  comm.add_channel(fx, fs);
  comm.add_channel(fy, fs);
  comm.add_channel(fs, fk);
  core::GraphModel xy(std::move(comm));
  for (auto [name, in] : {std::pair{"X", fx}, std::pair{"Y", fy}}) {
    core::TaskGraph tg;
    const auto a = tg.add_op(in);
    const auto b = tg.add_op(fs);
    const auto c = tg.add_op(fk);
    tg.add_dep(a, b);
    tg.add_dep(b, c);
    xy.add_constraint(core::TimingConstraint{name, std::move(tg), 20, 20,
                                             core::ConstraintKind::kPeriodic});
  }
  const core::ProcessSynthesis procs = core::synthesize_processes(xy);
  std::printf("  process model (fs, fk run twice/period): %.3f\n",
              static_cast<double>(procs.work_per_hyperperiod) /
                  static_cast<double>(procs.hyperperiod));
  core::HeuristicOptions opts;
  opts.coalesce = true;
  const core::HeuristicResult merged = core::latency_schedule(xy, opts);
  if (merged.success) {
    std::printf("  coalesced latency schedule (once/period): %.3f\n",
                merged.schedule->utilization());
  }
  return 0;
}
