// E19 — fault injection and self-healing recovery (ISSUE 5).
//
// Two measurements over the sense->ctrl loop model (one periodic
// end-to-end chain, one sporadic command stream) with a primary and a
// verified fallback schedule:
//
//   1. Drop-rate sweep: for each dispatch-loss rate, the blind
//      table-driven executive (run_executive_with_faults) vs the
//      self-healing executive (retry + resync + verified hot failover)
//      — invocation survival, recovery action mix, and the
//      detection-to-recovery latency distribution.
//   2. Composite scenario: a startup dispatch blackout, mid-run clock
//      drift, and a corrupting element — the docs/FAULTS.md example
//      plan — comparing survival and wall time (the price of the
//      online monitor + recovery machinery over the blind loop).
//
// Every number is deterministic: fault decisions are pure hashes of
// (seed, spec, element, time), and recovery decisions are bit-identical
// across verifier thread counts. Emits BENCH_faults.json in the
// working directory.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/fault_injection.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "rt/recovery.hpp"
#include "rt/scheduler.hpp"

namespace {

using namespace rtg;
using Time = core::Time;

core::GraphModel loop_model() {
  core::CommGraph comm;
  const auto sense = comm.add_element("sense", 1);
  const auto ctrl = comm.add_element("ctrl", 1);
  comm.add_channel(sense, ctrl);
  core::GraphModel model(std::move(comm));
  core::TaskGraph chain;
  const auto op_s = chain.add_op(sense);
  const auto op_c = chain.add_op(ctrl);
  chain.add_dep(op_s, op_c);
  model.add_constraint(core::TimingConstraint{
      "LOOP", std::move(chain), 8, 8, core::ConstraintKind::kPeriodic});
  core::TaskGraph cmd;
  cmd.add_op(sense);
  model.add_constraint(core::TimingConstraint{
      "CMD", std::move(cmd), 6, 12, core::ConstraintKind::kAsynchronous});
  return model;
}

core::StaticSchedule primary() {
  core::StaticSchedule s;  // sense ctrl . sense . . . .
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  s.push_idle(1);
  s.push_execution(0, 1);
  s.push_idle(4);
  return s;
}

core::StaticSchedule fallback() {
  core::StaticSchedule s;  // sense ctrl . . sense . . .
  s.push_execution(0, 1);
  s.push_execution(1, 1);
  s.push_idle(2);
  s.push_execution(0, 1);
  s.push_idle(3);
  return s;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SweepRow {
  double rate = 0;
  std::size_t invocations = 0;
  std::size_t baseline_ok = 0;
  std::size_t healed_ok = 0;
  std::size_t faulted_ops = 0;
  std::size_t retries_ok = 0;
  std::size_t retries_abandoned = 0;
  std::size_t failovers = 0;
  double mean_d2r = 0;
  Time max_d2r = 0;
};

}  // namespace

int main() {
  const core::GraphModel model = loop_model();
  const Time horizon = 4000;
  core::ConstraintArrivals arrivals(2);
  arrivals[1] = rt::max_rate_arrivals(6, horizon);
  const rt::FailoverTable table =
      rt::compute_failover_table(model, {primary(), fallback()});

  std::printf("E19: fault injection — blind executive vs self-healing\n\n");
  std::printf("model: LOOP periodic p=8 d=8 (sense->ctrl), CMD sporadic "
              "s=6 d=12; horizon %lld\n",
              static_cast<long long>(horizon));
  std::printf("failover: grid %lld, %zu admissible cells 0->1, %zu cells 1->0\n\n",
              static_cast<long long>(table.grid), table.admissible_count(0, 1),
              table.admissible_count(1, 0));

  // --- 1. Drop-rate sweep -------------------------------------------------
  std::printf("%-8s %-14s %-14s %-8s %-10s %-10s %-10s %-8s\n", "rate",
              "blind ok", "healed ok", "faults", "retries", "gave-up",
              "failovers", "d2r");
  std::vector<SweepRow> rows;
  for (const double rate : {0.05, 0.15, 0.30, 0.50}) {
    core::FaultPlan plan;
    plan.seed = 19;
    plan.faults.push_back(core::FaultSpec{.kind = core::FaultKind::kDrop,
                                          .begin = 0,
                                          .end = horizon,
                                          .rate = rate,
                                          .element = 0});
    const core::FaultRunResult blind =
        core::run_executive_with_faults(primary(), model, arrivals, horizon, plan);
    rt::SelfHealingConfig config;
    config.faults = plan;
    const rt::SelfHealingResult healed =
        rt::run_self_healing(model, table, arrivals, horizon, config);
    SweepRow row;
    row.rate = rate;
    row.invocations = blind.executive.invocations.size();
    row.baseline_ok = blind.satisfied_count();
    for (const core::InvocationRecord& r : healed.executive.invocations) {
      row.healed_ok += r.satisfied ? 1 : 0;
    }
    row.faulted_ops = healed.counters.faulted_ops();
    row.retries_ok = healed.retries_succeeded;
    row.retries_abandoned = healed.retries_abandoned;
    row.failovers = healed.failovers();
    row.mean_d2r = healed.mean_detection_to_recovery;
    row.max_d2r = healed.max_detection_to_recovery;
    rows.push_back(row);
    std::printf("%-8.2f %5zu/%-8zu %5zu/%-8zu %-8zu %-10zu %-10zu %-10zu "
                "%.1f/%lld\n",
                rate, row.baseline_ok, row.invocations, row.healed_ok,
                row.invocations, row.faulted_ops, row.retries_ok,
                row.retries_abandoned, row.failovers, row.mean_d2r,
                static_cast<long long>(row.max_d2r));
  }

  // --- 2. Composite scenario + wall time ----------------------------------
  core::FaultPlan composite;
  composite.seed = 7;
  composite.faults.push_back(core::FaultSpec{.kind = core::FaultKind::kDrop,
                                             .begin = 0,
                                             .end = 9,
                                             .rate = 1.0,
                                             .element = 0});
  composite.faults.push_back(core::FaultSpec{
      .kind = core::FaultKind::kClockDrift, .begin = 100, .end = 400, .magnitude = 64});
  composite.faults.push_back(core::FaultSpec{.kind = core::FaultKind::kCorrupt,
                                             .begin = 400,
                                             .end = 700,
                                             .rate = 0.15,
                                             .element = 0});

  const int kReps = 50;
  auto t0 = std::chrono::steady_clock::now();
  std::size_t blind_ok = 0, blind_total = 0;
  for (int i = 0; i < kReps; ++i) {
    const core::FaultRunResult blind = core::run_executive_with_faults(
        primary(), model, arrivals, horizon, composite);
    blind_ok = blind.satisfied_count();
    blind_total = blind.executive.invocations.size();
  }
  const double blind_s = seconds_since(t0) / kReps;

  t0 = std::chrono::steady_clock::now();
  std::size_t healed_ok = 0;
  std::size_t failovers = 0;
  double mean_d2r = 0;
  for (int i = 0; i < kReps; ++i) {
    rt::SelfHealingConfig config;
    config.faults = composite;
    const rt::SelfHealingResult healed =
        rt::run_self_healing(model, table, arrivals, horizon, config);
    healed_ok = 0;
    for (const core::InvocationRecord& r : healed.executive.invocations) {
      healed_ok += r.satisfied ? 1 : 0;
    }
    failovers = healed.failovers();
    mean_d2r = healed.mean_detection_to_recovery;
  }
  const double healed_s = seconds_since(t0) / kReps;

  std::printf("\ncomposite plan (blackout + drift + corruption):\n");
  std::printf("  blind    %zu/%zu satisfied, %.3f ms per run\n", blind_ok,
              blind_total, 1e3 * blind_s);
  std::printf("  healed   %zu/%zu satisfied, %zu failovers, mean d2r %.1f, "
              "%.3f ms per run (%.1fx blind)\n",
              healed_ok, blind_total, failovers, mean_d2r, 1e3 * healed_s,
              healed_s / blind_s);

  std::FILE* out = std::fopen("BENCH_faults.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_faults.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"experiment\": \"E19_fault_recovery\",\n");
  std::fprintf(out,
               "  \"workload\": {\"horizon\": %lld, \"constraints\": 2, "
               "\"failover_grid\": %lld, \"admissible_0_to_1\": %zu},\n",
               static_cast<long long>(horizon), static_cast<long long>(table.grid),
               table.admissible_count(0, 1));
  std::fprintf(out, "  \"drop_sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"rate\": %.2f, \"invocations\": %zu, \"blind_ok\": %zu, "
                 "\"healed_ok\": %zu, \"faulted_ops\": %zu, \"retries_ok\": %zu, "
                 "\"retries_abandoned\": %zu, \"failovers\": %zu, "
                 "\"mean_detection_to_recovery\": %.3f, "
                 "\"max_detection_to_recovery\": %lld}%s\n",
                 r.rate, r.invocations, r.baseline_ok, r.healed_ok, r.faulted_ops,
                 r.retries_ok, r.retries_abandoned, r.failovers, r.mean_d2r,
                 static_cast<long long>(r.max_d2r),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"composite\": {\"blind_ok\": %zu, \"healed_ok\": %zu, "
               "\"invocations\": %zu, \"failovers\": %zu, "
               "\"mean_detection_to_recovery\": %.3f, \"blind_ms\": %.3f, "
               "\"healed_ms\": %.3f, \"overhead\": %.3f}\n",
               blind_ok, healed_ok, blind_total, failovers, mean_d2r, 1e3 * blind_s,
               1e3 * healed_s, healed_s / blind_s);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("# wrote BENCH_faults.json\n");

  std::printf("\nExpected shape: the healed column dominates blind at every\n"
              "drop rate — retries resurrect most invalidated windows and the\n"
              "residue is windows whose recovery bound cannot hold (LOOP's\n"
              "d = p leaves no slack). Detection-to-recovery grows with the\n"
              "rate as backoff escalates; the self-healing overhead stays a\n"
              "small multiple of the blind dispatch loop.\n");
  return 0;
}
