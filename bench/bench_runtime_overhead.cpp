// E7 — "the run-time scheduler is very efficient once a feasible static
// schedule has been found off-line."
//
// google-benchmark microbenchmarks of per-slot dispatch cost:
//   * static executive: advance a cursor through the schedule table;
//   * EDF / LLF online schedulers: maintain a ready set and pick by
//     deadline / laxity each slot.
// The static dispatcher is O(1) per op with no comparisons; the online
// policies pay a ready-queue scan per slot.
#include <benchmark/benchmark.h>

#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "rt/scheduler.hpp"

using namespace rtg;

namespace {

// A static schedule for the control system, built once.
const core::StaticSchedule& control_schedule() {
  static const core::HeuristicResult result = [] {
    core::HeuristicResult r = core::latency_schedule(core::make_control_system());
    if (!r.success) std::abort();
    return r;
  }();
  return *result.schedule;
}

void BM_StaticDispatch(benchmark::State& state) {
  const core::StaticSchedule& sched = control_schedule();
  const auto& entries = sched.entries();
  std::size_t cursor = 0;
  std::uint64_t executed = 0;
  for (auto _ : state) {
    // One dispatch: table lookup + cursor advance (wrap at the end).
    const core::ScheduleEntry& entry = entries[cursor];
    executed += static_cast<std::uint64_t>(entry.duration);
    if (++cursor == entries.size()) cursor = 0;
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StaticDispatch);

rt::TaskSet process_set(std::size_t n) {
  rt::TaskSet ts;
  for (std::size_t i = 0; i < n; ++i) {
    rt::Task t;
    t.name = "t" + std::to_string(i);
    t.p = static_cast<sim::Time>(8 + 4 * i);
    t.c = 1 + static_cast<sim::Time>(i % 2);
    t.d = t.p;
    ts.add(t);
  }
  return ts;
}

void BM_OnlineScheduler(benchmark::State& state, rt::Policy policy) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const rt::TaskSet ts = process_set(n);
  const sim::Time horizon = 4096;
  for (auto _ : state) {
    const rt::SimResult r = rt::simulate(ts, policy, horizon);
    benchmark::DoNotOptimize(r.jobs.data());
  }
  // Report per-slot cost.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * horizon);
}

void BM_EdfDispatch(benchmark::State& state) {
  BM_OnlineScheduler(state, rt::Policy::kEdf);
}
void BM_LlfDispatch(benchmark::State& state) {
  BM_OnlineScheduler(state, rt::Policy::kLlf);
}
BENCHMARK(BM_EdfDispatch)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_LlfDispatch)->Arg(4)->Arg(8)->Arg(16);

// Off-line synthesis cost, for contrast with dispatch cost.
void BM_OfflineSynthesis(benchmark::State& state) {
  const core::GraphModel model = core::make_control_system();
  for (auto _ : state) {
    const core::HeuristicResult r = core::latency_schedule(model);
    benchmark::DoNotOptimize(r.success);
  }
}
BENCHMARK(BM_OfflineSynthesis);

}  // namespace

BENCHMARK_MAIN();
