// E9 — process-model substrate sanity ([MOK 83] baselines).
//
// Classic schedulability-vs-utilization curves for the process-based
// scheduling layer the paper builds on: acceptance rate of random
// implicit-deadline task sets under the Liu-Layland RM utilization
// test, exact RM response-time analysis, and EDF (exact), plus
// simulation cross-checks. Expected shape: EDF accepts up to U = 1, RM
// exact sits between the LL bound and 1, and simulation agrees with
// analysis everywhere.
#include <cmath>
#include <cstdio>
#include <vector>

#include "rt/analysis.hpp"
#include "rt/scheduler.hpp"
#include "sim/rng.hpp"

using namespace rtg;
using sim::Time;

namespace {

// UUniFast-style: random task set of n tasks with total utilization U.
rt::TaskSet random_taskset(std::size_t n, double target_u, sim::Rng& rng) {
  std::vector<double> utils;
  double sum = target_u;
  for (std::size_t i = 1; i < n; ++i) {
    const double next = sum * std::pow(rng.uniform01(), 1.0 / static_cast<double>(n - i));
    utils.push_back(sum - next);
    sum = next;
  }
  utils.push_back(sum);

  // Periods from a divisor-friendly menu so hyperperiods (and hence
  // exact simulation horizons) stay bounded by 960 slots.
  static constexpr Time kPeriods[] = {8, 10, 12, 16, 24, 32, 40, 48, 64, 80, 96};
  rt::TaskSet ts;
  for (double u : utils) {
    rt::Task t;
    t.p = kPeriods[static_cast<std::size_t>(
        rng.uniform(0, static_cast<Time>(std::size(kPeriods)) - 1))];
    t.c = std::max<Time>(1, static_cast<Time>(u * static_cast<double>(t.p) + 0.5));
    t.d = t.p;
    ts.add(t);
  }
  return ts;
}

}  // namespace

int main() {
  std::printf("E9: schedulability vs utilization (n=5 tasks, implicit deadlines,\n"
              "     200 random sets per bucket; percent accepted)\n\n");
  std::printf("%-6s %-8s %-10s %-8s %-10s %-10s\n", "U", "RM_LL", "RM_exact", "EDF",
              "sim_RM", "sim_EDF");

  sim::Rng rng(4242);
  const int trials = 200;
  for (double u = 0.5; u <= 1.001; u += 0.05) {
    int ll = 0, rm = 0, edf = 0, sim_rm = 0, sim_edf = 0;
    for (int t = 0; t < trials; ++t) {
      const rt::TaskSet ts = random_taskset(5, u, rng);
      if (ts.utilization() > 1.0) {
        // c rounding can push past 1; such sets are genuinely overloaded
        // and count as rejections everywhere.
        continue;
      }
      if (rt::rm_utilization_test(ts)) ++ll;
      if (rt::fixed_priority_schedulable(ts, rt::PriorityOrder::kRateMonotonic)) ++rm;
      if (rt::edf_schedulable(ts)) ++edf;
      const Time horizon = std::min<Time>(ts.hyperperiod(), 40000);
      if (rt::simulate(ts, rt::Policy::kRm, horizon).miss_count() == 0) ++sim_rm;
      if (rt::simulate(ts, rt::Policy::kEdf, horizon).miss_count() == 0) ++sim_edf;
    }
    std::printf("%-6.2f %-8.1f %-10.1f %-8.1f %-10.1f %-10.1f\n", u,
                100.0 * ll / trials, 100.0 * rm / trials, 100.0 * edf / trials,
                100.0 * sim_rm / trials, 100.0 * sim_edf / trials);
  }
  std::printf("\nExpected: RM_LL <= RM_exact <= sim_RM-ish and EDF ~= sim_EDF "
              "~= 100%% for U <= 1 (hyperperiod-truncated simulation can\n"
              "over-accept slightly).\n");
  return 0;
}
