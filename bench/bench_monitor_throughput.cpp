// E18 — online monitor throughput and capture overhead (ISSUE 4).
//
// Three measurements:
//   1. Streaming vs naive: the StreamingMonitor consuming long cyclic
//      traces slot by slot vs the per-window offline reference checker
//      (reference_check — one embedding query per evaluable window,
//      the pre-monitor way to get the same verdicts). Verdicts are
//      checked bit-identical before timing. The workload mixes clean
//      feasible traces with degraded ones (random slots dropped to
//      idle) so both the satisfied and the violated paths are hot.
//   2. The memory bound: per-constraint peak buffered executions
//      against the d_c + 1 analytical bound (starts of live ops span
//      less than one deadline, executions occupy disjoint slots).
//   3. Capture: slots/s through the lock-free TraceCapture ring into a
//      null sink (ring cost alone, drops allowed and counted) and into
//      a StreamingMonitor (end-to-end online checking).
// Emits BENCH_monitor.json in the working directory.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "monitor/streaming_monitor.hpp"
#include "monitor/trace_capture.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace {

using namespace rtg;
using core::GraphModel;
using Time = core::Time;

struct MonitorCase {
  GraphModel model;
  sim::ExecutionTrace trace;
};

// Feasible random models whose static schedules are unrolled into
// ~target_slots-long traces. Task graphs are chains of 2–4 operations
// along a chain communication graph (the E17 sweep's shape): embedding
// queries then cost real work, which is exactly what the per-window
// baseline pays once per slot and the streaming monitor pays once per
// relevant execution. Half the cases are degraded by dropping 5% of
// slots to idle — what a lossy capture does — so the violation path is
// hot too.
std::vector<MonitorCase> make_cases(int count, Time target_slots) {
  std::vector<MonitorCase> cases;
  sim::Rng rng(0xE18);
  while (static_cast<int>(cases.size()) < count) {
    core::CommGraph comm;
    const int n = static_cast<int>(rng.uniform(12, 16));
    for (int i = 0; i < n; ++i) {
      comm.add_element("e" + std::to_string(i), 1, true);
    }
    for (int i = 0; i + 1 < n; ++i) {
      comm.add_channel(static_cast<core::ElementId>(i),
                       static_cast<core::ElementId>(i + 1));
    }
    GraphModel model(std::move(comm));
    const int k = static_cast<int>(rng.uniform(3, 4));
    for (int c = 0; c < k; ++c) {
      const int chain = static_cast<int>(rng.uniform(3, 4));
      const int start = static_cast<int>(rng.uniform(0, n - chain));
      core::TaskGraph tg;
      core::OpId prev = tg.add_op(static_cast<core::ElementId>(start));
      for (int j = 1; j < chain; ++j) {
        const core::OpId op = tg.add_op(static_cast<core::ElementId>(start + j));
        tg.add_dep(prev, op);
        prev = op;
      }
      const auto kind = rng.chance(0.3) ? core::ConstraintKind::kPeriodic
                                        : core::ConstraintKind::kAsynchronous;
      model.add_constraint(core::TimingConstraint{
          "c" + std::to_string(c), std::move(tg), rng.uniform(8, 16),
          rng.uniform(static_cast<Time>(16 * chain), static_cast<Time>(24 * chain)),
          kind});
    }
    const core::HeuristicResult h = core::latency_schedule(model);
    if (!h.success) continue;
    const Time length = h.schedule->length();
    const auto reps = static_cast<std::size_t>((target_slots + length - 1) / length);
    sim::ExecutionTrace trace = h.schedule->to_trace(reps);
    if (cases.size() % 2 == 1) {
      // Degrade: drop slots to idle (what capture overflow does).
      std::vector<sim::Slot> slots = trace.slots();
      for (sim::Slot& s : slots) {
        if (rng.chance(0.05)) s = sim::kIdle;
      }
      trace = sim::ExecutionTrace(std::move(slots));
    }
    cases.push_back(MonitorCase{h.scheduled_model, std::move(trace)});
  }
  return cases;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// The naive online checker: no incremental state. Every time a window
// closes it re-decodes the window's slots into executions and runs a
// fresh embedding query — O(d) work per window per constraint, which
// is what "re-verify on every slot" costs before the streaming
// monitor's amortization. Requires unit element weights (window-local
// run decoding is only equivalent to whole-trace decoding when runs
// cannot straddle the window edge mid-execution), which make_cases
// guarantees.
monitor::ReferenceVerdict naive_online_check(const sim::ExecutionTrace& trace,
                                             const GraphModel& model) {
  monitor::ReferenceVerdict verdict;
  const auto horizon = static_cast<Time>(trace.size());
  verdict.horizon = horizon;
  verdict.violated.resize(model.constraint_count());
  verdict.checked.resize(model.constraint_count());
  const std::vector<sim::Slot>& slots = trace.slots();
  std::vector<core::ScheduledOp> ops;
  for (Time now = 1; now <= horizon; ++now) {
    for (std::size_t ci = 0; ci < model.constraint_count(); ++ci) {
      const core::TimingConstraint& c = model.constraint(ci);
      const Time stride = c.periodic() ? c.period : 1;
      const Time t = now - c.deadline;
      if (t < 0 || t % stride != 0) continue;
      ops.clear();
      for (Time i = t; i < now; ++i) {
        const sim::Slot s = slots[static_cast<std::size_t>(i)];
        if (s == sim::kIdle) continue;
        ops.push_back(core::ScheduledOp{static_cast<core::ElementId>(s), i, 1});
      }
      ++verdict.checked[ci];
      if (!core::window_contains_execution(c.task_graph, ops, t, now)) {
        verdict.violated[ci].push_back(t);
      }
    }
  }
  return verdict;
}

struct NullSink final : sim::TraceSink {
  void on_slot(sim::Slot) override {}
};

}  // namespace

int main() {
  constexpr int kCases = 8;
  constexpr Time kTargetSlots = 20'000;
  constexpr int kReps = 5;
  constexpr std::uint64_t kCaptureSlots = 1 << 20;  // ~1M

  std::setvbuf(stdout, nullptr, _IONBF, 0);  // progress visible when redirected

  const auto cases = make_cases(kCases, kTargetSlots);
  std::uint64_t total_slots = 0;
  std::size_t total_constraints = 0;
  for (const MonitorCase& c : cases) {
    total_slots += c.trace.size();
    total_constraints += c.model.constraint_count();
  }
  std::printf("# E18: %d cases, %llu slots, %zu constraints total, %d reps\n",
              kCases, static_cast<unsigned long long>(total_slots),
              total_constraints, kReps);

  // Correctness first: the streaming monitor, the naive online checker,
  // and the offline batch reference must all agree bit for bit.
  std::size_t violated_windows = 0;
  std::size_t peak_ops_total = 0, bound_total = 0;
  bool within_bound = true;
  for (const MonitorCase& c : cases) {
    monitor::StreamingMonitor mon(c.model);
    mon.on_slots(c.trace.slots());
    const monitor::MonitorReport report = mon.report();
    const monitor::ReferenceVerdict batch = monitor::reference_check(c.trace, c.model);
    const monitor::ReferenceVerdict online = naive_online_check(c.trace, c.model);
    if (!monitor::verdicts_match(report, batch) ||
        batch.violated != online.violated || batch.checked != online.checked) {
      std::fprintf(stderr, "streaming verdicts diverged from the reference!\n");
      return 1;
    }
    for (std::size_t i = 0; i < report.health.size(); ++i) {
      violated_windows += report.health[i].windows_violated;
      const auto bound = static_cast<std::size_t>(c.model.constraint(i).deadline) + 1;
      peak_ops_total += report.health[i].peak_buffered_ops;
      bound_total += bound;
      if (report.health[i].peak_buffered_ops > bound) within_bound = false;
    }
  }
  std::printf("# verdicts bit-identical to reference; %zu violated windows in workload\n",
              violated_windows);
  std::printf("memory: peak buffered ops %zu vs O(d * constraints) bound %zu -> %s\n",
              peak_ops_total, bound_total, within_bound ? "within" : "EXCEEDED");
  if (!within_bound) return 1;

  // 1. Naive online checking: re-decode + re-query per closed window.
  auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    for (const MonitorCase& c : cases) {
      const monitor::ReferenceVerdict v = naive_online_check(c.trace, c.model);
      if (v.horizon != static_cast<Time>(c.trace.size())) return 1;
    }
  }
  const double naive_s = seconds_since(t0);

  // 2. The offline batch reference (decode once, one query per window).
  t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    for (const MonitorCase& c : cases) {
      const monitor::ReferenceVerdict v = monitor::reference_check(c.trace, c.model);
      if (v.horizon != static_cast<Time>(c.trace.size())) return 1;
    }
  }
  const double batch_s = seconds_since(t0);

  // 3. Streaming monitor over the same traces.
  t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    for (const MonitorCase& c : cases) {
      monitor::StreamingMonitor mon(c.model);
      mon.on_slots(c.trace.slots());
      if (mon.report().horizon != static_cast<Time>(c.trace.size())) return 1;
    }
  }
  const double streaming_s = seconds_since(t0);

  const double reps_slots = static_cast<double>(total_slots) * kReps;
  const double naive_rate = naive_s > 0 ? reps_slots / naive_s : 0;
  const double batch_rate = batch_s > 0 ? reps_slots / batch_s : 0;
  const double streaming_rate = streaming_s > 0 ? reps_slots / streaming_s : 0;
  const double speedup = streaming_s > 0 ? naive_s / streaming_s : 0;
  const double batch_speedup = streaming_s > 0 ? batch_s / streaming_s : 0;
  std::printf("naive online (re-verify per window): %.4fs (%.0f slots/s)\n", naive_s,
              naive_rate);
  std::printf("offline batch reference:             %.4fs (%.0f slots/s)\n", batch_s,
              batch_rate);
  std::printf("streaming monitor:                   %.4fs (%.0f slots/s)\n",
              streaming_s, streaming_rate);
  std::printf("speedup vs naive online %.2fx, vs offline batch %.2fx\n", speedup,
              batch_speedup);

  // 3. Capture ring throughput.
  const std::vector<sim::Slot> pattern{0, 1, sim::kIdle, sim::kIdle};
  double ring_s = 0;
  std::uint64_t ring_dropped = 0;
  {
    NullSink null;
    monitor::TraceCapture capture(null, 1024);
    t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kCaptureSlots; ++i) {
      capture.on_slot(pattern[i & 3]);
    }
    capture.close();
    ring_s = seconds_since(t0);
    ring_dropped = capture.stats().dropped;
  }
  const double ring_rate = ring_s > 0 ? static_cast<double>(kCaptureSlots) / ring_s : 0;
  std::printf("capture -> null sink: %.4fs (%.0f slots/s, %llu dropped of %llu)\n",
              ring_s, ring_rate, static_cast<unsigned long long>(ring_dropped),
              static_cast<unsigned long long>(kCaptureSlots));

  double live_s = 0;
  std::uint64_t live_dropped = 0;
  std::size_t live_violated = 0;
  {
    core::CommGraph comm;
    const auto a = comm.add_element("a", 1);
    const auto b = comm.add_element("b", 1);
    comm.add_channel(a, b);
    GraphModel model(std::move(comm));
    core::TaskGraph tg;
    const auto oa = tg.add_op(a);
    const auto ob = tg.add_op(b);
    tg.add_dep(oa, ob);
    model.add_constraint(core::TimingConstraint{
        "chain", std::move(tg), 1, 6, core::ConstraintKind::kAsynchronous});
    monitor::StreamingMonitor mon(model);
    // Ring sized past the workload: on a single-core host the producer
    // outruns the drain thread, and a lossy run would measure drop
    // flushing instead of end-to-end checking.
    monitor::TraceCapture capture(mon, kCaptureSlots + 1);
    t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kCaptureSlots; ++i) {
      capture.on_slot(pattern[i & 3]);
    }
    capture.close();
    live_s = seconds_since(t0);
    live_dropped = capture.stats().dropped;
    for (const monitor::ConstraintHealth& h : mon.report().health) {
      live_violated += h.windows_violated;
    }
  }
  const double live_rate = live_s > 0 ? static_cast<double>(kCaptureSlots) / live_s : 0;
  std::printf("capture -> monitor:   %.4fs (%.0f slots/s, %llu dropped, "
              "%zu violated windows)\n",
              live_s, live_rate, static_cast<unsigned long long>(live_dropped),
              live_violated);

  std::FILE* out = std::fopen("BENCH_monitor.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_monitor.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"experiment\": \"E18_monitor_throughput\",\n");
  std::fprintf(out,
               "  \"workload\": {\"cases\": %d, \"slots\": %llu, \"constraints\": %zu, "
               "\"reps\": %d, \"violated_windows\": %zu},\n",
               kCases, static_cast<unsigned long long>(total_slots), total_constraints,
               kReps, violated_windows);
  std::fprintf(out,
               "  \"naive_online\": {\"s\": %.6f, \"slots_per_s\": %.0f},\n"
               "  \"offline_batch\": {\"s\": %.6f, \"slots_per_s\": %.0f},\n"
               "  \"streaming\": {\"s\": %.6f, \"slots_per_s\": %.0f},\n"
               "  \"speedup_vs_naive\": %.3f,\n  \"speedup_vs_batch\": %.3f,\n",
               naive_s, naive_rate, batch_s, batch_rate, streaming_s, streaming_rate,
               speedup, batch_speedup);
  std::fprintf(out,
               "  \"memory\": {\"peak_buffered_ops\": %zu, \"bound\": %zu, "
               "\"within_bound\": %s},\n",
               peak_ops_total, bound_total, within_bound ? "true" : "false");
  std::fprintf(out,
               "  \"capture\": {\"slots\": %llu, \"null_sink_slots_per_s\": %.0f, "
               "\"null_sink_dropped\": %llu, \"monitor_slots_per_s\": %.0f, "
               "\"monitor_dropped\": %llu}\n}\n",
               static_cast<unsigned long long>(kCaptureSlots), ring_rate,
               static_cast<unsigned long long>(ring_dropped), live_rate,
               static_cast<unsigned long long>(live_dropped));
  std::fclose(out);
  std::printf("# wrote BENCH_monitor.json\n");
  return speedup >= 5.0 ? 0 : 1;
}
