// tournament.hpp — the differential synthesis tournament.
//
// Runs every engine the repo has over a generated scenario and
// cross-checks the verdicts against each other:
//
//   * exact_feasible (the Theorem-1 game) on the pipelined model,
//   * latency_schedule (the Theorem-3 constructive heuristic),
//   * verify_schedule at 1/2/4 threads + the flat-scan reference,
//   * IncrementalVerifier full-verify and a drop-probe differential,
//   * the paper's process-model baseline (synthesize_processes + EDF).
//
// Coherence rules (each breach is a recorded violation with a one-line
// reproduction recipe):
//   1. The scenario's spec compiles and re-emits byte-identically.
//   2. A successful heuristic carries a schedule whose report is
//      feasible and bit-identical across every verify configuration and
//      the IncrementalVerifier; a drop-probe re-verification matches a
//      from-scratch verify of the edited schedule.
//   3. An exact kFeasible witness verifies feasible (all thread counts).
//   4. exact kInfeasible on an async-only scenario refutes everything:
//      the heuristic must not have succeeded and Theorem 3's hypotheses
//      must not hold. (With periodic constraints present the exact
//      game's kInfeasible is phase-conservative — see feasibility.cpp —
//      so there it is recorded, not enforced.)
//   5. satisfies_theorem3 ⇒ the heuristic succeeded, unless it hit the
//      explicit hyperperiod cap (a resource refusal, not a verdict).
// The process-model baseline's EDF verdict is recorded as data (the E5
// work-inflation story), not enforced: monitors and work duplication
// make it incomparable in both directions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/feasibility.hpp"
#include "gen/generator.hpp"

namespace rtg::gen {

struct TournamentOptions {
  /// State budget for the exact game per scenario. Corpus-sized by
  /// default: big instances answer kUnknown instead of stalling a
  /// 500-seed sweep.
  std::size_t exact_budget = 20'000;
  std::size_t exact_threads = 1;
  /// Thread counts every feasible report must be bit-identical across.
  std::vector<std::size_t> verify_threads = {1, 2, 4};
  /// Skip the exact engine entirely (frontier sweeps that only need the
  /// heuristic + verifier stack).
  bool run_exact = true;
  /// Run the process-model baseline (recorded, never enforced).
  bool run_baseline = true;
  /// Re-verify with IncrementalVerifier + drop-probe differential.
  bool run_incremental = true;
};

/// One scenario's tournament outcome. `violations` empty ⇔ coherent.
struct TournamentRow {
  std::string name;
  std::string repro;  ///< "--gen <spec-string>" one-liner
  std::uint64_t fingerprint = 0;

  double utilization = 0.0;  ///< Σ w/d of the (unpipelined) model
  bool theorem3 = false;
  bool async_only = false;
  std::size_t constraints = 0;
  std::size_t elements = 0;

  core::FeasibilityStatus exact_status = core::FeasibilityStatus::kUnknown;
  std::size_t exact_states = 0;
  bool heuristic_success = false;
  std::string heuristic_failure;
  double server_utilization = 0.0;
  core::Time schedule_length = 0;
  bool baseline_edf = false;  ///< process-model EDF schedulability

  std::vector<std::string> violations;
};

struct TournamentSummary {
  std::vector<TournamentRow> rows;
  std::size_t violation_count = 0;
  std::size_t heuristic_feasible = 0;
  std::size_t exact_feasible = 0;
  std::size_t exact_infeasible = 0;
  std::size_t exact_unknown = 0;
  std::size_t baseline_edf = 0;
};

/// Runs one scenario through the tournament.
[[nodiscard]] TournamentRow run_tournament_row(const Scenario& scenario,
                                               const TournamentOptions& options = {});

/// Runs a batch and aggregates. Rows keep scenario order.
[[nodiscard]] TournamentSummary run_tournament(const std::vector<ScenarioOptions>& corpus,
                                               const TournamentOptions& options = {});

}  // namespace rtg::gen
