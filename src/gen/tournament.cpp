#include "gen/tournament.hpp"

#include <algorithm>
#include <exception>

#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/pipeline.hpp"
#include "core/synthesis.hpp"
#include "rt/analysis.hpp"
#include "spec/compile.hpp"
#include "spec/emit.hpp"

namespace rtg::gen {

namespace {

using core::FeasibilityReport;
using core::FeasibilityStatus;
using core::GraphModel;
using core::StaticSchedule;

bool async_only(const GraphModel& model) {
  for (const core::TimingConstraint& c : model.constraints()) {
    if (c.periodic()) return false;
  }
  return true;
}

// The heuristic's hyperperiod cap is a resource refusal (the server
// periods' lcm outgrew max_schedule_length), not a feasibility verdict;
// Theorem 3 still promises a schedule *exists*.
bool is_resource_refusal(const std::string& reason) {
  return reason.find("exceeds max_schedule_length") != std::string::npos ||
         reason.find("cancelled") != std::string::npos;
}

// Candidate for the drop-probe: the schedule with execution entry
// `entry` replaced by an idle run of equal length.
StaticSchedule drop_entry(const StaticSchedule& sched, std::size_t entry) {
  StaticSchedule out;
  for (std::size_t i = 0; i < sched.entries().size(); ++i) {
    const core::ScheduleEntry& e = sched.entries()[i];
    if (i == entry || e.elem == core::kIdleEntry) {
      out.push_idle(e.duration);
    } else {
      out.push_execution(e.elem, e.duration);
    }
  }
  return out;
}

void check_verifier_stack(const StaticSchedule& sched, const GraphModel& model,
                          const FeasibilityReport& reference,
                          const TournamentOptions& options, const char* what,
                          TournamentRow& row) {
  for (const std::size_t n : options.verify_threads) {
    core::VerifyOptions vo;
    vo.n_threads = n;
    if (!(core::verify_schedule(sched, model, vo) == reference)) {
      row.violations.push_back(std::string(what) + ": verify_schedule(n_threads=" +
                               std::to_string(n) + ") diverged from reference");
    }
  }
  core::VerifyOptions flat;
  flat.flat_reference = true;
  if (!(core::verify_schedule(sched, model, flat) == reference)) {
    row.violations.push_back(std::string(what) +
                             ": flat_reference verifier diverged from reference");
  }

  if (!options.run_incremental) return;
  core::IncrementalVerifier iv(model);
  if (!(iv.verify(sched) == reference)) {
    row.violations.push_back(std::string(what) +
                             ": IncrementalVerifier::verify diverged from reference");
  }
  // Drop-probe differential: re-verify the first-execution drop both
  // incrementally and from scratch; the reports must be bit-identical.
  const auto& entries = sched.entries();
  const auto it = std::find_if(entries.begin(), entries.end(), [](const auto& e) {
    return e.elem != core::kIdleEntry;
  });
  if (it != entries.end()) {
    const std::size_t entry = static_cast<std::size_t>(it - entries.begin());
    const StaticSchedule candidate = drop_entry(sched, entry);
    const FeasibilityReport& incremental = iv.verify_drop(candidate, entry);
    core::VerifyOptions serial;
    serial.n_threads = 1;
    if (!(incremental == core::verify_schedule(candidate, model, serial))) {
      row.violations.push_back(
          std::string(what) +
          ": IncrementalVerifier::verify_drop diverged from scratch verify");
    }
  }
}

}  // namespace

TournamentRow run_tournament_row(const Scenario& scenario,
                                 const TournamentOptions& options) {
  TournamentRow row;
  row.name = scenario.name;
  row.repro = "--gen " + scenario_spec_string(scenario.options);
  row.fingerprint = scenario.fingerprint;
  row.utilization = scenario.model.deadline_utilization();
  row.theorem3 = scenario.model.satisfies_theorem3();
  row.async_only = async_only(scenario.model);
  row.constraints = scenario.model.constraints().size();
  row.elements = scenario.model.comm().size();

  // Rule 1: the spec toolchain round trip is a byte fixpoint.
  const spec::CompileResult compiled = spec::compile_text(scenario.spec);
  if (!compiled.ok()) {
    row.violations.push_back("generated spec failed to compile: " +
                             (compiled.errors.empty() ? std::string("?")
                                                      : compiled.errors.front().message));
    return row;  // nothing downstream is meaningful
  }
  if (spec::emit(*compiled.model) != scenario.spec) {
    row.violations.push_back("emit(compile(spec)) is not a byte fixpoint");
  }

  // All engines compete on the software-pipelined model: that is the
  // model the heuristic schedules against, so exact and heuristic
  // answer the same question.
  const GraphModel pipelined = core::pipeline_model(scenario.model).model;

  core::HeuristicResult h;
  try {
    h = core::latency_schedule(scenario.model);
  } catch (const std::exception& e) {
    row.violations.push_back(std::string("heuristic threw: ") + e.what());
    return row;
  }
  row.heuristic_success = h.success;
  row.heuristic_failure = h.failure_reason;
  row.server_utilization = h.server_utilization;
  if (h.success) {
    row.schedule_length = h.schedule->length();
    if (!h.report.feasible) {
      row.violations.push_back("heuristic claimed success with an infeasible report");
    }
    check_verifier_stack(*h.schedule, h.scheduled_model, h.report, options,
                         "heuristic schedule", row);
  }
  // Rule 5: inside Theorem 3's hypotheses the construction is
  // guaranteed; only the explicit hyperperiod cap may refuse.
  if (row.theorem3 && !h.success && !is_resource_refusal(h.failure_reason)) {
    row.violations.push_back("theorem3 holds but the heuristic failed: " +
                             h.failure_reason);
  }

  if (options.run_exact) {
    core::ExactOptions xo;
    xo.state_budget = options.exact_budget;
    xo.n_threads = options.exact_threads;
    core::ExactResult exact;
    try {
      exact = core::exact_feasible(pipelined, xo);
    } catch (const std::exception& e) {
      row.violations.push_back(std::string("exact engine threw: ") + e.what());
      return row;
    }
    row.exact_status = exact.status;
    row.exact_states = exact.states_explored;
    if (exact.status == FeasibilityStatus::kFeasible) {
      if (!exact.schedule) {
        row.violations.push_back("exact kFeasible without a witness schedule");
      } else {
        const FeasibilityReport reference =
            core::verify_schedule(*exact.schedule, pipelined);
        if (!reference.feasible) {
          row.violations.push_back("exact witness schedule fails verification");
        }
        check_verifier_stack(*exact.schedule, pipelined, reference, options,
                             "exact witness", row);
      }
    } else if (exact.status == FeasibilityStatus::kInfeasible && row.async_only) {
      // Rule 4. Only async-only scenarios: with periodic constraints
      // the game pessimistically pins all phases to zero, so its
      // kInfeasible is not a certificate (see feasibility.cpp).
      if (h.success) {
        row.violations.push_back(
            "exact proved infeasible but the heuristic produced a verified schedule");
      }
      if (row.theorem3) {
        row.violations.push_back(
            "exact proved an async-only theorem3 scenario infeasible");
      }
    }
  }

  if (options.run_baseline) {
    try {
      const core::ProcessSynthesis ps = core::synthesize_processes(scenario.model, true);
      row.baseline_edf = rt::edf_schedulable(ps.task_set);
    } catch (const std::exception& e) {
      row.violations.push_back(std::string("process baseline threw: ") + e.what());
    }
  }
  return row;
}

TournamentSummary run_tournament(const std::vector<ScenarioOptions>& corpus,
                                 const TournamentOptions& options) {
  TournamentSummary summary;
  summary.rows.reserve(corpus.size());
  for (const ScenarioOptions& so : corpus) {
    TournamentRow row = run_tournament_row(generate(so), options);
    summary.violation_count += row.violations.size();
    if (row.heuristic_success) ++summary.heuristic_feasible;
    switch (row.exact_status) {
      case FeasibilityStatus::kFeasible: ++summary.exact_feasible; break;
      case FeasibilityStatus::kInfeasible: ++summary.exact_infeasible; break;
      case FeasibilityStatus::kUnknown: ++summary.exact_unknown; break;
    }
    if (row.baseline_edf) ++summary.baseline_edf;
    summary.rows.push_back(std::move(row));
  }
  return summary;
}

}  // namespace rtg::gen
