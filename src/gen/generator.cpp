#include "gen/generator.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"
#include "spec/emit.hpp"

namespace rtg::gen {

namespace {

// GCC 12's -Wrestrict misfires on `"lit" + std::to_string(n)` at -O3;
// building the label with += sidesteps it.
std::string label(const char* prefix, unsigned long long n) {
  std::string s(prefix);
  s += std::to_string(n);
  return s;
}

using core::CommGraph;
using core::ConstraintKind;
using core::ElementId;
using core::GraphModel;
using core::TaskGraph;
using core::Time;
using core::TimingConstraint;

// Period families. Values are sorted; pick_period returns the smallest
// member >= x (clamped to the largest). Harmonic members keep server
// hyperperiods collapsed; the coprime family is the adversarial case
// (pairwise-coprime periods make the lcm explode combinatorially).
constexpr Time kHarmonic[] = {4, 8, 16, 32, 64, 128, 256};
constexpr Time kNearHarmonic[] = {4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256};
constexpr Time kCoprime[] = {5, 7, 9, 11, 13, 17, 19, 23, 29, 31, 37, 41, 128, 256};

Time pick_period(PeriodFamily family, Time at_least) {
  const auto from = [&](const Time* begin, const Time* end) {
    for (const Time* p = begin; p != end; ++p) {
      if (*p >= at_least) return *p;
    }
    return *(end - 1);
  };
  switch (family) {
    case PeriodFamily::kHarmonic:
      return from(std::begin(kHarmonic), std::end(kHarmonic));
    case PeriodFamily::kNearHarmonic:
      return from(std::begin(kNearHarmonic), std::end(kNearHarmonic));
    case PeriodFamily::kCoprime:
      return from(std::begin(kCoprime), std::end(kCoprime));
  }
  return at_least;
}

// ---------------------------------------------------------------------------
// PlatformGenerator: a parameterized communication graph. All topologies
// are DAGs with edges pointing from lower to higher element id, so any
// induced subgraph is acyclic — the invariant TaskGraphGenerator leans on.

struct Platform {
  CommGraph comm;
  std::size_t size = 0;
};

Platform generate_platform(const PlatformOptions& opt, sim::Rng& rng) {
  Platform platform;
  CommGraph& comm = platform.comm;

  std::size_t n = opt.elements;
  const std::size_t width =
      opt.width != 0 ? opt.width : std::max<std::size_t>(2, n / 3);
  switch (opt.topology) {
    case Topology::kChain:
      n = std::max<std::size_t>(n, 2);
      break;
    case Topology::kForkJoin:
      n = std::max<std::size_t>(n, 3);
      break;
    case Topology::kLayered:
      n = std::max(n, width);  // at least one full layer
      break;
    case Topology::kDiamond:
      // 1 + 3k nodes: a join doubles as the next motif's split.
      n = 1 + 3 * std::max<std::size_t>(1, (std::max<std::size_t>(n, 4) - 1) / 3);
      break;
    case Topology::kRandomDag:
      n = std::max<std::size_t>(n, 2);
      break;
  }

  for (std::size_t i = 0; i < n; ++i) {
    const Time weight = rng.uniform(opt.min_weight, std::max(opt.min_weight,
                                                             opt.max_weight));
    const bool pipelinable = rng.chance(opt.pipelinable);
    comm.add_element(label("e", i), weight, pipelinable);
  }

  const auto channel = [&](std::size_t u, std::size_t v) {
    comm.add_channel(static_cast<ElementId>(u), static_cast<ElementId>(v));
  };

  switch (opt.topology) {
    case Topology::kChain:
      for (std::size_t i = 0; i + 1 < n; ++i) channel(i, i + 1);
      break;
    case Topology::kForkJoin:
      for (std::size_t i = 1; i + 1 < n; ++i) channel(0, i);
      for (std::size_t i = 1; i + 1 < n; ++i) channel(i, n - 1);
      break;
    case Topology::kLayered: {
      // Nodes in id order, grouped into layers of `width`.
      const auto layer_of = [&](std::size_t v) { return v / width; };
      for (std::size_t v = width; v < n; ++v) {
        const std::size_t layer = layer_of(v);
        const std::size_t lo = (layer - 1) * width;
        const std::size_t hi = std::min(layer * width, n);
        bool any = false;
        for (std::size_t u = lo; u < hi; ++u) {
          if (rng.chance(opt.density)) {
            channel(u, v);
            any = true;
          }
        }
        if (!any) {
          channel(lo + static_cast<std::size_t>(
                           rng.uniform(0, static_cast<std::int64_t>(hi - lo) - 1)),
                  v);
        }
      }
      // Forward fixup: a node the density draw never picked as a
      // predecessor would be stranded; hand it one successor in the
      // next layer.
      for (std::size_t u = 0; u < n && layer_of(u) < layer_of(n - 1); ++u) {
        if (comm.digraph().out_degree(static_cast<ElementId>(u)) > 0) continue;
        const std::size_t lo = (layer_of(u) + 1) * width;
        const std::size_t hi = std::min(lo + width, n);
        channel(u, lo + static_cast<std::size_t>(rng.uniform(
                            0, static_cast<std::int64_t>(hi - lo) - 1)));
      }
      break;
    }
    case Topology::kDiamond:
      for (std::size_t base = 0; base + 3 < n; base += 3) {
        channel(base, base + 1);
        channel(base, base + 2);
        channel(base + 1, base + 3);
        channel(base + 2, base + 3);
        if (rng.chance(opt.density * 0.5)) channel(base, base + 3);  // shortcut
      }
      break;
    case Topology::kRandomDag:
      for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = u + 1; v < n; ++v) {
          if (rng.chance(opt.density)) channel(u, v);
        }
      }
      // Connectivity fixup: every non-source node gets a predecessor.
      for (std::size_t v = 1; v < n; ++v) {
        if (comm.digraph().in_degree(static_cast<ElementId>(v)) == 0) {
          channel(v - 1, v);
        }
      }
      break;
  }

  platform.size = n;
  return platform;
}

// ---------------------------------------------------------------------------
// TaskGraphGenerator: carve constraint task graphs out of the platform.

// Selects a connected sub-DAG of up to `max_ops` elements: start at a
// random element, grow along out-channels. Returns element ids,
// ascending (so op ids are topologically sorted — comm edges only point
// upward — and the emitted spec is a round-trip fixpoint).
std::vector<ElementId> select_subdag(const CommGraph& comm, std::size_t max_ops,
                                     sim::Rng& rng) {
  const auto n = static_cast<std::int64_t>(comm.size());
  std::vector<ElementId> selected;
  selected.push_back(static_cast<ElementId>(rng.uniform(0, n - 1)));
  const std::size_t target =
      static_cast<std::size_t>(rng.uniform(1, static_cast<std::int64_t>(
                                                  std::max<std::size_t>(max_ops, 1))));
  while (selected.size() < target) {
    // Candidates: unselected successors of any selected element, in
    // deterministic (selected asc, adjacency-list) order.
    std::vector<ElementId> candidates;
    for (const ElementId u : selected) {
      for (const graph::NodeId v : comm.digraph().successors(u)) {
        if (std::find(selected.begin(), selected.end(), v) == selected.end() &&
            std::find(candidates.begin(), candidates.end(), v) == candidates.end()) {
          candidates.push_back(v);
        }
      }
    }
    if (candidates.empty()) break;
    selected.push_back(candidates[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(candidates.size()) - 1))]);
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

TaskGraph induced_task_graph(const CommGraph& comm,
                             const std::vector<ElementId>& elements) {
  TaskGraph tg;
  std::vector<core::OpId> op_of(comm.size(), graph::kInvalidNode);
  for (const ElementId e : elements) op_of[e] = tg.add_op(e);
  for (const ElementId u : elements) {
    for (const graph::NodeId v : comm.digraph().successors(u)) {
      if (op_of[v] != graph::kInvalidNode) tg.add_dep(op_of[u], op_of[v]);
    }
  }
  return tg;
}

void add_constraints(GraphModel& model, const ConstraintOptions& opt, sim::Rng& rng) {
  const std::size_t count = std::max<std::size_t>(opt.constraints, 1);
  // Per-constraint utilization share of the Σ w/d target; deadlines are
  // d ≈ w / share, clamped to [w, kDeadlineCap] so the exact game's
  // window (D = max deadline) stays searchable in a corpus sweep.
  constexpr Time kDeadlineCap = 120;
  const double share = std::max(opt.utilization, 0.01) / static_cast<double>(count);
  for (std::size_t c = 0; c < count; ++c) {
    const std::vector<ElementId> elements =
        select_subdag(model.comm(), opt.max_ops, rng);
    TaskGraph tg = induced_task_graph(model.comm(), elements);
    const Time w = tg.computation_time(model.comm());

    Time deadline = static_cast<Time>(static_cast<double>(w) / share + 0.5);
    deadline = std::clamp<Time>(deadline, w, kDeadlineCap);
    const bool latency_tight = rng.chance(opt.latency_density);
    Time period;
    if (latency_tight) {
      // A true latency constraint: deadline strictly below the
      // period/separation whenever the family allows it.
      period = pick_period(opt.periods, deadline + 1);
    } else {
      // End-of-window constraint: deadline rides up to the period.
      period = pick_period(opt.periods, deadline);
      deadline = std::max(period, w);
    }
    const bool sporadic = rng.chance(opt.sporadic_fraction);

    TimingConstraint constraint;
    constraint.name = label("C", c);
    constraint.task_graph = std::move(tg);
    constraint.period = period;
    constraint.deadline = deadline;
    constraint.kind =
        sporadic ? ConstraintKind::kAsynchronous : ConstraintKind::kPeriodic;
    model.add_constraint(std::move(constraint));
  }
}

// ---------------------------------------------------------------------------
// Domain packs: structured scenarios with realistic shapes. Weights and
// rates carry seeded jitter; structure is fixed per pack.

GraphModel make_sensor_fusion(sim::Rng& rng) {
  CommGraph comm;
  const ElementId imu = comm.add_element("imu", 1);
  const ElementId gyro = comm.add_element("gyro", 1);
  const ElementId mag = comm.add_element("mag", 1);
  const ElementId baro = comm.add_element("baro", 1);
  const ElementId fuse = comm.add_element("fuse", rng.uniform(1, 2));
  const ElementId kf = comm.add_element("kf", rng.uniform(1, 2));
  const ElementId nav = comm.add_element("nav", 1);
  comm.add_channel(imu, fuse);
  comm.add_channel(gyro, fuse);
  comm.add_channel(mag, fuse);
  comm.add_channel(baro, fuse);
  comm.add_channel(fuse, kf);
  comm.add_channel(kf, nav);

  GraphModel model(std::move(comm));
  const Time base = rng.chance(0.5) ? 16 : 32;
  const auto chain = [&](std::initializer_list<ElementId> path) {
    TaskGraph tg;
    core::OpId prev = graph::kInvalidNode;
    for (const ElementId e : path) {
      const core::OpId op = tg.add_op(e);
      if (prev != graph::kInvalidNode) tg.add_dep(prev, op);
      prev = op;
    }
    return tg;
  };
  model.add_constraint(TimingConstraint{"attitude", chain({imu, fuse, kf}), base,
                                        base, ConstraintKind::kPeriodic});
  model.add_constraint(TimingConstraint{"heading", chain({mag, fuse, kf}), 2 * base,
                                        2 * base, ConstraintKind::kPeriodic});
  model.add_constraint(TimingConstraint{"altitude", chain({baro, fuse, kf, nav}),
                                        2 * base, base + rng.uniform(0, base / 2),
                                        ConstraintKind::kAsynchronous});
  model.add_constraint(TimingConstraint{"rate_damp", chain({gyro, fuse}), base,
                                        base / 2, ConstraintKind::kAsynchronous});
  return model;
}

GraphModel make_avionics(sim::Rng& rng) {
  CommGraph comm;
  const ElementId adc = comm.add_element("adc", 1);
  const ElementId ins = comm.add_element("ins", 1);
  const ElementId gps = comm.add_element("gps", 1);
  const ElementId modesel = comm.add_element("modesel", 1);
  const ElementId cruise = comm.add_element("ctl_cruise", rng.uniform(1, 2));
  const ElementId landing = comm.add_element("ctl_landing", rng.uniform(1, 2));
  const ElementId mixer = comm.add_element("mixer", 1);
  const ElementId servo = comm.add_element("servo", 1);
  comm.add_channel(adc, modesel);
  comm.add_channel(ins, modesel);
  comm.add_channel(gps, modesel);
  comm.add_channel(modesel, cruise);
  comm.add_channel(modesel, landing);
  comm.add_channel(cruise, mixer);
  comm.add_channel(landing, mixer);
  comm.add_channel(mixer, servo);

  GraphModel model(std::move(comm));
  const Time base = rng.chance(0.5) ? 32 : 64;
  const auto chain = [&](std::initializer_list<ElementId> path) {
    TaskGraph tg;
    core::OpId prev = graph::kInvalidNode;
    for (const ElementId e : path) {
      const core::OpId op = tg.add_op(e);
      if (prev != graph::kInvalidNode) tg.add_dep(prev, op);
      prev = op;
    }
    return tg;
  };
  // The two mode control loops run concurrently (the executive blends
  // during transitions), the mode-switch path is a tight sporadic
  // latency constraint, and the servo refresh guards output staleness.
  model.add_constraint(TimingConstraint{
      "cruise_loop", chain({ins, modesel, cruise, mixer, servo}), base, base,
      ConstraintKind::kPeriodic});
  model.add_constraint(TimingConstraint{
      "landing_loop", chain({adc, modesel, landing, mixer, servo}), 2 * base,
      2 * base, ConstraintKind::kPeriodic});
  model.add_constraint(TimingConstraint{"mode_switch", chain({gps, modesel}),
                                        2 * base, base / 2 + rng.uniform(0, 8),
                                        ConstraintKind::kAsynchronous});
  model.add_constraint(TimingConstraint{"servo_refresh", chain({servo}), base / 2,
                                        base / 2, ConstraintKind::kPeriodic});
  return model;
}

GraphModel make_market_data(sim::Rng& rng) {
  CommGraph comm;
  const ElementId feed = comm.add_element("md_feed", 1);
  const ElementId book = comm.add_element("book", rng.uniform(1, 2));
  const ElementId signal = comm.add_element("signal", rng.uniform(1, 2));
  const ElementId risk = comm.add_element("risk", 1);
  const ElementId order = comm.add_element("order", 1);
  const ElementId quote = comm.add_element("quote", 1);
  comm.add_channel(feed, book);
  comm.add_channel(book, signal);
  comm.add_channel(book, quote);
  comm.add_channel(signal, risk);
  comm.add_channel(signal, order);
  comm.add_channel(risk, order);

  GraphModel model(std::move(comm));
  const Time base = rng.chance(0.5) ? 16 : 32;
  const auto chain = [&](std::initializer_list<ElementId> path) {
    TaskGraph tg;
    core::OpId prev = graph::kInvalidNode;
    for (const ElementId e : path) {
      const core::OpId op = tg.add_op(e);
      if (prev != graph::kInvalidNode) tg.add_dep(prev, op);
      prev = op;
    }
    return tg;
  };
  // Tick-to-trade is the tight end-to-end latency path; quoting and
  // risk refresh are periodic upkeep; the alpha fast path bypasses the
  // risk hop under a separate sporadic bound.
  model.add_constraint(TimingConstraint{
      "tick_to_trade", chain({feed, book, signal, risk, order}), 2 * base,
      base + rng.uniform(0, base / 2), ConstraintKind::kAsynchronous});
  model.add_constraint(TimingConstraint{"quote_refresh", chain({book, quote}), base,
                                        base, ConstraintKind::kPeriodic});
  model.add_constraint(TimingConstraint{"risk_refresh", chain({risk}), 2 * base,
                                        2 * base, ConstraintKind::kPeriodic});
  model.add_constraint(TimingConstraint{"alpha_fast", chain({signal, order}), base,
                                        base / 2 + rng.uniform(0, 4),
                                        ConstraintKind::kAsynchronous});
  return model;
}

}  // namespace

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string_view topology_name(Topology t) {
  switch (t) {
    case Topology::kChain: return "chain";
    case Topology::kForkJoin: return "fork_join";
    case Topology::kLayered: return "layered";
    case Topology::kDiamond: return "diamond";
    case Topology::kRandomDag: return "random";
  }
  return "?";
}

std::string_view period_family_name(PeriodFamily f) {
  switch (f) {
    case PeriodFamily::kHarmonic: return "harmonic";
    case PeriodFamily::kNearHarmonic: return "near_harmonic";
    case PeriodFamily::kCoprime: return "coprime";
  }
  return "?";
}

std::string_view domain_name(DomainPack d) {
  switch (d) {
    case DomainPack::kNone: return "none";
    case DomainPack::kSensorFusion: return "sensor_fusion";
    case DomainPack::kAvionics: return "avionics";
    case DomainPack::kMarketData: return "market_data";
  }
  return "?";
}

std::string_view platform_shape_name(PlatformShape s) {
  switch (s) {
    case PlatformShape::kBus: return "bus";
    case PlatformShape::kRing: return "ring";
    case PlatformShape::kPartialMesh: return "partial_mesh";
  }
  return "?";
}

Scenario generate(const ScenarioOptions& options) {
  // Seed the stream with every discrete shape knob, so e.g. two
  // topologies at the same seed draw unrelated randomness.
  std::uint64_t sm = options.seed;
  sm ^= 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(options.domain) + 1);
  sm ^= 0xD1B54A32D192ED03ULL *
        (static_cast<std::uint64_t>(options.platform.topology) + 1);
  sim::Rng rng(sim::splitmix64(sm));

  Scenario scenario;
  scenario.options = options;
  switch (options.domain) {
    case DomainPack::kNone: {
      const Platform platform = generate_platform(options.platform, rng);
      scenario.model = GraphModel(platform.comm);
      add_constraints(scenario.model, options.constraints, rng);
      scenario.name = std::string(topology_name(options.platform.topology));
      break;
    }
    case DomainPack::kSensorFusion:
      scenario.model = make_sensor_fusion(rng);
      scenario.name = "sensor_fusion";
      break;
    case DomainPack::kAvionics:
      scenario.model = make_avionics(rng);
      scenario.name = "avionics";
      break;
    case DomainPack::kMarketData:
      scenario.model = make_market_data(rng);
      scenario.name = "market_data";
      break;
  }
  scenario.name += label("-s", options.seed);
  if (options.processors > 0) {
    // The platform is a pure function of the knobs (no RNG draw), so
    // uniprocessor fingerprints are untouched by the knob's existence.
    const Time bw = std::max<Time>(options.link_bandwidth, 1);
    scenario.name += label("-p", options.processors);
    switch (options.platform_shape) {
      case PlatformShape::kBus:
        scenario.hardware = map::Platform::bus(options.processors, bw);
        break;
      case PlatformShape::kRing:
        scenario.hardware = map::Platform::ring(options.processors, bw);
        scenario.name += "r";
        break;
      case PlatformShape::kPartialMesh:
        scenario.hardware = map::Platform::partial_mesh(options.processors, bw);
        scenario.name += "m";
        break;
    }
    scenario.spec = spec::emit(scenario.model, *scenario.hardware);
  } else {
    scenario.spec = spec::emit(scenario.model);
  }
  scenario.fingerprint = fnv1a(scenario.spec);
  return scenario;
}

ScenarioOptions corpus_options(std::uint64_t index) {
  ScenarioOptions o;
  o.seed = index;
  if (index % 8 == 7) {
    // Every eighth scenario is a domain pack (structure over breadth).
    constexpr DomainPack kPacks[] = {DomainPack::kSensorFusion,
                                     DomainPack::kAvionics, DomainPack::kMarketData};
    o.domain = kPacks[(index / 8) % 3];
    return o;
  }
  constexpr Topology kTopologies[] = {Topology::kChain, Topology::kForkJoin,
                                      Topology::kLayered, Topology::kDiamond,
                                      Topology::kRandomDag};
  constexpr PeriodFamily kFamilies[] = {PeriodFamily::kHarmonic,
                                        PeriodFamily::kNearHarmonic,
                                        PeriodFamily::kCoprime};
  constexpr double kUtils[] = {0.2, 0.35, 0.5, 0.8};
  constexpr double kLatency[] = {0.25, 0.5, 1.0};
  o.platform.topology = kTopologies[index % 5];
  o.platform.elements = 4 + static_cast<std::size_t>(index % 4);
  o.platform.density = 0.35 + 0.1 * static_cast<double>((index / 2) % 4);
  // A sliver of non-pipelinable elements keeps Theorem 3's hypothesis
  // (iii) from holding vacuously across the whole corpus.
  o.platform.pipelinable = (index % 6 == 5) ? 0.7 : 1.0;
  o.constraints.constraints = 2 + static_cast<std::size_t>(index % 3);
  o.constraints.utilization = kUtils[(index / 3) % 4];
  o.constraints.periods = kFamilies[(index / 5) % 3];
  o.constraints.sporadic_fraction = (index % 4 == 3) ? 1.0 : 0.5;
  o.constraints.latency_density = kLatency[(index / 7) % 3];
  o.constraints.max_ops = 3 + static_cast<std::size_t>(index % 2);
  return o;
}

ScenarioOptions mapped_corpus_options(std::uint64_t index) {
  ScenarioOptions o = corpus_options(index);
  constexpr std::size_t kProcs[] = {2, 4, 8};
  o.processors = kProcs[index % 3];
  o.link_bandwidth = (index % 3 == 2) ? 2 : 1;
  // Non-bus shapes (ISSUE 10): a quarter of the corpus runs on rings or
  // partial meshes, so route-aware mapping and degraded-mode rerouting
  // stay exercised by the standing sweep.
  if (index % 8 == 3) o.platform_shape = PlatformShape::kRing;
  if (index % 8 == 6) o.platform_shape = PlatformShape::kPartialMesh;
  return o;
}

namespace {

bool parse_u64(std::string_view v, std::uint64_t& out) {
  if (v.empty()) return false;
  std::uint64_t r = 0;
  for (const char c : v) {
    if (c < '0' || c > '9') return false;
    r = r * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = r;
  return true;
}

bool parse_double(std::string_view v, double& out) {
  const std::string s(v);
  char* end = nullptr;
  const double r = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == s.c_str()) return false;
  out = r;
  return true;
}

}  // namespace

std::optional<ScenarioOptions> parse_scenario_spec(std::string_view text,
                                                   std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<ScenarioOptions> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  ScenarioOptions options;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view pair = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return fail("expected key=value, got '" + std::string(pair) + "'");
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    std::uint64_t u = 0;
    double d = 0;
    if (key == "topology") {
      if (value == "chain") options.platform.topology = Topology::kChain;
      else if (value == "fork_join") options.platform.topology = Topology::kForkJoin;
      else if (value == "layered") options.platform.topology = Topology::kLayered;
      else if (value == "diamond") options.platform.topology = Topology::kDiamond;
      else if (value == "random") options.platform.topology = Topology::kRandomDag;
      else return fail("unknown topology '" + std::string(value) + "'");
    } else if (key == "domain") {
      if (value == "none") options.domain = DomainPack::kNone;
      else if (value == "sensor_fusion") options.domain = DomainPack::kSensorFusion;
      else if (value == "avionics") options.domain = DomainPack::kAvionics;
      else if (value == "market_data") options.domain = DomainPack::kMarketData;
      else return fail("unknown domain '" + std::string(value) + "'");
    } else if (key == "periods") {
      if (value == "harmonic") options.constraints.periods = PeriodFamily::kHarmonic;
      else if (value == "near_harmonic")
        options.constraints.periods = PeriodFamily::kNearHarmonic;
      else if (value == "coprime") options.constraints.periods = PeriodFamily::kCoprime;
      else return fail("unknown period family '" + std::string(value) + "'");
    } else if (key == "seed") {
      if (!parse_u64(value, u)) return fail("bad seed '" + std::string(value) + "'");
      options.seed = u;
    } else if (key == "elements") {
      if (!parse_u64(value, u) || u == 0) {
        return fail("bad elements '" + std::string(value) + "'");
      }
      options.platform.elements = static_cast<std::size_t>(u);
    } else if (key == "width") {
      if (!parse_u64(value, u)) return fail("bad width '" + std::string(value) + "'");
      options.platform.width = static_cast<std::size_t>(u);
    } else if (key == "density") {
      if (!parse_double(value, d) || d < 0 || d > 1) {
        return fail("bad density '" + std::string(value) + "'");
      }
      options.platform.density = d;
    } else if (key == "min_weight") {
      if (!parse_u64(value, u) || u == 0) {
        return fail("bad min_weight '" + std::string(value) + "'");
      }
      options.platform.min_weight = static_cast<Time>(u);
    } else if (key == "max_weight") {
      if (!parse_u64(value, u) || u == 0) {
        return fail("bad max_weight '" + std::string(value) + "'");
      }
      options.platform.max_weight = static_cast<Time>(u);
    } else if (key == "pipelinable") {
      if (!parse_double(value, d) || d < 0 || d > 1) {
        return fail("bad pipelinable '" + std::string(value) + "'");
      }
      options.platform.pipelinable = d;
    } else if (key == "constraints") {
      if (!parse_u64(value, u) || u == 0) {
        return fail("bad constraints '" + std::string(value) + "'");
      }
      options.constraints.constraints = static_cast<std::size_t>(u);
    } else if (key == "util") {
      if (!parse_double(value, d) || d <= 0) {
        return fail("bad util '" + std::string(value) + "'");
      }
      options.constraints.utilization = d;
    } else if (key == "sporadic") {
      if (!parse_double(value, d) || d < 0 || d > 1) {
        return fail("bad sporadic '" + std::string(value) + "'");
      }
      options.constraints.sporadic_fraction = d;
    } else if (key == "latency_density") {
      if (!parse_double(value, d) || d < 0 || d > 1) {
        return fail("bad latency_density '" + std::string(value) + "'");
      }
      options.constraints.latency_density = d;
    } else if (key == "max_ops") {
      if (!parse_u64(value, u) || u == 0) {
        return fail("bad max_ops '" + std::string(value) + "'");
      }
      options.constraints.max_ops = static_cast<std::size_t>(u);
    } else if (key == "processors") {
      if (!parse_u64(value, u)) {
        return fail("bad processors '" + std::string(value) + "'");
      }
      options.processors = static_cast<std::size_t>(u);
    } else if (key == "link_bandwidth") {
      if (!parse_u64(value, u) || u == 0) {
        return fail("bad link_bandwidth '" + std::string(value) + "'");
      }
      options.link_bandwidth = static_cast<Time>(u);
    } else if (key == "platform_shape") {
      if (value == "bus") {
        options.platform_shape = PlatformShape::kBus;
      } else if (value == "ring") {
        options.platform_shape = PlatformShape::kRing;
      } else if (value == "partial_mesh") {
        options.platform_shape = PlatformShape::kPartialMesh;
      } else {
        return fail("bad platform_shape '" + std::string(value) + "'");
      }
    } else {
      return fail("unknown key '" + std::string(key) + "'");
    }
  }
  if (options.platform.max_weight < options.platform.min_weight) {
    return fail("max_weight below min_weight");
  }
  return options;
}

std::string scenario_spec_string(const ScenarioOptions& o) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof buffer,
      "domain=%s,topology=%s,seed=%llu,elements=%zu,width=%zu,density=%g,"
      "min_weight=%lld,max_weight=%lld,pipelinable=%g,constraints=%zu,util=%g,"
      "periods=%s,sporadic=%g,latency_density=%g,max_ops=%zu",
      std::string(domain_name(o.domain)).c_str(),
      std::string(topology_name(o.platform.topology)).c_str(),
      static_cast<unsigned long long>(o.seed), o.platform.elements, o.platform.width,
      o.platform.density, static_cast<long long>(o.platform.min_weight),
      static_cast<long long>(o.platform.max_weight), o.platform.pipelinable,
      o.constraints.constraints, o.constraints.utilization,
      std::string(period_family_name(o.constraints.periods)).c_str(),
      o.constraints.sporadic_fraction, o.constraints.latency_density,
      o.constraints.max_ops);
  std::string spec(buffer);
  if (o.processors > 0) {
    // Appended only for mapped scenarios, so every pre-existing repro
    // string (and the pins that quote them) stays byte-identical.
    std::snprintf(buffer, sizeof buffer, ",processors=%zu,link_bandwidth=%lld",
                  o.processors, static_cast<long long>(o.link_bandwidth));
    spec += buffer;
    if (o.platform_shape != PlatformShape::kBus) {
      // Same appended-only rule for the shape knob (ISSUE 10).
      spec += ",platform_shape=";
      spec += platform_shape_name(o.platform_shape);
    }
  }
  return spec;
}

}  // namespace rtg::gen
