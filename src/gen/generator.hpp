// generator.hpp — the scenario factory: seeded workload generators.
//
// Every bench and most tests so far reuse one small control-system
// family; this module is the standing source of *breadth*. A
// PlatformGenerator draws a parameterized communication graph
// (chain / fork-join / layered / diamond / random-DAG topologies,
// weight and pipelinability knobs), a TaskGraphGenerator carves
// timing constraints out of it (utilization targets, period families,
// latency-tightness density), and three domain packs (sensor fusion,
// avionics mode-switching, a market-data pipeline) provide structured
// instances with realistic shapes. Everything is a pure function of
// the seed: the same ScenarioOptions always produce the bit-identical
// model, emitted .rts spec, and FNV fingerprint, so any corpus failure
// is one-line reproducible (`spec_compiler --gen <spec-string>`).
//
// Generated scenarios are guaranteed to round-trip through the .rts
// toolchain: spec::emit(model) re-parses, re-compiles, and re-emits to
// the identical byte string (tests/gen/roundtrip_test.cpp pins this).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/model.hpp"
#include "map/platform.hpp"

namespace rtg::gen {

/// Communication-graph families. All are DAGs over element ids
/// (edges only point from lower to higher id), so any induced
/// subgraph is a valid acyclic task graph.
enum class Topology : std::uint8_t {
  kChain,     ///< e0 -> e1 -> ... -> e{n-1}
  kForkJoin,  ///< one source, parallel middles, one sink
  kLayered,   ///< layers of `width`, dense edges between adjacent layers
  kDiamond,   ///< chained diamond motifs (split -> two arms -> join)
  kRandomDag, ///< edge (i, j), i < j, kept with probability `density`
};

/// Period / separation families for generated constraints.
enum class PeriodFamily : std::uint8_t {
  kHarmonic,      ///< powers of two of a base (tame hyperperiods)
  kNearHarmonic,  ///< harmonic with an occasional 3x member
  kCoprime,       ///< small pairwise-coprime values (adversarial lcm)
};

/// Hardware platform shapes for mapped scenarios (ISSUE 10): the
/// mapped corpus exercises non-bus topologies, so the mapper's
/// route-awareness and the fault-tolerance reroute path see real
/// route diversity, not just the shared bus.
enum class PlatformShape : std::uint8_t {
  kBus,          ///< one shared link serving every pair
  kRing,         ///< adjacent bidirectional wires only
  kPartialMesh,  ///< adjacent wires + a fallback bus (reroute redundancy)
};

/// Structured scenario packs layered on top of the raw topologies.
enum class DomainPack : std::uint8_t {
  kNone,          ///< pure parameterized topology
  kSensorFusion,  ///< imu/gyro/mag/baro -> fuse -> filter -> nav
  kAvionics,      ///< sensed modes -> mode controllers -> mixer -> actuator
  kMarketData,    ///< feed -> book -> signal -> risk -> order pipeline
};

/// Knobs of the communication-graph (platform) generator.
struct PlatformOptions {
  Topology topology = Topology::kLayered;
  /// Element-count target; each topology enforces its own small floor
  /// (e.g. fork-join needs at least 3).
  std::size_t elements = 6;
  /// Layer width (layered) / fork width (fork-join); 0 = derived.
  std::size_t width = 0;
  /// Extra-edge keep probability for layered / random topologies.
  double density = 0.5;
  core::Time min_weight = 1;
  core::Time max_weight = 2;
  /// Probability that an element is pipelinable (Theorem 3 hypothesis).
  double pipelinable = 1.0;
};

/// Knobs of the constraint (task-graph) generator.
struct ConstraintOptions {
  std::size_t constraints = 3;
  /// Target Σ w_i / d_i (the paper's load measure). Deadlines are
  /// derived to approach it; clamping at tiny task graphs can land
  /// below, never more than ~2x above.
  double utilization = 0.35;
  PeriodFamily periods = PeriodFamily::kHarmonic;
  /// Probability a constraint is asynchronous (sporadic).
  double sporadic_fraction = 0.5;
  /// Fraction of constraints whose deadline is tightened strictly
  /// below the period/separation (a latency constraint in the paper's
  /// sense, rather than an end-of-period one).
  double latency_density = 0.5;
  /// Cap on operations per task graph.
  std::size_t max_ops = 4;
};

struct ScenarioOptions {
  std::uint64_t seed = 0;
  DomainPack domain = DomainPack::kNone;
  PlatformOptions platform;
  ConstraintOptions constraints;
  /// Multiprocessor knobs (ISSUE 9). 0 = uniprocessor scenario exactly
  /// as before (the knob does not perturb the RNG stream, so every
  /// pre-existing fingerprint pin is preserved). > 0 attaches a shared
  /// bus hardware platform of that many processors to the scenario;
  /// the emitted spec gains the platform preamble and the fingerprint
  /// covers it.
  std::size_t processors = 0;
  core::Time link_bandwidth = 1;
  /// Hardware shape when processors > 0 (ISSUE 10). Like the other
  /// platform knobs it is a pure function of the options — no RNG
  /// draw — and the emitted spec's link lines cover it, so the
  /// fingerprint distinguishes shapes automatically.
  PlatformShape platform_shape = PlatformShape::kBus;
};

/// A generated scenario: the model plus its emitted spec and the
/// FNV-1a fingerprint of that spec (the corpus identity used by the
/// seed-stability pins and the tournament repro lines).
struct Scenario {
  std::string name;  ///< e.g. "layered-s17" or "sensor_fusion-s3"
  ScenarioOptions options;
  core::GraphModel model;
  /// Hardware platform when options.processors > 0 (a shared bus over
  /// that many processors at options.link_bandwidth); nullopt otherwise.
  std::optional<map::Platform> hardware;
  std::string spec;            ///< spec::emit(model[, hardware])
  std::uint64_t fingerprint = 0;  ///< fnv1a(spec)
};

/// FNV-1a over a byte string (the corpus fingerprint primitive).
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

[[nodiscard]] std::string_view topology_name(Topology t);
[[nodiscard]] std::string_view period_family_name(PeriodFamily f);
[[nodiscard]] std::string_view domain_name(DomainPack d);
[[nodiscard]] std::string_view platform_shape_name(PlatformShape s);

/// Generates the scenario for `options`. Deterministic: equal options
/// give bit-identical scenarios. The produced model always validates
/// (task-graph edges follow channels, acyclic, positive weights) and
/// its spec round-trips through parse/compile/emit unchanged.
[[nodiscard]] Scenario generate(const ScenarioOptions& options);

/// The standing mixed corpus: deterministic options for corpus index
/// `index`. Cycles through every topology, period family, utilization
/// band, latency density, and (every eighth index) a domain pack, so a
/// prefix sweep 0..N-1 exercises the whole option lattice. This is the
/// shared convention between the corpus regression tests, the service
/// corpus suite, CI's seed window, and bench_scenario_corpus.
[[nodiscard]] ScenarioOptions corpus_options(std::uint64_t index);

/// The mapped-corpus convention (ISSUE 9/10): corpus_options(index)
/// plus a hardware platform whose processor count cycles 2 -> 4 -> 8
/// with the index and whose bandwidth doubles every third index. Every
/// eighth index (ISSUE 10) swaps the bus for a ring (index % 8 == 3) or
/// a partial mesh (index % 8 == 6), so the standing corpus exercises
/// non-bus route sets. Used by the map differential suite, the service
/// mapped jobs, the platform-fault chaos sweep, and bench_multiproc.
[[nodiscard]] ScenarioOptions mapped_corpus_options(std::uint64_t index);

/// Parses a `--gen` scenario-spec string: comma-separated key=value
/// pairs, e.g. "topology=layered,seed=17,elements=8,util=0.4".
/// Keys: topology (chain|fork_join|layered|diamond|random),
/// domain (sensor_fusion|avionics|market_data), seed, elements, width,
/// density, min_weight, max_weight, pipelinable, constraints, util,
/// periods (harmonic|near_harmonic|coprime), sporadic, latency_density,
/// max_ops, processors, link_bandwidth,
/// platform_shape (bus|ring|partial_mesh). Unknown keys or malformed
/// values fail with a diagnostic.
[[nodiscard]] std::optional<ScenarioOptions> parse_scenario_spec(std::string_view text,
                                                                 std::string* error);

/// Formats options back into a parse_scenario_spec-compatible string —
/// the one-line reproduction recipe printed on corpus failures.
[[nodiscard]] std::string scenario_spec_string(const ScenarioOptions& options);

}  // namespace rtg::gen
