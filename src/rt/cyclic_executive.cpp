#include "rt/cyclic_executive.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rtg::rt {

void CyclicExecutive::emit(sim::TraceSink& sink) const {
  emit(sink, SlotTransform{});
}

void CyclicExecutive::emit(sim::TraceSink& sink, const SlotTransform& transform,
                           Time start) const {
  Time now = start;
  const auto deliver = [&](sim::Slot s) {
    sink.on_slot(transform ? transform(now, s) : s);
    ++now;
  };
  for (const auto& frame : frames) {
    Time used = 0;
    for (const FrameEntry& entry : frame) {
      for (Time k = 0; k < entry.slots; ++k) {
        deliver(static_cast<sim::Slot>(entry.task));
      }
      used += entry.slots;
    }
    for (Time k = used; k < frame_size; ++k) deliver(sim::kIdle);
  }
}

sim::ExecutionTrace CyclicExecutive::to_trace() const {
  sim::ExecutionTrace trace;
  sim::TraceAppender appender(trace);
  emit(appender);
  return trace;
}

std::vector<Time> candidate_frame_sizes(const TaskSet& ts) {
  if (ts.empty()) return {};
  Time max_c = 0;
  for (const Task& t : ts.tasks()) {
    if (t.arrival != Arrival::kPeriodic) {
      throw std::invalid_argument("candidate_frame_sizes: tasks must be periodic");
    }
    max_c = std::max(max_c, t.c);
  }
  const Time h = ts.hyperperiod();
  std::vector<Time> result;
  for (Time f = 1; f <= h; ++f) {
    if (h % f != 0) continue;
    if (f < max_c) continue;
    bool ok = true;
    for (const Task& t : ts.tasks()) {
      if (2 * f - std::gcd(f, t.p) > t.d) {
        ok = false;
        break;
      }
    }
    if (ok) result.push_back(f);
  }
  return result;
}

std::optional<CyclicExecutive> build_cyclic_executive(const TaskSet& ts, Time frame_size) {
  const auto candidates = candidate_frame_sizes(ts);
  if (std::find(candidates.begin(), candidates.end(), frame_size) == candidates.end()) {
    throw std::invalid_argument("build_cyclic_executive: frame size violates the frame conditions");
  }
  const Time h = ts.hyperperiod();
  const std::size_t n_frames = static_cast<std::size_t>(h / frame_size);

  struct Job {
    std::size_t task;
    Time release;
    Time deadline;
    Time remaining;
  };
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    for (Time r = 0; r < h; r += ts[i].p) {
      jobs.push_back(Job{i, r, r + ts[i].d, ts[i].c});
    }
  }
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    if (a.release != b.release) return a.release < b.release;
    return a.task < b.task;
  });

  CyclicExecutive exec;
  exec.frame_size = frame_size;
  exec.hyperperiod = h;
  exec.frames.resize(n_frames);
  std::vector<Time> room(n_frames, frame_size);

  for (Job& job : jobs) {
    // Usable frames: start at or after release, end at or before the
    // deadline.
    for (std::size_t k = 0; k < n_frames && job.remaining > 0; ++k) {
      const Time frame_start = static_cast<Time>(k) * frame_size;
      const Time frame_end = frame_start + frame_size;
      if (frame_start < job.release || frame_end > job.deadline) continue;
      if (room[k] == 0) continue;
      const Time take = std::min(room[k], job.remaining);
      exec.frames[k].push_back(FrameEntry{job.task, take});
      room[k] -= take;
      job.remaining -= take;
    }
    if (job.remaining > 0) return std::nullopt;
  }
  return exec;
}

std::optional<CyclicExecutive> build_cyclic_executive(const TaskSet& ts) {
  auto candidates = candidate_frame_sizes(ts);
  std::sort(candidates.rbegin(), candidates.rend());
  for (Time f : candidates) {
    if (auto exec = build_cyclic_executive(ts, f)) return exec;
  }
  return std::nullopt;
}

}  // namespace rtg::rt
