#include "rt/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

namespace rtg::rt {

double liu_layland_bound(std::size_t n) {
  if (n == 0) return 1.0;
  const double nd = static_cast<double>(n);
  return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

bool rm_utilization_test(const TaskSet& ts) {
  return ts.utilization() <= liu_layland_bound(ts.size()) + 1e-12;
}

std::vector<std::size_t> priority_order(const TaskSet& ts, PriorityOrder order) {
  std::vector<std::size_t> idx(ts.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    const Time ka = order == PriorityOrder::kRateMonotonic ? ts[a].p : ts[a].d;
    const Time kb = order == PriorityOrder::kRateMonotonic ? ts[b].p : ts[b].d;
    return ka < kb;
  });
  return idx;
}

std::vector<std::optional<Time>> response_times(const TaskSet& ts, PriorityOrder order) {
  if (!ts.constrained_deadlines()) {
    throw std::invalid_argument("response_times: requires d <= p for every task");
  }
  const auto prio = priority_order(ts, order);
  std::vector<std::optional<Time>> result(ts.size());

  for (std::size_t rank = 0; rank < prio.size(); ++rank) {
    const Task& task = ts[prio[rank]];
    // Blocking: longest critical section among strictly lower-priority
    // tasks (classic non-preemptive-section blocking term).
    Time blocking = 0;
    for (std::size_t lower = rank + 1; lower < prio.size(); ++lower) {
      blocking = std::max(blocking, ts[prio[lower]].critical_section);
    }
    // Fixed-point iteration R = B + c + Σ_hp ceil(R / p_j) c_j.
    Time response = blocking + task.c;
    bool converged = false;
    while (response <= task.d) {
      Time next = blocking + task.c;
      for (std::size_t higher = 0; higher < rank; ++higher) {
        const Task& hp = ts[prio[higher]];
        next += ((response + hp.p - 1) / hp.p) * hp.c;
      }
      if (next == response) {
        converged = true;
        break;
      }
      response = next;
    }
    result[prio[rank]] = converged ? std::optional<Time>(response) : std::nullopt;
  }
  return result;
}

bool fixed_priority_schedulable(const TaskSet& ts, PriorityOrder order) {
  const auto rts = response_times(ts, order);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!rts[i] || *rts[i] > ts[i].d) return false;
  }
  return true;
}

Time demand_bound(const TaskSet& ts, Time t) {
  Time h = 0;
  for (const Task& task : ts.tasks()) {
    if (t >= task.d) {
      h += ((t - task.d) / task.p + 1) * task.c;
    }
  }
  return h;
}

bool edf_schedulable(const TaskSet& ts) {
  if (!ts.constrained_deadlines()) {
    throw std::invalid_argument("edf_schedulable: requires d <= p for every task");
  }
  if (ts.empty()) return true;
  if (ts.utilization() > 1.0 + 1e-12) return false;

  // Check h(t) <= t at every absolute deadline up to the hyperperiod
  // (sufficient for synchronous periodic sets; the busy-period bound
  // would shrink the horizon but hyperperiod is always sound).
  const Time horizon = ts.hyperperiod();
  std::set<Time> checkpoints;
  for (const Task& task : ts.tasks()) {
    for (Time t = task.d; t <= horizon; t += task.p) {
      checkpoints.insert(t);
    }
  }
  for (Time t : checkpoints) {
    if (demand_bound(ts, t) > t) return false;
  }
  return true;
}

bool edf_utilization_test(const TaskSet& ts) {
  return ts.utilization() <= 1.0 + 1e-12;
}

std::optional<Time> response_time_under(const TaskSet& ts,
                                        const std::vector<std::size_t>& order,
                                        std::size_t which) {
  if (!ts.constrained_deadlines()) {
    throw std::invalid_argument("response_time_under: requires d <= p");
  }
  const auto rank_of = [&](std::size_t task) {
    for (std::size_t r = 0; r < order.size(); ++r) {
      if (order[r] == task) return r;
    }
    throw std::invalid_argument("response_time_under: task missing from order");
  };
  const std::size_t rank = rank_of(which);
  const Task& task = ts[which];
  Time blocking = 0;
  for (std::size_t r = rank + 1; r < order.size(); ++r) {
    blocking = std::max(blocking, ts[order[r]].critical_section);
  }
  Time response = blocking + task.c;
  while (response <= task.d) {
    Time next = blocking + task.c;
    for (std::size_t r = 0; r < rank; ++r) {
      const Task& hp = ts[order[r]];
      next += ((response + hp.p - 1) / hp.p) * hp.c;
    }
    if (next == response) return response;
    response = next;
  }
  return std::nullopt;
}

std::optional<std::vector<std::size_t>> audsley_assignment(const TaskSet& ts) {
  if (!ts.constrained_deadlines()) {
    throw std::invalid_argument("audsley_assignment: requires d <= p");
  }
  const std::size_t n = ts.size();
  std::vector<bool> placed(n, false);
  // Assign priority levels lowest-first: a task fits at the lowest
  // unassigned level iff it meets its deadline with all still-unplaced
  // tasks above it. Audsley's theorem: if no task fits at this level,
  // no assignment exists.
  std::vector<std::size_t> lowest_first;
  for (std::size_t level = 0; level < n; ++level) {
    bool found = false;
    for (std::size_t cand = 0; cand < n && !found; ++cand) {
      if (placed[cand]) continue;
      // Order: all unplaced-except-cand above, cand, then the already
      // placed ones below (their identity does not matter for cand's
      // response time beyond blocking; include them for completeness).
      std::vector<std::size_t> order;
      for (std::size_t i = 0; i < n; ++i) {
        if (!placed[i] && i != cand) order.push_back(i);
      }
      order.push_back(cand);
      for (auto it = lowest_first.rbegin(); it != lowest_first.rend(); ++it) {
        order.push_back(*it);
      }
      const auto rt = response_time_under(ts, order, cand);
      if (rt && *rt <= ts[cand].d) {
        placed[cand] = true;
        lowest_first.push_back(cand);
        found = true;
      }
    }
    if (!found) return std::nullopt;
  }
  std::vector<std::size_t> highest_first(lowest_first.rbegin(), lowest_first.rend());
  return highest_first;
}

}  // namespace rtg::rt
