// analysis.hpp — schedulability analysis for the process model.
//
// Implements the classical uniprocessor results the paper leans on as
// its process-based baseline ([MOK 83], Liu & Layland):
//   * Liu–Layland utilization bound for rate-monotonic priorities;
//   * exact response-time analysis for fixed priorities (with blocking
//     terms for monitor critical sections);
//   * exact EDF schedulability via the processor-demand criterion for
//     constrained-deadline periodic sets;
//   * the simple EDF utilization test (U <= 1) for implicit deadlines.
#pragma once

#include <optional>
#include <vector>

#include "rt/task.hpp"

namespace rtg::rt {

/// Liu–Layland bound n(2^{1/n} - 1). Returns 1.0 for n == 0.
[[nodiscard]] double liu_layland_bound(std::size_t n);

/// Sufficient RM test: utilization() <= liu_layland_bound(n).
[[nodiscard]] bool rm_utilization_test(const TaskSet& ts);

/// Priority assignment orders for fixed-priority analysis.
enum class PriorityOrder {
  kRateMonotonic,      ///< smaller p = higher priority
  kDeadlineMonotonic,  ///< smaller d = higher priority
};

/// Index permutation of tasks sorted by descending priority under the
/// given order (stable; ties by index).
[[nodiscard]] std::vector<std::size_t> priority_order(const TaskSet& ts, PriorityOrder order);

/// Exact fixed-priority response-time analysis (Joseph & Pandya
/// iteration) with blocking from lower-priority critical sections.
/// Returns the worst-case response time per task, or nullopt for a task
/// whose iteration exceeds its deadline (unschedulable). Requires
/// constrained deadlines (d <= p); throws otherwise.
[[nodiscard]] std::vector<std::optional<Time>> response_times(const TaskSet& ts,
                                                              PriorityOrder order);

/// True iff every task's worst-case response time is <= its deadline.
[[nodiscard]] bool fixed_priority_schedulable(const TaskSet& ts, PriorityOrder order);

/// EDF exact test for periodic sets with constrained deadlines: demand
/// bound function h(t) = Σ_i max(0, floor((t - d_i)/p_i) + 1) c_i must
/// satisfy h(t) <= t for all absolute deadlines t up to the analysis
/// bound (min of hyperperiod and the busy-period bound).
/// Throws std::invalid_argument if some d_i > p_i.
[[nodiscard]] bool edf_schedulable(const TaskSet& ts);

/// Demand bound function h(t) for the task set at time t.
[[nodiscard]] Time demand_bound(const TaskSet& ts, Time t);

/// EDF utilization test for implicit deadlines (d == p): U <= 1.
[[nodiscard]] bool edf_utilization_test(const TaskSet& ts);

/// Audsley's optimal priority assignment: returns a priority order
/// (task indices, highest priority first) under which every task meets
/// its deadline per response-time analysis, or nullopt if no
/// fixed-priority assignment works. Optimal for constrained deadlines:
/// if any assignment is feasible, one is found. Requires d <= p.
[[nodiscard]] std::optional<std::vector<std::size_t>> audsley_assignment(
    const TaskSet& ts);

/// Exact fixed-priority response time of the task at `which` given an
/// explicit priority order (highest first). Blocking terms from
/// lower-priority critical sections included. nullopt = exceeds its
/// deadline.
[[nodiscard]] std::optional<Time> response_time_under(const TaskSet& ts,
                                                      const std::vector<std::size_t>& order,
                                                      std::size_t which);

}  // namespace rtg::rt
