// polling_server.hpp — polling server for aperiodic work in the
// process model.
//
// The process-based baseline handles the paper's asynchronous
// constraints either as demand-driven processes or — classically — by
// dedicating a periodic *server* task that polls a queue of aperiodic
// jobs. This module implements the textbook polling server:
//
//   * the server is a periodic task (capacity c_s every p_s, implicit
//     deadline) scheduled by EDF alongside the ordinary periodic tasks;
//   * at each replenishment its budget resets to c_s; if the queue is
//     empty when the server would run, the budget is forfeited for the
//     rest of the period (the defining polling behaviour — arrivals
//     just after the poll wait a full period);
//   * while the queue is non-empty and budget remains, the server
//     serves jobs FIFO, one slot at a time, under its EDF deadline.
//
// This gives the graph-model experiments an honest process-side
// comparator: the latency-scheduling servers of core/heuristic are,
// in process terms, polling servers whose parameters Theorem 3 derives
// from the deadline — with the crucial difference that the static
// schedule *proves* the per-window service the polling server only
// provides on average.
#pragma once

#include <vector>

#include "rt/scheduler.hpp"
#include "rt/task.hpp"

namespace rtg::rt {

/// One aperiodic job offered to the server.
struct AperiodicJob {
  Time release = 0;
  Time work = 1;
};

struct ServedJob {
  Time release = 0;
  Time work = 0;
  /// Completion time, or -1 if unfinished at the horizon.
  Time completion = -1;

  [[nodiscard]] bool completed() const { return completion >= 0; }
  [[nodiscard]] Time response_time() const {
    return completed() ? completion - release : -1;
  }
};

struct PollingServerResult {
  /// Slot trace: task index, ts.size() for the server, kIdle otherwise.
  sim::ExecutionTrace trace;
  /// Periodic jobs with deadline accounting (as in rt::simulate).
  std::vector<JobRecord> periodic_jobs;
  /// Aperiodic jobs in release order.
  std::vector<ServedJob> aperiodic_jobs;

  [[nodiscard]] std::size_t periodic_misses() const;
  [[nodiscard]] Time worst_aperiodic_response() const;
};

/// Simulates EDF over `periodic` plus a polling server (capacity,
/// period) serving `jobs` (sorted by release; FIFO service). All
/// periodic tasks must be kPeriodic with implicit-or-constrained
/// deadlines; capacity <= period required.
[[nodiscard]] PollingServerResult simulate_polling_server(
    const TaskSet& periodic, Time server_capacity, Time server_period,
    const std::vector<AperiodicJob>& jobs, Time horizon);

/// Execution-time overruns for the process-model baseline: each job —
/// periodic instance or aperiodic request — independently demands
/// ceil(work * magnitude) slots with the given probability (seeded,
/// reproducible). The EDF dispatcher has no budget enforcement, so an
/// overrunning job simply holds the processor longer — the process-side
/// analogue of core/fault's OverrunModel for the graph executive.
struct ServerOverruns {
  double probability = 0.0;
  double magnitude = 2.0;
  std::uint64_t seed = 1;
};

/// simulate_polling_server with overrun injection, for baseline
/// comparisons against the graph model's adaptive executive.
[[nodiscard]] PollingServerResult simulate_polling_server_overrun(
    const TaskSet& periodic, Time server_capacity, Time server_period,
    const std::vector<AperiodicJob>& jobs, Time horizon,
    const ServerOverruns& overruns);

/// The deferrable-server variant: identical except the budget is
/// *retained* across an empty queue until the end of the period, so an
/// arrival mid-period is served at once if budget remains — better
/// response than polling, paid for by the well-known back-to-back
/// anomaly (a burst can receive up to 2c_s in less than p_s, so
/// schedulability analysis must inflate the server's interference).
[[nodiscard]] PollingServerResult simulate_deferrable_server(
    const TaskSet& periodic, Time server_capacity, Time server_period,
    const std::vector<AperiodicJob>& jobs, Time horizon);

}  // namespace rtg::rt
