// scheduler.hpp — preemptive uniprocessor scheduling simulator for the
// process model.
//
// Simulates EDF, rate-/deadline-monotonic, and least-laxity-first
// dispatching at unit-slot granularity over a finite horizon, producing
// an ExecutionTrace (slot i carries the index of the task running in
// [i, i+1)) plus deadline-miss and response-time accounting. Monitor
// critical sections are modelled as a non-preemptible prefix of each
// job, which produces the classical priority-inversion blocking the
// analysis in analysis.hpp accounts for.
#pragma once

#include <cstdint>
#include <vector>

#include "rt/task.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace rtg::rt {

/// Dispatching policies.
enum class Policy : std::uint8_t {
  kEdf,  ///< earliest absolute deadline first
  kRm,   ///< rate monotonic (static, smaller p first)
  kDm,   ///< deadline monotonic (static, smaller d first)
  kLlf,  ///< least laxity first (dynamic)
};

/// A released job instance during simulation.
struct JobRecord {
  std::size_t task = 0;
  Time release = 0;
  Time abs_deadline = 0;
  /// Completion time, or -1 if unfinished at the horizon.
  Time completion = -1;

  [[nodiscard]] bool completed() const { return completion >= 0; }
  [[nodiscard]] bool missed() const {
    return !completed() || completion > abs_deadline;
  }
  [[nodiscard]] Time response_time() const {
    return completed() ? completion - release : -1;
  }
};

/// Simulation output.
struct SimResult {
  sim::ExecutionTrace trace;    ///< slot -> task index (or kIdle)
  std::vector<JobRecord> jobs;  ///< all released jobs, in release order

  [[nodiscard]] std::size_t miss_count() const;
  [[nodiscard]] bool any_miss() const { return miss_count() > 0; }
  /// Worst observed response time of the given task; -1 if it never
  /// completed a job.
  [[nodiscard]] Time worst_response(std::size_t task) const;
};

/// Explicit arrival streams for sporadic tasks: arrivals[i] lists the
/// release instants of task i (ignored for periodic tasks, which always
/// release at 0, p, 2p, ...). Instants must be sorted and respect the
/// task's minimum separation; the simulator validates this.
using ArrivalStreams = std::vector<std::vector<Time>>;

/// Simulates `ts` under `policy` for `horizon` slots.
/// `arrivals` may be nullptr when the set has no sporadic tasks.
[[nodiscard]] SimResult simulate(const TaskSet& ts, Policy policy, Time horizon,
                                 const ArrivalStreams* arrivals = nullptr);

/// Generates a maximal-rate sporadic arrival stream: releases at
/// 0, p, 2p, ... (the worst case for most analyses).
[[nodiscard]] std::vector<Time> max_rate_arrivals(Time min_sep, Time horizon);

/// Generates a random sporadic arrival stream: successive gaps are
/// min_sep + Geometric(mean extra_mean) slots.
[[nodiscard]] std::vector<Time> random_arrivals(Time min_sep, Time horizon,
                                                double extra_mean, sim::Rng& rng);

}  // namespace rtg::rt
