#include "rt/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <string>

#include "rt/task.hpp"

namespace rtg::rt {

namespace {

using core::ElementId;
using core::ScheduledOp;
using core::ScheduleEntry;
using core::StaticSchedule;
using core::TimingConstraint;

// Nominal seam check of one (pair, phase, grid) cell: splice schedule
// a's tail (at this phase) with schedule b restarted at the switch
// instant and check every window the steady-state feasibility proofs
// do not cover (see the header). The window content is a pure function
// of (phase, switch time mod grid), so one concrete switch instant per
// cell decides the whole congruence class.
bool seam_admissible(const core::GraphModel& model, const StaticSchedule& a,
                     const StaticSchedule& b, Time phase, Time g, Time grid,
                     Time d_max) {
  const Time len_a = a.length();
  const Time len_b = b.length();
  const Time back = d_max + len_a;
  // Concrete switch instant: >= back, == g (mod grid).
  const Time s_abs = (back / grid + 2) * grid + g;

  std::vector<ScheduledOp> ops;
  const std::vector<ScheduledOp> a_ops = a.ops();
  Time base = s_abs - phase;
  while (base > s_abs - back) base -= len_a;
  for (; base < s_abs; base += len_a) {
    for (const ScheduledOp& op : a_ops) {
      const Time st = base + op.start;
      if (st >= s_abs) break;
      if (st + op.duration > s_abs) return false;  // phase cuts an execution
      if (st + op.duration > s_abs - back) {
        ops.push_back(ScheduledOp{op.elem, st, op.duration});
      }
    }
  }
  // b from its offset 0 at s_abs, far enough for every realignment
  // window.
  Time post_span = d_max;
  for (const TimingConstraint& c : model.constraints()) {
    if (!c.periodic()) continue;
    post_span = std::max(post_span, lcm_checked(len_b, c.period) + c.deadline);
  }
  const std::vector<ScheduledOp> b_ops = b.ops();
  const Time post_cycles = post_span / len_b + 2;
  for (Time k = 0; k < post_cycles; ++k) {
    for (const ScheduledOp& op : b_ops) {
      ops.push_back(ScheduledOp{op.elem, s_abs + k * len_b + op.start, op.duration});
    }
  }

  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    if (c.task_graph.empty()) continue;
    if (c.periodic()) {
      // Grid windows straddling the seam plus one full b-vs-grid
      // realignment cycle.
      const Time lcm_bp = lcm_checked(len_b, c.period);
      for (Time t = ((s_abs - c.deadline) / c.period + 1) * c.period;
           t < s_abs + lcm_bp; t += c.period) {
        if (!core::window_contains_execution(c.task_graph, ops, t, t + c.deadline)) {
          return false;
        }
      }
    } else {
      // Every window straddling the seam.
      for (Time t = s_abs - c.deadline + 1; t < s_abs; ++t) {
        if (!core::window_contains_execution(c.task_graph, ops, t, t + c.deadline)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

bool FailoverTable::admissible(std::size_t from, std::size_t to, Time phase,
                               Time when) const {
  if (from == to || from >= size() || to >= size()) return false;
  const std::vector<std::uint8_t>& cells = ok[from * size() + to];
  if (cells.empty()) return false;
  const Time len = schedules[from].length();
  const Time ph = ((phase % len) + len) % len;
  const Time g = ((when % grid) + grid) % grid;
  return cells[static_cast<std::size_t>(ph * grid + g)] != 0;
}

std::size_t FailoverTable::admissible_count(std::size_t from, std::size_t to) const {
  if (from == to || from >= size() || to >= size()) return 0;
  const std::vector<std::uint8_t>& cells = ok[from * size() + to];
  std::size_t n = 0;
  for (std::uint8_t c : cells) n += c != 0 ? 1 : 0;
  return n;
}

FailoverTable compute_failover_table(const core::GraphModel& model,
                                     std::vector<core::StaticSchedule> schedules,
                                     const FailoverOptions& options) {
  if (schedules.empty()) {
    throw std::invalid_argument("compute_failover_table: no schedules");
  }
  FailoverTable table;
  table.grid = 1;
  table.max_deadline = 1;
  for (const TimingConstraint& c : model.constraints()) {
    table.max_deadline = std::max(table.max_deadline, c.deadline);
    if (c.periodic()) table.grid = lcm_checked(table.grid, c.period);
  }

  core::IncrementalVerifier verifier(model);
  for (std::size_t k = 0; k < schedules.size(); ++k) {
    const StaticSchedule& s = schedules[k];
    if (s.length() == 0) {
      throw std::invalid_argument("compute_failover_table: schedule " +
                                  std::to_string(k) + " is empty");
    }
    const std::vector<std::string> issues = s.validate(model.comm());
    if (!issues.empty()) {
      throw std::invalid_argument("compute_failover_table: schedule " +
                                  std::to_string(k) + ": " + issues.front());
    }
    const core::FeasibilityReport report = verifier.verify(s);
    core::VerifyOptions vo;
    vo.n_threads = options.n_threads;
    if (core::verify_schedule(s, model, vo) != report) {
      throw std::logic_error(
          "compute_failover_table: verifier engines disagree (determinism bug)");
    }
    if (!report.feasible) {
      throw std::invalid_argument("compute_failover_table: schedule " +
                                  std::to_string(k) +
                                  " is infeasible; only feasible schedules can be "
                                  "failover targets");
    }
    table.reports.push_back(report);
  }

  const std::size_t n = schedules.size();
  table.ok.assign(n * n, {});
  for (std::size_t a = 0; a < n; ++a) {
    const Time len_a = schedules[a].length();
    const std::size_t cells = static_cast<std::size_t>(len_a) *
                              static_cast<std::size_t>(table.grid);
    if (cells > options.max_offsets) {
      throw std::invalid_argument(
          "compute_failover_table: schedule " + std::to_string(a) + " needs " +
          std::to_string(cells) + " admissibility cells (cap " +
          std::to_string(options.max_offsets) + "); raise max_offsets");
    }
    // Entry boundaries are the only offsets a table-driven executive
    // can switch at.
    std::vector<Time> boundaries;
    Time off = 0;
    for (const ScheduleEntry& e : schedules[a].entries()) {
      boundaries.push_back(off);
      off += e.duration;
    }
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      std::vector<std::uint8_t>& pair = table.ok[a * n + b];
      pair.assign(cells, 0);
      for (Time phase : boundaries) {
        for (Time g = 0; g < table.grid; ++g) {
          pair[static_cast<std::size_t>(phase * table.grid + g)] =
              seam_admissible(model, schedules[a], schedules[b], phase, g,
                              table.grid, table.max_deadline)
                  ? 1
                  : 0;
        }
      }
    }
  }
  table.schedules = std::move(schedules);
  return table;
}

std::vector<RecoveryBound> recovery_bounds(const core::StaticSchedule& sched,
                                           const core::GraphModel& model,
                                           const RecoveryOptions& options) {
  if (sched.length() == 0) {
    throw std::invalid_argument("recovery_bounds: empty schedule");
  }
  const Time len = sched.length();
  // Idle runs per period, at entry granularity: a retry op never spans
  // two runs (mirrors run_self_healing's dispatch rule).
  std::vector<std::pair<Time, Time>> runs;  // (start offset, length)
  {
    Time off = 0;
    for (const ScheduleEntry& e : sched.entries()) {
      if (e.elem == core::kIdleEntry) runs.emplace_back(off, e.duration);
      off += e.duration;
    }
  }
  // Earliest start >= t of a w-slot placement inside a single idle-run
  // instance (runs repeat every len slots); nullopt when no run fits w.
  const auto place = [&](Time t, Time w) -> std::optional<Time> {
    std::optional<Time> best;
    for (const auto& [s, l] : runs) {
      if (l < w) continue;
      for (Time c = std::max<Time>(0, (t - s) / len - 1);; ++c) {
        const Time start = std::max(t, s + c * len);
        if (start + w <= s + c * len + l) {
          if (!best || start < *best) best = start;
          break;
        }
      }
    }
    return best;
  };

  std::vector<RecoveryBound> bounds;
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    RecoveryBound rb;
    rb.constraint = i;
    if (c.task_graph.empty()) {
      rb.latency = 0;
      rb.redispatch = 0;
      rb.recoverable = true;
      bounds.push_back(std::move(rb));
      continue;
    }
    for (ElementId e : c.task_graph.labels()) {
      rb.detection = std::max(rb.detection, model.comm().weight(e));
    }
    if (c.periodic()) {
      const Time lcm_lp = lcm_checked(len, c.period);
      const std::size_t periods = static_cast<std::size_t>(
          (lcm_lp + 2 * c.deadline) / len + 2 * static_cast<Time>(c.task_graph.size() + 1) + 2);
      const std::vector<ScheduledOp> unrolled = core::unroll_ops(sched, periods);
      std::optional<Time> worst = 0;
      for (Time t = 0; t < lcm_lp; t += c.period) {
        const std::optional<Time> f =
            core::earliest_embedding_finish(c.task_graph, unrolled, t);
        if (!f) {
          worst = std::nullopt;
          break;
        }
        worst = std::max(*worst, *f - t);
      }
      rb.latency = worst;
    } else {
      rb.latency = core::schedule_latency(sched, c.task_graph);
    }
    // Worst-phase sequential placement of one full execution of C into
    // the cyclic idle pattern.
    {
      const std::vector<core::OpId> topo = c.task_graph.topological_ops();
      std::optional<Time> worst_w = 0;
      for (Time s0 = 0; s0 < len && worst_w; ++s0) {
        Time t = s0;
        for (core::OpId op : topo) {
          const Time w = model.comm().weight(c.task_graph.label(op));
          const std::optional<Time> st = place(t, w);
          if (!st) {
            worst_w = std::nullopt;
            break;
          }
          t = *st + w;
        }
        if (worst_w) worst_w = std::max(*worst_w, t - s0);
      }
      if (worst_w) rb.redispatch = *worst_w + options.retry_backoff;
    }
    rb.recoverable = rb.latency && rb.redispatch &&
                     *rb.latency + *rb.redispatch + rb.detection <= c.deadline;
    bounds.push_back(std::move(rb));
  }
  return bounds;
}

std::string_view recovery_action_name(RecoveryActionKind kind) {
  switch (kind) {
    case RecoveryActionKind::kRetry:
      return "retry";
    case RecoveryActionKind::kRetryGaveUp:
      return "retry-gave-up";
    case RecoveryActionKind::kResync:
      return "resync";
    case RecoveryActionKind::kFailover:
      return "failover";
    case RecoveryActionKind::kMigrate:
      return "migrate";
    case RecoveryActionKind::kReroute:
      return "reroute";
    case RecoveryActionKind::kRevert:
      return "revert";
  }
  return "?";
}

SelfHealingResult run_self_healing(const core::GraphModel& model,
                                   const FailoverTable& table,
                                   const core::ConstraintArrivals& arrivals,
                                   Time horizon, const SelfHealingConfig& config) {
  if (horizon < 0) {
    throw std::invalid_argument("run_self_healing: negative horizon");
  }
  if (table.size() == 0) {
    throw std::invalid_argument("run_self_healing: empty failover table");
  }
  if (config.initial >= table.size()) {
    throw std::invalid_argument("run_self_healing: initial schedule out of range");
  }
  const core::ArrivalValidation validation = core::validate_arrivals(model, arrivals);
  if (!validation.ok()) {
    throw std::invalid_argument("run_self_healing: " + validation.to_string());
  }
  std::optional<core::FaultInjector> injector;
  if (!config.faults.empty()) {
    const std::vector<std::string> issues =
        core::validate_fault_plan(config.faults, model);
    if (!issues.empty()) {
      throw std::invalid_argument("run_self_healing: " + issues.front());
    }
    injector.emplace(config.faults);
  }
  const RecoveryOptions& opts = config.recovery;

  SelfHealingResult result;
  result.executive.horizon = horizon;
  result.effective_arrivals =
      injector ? injector->apply_arrivals(model, arrivals) : arrivals;

  // --- Online monitor + violation trigger. ---------------------------
  monitor::StreamingMonitor mon(model);
  struct Trigger {
    std::size_t violations = 0;  ///< since the last switch
    Time first_detect = 0;
  } trig;
  Time now = 0;  // absolute time of the slot being emitted (for the listener)
  mon.set_violation_listener([&trig, &now](std::size_t, Time, Time) {
    if (trig.violations == 0) trig.first_detect = now;
    ++trig.violations;
  });

  sim::TraceAppender appender(result.trace);
  const auto emit = [&](sim::Slot s) {
    appender.on_slot(s);
    mon.on_slot(s);
    if (config.trace_sink != nullptr) config.trace_sink->on_slot(s);
  };

  std::vector<ScheduledOp> valid;  // surviving executions, time order
  std::vector<Time> latencies;     // detection-to-recovery samples

  const auto bump = [&](core::ExecutionFate f) {
    switch (f) {
      case core::ExecutionFate::kSlotLost:
        ++result.counters.slot_lost;
        break;
      case core::ExecutionFate::kElementDown:
        ++result.counters.element_down;
        break;
      case core::ExecutionFate::kDropped:
        ++result.counters.dropped;
        break;
      case core::ExecutionFate::kCorrupted:
        ++result.counters.corrupted;
        break;
      case core::ExecutionFate::kOk:
        break;
    }
  };

  // --- Retry machinery (single in-flight, FIFO). ---------------------
  struct Retry {
    std::size_t constraint = 0;
    Time onset = 0;
    Time detected = 0;
    Time eligible = 0;
    std::size_t attempts = 0;  ///< failed dispatch attempts so far
    std::size_t next_op = 0;
    ElementId faulted_elem = core::kAnyElement;
    std::vector<core::OpId> order;  ///< topological dispatch order
  };
  std::deque<Retry> queue;
  std::vector<bool> retry_pending(model.constraint_count(), false);

  const BackoffPolicy backoff = opts.backoff();

  const auto enqueue_retries = [&](const core::FaultEvent& ev) {
    if (!opts.retry) return;
    for (std::size_t i = 0; i < model.constraint_count(); ++i) {
      if (retry_pending[i]) continue;
      const core::TaskGraph& tg = model.constraint(i).task_graph;
      bool affected = false;
      for (ElementId e : tg.labels()) {
        if (e == ev.elem) {
          affected = true;
          break;
        }
      }
      if (!affected) continue;
      Retry r;
      r.constraint = i;
      r.onset = ev.at;
      r.detected = ev.detect_time();
      r.eligible = ev.detect_time() + backoff.delay_after(0);
      r.faulted_elem = ev.elem;
      r.order = tg.topological_ops();
      retry_pending[i] = true;
      queue.push_back(std::move(r));
    }
  };

  // --- Executive state. ----------------------------------------------
  std::size_t cur = config.initial;
  const std::vector<ScheduleEntry>* entries = &table.schedules[cur].entries();
  Time len = table.schedules[cur].length();
  const auto max_idle_run = [&]() {
    Time m = 0;
    for (const ScheduleEntry& e : *entries) {
      if (e.elem == core::kIdleEntry) m = std::max(m, e.duration);
    }
    return m;
  };
  Time idle_cap = max_idle_run();
  std::size_t entry_idx = 0;
  Time within = 0;  // table offset of the upcoming entry
  Time lag = 0;     // table slots behind wall time (drift)
  Time lag_onset = 0;
  Time drift_taken = 0;
  Time t = 0;
  Time last_switch = 0;
  bool want_failover = false;

  const auto advance_entry = [&](Time dur) {
    within += dur;
    if (within >= len) within -= len;
    ++entry_idx;
    if (entry_idx == entries->size()) entry_idx = 0;
  };

  const auto record_resync = [&]() {
    RecoveryAction a;
    a.kind = RecoveryActionKind::kResync;
    a.onset = lag_onset;
    a.detected = lag_onset;
    a.completed = t;
    result.actions.push_back(a);
    latencies.push_back(a.detection_to_recovery());
  };

  // Re-confirm the nominal seam verdict against the *realized* recent
  // trace: block the switch if some still-open window that staying
  // would satisfy (nominal continuation of the current schedule over
  // the surviving past) would be lost by switching.
  const auto confirm_switch = [&](std::size_t target) -> bool {
    const Time d_max = table.max_deadline;
    std::vector<ScheduledOp> past;
    for (auto it = valid.rbegin(); it != valid.rend(); ++it) {
      if (it->finish() + d_max <= t) break;
      past.push_back(*it);
    }
    std::reverse(past.begin(), past.end());
    const auto future_of = [&](std::size_t k, Time phase) {
      const StaticSchedule& s = table.schedules[k];
      std::vector<ScheduledOp> fut;
      const std::vector<ScheduledOp> s_ops = s.ops();
      for (Time base = t - phase; base < t + d_max; base += s.length()) {
        for (const ScheduledOp& op : s_ops) {
          const Time st = base + op.start;
          if (st < t) continue;
          if (st >= t + d_max) break;
          fut.push_back(ScheduledOp{op.elem, st, op.duration});
        }
      }
      return fut;
    };
    const std::vector<ScheduledOp> fut_stay = future_of(cur, within);
    const std::vector<ScheduledOp> fut_go = future_of(target, 0);
    const auto contains = [&](const core::TaskGraph& tg,
                              const std::vector<ScheduledOp>& fut, Time begin,
                              Time end) {
      std::vector<ScheduledOp> ops = past;
      ops.insert(ops.end(), fut.begin(), fut.end());
      return core::window_contains_execution(tg, ops, begin, end);
    };
    for (std::size_t i = 0; i < model.constraint_count(); ++i) {
      const TimingConstraint& c = model.constraint(i);
      if (c.task_graph.empty()) continue;
      const Time stride = c.periodic() ? c.period : 1;
      Time t0 = c.periodic()
                    ? (t > c.deadline ? ((t - c.deadline) / c.period + 1) * c.period : 0)
                    : std::max<Time>(0, t - c.deadline + 1);
      for (; t0 < t; t0 += stride) {
        if (contains(c.task_graph, fut_stay, t0, t0 + c.deadline) &&
            !contains(c.task_graph, fut_go, t0, t0 + c.deadline)) {
          return false;
        }
      }
    }
    return true;
  };

  // --- Slot loop. -----------------------------------------------------
  while (t < horizon) {
    // Clock drift: emit the owed stall slots; the table falls behind.
    if (injector) {
      const Time owed = injector->drift_before(t) - drift_taken;
      if (owed > 0) {
        if (lag == 0) lag_onset = t;
        now = t;
        emit(sim::kIdle);
        ++t;
        ++drift_taken;
        ++lag;
        // A whole period of lag is alignment-neutral (the schedule's
        // grid proof holds for any base that is a multiple of its
        // length).
        if (lag == len) {
          lag = 0;
          if (opts.resync) record_resync();
        }
        continue;
      }
    }

    // A retry whose next op cannot fit any idle entry of the current
    // schedule would head-block the queue forever: give up now.
    if (!queue.empty() && queue.front().next_op < queue.front().order.size()) {
      const Retry& r = queue.front();
      const core::TaskGraph& tg = model.constraint(r.constraint).task_graph;
      if (model.comm().weight(tg.label(r.order[r.next_op])) > idle_cap) {
        RecoveryAction a;
        a.kind = RecoveryActionKind::kRetryGaveUp;
        a.onset = r.onset;
        a.detected = r.detected;
        a.completed = t;
        a.elem = r.faulted_elem;
        a.constraint = r.constraint;
        a.attempts = r.attempts;
        result.actions.push_back(a);
        ++result.retries_abandoned;
        retry_pending[r.constraint] = false;
        queue.pop_front();
        continue;
      }
    }

    // Failover: arm on the violation threshold, take the switch only at
    // an admissible (phase, grid) cell while fully aligned and with no
    // partially placed retry.
    if (opts.failover && table.size() > 1 && !want_failover &&
        trig.violations >= opts.failover_violations &&
        t - last_switch >= opts.min_dwell) {
      want_failover = true;
    }
    if (want_failover && lag == 0 &&
        (queue.empty() || queue.front().next_op == 0)) {
      bool switched = false;
      for (std::size_t off = 1; off < table.size() && !switched; ++off) {
        const std::size_t target = (cur + off) % table.size();
        if (!table.admissible(cur, target, within, t)) continue;
        if (opts.confirm_online && !confirm_switch(target)) continue;
        RecoveryAction a;
        a.kind = RecoveryActionKind::kFailover;
        a.onset = trig.first_detect;
        a.detected = trig.first_detect;
        a.completed = t;
        a.from_schedule = cur;
        a.to_schedule = target;
        result.actions.push_back(a);
        latencies.push_back(a.detection_to_recovery());
        cur = target;
        entries = &table.schedules[cur].entries();
        len = table.schedules[cur].length();
        idle_cap = max_idle_run();
        entry_idx = 0;
        within = 0;
        last_switch = t;
        trig.violations = 0;
        want_failover = false;
        switched = true;
      }
      if (!switched) ++result.blocked_switches;
    }

    const ScheduleEntry entry = (*entries)[entry_idx];
    if (entry.elem == core::kIdleEntry) {
      Time remaining = entry.duration;
      // Resync: absorb drift lag into idle table slots (the table
      // advances, wall time does not).
      if (opts.resync && lag > 0) {
        const Time absorb = std::min(lag, remaining);
        lag -= absorb;
        remaining -= absorb;
        if (lag == 0) record_resync();
      }
      while (remaining > 0 && t < horizon) {
        bool dispatched = false;
        if (!queue.empty()) {
          Retry& r = queue.front();
          if (t >= r.eligible && r.next_op < r.order.size()) {
            const core::TaskGraph& tg = model.constraint(r.constraint).task_graph;
            const ElementId e = tg.label(r.order[r.next_op]);
            const Time w = model.comm().weight(e);
            if (w <= remaining && t + w <= horizon) {
              ++result.retries_dispatched;
              const core::ExecutionFate fate =
                  injector ? injector->fate(e, t, w) : core::ExecutionFate::kOk;
              const bool ok = fate == core::ExecutionFate::kOk;
              const Time start = t;
              for (Time k = 0; k < w; ++k) {
                now = t;
                emit(ok ? static_cast<sim::Slot>(e) : sim::kIdle);
                ++t;
              }
              remaining -= w;
              if (ok) {
                valid.push_back(ScheduledOp{e, start, w});
                ++r.next_op;
                if (r.next_op == r.order.size()) {
                  RecoveryAction a;
                  a.kind = RecoveryActionKind::kRetry;
                  a.onset = r.onset;
                  a.detected = r.detected;
                  a.completed = t;
                  a.elem = r.faulted_elem;
                  a.constraint = r.constraint;
                  a.attempts = r.attempts + 1;
                  result.actions.push_back(a);
                  latencies.push_back(a.detection_to_recovery());
                  ++result.retries_succeeded;
                  retry_pending[r.constraint] = false;
                  queue.pop_front();
                }
              } else {
                const core::FaultEvent ev{fate, e, start, w};
                result.fault_events.push_back(ev);
                bump(fate);
                ++r.attempts;
                if (r.attempts >= opts.max_retries) {
                  RecoveryAction a;
                  a.kind = RecoveryActionKind::kRetryGaveUp;
                  a.onset = r.onset;
                  a.detected = r.detected;
                  a.completed = t;
                  a.elem = r.faulted_elem;
                  a.constraint = r.constraint;
                  a.attempts = r.attempts;
                  result.actions.push_back(a);
                  ++result.retries_abandoned;
                  retry_pending[r.constraint] = false;
                  queue.pop_front();
                } else {
                  r.eligible = ev.detect_time() + backoff.delay_after(r.attempts);
                }
              }
              dispatched = true;
            }
          }
        }
        if (!dispatched) {
          now = t;
          emit(sim::kIdle);
          ++t;
          --remaining;
        }
      }
      advance_entry(entry.duration);
    } else {
      const Time w = entry.duration;
      const core::ExecutionFate fate =
          injector ? injector->fate(entry.elem, t, w) : core::ExecutionFate::kOk;
      const bool ok = fate == core::ExecutionFate::kOk;
      const Time start = t;
      for (Time k = 0; k < w && t < horizon; ++k) {
        now = t;
        emit(ok ? static_cast<sim::Slot>(entry.elem) : sim::kIdle);
        ++t;
      }
      ++result.executive.dispatches;
      if (ok) {
        if (start + w <= horizon) valid.push_back(ScheduledOp{entry.elem, start, w});
      } else if (start < horizon) {
        const core::FaultEvent ev{fate, entry.elem, start, w};
        result.fault_events.push_back(ev);
        bump(fate);
        enqueue_retries(ev);
      }
      advance_entry(w);
    }
  }
  result.counters.drift_slots = drift_taken;

  // --- Offline re-verification of every invocation (same semantics as
  // run_executive_with_faults). -----------------------------------------
  for (std::size_t i = 0; i < model.constraint_count(); ++i) {
    const TimingConstraint& c = model.constraint(i);
    std::vector<Time> instants;
    if (c.periodic()) {
      for (Time ti = 0; ti + c.deadline <= horizon; ti += c.period) {
        instants.push_back(ti);
      }
    } else {
      for (Time ti : result.effective_arrivals[i]) {
        if (ti + c.deadline <= horizon) instants.push_back(ti);
      }
    }
    for (Time ti : instants) {
      core::InvocationRecord rec;
      rec.constraint = i;
      rec.invoked = ti;
      rec.abs_deadline = ti + c.deadline;
      const std::optional<Time> finish =
          core::earliest_embedding_finish(c.task_graph, valid, ti);
      if (finish && *finish <= rec.abs_deadline) {
        rec.completed = finish;
        rec.satisfied = true;
      } else {
        rec.satisfied = false;
        result.executive.all_met = false;
      }
      result.executive.invocations.push_back(rec);
    }
  }

  result.monitor = mon.report();
  result.final_schedule = cur;
  if (!latencies.empty()) {
    Time sum = 0;
    for (Time l : latencies) {
      sum += l;
      result.max_detection_to_recovery = std::max(result.max_detection_to_recovery, l);
    }
    result.mean_detection_to_recovery =
        static_cast<double>(sum) / static_cast<double>(latencies.size());
  }
  return result;
}

}  // namespace rtg::rt
