#include "rt/task.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rtg::rt {

TaskSet::TaskSet(std::vector<Task> tasks) {
  for (auto& t : tasks) add(std::move(t));
}

std::size_t TaskSet::add(Task t) {
  if (t.c < 1 || t.p < 1 || t.d < 1) {
    throw std::invalid_argument("TaskSet::add: c, p, d must be >= 1");
  }
  if (t.critical_section < 0 || t.critical_section > t.c) {
    throw std::invalid_argument("TaskSet::add: critical_section out of [0, c]");
  }
  tasks_.push_back(std::move(t));
  return tasks_.size() - 1;
}

double TaskSet::utilization() const {
  double u = 0.0;
  for (const Task& t : tasks_) u += t.utilization();
  return u;
}

double TaskSet::density() const {
  double u = 0.0;
  for (const Task& t : tasks_) {
    u += static_cast<double>(t.c) / static_cast<double>(std::min(t.p, t.d));
  }
  return u;
}

Time lcm_checked(Time a, Time b) {
  const Time g = std::gcd(a, b);
  const Time a_over_g = a / g;
  if (a_over_g != 0 && b > std::numeric_limits<Time>::max() / a_over_g) {
    throw std::overflow_error("lcm_checked: overflow");
  }
  return a_over_g * b;
}

Time TaskSet::hyperperiod() const {
  Time h = 1;
  for (const Task& t : tasks_) h = lcm_checked(h, t.p);
  return h;
}

Time TaskSet::max_deadline() const {
  Time d = 0;
  for (const Task& t : tasks_) d = std::max(d, t.d);
  return d;
}

bool TaskSet::constrained_deadlines() const {
  return std::all_of(tasks_.begin(), tasks_.end(),
                     [](const Task& t) { return t.d <= t.p; });
}

}  // namespace rtg::rt
