#include "rt/scheduler.hpp"

#include "rt/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rtg::rt {

std::size_t SimResult::miss_count() const {
  std::size_t n = 0;
  for (const JobRecord& j : jobs) {
    if (j.missed()) ++n;
  }
  return n;
}

Time SimResult::worst_response(std::size_t task) const {
  Time worst = -1;
  for (const JobRecord& j : jobs) {
    if (j.task == task && j.completed()) {
      worst = std::max(worst, j.response_time());
    }
  }
  return worst;
}

namespace {

// Live job state during simulation; `record` indexes SimResult::jobs.
struct LiveJob {
  std::size_t task;
  std::size_t record;
  Time abs_deadline;
  Time remaining;
  Time executed = 0;  // slots already run (for critical-section tracking)
};

// True when the job is inside its non-preemptible critical-section
// prefix: it has started but not yet left the first `cs` slots.
bool in_critical_section(const LiveJob& job, const TaskSet& ts) {
  const Time cs = ts[job.task].critical_section;
  return job.executed > 0 && job.executed < cs;
}

}  // namespace

SimResult simulate(const TaskSet& ts, Policy policy, Time horizon,
                   const ArrivalStreams* arrivals) {
  if (horizon < 0) throw std::invalid_argument("simulate: negative horizon");

  // Validate / default arrival streams.
  ArrivalStreams empty_streams;
  const ArrivalStreams& streams = arrivals ? *arrivals : empty_streams;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].arrival == Arrival::kSporadic) {
      if (!arrivals || i >= streams.size()) {
        throw std::invalid_argument("simulate: sporadic task lacks arrival stream");
      }
      const auto& s = streams[i];
      for (std::size_t k = 1; k < s.size(); ++k) {
        if (s[k] - s[k - 1] < ts[i].p) {
          throw std::invalid_argument("simulate: arrival stream violates min separation");
        }
      }
    }
  }

  // Static priorities for RM/DM (rank position; lower = higher priority).
  std::vector<std::size_t> static_rank(ts.size(), 0);
  if (policy == Policy::kRm || policy == Policy::kDm) {
    const auto order = priority_order(ts, policy == Policy::kRm
                                              ? PriorityOrder::kRateMonotonic
                                              : PriorityOrder::kDeadlineMonotonic);
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      static_rank[order[rank]] = rank;
    }
  }

  SimResult result;
  std::vector<LiveJob> ready;
  std::vector<std::size_t> next_arrival(ts.size(), 0);

  for (Time now = 0; now < horizon; ++now) {
    // Releases at `now`.
    for (std::size_t i = 0; i < ts.size(); ++i) {
      bool release = false;
      if (ts[i].arrival == Arrival::kPeriodic) {
        release = (now % ts[i].p) == 0;
      } else {
        const auto& s = streams[i];
        if (next_arrival[i] < s.size() && s[next_arrival[i]] == now) {
          release = true;
          ++next_arrival[i];
        }
      }
      if (release) {
        result.jobs.push_back(JobRecord{i, now, now + ts[i].d, -1});
        ready.push_back(LiveJob{i, result.jobs.size() - 1, now + ts[i].d, ts[i].c, 0});
      }
    }

    if (ready.empty()) {
      result.trace.append_idle();
      continue;
    }

    // A job inside its critical section is non-preemptible: it runs.
    std::size_t chosen = ready.size();
    for (std::size_t k = 0; k < ready.size(); ++k) {
      if (in_critical_section(ready[k], ts)) {
        chosen = k;
        break;
      }
    }
    if (chosen == ready.size()) {
      // Pick by policy; ties broken by earliest release (record index).
      auto better = [&](const LiveJob& a, const LiveJob& b) {
        switch (policy) {
          case Policy::kEdf:
            if (a.abs_deadline != b.abs_deadline) return a.abs_deadline < b.abs_deadline;
            break;
          case Policy::kRm:
          case Policy::kDm:
            if (static_rank[a.task] != static_rank[b.task]) {
              return static_rank[a.task] < static_rank[b.task];
            }
            break;
          case Policy::kLlf: {
            const Time la = a.abs_deadline - now - a.remaining;
            const Time lb = b.abs_deadline - now - b.remaining;
            if (la != lb) return la < lb;
            break;
          }
        }
        return a.record < b.record;
      };
      chosen = 0;
      for (std::size_t k = 1; k < ready.size(); ++k) {
        if (better(ready[k], ready[chosen])) chosen = k;
      }
    }

    LiveJob& job = ready[chosen];
    result.trace.append(static_cast<sim::Slot>(job.task));
    ++job.executed;
    if (--job.remaining == 0) {
      result.jobs[job.record].completion = now + 1;
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(chosen));
    }
  }
  return result;
}

std::vector<Time> max_rate_arrivals(Time min_sep, Time horizon) {
  if (min_sep < 1) throw std::invalid_argument("max_rate_arrivals: min_sep < 1");
  std::vector<Time> out;
  for (Time t = 0; t < horizon; t += min_sep) out.push_back(t);
  return out;
}

std::vector<Time> random_arrivals(Time min_sep, Time horizon, double extra_mean,
                                  sim::Rng& rng) {
  if (min_sep < 1) throw std::invalid_argument("random_arrivals: min_sep < 1");
  if (extra_mean < 0) throw std::invalid_argument("random_arrivals: negative mean");
  std::vector<Time> out;
  Time t = 0;
  while (t < horizon) {
    out.push_back(t);
    Time extra = 0;
    if (extra_mean > 0) {
      // Geometric with mean extra_mean: number of failures before a
      // success with success probability 1/(1+mean).
      const double q = extra_mean / (1.0 + extra_mean);
      while (rng.chance(q) && extra < horizon) ++extra;
    }
    t += min_sep + extra;
  }
  return out;
}

}  // namespace rtg::rt
