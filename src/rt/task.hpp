// task.hpp — process-based task model ([MOK 83] substrate).
//
// The paper's baseline synthesis maps each timing constraint onto a
// periodic or sporadic *process*; the resulting process sets are then
// analyzed and scheduled with the classical results of Mok's thesis
// (EDF, least-laxity, utilization bounds). This module defines that
// process model: tasks with computation time c, period (or minimum
// separation) p, and relative deadline d.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"  // for Time

namespace rtg::rt {

using sim::Time;

/// How a task's instances arrive.
enum class Arrival : std::uint8_t {
  kPeriodic,  ///< released exactly every p slots starting at time 0
  kSporadic,  ///< released at arbitrary instants >= p apart
};

/// A real-time task (process). Invariants: c >= 1, p >= 1, d >= 1.
struct Task {
  std::string name;
  Time c = 1;  ///< worst-case computation time (slots)
  Time p = 1;  ///< period / minimum separation (slots)
  Time d = 1;  ///< relative deadline (slots)
  Arrival arrival = Arrival::kPeriodic;
  /// Longest non-preemptible critical section inside the task body
  /// (monitor call), used as a blocking term in analysis. 0 = none.
  Time critical_section = 0;

  [[nodiscard]] double utilization() const {
    return static_cast<double>(c) / static_cast<double>(p);
  }
  [[nodiscard]] double density() const {
    return static_cast<double>(c) / static_cast<double>(d);
  }
};

/// An ordered collection of tasks.
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<Task> tasks);

  /// Validates invariants and appends. Throws std::invalid_argument on
  /// non-positive c/p/d or d-less-than-c being allowed (d < c is permitted —
  /// such a task is trivially unschedulable and analysis reports so).
  std::size_t add(Task t);

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return tasks_.empty(); }
  [[nodiscard]] const Task& operator[](std::size_t i) const { return tasks_.at(i); }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  /// Σ c_i / p_i.
  [[nodiscard]] double utilization() const;
  /// Σ c_i / min(p_i, d_i).
  [[nodiscard]] double density() const;
  /// lcm of all periods; 1 when empty. Throws std::overflow_error when
  /// the lcm does not fit in Time.
  [[nodiscard]] Time hyperperiod() const;
  /// Largest relative deadline; 0 when empty.
  [[nodiscard]] Time max_deadline() const;
  /// True iff every task has d <= p (constrained deadlines).
  [[nodiscard]] bool constrained_deadlines() const;

 private:
  std::vector<Task> tasks_;
};

/// lcm with overflow detection.
[[nodiscard]] Time lcm_checked(Time a, Time b);

}  // namespace rtg::rt
