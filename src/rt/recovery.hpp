// recovery.hpp — the self-healing executive: online recovery policies
// over a static schedule, with verified hot failover.
//
// The table-driven executive of core/runtime is blind: it dispatches
// the static schedule and hopes. Under the fault plans of
// core/fault_injection that is exactly the no-recovery baseline
// (run_executive_with_faults). This module closes the loop. A
// RecoveryManager-style run (run_self_healing) consumes
// monitor::StreamingMonitor violation events *online* and reacts with
// three policies, cheapest first:
//
//   * retry    — a faulted dispatch (drop / corruption / outage) is
//     answered by re-dispatching the *entire task graph* of every
//     affected constraint into upcoming idle slots, with exponential
//     backoff. Re-dispatching only the faulted element would be
//     useless for chains: the downstream table executions have already
//     run against the lost output, so only a fresh complete execution
//     of C can still satisfy a window.
//   * resync   — clock drift inserts idle slots and leaves the table
//     position lagging absolute time; the executive re-synchronizes by
//     absorbing the lag into idle entries (advancing the table without
//     consuming wall time) until the nominal alignment — which the
//     schedule's feasibility proof assumes — is restored.
//   * failover — persistent violations escalate to a hot switch onto a
//     precomputed fallback schedule. A switch is taken only at a slot
//     the FailoverTable proves admissible under Mok's latency
//     semantics (below), never mid-execution, never while lagging.
//
// Failover admissibility. Switching from schedule a (at table offset
// "phase", absolute time S) to schedule b (restarted at its offset 0)
// splices two cyclic traces. Steady-state windows are covered by each
// schedule's own feasibility proof; what must be checked is the seam:
//
//   * asynchronous (C, p, d): every window [t, t+d) with
//     S - d < t < S straddles the seam — it must contain an execution
//     of C inside the spliced trace (a's tail at this phase followed
//     by b's head);
//   * periodic (C, p, d): the grid windows t = kp straddling S, plus
//     every grid window in [S, S + lcm(|b|, p)) — b restarts at S, so
//     its alignment against the invocation grid differs from the
//     grid-0 alignment its feasibility proof used; one lcm(|b|, p)
//     span covers every residue (t - S) mod |b| that will ever occur,
//     so passing it extends to all later grid windows by periodicity.
//
// The spliced-window content is a pure function of (phase, S mod G)
// where G = lcm of the periodic periods, so the table is a finite
// (phase x grid) admissibility matrix per ordered schedule pair.
// The same periodicity argument makes the scheme compose across
// repeated failovers: each switch's realignment check covers all grid
// windows until the *next* switch, whose own check takes over.
//
// Every schedule entering a FailoverTable is verified feasible through
// core::IncrementalVerifier, and every verification is bit-identical
// across verifier thread counts (see core/latency.hpp), which is what
// the determinism pin test relies on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/fault_injection.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/runtime.hpp"
#include "core/static_schedule.hpp"
#include "monitor/streaming_monitor.hpp"
#include "sim/trace.hpp"

namespace rtg::rt {

using core::Time;

/// Exponential-backoff schedule shared by the recovery executive's
/// retry policy and the service layer's job retries: attempt k (0-based
/// count of failures so far) becomes eligible `delay_after(k)` slots
/// after its failure was detected.
struct BackoffPolicy {
  /// Delay before the first re-dispatch (attempts == 0).
  Time initial = 1;
  /// Multiplier per failed attempt (exponential).
  double factor = 2.0;
  /// Attempts before a retry is abandoned.
  std::size_t max_retries = 3;

  [[nodiscard]] Time delay_after(std::size_t attempts) const {
    double b = static_cast<double>(initial);
    for (std::size_t k = 0; k < attempts; ++k) b *= factor;
    // Saturate instead of overflowing Time on absurd attempt counts.
    return static_cast<Time>(std::min(b, 1.0e15));
  }

  [[nodiscard]] bool exhausted(std::size_t attempts) const {
    return attempts >= max_retries;
  }
};

/// Knobs of the online recovery policies.
struct RecoveryOptions {
  // Retry (lost / corrupted / dropped service).
  bool retry = true;
  /// Slots between detecting a fault and the first re-dispatch.
  Time retry_backoff = 1;
  /// Backoff multiplier per failed attempt (exponential).
  double backoff_factor = 2.0;
  /// Attempts before a retry is abandoned (kRetryGaveUp).
  std::size_t max_retries = 3;

  /// The three retry knobs above, as a BackoffPolicy.
  [[nodiscard]] BackoffPolicy backoff() const {
    return BackoffPolicy{retry_backoff, backoff_factor, max_retries};
  }
  // Resync (clock drift).
  bool resync = true;
  // Failover.
  bool failover = true;
  /// Monitor violations since the last switch that trigger a failover
  /// request.
  std::size_t failover_violations = 1;
  /// Minimum slots between consecutive switches.
  Time min_dwell = 0;
  /// Re-confirm the switch against the *realized* (faulted) recent
  /// trace: block it if some seam window that staying would satisfy
  /// would be lost by switching. The table already proves the nominal
  /// seam; this guards the cases where faults emptied a's tail.
  bool confirm_online = true;
  /// Verifier threads used while building bounds/tables (results are
  /// bit-identical at every value; see core/latency.hpp).
  std::size_t n_threads = 1;
};

/// Options of compute_failover_table.
struct FailoverOptions {
  /// Cap on phase x grid admissibility cells per schedule pair; larger
  /// tables throw std::invalid_argument (pick coarser schedules or
  /// fewer fallbacks).
  std::size_t max_offsets = 4096;
  /// Verifier threads (bit-identical results at every value).
  std::size_t n_threads = 1;
};

/// Precomputed hot-failover admissibility between fallback schedules.
/// Build with compute_failover_table; query admissible() at run time.
struct FailoverTable {
  /// The fallback schedule set (index = schedule id).
  std::vector<core::StaticSchedule> schedules;
  /// Per schedule: its feasibility report (always feasible; the
  /// builder throws otherwise).
  std::vector<core::FeasibilityReport> reports;
  /// G = lcm of the periodic constraint periods (1 when none).
  Time grid = 1;
  /// Largest constraint deadline (seam lookback).
  Time max_deadline = 0;
  /// ok[a * size() + b][phase * grid + g] != 0 iff switching a -> b at
  /// table offset `phase` and absolute time == g (mod grid) is
  /// admissible. Only entry-boundary phases can be admissible.
  std::vector<std::vector<std::uint8_t>> ok;

  [[nodiscard]] std::size_t size() const { return schedules.size(); }

  /// Is switching from schedule `from` at table offset `phase` to
  /// schedule `to` (offset 0) admissible at absolute time `when`?
  [[nodiscard]] bool admissible(std::size_t from, std::size_t to, Time phase,
                                Time when) const;

  /// Admissible (phase, grid) cells of the ordered pair.
  [[nodiscard]] std::size_t admissible_count(std::size_t from, std::size_t to) const;
};

/// Builds the admissibility table over `schedules` for `model`. Every
/// schedule must validate against the communication graph and verify
/// feasible (checked through core::IncrementalVerifier and
/// cross-checked by the parallel engine at `options.n_threads`);
/// std::invalid_argument otherwise.
[[nodiscard]] FailoverTable compute_failover_table(
    const core::GraphModel& model, std::vector<core::StaticSchedule> schedules,
    const FailoverOptions& options = {});

/// Conservative per-constraint recoverability bound for single-fault
/// windows. A window invalidated by one fault is still satisfiable by
/// retry when
///
///     latency + redispatch + detection <= d
///
/// latency L: worst nominal wait for an embedding (async: the
/// schedule's latency; periodic: the worst grid window's finish - t).
/// redispatch W: worst time to place one full execution of C into the
/// schedule's cyclic idle pattern starting from the worst offset,
/// plus the initial retry backoff. detection δ: worst detection delay
/// of a fault (a corruption is only known at completion, so the max
/// element weight of C). The bound is sufficient, not necessary —
/// it assumes the retry itself is not struck again in the same window.
struct RecoveryBound {
  std::size_t constraint = 0;
  std::optional<Time> latency;     ///< L; nullopt = infinite
  std::optional<Time> redispatch;  ///< W; nullopt = C cannot be placed in idle
  Time detection = 0;              ///< δ
  bool recoverable = false;        ///< L + W + δ <= d (both finite)
};

[[nodiscard]] std::vector<RecoveryBound> recovery_bounds(
    const core::StaticSchedule& sched, const core::GraphModel& model,
    const RecoveryOptions& options = {});

/// What a recovery action was.
enum class RecoveryActionKind : std::uint8_t {
  kRetry,        ///< full task-graph re-dispatch completed
  kRetryGaveUp,  ///< retry abandoned after max_retries attempts
  kResync,       ///< drift lag fully absorbed back into the table
  kFailover,     ///< hot switch onto a fallback schedule
  // Platform-level actions, logged by map::run_deployment_with_faults
  // (the cross-processor generalization of kFailover):
  kMigrate,      ///< switch onto a MigrationTable entry (processor loss)
  kReroute,      ///< regenerated link slot tables (link loss/degrade)
  kRevert,       ///< back onto the nominal deployment after repair
};

[[nodiscard]] std::string_view recovery_action_name(RecoveryActionKind kind);

/// One recovery decision, for logs and the E19 latency metrics.
struct RecoveryAction {
  RecoveryActionKind kind = RecoveryActionKind::kRetry;
  Time onset = 0;      ///< when the disturbance began
  Time detected = 0;   ///< when the executive could first know
  Time completed = 0;  ///< when the action finished (gave up: decision time)
  core::ElementId elem = core::kAnyElement;  ///< retry: faulted element
  std::size_t constraint = core::kAnyConstraint;  ///< retry: re-dispatched C
  std::size_t attempts = 0;                       ///< retry: dispatch attempts
  std::size_t from_schedule = 0;  ///< failover: source schedule
  std::size_t to_schedule = 0;    ///< failover: target schedule

  [[nodiscard]] Time detection_to_recovery() const { return completed - detected; }
};

/// Configuration of one self-healing run.
struct SelfHealingConfig {
  RecoveryOptions recovery;
  /// Faults injected into the run (empty = fault-free).
  core::FaultPlan faults;
  /// Schedule the run starts on (index into the table).
  std::size_t initial = 0;
  /// Optional observer of the visible slot timeline.
  sim::TraceSink* trace_sink = nullptr;
};

/// Outcome of a self-healing run.
struct SelfHealingResult {
  /// Offline re-verification of every invocation against the surviving
  /// executions (same semantics as run_executive_with_faults).
  core::ExecutiveResult executive;
  /// The online monitor's verdict over the visible trace.
  monitor::MonitorReport monitor;
  /// The visible slot timeline (valid executions busy, all else idle).
  sim::ExecutionTrace trace;
  /// Arrivals after jitter + re-legalization.
  core::ConstraintArrivals effective_arrivals;
  /// Every recovery decision, in time order.
  std::vector<RecoveryAction> actions;
  std::vector<core::FaultEvent> fault_events;
  core::FaultCounters counters;
  std::size_t final_schedule = 0;
  std::size_t retries_dispatched = 0;
  std::size_t retries_succeeded = 0;
  std::size_t retries_abandoned = 0;
  /// Failover requests deferred because the current slot was not
  /// admissible (or confirm_online vetoed it).
  std::size_t blocked_switches = 0;
  /// Detection-to-recovery latency over completed retry/resync/failover
  /// actions.
  double mean_detection_to_recovery = 0.0;
  Time max_detection_to_recovery = 0;

  [[nodiscard]] std::size_t failovers() const {
    std::size_t n = 0;
    for (const RecoveryAction& a : actions) {
      if (a.kind == RecoveryActionKind::kFailover) ++n;
    }
    return n;
  }
};

/// Runs the self-healing executive for `horizon` slots on
/// table.schedules[config.initial], injecting config.faults, feeding a
/// StreamingMonitor online, and applying the recovery policies. Throws
/// std::invalid_argument on an empty table, a bad initial index,
/// malformed arrivals, or an invalid fault plan. With recovery
/// disabled and an empty plan the realized trace is the nominal
/// round-robin trace of the initial schedule.
[[nodiscard]] SelfHealingResult run_self_healing(const core::GraphModel& model,
                                                 const FailoverTable& table,
                                                 const core::ConstraintArrivals& arrivals,
                                                 Time horizon,
                                                 const SelfHealingConfig& config = {});

}  // namespace rtg::rt
