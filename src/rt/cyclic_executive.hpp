// cyclic_executive.hpp — frame-based cyclic executives for periodic
// process sets.
//
// The classical pre-computed-table counterpart of the paper's static
// schedules on the *process* side: time is divided into fixed frames of
// size f; each job is assigned to frames between its release and
// deadline. Frame-size constraints (Liu):
//   (1) f >= max_i c_i            (a job fits in one frame);
//   (2) f divides the hyperperiod H;
//   (3) 2f - gcd(f, p_i) <= d_i   (a frame boundary falls early enough
//                                  inside every period for detection).
// Job-to-frame assignment is earliest-deadline-first bin packing.
// Used as the process-model baseline against graph-based static
// schedules (they look similar but the cyclic executive cannot share
// work between processes, and it handles sporadic constraints only by
// polling servers).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "rt/task.hpp"
#include "sim/trace.hpp"

namespace rtg::rt {

/// Per-slot transform applied during emission: receives the absolute
/// slot time and the table's symbol, returns the symbol actually
/// delivered. Lets fault layers (e.g. core's FaultInjector::
/// make_slot_filter) perturb a cyclic executive's trace without this
/// module depending on them.
using SlotTransform = std::function<sim::Slot(Time, sim::Slot)>;

/// One scheduled job slice inside a frame.
struct FrameEntry {
  std::size_t task = 0;
  Time slots = 0;  ///< execution time allotted within this frame
};

struct CyclicExecutive {
  Time frame_size = 0;
  Time hyperperiod = 0;
  /// frames[k] lists the job slices run in frame k (k in [0, H/f)).
  std::vector<std::vector<FrameEntry>> frames;

  /// Streams the table's slot-level trace of one hyperperiod into a
  /// sink (slices in frame order, frame tails idle-filled).
  void emit(sim::TraceSink& sink) const;

  /// Like emit, but every slot passes through `transform` first (slot
  /// times count from `start`). A null transform behaves like emit.
  void emit(sim::TraceSink& sink, const SlotTransform& transform,
            Time start = 0) const;

  /// Flattens the table into a slot-level trace of one hyperperiod.
  [[nodiscard]] sim::ExecutionTrace to_trace() const;
};

/// Frame sizes satisfying conditions (1)-(3), ascending. Empty when no
/// divisor of H qualifies.
[[nodiscard]] std::vector<Time> candidate_frame_sizes(const TaskSet& ts);

/// Builds a cyclic executive with the given frame size using EDF-ordered
/// first-fit packing (jobs may split across frames — "slicing" — which
/// classical cyclic executives permit by splitting the procedure).
/// Returns nullopt if some job cannot be packed by its deadline.
/// Requires: all tasks periodic, f a candidate frame size.
[[nodiscard]] std::optional<CyclicExecutive> build_cyclic_executive(const TaskSet& ts,
                                                                    Time frame_size);

/// Convenience: tries every candidate frame size (largest first, which
/// minimizes dispatch overhead) and returns the first that packs.
[[nodiscard]] std::optional<CyclicExecutive> build_cyclic_executive(const TaskSet& ts);

}  // namespace rtg::rt
