#include "rt/polling_server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.hpp"

namespace rtg::rt {

std::size_t PollingServerResult::periodic_misses() const {
  std::size_t n = 0;
  for (const JobRecord& j : periodic_jobs) {
    if (j.missed()) ++n;
  }
  return n;
}

Time PollingServerResult::worst_aperiodic_response() const {
  Time worst = -1;
  for (const ServedJob& j : aperiodic_jobs) {
    if (j.completed()) worst = std::max(worst, j.response_time());
  }
  return worst;
}

namespace {

// Shared engine for the polling and deferrable variants; `forfeit`
// selects the polling rule (budget dropped whenever the queue is empty
// at a service opportunity).
PollingServerResult simulate_server(const TaskSet& periodic, Time server_capacity,
                                    Time server_period,
                                    const std::vector<AperiodicJob>& jobs,
                                    Time horizon, bool forfeit,
                                    const ServerOverruns* overruns);

}  // namespace

PollingServerResult simulate_polling_server(const TaskSet& periodic,
                                            Time server_capacity, Time server_period,
                                            const std::vector<AperiodicJob>& jobs,
                                            Time horizon) {
  return simulate_server(periodic, server_capacity, server_period, jobs, horizon,
                         /*forfeit=*/true, nullptr);
}

PollingServerResult simulate_deferrable_server(const TaskSet& periodic,
                                               Time server_capacity,
                                               Time server_period,
                                               const std::vector<AperiodicJob>& jobs,
                                               Time horizon) {
  return simulate_server(periodic, server_capacity, server_period, jobs, horizon,
                         /*forfeit=*/false, nullptr);
}

namespace {

PollingServerResult simulate_server(const TaskSet& periodic, Time server_capacity,
                                    Time server_period,
                                    const std::vector<AperiodicJob>& jobs,
                                    Time horizon, bool forfeit,
                                    const ServerOverruns* overruns) {
  if (server_capacity < 1 || server_period < 1 || server_capacity > server_period) {
    throw std::invalid_argument(
        "simulate_polling_server: need 1 <= capacity <= period");
  }
  for (const Task& t : periodic.tasks()) {
    if (t.arrival != Arrival::kPeriodic) {
      throw std::invalid_argument("simulate_polling_server: tasks must be periodic");
    }
  }
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    if (jobs[i].release < jobs[i - 1].release) {
      throw std::invalid_argument("simulate_polling_server: jobs must be sorted");
    }
  }
  for (const AperiodicJob& j : jobs) {
    if (j.work < 1 || j.release < 0) {
      throw std::invalid_argument("simulate_polling_server: bad job");
    }
  }

  PollingServerResult result;
  const sim::Slot server_slot = static_cast<sim::Slot>(periodic.size());

  struct Live {
    std::size_t task;  // == periodic.size() for the server
    std::size_t record;
    Time abs_deadline;
    Time remaining;
  };
  std::vector<Live> ready;
  Time server_budget = 0;
  sim::Rng rng(overruns != nullptr ? overruns->seed : 0);
  const auto inflate = [&](Time work) {
    if (overruns == nullptr || !rng.chance(overruns->probability)) return work;
    return static_cast<Time>(
        std::ceil(static_cast<double>(work) * std::max(1.0, overruns->magnitude)));
  };

  // FIFO queue of indices into result.aperiodic_jobs with work left.
  for (const AperiodicJob& j : jobs) {
    result.aperiodic_jobs.push_back(ServedJob{j.release, j.work, -1});
  }
  std::vector<Time> aperiodic_left;
  for (const AperiodicJob& j : jobs) aperiodic_left.push_back(inflate(j.work));
  std::size_t queue_head = 0;   // first job not yet completed
  std::size_t next_arrival = 0; // first job not yet released

  for (Time now = 0; now < horizon; ++now) {
    // Releases.
    while (next_arrival < result.aperiodic_jobs.size() &&
           result.aperiodic_jobs[next_arrival].release <= now) {
      ++next_arrival;
    }
    for (std::size_t i = 0; i < periodic.size(); ++i) {
      if (now % periodic[i].p == 0) {
        result.periodic_jobs.push_back(
            JobRecord{i, now, now + periodic[i].d, -1});
        ready.push_back(
            Live{i, result.periodic_jobs.size() - 1, now + periodic[i].d,
                 inflate(periodic[i].c)});
      }
    }
    // Server replenishment: budget resets; forfeited at once when the
    // queue is empty (the polling rule).
    if (now % server_period == 0) {
      server_budget = server_capacity;
    }
    // Queue state for this slot.
    while (queue_head < next_arrival && aperiodic_left[queue_head] == 0) {
      ++queue_head;
    }
    const bool pending = queue_head < next_arrival;
    if (forfeit && now % server_period == 0 && !pending) {
      server_budget = 0;  // polled an empty queue
    }

    // EDF among periodic jobs and the server (deadline = period end).
    const Time server_deadline = (now / server_period + 1) * server_period;
    bool server_eligible = server_budget > 0 && pending;

    std::size_t pick = ready.size();
    for (std::size_t k = 0; k < ready.size(); ++k) {
      if (pick == ready.size() || ready[k].abs_deadline < ready[pick].abs_deadline) {
        pick = k;
      }
    }
    const bool server_wins =
        server_eligible &&
        (pick == ready.size() || server_deadline <= ready[pick].abs_deadline);

    if (server_wins) {
      result.trace.append(server_slot);
      --server_budget;
      if (--aperiodic_left[queue_head] == 0) {
        result.aperiodic_jobs[queue_head].completion = now + 1;
        // Polling rule: if the queue just emptied, the leftover budget
        // is forfeited. A deferrable server keeps it.
        if (forfeit) {
          std::size_t h = queue_head + 1;
          while (h < next_arrival && aperiodic_left[h] == 0) ++h;
          if (h >= next_arrival) server_budget = 0;
        }
      }
    } else if (pick != ready.size()) {
      Live& job = ready[pick];
      result.trace.append(static_cast<sim::Slot>(job.task));
      if (--job.remaining == 0) {
        result.periodic_jobs[job.record].completion = now + 1;
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    } else {
      result.trace.append_idle();
    }
  }
  return result;
}

}  // namespace

PollingServerResult simulate_polling_server_overrun(
    const TaskSet& periodic, Time server_capacity, Time server_period,
    const std::vector<AperiodicJob>& jobs, Time horizon,
    const ServerOverruns& overruns) {
  return simulate_server(periodic, server_capacity, server_period, jobs, horizon,
                         /*forfeit=*/true, &overruns);
}

}  // namespace rtg::rt
