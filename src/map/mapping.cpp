#include "map/mapping.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "graph/digraph.hpp"

namespace rtg::map {

std::vector<Time> Mapping::loads(const core::CommGraph& comm,
                                 std::size_t processors) const {
  std::vector<Time> load(processors, 0);
  for (ElementId e = 0; e < comm.size() && e < assignment.size(); ++e) {
    load[assignment[e]] += comm.weight(e);
  }
  return load;
}

std::optional<std::vector<Message>> collect_messages(
    const core::GraphModel& model, const Platform& platform,
    const std::vector<ProcId>& assignment, std::string* why) {
  // Distinct cross-processor channels used by any constraint edge,
  // keyed and ordered by (from, to) element id — the legacy BusChannel
  // ordering, so TDMA slot assignment is reproducible.
  std::set<std::pair<ElementId, ElementId>> channels;
  for (const core::TimingConstraint& c : model.constraints()) {
    for (const graph::Edge& e : c.task_graph.skeleton().edges()) {
      const ElementId u = c.task_graph.label(e.from);
      const ElementId v = c.task_graph.label(e.to);
      if (assignment[u] != assignment[v]) channels.insert({u, v});
    }
  }

  std::vector<Message> messages;
  messages.reserve(channels.size());
  for (const auto& [u, v] : channels) {
    Message msg;
    msg.from = u;
    msg.to = v;
    msg.src = assignment[u];
    msg.dst = assignment[v];
    const auto link = platform.route(msg.src, msg.dst);
    if (!link) {
      if (why) {
        *why = "no link serves " + platform.processor_names[msg.src] + " -> " +
               platform.processor_names[msg.dst] + " (channel " +
               model.comm().name(u) + " -> " + model.comm().name(v) + ")";
      }
      return std::nullopt;
    }
    msg.link = *link;
    msg.size = platform.fixed_message_size > 0 ? platform.fixed_message_size
                                               : model.comm().weight(u);
    msg.slots = platform.transfer_slots(msg.link, msg.size);
    messages.push_back(msg);
  }
  return messages;
}

std::vector<ProcessorShard> shard_comm(const core::CommGraph& comm,
                                       const std::vector<ProcId>& assignment,
                                       std::size_t processors) {
  std::vector<ProcessorShard> shards(processors);
  for (ProcessorShard& s : shards) {
    s.to_local.assign(comm.size(), graph::kInvalidNode);
  }
  for (ElementId e = 0; e < comm.size(); ++e) {
    ProcessorShard& s = shards[assignment[e]];
    const ElementId local =
        s.comm.add_element(comm.name(e), comm.weight(e), comm.pipelinable(e));
    s.to_global.push_back(e);
    s.to_local[e] = local;
  }
  for (const graph::Edge& ch : comm.digraph().edges()) {
    if (assignment[ch.from] == assignment[ch.to]) {
      ProcessorShard& s = shards[assignment[ch.from]];
      s.comm.add_channel(s.to_local[ch.from], s.to_local[ch.to]);
    }
  }
  return shards;
}

double load_imbalance(const std::vector<Time>& loads) {
  if (loads.empty()) return 0.0;
  Time total = 0;
  Time peak = 0;
  for (Time l : loads) {
    total += l;
    peak = std::max(peak, l);
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(peak) / mean;
}

}  // namespace rtg::map
