// deploy.hpp — the end-to-end mapped deployment pipeline.
//
// deploy() realizes the paper's multiprocessor decomposition over an
// arbitrary Platform:
//
//   1. pipeline the model once, globally (sub-problems share element
//      ids);
//   2. run a portfolio Mapper to place elements on processors;
//   3. derive the induced message set (self-messages eliminated,
//      unroutable channels rejected) and build the generalized-TDMA
//      communication slot tables;
//   4. split every constraint's deadline between its processor segments
//      and its messages (work-proportional, one worst-case link cycle
//      per crossing — a deadline that cannot cover its message budget
//      is rejected here: the saturated-bus case);
//   5. synthesize a static schedule per processor with the existing
//      core::latency_schedule on the projected sub-constraints;
//   6. verify in shards: core::IncrementalVerifier per processor on the
//      local sub-model, then the cross-shard seam check
//      (map::distributed_latency) measuring exact end-to-end latency,
//      with the worst window's GlobalWitness re-validated by
//      check_witness.
//
// The final verification is exact, so the heuristic deadline split only
// affects *which* deployments are found, never whether a reported
// success is sound.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/heuristic.hpp"
#include "core/latency.hpp"
#include "core/model.hpp"
#include "core/static_schedule.hpp"
#include "map/comm_schedule.hpp"
#include "map/mapper.hpp"
#include "map/mapping.hpp"
#include "map/platform.hpp"
#include "map/verify.hpp"

namespace rtg::map {

struct DeployOptions {
  /// Portfolio member: "greedy", "sa", "spd" (or a legacy alias, see
  /// make_mapper). Ignored when `custom` is set.
  std::string mapper = "greedy";
  /// Seed for stochastic mappers (the annealer).
  std::uint64_t seed = 1;
  /// Per-processor scheduling options; `pipeline` controls the global
  /// pipelining pass, and `cancel` / `progress` also thread into the
  /// seam check.
  core::HeuristicOptions local;
  /// Worker threads for the seam check's window fan-out (bit-identical
  /// at every count).
  std::size_t seam_threads = 1;
  /// Run the seam check on the flat (linear-scan) reference path.
  bool flat_reference = false;
  /// Re-validate every worst-window GlobalWitness with check_witness.
  bool check_witnesses = true;
  /// When non-null, used instead of make_mapper(mapper, seed).
  const Mapper* custom = nullptr;
};

/// One processor's local verification outcome.
struct ShardVerification {
  ProcId proc = 0;
  /// IncrementalVerifier report of the local schedule against the
  /// projected sub-model (local element ids).
  core::FeasibilityReport report;
};

struct Deployment {
  bool success = false;
  std::string failure_reason;
  /// True when the run was abandoned through HeuristicOptions::cancel;
  /// a cancelled deployment is "unknown", never "infeasible".
  bool cancelled = false;

  /// Pipelined model all ids below refer to.
  core::GraphModel scheduled_model;
  Platform platform;
  Mapping mapping;
  std::vector<Message> messages;
  CommSchedule comm;
  std::vector<ProcessorShard> shards;
  /// Per-processor sub-models (local ids) the shard verifier ran on.
  std::vector<core::GraphModel> shard_models;
  /// Per-processor schedules in local element ids...
  std::vector<core::StaticSchedule> local_schedules;
  /// ...and translated to global ids (what the seam check consumes).
  std::vector<core::StaticSchedule> processor_schedules;

  std::vector<ShardVerification> shard_reports;
  /// Measured exact end-to-end latency per constraint (nullopt =
  /// infinite). Populated up to the first hard failure.
  std::vector<std::optional<Time>> end_to_end;
  /// Worst-window witnesses for constraints with finite latency, in
  /// constraint order (paired via witness_constraint).
  std::vector<GlobalWitness> witnesses;
  std::vector<std::size_t> witness_constraint;
  SeamStats seam_stats;

  /// Latency slack min over constraints (deadline - latency); 0 when
  /// nothing verified. The E23 latency-margin metric.
  [[nodiscard]] std::optional<Time> min_margin(const core::GraphModel& model) const;
};

/// Maps, schedules, and verifies `model` on `platform`.
[[nodiscard]] Deployment deploy(const core::GraphModel& model, const Platform& platform,
                                const DeployOptions& options = {});

/// Steps 3–6 of deploy() for a fixed element→processor assignment:
/// derive messages and slot tables, split deadlines, synthesize the
/// per-processor schedules, and verify (shards + seam + witnesses).
/// `model` is deployed as-is — no pipelining pass runs, so a caller
/// re-verifying a patched assignment (fault_tolerance's migration
/// entries) passes the already-pipelined `Deployment::scheduled_model`.
/// `options.mapper`/`options.custom` are ignored; `mapper_name` only
/// labels the resulting Mapping.
[[nodiscard]] Deployment deploy_assignment(const core::GraphModel& model,
                                           const Platform& platform,
                                           std::vector<ProcId> assignment,
                                           const DeployOptions& options = {},
                                           std::string mapper_name = "fixed");

}  // namespace rtg::map
