// mapping.hpp — element-to-processor assignments and their induced
// inter-processor message sets.
//
// A Mapping fixes where every functional element runs. Everything else
// the deployment pipeline needs is derived from it here:
//
//   * the induced message set — one Message per distinct cross-processor
//     channel any constraint's task graph uses. Channels whose endpoints
//     share a processor are *self-messages* and are eliminated (local
//     memory hand-off, no link traffic);
//   * per-processor sub-models (local comm graphs with local element
//     ids, plus the global<->local id maps the sharded verifier uses to
//     translate witnesses back).
//
// Messages are identified by their (producer, consumer) global element
// ids — the same key the legacy core::BusChannel used — and sorted by
// that key, so slot-table construction is deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "map/platform.hpp"

namespace rtg::map {

/// A directed inter-processor message stream induced by a channel.
struct Message {
  ElementId from = 0;  ///< producer element (global id)
  ElementId to = 0;    ///< consumer element (global id)
  ProcId src = 0;      ///< processor of `from`
  ProcId dst = 0;      ///< processor of `to`
  std::size_t link = 0;  ///< index into Platform::links
  Time size = 1;         ///< payload units (producer weight or fixed)
  Time slots = 1;        ///< transfer_slots(link, size)

  friend bool operator==(const Message&, const Message&) = default;
};

/// One processor's share of the model: a local comm graph plus id maps.
struct ProcessorShard {
  core::CommGraph comm;
  std::vector<ElementId> to_global;  ///< local -> global
  /// global -> local; graph::kInvalidNode for foreign elements.
  std::vector<ElementId> to_local;
};

/// An element->processor assignment over a model/platform pair.
struct Mapping {
  /// assignment[element] = processor, over the model's elements.
  std::vector<ProcId> assignment;
  /// Name of the mapper that produced it (diagnostics / stats).
  std::string mapper;

  [[nodiscard]] bool empty() const { return assignment.empty(); }

  /// Per-processor computation load (sum of element weights).
  [[nodiscard]] std::vector<Time> loads(const core::CommGraph& comm,
                                        std::size_t processors) const;
};

/// Derives the message set a mapping induces: one Message per distinct
/// cross-processor channel used by any constraint edge, sorted by
/// (from, to) element id. Same-processor channels are eliminated.
/// Returns nullopt (with `why` set, if given) when some message has no
/// serving link on the platform.
[[nodiscard]] std::optional<std::vector<Message>> collect_messages(
    const core::GraphModel& model, const Platform& platform,
    const std::vector<ProcId>& assignment, std::string* why = nullptr);

/// Splits the model's comm graph into per-processor shards (channels
/// between co-located elements become local channels; cross channels
/// are dropped — they live in the message set instead).
[[nodiscard]] std::vector<ProcessorShard> shard_comm(const core::CommGraph& comm,
                                                     const std::vector<ProcId>& assignment,
                                                     std::size_t processors);

/// Load-balance metric: max processor load / mean processor load
/// (1.0 = perfectly balanced; 0 when the model is empty).
[[nodiscard]] double load_imbalance(const std::vector<Time>& loads);

}  // namespace rtg::map
