#include "map/comm_schedule.hpp"

#include <algorithm>
#include <set>

namespace rtg::map {

std::size_t CommSchedule::find_message(ElementId from, ElementId to) const {
  // Linear first-match scan: message sets are small, and hand-built
  // compat tables (legacy bus_channels vectors) need not be sorted.
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (messages[i].from == from && messages[i].to == to) return i;
  }
  return npos;
}

Time CommSchedule::arrival(std::size_t msg, Time ready) const {
  const auto& [link_idx, slot_idx] = slot_of[msg];
  const LinkSchedule& table = links[link_idx];
  const SlotAssignment& slot = table.slots[slot_idx];
  // Same arithmetic as the legacy TDMA message_arrival: first slot-run
  // start j * cycle + offset at or after `ready`, plus the transfer.
  Time j = (ready - slot.offset + table.cycle - 1) / table.cycle;
  if (j < 0) j = 0;
  return j * table.cycle + slot.offset + slot.duration;
}

Time CommSchedule::worst_delay(std::size_t msg) const {
  return links[slot_of[msg].first].cycle;
}

Time CommSchedule::total_slots() const {
  Time total = 0;
  for (const LinkSchedule& table : links) {
    for (const SlotAssignment& slot : table.slots) total += slot.duration;
  }
  return total;
}

CommSchedule build_comm_schedule(const Platform& platform,
                                 const std::vector<Message>& messages) {
  CommSchedule schedule;
  schedule.messages = messages;
  schedule.slot_of.assign(messages.size(), {0, 0});
  schedule.links.resize(platform.links.size());
  for (std::size_t l = 0; l < platform.links.size(); ++l) {
    schedule.links[l].link = l;
    schedule.links[l].cycle = 1;  // idle links tick in unit cycles
  }
  // Messages are (from, to)-sorted; appending in index order gives each
  // link a deterministic consecutive-run table.
  for (std::size_t i = 0; i < messages.size(); ++i) {
    LinkSchedule& table = schedule.links[messages[i].link];
    const Time offset = table.slots.empty()
                            ? 0
                            : table.slots.back().offset + table.slots.back().duration;
    schedule.slot_of[i] = {messages[i].link, table.slots.size()};
    table.slots.push_back(SlotAssignment{i, offset, messages[i].slots});
  }
  for (LinkSchedule& table : schedule.links) {
    if (!table.slots.empty()) {
      table.cycle = table.slots.back().offset + table.slots.back().duration;
    }
  }
  return schedule;
}

CommCheck check_comm_schedule(const Platform& platform, const CommSchedule& schedule) {
  CommCheck check;
  auto fail = [&](std::string why) { check.diagnostics.push_back(std::move(why)); };

  std::vector<std::size_t> slotted(schedule.messages.size(), 0);
  std::set<std::pair<ElementId, ElementId>> channels;
  for (std::size_t i = 0; i < schedule.messages.size(); ++i) {
    const Message& msg = schedule.messages[i];
    if (msg.src == msg.dst) {
      fail("message " + std::to_string(i) +
           ": self-message (src == dst) must be eliminated, not scheduled");
    }
    if (!channels.insert({msg.from, msg.to}).second) {
      fail("message " + std::to_string(i) +
           ": duplicated channel breaks pipeline (FIFO) ordering");
    }
  }

  for (const LinkSchedule& table : schedule.links) {
    if (table.link >= platform.links.size()) {
      fail("link table refers to unknown link " + std::to_string(table.link));
      continue;
    }
    if (table.cycle < 1) {
      fail("link " + platform.links[table.link].name + ": cycle < 1");
      continue;
    }
    Time prev_end = 0;
    for (std::size_t s = 0; s < table.slots.size(); ++s) {
      const SlotAssignment& slot = table.slots[s];
      const std::string where =
          "link " + platform.links[table.link].name + " slot " + std::to_string(s);
      if (slot.message >= schedule.messages.size()) {
        fail(where + ": unknown message " + std::to_string(slot.message));
        continue;
      }
      ++slotted[slot.message];
      const Message& msg = schedule.messages[slot.message];
      if (msg.link != table.link || !platform.links[table.link].serves(msg.src, msg.dst)) {
        fail(where + ": link does not serve route " + std::to_string(msg.src) +
             " -> " + std::to_string(msg.dst));
      }
      if (slot.duration != msg.slots) {
        fail(where + ": duration " + std::to_string(slot.duration) +
             " != transfer slots " + std::to_string(msg.slots));
      }
      if (slot.offset < prev_end) fail(where + ": overlaps the previous slot");
      if (slot.offset + slot.duration > table.cycle) {
        fail(where + ": runs past the cycle");
      }
      prev_end = slot.offset + slot.duration;
    }
  }
  for (std::size_t i = 0; i < schedule.messages.size(); ++i) {
    if (slotted[i] != 1) {
      fail("message " + std::to_string(i) + ": slotted " +
           std::to_string(slotted[i]) + " times (want exactly 1)");
    }
  }
  check.ok = check.diagnostics.empty();
  return check;
}

}  // namespace rtg::map
