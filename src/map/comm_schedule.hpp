// comm_schedule.hpp — static cyclic slot tables for inter-processor
// messages: the TDMA construction generalized to arbitrary link sets
// and multi-slot transfers.
//
// Each link gets a cyclic table: every message routed over it owns one
// run of `Message::slots` consecutive slots per cycle, in (from, to)
// element-id order, and the cycle is the total occupied length. The
// legacy core/multiproc TDMA bus is the special case of one link with
// unit-size messages — slot k of a C-slot cycle carries channel k, and
// the generalized arrival arithmetic degenerates to exactly the old
// `message_arrival` formula (the compat shim relies on this).
//
// Any message therefore waits at most one link cycle before its slot
// comes around: arrival(msg, ready) <= ready + cycle. The deployment
// deadline split charges that worst case per crossing, and the checker
// below proves the structural invariants (every message slotted exactly
// once, no overlap, routes respected, no self-messages) that the
// arrival arithmetic silently assumes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "map/mapping.hpp"
#include "map/platform.hpp"

namespace rtg::map {

/// One message's slot run within a link cycle.
struct SlotAssignment {
  std::size_t message = 0;  ///< index into CommSchedule::messages
  Time offset = 0;          ///< first slot within the cycle
  Time duration = 1;        ///< consecutive slots occupied

  friend bool operator==(const SlotAssignment&, const SlotAssignment&) = default;
};

/// A link's cyclic slot table; slots sorted by offset, non-overlapping.
struct LinkSchedule {
  std::size_t link = 0;  ///< index into Platform::links
  Time cycle = 1;
  std::vector<SlotAssignment> slots;

  friend bool operator==(const LinkSchedule&, const LinkSchedule&) = default;
};

struct CommSchedule {
  std::vector<Message> messages;      ///< sorted by (from, to)
  std::vector<LinkSchedule> links;    ///< one table per platform link

  /// Index of the message for channel (from, to), or npos.
  [[nodiscard]] std::size_t find_message(ElementId from, ElementId to) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Earliest arrival of message `msg` whose transmission starts at or
  /// after `ready` (start of the next slot run, plus the transfer).
  [[nodiscard]] Time arrival(std::size_t msg, Time ready) const;

  /// Worst-case queueing+transfer delay of message `msg`: its link's
  /// cycle (the deadline split charges this per crossing).
  [[nodiscard]] Time worst_delay(std::size_t msg) const;

  /// Total occupied slots across all links (E23 link-slot metric).
  [[nodiscard]] Time total_slots() const;

  friend bool operator==(const CommSchedule&, const CommSchedule&) = default;

  // Filled by build_comm_schedule: per message, its slot's link-table
  // position — (link index, slot index within that link's table).
  std::vector<std::pair<std::size_t, std::size_t>> slot_of;
};

/// Builds the generalized-TDMA table: per link, its messages in
/// (from, to) order, consecutive slot runs, cycle = occupied length.
/// `messages` must already be routed (collect_messages output).
[[nodiscard]] CommSchedule build_comm_schedule(const Platform& platform,
                                               const std::vector<Message>& messages);

/// Structural validation of an arbitrary (possibly hand-built) comm
/// schedule. Checks: every message slotted exactly once, on a link that
/// serves its route, with duration == Message::slots; slots within
/// [0, cycle) and non-overlapping; no self-messages (src == dst); no
/// duplicated (from, to) channel — the generalized pipeline-ordering
/// rule (one slot run per channel per cycle keeps transmissions FIFO).
struct CommCheck {
  bool ok = false;
  std::vector<std::string> diagnostics;
};
[[nodiscard]] CommCheck check_comm_schedule(const Platform& platform,
                                            const CommSchedule& schedule);

}  // namespace rtg::map
