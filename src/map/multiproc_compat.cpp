// multiproc_compat.cpp — the legacy core/multiproc entry points,
// reimplemented on the map subsystem (ISSUE 9).
//
// core::multiproc_schedule is map::deploy on a shared unit-slot bus
// with the matching legacy greedy policy; core::multiproc_latency is
// map::distributed_latency against a hand-built single-link TDMA table
// whose slot k carries bus_channels[k] for one slot — the arrival
// arithmetic, candidate-window enumeration, and greedy completion then
// reduce to exactly the deleted legacy code, so the seed pins
// (tests/core/multiproc_test) hold bit-for-bit.
#include "core/multiproc.hpp"

#include "map/deploy.hpp"

namespace rtg::core {

namespace {

map::GreedyMapper::Policy legacy_policy(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kRoundRobin:
      return map::GreedyMapper::Policy::kRoundRobin;
    case PartitionStrategy::kLpt:
      return map::GreedyMapper::Policy::kLpt;
    case PartitionStrategy::kCommunication:
      return map::GreedyMapper::Policy::kCommunication;
  }
  return map::GreedyMapper::Policy::kLpt;
}

// One link, one unit slot per channel, cycle = channel count: the
// legacy TDMA bus as a CommSchedule.
map::CommSchedule tdma_bus(const std::vector<BusChannel>& bus_channels,
                           const std::vector<std::size_t>& assignment) {
  map::CommSchedule comm;
  map::LinkSchedule table;
  table.link = 0;
  table.cycle =
      static_cast<Time>(bus_channels.empty() ? 1 : bus_channels.size());
  for (std::size_t k = 0; k < bus_channels.size(); ++k) {
    map::Message msg;
    msg.from = bus_channels[k].first;
    msg.to = bus_channels[k].second;
    msg.src = msg.from < assignment.size() ? assignment[msg.from] : 0;
    msg.dst = msg.to < assignment.size() ? assignment[msg.to] : 0;
    msg.link = 0;
    msg.size = 1;
    msg.slots = 1;
    comm.messages.push_back(msg);
    comm.slot_of.emplace_back(0, k);
    table.slots.push_back(
        map::SlotAssignment{k, static_cast<Time>(k), 1});
  }
  comm.links.push_back(std::move(table));
  return comm;
}

}  // namespace

std::optional<Time> multiproc_latency(const TaskGraph& tg,
                                      const std::vector<StaticSchedule>& schedules,
                                      const std::vector<std::size_t>& assignment,
                                      const std::vector<BusChannel>& bus_channels) {
  return map::distributed_latency(tg, schedules, assignment,
                                  tdma_bus(bus_channels, assignment), {});
}

MultiprocResult multiproc_schedule(const GraphModel& input,
                                   const MultiprocOptions& options) {
  map::Platform platform = map::Platform::bus(options.processors);
  platform.fixed_message_size = 1;  // legacy: every message takes one slot

  const map::GreedyMapper mapper(legacy_policy(options.strategy));
  map::DeployOptions deploy_options;
  deploy_options.local = options.local;
  deploy_options.custom = &mapper;

  const map::Deployment d = map::deploy(input, platform, deploy_options);

  MultiprocResult result;
  result.success = d.success;
  result.failure_reason = d.failure_reason;
  result.scheduled_model = d.scheduled_model;
  result.assignment = d.mapping.assignment;
  result.processor_schedules = d.processor_schedules;
  result.bus_channels.reserve(d.messages.size());
  for (const map::Message& msg : d.messages) {
    result.bus_channels.emplace_back(msg.from, msg.to);
  }
  result.end_to_end_latency = d.end_to_end;
  return result;
}

}  // namespace rtg::core
